package sigfile

// Integration tests driving the full stack the way a deployment would:
// the university database and query engine over the paged object store,
// all four facilities on a disk-backed page store with reopen, bulk
// loading, compaction under churn, and agreement across facilities.

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"sigfile/internal/core"
	"sigfile/internal/oodb"
	"sigfile/internal/pagestore"
	"sigfile/internal/query"
	"sigfile/internal/signature"
	"sigfile/internal/workload"
)

// TestIntegrationUniversityEndToEnd builds the paper's scenario on a
// disk store, runs the §1/§2 queries through every facility, restarts
// (reopening database and indexes from disk), and checks answers
// survive.
func TestIntegrationUniversityEndToEnd(t *testing.T) {
	dir := t.TempDir()
	cfg := oodb.SampleConfig{
		Students: 800, Courses: 60, Teachers: 10,
		CoursesPerStud: 5, HobbiesPerStud: 4, Seed: 99,
	}
	queries := []string{
		`select Student where hobbies has-subset ("Baseball", "Fishing")`,
		`select Student where hobbies in-subset ("Baseball", "Fishing", "Tennis", "Golf", "Chess", "Reading")`,
		`select Student where courses in-subset (select Course where category = "DB")`,
		`select Student where hobbies has-element "Chess" and hobbies overlaps ("Golf", "Yoga")`,
	}

	var firstRun [][]oodb.OID
	// Phase 1: create, index, query, leave on disk.
	{
		store, err := pagestore.NewDiskStore(filepath.Join(dir, "db"))
		if err != nil {
			t.Fatal(err)
		}
		db, err := oodb.NewSampleDatabase(cfg, store)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := query.NewEngine(db)
		if err != nil {
			t.Fatal(err)
		}
		idxStore, err := pagestore.NewDiskStore(filepath.Join(dir, "idx"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.CreateIndex("Student", "hobbies", query.KindBSSF, signature.MustNew(128, 2), idxStore); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.CreateIndex("Student", "courses", query.KindBSSF, signature.MustNew(256, 2), idxStore); err != nil {
			t.Fatal(err)
		}
		for _, src := range queries {
			res, err := eng.Run(src)
			if err != nil {
				t.Fatalf("%s: %v", src, err)
			}
			firstRun = append(firstRun, res.OIDs())
		}
		if err := store.Close(); err != nil {
			t.Fatal(err)
		}
		if err := idxStore.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 2: reopen everything from disk; answers must be identical.
	{
		store, err := pagestore.NewDiskStore(filepath.Join(dir, "db"))
		if err != nil {
			t.Fatal(err)
		}
		db, err := oodb.NewDatabase(oodb.SampleSchema(), store)
		if err != nil {
			t.Fatal(err)
		}
		if db.Count("Student") != cfg.Students {
			t.Fatalf("reopened Student count %d", db.Count("Student"))
		}
		eng, err := query.NewEngine(db)
		if err != nil {
			t.Fatal(err)
		}
		idxStore, err := pagestore.NewDiskStore(filepath.Join(dir, "idx"))
		if err != nil {
			t.Fatal(err)
		}
		// CreateIndex reopens the existing files; re-inserting everything
		// would corrupt them, so open the facilities directly.
		hobbySrc, err := db.NewSetSource("Student", "hobbies")
		if err != nil {
			t.Fatal(err)
		}
		hobbies, err := core.NewBSSF(signature.MustNew(128, 2), hobbySrc,
			pagestore.Prefixed(idxStore, "Student.hobbies"))
		if err != nil {
			t.Fatal(err)
		}
		if hobbies.Count() != cfg.Students {
			t.Fatalf("reopened index count %d", hobbies.Count())
		}
		res, err := hobbies.Search(signature.Superset, []string{"Baseball", "Fishing"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.OIDs) != len(firstRun[0]) {
			t.Fatalf("reopened index: %d results, want %d", len(res.OIDs), len(firstRun[0]))
		}
		for i, oid := range res.OIDs {
			if oodb.OID(oid) != firstRun[0][i] {
				t.Fatal("reopened index returns different OIDs")
			}
		}
		// Scan-based engine answers still agree for the other queries.
		for i, src := range queries[1:3] {
			r, err := eng.Run(src)
			if err != nil {
				t.Fatal(err)
			}
			got := r.OIDs()
			if len(got) != len(firstRun[i+1]) {
				t.Fatalf("%s after reopen: %d vs %d results", src, len(got), len(firstRun[i+1]))
			}
		}
	}
}

// TestIntegrationChurnAndCompaction runs a mixed workload (inserts,
// deletes, searches) against all four facilities simultaneously, then
// compacts the signature files and re-validates.
func TestIntegrationChurnAndCompaction(t *testing.T) {
	inst, err := workload.Generate(workload.Config{N: 600, V: 120, Dt: 6, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	scheme := signature.MustNew(160, 2)
	frame := signature.MustFrameScheme(10, 16, 2)
	ssf, _ := core.NewSSF(scheme, inst, nil)
	bssf, _ := core.NewBSSF(scheme, inst, nil)
	fssf, _ := core.NewFSSF(frame, inst, nil)
	nix, _ := core.NewNIX(inst, nil)
	ams := []AccessMethod{ssf, bssf, fssf, nix}

	live := map[uint64][]string{}
	for oid := uint64(1); oid <= 600; oid++ {
		set := inst.Sets[oid]
		live[oid] = set
		for _, am := range ams {
			if err := am.Insert(oid, set); err != nil {
				t.Fatal(err)
			}
		}
	}
	rng := rand.New(rand.NewSource(42))
	next := uint64(601)
	for step := 0; step < 300; step++ {
		switch rng.Intn(3) {
		case 0: // insert
			set := []string{workload.Element(rng.Intn(120)), workload.Element(rng.Intn(120))}
			inst.Sets[next] = set
			live[next] = set
			for _, am := range ams {
				if err := am.Insert(next, set); err != nil {
					t.Fatal(err)
				}
			}
			next++
		case 1: // delete
			for oid, set := range live {
				for _, am := range ams {
					if err := am.Delete(oid, set); err != nil {
						t.Fatal(err)
					}
				}
				delete(live, oid)
				break
			}
		case 2: // cross-validate a search
			q := []string{workload.Element(rng.Intn(120))}
			want := -1
			for _, am := range ams {
				res, err := am.Search(Superset, q, nil)
				if err != nil {
					t.Fatal(err)
				}
				if want == -1 {
					want = len(res.OIDs)
				} else if len(res.OIDs) != want {
					t.Fatalf("step %d: %s disagrees (%d vs %d results)", step, am.Name(), len(res.OIDs), want)
				}
			}
		}
	}

	// Compact the signature files; answers must not change.
	q := []string{workload.Element(7)}
	before, err := bssf.Search(Superset, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ssf.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := bssf.Compact(); err != nil {
		t.Fatal(err)
	}
	afterSSF, err := ssf.Search(Superset, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	afterBSSF, err := bssf.Search(Superset, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(afterSSF.OIDs) != len(before.OIDs) || len(afterBSSF.OIDs) != len(before.OIDs) {
		t.Fatal("compaction changed answers")
	}
	for _, am := range ams {
		if am.Count() != len(live) {
			t.Fatalf("%s count %d, want %d", am.Name(), am.Count(), len(live))
		}
	}
}

// TestIntegrationPaperWorkloadAllFacilities loads the scaled paper
// workload via batch insertion into all four facilities and confirms
// they agree on a spread of queries of both types.
func TestIntegrationPaperWorkloadAllFacilities(t *testing.T) {
	if testing.Short() {
		t.Skip("integration workload skipped in -short mode")
	}
	cfg := workload.Scaled(10, 16) // N=2000, V=812
	inst, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]Entry, 0, cfg.N)
	for oid := uint64(1); oid <= uint64(cfg.N); oid++ {
		entries = append(entries, Entry{OID: oid, Elems: inst.Sets[oid]})
	}
	scheme := signature.MustNew(250, 2)
	frame := signature.MustFrameScheme(10, 25, 2)
	ssf, _ := core.NewSSF(scheme, inst, nil)
	bssf, _ := core.NewBSSF(scheme, inst, nil)
	fssf, _ := core.NewFSSF(frame, inst, nil)
	nix, _ := core.NewNIX(inst, nil)
	ams := []AccessMethod{ssf, bssf, fssf, nix}
	for _, am := range ams {
		if err := am.(BatchInserter).InsertBatch(entries); err != nil {
			t.Fatal(err)
		}
	}
	for _, dq := range []int{1, 3, 10} {
		qs, err := inst.Queries(workload.RandomQuery, dq, 3, 7)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range qs {
			var want []uint64
			for i, am := range ams {
				res, err := am.Search(Superset, q, nil)
				if err != nil {
					t.Fatal(err)
				}
				if i == 0 {
					want = res.OIDs
				} else if fmt.Sprint(res.OIDs) != fmt.Sprint(want) {
					t.Fatalf("superset dq=%d: %s disagrees", dq, am.Name())
				}
			}
		}
	}
	for _, dq := range []int{20, 100} {
		qs, err := inst.Queries(workload.RandomQuery, dq, 2, 8)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range qs {
			var want []uint64
			for i, am := range ams {
				res, err := am.Search(Subset, q, nil)
				if err != nil {
					t.Fatal(err)
				}
				if i == 0 {
					want = res.OIDs
				} else if fmt.Sprint(res.OIDs) != fmt.Sprint(want) {
					t.Fatalf("subset dq=%d: %s disagrees", dq, am.Name())
				}
			}
		}
	}
}
