module sigfile

go 1.22
