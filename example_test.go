package sigfile_test

import (
	"context"
	"fmt"

	"sigfile"
)

// The paper's Query Q1 — "find all Students whose hobbies attribute
// includes {Baseball, Fishing}" — as a T ⊇ Q search on a bit-sliced
// signature file.
func ExampleOpen() {
	sets := sigfile.MapSource{
		1: {"Baseball", "Fishing"},
		2: {"Baseball", "Golf", "Fishing"},
		3: {"Baseball", "Football", "Tennis"},
	}
	scheme, _ := sigfile.NewScheme(250, 2)
	idx, _ := sigfile.Open(sigfile.Config{Kind: sigfile.KindBSSF, Scheme: scheme, Source: sets})
	for oid := uint64(1); oid <= 3; oid++ {
		idx.Insert(oid, sets[oid])
	}
	res, _ := idx.Search(sigfile.Superset, []string{"Baseball", "Fishing"})
	fmt.Println(res.OIDs)
	// Output: [1 2]
}

// The paper's Query Q2 — "find all Students whose hobbies attribute is a
// subset of {Baseball, Fishing, Tennis}" — as a T ⊆ Q search.
func ExampleSubset() {
	sets := sigfile.MapSource{
		1: {"Baseball", "Fishing"},
		2: {"Baseball", "Golf"},
		3: {"Tennis"},
	}
	scheme, _ := sigfile.NewScheme(250, 2)
	idx, _ := sigfile.Open(sigfile.Config{Kind: sigfile.KindSSF, Scheme: scheme, Source: sets})
	for oid := uint64(1); oid <= 3; oid++ {
		idx.Insert(oid, sets[oid])
	}
	res, _ := idx.Search(sigfile.Subset, []string{"Baseball", "Fishing", "Tennis"})
	fmt.Println(res.OIDs)
	// Output: [1 3]
}

// The smart object retrieval of §5.1.3: probing with only two query
// elements reads fewer bit slices; false-drop resolution keeps the
// answer exact.
func ExampleWithMaxProbeElements() {
	sets := sigfile.MapSource{}
	for oid := uint64(1); oid <= 8; oid++ {
		sets[oid] = []string{"a", "b", "c", "d", "e"}
	}
	scheme, _ := sigfile.NewScheme(250, 2)
	idx, _ := sigfile.Open(sigfile.Config{Kind: sigfile.KindBSSF, Scheme: scheme, Source: sets})
	for oid, set := range sets {
		idx.Insert(oid, set)
	}
	full, _ := idx.Search(sigfile.Superset, []string{"a", "b", "c", "d", "e"})
	smart, _ := idx.Search(sigfile.Superset, []string{"a", "b", "c", "d", "e"},
		sigfile.WithMaxProbeElements(2))
	fmt.Println(len(full.OIDs) == len(smart.OIDs), smart.Stats.SlicesRead < full.Stats.SlicesRead)
	// Output: true true
}

// The context-aware API: WithTrace captures the search's phase
// decomposition — index scan, OID map, false-drop resolution — whose page
// counts sum exactly to the reported SearchStats.
func ExampleWithTrace() {
	sets := sigfile.MapSource{
		1: {"Baseball", "Fishing"},
		2: {"Baseball", "Golf", "Fishing"},
		3: {"Tennis"},
	}
	scheme, _ := sigfile.NewScheme(250, 2)
	idx, _ := sigfile.Open(sigfile.Config{Kind: sigfile.KindBSSF, Scheme: scheme, Source: sets})
	for oid := uint64(1); oid <= 3; oid++ {
		idx.Insert(oid, sets[oid])
	}
	var traces sigfile.TraceCollector
	res, _ := idx.SearchContext(context.Background(), sigfile.Superset,
		[]string{"Baseball", "Fishing"}, sigfile.WithTrace(&traces))
	tr := traces.Traces()[0]
	fmt.Println(res.OIDs, tr.Facility, len(tr.Spans), tr.TotalPages() == res.Stats.TotalPages())
	// Output: [1 2] BSSF 3 true
}

// WithSmartRetrieval lets the facility pick its own probe cap (§5.1.3);
// resolution keeps the answer exact while reading fewer slices.
func ExampleWithSmartRetrieval() {
	sets := sigfile.MapSource{}
	for oid := uint64(1); oid <= 8; oid++ {
		sets[oid] = []string{"a", "b", "c", "d", "e"}
	}
	scheme, _ := sigfile.NewScheme(250, 2)
	idx, _ := sigfile.Open(sigfile.Config{Kind: sigfile.KindBSSF, Scheme: scheme, Source: sets})
	for oid, set := range sets {
		idx.Insert(oid, set)
	}
	full, _ := idx.SearchContext(context.Background(), sigfile.Superset,
		[]string{"a", "b", "c", "d", "e"})
	smart, _ := idx.SearchContext(context.Background(), sigfile.Superset,
		[]string{"a", "b", "c", "d", "e"}, sigfile.WithSmartRetrieval())
	fmt.Println(len(full.OIDs) == len(smart.OIDs), smart.Stats.SlicesRead < full.Stats.SlicesRead)
	// Output: true true
}

// Horizontal sharding (DESIGN.md §16): WithShards hash-partitions the
// OID space across K full facilities and scatter-gathers searches over
// them — results are byte-identical to the unsharded facility at any K
// and any parallelism.
func ExampleWithShards() {
	sets := sigfile.MapSource{
		1: {"Baseball", "Fishing"},
		2: {"Baseball", "Golf", "Fishing"},
		3: {"Tennis"},
	}
	scheme, _ := sigfile.NewScheme(250, 2)
	idx, _ := sigfile.Open(sigfile.Config{Kind: sigfile.KindBSSF, Scheme: scheme, Source: sets},
		sigfile.WithShards(4))
	for oid := uint64(1); oid <= 3; oid++ {
		idx.Insert(oid, sets[oid])
	}
	res, _ := idx.Search(sigfile.Superset, []string{"Baseball", "Fishing"},
		sigfile.WithParallelism(4))
	sh := idx.(*sigfile.ShardedFacility)
	fmt.Println(res.OIDs, sh.Shards())
	// Output: [1 2] 4
}

// The analytical cost model reproduces the paper's Table 6 storage costs
// and recommends designs before any data is loaded.
func ExamplePaperModel() {
	m := sigfile.PaperModel(10, 250, 2) // Dt=10, F=250, m=2
	fmt.Printf("SSF=%.0f BSSF=%.0f NIX=%.0f pages\n",
		m.SSFStorage(), m.BSSFStorage(), m.NIXStorage())
	fmt.Printf("RC(T⊇Q, Dq=3): BSSF=%.1f NIX=%.1f\n",
		m.BSSFRetrievalSuperset(3), m.NIXRetrievalSuperset(3))
	// Output:
	// SSF=308 BSSF=313 NIX=690 pages
	// RC(T⊇Q, Dq=3): BSSF=5.9 NIX=9.0
}

// Bulk loading through the BatchInserter interface amortizes page
// writes — the insertion-cost improvement the paper's §6 anticipates.
func ExampleBatchInserter() {
	sets := sigfile.MapSource{}
	entries := make([]sigfile.Entry, 0, 100)
	for oid := uint64(1); oid <= 100; oid++ {
		set := []string{fmt.Sprintf("v%d", oid%7), fmt.Sprintf("v%d", oid%11)}
		sets[oid] = set
		entries = append(entries, sigfile.Entry{OID: oid, Elems: set})
	}
	scheme, _ := sigfile.NewScheme(250, 2)
	idx, _ := sigfile.Open(sigfile.Config{Kind: sigfile.KindBSSF, Scheme: scheme, Source: sets})
	if err := sigfile.InsertAll(idx, entries); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(idx.Count())
	// Output: 100
}

// OptimalM is the classical text-retrieval weight choice (eq. 3); the
// paper's central finding is that a far smaller m serves set predicates
// better.
func ExampleOptimalM() {
	fmt.Println(sigfile.OptimalM(250, 10))
	fmt.Printf("%.2e vs %.2e\n",
		sigfile.FalseDropSuperset(250, 17, 10, 3), // m_opt: minimal false drops
		sigfile.FalseDropSuperset(250, 2, 10, 3))  // m=2: more drops, far cheaper scans
	// Output:
	// 17
	// 7.76e-16 vs 2.11e-07
}
