#!/bin/sh
# Runs the exact checks CI's lint and sigvet jobs run (see
# .github/workflows/ci.yml), so a clean local run means green lint and
# sigvet columns:
#
#   scripts/lint.sh
#
# go vet and sigvet (the project's nine invariant checkers — lockcheck,
# ctxcheck, pageacct, errwrap, faultclass, wirecode, segimmut,
# detorder, atomiccheck; DESIGN.md §11) always run; sigvet's -summary
# table names the failing analyzer, and an unused //sigvet:ignore
# directive anywhere in the repo fails the run. staticcheck and
# govulncheck run when installed; install the CI-pinned versions with
#
#   go install honnef.co/go/tools/cmd/staticcheck@2025.1.1
#   go install golang.org/x/vuln/cmd/govulncheck@v1.1.4
set -eu
cd "$(dirname "$0")/.."

echo "==> go vet"
go vet ./...

echo "==> sigvet"
go run ./cmd/sigvet -summary ./...

if command -v staticcheck >/dev/null 2>&1; then
	echo "==> staticcheck"
	staticcheck ./...
else
	echo "==> staticcheck not installed; skipping (CI runs 2025.1.1)"
fi

if command -v govulncheck >/dev/null 2>&1; then
	echo "==> govulncheck"
	govulncheck ./...
else
	echo "==> govulncheck not installed; skipping (CI runs v1.1.4)"
fi

echo "lint OK"
