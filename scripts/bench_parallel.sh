#!/bin/sh
# Regenerates BENCH_parallel.json from the parallel-search benchmarks.
#
#   scripts/bench_parallel.sh [benchtime]
#
# The JSON records ns/op per parallelism level alongside the measuring
# machine's CPU count: the P>1 speedup only materializes on multi-core
# hardware, so the environment is part of the result.
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-1s}"
OUT="BENCH_parallel.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench 'BenchmarkSearch(Parallel|ParallelBSSF|Many)$' \
    -benchtime "$BENCHTIME" . | tee "$RAW"

awk -v cores="$(nproc 2>/dev/null || echo unknown)" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    split($1, parts, "/")
    bench = substr(parts[1], 10)       # strip "Benchmark"
    sub(/-[0-9]+$/, "", parts[2])      # strip GOMAXPROCS suffix
    p = substr(parts[2], 3)            # strip "P="
    lines[n++] = sprintf("    {\"benchmark\": \"%s\", \"parallelism\": %s, \"ns_per_op\": %s, \"iterations\": %s}",
                         bench, p, $3, $2)
}
END {
    printf "{\n"
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"cores\": %s,\n", (cores == "unknown" ? "null" : cores)
    printf "  \"note\": \"ns_per_op ratios across parallelism levels depend on cores; on a single-core runner P=1/4/8 are expected to be flat\",\n"
    printf "  \"results\": [\n"
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
    printf "  ]\n}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"
