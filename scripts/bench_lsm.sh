#!/bin/sh
# Regenerates BENCH_lsm.json from the write-heavy mixed workload: one
# deterministic insert/search stream driven in lockstep through the
# legacy worst-case BSSF (the paper's UC_I = F+1 accounting) and the
# LSM write path (DESIGN.md §13).
#
#   scripts/bench_lsm.sh [mix] [ops]
#
# The JSON records inserts/sec, pages written per insert (legacy pins
# exactly F+1; the LSM side is the amortized o(F) claim), segment and
# compaction counts, the compaction pause p99, and whether every
# interleaved search answered byte-identically on both paths (the run
# fails if not).
set -eu
cd "$(dirname "$0")/.."

MIX="${1:-4:1}"
OPS="${2:-4096}"

go run ./cmd/sigbench -throughput -mix "$MIX" -mix-ops "$OPS" -json BENCH_lsm.json
