#!/bin/sh
# Regenerates BENCH_server.json: QPS and p50/p99 latency of a live
# sigfiled instance under a read-heavy workload (HTTP and binary
# protocol) and a mixed insert:search workload, followed by the
# durability drill — SIGTERM under load, assert exit 0, restart, and
# verify every acknowledged write survived (sigload -verify).
#
#   scripts/bench_server.sh [duration] [workers]
#
# The report uses the shared benchfmt schema, so BENCH_server.json
# reads like BENCH_parallel.json and BENCH_lsm.json.
set -eu
cd "$(dirname "$0")/.."

DURATION="${1:-5s}"
WORKERS="${2:-8}"
HTTP_PORT="${SIGFILED_HTTP_PORT:-18080}"
BIN_PORT="${SIGFILED_BIN_PORT:-18081}"
ADDR="http://127.0.0.1:$HTTP_PORT"

TMP="$(mktemp -d)"
DATA="$TMP/data"
MODEL="$TMP/model.jsonl"
trap 'kill "$SRV_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/sigfiled" ./cmd/sigfiled
go build -o "$TMP/sigload" ./cmd/sigload

start_server() {
    "$TMP/sigfiled" -data "$DATA" -addr "127.0.0.1:$HTTP_PORT" \
        -binary-addr "127.0.0.1:$BIN_PORT" -checkpoint 2s &
    SRV_PID=$!
    i=0
    until curl -sf "$ADDR/healthz" >/dev/null 2>&1; do
        i=$((i+1))
        [ "$i" -gt 50 ] && { echo "sigfiled did not come up" >&2; exit 1; }
        sleep 0.2
    done
}

start_server

# Phase 1: read-heavy (0:1) over HTTP.
"$TMP/sigload" -addr "$ADDR" -proto http -tenants 2 -workers "$WORKERS" \
    -duration "$DURATION" -mix 0:1 -name read_heavy_http -json BENCH_server.json

# Phase 2: the same read-heavy mix over the binary protocol.
"$TMP/sigload" -addr "$ADDR" -binary-addr "127.0.0.1:$BIN_PORT" -proto binary \
    -tenants 2 -workers "$WORKERS" -duration "$DURATION" -mix 0:1 \
    -name read_heavy_binary -json BENCH_server.json -append

# Phase 3: mixed 1 insert : 4 searches over HTTP, logging acknowledged
# writes to the model file for the durability drill.
"$TMP/sigload" -addr "$ADDR" -proto http -tenants 2 -workers "$WORKERS" \
    -duration "$DURATION" -mix 1:4 -name mixed_1i4s -model "$MODEL" \
    -json BENCH_server.json -append

# Durability drill: more acknowledged writes racing a SIGTERM. sigload
# keeps appending to the model until the server stops answering; the
# server must exit 0 (graceful: queues drained, tenants checkpointed).
"$TMP/sigload" -addr "$ADDR" -proto http -tenants 2 -workers "$WORKERS" \
    -duration 30s -mix 1:1 -model "$MODEL" >/dev/null 2>&1 &
LOAD_PID=$!
sleep 1
kill -TERM "$SRV_PID"
if ! wait "$SRV_PID"; then
    echo "sigfiled exited nonzero on SIGTERM under load" >&2
    exit 1
fi
wait "$LOAD_PID" 2>/dev/null || true  # load fails once the server is gone; expected

# Restart over the same data dir and verify every acknowledged write.
start_server
"$TMP/sigload" -addr "$ADDR" -verify -model "$MODEL" -json BENCH_server.json -append

kill -TERM "$SRV_PID"
wait "$SRV_PID"
echo "wrote BENCH_server.json"
