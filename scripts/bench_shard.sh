#!/bin/sh
# Regenerates BENCH_shard.json: sharded (K-way) vs unsharded search QPS
# and latency percentiles at a fixed worker count, per facility.
#
#   scripts/bench_shard.sh [seconds] [shards] [workers] [facility]
#
# The JSON records the measuring machine's core count alongside every
# point: scatter-gather across K shards only buys throughput when there
# are cores to scatter onto, so the environment is part of the result.
# On a single-core machine K>1 is expected to cost a little (the merge
# is pure overhead) — CI gates accordingly.
set -eu
cd "$(dirname "$0")/.."

SECONDS_PER_POINT="${1:-3}"
SHARDS="${2:-4}"
WORKERS="${3:-4}"
FACILITY="${4:-all}"
OUT="BENCH_shard.json"

go run ./cmd/sigbench -throughput \
    -shards "$SHARDS" \
    -workers "$WORKERS" \
    -facility "$FACILITY" \
    -seconds "$SECONDS_PER_POINT" \
    -json "$OUT"

echo "wrote $OUT"
