// Package sigfile is a production-quality Go implementation of signature
// files as set access facilities for object-oriented databases,
// reproducing "Evaluation of Signature Files as Set Access Facilities in
// OODBs" (Ishikawa, Kitagawa, Ohbo; SIGMOD 1993).
//
// The library provides four facilities for indexing a set-valued
// attribute, all behind the AccessMethod interface:
//
//   - SSF — the sequential signature file: superimposed-coding set
//     signatures stored row-wise plus an OID file. Cheapest to update,
//     slowest to search (full scan).
//   - BSSF — the bit-sliced signature file: the signature matrix stored
//     column-wise, one file per bit position, so a query touches only the
//     slices it needs. The paper's recommended facility.
//   - FSSF — the frame-sliced signature file: the signature split into K
//     frames stored per-frame, a middle ground between SSF's cheap
//     updates and BSSF's selective reads.
//   - NIX — the nested index: a B⁺-tree from set element to the OIDs of
//     objects containing it, the classical comparison baseline.
//
// All four answer the set predicates of the paper's §2: T ⊇ Q
// (has-subset), T ⊆ Q (in-subset), overlap, set equality and membership —
// with no false dismissals, resolving signature false drops against the
// stored objects through a SetSource.
//
// # Quick start
//
//	sets := sigfile.MapSource{
//	    1: {"Baseball", "Fishing"},
//	    2: {"Baseball", "Golf", "Fishing"},
//	    3: {"Tennis"},
//	}
//	scheme, _ := sigfile.NewScheme(250, 2) // F=250 bits, m=2 bits/element
//	idx, _ := sigfile.Open(sigfile.Config{Kind: sigfile.KindBSSF, Scheme: scheme, Source: sets})
//	for oid, set := range sets {
//	    idx.Insert(oid, set)
//	}
//	res, _ := idx.Search(sigfile.Superset, []string{"Baseball", "Fishing"})
//	// res.OIDs == [1, 2]; res.Stats decomposes the page-access cost.
//
// Beyond the facilities themselves the module ships the paper's full
// analytical cost model (CostModel), the mini OODB and SQL-like query
// language of the paper's examples (cmd/sigdb, internal/query), and a
// harness regenerating every table and figure of the evaluation
// (cmd/sigbench, bench_test.go).
package sigfile

import (
	"context"
	"io"

	"sigfile/internal/core"
	"sigfile/internal/costmodel"
	"sigfile/internal/obs"
	"sigfile/internal/pagestore"
	"sigfile/internal/signature"
)

// Re-exported core types. See the respective internal packages for the
// full method sets.
type (
	// AccessMethod is a set access facility over one indexed set-valued
	// attribute: Insert, Delete, Search, StoragePages, Count.
	AccessMethod = core.AccessMethod
	// SSF is the sequential signature file.
	SSF = core.SSF
	// BSSF is the bit-sliced signature file.
	BSSF = core.BSSF
	// NIX is the nested index.
	NIX = core.NIX
	// FSSF is the frame-sliced signature file (extension: the third
	// classical organization, between SSF and BSSF).
	FSSF = core.FSSF
	// LSM is any facility kind on the log-structured write path:
	// WAL-backed memtable, immutable segments, background compaction
	// (DESIGN.md §13). Build one with Open plus WithLSM.
	LSM = core.LSM
	// FrameScheme is the frame-partitioned superimposed-coding
	// configuration FSSF uses.
	FrameScheme = signature.FrameScheme
	// Result is a search outcome: qualifying OIDs plus measured cost.
	Result = core.Result
	// SearchStats decomposes a search's page accesses the way the
	// paper's RC formulas do.
	SearchStats = core.SearchStats
	// SearchOptions is the resolved form of a SearchOption list — the
	// strategy struct the facilities consume after folding the option
	// functions. Exported for inspection; configure searches through the
	// WithX option functions.
	SearchOptions = core.SearchOptions
	// ShardedFacility hash-partitions the OID space across K inner
	// facilities and scatter-gathers searches over them (DESIGN.md §16).
	// Build one with Open plus WithShards.
	ShardedFacility = core.ShardedFacility
	// SearchRequest is one search of a batch passed to SearchMany.
	SearchRequest = core.SearchRequest
	// SetSource resolves an OID to its stored set during false-drop
	// resolution.
	SetSource = core.SetSource
	// MapSource is an in-memory SetSource.
	MapSource = core.MapSource
	// Scheme is a superimposed-coding configuration (width F, weight m).
	Scheme = signature.Scheme
	// Predicate is a set-comparison operator.
	Predicate = signature.Predicate
	// Store provides named page files (in memory or on disk) to a
	// facility.
	Store = pagestore.Store
	// Stats counts physical page accesses of one file.
	Stats = pagestore.Stats
	// CostModel evaluates the paper's analytical formulas; construct
	// with PaperModel or a costmodel literal.
	CostModel = costmodel.Params
	// Kind selects a facility for the unified Open constructor.
	Kind = core.Kind
	// Config describes the facility Open should build: Kind plus the
	// scheme, set source and (optionally) store and frame split.
	Config = core.Config
	// OpenOption tweaks a Config functionally; see WithStore, WithPrefix,
	// WithFrames, WithWorstCaseInserts.
	OpenOption = core.OpenOption
	// FacilityStats is a facility's self-description — object count,
	// measured mean set cardinality, signature design, tree height — the
	// statistics the cost-based planner feeds the analytical formulas.
	FacilityStats = core.FacilityStats
	// Describer is implemented by every built-in facility: Describe
	// returns its FacilityStats snapshot.
	Describer = core.Describer
	// Entry is one (OID, set) pair for batch loading.
	Entry = core.Entry
	// BatchInserter is satisfied by every facility; InsertBatch amortizes
	// page writes across a bulk load (the insertion-cost improvement the
	// paper's §6 anticipates, taken to its limit).
	BatchInserter = core.BatchInserter
	// SearchOption configures one Search/SearchContext call; see
	// WithParallelism, WithSmartRetrieval, WithTrace.
	SearchOption = core.SearchOption
	// Trace is one search's phase decomposition: index scan → OID map →
	// false-drop resolution, with page counts summing exactly to the
	// search's SearchStats.
	Trace = obs.Trace
	// TraceSink receives completed traces (must be concurrency-safe).
	TraceSink = obs.TraceSink
	// TraceCollector is a TraceSink retaining every emitted trace.
	TraceCollector = obs.Collector
	// Drift is one measured-vs-model retrieval-cost comparison.
	Drift = obs.Drift
	// DriftChecker compares measured page accesses against the analytical
	// cost model and flags divergence beyond a tolerance factor.
	DriftChecker = obs.DriftChecker
	// HealthState is a facility's degradation state: Healthy, Degraded
	// (read-only after a terminal storage fault) or Failed.
	HealthState = core.HealthState
	// HealthReporter is implemented by every built-in facility: Health
	// returns its current HealthState.
	HealthReporter = core.HealthReporter
	// Repairer resets a facility's health after the operator repaired (or
	// rebuilt) the underlying storage.
	Repairer = core.Repairer
	// RetryPolicy bounds the transient-fault retry loop of a RetryStore:
	// attempt budget, exponential backoff base/cap, jitter.
	RetryPolicy = pagestore.RetryPolicy
	// ScrubReport summarizes one background scrub pass: pages verified,
	// corruption found, repaired from the log, quarantined, released.
	ScrubReport = pagestore.ScrubReport
	// FaultStore wraps a Store for failure injection: armed counters,
	// seeded probabilistic transient schedules, persistent read/write
	// fault modes. Test tooling, usable for soak tests of client code.
	FaultStore = pagestore.FaultStore
	// TransientFaults configures a FaultStore's seeded probabilistic
	// schedule (per-operation fault probabilities and the errno mix).
	TransientFaults = pagestore.TransientFaults
	// DurableStore is the crash-safe store OpenDurableStore returns; it
	// adds Commit/Checkpoint, Scrub/StartScrubber and Quarantined to
	// Store.
	DurableStore = pagestore.DurableStore
)

// Sentinel errors, matchable with errors.Is through every wrapping layer.
var (
	// ErrWidthMismatch reports a signature whose width differs from the
	// scheme's F (e.g. reopening a facility under a different scheme).
	ErrWidthMismatch = signature.ErrWidthMismatch
	// ErrInvalidPredicate reports a Predicate value outside the five
	// operators of the paper's §2.
	ErrInvalidPredicate = signature.ErrInvalidPredicate
	// ErrClosed reports an operation on a closed page file.
	ErrClosed = pagestore.ErrClosed
	// ErrDegraded reports a write rejected by a degraded (read-only)
	// facility; searches keep serving. Repair with MarkRepaired.
	ErrDegraded = core.ErrDegraded
	// ErrFailed reports any operation on a failed facility.
	ErrFailed = core.ErrFailed
	// ErrChecksum reports a page whose on-disk checksum did not match —
	// detected corruption, never served to the caller.
	ErrChecksum = pagestore.ErrChecksum
	// ErrQuarantined reports a read of a corrupt page that could not be
	// repaired from the write-ahead log; a committed rewrite releases it.
	ErrQuarantined = pagestore.ErrQuarantined
	// ErrRetryExhausted reports a transient fault that persisted through
	// the whole retry budget; classified terminal.
	ErrRetryExhausted = pagestore.ErrRetryExhausted
)

// Facility health states, on a ladder that only descends until repair.
const (
	Healthy  = core.Healthy
	Degraded = core.Degraded
	Failed   = core.Failed
)

// HealthOf returns am's degradation state; access methods that do not
// track health read as Healthy.
func HealthOf(am AccessMethod) HealthState { return core.HealthOf(am) }

// DefaultRetryPolicy is the RetryPolicy NewRetryStore applies when given
// a zero policy: a small bounded exponential backoff with jitter.
var DefaultRetryPolicy = pagestore.DefaultRetryPolicy

// NewRetryStore wraps a store so every page operation retries
// transient faults (EIO, EINTR, short writes, ...) under pol before
// giving up with ErrRetryExhausted. Terminal faults (ENOSPC, corruption)
// are returned immediately.
func NewRetryStore(inner Store, pol RetryPolicy) Store {
	return pagestore.NewRetryStore(inner, pol)
}

// NewFaultStore wraps a store with the failure-injection device the
// resilience test suite uses: arm per-file fault counters, seed a
// probabilistic transient schedule, or fail all reads/writes
// persistently, then Heal.
func NewFaultStore(inner Store) *FaultStore { return pagestore.NewFaultStore(inner) }

// The facility kinds Open constructs.
const (
	KindSSF  = core.KindSSF
	KindBSSF = core.KindBSSF
	KindNIX  = core.KindNIX
	KindFSSF = core.KindFSSF
)

// The set predicates of the paper's §2.
const (
	// Superset is T ⊇ Q: targets containing every query element.
	Superset = signature.Superset
	// Subset is T ⊆ Q: targets contained in the query set.
	Subset = signature.Subset
	// Overlap is T ∩ Q ≠ ∅.
	Overlap = signature.Overlap
	// Equals is T = Q.
	Equals = signature.Equals
	// Contains is membership: q ∈ T.
	Contains = signature.Contains
)

// NewScheme returns a superimposed-coding scheme of f bits with m bits
// per element signature.
func NewScheme(f, m int) (*Scheme, error) { return signature.New(f, m) }

// OptimalM returns m_opt = F·ln2/D_t, the element-signature weight
// minimizing the T ⊇ Q false-drop probability for target sets of
// cardinality dt (paper eq. 3). Note §5's finding: for set access a much
// smaller m (2–3) usually yields better total retrieval cost.
func OptimalM(f int, dt float64) int { return signature.OptimalMInt(f, dt) }

// Open creates (or reopens) a set access facility from a Config — the
// unified construction entry point:
//
//	idx, err := sigfile.Open(sigfile.Config{
//	    Kind:   sigfile.KindBSSF,
//	    Scheme: scheme,
//	    Source: sets,
//	}, sigfile.WithStore(store))
//
// Scheme is required for the signature-file kinds (for KindFSSF the
// frame split is derived from it unless a FrameScheme or frame count is
// given) and ignored for KindNIX. A nil store keeps the facility in
// memory.
func Open(cfg Config, opts ...OpenOption) (AccessMethod, error) {
	return core.Open(cfg, opts...)
}

// WithStore directs the facility's files to store.
func WithStore(store Store) OpenOption { return core.WithStore(store) }

// WithPrefix namespaces the facility's files inside its store, so
// several facilities can share one.
func WithPrefix(prefix string) OpenOption { return core.WithPrefix(prefix) }

// WithFrames sets the FSSF frame count used when deriving the frame
// split from a flat Scheme; the count must divide F.
func WithFrames(k int) OpenOption { return core.WithFrames(k) }

// WithWorstCaseInserts makes BSSF insertion touch all F slice files —
// the paper's UC_I = F+1 accounting — instead of only the set bits.
func WithWorstCaseInserts() OpenOption { return core.WithWorstCaseInserts() }

// WithLSM puts the facility on the log-structured write path: inserts
// and deletes append to a WAL-backed memtable that seals into immutable
// segments, with compaction merging segments in the background of the
// caller's writes. Deletes become O(1) tombstone appends and insert
// page writes amortize below the paper's F+1 wall (DESIGN.md §13).
func WithLSM() OpenOption { return core.WithLSM() }

// WithLSMMemtableSize sets how many memtable operations accumulate
// before a flush seals them into a segment (default 256). Implies
// WithLSM.
func WithLSMMemtableSize(ops int) OpenOption { return core.WithLSMMemtableSize(ops) }

// WithLSMCompactAfter sets the sealed-segment count that triggers a
// compaction (default 4). Implies WithLSM.
func WithLSMCompactAfter(n int) OpenOption { return core.WithLSMCompactAfter(n) }

// WithShards hash-partitions the OID space across k inner facilities,
// each a full instance of the configured kind under its own store
// prefix, WAL and health ladder. Writes route to the owning shard;
// searches scatter-gather across all shards with deterministic merging,
// so results are byte-identical at any k (DESIGN.md §16). k ≤ 1 means
// unsharded. Composes with WithLSM: each shard runs its own LSM.
func WithShards(k int) OpenOption { return core.WithShards(k) }

// InsertAll loads entries into a facility, using its batch path (page
// writes amortized across the batch) when it implements BatchInserter
// and falling back to one-at-a-time inserts otherwise.
func InsertAll(am AccessMethod, entries []Entry) error { return core.InsertAll(am, entries) }

// NewFrameScheme returns a frame-sliced coding scheme: k frames of s
// bits (total width F = k·s) with m bits per element signature.
func NewFrameScheme(k, s, m int) (*FrameScheme, error) {
	return signature.NewFrameScheme(k, s, m)
}

// SearchMany answers a batch of searches against one facility, fanning
// the requests across up to parallelism goroutines (0 or 1 = one at a
// time; negative = one per CPU). Result i corresponds to request i.
// The built-in facilities are internally safe for concurrent searches,
// so SearchMany serves throughput workloads while every individual
// Result stays identical to a sequential call.
func SearchMany(am AccessMethod, reqs []SearchRequest, parallelism int) ([]*Result, error) {
	return core.SearchMany(am, reqs, parallelism)
}

// SearchManyContext is SearchMany with cancellation: when ctx fires,
// in-flight searches stop at their next page access and the joined error
// satisfies errors.Is(err, ctx.Err()).
func SearchManyContext(ctx context.Context, am AccessMethod, reqs []SearchRequest, parallelism int) ([]*Result, error) {
	return core.SearchManyContext(ctx, am, reqs, parallelism)
}

// Search options for AccessMethod.Search and SearchContext. Each returns
// a SearchOption; they are the only way to configure a search.

// WithParallelism fans the search across up to n goroutines (0 or 1 =
// sequential, negative = one per CPU). The Result — OIDs and every Stats
// field — is identical at any setting.
func WithParallelism(n int) SearchOption { return core.WithParallelism(n) }

// WithSmartRetrieval lets the facility pick its own probe caps — the
// paper's smart object retrieval (§5.1.3, §5.2.2) without hand-tuned
// constants. Explicit WithMaxProbeElements/WithMaxZeroSlices values take
// precedence; SSF ignores the option (its scan cost is fixed).
func WithSmartRetrieval() SearchOption { return core.WithSmartRetrieval() }

// WithMaxProbeElements caps how many query elements form the probe on
// T ⊇ Q searches (the paper's §5.1.3 smart retrieval). Zero = all.
func WithMaxProbeElements(k int) SearchOption { return core.WithMaxProbeElements(k) }

// WithMaxZeroSlices caps how many zero-position bit slices a BSSF T ⊆ Q
// search reads (§5.2.2). Zero = exhaustive.
func WithMaxZeroSlices(z int) SearchOption { return core.WithMaxZeroSlices(z) }

// WithTrace emits the search's phase trace to sink; it overrides any sink
// riding the context (ContextWithTraceSink).
func WithTrace(sink TraceSink) SearchOption { return core.WithTrace(sink) }

// ContextWithTraceSink returns a context carrying a trace sink: every
// SearchContext under it emits its phase trace there, including searches
// the query engine drives on the caller's behalf.
func ContextWithTraceSink(ctx context.Context, sink TraceSink) context.Context {
	return obs.ContextWithSink(ctx, sink)
}

// NewDriftChecker returns a cost-model drift checker against model with
// the given multiplicative tolerance factor (≤ 0 selects the default,
// 2×). Record measured mean page accesses per (facility, predicate, Dq)
// point; Report writes the verdict table.
func NewDriftChecker(model CostModel, factor float64) *DriftChecker {
	return obs.NewDriftChecker(model, factor)
}

// WriteMetricsJSON dumps the process metrics registry — every sigfile_*
// counter, gauge and histogram — as a flat JSON object.
func WriteMetricsJSON(w io.Writer) error { return obs.Default().WriteJSON(w) }

// WriteMetricsPrometheus dumps the process metrics registry in Prometheus
// text exposition format.
func WriteMetricsPrometheus(w io.Writer) error { return obs.Default().WritePrometheus(w) }

// Synchronize wraps an access method with a readers-writer lock so it
// can be shared across goroutines (concurrent searches, exclusive
// updates). The built-in facilities carry this contract internally and
// do not need the wrapper; it remains for custom AccessMethod
// implementations.
func Synchronize(am AccessMethod) AccessMethod { return core.Synchronize(am) }

// NewMemStore returns an in-memory page store.
func NewMemStore() Store { return pagestore.NewMemStore() }

// NewDiskStore returns a page store writing files under dir.
func NewDiskStore(dir string) (Store, error) { return pagestore.NewDiskStore(dir) }

// OpenDurableStore returns a crash-safe page store under dir: page writes
// are buffered until Commit, which logs them to a shared write-ahead log
// before applying, and every on-disk page carries a checksum verified on
// read. Opening the store replays any committed-but-unapplied log tail,
// so a facility survives a crash at any instant in exactly its last
// committed state. The returned store is a *DurableStore: beyond Store
// it carries Commit/Checkpoint, io.Closer, and Scrub/StartScrubber
// (checksum verification with WAL repair and quarantine).
func OpenDurableStore(dir string) (*DurableStore, error) { return pagestore.OpenDurableStore(dir) }

// PaperModel returns the analytical cost model instantiated with the
// paper's Table 2 constants (N=32000, P=4096, V=13000) for target
// cardinality dt and signature design (f, m).
func PaperModel(dt float64, f int, m float64) CostModel {
	return costmodel.Paper(dt, f, m)
}

// FalseDropSuperset returns the T ⊇ Q false-drop probability of a design
// (paper eq. 2).
func FalseDropSuperset(f, m int, dt, dq float64) float64 {
	return signature.FalseDropSuperset(float64(f), float64(m), dt, dq)
}

// FalseDropSubset returns the T ⊆ Q false-drop probability (paper eq. 6).
func FalseDropSubset(f, m int, dt, dq float64) float64 {
	return signature.FalseDropSubset(float64(f), float64(m), dt, dq)
}
