package client

import (
	"context"
	"fmt"
	"net"
	"sync"

	api "sigfile/api/v1"
)

// binaryTransport speaks the compact binary protocol. It pools
// connections — the protocol is a sequential request/response pipe per
// connection, so concurrency = pooled connections — and establishes
// them lazily.
//
// Tenant management (create/list) is an HTTP-only surface by design:
// the binary protocol covers the data path, where per-request overhead
// matters; management operations happen once per tenant lifetime.
type binaryTransport struct {
	addr string

	mu     sync.Mutex
	idle   []*binConn
	live   map[*binConn]struct{} // every open conn, idle or in-flight
	closed bool
}

// maxIdleConns caps pooled connections; extra connections dial and
// close per request under burst.
const maxIdleConns = 16

func newBinaryTransport(addr string) *binaryTransport {
	return &binaryTransport{addr: addr, live: map[*binConn]struct{}{}}
}

type binConn struct {
	c net.Conn
}

// get returns a pooled connection or dials a new one.
func (t *binaryTransport) get(ctx context.Context) (*binConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, fmt.Errorf("client: transport closed")
	}
	if n := len(t.idle); n > 0 {
		bc := t.idle[n-1]
		t.idle = t.idle[:n-1]
		t.mu.Unlock()
		return bc, nil
	}
	t.mu.Unlock()

	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", t.addr)
	if err != nil {
		return nil, err
	}
	if err := api.WriteHandshake(c); err != nil {
		c.Close()
		return nil, err
	}
	ver, err := api.ReadHandshake(c)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	if ver != api.BinaryVersion {
		c.Close()
		return nil, fmt.Errorf("client: server speaks binary protocol v%d, want v%d", ver, api.BinaryVersion)
	}
	bc := &binConn{c: c}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		c.Close()
		return nil, fmt.Errorf("client: transport closed")
	}
	t.live[bc] = struct{}{}
	t.mu.Unlock()
	return bc, nil
}

// drop closes a connection and forgets it.
func (t *binaryTransport) drop(bc *binConn) {
	bc.c.Close()
	t.mu.Lock()
	delete(t.live, bc)
	t.mu.Unlock()
}

// put returns a healthy connection to the pool.
func (t *binaryTransport) put(bc *binConn) {
	t.mu.Lock()
	if t.closed || len(t.idle) >= maxIdleConns {
		delete(t.live, bc)
		t.mu.Unlock()
		bc.c.Close()
		return
	}
	t.idle = append(t.idle, bc)
	t.mu.Unlock()
}

// close terminates every connection, idle and in-flight. An in-flight
// request fails with a connection error; on the server its context is
// canceled, aborting the work it was waiting for.
func (t *binaryTransport) close() error {
	t.mu.Lock()
	t.closed = true
	for bc := range t.live {
		bc.c.Close()
	}
	t.live = map[*binConn]struct{}{}
	t.idle = nil
	t.mu.Unlock()
	return nil
}

// roundTrip sends one request frame and reads its response frame. A ctx
// that fires mid-request closes the connection, which both unblocks the
// read here and — on the server — cancels the in-flight search through
// the connection-context plumbing. The closed connection is not pooled.
func (t *binaryTransport) roundTrip(ctx context.Context, msg byte, body []byte) (byte, []byte, error) {
	bc, err := t.get(ctx)
	if err != nil {
		return 0, nil, err
	}

	watchDone := make(chan struct{})
	watcherExit := make(chan struct{})
	go func() {
		defer close(watcherExit)
		select {
		case <-ctx.Done():
			bc.c.Close()
		case <-watchDone:
		}
	}()

	werr := api.WriteFrame(bc.c, append([]byte{msg}, body...))
	var payload []byte
	if werr == nil {
		payload, werr = api.ReadFrame(bc.c)
	}
	close(watchDone)
	<-watcherExit // after this the watcher can no longer close bc.c

	if werr != nil {
		t.drop(bc)
		if cerr := ctx.Err(); cerr != nil {
			return 0, nil, cerr
		}
		return 0, nil, werr
	}
	if ctx.Err() != nil {
		// ctx fired between the successful read and here; the watcher may
		// have closed the conn, so do not pool it.
		t.drop(bc)
	} else {
		t.put(bc)
	}

	if len(payload) == 0 {
		return 0, nil, fmt.Errorf("client: empty response frame")
	}
	rt, rbody := payload[0], payload[1:]
	if rt == api.MsgError {
		serr, derr := api.DecodeError(rbody)
		if derr != nil {
			return 0, nil, derr
		}
		return 0, nil, serr
	}
	if rt != msg|api.MsgResponseFlag {
		return 0, nil, fmt.Errorf("client: response type %d for request type %d", rt, msg)
	}
	return rt, rbody, nil
}

func (t *binaryTransport) insert(ctx context.Context, tenant string, req *api.InsertRequest) (*api.InsertResponse, error) {
	_, body, err := t.roundTrip(ctx, api.MsgInsert, api.EncodeInsertRequest(tenant, req))
	if err != nil {
		return nil, err
	}
	return api.DecodeInsertResponse(body)
}

func (t *binaryTransport) delete(ctx context.Context, tenant string, req *api.DeleteRequest) error {
	_, _, err := t.roundTrip(ctx, api.MsgDelete, api.EncodeDeleteRequest(tenant, req))
	return err
}

func (t *binaryTransport) search(ctx context.Context, tenant string, req *api.SearchRequest) (*api.SearchResponse, error) {
	_, body, err := t.roundTrip(ctx, api.MsgSearch, api.EncodeSearchRequest(tenant, req))
	if err != nil {
		return nil, err
	}
	return api.DecodeSearchResponse(body)
}

func (t *binaryTransport) searchMany(ctx context.Context, tenant string, req *api.SearchManyRequest) (*api.SearchManyResponse, error) {
	_, body, err := t.roundTrip(ctx, api.MsgSearchMany, api.EncodeSearchManyRequest(tenant, req))
	if err != nil {
		return nil, err
	}
	return api.DecodeSearchManyResponse(body)
}

func (t *binaryTransport) explain(ctx context.Context, tenant string, req *api.ExplainRequest) (*api.ExplainResponse, error) {
	_, body, err := t.roundTrip(ctx, api.MsgExplain, api.EncodeExplainRequest(tenant, req))
	if err != nil {
		return nil, err
	}
	return api.DecodeExplainResponse(body)
}

func (t *binaryTransport) health(ctx context.Context) (*api.HealthResponse, error) {
	_, body, err := t.roundTrip(ctx, api.MsgHealth, nil)
	if err != nil {
		return nil, err
	}
	return api.DecodeHealthResponse(body)
}

func (t *binaryTransport) stats(ctx context.Context, tenant string) (*api.StatsResponse, error) {
	_, body, err := t.roundTrip(ctx, api.MsgStats, api.EncodeStatsRequest(tenant))
	if err != nil {
		return nil, err
	}
	return api.DecodeStatsResponse(body)
}

func (t *binaryTransport) createTenant(ctx context.Context, req *api.CreateTenantRequest) (*api.TenantInfo, error) {
	return nil, fmt.Errorf("client: tenant management needs the HTTP API (use client.New)")
}

func (t *binaryTransport) tenants(ctx context.Context) (*api.TenantsResponse, error) {
	return nil, fmt.Errorf("client: tenant management needs the HTTP API (use client.New)")
}
