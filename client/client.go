// Package client is the Go client for a sigfiled server. One Client
// speaks either the HTTP/JSON API (New) or the compact binary protocol
// (Dial); both expose the same method set over the versioned schema in
// sigfile/api/v1.
//
// Errors returned by the server arrive as *api.Error carrying a stable
// wire code; because api.Error unwraps to the library sentinel its code
// maps from, callers keep using errors.Is(err, sigfile.ErrDegraded) (or
// ErrQuarantined, ErrInvalidPredicate, ...) across the network boundary
// exactly as they would against an embedded facility.
//
// Context deadlines map onto the server's request deadlines: a ctx that
// expires in 2s travels as deadline_ms=2000, so the server stops the
// search (same SearchContext cancellation an embedded caller gets) at
// the moment the client stops waiting.
package client

import (
	"context"
	"time"

	api "sigfile/api/v1"
)

// transport is the wire behind a Client: one round trip per call.
type transport interface {
	insert(ctx context.Context, tenant string, req *api.InsertRequest) (*api.InsertResponse, error)
	delete(ctx context.Context, tenant string, req *api.DeleteRequest) error
	search(ctx context.Context, tenant string, req *api.SearchRequest) (*api.SearchResponse, error)
	searchMany(ctx context.Context, tenant string, req *api.SearchManyRequest) (*api.SearchManyResponse, error)
	explain(ctx context.Context, tenant string, req *api.ExplainRequest) (*api.ExplainResponse, error)
	health(ctx context.Context) (*api.HealthResponse, error)
	stats(ctx context.Context, tenant string) (*api.StatsResponse, error)
	createTenant(ctx context.Context, req *api.CreateTenantRequest) (*api.TenantInfo, error)
	tenants(ctx context.Context) (*api.TenantsResponse, error)
	close() error
}

// Client talks to one sigfiled server.
type Client struct {
	t transport
}

// New returns a client over the HTTP/JSON API at baseURL, e.g.
// "http://127.0.0.1:8080".
func New(baseURL string) *Client {
	return &Client{t: newHTTPTransport(baseURL)}
}

// Dial returns a client over the binary protocol at addr, e.g.
// "127.0.0.1:8081". Connections are pooled (one per concurrent
// request, capped) and established lazily.
func Dial(addr string) *Client {
	return &Client{t: newBinaryTransport(addr)}
}

// Close releases the client's connections.
func (c *Client) Close() error { return c.t.close() }

// deadlineMS converts a context deadline into the wire's deadline_ms
// field (0 = inherit the server default).
func deadlineMS(ctx context.Context) int64 {
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			return ms
		}
		return 1 // already (nearly) expired: tell the server to give up fast
	}
	return 0
}

// CreateTenant creates a tenant database on the server.
func (c *Client) CreateTenant(ctx context.Context, name string, cfg api.TenantConfig) (*api.TenantInfo, error) {
	return c.t.createTenant(ctx, &api.CreateTenantRequest{Name: name, Config: cfg})
}

// Tenants lists the server's tenants.
func (c *Client) Tenants(ctx context.Context) (*api.TenantsResponse, error) {
	return c.t.tenants(ctx)
}

// Insert registers one object's set value with a tenant and returns the
// server-assigned OID. The write is durable when Insert returns.
func (c *Client) Insert(ctx context.Context, tenant string, elems []string) (uint64, error) {
	resp, err := c.t.insert(ctx, tenant, &api.InsertRequest{Elems: elems, DeadlineMS: deadlineMS(ctx)})
	if err != nil {
		return 0, err
	}
	return resp.OID, nil
}

// Delete removes one object from a tenant.
func (c *Client) Delete(ctx context.Context, tenant string, oid uint64) error {
	return c.t.delete(ctx, tenant, &api.DeleteRequest{OID: oid, DeadlineMS: deadlineMS(ctx)})
}

// Search answers one set predicate (an api.Pred* string) against a
// tenant. opts may be nil to let the server's planner choose everything.
func (c *Client) Search(ctx context.Context, tenant, pred string, query []string, opts *api.SearchOptions) (*api.SearchResponse, error) {
	return c.t.search(ctx, tenant, &api.SearchRequest{
		Pred: pred, Query: query, Options: opts, DeadlineMS: deadlineMS(ctx),
	})
}

// SearchMany answers a batch of searches in one round trip.
func (c *Client) SearchMany(ctx context.Context, tenant string, searches []api.SearchItem, opts *api.SearchOptions) (*api.SearchManyResponse, error) {
	return c.t.searchMany(ctx, tenant, &api.SearchManyRequest{
		Searches: searches, Options: opts, DeadlineMS: deadlineMS(ctx),
	})
}

// Explain plans a search without executing it, returning the planner's
// full cost table.
func (c *Client) Explain(ctx context.Context, tenant, pred string, query []string) (*api.ExplainResponse, error) {
	return c.t.explain(ctx, tenant, &api.ExplainRequest{Pred: pred, Query: query})
}

// Health reports the server's per-tenant, per-facility health ladder.
func (c *Client) Health(ctx context.Context) (*api.HealthResponse, error) {
	return c.t.health(ctx)
}

// Stats reports a tenant's per-facility catalog statistics — the
// numbers the server's cost-based planner reads (N, D_t, F, m, storage
// pages), plus the shard layout and per-shard health when the tenant is
// sharded.
func (c *Client) Stats(ctx context.Context, tenant string) (*api.StatsResponse, error) {
	return c.t.stats(ctx, tenant)
}
