package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	api "sigfile/api/v1"
)

// httpTransport speaks the HTTP/JSON API.
type httpTransport struct {
	base string
	hc   *http.Client
}

func newHTTPTransport(baseURL string) *httpTransport {
	return &httpTransport{
		base: strings.TrimRight(baseURL, "/"),
		// A dedicated client so Close can drop idle connections without
		// touching http.DefaultClient.
		hc: &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}},
	}
}

func (t *httpTransport) close() error {
	t.hc.CloseIdleConnections()
	return nil
}

// do runs one JSON round trip; out may be nil for empty responses.
func (t *httpTransport) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, t.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := t.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb api.ErrorBody
		if jerr := json.NewDecoder(resp.Body).Decode(&eb); jerr == nil && eb.Error != nil {
			return eb.Error
		}
		return fmt.Errorf("client: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func tenantPath(tenant, op string) string {
	return api.PathPrefix + "/t/" + tenant + "/" + op
}

func (t *httpTransport) insert(ctx context.Context, tenant string, req *api.InsertRequest) (*api.InsertResponse, error) {
	var resp api.InsertResponse
	if err := t.do(ctx, http.MethodPost, tenantPath(tenant, "insert"), req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t *httpTransport) delete(ctx context.Context, tenant string, req *api.DeleteRequest) error {
	return t.do(ctx, http.MethodPost, tenantPath(tenant, "delete"), req, nil)
}

func (t *httpTransport) search(ctx context.Context, tenant string, req *api.SearchRequest) (*api.SearchResponse, error) {
	var resp api.SearchResponse
	if err := t.do(ctx, http.MethodPost, tenantPath(tenant, "search"), req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t *httpTransport) searchMany(ctx context.Context, tenant string, req *api.SearchManyRequest) (*api.SearchManyResponse, error) {
	var resp api.SearchManyResponse
	if err := t.do(ctx, http.MethodPost, tenantPath(tenant, "search_many"), req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t *httpTransport) explain(ctx context.Context, tenant string, req *api.ExplainRequest) (*api.ExplainResponse, error) {
	var resp api.ExplainResponse
	if err := t.do(ctx, http.MethodPost, tenantPath(tenant, "explain"), req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t *httpTransport) health(ctx context.Context) (*api.HealthResponse, error) {
	var resp api.HealthResponse
	if err := t.do(ctx, http.MethodGet, api.PathPrefix+"/health", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t *httpTransport) stats(ctx context.Context, tenant string) (*api.StatsResponse, error) {
	var resp api.StatsResponse
	if err := t.do(ctx, http.MethodGet, api.PathPrefix+"/tenants/"+tenant+"/stats", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t *httpTransport) createTenant(ctx context.Context, req *api.CreateTenantRequest) (*api.TenantInfo, error) {
	var resp api.TenantInfo
	if err := t.do(ctx, http.MethodPost, api.PathPrefix+"/tenants", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t *httpTransport) tenants(ctx context.Context) (*api.TenantsResponse, error) {
	var resp api.TenantsResponse
	if err := t.do(ctx, http.MethodGet, api.PathPrefix+"/tenants", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
