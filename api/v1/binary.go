package api

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// The binary protocol: a compact length-prefixed framing of the same
// schema the HTTP/JSON endpoints speak, for clients that care about
// per-request overhead.
//
// Connection layout:
//
//	handshake  = magic "SIGF" + version byte (BinaryVersion).
//	frame      = uint32 big-endian payload length + payload.
//	payload    = message-type byte + body.
//
// The server answers each request frame with exactly one response frame
// (type = request type | MsgResponseFlag on success, MsgError on
// failure), in order, so a connection is a sequential request/response
// pipe; concurrency comes from opening several connections (the client
// package pools them). Bodies are uvarint/length-prefixed encodings —
// OID lists are delta-encoded, which together with uvarints makes a
// 1000-OID search response a few KB instead of the tens of KB the JSON
// form needs.
//
// Versioning: BinaryVersion is negotiated in the handshake; a server
// refuses a handshake whose version it does not speak with an Error
// frame (CodeBadRequest) before closing. Body layouts never change
// within a version.

// Handshake constants.
var binaryMagic = [4]byte{'S', 'I', 'G', 'F'}

// BinaryVersion is the protocol generation this package encodes.
const BinaryVersion byte = 1

// MaxFrame bounds a frame payload; a peer announcing more is treated as
// corrupt framing and the connection is dropped.
const MaxFrame = 16 << 20

// Message types. Requests use the base value; the matching success
// response sets MsgResponseFlag.
const (
	MsgInsert     byte = 1
	MsgDelete     byte = 2
	MsgSearch     byte = 3
	MsgSearchMany byte = 4
	MsgExplain    byte = 5
	MsgHealth     byte = 6
	MsgStats      byte = 7

	// MsgResponseFlag marks a success response to the request type in
	// the low bits.
	MsgResponseFlag byte = 0x80
	// MsgError is the failure response to any request: body = code
	// string + message string.
	MsgError byte = 0xFF
)

// WriteHandshake sends the protocol magic and version.
func WriteHandshake(w io.Writer) error {
	var hs [5]byte
	copy(hs[:], binaryMagic[:])
	hs[4] = BinaryVersion
	_, err := w.Write(hs[:])
	return err
}

// ReadHandshake consumes and validates a handshake, returning the
// peer's version. A bad magic is a framing error; an unsupported
// version is the caller's to refuse (so it can answer with a versioned
// Error frame).
func ReadHandshake(r io.Reader) (byte, error) {
	var hs [5]byte
	if _, err := io.ReadFull(r, hs[:]); err != nil {
		return 0, err
	}
	if [4]byte(hs[:4]) != binaryMagic {
		return 0, fmt.Errorf("api: bad protocol magic %q", hs[:4])
	}
	return hs[4], nil
}

// WriteFrame writes one frame: length prefix + payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("api: frame of %d bytes exceeds MaxFrame", len(payload))
	}
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(payload)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame payload.
func ReadFrame(r io.Reader) ([]byte, error) {
	var n [4]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(n[:])
	if size > MaxFrame {
		return nil, fmt.Errorf("api: frame of %d bytes exceeds MaxFrame", size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// ---- body encoding primitives ----

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendStrings(b []byte, ss []string) []byte {
	b = binary.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = appendString(b, s)
	}
	return b
}

// appendOIDs delta-encodes an ascending OID list (the search result
// contract); out-of-order lists still round-trip via a zero delta reset
// marker-free fallback: deltas are encoded as raw values when the list
// is not ascending, flagged by the leading byte.
func appendOIDs(b []byte, oids []uint64) []byte {
	ascending := true
	for i := 1; i < len(oids); i++ {
		if oids[i] < oids[i-1] {
			ascending = false
			break
		}
	}
	if ascending {
		b = append(b, 1)
		b = binary.AppendUvarint(b, uint64(len(oids)))
		prev := uint64(0)
		for _, o := range oids {
			b = binary.AppendUvarint(b, o-prev)
			prev = o
		}
		return b
	}
	b = append(b, 0)
	b = binary.AppendUvarint(b, uint64(len(oids)))
	for _, o := range oids {
		b = binary.AppendUvarint(b, o)
	}
	return b
}

// decoder walks a body, latching the first error; callers check Err
// once at the end instead of after every field.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("api: truncated or corrupt %s field", what)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail("byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)) < n {
		d.fail("string")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *decoder) strings() []string {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) { // each element costs ≥1 byte
		d.fail("string list")
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		out = append(out, d.string())
	}
	return out
}

func (d *decoder) oids() []uint64 {
	ascending := d.byte()
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b))+1 { // each delta costs ≥1 byte (n may be 0)
		d.fail("oid list")
		return nil
	}
	out := make([]uint64, 0, n)
	prev := uint64(0)
	for i := uint64(0); i < n && d.err == nil; i++ {
		v := d.uvarint()
		if ascending == 1 {
			v += prev
			prev = v
		}
		out = append(out, v)
	}
	return out
}

// ---- message bodies ----
// Every encoder produces the body only; the caller prepends the message
// type byte and frames it. Every decoder takes the body after the type
// byte. Tenant-scoped requests lead with the tenant name so the server
// routes before decoding the rest.

func appendOptions(b []byte, o *SearchOptions) []byte {
	if o == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = binary.AppendVarint(b, int64(o.Parallelism))
	b = appendUvarint(b, uint64(o.MaxProbeElements))
	b = appendUvarint(b, uint64(o.MaxZeroSlices))
	return b
}

func (d *decoder) options() *SearchOptions {
	if d.byte() == 0 || d.err != nil {
		return nil
	}
	var o SearchOptions
	if v, n := binary.Varint(d.b); n > 0 {
		o.Parallelism = int(v)
		d.b = d.b[n:]
	} else {
		d.fail("options")
		return nil
	}
	o.MaxProbeElements = int(d.uvarint())
	o.MaxZeroSlices = int(d.uvarint())
	return &o
}

// EncodeInsertRequest encodes (tenant, req) as a MsgInsert body.
func EncodeInsertRequest(tenant string, req *InsertRequest) []byte {
	b := appendString(nil, tenant)
	b = appendUvarint(b, uint64(req.DeadlineMS))
	return appendStrings(b, req.Elems)
}

// DecodeInsertRequest decodes a MsgInsert body.
func DecodeInsertRequest(body []byte) (tenant string, req *InsertRequest, err error) {
	d := &decoder{b: body}
	tenant = d.string()
	req = &InsertRequest{DeadlineMS: int64(d.uvarint())}
	req.Elems = d.strings()
	return tenant, req, d.err
}

// EncodeInsertResponse encodes a MsgInsert success body.
func EncodeInsertResponse(resp *InsertResponse) []byte {
	return appendUvarint(nil, resp.OID)
}

// DecodeInsertResponse decodes a MsgInsert success body.
func DecodeInsertResponse(body []byte) (*InsertResponse, error) {
	d := &decoder{b: body}
	resp := &InsertResponse{OID: d.uvarint()}
	return resp, d.err
}

// EncodeDeleteRequest encodes (tenant, req) as a MsgDelete body.
func EncodeDeleteRequest(tenant string, req *DeleteRequest) []byte {
	b := appendString(nil, tenant)
	b = appendUvarint(b, uint64(req.DeadlineMS))
	return appendUvarint(b, req.OID)
}

// DecodeDeleteRequest decodes a MsgDelete body.
func DecodeDeleteRequest(body []byte) (tenant string, req *DeleteRequest, err error) {
	d := &decoder{b: body}
	tenant = d.string()
	req = &DeleteRequest{DeadlineMS: int64(d.uvarint())}
	req.OID = d.uvarint()
	return tenant, req, d.err
}

// EncodeSearchRequest encodes (tenant, req) as a MsgSearch body.
func EncodeSearchRequest(tenant string, req *SearchRequest) []byte {
	b := appendString(nil, tenant)
	b = appendUvarint(b, uint64(req.DeadlineMS))
	b = appendString(b, req.Pred)
	b = appendStrings(b, req.Query)
	return appendOptions(b, req.Options)
}

// DecodeSearchRequest decodes a MsgSearch body.
func DecodeSearchRequest(body []byte) (tenant string, req *SearchRequest, err error) {
	d := &decoder{b: body}
	tenant = d.string()
	req = &SearchRequest{DeadlineMS: int64(d.uvarint())}
	req.Pred = d.string()
	req.Query = d.strings()
	req.Options = d.options()
	return tenant, req, d.err
}

func appendStats(b []byte, s *SearchStats) []byte {
	if s == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	for _, v := range []uint64{
		uint64(s.QueryCardinality), uint64(s.ProbedElements), uint64(s.SlicesRead),
		uint64(s.IndexPages), uint64(s.OIDPages), uint64(s.ObjectFetches),
		uint64(s.Candidates), uint64(s.Results), uint64(s.FalseDrops),
		uint64(s.TotalPages),
	} {
		b = appendUvarint(b, v)
	}
	return b
}

func (d *decoder) stats() *SearchStats {
	if d.byte() == 0 || d.err != nil {
		return nil
	}
	return &SearchStats{
		QueryCardinality: int(d.uvarint()),
		ProbedElements:   int(d.uvarint()),
		SlicesRead:       int(d.uvarint()),
		IndexPages:       int64(d.uvarint()),
		OIDPages:         int64(d.uvarint()),
		ObjectFetches:    int64(d.uvarint()),
		Candidates:       int(d.uvarint()),
		Results:          int(d.uvarint()),
		FalseDrops:       int(d.uvarint()),
		TotalPages:       int64(d.uvarint()),
	}
}

func appendSearchResponse(b []byte, resp *SearchResponse) []byte {
	b = appendOIDs(b, resp.OIDs)
	b = appendString(b, resp.Plan)
	b = appendStats(b, resp.Stats)
	return appendUvarint(b, uint64(resp.ElapsedUS))
}

func (d *decoder) searchResponse() *SearchResponse {
	resp := &SearchResponse{OIDs: d.oids()}
	resp.Plan = d.string()
	resp.Stats = d.stats()
	resp.ElapsedUS = int64(d.uvarint())
	return resp
}

// EncodeSearchResponse encodes a MsgSearch success body.
func EncodeSearchResponse(resp *SearchResponse) []byte {
	return appendSearchResponse(nil, resp)
}

// DecodeSearchResponse decodes a MsgSearch success body.
func DecodeSearchResponse(body []byte) (*SearchResponse, error) {
	d := &decoder{b: body}
	resp := d.searchResponse()
	return resp, d.err
}

// EncodeSearchManyRequest encodes (tenant, req) as a MsgSearchMany body.
func EncodeSearchManyRequest(tenant string, req *SearchManyRequest) []byte {
	b := appendString(nil, tenant)
	b = appendUvarint(b, uint64(req.DeadlineMS))
	b = appendOptions(b, req.Options)
	b = appendUvarint(b, uint64(len(req.Searches)))
	for _, s := range req.Searches {
		b = appendString(b, s.Pred)
		b = appendStrings(b, s.Query)
	}
	return b
}

// DecodeSearchManyRequest decodes a MsgSearchMany body.
func DecodeSearchManyRequest(body []byte) (tenant string, req *SearchManyRequest, err error) {
	d := &decoder{b: body}
	tenant = d.string()
	req = &SearchManyRequest{DeadlineMS: int64(d.uvarint())}
	req.Options = d.options()
	n := d.uvarint()
	if n > uint64(len(d.b)) {
		d.fail("search list")
		return tenant, req, d.err
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		item := SearchItem{Pred: d.string()}
		item.Query = d.strings()
		req.Searches = append(req.Searches, item)
	}
	return tenant, req, d.err
}

// EncodeSearchManyResponse encodes a MsgSearchMany success body.
func EncodeSearchManyResponse(resp *SearchManyResponse) []byte {
	b := appendUvarint(nil, uint64(len(resp.Results)))
	for i := range resp.Results {
		b = appendSearchResponse(b, &resp.Results[i])
	}
	return b
}

// DecodeSearchManyResponse decodes a MsgSearchMany success body.
func DecodeSearchManyResponse(body []byte) (*SearchManyResponse, error) {
	d := &decoder{b: body}
	n := d.uvarint()
	if n > uint64(len(d.b))+1 {
		d.fail("result list")
		return nil, d.err
	}
	resp := &SearchManyResponse{}
	for i := uint64(0); i < n && d.err == nil; i++ {
		resp.Results = append(resp.Results, *d.searchResponse())
	}
	return resp, d.err
}

// EncodeExplainRequest encodes (tenant, req) as a MsgExplain body.
func EncodeExplainRequest(tenant string, req *ExplainRequest) []byte {
	b := appendString(nil, tenant)
	b = appendUvarint(b, uint64(req.DeadlineMS))
	b = appendString(b, req.Pred)
	return appendStrings(b, req.Query)
}

// DecodeExplainRequest decodes a MsgExplain body.
func DecodeExplainRequest(body []byte) (tenant string, req *ExplainRequest, err error) {
	d := &decoder{b: body}
	tenant = d.string()
	req = &ExplainRequest{DeadlineMS: int64(d.uvarint())}
	req.Pred = d.string()
	req.Query = d.strings()
	return tenant, req, d.err
}

// EncodeExplainResponse encodes a MsgExplain success body.
func EncodeExplainResponse(resp *ExplainResponse) []byte {
	return appendString(nil, resp.Text)
}

// DecodeExplainResponse decodes a MsgExplain success body.
func DecodeExplainResponse(body []byte) (*ExplainResponse, error) {
	d := &decoder{b: body}
	resp := &ExplainResponse{Text: d.string()}
	return resp, d.err
}

// EncodeHealthResponse encodes a MsgHealth success body.
func EncodeHealthResponse(resp *HealthResponse) []byte {
	b := appendString(nil, resp.Status)
	b = appendString(b, resp.Version)
	b = appendUvarint(b, uint64(len(resp.Tenants)))
	for _, t := range resp.Tenants {
		b = appendString(b, t.Name)
		b = appendUvarint(b, uint64(t.Objects))
		b = appendUvarint(b, uint64(t.QueueDepth))
		b = appendUvarint(b, uint64(t.QueueCap))
		b = appendUvarint(b, uint64(len(t.Facilities)))
		for _, f := range t.Facilities {
			b = appendString(b, f.Kind)
			b = appendString(b, f.Health)
			b = appendUvarint(b, uint64(f.Pages))
			b = appendUvarint(b, uint64(f.Entries))
		}
	}
	return b
}

// DecodeHealthResponse decodes a MsgHealth success body.
func DecodeHealthResponse(body []byte) (*HealthResponse, error) {
	d := &decoder{b: body}
	resp := &HealthResponse{Status: d.string(), Version: d.string()}
	n := d.uvarint()
	if n > uint64(len(d.b))+1 {
		d.fail("tenant list")
		return nil, d.err
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		t := TenantHealth{Name: d.string()}
		t.Objects = int(d.uvarint())
		t.QueueDepth = int(d.uvarint())
		t.QueueCap = int(d.uvarint())
		fn := d.uvarint()
		if fn > uint64(len(d.b))+1 {
			d.fail("facility list")
			break
		}
		for j := uint64(0); j < fn && d.err == nil; j++ {
			f := FacilityHealth{Kind: d.string(), Health: d.string()}
			f.Pages = int(d.uvarint())
			f.Entries = int(d.uvarint())
			t.Facilities = append(t.Facilities, f)
		}
		resp.Tenants = append(resp.Tenants, t)
	}
	return resp, d.err
}

// EncodeStatsRequest encodes a MsgStats body: just the tenant name (the
// HTTP form is a body-less GET).
func EncodeStatsRequest(tenant string) []byte {
	return appendString(nil, tenant)
}

// DecodeStatsRequest decodes a MsgStats body.
func DecodeStatsRequest(body []byte) (tenant string, err error) {
	d := &decoder{b: body}
	tenant = d.string()
	return tenant, d.err
}

// appendInts uvarint-encodes a non-negative int list with a count prefix.
func appendInts(b []byte, vs []int) []byte {
	b = appendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = appendUvarint(b, uint64(v))
	}
	return b
}

func (d *decoder) ints() []int {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b))+1 { // each element costs ≥1 byte (n may be 0)
		d.fail("int list")
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]int, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		out = append(out, int(d.uvarint()))
	}
	return out
}

// EncodeStatsResponse encodes a MsgStats success body.
func EncodeStatsResponse(resp *StatsResponse) []byte {
	b := appendString(nil, resp.Tenant)
	b = appendUvarint(b, uint64(resp.Objects))
	b = appendUvarint(b, uint64(len(resp.Facilities)))
	for _, f := range resp.Facilities {
		b = appendString(b, f.Kind)
		b = appendUvarint(b, uint64(f.Count))
		b = appendUvarint(b, math.Float64bits(f.AvgSetCard))
		b = appendUvarint(b, uint64(f.F))
		b = appendUvarint(b, uint64(f.M))
		b = appendUvarint(b, uint64(f.Frames))
		b = appendUvarint(b, uint64(f.DistinctElems))
		b = appendUvarint(b, uint64(f.LookupPages))
		b = appendUvarint(b, uint64(f.StoragePages))
		b = appendString(b, f.Health)
		b = appendUvarint(b, uint64(f.Shards))
		b = appendStrings(b, f.ShardHealth)
		b = appendInts(b, f.SegmentCounts)
		b = appendUvarint(b, uint64(f.MemtableCount))
	}
	return b
}

// DecodeStatsResponse decodes a MsgStats success body.
func DecodeStatsResponse(body []byte) (*StatsResponse, error) {
	d := &decoder{b: body}
	resp := &StatsResponse{Tenant: d.string()}
	resp.Objects = int(d.uvarint())
	n := d.uvarint()
	if n > uint64(len(d.b))+1 {
		d.fail("facility list")
		return nil, d.err
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		f := FacilityStats{Kind: d.string()}
		f.Count = int(d.uvarint())
		f.AvgSetCard = math.Float64frombits(d.uvarint())
		f.F = int(d.uvarint())
		f.M = int(d.uvarint())
		f.Frames = int(d.uvarint())
		f.DistinctElems = int(d.uvarint())
		f.LookupPages = int(d.uvarint())
		f.StoragePages = int(d.uvarint())
		f.Health = d.string()
		f.Shards = int(d.uvarint())
		if sh := d.strings(); len(sh) > 0 {
			f.ShardHealth = sh
		}
		f.SegmentCounts = d.ints()
		f.MemtableCount = int(d.uvarint())
		resp.Facilities = append(resp.Facilities, f)
	}
	return resp, d.err
}

// EncodeError encodes a MsgError body.
func EncodeError(werr *Error) []byte {
	b := appendString(nil, string(werr.Code))
	return appendString(b, werr.Message)
}

// DecodeError decodes a MsgError body.
func DecodeError(body []byte) (*Error, error) {
	d := &decoder{b: body}
	werr := &Error{Code: Code(d.string())}
	werr.Message = d.string()
	return werr, d.err
}
