package api

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"sigfile"
)

// Code is a stable wire error code. Codes are part of the versioned
// schema: clients switch on them, so a code, once shipped, never changes
// meaning and is never removed within a version.
//
// Every sentinel error the library exports maps to exactly one code
// (sentinelCodes below); TestSentinelCoverage parses the facade package
// and fails when a new sentinel appears without a code assignment here.
type Code string

// The wire error codes of schema v1.
const (
	// CodeOK is never sent in an error body; it is the zero-cost verdict
	// CodeOf returns for a nil error.
	CodeOK Code = "OK"

	// Library sentinels (see sentinelCodes for the mapping).
	CodeInvalidPredicate Code = "INVALID_PREDICATE"
	CodeWidthMismatch    Code = "WIDTH_MISMATCH"
	CodeClosed           Code = "CLOSED"
	CodeDegraded         Code = "DEGRADED"
	CodeFailed           Code = "FAILED"
	CodeCorrupt          Code = "CORRUPT"
	CodeQuarantined      Code = "QUARANTINED"
	CodeRetryExhausted   Code = "RETRY_EXHAUSTED"

	// Request lifecycle.
	CodeDeadlineExceeded Code = "DEADLINE_EXCEEDED"
	CodeCanceled         Code = "CANCELED"

	// Server-side conditions.
	CodeOverloaded    Code = "OVERLOADED"
	CodeNotFound      Code = "NOT_FOUND"
	CodeAlreadyExists Code = "ALREADY_EXISTS"
	CodeBadRequest    Code = "BAD_REQUEST"
	CodeShuttingDown  Code = "SHUTTING_DOWN"
	CodeInternal      Code = "INTERNAL"
)

// sentinelCodes maps every exported sentinel error of the sigfile facade
// to its wire code. The Name column exists so TestSentinelCoverage can
// cross-check this table against the parsed facade source: adding a new
// `var ErrX = ...` to the facade without a row here fails that test.
var sentinelCodes = []struct {
	Name string
	Err  error
	Code Code
}{
	{"ErrInvalidPredicate", sigfile.ErrInvalidPredicate, CodeInvalidPredicate},
	{"ErrWidthMismatch", sigfile.ErrWidthMismatch, CodeWidthMismatch},
	{"ErrClosed", sigfile.ErrClosed, CodeClosed},
	{"ErrDegraded", sigfile.ErrDegraded, CodeDegraded},
	{"ErrFailed", sigfile.ErrFailed, CodeFailed},
	{"ErrChecksum", sigfile.ErrChecksum, CodeCorrupt},
	{"ErrQuarantined", sigfile.ErrQuarantined, CodeQuarantined},
	{"ErrRetryExhausted", sigfile.ErrRetryExhausted, CodeRetryExhausted},
}

// CodeOf classifies an error into its wire code: the library sentinels
// through errors.Is (so wrapping depth does not matter), context errors
// to the lifecycle codes, *Error pass-through, and everything else to
// CodeInternal.
//
// Order matters where errors wrap each other: a search canceled by its
// deadline wraps context.DeadlineExceeded, which must win over any
// storage error it interrupted, so the lifecycle checks run first.
func CodeOf(err error) Code {
	if err == nil {
		return CodeOK
	}
	var werr *Error
	if errors.As(err, &werr) {
		return werr.Code
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadlineExceeded
	case errors.Is(err, context.Canceled):
		return CodeCanceled
	}
	// ErrQuarantined wraps ErrChecksum conceptually (both are corruption
	// verdicts); check the more specific sentinel first.
	if errors.Is(err, sigfile.ErrQuarantined) {
		return CodeQuarantined
	}
	for _, sc := range sentinelCodes {
		if errors.Is(err, sc.Err) {
			return sc.Code
		}
	}
	return CodeInternal
}

// Sentinel returns the library sentinel a code maps back from, or nil
// for server-only and lifecycle codes. It is the inverse of CodeOf for
// the sentinel rows, letting Error.Unwrap re-establish errors.Is
// matches on the client side of the wire.
func (c Code) Sentinel() error {
	switch c {
	case CodeDeadlineExceeded:
		return context.DeadlineExceeded
	case CodeCanceled:
		return context.Canceled
	}
	for _, sc := range sentinelCodes {
		if sc.Code == c {
			return sc.Err
		}
	}
	return nil
}

// HTTPStatus maps a code onto the HTTP response status the server uses.
func (c Code) HTTPStatus() int {
	switch c {
	case CodeOK:
		return http.StatusOK
	case CodeBadRequest, CodeInvalidPredicate, CodeWidthMismatch:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeAlreadyExists:
		return http.StatusConflict
	case CodeOverloaded:
		// The backpressure verdict: the tenant's bounded write queue is
		// full. Retryable; clients should back off.
		return http.StatusTooManyRequests
	case CodeDeadlineExceeded:
		return http.StatusGatewayTimeout
	case CodeCanceled:
		// The client went away mid-request; 499 per the de-facto
		// (nginx) convention. Mostly appears in logs and metrics — the
		// canceled client is not reading the response.
		return 499
	case CodeDegraded, CodeFailed, CodeQuarantined, CodeRetryExhausted,
		CodeClosed, CodeShuttingDown:
		return http.StatusServiceUnavailable
	case CodeCorrupt, CodeInternal:
		return http.StatusInternalServerError
	default:
		return http.StatusInternalServerError
	}
}

// Errorf builds a wire error with the given code.
func Errorf(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// WrapErr converts any error into a wire error, classifying it through
// CodeOf and preserving the message.
func WrapErr(err error) *Error {
	if err == nil {
		return nil
	}
	var werr *Error
	if errors.As(err, &werr) {
		return werr
	}
	return &Error{Code: CodeOf(err), Message: err.Error()}
}
