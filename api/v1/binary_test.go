package api

import (
	"bytes"
	"reflect"
	"testing"
)

func TestHandshakeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHandshake(&buf); err != nil {
		t.Fatal(err)
	}
	ver, err := ReadHandshake(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ver != BinaryVersion {
		t.Fatalf("version = %d, want %d", ver, BinaryVersion)
	}
	if _, err := ReadHandshake(bytes.NewReader([]byte("NOPE\x01"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frames")
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q, want %q", got, payload)
	}
	// Oversized announcement is refused before allocation.
	var huge bytes.Buffer
	huge.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&huge); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestInsertRequestRoundTrip(t *testing.T) {
	req := &InsertRequest{Elems: []string{"a", "b", "c"}, DeadlineMS: 1500}
	tn, got, err := DecodeInsertRequest(EncodeInsertRequest("acme", req))
	if err != nil {
		t.Fatal(err)
	}
	if tn != "acme" || !reflect.DeepEqual(got, req) {
		t.Fatalf("got tenant=%q req=%+v", tn, got)
	}
}

func TestDeleteRequestRoundTrip(t *testing.T) {
	req := &DeleteRequest{OID: 42, DeadlineMS: 7}
	tn, got, err := DecodeDeleteRequest(EncodeDeleteRequest("t1", req))
	if err != nil {
		t.Fatal(err)
	}
	if tn != "t1" || !reflect.DeepEqual(got, req) {
		t.Fatalf("got tenant=%q req=%+v", tn, got)
	}
}

func TestSearchRequestRoundTrip(t *testing.T) {
	for _, req := range []*SearchRequest{
		{Pred: PredSuperset, Query: []string{"x", "y"}},
		{Pred: PredOverlap, Query: nil, DeadlineMS: 250,
			Options: &SearchOptions{Parallelism: -1, MaxProbeElements: 3, MaxZeroSlices: 9}},
	} {
		tn, got, err := DecodeSearchRequest(EncodeSearchRequest("ten", req))
		if err != nil {
			t.Fatal(err)
		}
		if tn != "ten" {
			t.Fatalf("tenant = %q", tn)
		}
		if got.Pred != req.Pred || !reflect.DeepEqual(got.Options, req.Options) ||
			got.DeadlineMS != req.DeadlineMS || len(got.Query) != len(req.Query) {
			t.Fatalf("got %+v, want %+v", got, req)
		}
	}
}

func TestSearchResponseRoundTrip(t *testing.T) {
	for _, resp := range []*SearchResponse{
		{OIDs: []uint64{3, 17, 17, 4000000}, Plan: "index(BSSF ...)", ElapsedUS: 12345,
			Stats: &SearchStats{QueryCardinality: 3, IndexPages: 7, OIDPages: 2,
				ObjectFetches: 5, Candidates: 5, Results: 4, FalseDrops: 1, TotalPages: 14}},
		{OIDs: []uint64{9, 3, 120}, Plan: "", ElapsedUS: 0}, // non-ascending fallback
		{OIDs: nil},
	} {
		got, err := DecodeSearchResponse(EncodeSearchResponse(resp))
		if err != nil {
			t.Fatal(err)
		}
		if len(got.OIDs) != len(resp.OIDs) {
			t.Fatalf("oids = %v, want %v", got.OIDs, resp.OIDs)
		}
		for i := range resp.OIDs {
			if got.OIDs[i] != resp.OIDs[i] {
				t.Fatalf("oids = %v, want %v", got.OIDs, resp.OIDs)
			}
		}
		if got.Plan != resp.Plan || got.ElapsedUS != resp.ElapsedUS ||
			!reflect.DeepEqual(got.Stats, resp.Stats) {
			t.Fatalf("got %+v, want %+v", got, resp)
		}
	}
}

func TestSearchManyRoundTrip(t *testing.T) {
	req := &SearchManyRequest{
		Searches: []SearchItem{
			{Pred: PredSuperset, Query: []string{"a"}},
			{Pred: PredEquals, Query: []string{"b", "c"}},
		},
		Options:    &SearchOptions{Parallelism: 4},
		DeadlineMS: 99,
	}
	tn, got, err := DecodeSearchManyRequest(EncodeSearchManyRequest("bulk", req))
	if err != nil {
		t.Fatal(err)
	}
	if tn != "bulk" || len(got.Searches) != 2 || got.Searches[1].Pred != PredEquals {
		t.Fatalf("got tenant=%q req=%+v", tn, got)
	}

	resp := &SearchManyResponse{Results: []SearchResponse{
		{OIDs: []uint64{1, 2}, ElapsedUS: 10},
		{OIDs: nil, Plan: "scan(Item)"},
	}}
	gotR, err := DecodeSearchManyResponse(EncodeSearchManyResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotR.Results) != 2 || len(gotR.Results[0].OIDs) != 2 || gotR.Results[1].Plan != "scan(Item)" {
		t.Fatalf("got %+v", gotR)
	}
}

func TestExplainRoundTrip(t *testing.T) {
	tn, req, err := DecodeExplainRequest(EncodeExplainRequest("t", &ExplainRequest{Pred: PredSubset, Query: []string{"q"}}))
	if err != nil {
		t.Fatal(err)
	}
	if tn != "t" || req.Pred != PredSubset {
		t.Fatalf("got %q %+v", tn, req)
	}
	resp, err := DecodeExplainResponse(EncodeExplainResponse(&ExplainResponse{Text: "plan table"}))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text != "plan table" {
		t.Fatalf("text = %q", resp.Text)
	}
}

func TestHealthResponseRoundTrip(t *testing.T) {
	resp := &HealthResponse{
		Status: "degraded", Version: Version,
		Tenants: []TenantHealth{
			{Name: "a", Objects: 10, QueueDepth: 1, QueueCap: 256,
				Facilities: []FacilityHealth{{Kind: "BSSF", Health: "healthy", Pages: 12, Entries: 10}}},
			{Name: "b"},
		},
	}
	got, err := DecodeHealthResponse(EncodeHealthResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, resp) {
		t.Fatalf("got %+v, want %+v", got, resp)
	}
}

func TestStatsRoundTrip(t *testing.T) {
	tn, err := DecodeStatsRequest(EncodeStatsRequest("acme"))
	if err != nil {
		t.Fatal(err)
	}
	if tn != "acme" {
		t.Fatalf("tenant = %q", tn)
	}
	resp := &StatsResponse{
		Tenant: "acme", Objects: 1200,
		Facilities: []FacilityStats{
			{Kind: "BSSF", Count: 1200, AvgSetCard: 4.75, F: 256, M: 2,
				StoragePages: 310, Health: "healthy", Shards: 4,
				ShardHealth: []string{"healthy", "degraded", "healthy", "healthy"}},
			{Kind: "NIX", Count: 1200, DistinctElems: 400, LookupPages: 3,
				StoragePages: 690, Health: "degraded",
				SegmentCounts: []int{100, 250}, MemtableCount: 17},
			{Kind: "FSSF", Frames: 16, Health: "failed"},
		},
	}
	got, err := DecodeStatsResponse(EncodeStatsResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, resp) {
		t.Fatalf("got %+v, want %+v", got, resp)
	}
	// Truncated bodies fail instead of fabricating a snapshot.
	full := EncodeStatsResponse(resp)
	for cut := 1; cut < len(full); cut++ {
		if r, err := DecodeStatsResponse(full[:cut]); err == nil && reflect.DeepEqual(r, resp) {
			t.Fatalf("truncated stats body of %d/%d bytes decoded to the full response", cut, len(full))
		}
	}
}

func TestErrorRoundTrip(t *testing.T) {
	werr := &Error{Code: CodeDegraded, Message: "facility degraded"}
	got, err := DecodeError(EncodeError(werr))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, werr) {
		t.Fatalf("got %+v, want %+v", got, werr)
	}
}

// TestDecoderTruncation asserts truncated bodies fail instead of
// panicking or fabricating values.
func TestDecoderTruncation(t *testing.T) {
	full := EncodeSearchRequest("tenant", &SearchRequest{Pred: PredSuperset, Query: []string{"abc", "def"}})
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodeSearchRequest(full[:cut]); err == nil {
			// A prefix may parse cleanly only if it happens to decode to
			// a shorter valid message; for this shape it must not.
			t.Fatalf("truncated body of %d/%d bytes decoded without error", cut, len(full))
		}
	}
}
