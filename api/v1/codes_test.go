package api

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"sigfile"
)

// Sentinel coverage — every exported facade Err* having a sentinelCodes
// row with a live name, and the inverse — is enforced mechanically by
// the wirecode analyzer (internal/analysis/wirecode, run by cmd/sigvet
// in CI), which replaced the AST-walking TestSentinelCoverage that used
// to live here.

// TestSentinelCodesDistinct asserts no two sentinels share a code and
// no row is incomplete.
func TestSentinelCodesDistinct(t *testing.T) {
	seenCode := map[Code]string{}
	for _, sc := range sentinelCodes {
		if sc.Err == nil || sc.Name == "" || sc.Code == "" {
			t.Fatalf("incomplete sentinelCodes row %+v", sc)
		}
		if prev, dup := seenCode[sc.Code]; dup {
			t.Errorf("code %s assigned to both %s and %s", sc.Code, prev, sc.Name)
		}
		seenCode[sc.Code] = sc.Name
	}
}

// TestCodeRoundTrip asserts CodeOf and Sentinel are inverses over the
// table, and that the wire Error's Unwrap keeps errors.Is working
// across a marshal/unmarshal boundary.
func TestCodeRoundTrip(t *testing.T) {
	for _, sc := range sentinelCodes {
		if got := CodeOf(sc.Err); got != sc.Code {
			t.Errorf("CodeOf(%s) = %s, want %s", sc.Name, got, sc.Code)
		}
		if got := CodeOf(fmt.Errorf("wrapped: %w", sc.Err)); got != sc.Code {
			t.Errorf("CodeOf(wrapped %s) = %s, want %s", sc.Name, got, sc.Code)
		}
		if got := sc.Code.Sentinel(); !errors.Is(got, sc.Err) {
			t.Errorf("Sentinel(%s) = %v, want %s", sc.Code, got, sc.Name)
		}
		werr := &Error{Code: sc.Code, Message: "over the wire"}
		if !errors.Is(werr, sc.Err) {
			t.Errorf("errors.Is(*Error{%s}, %s) = false, want true", sc.Code, sc.Name)
		}
	}
}

// TestCodeOfLifecycle asserts context errors classify to the lifecycle
// codes even when wrapped around storage errors.
func TestCodeOfLifecycle(t *testing.T) {
	if got := CodeOf(context.DeadlineExceeded); got != CodeDeadlineExceeded {
		t.Errorf("CodeOf(DeadlineExceeded) = %s", got)
	}
	if got := CodeOf(context.Canceled); got != CodeCanceled {
		t.Errorf("CodeOf(Canceled) = %s", got)
	}
	both := fmt.Errorf("search: %w (after %w)", context.DeadlineExceeded, sigfile.ErrDegraded)
	if got := CodeOf(both); got != CodeDeadlineExceeded {
		t.Errorf("CodeOf(deadline wrapping degraded) = %s, want %s", got, CodeDeadlineExceeded)
	}
	if got := CodeOf(nil); got != CodeOK {
		t.Errorf("CodeOf(nil) = %s", got)
	}
	if got := CodeOf(errors.New("mystery")); got != CodeInternal {
		t.Errorf("CodeOf(unknown) = %s", got)
	}
}

// TestStatsRouteCodes pins the error surface of the stats endpoint
// (GET /v1/tenants/{tenant}/stats and MsgStats): an unknown tenant is
// CodeNotFound (404) and a corrupt binary body is CodeBadRequest (400),
// and both survive the binary error frame with their code intact so
// errors.Is keeps working on the far side.
func TestStatsRouteCodes(t *testing.T) {
	for _, tc := range []struct {
		code Code
		want int
	}{
		{CodeNotFound, 404},
		{CodeBadRequest, 400},
	} {
		if got := tc.code.HTTPStatus(); got != tc.want {
			t.Errorf("HTTPStatus(%s) = %d, want %d", tc.code, got, tc.want)
		}
		werr := Errorf(tc.code, "stats route failure")
		got, err := DecodeError(EncodeError(werr))
		if err != nil {
			t.Fatal(err)
		}
		if got.Code != tc.code {
			t.Errorf("error frame round trip changed code %s to %s", tc.code, got.Code)
		}
	}
}

// TestHTTPStatusTotal asserts every declared code has an explicit,
// sane status mapping.
func TestHTTPStatusTotal(t *testing.T) {
	codes := []Code{
		CodeOK, CodeInvalidPredicate, CodeWidthMismatch, CodeClosed,
		CodeDegraded, CodeFailed, CodeCorrupt, CodeQuarantined,
		CodeRetryExhausted, CodeDeadlineExceeded, CodeCanceled,
		CodeOverloaded, CodeNotFound, CodeAlreadyExists, CodeBadRequest,
		CodeShuttingDown, CodeInternal,
	}
	for _, c := range codes {
		st := c.HTTPStatus()
		if st < 200 || st > 599 {
			t.Errorf("HTTPStatus(%s) = %d out of range", c, st)
		}
		if c != CodeOK && st < 400 {
			t.Errorf("HTTPStatus(%s) = %d, want an error status", c, st)
		}
	}
}
