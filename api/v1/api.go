// Package api (import path sigfile/api/v1) is the versioned wire schema
// of the sigfiled server: the request/response types, stable error
// codes, and binary framing shared by the server (internal/server), the
// Go client (sigfile/client), and the load generator (cmd/sigload).
//
// The schema is deliberately decoupled from the library's internal
// structs: adding a field to core.SearchStats does not change the wire
// format until this package maps it, and every sentinel error crossing
// the wire travels as a stable Code (codes.go) rather than a Go error
// string. Version negotiation is by URL prefix over HTTP (PathPrefix)
// and by a handshake byte on the binary protocol (binary.go); an
// incompatible change to either representation means a v2 package, not
// an edit here.
package api

import "fmt"

// Version identifies this wire schema generation.
const Version = "v1"

// PathPrefix is the HTTP route prefix every versioned endpoint lives
// under. Tenant-scoped endpoints follow PathPrefix + "/t/{tenant}/{op}".
const PathPrefix = "/" + Version

// The five set predicates of the paper's §2, as wire strings.
const (
	PredSuperset = "superset" // T ⊇ Q
	PredSubset   = "subset"   // T ⊆ Q
	PredOverlap  = "overlap"  // T ∩ Q ≠ ∅
	PredEquals   = "equals"   // T = Q
	PredContains = "contains" // q ∈ T
)

// Predicates lists every valid wire predicate string.
var Predicates = []string{PredSuperset, PredSubset, PredOverlap, PredEquals, PredContains}

// ValidPredicate reports whether p is one of the five wire predicates.
func ValidPredicate(p string) bool {
	for _, q := range Predicates {
		if p == q {
			return true
		}
	}
	return false
}

// TenantConfig describes one tenant database: which facilities index
// its sets and under what signature design. It is both the create-tenant
// request body and the server's persisted per-tenant configuration.
type TenantConfig struct {
	// Kinds lists the facilities to maintain on the tenant's set
	// attribute: "ssf", "bssf", "fssf", "nix". With several, the
	// cost-based planner picks per query. Empty means ["bssf"].
	Kinds []string `json:"kinds,omitempty"`
	// F and M are the signature design (width, bits per element) for the
	// signature-file kinds. Zero means the defaults (F=256, m=2).
	F int `json:"f,omitempty"`
	M int `json:"m,omitempty"`
	// LSM puts every facility on the log-structured write path
	// (WAL-backed memtable + immutable segments + compaction).
	LSM bool `json:"lsm,omitempty"`
	// LSMMemtableOps and LSMCompactAfter tune the LSM triggers; zero
	// keeps the library defaults.
	LSMMemtableOps  int `json:"lsm_memtable_ops,omitempty"`
	LSMCompactAfter int `json:"lsm_compact_after,omitempty"`
	// CheckpointSec overrides the server's default checkpoint interval
	// for this tenant; zero inherits the server default.
	CheckpointSec int `json:"checkpoint_sec,omitempty"`
	// Shards, when ≥ 2, hash-partitions every facility's OID space across
	// that many inner facilities with scatter-gather search (DESIGN.md
	// §16). 0 or 1 means unsharded.
	Shards int `json:"shards,omitempty"`
}

// CreateTenantRequest creates a tenant: POST {PathPrefix}/tenants.
type CreateTenantRequest struct {
	Name   string       `json:"name"`
	Config TenantConfig `json:"config"`
}

// TenantInfo describes one live tenant in list/health responses.
type TenantInfo struct {
	Name    string       `json:"name"`
	Objects int          `json:"objects"`
	Config  TenantConfig `json:"config"`
}

// TenantsResponse is GET {PathPrefix}/tenants.
type TenantsResponse struct {
	Tenants []TenantInfo `json:"tenants"`
}

// InsertRequest registers one object's set value with a tenant:
// POST {PathPrefix}/t/{tenant}/insert. The server assigns the OID.
type InsertRequest struct {
	Elems []string `json:"elems"`
	// DeadlineMS bounds the request on the server side (milliseconds
	// from receipt); 0 inherits the server default. The mapping onto
	// context cancellation is the same one searches use.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// InsertResponse acknowledges a durable insert.
type InsertResponse struct {
	OID uint64 `json:"oid"`
}

// DeleteRequest removes one object: POST {PathPrefix}/t/{tenant}/delete.
type DeleteRequest struct {
	OID        uint64 `json:"oid"`
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
}

// DeleteResponse acknowledges a durable delete.
type DeleteResponse struct{}

// SearchOptions selects a retrieval strategy for one search. The zero
// value lets the server's cost-based planner choose everything.
type SearchOptions struct {
	// Parallelism fans the search across up to this many goroutines on
	// the server (0 = server default, negative = one per server CPU).
	Parallelism int `json:"parallelism,omitempty"`
	// MaxProbeElements caps the probe on superset/contains searches (the
	// paper's §5.1.3 smart retrieval); 0 lets the planner pick.
	MaxProbeElements int `json:"max_probe_elements,omitempty"`
	// MaxZeroSlices caps the zero slices a BSSF subset search reads
	// (§5.2.2); 0 lets the planner pick.
	MaxZeroSlices int `json:"max_zero_slices,omitempty"`
}

// SearchRequest answers one set predicate against a tenant:
// POST {PathPrefix}/t/{tenant}/search.
type SearchRequest struct {
	// Pred is one of the Pred* wire strings.
	Pred string `json:"pred"`
	// Query is the query set Q.
	Query      []string       `json:"query"`
	Options    *SearchOptions `json:"options,omitempty"`
	DeadlineMS int64          `json:"deadline_ms,omitempty"`
}

// SearchStats decomposes a search's measured cost the way the paper's
// retrieval-cost formulas do. It mirrors the library's SearchStats but
// is a wire type: field set and names are frozen per schema version.
type SearchStats struct {
	QueryCardinality int   `json:"query_cardinality"`
	ProbedElements   int   `json:"probed_elements,omitempty"`
	SlicesRead       int   `json:"slices_read,omitempty"`
	IndexPages       int64 `json:"index_pages"`
	OIDPages         int64 `json:"oid_pages"`
	ObjectFetches    int64 `json:"object_fetches"`
	Candidates       int   `json:"candidates"`
	Results          int   `json:"results"`
	FalseDrops       int   `json:"false_drops"`
	TotalPages       int64 `json:"total_pages"`
}

// SearchResponse is the outcome of one search.
type SearchResponse struct {
	// OIDs are the qualifying objects in ascending order.
	OIDs []uint64 `json:"oids"`
	// Plan is the executed plan in EXPLAIN's one-line form.
	Plan string `json:"plan,omitempty"`
	// Stats is the page-access decomposition when an index drove the
	// query; nil for heap scans.
	Stats *SearchStats `json:"stats,omitempty"`
	// ElapsedUS is server-side wall time in microseconds.
	ElapsedUS int64 `json:"elapsed_us"`
}

// SearchItem is one search of a SearchMany batch.
type SearchItem struct {
	Pred  string   `json:"pred"`
	Query []string `json:"query"`
}

// SearchManyRequest answers a batch of searches in one round trip:
// POST {PathPrefix}/t/{tenant}/search_many. Options apply to every item.
type SearchManyRequest struct {
	Searches   []SearchItem   `json:"searches"`
	Options    *SearchOptions `json:"options,omitempty"`
	DeadlineMS int64          `json:"deadline_ms,omitempty"`
}

// SearchManyResponse carries one SearchResponse per request item, in
// request order.
type SearchManyResponse struct {
	Results []SearchResponse `json:"results"`
}

// ExplainRequest plans a search without executing it:
// POST {PathPrefix}/t/{tenant}/explain.
type ExplainRequest struct {
	Pred       string   `json:"pred"`
	Query      []string `json:"query"`
	DeadlineMS int64    `json:"deadline_ms,omitempty"`
}

// ExplainResponse is the planner's full cost table, as EXPLAIN renders
// it: every costed (facility, strategy) candidate and the reason the
// winner won.
type ExplainResponse struct {
	Text string `json:"text"`
}

// FacilityHealth is one facility's state in a health report.
type FacilityHealth struct {
	Kind    string `json:"kind"`
	Health  string `json:"health"` // "healthy" | "degraded" | "failed"
	Pages   int    `json:"pages"`
	Entries int    `json:"entries"`
}

// TenantHealth is one tenant's state in a health report.
type TenantHealth struct {
	Name       string           `json:"name"`
	Objects    int              `json:"objects"`
	QueueDepth int              `json:"queue_depth"`
	QueueCap   int              `json:"queue_cap"`
	Facilities []FacilityHealth `json:"facilities"`
}

// HealthResponse is GET {PathPrefix}/health: overall status plus the
// per-tenant, per-facility degradation ladder.
type HealthResponse struct {
	// Status is "ok" while every facility of every tenant is healthy,
	// "degraded" otherwise.
	Status  string         `json:"status"`
	Version string         `json:"version"`
	Tenants []TenantHealth `json:"tenants"`
}

// FacilityStats is one facility's catalog snapshot in a stats report:
// the numbers the server's cost-based planner feeds the paper's
// retrieval-cost formulas, frozen as a wire type. It mirrors the
// library's FacilityStats the way SearchStats mirrors its namesake.
type FacilityStats struct {
	// Kind is the facility name: "SSF", "BSSF", "FSSF" or "NIX".
	Kind string `json:"kind"`
	// Count is the number of live indexed objects (the cost model's N).
	Count int `json:"count"`
	// AvgSetCard is the measured mean set cardinality D_t; 0 when the
	// insert history predates the process.
	AvgSetCard float64 `json:"avg_set_card,omitempty"`
	// F and M are the signature design; both 0 for NIX.
	F int `json:"f,omitempty"`
	M int `json:"m,omitempty"`
	// Frames is the FSSF frame count K; 0 otherwise.
	Frames int `json:"frames,omitempty"`
	// DistinctElems is a lower bound on the element-domain cardinality V
	// (exact for NIX); 0 elsewhere.
	DistinctElems int `json:"distinct_elems,omitempty"`
	// LookupPages is the per-lookup page cost rc = h + 1 for NIX.
	LookupPages int `json:"lookup_pages,omitempty"`
	// StoragePages is the facility's storage cost SC in pages.
	StoragePages int `json:"storage_pages"`
	// Health is the facility's aggregate degradation state:
	// "healthy" | "degraded" | "failed". For a sharded facility it is the
	// worst shard's state.
	Health string `json:"health"`
	// Shards is the partition count K of a sharded facility; 0 when
	// unsharded.
	Shards int `json:"shards,omitempty"`
	// ShardHealth lists every shard's own health state in shard order;
	// empty when unsharded.
	ShardHealth []string `json:"shard_health,omitempty"`
	// SegmentCounts holds the live-entry count of each sealed LSM segment
	// (concatenated across shards when sharded); empty off the LSM path.
	SegmentCounts []int `json:"segment_counts,omitempty"`
	// MemtableCount is the number of live LSM memtable entries.
	MemtableCount int `json:"memtable_count,omitempty"`
}

// StatsResponse is GET {PathPrefix}/tenants/{tenant}/stats: the catalog
// snapshot of every facility the tenant maintains.
type StatsResponse struct {
	Tenant     string          `json:"tenant"`
	Objects    int             `json:"objects"`
	Facilities []FacilityStats `json:"facilities"`
}

// ErrorBody is the JSON error envelope every failed HTTP request
// carries: {"error": {"code": "...", "message": "..."}}.
type ErrorBody struct {
	Error *Error `json:"error"`
}

// Error is a wire-level error: a stable Code plus a human-readable
// message. It implements error, and Unwrap exposes the library sentinel
// the code maps from, so client code can keep using
// errors.Is(err, sigfile.ErrDegraded) across the network boundary.
type Error struct {
	Code    Code   `json:"code"`
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// Unwrap returns the sentinel error the code maps back to (nil for
// server-only codes), so errors.Is sees through the wire round trip.
func (e *Error) Unwrap() error { return e.Code.Sentinel() }
