package pagestore

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// BufferPool is a write-back LRU page cache layered over a File.
//
// The paper's cost model assumes every page access hits the disk (a cold
// buffer). The pool exists for the buffering ablation: experiments run once
// against the bare file and once through a pool to show how much of each
// facility's cost a warm cache absorbs (sequential SSF scans benefit most;
// random NIX leaf probes least).
//
// Reads served from the cache do not touch the inner file, so the inner
// file's Stats measure *physical* accesses while the pool's own hit/miss
// counters measure locality. Dirty pages are written back on eviction,
// Sync, or Close.
type BufferPool struct {
	mu       sync.Mutex
	inner    File
	capacity int
	lru      *list.List               // front = most recently used
	byID     map[PageID]*list.Element // page id -> lru element
	// hits and misses are atomics, not mu-guarded fields: the stats
	// methods are called from monitoring and test goroutines while
	// searches hold mu in ReadPage, and must neither race nor block.
	hits   atomic.Int64
	misses atomic.Int64
	stats  Stats // logical accesses through the pool
}

type poolEntry struct {
	id    PageID
	data  []byte
	dirty bool
}

// NewBufferPool wraps inner with an LRU cache holding up to capacity pages.
// Capacity must be positive.
func NewBufferPool(inner File, capacity int) (*BufferPool, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("pagestore: buffer pool capacity %d must be positive", capacity)
	}
	return &BufferPool{
		inner:    inner,
		capacity: capacity,
		lru:      list.New(),
		byID:     make(map[PageID]*list.Element, capacity),
	}, nil
}

// HitRatio returns the fraction of reads served from the cache, or 0 if no
// reads have happened.
func (p *BufferPool) HitRatio() float64 {
	hits, misses := p.hits.Load(), p.misses.Load()
	total := hits + misses
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// Hits returns the number of reads served from the cache.
func (p *BufferPool) Hits() int64 { return p.hits.Load() }

// Misses returns the number of reads that had to touch the inner file.
func (p *BufferPool) Misses() int64 { return p.misses.Load() }

// get returns the cached entry for id, faulting it in from the inner file
// if needed. Caller holds p.mu.
func (p *BufferPool) get(id PageID, loadFromInner bool) (*poolEntry, error) {
	if el, ok := p.byID[id]; ok {
		p.lru.MoveToFront(el)
		return el.Value.(*poolEntry), nil
	}
	e := &poolEntry{id: id, data: make([]byte, PageSize)}
	if loadFromInner {
		if err := p.inner.ReadPage(id, e.data); err != nil {
			return nil, fmt.Errorf("pagestore: fault in page %d: %w", id, err)
		}
	}
	if err := p.insert(e); err != nil {
		return nil, err
	}
	return e, nil
}

// insert adds e to the cache, evicting the LRU entry if full. Caller holds
// p.mu.
func (p *BufferPool) insert(e *poolEntry) error {
	if p.lru.Len() >= p.capacity {
		victim := p.lru.Back()
		ve := victim.Value.(*poolEntry)
		if ve.dirty {
			if err := p.inner.WritePage(ve.id, ve.data); err != nil {
				return fmt.Errorf("pagestore: write back page %d: %w", ve.id, err)
			}
		}
		p.lru.Remove(victim)
		delete(p.byID, ve.id)
	}
	p.byID[e.id] = p.lru.PushFront(e)
	return nil
}

// ReadPage implements File. Cache hits cost no physical access.
func (p *BufferPool) ReadPage(id PageID, buf []byte) error {
	if len(buf) < PageSize {
		return fmt.Errorf("pagestore: read buffer %d bytes, need %d", len(buf), PageSize)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) >= p.inner.NumPages() {
		return fmt.Errorf("%w: read page %d of %d", ErrPageOutOfRange, id, p.inner.NumPages())
	}
	if _, ok := p.byID[id]; ok {
		p.hits.Add(1)
	} else {
		p.misses.Add(1)
	}
	e, err := p.get(id, true)
	if err != nil {
		return err
	}
	copy(buf[:PageSize], e.data)
	p.stats.countRead()
	return nil
}

// WritePage implements File. The write lands in the cache and reaches the
// inner file on eviction or Sync.
func (p *BufferPool) WritePage(id PageID, buf []byte) error {
	if len(buf) < PageSize {
		return fmt.Errorf("pagestore: write buffer %d bytes, need %d", len(buf), PageSize)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) >= p.inner.NumPages() {
		return fmt.Errorf("%w: write page %d of %d", ErrPageOutOfRange, id, p.inner.NumPages())
	}
	// A full-page overwrite does not need to fault the old contents in.
	e, err := p.get(id, false)
	if err != nil {
		return err
	}
	copy(e.data, buf[:PageSize])
	e.dirty = true
	p.stats.countWrite()
	return nil
}

// Allocate implements File by delegating to the inner file.
func (p *BufferPool) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id, err := p.inner.Allocate()
	if err != nil {
		return 0, fmt.Errorf("pagestore: pool allocate: %w", err)
	}
	p.stats.countAlloc()
	return id, nil
}

// NumPages implements File.
func (p *BufferPool) NumPages() int { return p.inner.NumPages() }

// Stats implements File, returning the pool's *logical* access counters.
// Physical accesses are on the inner file's Stats.
func (p *BufferPool) Stats() *Stats { return &p.stats }

// Sync implements File: flushes all dirty pages to the inner file and
// syncs it. A page whose write-back fails stays dirty and is retried on
// the next Sync or Close; the flush continues past it so one bad page
// does not strand the others, and the joined errors are returned.
func (p *BufferPool) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var errs []error
	for el := p.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*poolEntry)
		if !e.dirty {
			continue
		}
		if err := p.inner.WritePage(e.id, e.data); err != nil {
			errs = append(errs, fmt.Errorf("pagestore: flush page %d: %w", e.id, err))
			continue
		}
		e.dirty = false
	}
	if len(errs) > 0 {
		return errors.Join(errs...)
	}
	if err := p.inner.Sync(); err != nil {
		return fmt.Errorf("pagestore: pool sync: %w", err)
	}
	return nil
}

// Close implements File: flushes and closes the inner file. If the flush
// fails the inner file is left open and the dirty pages retained, so the
// caller can retry Sync/Close after clearing the fault rather than
// silently losing the writes.
func (p *BufferPool) Close() error {
	if err := p.Sync(); err != nil {
		return err
	}
	return p.inner.Close()
}

var _ File = (*BufferPool)(nil)
var _ File = (*MemFile)(nil)
var _ File = (*DiskFile)(nil)
