package pagestore

import (
	"errors"
	"sync"
)

// ErrInjected is the error produced by a FaultFile when a scheduled fault
// fires. Callers in tests match it with errors.Is.
var ErrInjected = errors.New("pagestore: injected fault")

// FaultFile wraps a File and fails operations on demand. It exists for
// failure-injection tests: the access facilities must propagate storage
// errors instead of panicking or silently corrupting results.
type FaultFile struct {
	inner File

	mu sync.Mutex
	// failReadAfter / failWriteAfter count down on each operation; when a
	// counter reaches zero the operation fails with ErrInjected. Negative
	// means disabled.
	failReadAfter  int
	failWriteAfter int
	failAllocAfter int
}

// NewFaultFile wraps inner with all faults disabled.
func NewFaultFile(inner File) *FaultFile {
	return &FaultFile{inner: inner, failReadAfter: -1, failWriteAfter: -1, failAllocAfter: -1}
}

// FailReadAfter arranges for the n-th subsequent read (0 = the next one)
// to fail with ErrInjected.
func (f *FaultFile) FailReadAfter(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failReadAfter = n
}

// FailWriteAfter arranges for the n-th subsequent write to fail.
func (f *FaultFile) FailWriteAfter(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failWriteAfter = n
}

// FailAllocAfter arranges for the n-th subsequent allocation to fail.
func (f *FaultFile) FailAllocAfter(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAllocAfter = n
}

func (f *FaultFile) trip(counter *int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if *counter < 0 {
		return false
	}
	if *counter == 0 {
		*counter = -1
		return true
	}
	*counter--
	return false
}

// ReadPage implements File.
func (f *FaultFile) ReadPage(id PageID, buf []byte) error {
	if f.trip(&f.failReadAfter) {
		return ErrInjected
	}
	return f.inner.ReadPage(id, buf)
}

// WritePage implements File.
func (f *FaultFile) WritePage(id PageID, buf []byte) error {
	if f.trip(&f.failWriteAfter) {
		return ErrInjected
	}
	return f.inner.WritePage(id, buf)
}

// Allocate implements File.
func (f *FaultFile) Allocate() (PageID, error) {
	if f.trip(&f.failAllocAfter) {
		return 0, ErrInjected
	}
	return f.inner.Allocate()
}

// NumPages implements File.
func (f *FaultFile) NumPages() int { return f.inner.NumPages() }

// Stats implements File.
func (f *FaultFile) Stats() *Stats { return f.inner.Stats() }

// Sync implements File.
func (f *FaultFile) Sync() error { return f.inner.Sync() }

// Close implements File.
func (f *FaultFile) Close() error { return f.inner.Close() }

var _ File = (*FaultFile)(nil)

// FaultStore wraps a Store so that every file it opens is wrapped in a
// FaultFile. Opened fault files are retained for the test to arm.
type FaultStore struct {
	inner Store

	mu    sync.Mutex
	files map[string]*FaultFile
}

// NewFaultStore wraps inner.
func NewFaultStore(inner Store) *FaultStore {
	return &FaultStore{inner: inner, files: make(map[string]*FaultFile)}
}

// Open implements Store.
func (s *FaultStore) Open(name string) (File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.files[name]; ok {
		return f, nil
	}
	inner, err := s.inner.Open(name)
	if err != nil {
		return nil, err
	}
	f := NewFaultFile(inner)
	s.files[name] = f
	return f, nil
}

// File returns the fault wrapper previously opened under name, or nil.
func (s *FaultStore) File(name string) *FaultFile {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.files[name]
}

// Files returns every fault wrapper opened through the store, for tests
// that arm a fault on all of a facility's files at once (a facility like
// BSSF spans many files and which one a given operation touches first is
// an implementation detail).
func (s *FaultStore) Files() []*FaultFile {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*FaultFile, 0, len(s.files))
	for _, f := range s.files {
		out = append(out, f)
	}
	return out
}

// Close implements Store.
func (s *FaultStore) Close() error { return s.inner.Close() }

var _ Store = (*FaultStore)(nil)
var _ Store = (*MemStore)(nil)
var _ Store = (*DiskStore)(nil)
