package pagestore

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"syscall"
)

// ErrInjected is the error produced by a FaultFile when a scheduled fault
// fires. Callers in tests match it with errors.Is.
var ErrInjected = errors.New("pagestore: injected fault")

// TransientFaults configures a seeded probabilistic schedule of
// transient faults shared by every file of a FaultStore: each page
// read/write/allocation independently fails with the given probability,
// and the error is marked transient so the retry layer owns it.
type TransientFaults struct {
	PRead, PWrite, PAlloc float64
	// Errs is the pool the injected error is drawn from; empty means
	// syscall.EIO.
	Errs []error
}

// faultSched is the store-wide fault state a FaultStore's files share:
// the seeded transient schedule and any persistent failure modes. One
// struct so a schedule spans a facility's files the way a sick disk
// spans its partitions.
type faultSched struct {
	mu  sync.Mutex
	rng *rand.Rand
	cfg TransientFaults

	persistRead  error
	persistWrite error
}

// opKind indexes the per-operation probability.
type opKind int

const (
	opRead opKind = iota
	opWrite
	opAlloc
)

// seedTransient replaces the probabilistic schedule.
func (t *faultSched) seedTransient(seed int64, cfg TransientFaults) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rng = rand.New(rand.NewSource(seed))
	t.cfg = cfg
}

// failWritesWith sets (or, with nil, clears) the persistent write fault.
func (t *faultSched) failWritesWith(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.persistWrite = err
}

// failReadsWith sets (or, with nil, clears) the persistent read fault.
func (t *faultSched) failReadsWith(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.persistRead = err
}

// heal clears the probabilistic schedule and the persistent modes.
func (t *faultSched) heal() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rng = nil
	t.cfg = TransientFaults{}
	t.persistRead = nil
	t.persistWrite = nil
}

// decide returns the error to inject for one operation of kind k, or
// nil. Persistent modes win over the probabilistic schedule.
func (t *faultSched) decide(k opKind) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if k != opRead && t.persistWrite != nil {
		return fmt.Errorf("%w: %w", ErrInjected, t.persistWrite)
	}
	if k == opRead && t.persistRead != nil {
		return fmt.Errorf("%w: %w", ErrInjected, t.persistRead)
	}
	if t.rng == nil {
		return nil
	}
	var p float64
	switch k {
	case opRead:
		p = t.cfg.PRead
	case opWrite:
		p = t.cfg.PWrite
	case opAlloc:
		p = t.cfg.PAlloc
	}
	if p <= 0 || t.rng.Float64() >= p {
		return nil
	}
	base := error(syscall.EIO)
	if len(t.cfg.Errs) > 0 {
		base = t.cfg.Errs[t.rng.Intn(len(t.cfg.Errs))]
	}
	return MarkTransient(fmt.Errorf("%w: %w", ErrInjected, base))
}

// FaultFile wraps a File and fails operations on demand. It exists for
// failure-injection tests: the access facilities must propagate storage
// errors instead of panicking or silently corrupting results.
type FaultFile struct {
	inner File
	sched *faultSched // shared store schedule; nil for a standalone file

	mu sync.Mutex
	// failReadAfter / failWriteAfter count down on each operation; when a
	// counter reaches zero the operation fails with ErrInjected. Negative
	// means disabled.
	failReadAfter  int
	failWriteAfter int
	failAllocAfter int
}

// NewFaultFile wraps inner with all faults disabled.
func NewFaultFile(inner File) *FaultFile {
	return &FaultFile{inner: inner, failReadAfter: -1, failWriteAfter: -1, failAllocAfter: -1}
}

// FailReadAfter arranges for the n-th subsequent read (0 = the next one)
// to fail with ErrInjected.
func (f *FaultFile) FailReadAfter(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failReadAfter = n
}

// FailWriteAfter arranges for the n-th subsequent write to fail.
func (f *FaultFile) FailWriteAfter(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failWriteAfter = n
}

// FailAllocAfter arranges for the n-th subsequent allocation to fail.
func (f *FaultFile) FailAllocAfter(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAllocAfter = n
}

func (f *FaultFile) trip(counter *int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if *counter < 0 {
		return false
	}
	if *counter == 0 {
		*counter = -1
		return true
	}
	*counter--
	return false
}

// ReadPage implements File.
func (f *FaultFile) ReadPage(id PageID, buf []byte) error {
	if f.trip(&f.failReadAfter) {
		return ErrInjected
	}
	if err := f.sched.decide(opRead); err != nil {
		return err
	}
	return f.inner.ReadPage(id, buf)
}

// WritePage implements File.
func (f *FaultFile) WritePage(id PageID, buf []byte) error {
	if f.trip(&f.failWriteAfter) {
		return ErrInjected
	}
	if err := f.sched.decide(opWrite); err != nil {
		return err
	}
	return f.inner.WritePage(id, buf)
}

// Allocate implements File.
func (f *FaultFile) Allocate() (PageID, error) {
	if f.trip(&f.failAllocAfter) {
		return 0, ErrInjected
	}
	if err := f.sched.decide(opAlloc); err != nil {
		return 0, err
	}
	return f.inner.Allocate()
}

// NumPages implements File.
func (f *FaultFile) NumPages() int { return f.inner.NumPages() }

// Stats implements File.
func (f *FaultFile) Stats() *Stats { return f.inner.Stats() }

// Sync implements File.
func (f *FaultFile) Sync() error { return f.inner.Sync() }

// Close implements File.
func (f *FaultFile) Close() error { return f.inner.Close() }

var _ File = (*FaultFile)(nil)

// FaultStore wraps a Store so that every file it opens is wrapped in a
// FaultFile. Opened fault files are retained for the test to arm, and
// all of them share one fault schedule (SeedTransient, FailWritesWith)
// so a storm or a dead disk spans the whole facility.
type FaultStore struct {
	inner Store
	sched *faultSched

	mu    sync.Mutex
	files map[string]*FaultFile
}

// NewFaultStore wraps inner.
func NewFaultStore(inner Store) *FaultStore {
	return &FaultStore{inner: inner, sched: &faultSched{}, files: make(map[string]*FaultFile)}
}

// SeedTransient arms a probabilistic schedule of transient faults on
// every file (present and future) of the store, drawn from a generator
// seeded with seed so a soak run replays identically.
func (s *FaultStore) SeedTransient(seed int64, cfg TransientFaults) {
	s.sched.seedTransient(seed, cfg)
}

// FailWritesWith fails every subsequent write and allocation on every
// file of the store with err — a persistent fault like syscall.ENOSPC
// that no retry clears. A nil err restores writes.
func (s *FaultStore) FailWritesWith(err error) {
	s.sched.failWritesWith(err)
}

// FailReadsWith fails every subsequent read on every file of the store
// with err. A nil err restores reads.
func (s *FaultStore) FailReadsWith(err error) {
	s.sched.failReadsWith(err)
}

// Heal clears the probabilistic schedule and the persistent failure
// modes. Deterministic per-file counters are unaffected.
func (s *FaultStore) Heal() {
	s.sched.heal()
}

// Open implements Store.
func (s *FaultStore) Open(name string) (File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.files[name]; ok {
		return f, nil
	}
	inner, err := s.inner.Open(name)
	if err != nil {
		return nil, err
	}
	f := NewFaultFile(inner)
	f.sched = s.sched
	s.files[name] = f
	return f, nil
}

// File returns the fault wrapper previously opened under name, or nil.
func (s *FaultStore) File(name string) *FaultFile {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.files[name]
}

// Files returns every fault wrapper opened through the store, for tests
// that arm a fault on all of a facility's files at once (a facility like
// BSSF spans many files and which one a given operation touches first is
// an implementation detail).
func (s *FaultStore) Files() []*FaultFile {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.files))
	for name := range s.files {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*FaultFile, 0, len(names))
	for _, name := range names {
		out = append(out, s.files[name])
	}
	return out
}

// Close implements Store.
func (s *FaultStore) Close() error { return s.inner.Close() }

var _ Store = (*FaultStore)(nil)
var _ Store = (*MemStore)(nil)
var _ Store = (*DiskStore)(nil)
