package pagestore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestDiskFileDetectsTornPage is the no-WAL half of the durability
// contract: a page torn behind DiskFile's back is detected by its
// checksum, never silently read.
func TestDiskFileDetectsTornPage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.pag")
	f, err := OpenDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := f.WritePage(0, page(0x3c)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[100] ^= 0xff // corrupt one data byte, leaving the trailer intact
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	f2, err := OpenDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	buf := make([]byte, PageSize)
	err = f2.ReadPage(0, buf)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("ReadPage on corrupt page: got %v, want ErrChecksum", err)
	}

	// A mangled trailer magic is likewise detected.
	raw[100] ^= 0xff
	raw[PageSize+5] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	f3, err := OpenDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f3.Close()
	if err := f3.ReadPage(0, buf); !errors.Is(err, ErrChecksum) {
		t.Fatalf("ReadPage on bad magic: got %v, want ErrChecksum", err)
	}
}

// crashDev returns an in-memory BlockFile that never crashes.
func crashDev() *CrashFile {
	return &CrashFile{clock: NewCrashClock(-1)}
}

func TestWALRoundTrip(t *testing.T) {
	dev := crashDev()
	w, err := openWAL(dev, "test.wal")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.appendExtend("a", 3); err != nil {
		t.Fatal(err)
	}
	if err := w.appendPage("a", 2, page(0x11)); err != nil {
		t.Fatal(err)
	}
	if err := w.appendPage("b", 0, page(0x22)); err != nil {
		t.Fatal(err)
	}
	if err := w.commit(); err != nil {
		t.Fatal(err)
	}
	// A second transaction that never commits must not replay.
	if err := w.appendPage("a", 0, page(0x33)); err != nil {
		t.Fatal(err)
	}

	w2, err := openWAL(dev, "test.wal")
	if err != nil {
		t.Fatal(err)
	}
	images, extents, err := w2.replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(images) != 2 {
		t.Fatalf("replayed %d images, want 2", len(images))
	}
	if images[0].tag != "a" || images[0].id != 2 || !bytes.Equal(images[0].data, page(0x11)) {
		t.Fatalf("image 0 = %s/%d", images[0].tag, images[0].id)
	}
	if images[1].tag != "b" || images[1].id != 0 || !bytes.Equal(images[1].data, page(0x22)) {
		t.Fatalf("image 1 = %s/%d", images[1].tag, images[1].id)
	}
	if extents["a"] != 3 || len(extents) != 1 {
		t.Fatalf("extents = %v, want a:3", extents)
	}
}

func TestWALTornTailIgnored(t *testing.T) {
	dev := crashDev()
	w, err := openWAL(dev, "test.wal")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.appendPage("a", 0, page(0x44)); err != nil {
		t.Fatal(err)
	}
	if err := w.commit(); err != nil {
		t.Fatal(err)
	}
	if err := w.appendPage("a", 1, page(0x55)); err != nil {
		t.Fatal(err)
	}
	if err := w.commit(); err != nil {
		t.Fatal(err)
	}

	// Cut the log mid-way through the second transaction's page record:
	// only the first transaction survives replay.
	cut := int64(len(walMagic)) + int64(1+2+4+1+PageSize+4) + int64(1+8+4) + 37
	if err := dev.Truncate(cut); err != nil {
		t.Fatal(err)
	}
	w2, err := openWAL(dev, "test.wal")
	if err != nil {
		t.Fatal(err)
	}
	images, _, err := w2.replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(images) != 1 || images[0].id != 0 || !bytes.Equal(images[0].data, page(0x44)) {
		t.Fatalf("torn replay returned %d images", len(images))
	}
}

func TestDurableFileCommitRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.pag")
	f, err := OpenDurableFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.WritePage(1, page(0x66)); err != nil {
		t.Fatal(err)
	}

	// Uncommitted writes are visible to the transaction itself...
	buf := make([]byte, PageSize)
	if err := f.ReadPage(1, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, page(0x66)) {
		t.Fatal("transaction does not see its own write")
	}
	// ...including reads of allocated-but-unwritten pages.
	if err := f.ReadPage(2, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, page(0)) {
		t.Fatal("allocated page is not zeroed before commit")
	}

	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	f2, err := OpenDurableFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.NumPages() != 3 {
		t.Fatalf("NumPages = %d after reopen, want 3", f2.NumPages())
	}
	if err := f2.ReadPage(1, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, page(0x66)) {
		t.Fatal("committed page lost across reopen")
	}
}

// TestOpenDiskFileReplaysSidecar builds a WAL sidecar holding a committed
// transaction that was never applied — the state a crash between commit
// and apply leaves — and checks OpenDiskFile replays it.
func TestOpenDiskFileReplaysSidecar(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pages.pag")

	f, err := OpenDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := f.WritePage(0, page(0x10)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	wf, err := os.OpenFile(path+walSuffix, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	w, err := openWAL(osBlockFile{wf}, path+walSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.appendExtend("", 2); err != nil {
		t.Fatal(err)
	}
	if err := w.appendPage("", 0, page(0x20)); err != nil {
		t.Fatal(err)
	}
	if err := w.appendPage("", 1, page(0x21)); err != nil {
		t.Fatal(err)
	}
	if err := w.commit(); err != nil {
		t.Fatal(err)
	}
	if err := wf.Close(); err != nil {
		t.Fatal(err)
	}

	f2, err := OpenDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.NumPages() != 2 {
		t.Fatalf("NumPages = %d after sidecar replay, want 2", f2.NumPages())
	}
	buf := make([]byte, PageSize)
	for i, want := range []byte{0x20, 0x21} {
		if err := f2.ReadPage(PageID(i), buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, page(want)) {
			t.Fatalf("page %d not replayed from sidecar", i)
		}
	}
	fi, err := os.Stat(path + walSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Fatalf("sidecar not truncated after replay: size %d", fi.Size())
	}
}

func TestDurableStoreSpansFiles(t *testing.T) {
	fs := NewCrashFS(NewCrashClock(-1))
	s, err := OpenDurableStoreFS(fs)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"bssf.oid", "bssf.slice.0001", "nested/a"}
	for i, name := range names {
		f, err := s.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Allocate(); err != nil {
			t.Fatal(err)
		}
		if err := f.WritePage(0, page(byte(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDurableStoreFS(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	buf := make([]byte, PageSize)
	for i, name := range names {
		f, err := s2.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		if f.NumPages() != 1 {
			t.Fatalf("%s: NumPages = %d, want 1", name, f.NumPages())
		}
		if err := f.ReadPage(0, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, page(byte(i+1))) {
			t.Fatalf("%s: page lost across reopen", name)
		}
	}
}

// TestDurableStoreConcurrentReaders drives one writer committing batches
// while readers scan committed pages — the single-writer model the store
// documents — and is primarily meaningful under -race.
func TestDurableStoreConcurrentReaders(t *testing.T) {
	fs := NewCrashFS(NewCrashClock(-1))
	s, err := OpenDurableStoreFS(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	f, err := s.Open("shared")
	if err != nil {
		t.Fatal(err)
	}
	const npages = 8
	for i := 0; i < npages; i++ {
		if _, err := f.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, 4)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, PageSize)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := f.ReadPage(PageID(i%npages), buf); err != nil {
					errc <- fmt.Errorf("reader: %w", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for round := 0; round < 50; round++ {
			if err := f.WritePage(PageID(round%npages), page(byte(round))); err != nil {
				errc <- fmt.Errorf("writer: %w", err)
				return
			}
			if round%5 == 4 {
				if err := s.Commit(); err != nil {
					errc <- fmt.Errorf("commit: %w", err)
					return
				}
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}
