package pagestore

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sigfile/internal/obs"
)

// Scrub metrics. Pages/corrupt/repaired are monotone counters across
// passes; the gauge tracks how many pages are currently fenced off.
var (
	obsScrubRuns      = obs.Default().Counter("sigfile_scrub_runs_total")
	obsScrubPages     = obs.Default().Counter("sigfile_scrub_pages_total")
	obsScrubCorrupt   = obs.Default().Counter("sigfile_scrub_corrupt_total")
	obsScrubRepaired  = obs.Default().Counter("sigfile_scrub_repaired_total")
	obsQuarantinedNow = obs.Default().Gauge("sigfile_pagestore_quarantined_pages")
)

// ScrubReport summarizes one scrub pass over a DurableStore.
type ScrubReport struct {
	Files    int // member files walked
	Pages    int // pages whose checksum was verified
	Corrupt  int // pages that failed verification
	Repaired int // corrupt pages rewritten from the log
	// Quarantined counts corrupt pages with no committed image left in
	// the log; they stay fenced off until a write replaces them.
	Quarantined int
	// Cleared counts previously quarantined pages the pass found healthy
	// again (e.g. a committed write replaced them) and released.
	Cleared int
}

// String renders the report for logs and the sigdb REPL.
func (r ScrubReport) String() string {
	return fmt.Sprintf("scrub: %d files, %d pages, %d corrupt, %d repaired, %d quarantined, %d cleared",
		r.Files, r.Pages, r.Corrupt, r.Repaired, r.Quarantined, r.Cleared)
}

// Scrub walks every committed page of every member file verifying its
// checksum — the background defense against silent media corruption
// that a read would otherwise only discover at query time. Corrupt
// pages are repaired from the log's last committed image when possible
// and quarantined when not. The walk polls ctx between pages so a
// shutdown is not held up by a large store.
func (s *DurableStore) Scrub(ctx context.Context) (ScrubReport, error) {
	var rep ScrubReport
	files := s.members()
	rep.Files = len(files)
	buf := make([]byte, PageSize)
	for _, f := range files {
		n := f.committedPages()
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return rep, fmt.Errorf("pagestore: scrub: %w", err)
			}
			id := PageID(i)
			err := f.verifyPage(id, buf)
			rep.Pages++
			obsScrubPages.Inc()
			switch {
			case err == nil:
				if f.clearQuarantine(id) {
					rep.Cleared++
				}
			case errors.Is(err, ErrChecksum):
				rep.Corrupt++
				obsScrubCorrupt.Inc()
				if rerr := s.repairPage(f, id); rerr != nil {
					rep.Quarantined++
				} else {
					rep.Repaired++
					obsScrubRepaired.Inc()
				}
			case errors.Is(err, ErrClosed):
				// The store closed under the scrubber; stop quietly.
				return rep, nil
			default:
				return rep, fmt.Errorf("pagestore: scrub %s page %d: %w", f.label(), id, err)
			}
		}
	}
	obsScrubRuns.Inc()
	obsQuarantinedNow.Set(s.quarantinedCount())
	return rep, nil
}

// members snapshots the store's files sorted by tag.
func (s *DurableStore) members() []*DurableFile {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dirtyOrderLocked()
}

// dirtyOrderLocked returns every member sorted by tag. Caller holds
// s.mu.
func (s *DurableStore) dirtyOrderLocked() []*DurableFile {
	tags := make([]string, 0, len(s.files))
	for tag := range s.files {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	out := make([]*DurableFile, 0, len(tags))
	for _, tag := range tags {
		out = append(out, s.files[tag])
	}
	return out
}

// quarantinedCount sums the fenced-off pages across members.
func (s *DurableStore) quarantinedCount() int64 {
	var n int64
	for _, f := range s.members() {
		n += int64(len(f.QuarantinedPages()))
	}
	return n
}

// committedPages is the on-disk extent — the range a scrub can verify.
func (f *DurableFile) committedPages() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return 0
	}
	return f.inner.NumPages()
}

// verifyPage reads page id from the disk (not the overlay: the scrub
// checks bytes at rest) through the checksum layer.
func (f *DurableFile) verifyPage(id PageID, buf []byte) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return ErrClosed
	}
	if int(id) >= f.inner.NumPages() {
		return nil
	}
	return f.inner.ReadPage(id, buf)
}

// clearQuarantine releases page id if it was fenced off, reporting
// whether it was.
func (f *DurableFile) clearQuarantine(id PageID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.quarantined[id]; !ok {
		return false
	}
	delete(f.quarantined, id)
	return true
}

// StartScrubber runs Scrub every interval on a background goroutine
// until the returned stop function is called; stop blocks until the
// in-flight pass finishes. onReport (nil ok) receives each pass's
// outcome — sigfiled's hook for logging and alerting.
func (s *DurableStore) StartScrubber(interval time.Duration, onReport func(ScrubReport, error)) (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				rep, err := s.Scrub(ctx)
				if onReport != nil && ctx.Err() == nil {
					onReport(rep, err)
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			cancel()
			<-done
		})
	}
}
