package pagestore

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// FaultOp names the block-device operation a fault schedule targets.
type FaultOp int

const (
	FaultRead FaultOp = iota
	FaultWrite
	FaultSync
	FaultTruncate
)

// String returns the operation name for schedules and test failures.
func (op FaultOp) String() string {
	switch op {
	case FaultRead:
		return "read"
	case FaultWrite:
		return "write"
	case FaultSync:
		return "sync"
	case FaultTruncate:
		return "truncate"
	}
	return fmt.Sprintf("FaultOp(%d)", int(op))
}

// FaultSpec describes one injected fault.
type FaultSpec struct {
	// Err is the error the operation returns. The zero spec injects
	// nothing (useful for latency-only arms).
	Err error
	// Transient wraps Err with MarkTransient so the retry layer
	// classifies it retryable regardless of its errno.
	Transient bool
	// KeepBytes is, for writes, how many leading bytes still land before
	// the fault fires — a short write. Negative keeps half (a torn
	// write, like CrashClock's expiring operation). Zero keeps nothing.
	KeepBytes int
	// Delay stalls the operation before it proceeds or fails, modeling a
	// slow device.
	Delay time.Duration
}

// err returns the spec's error with the transient marker applied.
func (s FaultSpec) err() error {
	if s.Err == nil {
		return nil
	}
	err := fmt.Errorf("%w: %w", ErrInjected, s.Err)
	if s.Transient {
		err = MarkTransient(err)
	}
	return err
}

// faultArm is a deterministic one-shot schedule entry: the (after+1)-th
// operation of kind op across the filesystem trips spec.
type faultArm struct {
	op    FaultOp
	after int
	spec  FaultSpec
}

// FaultFS is an in-memory BlockFS sibling of CrashFS that injects
// transient and persistent device faults instead of crashes. Schedules
// come in three shapes, combinable:
//
//   - deterministic: ArmAfter fires a spec on the n-th operation of a
//     kind, for pinpoint tests ("the second WAL write hits ENOSPC");
//   - probabilistic: SeedProbabilistic fires a spec on each operation
//     with per-kind probability from a seeded generator, for soak tests
//     that need reproducible chaos;
//   - persistent: FailPersistently fails every operation of a kind until
//     Heal, modeling a full disk or a read-only remount.
//
// Corrupt flips bytes at rest, which the checksum layer must catch on
// the next read — the scrubber's prey.
type FaultFS struct {
	mu    sync.Mutex
	files map[string]*faultBlockFile
	arms  []faultArm
	rng   *rand.Rand
	prob  map[FaultOp]float64
	pspec FaultSpec
	pers  map[FaultOp]FaultSpec
	ops   map[FaultOp]int
	// sleep is replaceable for tests exercising Delay without real time.
	sleep func(time.Duration)
}

// NewFaultFS returns an empty filesystem with no faults armed.
func NewFaultFS() *FaultFS {
	return &FaultFS{
		files: make(map[string]*faultBlockFile),
		pers:  make(map[FaultOp]FaultSpec),
		ops:   make(map[FaultOp]int),
		sleep: time.Sleep,
	}
}

// Open implements BlockFS.
func (fs *FaultFS) Open(name string) (BlockFile, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		f = &faultBlockFile{fs: fs, name: name}
		fs.files[name] = f
	}
	return f, nil
}

// ArmAfter schedules spec to fire on the (n+1)-th subsequent operation
// of kind op (n = 0 means the next one). Each arm fires once.
func (fs *FaultFS) ArmAfter(op FaultOp, n int, spec FaultSpec) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.arms = append(fs.arms, faultArm{op: op, after: fs.ops[op] + n, spec: spec})
}

// SeedProbabilistic arms spec to fire on each operation of kind op with
// probability prob[op], drawn from a generator seeded with seed so a
// soak schedule replays identically. A second call replaces the first.
func (fs *FaultFS) SeedProbabilistic(seed int64, prob map[FaultOp]float64, spec FaultSpec) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.rng = rand.New(rand.NewSource(seed))
	fs.prob = prob
	fs.pspec = spec
}

// FailPersistently fails every subsequent operation of kind op with
// spec until Heal clears it.
func (fs *FaultFS) FailPersistently(op FaultOp, spec FaultSpec) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.pers[op] = spec
}

// Heal clears every armed, probabilistic, and persistent fault. Bytes
// already corrupted or torn stay as they are.
func (fs *FaultFS) Heal() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.arms = nil
	fs.rng = nil
	fs.prob = nil
	fs.pers = make(map[FaultOp]FaultSpec)
}

// Corrupt XOR-flips the byte at off in the named file, simulating silent
// media corruption under the checksum layer.
func (fs *FaultFS) Corrupt(name string, off int64, mask byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("pagestore: faultfs corrupt: no file %q", name)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if off < 0 || off >= int64(len(f.data)) {
		return fmt.Errorf("pagestore: faultfs corrupt %s at %d beyond size %d", name, off, len(f.data))
	}
	if mask == 0 {
		mask = 0xff
	}
	f.data[off] ^= mask
	return nil
}

// Names returns the file names present, sorted.
func (fs *FaultFS) Names() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for name := range fs.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Size returns the byte size of the named file, or -1 if absent.
func (fs *FaultFS) Size(name string) int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return -1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(len(f.data))
}

// decide accounts one operation of kind op and returns the fault to
// apply, if any. The precedence — persistent, then deterministic arms,
// then the probabilistic schedule — makes pinpoint arms reliable even
// while chaos is running.
func (fs *FaultFS) decide(op FaultOp) (FaultSpec, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n := fs.ops[op]
	fs.ops[op] = n + 1
	if spec, ok := fs.pers[op]; ok {
		return spec, true
	}
	for i, arm := range fs.arms {
		if arm.op == op && arm.after == n {
			fs.arms = append(fs.arms[:i], fs.arms[i+1:]...)
			return arm.spec, true
		}
	}
	if fs.rng != nil && fs.prob[op] > 0 && fs.rng.Float64() < fs.prob[op] {
		return fs.pspec, true
	}
	return FaultSpec{}, false
}

// faultBlockFile is an in-memory BlockFile whose operations consult the
// owning FaultFS before touching the byte array.
type faultBlockFile struct {
	fs   *FaultFS
	name string

	mu   sync.Mutex
	data []byte
}

// ReadAt implements BlockFile.
func (f *faultBlockFile) ReadAt(p []byte, off int64) (int, error) {
	if spec, ok := f.fs.decide(FaultRead); ok {
		if spec.Delay > 0 {
			f.fs.sleep(spec.Delay)
		}
		if err := spec.err(); err != nil {
			return 0, fmt.Errorf("pagestore: faultfs read %s at %d: %w", f.name, off, err)
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if off >= int64(len(f.data)) {
		return 0, fmt.Errorf("pagestore: faultfs read %s at %d beyond size %d", f.name, off, len(f.data))
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, fmt.Errorf("pagestore: faultfs short read %s at %d", f.name, off)
	}
	return n, nil
}

// WriteAt implements BlockFile. A faulted write may land a prefix of its
// bytes first (FaultSpec.KeepBytes), modeling short and torn writes.
func (f *faultBlockFile) WriteAt(p []byte, off int64) (int, error) {
	keep := len(p)
	var ferr error
	if spec, ok := f.fs.decide(FaultWrite); ok {
		if spec.Delay > 0 {
			f.fs.sleep(spec.Delay)
		}
		if err := spec.err(); err != nil {
			ferr = fmt.Errorf("pagestore: faultfs write %s at %d: %w", f.name, off, err)
			keep = spec.KeepBytes
			if keep < 0 {
				keep = len(p) / 2
			}
			if keep > len(p) {
				keep = len(p)
			}
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if keep > 0 {
		end := off + int64(keep)
		if end > int64(len(f.data)) {
			f.data = append(f.data, make([]byte, end-int64(len(f.data)))...)
		}
		copy(f.data[off:end], p[:keep])
	}
	if ferr != nil {
		return keep, ferr
	}
	return len(p), nil
}

// Truncate implements BlockFile. A faulted truncate does not happen —
// truncation is metadata, atomic in the model.
func (f *faultBlockFile) Truncate(size int64) error {
	if spec, ok := f.fs.decide(FaultTruncate); ok {
		if spec.Delay > 0 {
			f.fs.sleep(spec.Delay)
		}
		if err := spec.err(); err != nil {
			return fmt.Errorf("pagestore: faultfs truncate %s: %w", f.name, err)
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if int64(len(f.data)) > size {
		f.data = f.data[:size]
	} else {
		f.data = append(f.data, make([]byte, size-int64(len(f.data)))...)
	}
	return nil
}

// Sync implements BlockFile; the in-memory device is otherwise always
// durable.
func (f *faultBlockFile) Sync() error {
	if spec, ok := f.fs.decide(FaultSync); ok {
		if spec.Delay > 0 {
			f.fs.sleep(spec.Delay)
		}
		if err := spec.err(); err != nil {
			return fmt.Errorf("pagestore: faultfs sync %s: %w", f.name, err)
		}
	}
	return nil
}

// Size implements BlockFile.
func (f *faultBlockFile) Size() (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(len(f.data)), nil
}

// Close implements BlockFile; the bytes persist in the FaultFS.
func (f *faultBlockFile) Close() error { return nil }

var (
	_ BlockFile = (*faultBlockFile)(nil)
	_ BlockFS   = (*FaultFS)(nil)
)
