package pagestore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrCrashed is returned by every I/O operation on a CrashFile after its
// CrashClock expired: the simulated machine is down.
var ErrCrashed = errors.New("pagestore: simulated crash")

// CrashClock kills a set of CrashFiles after a budget of mutating
// operations (WriteAt, Truncate). The operation that exhausts the budget
// is *torn*: only the first half of its bytes land, modeling a write the
// power cut interrupted. Every operation after that fails with
// ErrCrashed. Reads never consume budget — a crashed disk is simply gone,
// and the harness snapshots state instead of reading through the clock.
//
// A nil *CrashClock never crashes. The clock is shared by all files of a
// CrashFS so a schedule spans the page files and the WAL together.
type CrashClock struct {
	mu      sync.Mutex
	limit   int
	ops     int
	crashed bool
}

// NewCrashClock returns a clock that tears the (limit+1)-th mutating
// operation and fails all later ones. limit < 0 means never crash while
// still counting, for measuring a schedule's length.
func NewCrashClock(limit int) *CrashClock {
	return &CrashClock{limit: limit}
}

// Ops returns how many mutating operations have been observed.
func (c *CrashClock) Ops() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// Crashed reports whether the clock has expired.
func (c *CrashClock) Crashed() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// tick accounts one mutating operation of n bytes. It returns the number
// of bytes that still reach the device and, when the operation must
// fail, ErrCrashed. The expiring operation keeps its first n/2 bytes —
// the torn write — and subsequent ones keep none.
func (c *CrashClock) tick(n int) (int, error) {
	if c == nil {
		return n, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return 0, ErrCrashed
	}
	c.ops++
	if c.limit >= 0 && c.ops > c.limit {
		c.crashed = true
		return n / 2, ErrCrashed
	}
	return n, nil
}

// CrashFile is an in-memory BlockFile wired to a CrashClock. It grows on
// write like a sparse file and serves reads from whatever bytes survived.
type CrashFile struct {
	mu    sync.Mutex
	clock *CrashClock
	data  []byte
}

// ReadAt implements BlockFile. Reads past the end are zero-filled up to
// len(p) with io.EOF semantics matching os.File closely enough for the
// layers above (they never read past Size).
func (f *CrashFile) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.clock.Crashed() {
		return 0, ErrCrashed
	}
	if off >= int64(len(f.data)) {
		return 0, fmt.Errorf("pagestore: crashfile read at %d beyond size %d", off, len(f.data))
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, fmt.Errorf("pagestore: crashfile short read at %d", off)
	}
	return n, nil
}

// WriteAt implements BlockFile, consuming one clock tick; the expiring
// write is torn in half.
func (f *CrashFile) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	keep, err := f.clock.tick(len(p))
	if keep > 0 {
		end := off + int64(keep)
		if end > int64(len(f.data)) {
			f.data = append(f.data, make([]byte, end-int64(len(f.data)))...)
		}
		copy(f.data[off:end], p[:keep])
	}
	if err != nil {
		return keep, err
	}
	return len(p), nil
}

// Truncate implements BlockFile, consuming one clock tick. A torn
// truncate simply does not happen (truncation is metadata, not bytes).
func (f *CrashFile) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	keep, err := f.clock.tick(1)
	if err != nil && keep == 0 {
		return err
	}
	if int64(len(f.data)) > size {
		f.data = f.data[:size]
	} else {
		f.data = append(f.data, make([]byte, size-int64(len(f.data)))...)
	}
	return err
}

// Sync implements BlockFile. The in-memory device is always "durable";
// after a crash it reports failure like every other operation.
func (f *CrashFile) Sync() error {
	if f.clock.Crashed() {
		return ErrCrashed
	}
	return nil
}

// Size implements BlockFile.
func (f *CrashFile) Size() (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.clock.Crashed() {
		return 0, ErrCrashed
	}
	return int64(len(f.data)), nil
}

// Close implements BlockFile. The bytes persist in the CrashFS — closing
// a file does not discard the simulated disk.
func (f *CrashFile) Close() error { return nil }

// CrashFS is an in-memory BlockFS whose files share one CrashClock. The
// crash-consistency harness runs a DurableStore over it, snapshots the
// byte state, re-runs an update schedule under ever-shorter clocks, and
// reopens from the surviving bytes to exercise recovery.
type CrashFS struct {
	mu    sync.Mutex
	clock *CrashClock
	files map[string]*CrashFile
}

// NewCrashFS returns an empty filesystem governed by clock (nil = never
// crash).
func NewCrashFS(clock *CrashClock) *CrashFS {
	return &CrashFS{clock: clock, files: make(map[string]*CrashFile)}
}

// Open implements BlockFS.
func (fs *CrashFS) Open(name string) (BlockFile, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.clock.Crashed() {
		return nil, ErrCrashed
	}
	f, ok := fs.files[name]
	if !ok {
		f = &CrashFile{clock: fs.clock}
		fs.files[name] = f
	}
	return f, nil
}

// SetClock rearms every file with clock; used between harness runs.
func (fs *CrashFS) SetClock(clock *CrashClock) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.clock = clock
	for _, f := range fs.files {
		f.mu.Lock()
		f.clock = clock
		f.mu.Unlock()
	}
}

// Snapshot copies the full byte state of every file — the "disk image"
// at this instant.
func (fs *CrashFS) Snapshot() map[string][]byte {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	snap := make(map[string][]byte, len(fs.files))
	for name, f := range fs.files {
		f.mu.Lock()
		snap[name] = append([]byte(nil), f.data...)
		f.mu.Unlock()
	}
	return snap
}

// Restore replaces the filesystem contents with a prior Snapshot.
func (fs *CrashFS) Restore(snap map[string][]byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files = make(map[string]*CrashFile, len(snap))
	for name, data := range snap {
		fs.files[name] = &CrashFile{clock: fs.clock, data: append([]byte(nil), data...)}
	}
}

// Names returns the file names present, sorted.
func (fs *CrashFS) Names() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for name := range fs.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// VerifyChecksums reads every page of the named page file through the
// checksum layer, returning the first corruption found. name is the
// BlockFS-level name (including any suffix).
func VerifyChecksums(fs BlockFS, name string) error {
	dev, err := fs.Open(name)
	if err != nil {
		return err
	}
	f, err := newDiskFile(dev, name)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, PageSize)
	for i := 0; i < f.NumPages(); i++ {
		if err := f.ReadPage(PageID(i), buf); err != nil {
			return fmt.Errorf("%s page %d: %w", name, i, err)
		}
	}
	return nil
}

var (
	_ BlockFile = (*CrashFile)(nil)
	_ BlockFS   = (*CrashFS)(nil)
)
