// Package pagestore provides the paged storage substrate on which every
// access facility in this library is built.
//
// The cost model of Ishikawa, Kitagawa and Ohbo (SIGMOD 1993) measures
// every facility in *page accesses*: the number of disk pages read or
// written while answering a query or applying an update. To let the running
// system be compared against the analytical model, every page file in this
// package counts its accesses in a Stats structure that experiments can
// snapshot and reset.
//
// Two implementations of File are provided: MemFile, an in-memory page
// vector used by the experiments (the paper's "disk" is hypothetical, so an
// in-memory store with exact accounting reproduces the metric without the
// noise of a real device), and DiskFile, an os.File-backed implementation
// for durability demos. A write-back LRU BufferPool can be layered over any
// File for the buffering ablation study.
package pagestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"sigfile/internal/obs"
)

// PageSize is the size of every page in bytes, the paper's parameter
// P = 4096.
const PageSize = 4096

// PageID identifies a page within a File. Pages are numbered from 0 in
// allocation order.
type PageID uint32

// ErrPageOutOfRange is returned when reading or writing a page that has
// not been allocated.
var ErrPageOutOfRange = errors.New("pagestore: page out of range")

// ErrClosed is returned by operations on a closed file.
var ErrClosed = errors.New("pagestore: file is closed")

// ErrChecksum is returned by DiskFile.ReadPage when a page's stored
// CRC32C does not match its contents — the signature of a torn or
// corrupted write. A page protected by the WAL is repaired on recovery;
// an unprotected torn page is detected, never silently read.
var ErrChecksum = errors.New("pagestore: page checksum mismatch")

// Process-wide page-access instruments: every Stats increment also feeds
// these obs counters, so the metrics export sees the total page traffic
// of all files — memory, disk, buffered — without per-file registry
// lookups on the hot path.
var (
	obsReads  = obs.Default().Counter("sigfile_pagestore_reads_total")
	obsWrites = obs.Default().Counter("sigfile_pagestore_writes_total")
	obsAllocs = obs.Default().Counter("sigfile_pagestore_allocs_total")
)

// Stats counts physical page accesses. All counters are cumulative; use
// Snapshot/Reset around a measured operation. Counters are updated
// atomically so a File may be shared across goroutines.
type Stats struct {
	reads  atomic.Int64
	writes atomic.Int64
	allocs atomic.Int64
}

// countRead records one page read in this file's counters and the
// process-wide metrics. countWrite and countAlloc mirror it. Every File
// implementation accounts through these, so the obs registry's totals
// cover exactly what Stats covers.
func (s *Stats) countRead() {
	s.reads.Add(1)
	obsReads.Inc()
}

func (s *Stats) countWrite() {
	s.writes.Add(1)
	obsWrites.Inc()
}

func (s *Stats) countAlloc() {
	s.allocs.Add(1)
	obsAllocs.Inc()
}

// Reads returns the cumulative number of page reads.
func (s *Stats) Reads() int64 { return s.reads.Load() }

// Writes returns the cumulative number of page writes (including the
// write that initializes a newly allocated page).
func (s *Stats) Writes() int64 { return s.writes.Load() }

// Allocs returns the cumulative number of page allocations.
func (s *Stats) Allocs() int64 { return s.allocs.Load() }

// Accesses returns reads + writes, the paper's page-access metric.
func (s *Stats) Accesses() int64 { return s.Reads() + s.Writes() }

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.reads.Store(0)
	s.writes.Store(0)
	s.allocs.Store(0)
}

// Snapshot returns the current counter values as plain integers.
func (s *Stats) Snapshot() (reads, writes, allocs int64) {
	return s.Reads(), s.Writes(), s.Allocs()
}

// Add accumulates the counters of o into s. Useful to aggregate the stats
// of the many slice files of a bit-sliced signature file.
func (s *Stats) Add(o *Stats) {
	s.reads.Add(o.Reads())
	s.writes.Add(o.Writes())
	s.allocs.Add(o.Allocs())
}

func (s *Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d allocs=%d", s.Reads(), s.Writes(), s.Allocs())
}

// File is a sequence of fixed-size pages with access accounting.
//
// Implementations must be safe for concurrent use by multiple goroutines.
type File interface {
	// ReadPage copies page id into buf, which must be at least PageSize
	// bytes, and counts one read.
	ReadPage(id PageID, buf []byte) error
	// WritePage overwrites page id from buf, which must be at least
	// PageSize bytes, and counts one write.
	WritePage(id PageID, buf []byte) error
	// Allocate appends a zeroed page and returns its id. Allocation by
	// itself counts as an allocation, not a read or write; the caller's
	// subsequent WritePage is the accounted access, mirroring the paper's
	// "one page access to append".
	Allocate() (PageID, error)
	// NumPages returns the number of allocated pages.
	NumPages() int
	// Stats returns the access counters of this file. The returned pointer
	// stays valid for the life of the file.
	Stats() *Stats
	// Sync flushes buffered state to the underlying medium, if any.
	Sync() error
	// Close releases resources. Further operations return ErrClosed.
	Close() error
}

// MemFile is an in-memory File. The zero value is not usable; call
// NewMemFile.
type MemFile struct {
	mu     sync.RWMutex
	pages  [][]byte
	closed bool
	stats  Stats
}

// NewMemFile returns an empty in-memory page file.
func NewMemFile() *MemFile { return &MemFile{} }

// ReadPage implements File.
func (f *MemFile) ReadPage(id PageID, buf []byte) error {
	if len(buf) < PageSize {
		return fmt.Errorf("pagestore: read buffer %d bytes, need %d", len(buf), PageSize)
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return ErrClosed
	}
	if int(id) >= len(f.pages) {
		return fmt.Errorf("%w: read page %d of %d", ErrPageOutOfRange, id, len(f.pages))
	}
	copy(buf[:PageSize], f.pages[id])
	f.stats.countRead()
	return nil
}

// WritePage implements File.
func (f *MemFile) WritePage(id PageID, buf []byte) error {
	if len(buf) < PageSize {
		return fmt.Errorf("pagestore: write buffer %d bytes, need %d", len(buf), PageSize)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if int(id) >= len(f.pages) {
		return fmt.Errorf("%w: write page %d of %d", ErrPageOutOfRange, id, len(f.pages))
	}
	copy(f.pages[id], buf[:PageSize])
	f.stats.countWrite()
	return nil
}

// Allocate implements File.
func (f *MemFile) Allocate() (PageID, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	f.pages = append(f.pages, make([]byte, PageSize))
	f.stats.countAlloc()
	return PageID(len(f.pages) - 1), nil
}

// NumPages implements File.
func (f *MemFile) NumPages() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.pages)
}

// Stats implements File.
func (f *MemFile) Stats() *Stats { return &f.stats }

// Sync implements File; it is a no-op for an in-memory file.
func (f *MemFile) Sync() error { return nil }

// Close implements File.
func (f *MemFile) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	return nil
}

// Page frames on disk carry an 8-byte trailer after the PageSize data
// bytes: a CRC32C (Castagnoli) of the data followed by a format magic.
// ReadPage recomputes the CRC and fails with ErrChecksum on mismatch, so
// a write torn by a crash (or bit rot) is detected instead of silently
// returned to the facility above.
const (
	pageTrailerSize = 8
	diskFrameSize   = PageSize + pageTrailerSize
	pageMagic       = 0x53504731 // "SPG1", page-frame format version 1
)

// castagnoli is the CRC32C polynomial table shared by page trailers and
// WAL records.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// DiskFile is a File backed by a BlockFile (usually an operating-system
// file). Page i's frame lives at byte offset i*diskFrameSize: PageSize
// data bytes followed by the checksum trailer.
type DiskFile struct {
	mu     sync.Mutex
	f      BlockFile
	name   string
	npages int
	closed bool
	stats  Stats
	frame  [diskFrameSize]byte // scratch, guarded by mu
}

// OpenDiskFile opens (creating if necessary) the page file at path. An
// existing file must have a size that is a multiple of the page frame
// size. If a WAL sidecar (path + ".wal") from a crashed durable session
// exists, its committed records are replayed into the file and the log
// is truncated before the file is returned — see DurableFile.
func OpenDiskFile(path string) (*DiskFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagestore: open %s: %w", path, err)
	}
	d, err := newDiskFile(osBlockFile{f}, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi, err := os.Stat(path + walSuffix); err == nil && fi.Size() > 0 {
		if err := recoverSidecar(path, d); err != nil {
			d.Close()
			return nil, err
		}
	}
	return d, nil
}

// newDiskFile wraps an already-open device. name is used in errors only.
// A trailing partial frame — the remnant of an append torn by a crash —
// is truncated away; the page it belonged to was never committed without
// a WAL record, so recovery re-creates it if it matters.
func newDiskFile(bf BlockFile, name string) (*DiskFile, error) {
	size, err := bf.Size()
	if err != nil {
		return nil, fmt.Errorf("pagestore: size of %s: %w", name, err)
	}
	if rem := size % diskFrameSize; rem != 0 {
		size -= rem
		if err := bf.Truncate(size); err != nil {
			return nil, fmt.Errorf("pagestore: truncate torn tail of %s: %w", name, err)
		}
	}
	return &DiskFile{f: bf, name: name, npages: int(size / diskFrameSize)}, nil
}

// sealFrame fills d.frame with data plus its checksum trailer.
func (d *DiskFile) sealFrame(data []byte) {
	copy(d.frame[:PageSize], data[:PageSize])
	binary.LittleEndian.PutUint32(d.frame[PageSize:], crc32.Checksum(d.frame[:PageSize], castagnoli))
	binary.LittleEndian.PutUint32(d.frame[PageSize+4:], pageMagic)
}

// ReadPage implements File. It verifies the page checksum and returns an
// error wrapping ErrChecksum for a torn or corrupt page.
func (d *DiskFile) ReadPage(id PageID, buf []byte) error {
	if len(buf) < PageSize {
		return fmt.Errorf("pagestore: read buffer %d bytes, need %d", len(buf), PageSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if int(id) >= d.npages {
		return fmt.Errorf("%w: read page %d of %d", ErrPageOutOfRange, id, d.npages)
	}
	if _, err := d.f.ReadAt(d.frame[:], int64(id)*diskFrameSize); err != nil {
		return fmt.Errorf("pagestore: read page %d: %w", id, err)
	}
	if magic := binary.LittleEndian.Uint32(d.frame[PageSize+4:]); magic != pageMagic {
		return fmt.Errorf("%w: %s page %d has bad frame magic %#x", ErrChecksum, d.name, id, magic)
	}
	want := binary.LittleEndian.Uint32(d.frame[PageSize:])
	if got := crc32.Checksum(d.frame[:PageSize], castagnoli); got != want {
		return fmt.Errorf("%w: %s page %d crc %#x, stored %#x", ErrChecksum, d.name, id, got, want)
	}
	copy(buf[:PageSize], d.frame[:PageSize])
	d.stats.countRead()
	return nil
}

// WritePage implements File. The data and its checksum trailer are
// written as one frame; a crash mid-write leaves a checksum mismatch
// that ReadPage detects.
func (d *DiskFile) WritePage(id PageID, buf []byte) error {
	if len(buf) < PageSize {
		return fmt.Errorf("pagestore: write buffer %d bytes, need %d", len(buf), PageSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if int(id) >= d.npages {
		return fmt.Errorf("%w: write page %d of %d", ErrPageOutOfRange, id, d.npages)
	}
	d.sealFrame(buf)
	if _, err := d.f.WriteAt(d.frame[:], int64(id)*diskFrameSize); err != nil {
		return fmt.Errorf("pagestore: write page %d: %w", id, err)
	}
	d.stats.countWrite()
	return nil
}

// Allocate implements File.
func (d *DiskFile) Allocate() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	var zero [PageSize]byte
	d.sealFrame(zero[:])
	if _, err := d.f.WriteAt(d.frame[:], int64(d.npages)*diskFrameSize); err != nil {
		return 0, fmt.Errorf("pagestore: extend to page %d: %w", d.npages, err)
	}
	d.npages++
	d.stats.countAlloc()
	return PageID(d.npages - 1), nil
}

// extendTo grows the file to at least n pages with zeroed frames; WAL
// recovery uses it to re-create allocations of a committed transaction.
func (d *DiskFile) extendTo(n int) error {
	for d.NumPages() < n {
		if _, err := d.Allocate(); err != nil {
			return err
		}
	}
	return nil
}

// NumPages implements File.
func (d *DiskFile) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.npages
}

// Stats implements File.
func (d *DiskFile) Stats() *Stats { return &d.stats }

// Sync implements File.
func (d *DiskFile) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.f.Sync()
}

// Close implements File.
func (d *DiskFile) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	return d.f.Close()
}

// Store creates and opens named page files. It abstracts "a directory of
// files" so that a bit-sliced signature file can manage its F slice files
// plus an OID file uniformly in memory or on disk.
type Store interface {
	// Open returns the page file with the given name, creating it empty if
	// it does not exist.
	Open(name string) (File, error)
	// Close closes every file opened through this store.
	Close() error
}

// MemStore is an in-memory Store.
type MemStore struct {
	mu    sync.Mutex
	files map[string]*MemFile
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{files: make(map[string]*MemFile)}
}

// Open implements Store.
func (s *MemStore) Open(name string) (File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[name]
	if !ok {
		f = NewMemFile()
		s.files[name] = f
	}
	return f, nil
}

// Close implements Store.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range s.files {
		f.Close()
	}
	return nil
}

// EachFile calls fn for every file opened through the store. Experiments
// use it to aggregate page-access statistics across a facility's files.
func (s *MemStore) EachFile(fn func(name string, f File)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, f := range s.files {
		fn(name, f)
	}
}

// TotalStats sums the access counters of every opened file.
func (s *MemStore) TotalStats() (reads, writes int64) {
	s.EachFile(func(_ string, f File) {
		reads += f.Stats().Reads()
		writes += f.Stats().Writes()
	})
	return reads, writes
}

// DiskStore is a Store mapping names to page files inside a directory.
type DiskStore struct {
	dir   string
	mu    sync.Mutex
	files map[string]*DiskFile
}

// NewDiskStore returns a store rooted at dir, creating the directory if
// needed.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pagestore: mkdir %s: %w", dir, err)
	}
	return &DiskStore{dir: dir, files: make(map[string]*DiskFile)}, nil
}

// Open implements Store. Slashes in the name map to subdirectories
// under the store's root; names may not escape it.
func (s *DiskStore) Open(name string) (File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.files[name]; ok {
		return f, nil
	}
	if name == "" || strings.Contains(name, "..") || filepath.IsAbs(name) {
		return nil, fmt.Errorf("pagestore: invalid file name %q", name)
	}
	path := filepath.Join(s.dir, filepath.FromSlash(name)+".pag")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("pagestore: mkdir for %s: %w", name, err)
	}
	f, err := OpenDiskFile(path)
	if err != nil {
		return nil, err
	}
	s.files[name] = f
	return f, nil
}

// Close implements Store.
func (s *DiskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for _, f := range s.files {
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// prefixStore namespaces every file name under a prefix so multiple
// facilities (which use fixed internal file names like "bssf.oid") can
// share one Store without colliding.
type prefixStore struct {
	inner  Store
	prefix string
}

// Prefixed returns a view of store in which every name is prefixed with
// "<prefix>/". Closing the view is a no-op; close the underlying store.
func Prefixed(store Store, prefix string) Store {
	return prefixStore{inner: store, prefix: prefix}
}

// Open implements Store.
func (s prefixStore) Open(name string) (File, error) {
	return s.inner.Open(s.prefix + "/" + name)
}

// Close implements Store: a no-op, because the view does not own the
// underlying store.
func (s prefixStore) Close() error { return nil }

var _ Store = prefixStore{}
