package pagestore

import (
	"bytes"
	"errors"
	"fmt"
	"syscall"
	"testing"
)

// openStoreFile opens a DurableStore over fs with one member file and
// returns both.
func openStoreFile(t *testing.T, fs BlockFS, name string) (*DurableStore, File) {
	t.Helper()
	store, err := OpenDurableStoreFS(fs)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	f, err := store.Open(name)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	return store, f
}

// fillPage returns a page stamped with b.
func fillPage(b byte) []byte {
	p := make([]byte, PageSize)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestFaultFSArmAfter(t *testing.T) {
	fs := NewFaultFS()
	dev, err := fs.Open("x")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	fs.ArmAfter(FaultWrite, 1, FaultSpec{Err: syscall.EIO, Transient: true})
	if _, err := dev.WriteAt([]byte("aa"), 0); err != nil {
		t.Fatalf("first write: %v", err)
	}
	_, err = dev.WriteAt([]byte("bb"), 2)
	if !errors.Is(err, syscall.EIO) || !errors.Is(err, ErrInjected) {
		t.Fatalf("second write = %v, want injected EIO", err)
	}
	if Classify(err) != ClassTransient {
		t.Fatalf("Classify = %v, want transient", Classify(err))
	}
	// The arm fired once; writes work again.
	if _, err := dev.WriteAt([]byte("cc"), 2); err != nil {
		t.Fatalf("third write: %v", err)
	}
}

func TestFaultFSShortWrite(t *testing.T) {
	fs := NewFaultFS()
	dev, err := fs.Open("x")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	fs.ArmAfter(FaultWrite, 0, FaultSpec{Err: syscall.EIO, KeepBytes: 3})
	n, err := dev.WriteAt([]byte("abcdef"), 0)
	if err == nil {
		t.Fatal("short write did not error")
	}
	if n != 3 {
		t.Fatalf("short write landed %d bytes, want 3", n)
	}
	if got := fs.Size("x"); got != 3 {
		t.Fatalf("file size %d, want 3", got)
	}
	buf := make([]byte, 3)
	if _, err := dev.ReadAt(buf, 0); err != nil {
		t.Fatalf("read back: %v", err)
	}
	if string(buf) != "abc" {
		t.Fatalf("surviving bytes %q, want %q", buf, "abc")
	}
}

func TestFaultFSPersistentAndHeal(t *testing.T) {
	fs := NewFaultFS()
	dev, err := fs.Open("x")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	fs.FailPersistently(FaultWrite, FaultSpec{Err: syscall.ENOSPC})
	for i := 0; i < 3; i++ {
		if _, err := dev.WriteAt([]byte("a"), 0); !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("write %d = %v, want ENOSPC", i, err)
		}
	}
	fs.Heal()
	if _, err := dev.WriteAt([]byte("a"), 0); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
}

func TestFaultFSProbabilisticIsDeterministic(t *testing.T) {
	run := func() []int {
		fs := NewFaultFS()
		dev, _ := fs.Open("x")
		fs.SeedProbabilistic(7, map[FaultOp]float64{FaultWrite: 0.5}, FaultSpec{Err: syscall.EIO, Transient: true})
		var failed []int
		for i := 0; i < 40; i++ {
			if _, err := dev.WriteAt([]byte{byte(i)}, int64(i)); err != nil {
				failed = append(failed, i)
			}
		}
		return failed
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 40 {
		t.Fatalf("schedule fired %d/40 times; want a mix", len(a))
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
}

// TestCheckpointENOSPCRecovery is the satellite coverage for a WAL
// checkpoint hitting ENOSPC mid-write: the page files are being
// rewritten in place when the device fills, the store reports the
// error, and reopening the surviving bytes replays the log so no
// committed write is lost.
func TestCheckpointENOSPCRecovery(t *testing.T) {
	fs := NewFaultFS()
	store, f := openStoreFile(t, fs, "data")

	// Commit two pages; the commit lands images in the WAL and applies
	// them in place. Then dirty them again and checkpoint into a full
	// disk partway through the apply.
	for i := 0; i < 2; i++ {
		if _, err := f.Allocate(); err != nil {
			t.Fatalf("allocate: %v", err)
		}
		if err := f.WritePage(PageID(i), fillPage(byte('A'+i))); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	if err := store.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}

	if err := f.WritePage(0, fillPage('X')); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if err := f.WritePage(1, fillPage('Y')); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	// The checkpoint sequence is: append page images to the WAL, commit
	// record + sync, then write the pages in place. Fail the 2nd write
	// after this point — the WAL append succeeds, the in-place apply
	// tears — with half the bytes landing (a torn page at ENOSPC).
	fs.ArmAfter(FaultWrite, 3, FaultSpec{Err: syscall.ENOSPC, KeepBytes: -1})
	err := store.Checkpoint()
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("checkpoint = %v, want ENOSPC", err)
	}

	// The process would now degrade or die; model a restart. Recovery
	// must replay the committed images over the torn page.
	reopened, err := OpenDurableStoreFS(fs)
	if err != nil {
		t.Fatalf("reopen after ENOSPC: %v", err)
	}
	rf, err := reopened.Open("data")
	if err != nil {
		t.Fatalf("reopen data: %v", err)
	}
	buf := make([]byte, PageSize)
	for i, want := range []byte{'X', 'Y'} {
		if err := rf.ReadPage(PageID(i), buf); err != nil {
			t.Fatalf("read page %d after recovery: %v", i, err)
		}
		if !bytes.Equal(buf, fillPage(want)) {
			t.Fatalf("page %d byte[0] = %#x, want %q", i, buf[0], want)
		}
	}
	// And the page files pass a full checksum walk.
	if err := VerifyChecksums(fs, "data"+pageFileSuffix); err != nil {
		t.Fatalf("checksums after recovery: %v", err)
	}
	if err := reopened.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestCheckpointENOSPCEveryPoint sweeps the fault over every write the
// checkpoint makes, reopening after each: wherever the disk fills, a
// committed transaction survives recovery intact.
func TestCheckpointENOSPCEveryPoint(t *testing.T) {
	for point := 0; ; point++ {
		fs := NewFaultFS()
		store, f := openStoreFile(t, fs, "data")
		for i := 0; i < 3; i++ {
			if _, err := f.Allocate(); err != nil {
				t.Fatalf("allocate: %v", err)
			}
			if err := f.WritePage(PageID(i), fillPage(byte('a'+i))); err != nil {
				t.Fatalf("write: %v", err)
			}
		}
		fs.ArmAfter(FaultWrite, point, FaultSpec{Err: syscall.ENOSPC, KeepBytes: -1})
		err := store.Checkpoint()
		if err == nil {
			// The arm never fired: the schedule is longer than the
			// checkpoint. The sweep is done.
			if point == 0 {
				t.Fatal("checkpoint made no writes")
			}
			return
		}
		if !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("point %d: checkpoint = %v, want ENOSPC", point, err)
		}

		reopened, rerr := OpenDurableStoreFS(fs)
		if rerr != nil {
			t.Fatalf("point %d: reopen: %v", point, rerr)
		}
		rf, rerr := reopened.Open("data")
		if rerr != nil {
			t.Fatalf("point %d: reopen data: %v", point, rerr)
		}
		buf := make([]byte, PageSize)
		// The transaction either committed (WAL sync happened before the
		// fault) and must be fully visible, or it did not and the file
		// must be empty — never a mix.
		n := rf.NumPages()
		switch n {
		case 0:
			// Nothing committed; fine.
		case 3:
			for i := 0; i < 3; i++ {
				if err := rf.ReadPage(PageID(i), buf); err != nil {
					t.Fatalf("point %d: read %d: %v", point, i, err)
				}
				if buf[0] != byte('a'+i) {
					t.Fatalf("point %d: page %d = %#x, want %#x", point, i, buf[0], byte('a'+i))
				}
			}
		default:
			t.Fatalf("point %d: %d pages visible, want 0 or 3", point, n)
		}
		if err := reopened.Close(); err != nil {
			t.Fatalf("point %d: close: %v", point, err)
		}
	}
}
