package pagestore

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// This file is the storage surface of the LSM write path (DESIGN.md §13):
// immutable segment serving (a read-only Store view that turns any write
// into an error instead of a silent mutation of a sealed segment) and
// best-effort file removal so flush and compaction can reclaim the space
// of superseded logs and segments.

// ErrReadOnly is returned by write operations on a file served through a
// ReadOnly store view. Segments sealed by the LSM write path are served
// through one, so an accidental write path into a sealed segment fails
// loudly instead of corrupting it.
var ErrReadOnly = errors.New("pagestore: file is read-only")

// ErrRemoveUnsupported is returned by Remove on stores that cannot
// delete files. Callers reclaiming space (the LSM write path) treat
// removal as best-effort and ignore it.
var ErrRemoveUnsupported = errors.New("pagestore: store does not support removal")

// Remover is the optional Store extension for deleting a file outright.
// MemStore and DiskStore implement it; wrappers forward it when their
// inner store does. Removal is a space-reclamation concern only: callers
// must already hold no open references they intend to keep using, and
// must treat failure (including ErrRemoveUnsupported) as non-fatal.
type Remover interface {
	Remove(name string) error
}

// Remove implements Remover: the file is closed and dropped from the
// store. Removing a name that was never opened is a no-op.
func (s *MemStore) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.files[name]; ok {
		f.Close()
		delete(s.files, name)
	}
	return nil
}

// Remove implements Remover: the page file and its WAL sidecar (if any)
// are deleted from the directory. Removing a name that does not exist is
// a no-op.
func (s *DiskStore) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if name == "" || strings.Contains(name, "..") || filepath.IsAbs(name) {
		return fmt.Errorf("pagestore: invalid file name %q", name)
	}
	if f, ok := s.files[name]; ok {
		f.Close()
		delete(s.files, name)
	}
	path := filepath.Join(s.dir, filepath.FromSlash(name)+".pag")
	if err := os.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("pagestore: remove %s: %w", name, err)
	}
	if err := os.Remove(path + walSuffix); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("pagestore: remove %s sidecar: %w", name, err)
	}
	return nil
}

// Remove implements Remover by forwarding to the inner store when it
// supports removal.
func (s prefixStore) Remove(name string) error {
	if r, ok := s.inner.(Remover); ok {
		return r.Remove(s.prefix + "/" + name)
	}
	return ErrRemoveUnsupported
}

// RemoveIfSupported removes name from store when it implements Remover,
// reporting ErrRemoveUnsupported otherwise — the best-effort removal
// helper of the LSM write path.
func RemoveIfSupported(store Store, name string) error {
	if r, ok := store.(Remover); ok {
		return r.Remove(name)
	}
	return ErrRemoveUnsupported
}

// readOnlyStore is a Store view whose files reject writes; see ReadOnly.
type readOnlyStore struct {
	inner Store
}

// ReadOnly returns a view of store in which every opened file serves
// reads normally but fails WritePage and Allocate with ErrReadOnly. The
// LSM write path serves sealed segments through it, making segment
// immutability an enforced property rather than a convention. Closing
// the view is a no-op; close the underlying store.
func ReadOnly(store Store) Store {
	return readOnlyStore{inner: store}
}

// Open implements Store.
func (s readOnlyStore) Open(name string) (File, error) {
	f, err := s.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &readOnlyFile{inner: f, name: name}, nil
}

// Close implements Store: a no-op, because the view does not own the
// underlying store.
func (s readOnlyStore) Close() error { return nil }

// readOnlyFile wraps a File, rejecting mutations.
type readOnlyFile struct {
	inner File
	name  string
}

// ReadPage implements File.
func (f *readOnlyFile) ReadPage(id PageID, buf []byte) error {
	return f.inner.ReadPage(id, buf)
}

// WritePage implements File: always ErrReadOnly.
func (f *readOnlyFile) WritePage(id PageID, buf []byte) error {
	return fmt.Errorf("%w: write page %d of %s", ErrReadOnly, id, f.name)
}

// Allocate implements File: always ErrReadOnly.
func (f *readOnlyFile) Allocate() (PageID, error) {
	return 0, fmt.Errorf("%w: allocate in %s", ErrReadOnly, f.name)
}

// NumPages implements File.
func (f *readOnlyFile) NumPages() int { return f.inner.NumPages() }

// Stats implements File.
func (f *readOnlyFile) Stats() *Stats { return f.inner.Stats() }

// Sync implements File: a read-only view has nothing to flush.
func (f *readOnlyFile) Sync() error { return nil }

// Close implements File: a no-op; the writable owner closes the file.
func (f *readOnlyFile) Close() error { return nil }

var (
	_ Store   = readOnlyStore{}
	_ File    = (*readOnlyFile)(nil)
	_ Remover = (*MemStore)(nil)
	_ Remover = (*DiskStore)(nil)
	_ Remover = prefixStore{}
)
