package crashtest

import (
	"fmt"
	"strings"
	"testing"

	"sigfile/internal/pagestore"
)

// fill returns a page with every byte set to b.
func fill(b byte) []byte {
	p := make([]byte, pagestore.PageSize)
	for i := range p {
		p[i] = b
	}
	return p
}

// TestHarnessRawStore exercises the harness on a bare two-file update:
// the minimal shape of a BSSF insert (several files, several pages, one
// allocation) without the facility on top.
func TestHarnessRawStore(t *testing.T) {
	names := []string{"alpha", "beta"}
	Run(t, Scenario{
		Setup: func(s *pagestore.DurableStore) error {
			for i, name := range names {
				f, err := s.Open(name)
				if err != nil {
					return err
				}
				for p := 0; p < 2; p++ {
					if _, err := f.Allocate(); err != nil {
						return err
					}
					if err := f.WritePage(pagestore.PageID(p), fill(byte(16*i+p))); err != nil {
						return err
					}
				}
			}
			return nil
		},
		Update: func(s *pagestore.DurableStore) error {
			for i, name := range names {
				f, err := s.Open(name)
				if err != nil {
					return err
				}
				if err := f.WritePage(1, fill(byte(0xa0+i))); err != nil {
					return err
				}
			}
			f, err := s.Open(names[0])
			if err != nil {
				return err
			}
			if _, err := f.Allocate(); err != nil {
				return err
			}
			if err := f.WritePage(2, fill(0xee)); err != nil {
				return err
			}
			return s.Commit()
		},
		Fingerprint: func(s *pagestore.DurableStore) (string, error) {
			var sb strings.Builder
			buf := make([]byte, pagestore.PageSize)
			for _, name := range names {
				f, err := s.Open(name)
				if err != nil {
					return "", err
				}
				fmt.Fprintf(&sb, "%s[%d]:", name, f.NumPages())
				for p := 0; p < f.NumPages(); p++ {
					if err := f.ReadPage(pagestore.PageID(p), buf); err != nil {
						return "", err
					}
					fmt.Fprintf(&sb, " %02x", buf[0])
				}
				sb.WriteString("\n")
			}
			return sb.String(), nil
		},
	})
}
