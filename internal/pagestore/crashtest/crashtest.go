// Package crashtest is the crash-consistency harness for the durable
// page stores. A Scenario describes one multi-page update against a
// DurableStore; Run replays it while injecting a crash after every
// prefix of the mutating I/O schedule, reopens the surviving bytes
// (running WAL recovery), and asserts the facility is observed either
// fully pre-update or fully post-update — never a mix — with every page
// checksum intact.
package crashtest

import (
	"strings"
	"testing"

	"sigfile/internal/pagestore"
)

// Scenario is one crash-consistency case.
type Scenario struct {
	// Setup populates a fresh store with the pre-update state. The
	// harness checkpoints after Setup, so its writes are never part of
	// the crash schedule.
	Setup func(s *pagestore.DurableStore) error
	// Update performs the multi-page update under test and must make it
	// durable itself (call s.Commit or s.Checkpoint). During crash runs
	// its error is ignored — the machine is dying under it.
	Update func(s *pagestore.DurableStore) error
	// Fingerprint summarizes the logical state the update must change
	// atomically (e.g. search results, the OID map). It must be
	// deterministic.
	Fingerprint func(s *pagestore.DurableStore) (string, error)
}

// Run executes the scenario: a clean pass to learn the schedule length
// and the post-update fingerprint, then one crashed pass per prefix.
func Run(t *testing.T, sc Scenario) {
	t.Helper()

	// Build the pre-update state on a never-crashing clock.
	fs := pagestore.NewCrashFS(pagestore.NewCrashClock(-1))
	store, err := pagestore.OpenDurableStoreFS(fs)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	if err := sc.Setup(store); err != nil {
		t.Fatalf("setup: %v", err)
	}
	if err := store.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after setup: %v", err)
	}
	pre, err := sc.Fingerprint(store)
	if err != nil {
		t.Fatalf("pre fingerprint: %v", err)
	}
	if err := store.Close(); err != nil {
		t.Fatalf("close after setup: %v", err)
	}
	base := fs.Snapshot()

	// Clean pass: measure the mutating-I/O schedule and the post state.
	clock := pagestore.NewCrashClock(-1)
	fs.SetClock(clock)
	store, err = pagestore.OpenDurableStoreFS(fs)
	if err != nil {
		t.Fatalf("open store for clean run: %v", err)
	}
	if err := sc.Update(store); err != nil {
		t.Fatalf("clean update: %v", err)
	}
	post, err := sc.Fingerprint(store)
	if err != nil {
		t.Fatalf("post fingerprint: %v", err)
	}
	if err := store.Close(); err != nil {
		t.Fatalf("close after clean update: %v", err)
	}
	total := clock.Ops()
	if post == pre {
		t.Fatalf("scenario is vacuous: update did not change the fingerprint %q", pre)
	}
	if total == 0 {
		t.Fatalf("scenario is vacuous: update performed no mutating I/O")
	}

	// Crash pass per prefix: crash point k tears mutating op k+1 and
	// kills everything after it.
	sawPre, sawPost := false, false
	for k := 0; k < total; k++ {
		fs.Restore(base)
		clock := pagestore.NewCrashClock(k)
		fs.SetClock(clock)
		crashed, err := pagestore.OpenDurableStoreFS(fs)
		if err == nil {
			// The machine dies somewhere in here; errors are the
			// simulated crash, and the half-written state on "disk" is
			// what recovery must cope with. Close is part of the
			// schedule so late crash points (mid-checkpoint) expire too.
			_ = sc.Update(crashed)
			_ = crashed.Close()
		}
		if !clock.Crashed() {
			t.Fatalf("crash point %d/%d: schedule ended before the clock expired", k, total)
		}

		// Reboot: reopen the surviving bytes with a healthy clock.
		fs.SetClock(pagestore.NewCrashClock(-1))
		recovered, err := pagestore.OpenDurableStoreFS(fs)
		if err != nil {
			t.Fatalf("crash point %d/%d: recovery failed: %v", k, total, err)
		}
		got, err := sc.Fingerprint(recovered)
		if err != nil {
			t.Fatalf("crash point %d/%d: fingerprint after recovery: %v", k, total, err)
		}
		switch got {
		case pre:
			sawPre = true
		case post:
			sawPost = true
		default:
			t.Fatalf("crash point %d/%d: recovered state is neither pre nor post:\n pre: %q\npost: %q\n got: %q",
				k, total, pre, post, got)
		}
		for _, name := range fs.Names() {
			if !strings.HasSuffix(name, ".pag") {
				continue
			}
			if err := pagestore.VerifyChecksums(fs, name); err != nil {
				t.Fatalf("crash point %d/%d: checksum verification: %v", k, total, err)
			}
		}
		if err := recovered.Close(); err != nil {
			t.Fatalf("crash point %d/%d: close recovered store: %v", k, total, err)
		}
	}
	if !sawPre {
		t.Errorf("no crash point left the store in the pre-update state (schedule length %d)", total)
	}
	if !sawPost {
		t.Errorf("no crash point reached the post-update state (schedule length %d)", total)
	}
}
