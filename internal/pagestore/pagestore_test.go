package pagestore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

// fileFactories enumerates the File implementations under test so every
// conformance test runs against each.
func fileFactories(t *testing.T) map[string]func() File {
	t.Helper()
	var diskN int
	return map[string]func() File{
		"mem": func() File { return NewMemFile() },
		"disk": func() File {
			diskN++
			f, err := OpenDiskFile(filepath.Join(t.TempDir(), fmt.Sprintf("pages%d.pag", diskN)))
			if err != nil {
				t.Fatal(err)
			}
			return f
		},
		"pooled": func() File {
			p, err := NewBufferPool(NewMemFile(), 4)
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
	}
}

func page(fill byte) []byte {
	b := make([]byte, PageSize)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestFileConformance(t *testing.T) {
	for name, mk := range fileFactories(t) {
		t.Run(name, func(t *testing.T) {
			f := mk()
			defer f.Close()

			if f.NumPages() != 0 {
				t.Fatalf("fresh file has %d pages", f.NumPages())
			}
			id0, err := f.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			id1, err := f.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			if id0 != 0 || id1 != 1 || f.NumPages() != 2 {
				t.Fatalf("allocation ids %d,%d numpages %d", id0, id1, f.NumPages())
			}

			// Fresh pages read back zeroed.
			buf := page(0xff)
			if err := f.ReadPage(id0, buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, page(0)) {
				t.Fatal("fresh page is not zeroed")
			}

			// Round trip.
			if err := f.WritePage(id1, page(0xab)); err != nil {
				t.Fatal(err)
			}
			if err := f.ReadPage(id1, buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, page(0xab)) {
				t.Fatal("page contents did not round trip")
			}

			// Out of range.
			if err := f.ReadPage(7, buf); !errors.Is(err, ErrPageOutOfRange) {
				t.Fatalf("read OOR: %v", err)
			}
			if err := f.WritePage(7, buf); !errors.Is(err, ErrPageOutOfRange) {
				t.Fatalf("write OOR: %v", err)
			}

			// Short buffers.
			if err := f.ReadPage(id0, make([]byte, 10)); err == nil {
				t.Fatal("short read buffer accepted")
			}
			if err := f.WritePage(id0, make([]byte, 10)); err == nil {
				t.Fatal("short write buffer accepted")
			}
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMemFileClosed(t *testing.T) {
	f := NewMemFile()
	id, _ := f.Allocate()
	f.Close()
	buf := page(0)
	if err := f.ReadPage(id, buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
	if err := f.WritePage(id, buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
	if _, err := f.Allocate(); !errors.Is(err, ErrClosed) {
		t.Fatalf("alloc after close: %v", err)
	}
}

func TestStatsCounting(t *testing.T) {
	f := NewMemFile()
	id, _ := f.Allocate()
	buf := page(1)
	for i := 0; i < 5; i++ {
		if err := f.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := f.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	r, w, a := f.Stats().Snapshot()
	if r != 3 || w != 5 || a != 1 {
		t.Fatalf("stats r=%d w=%d a=%d, want 3,5,1", r, w, a)
	}
	if f.Stats().Accesses() != 8 {
		t.Fatalf("Accesses = %d, want 8", f.Stats().Accesses())
	}
	f.Stats().Reset()
	if f.Stats().Accesses() != 0 {
		t.Fatal("Reset did not zero counters")
	}
}

func TestStatsAdd(t *testing.T) {
	var a, b Stats
	a.reads.Store(2)
	b.reads.Store(3)
	b.writes.Store(4)
	a.Add(&b)
	if a.Reads() != 5 || a.Writes() != 4 {
		t.Fatalf("Add: %s", a.String())
	}
}

func TestDiskFilePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.pag")
	f, err := OpenDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := f.Allocate()
	if err := f.WritePage(id, page(0x5a)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen and verify the page survived.
	f2, err := OpenDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.NumPages() != 1 {
		t.Fatalf("reopened NumPages = %d, want 1", f2.NumPages())
	}
	buf := page(0)
	if err := f2.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, page(0x5a)) {
		t.Fatal("page contents lost across reopen")
	}
}

func TestDiskFileTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.pag")
	f, err := OpenDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := f.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.WritePage(1, page(0x77)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate an append torn by a crash: a partial frame at the tail.
	osf, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := osf.Write(make([]byte, diskFrameSize/3)); err != nil {
		t.Fatal(err)
	}
	if err := osf.Close(); err != nil {
		t.Fatal(err)
	}

	f2, err := OpenDiskFile(path)
	if err != nil {
		t.Fatalf("OpenDiskFile rejected torn tail: %v", err)
	}
	defer f2.Close()
	if f2.NumPages() != 2 {
		t.Fatalf("NumPages = %d after torn-tail truncation, want 2", f2.NumPages())
	}
	buf := make([]byte, PageSize)
	if err := f2.ReadPage(1, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, page(0x77)) {
		t.Fatal("surviving page corrupted by torn-tail truncation")
	}
}

func TestBufferPoolHitAccounting(t *testing.T) {
	inner := NewMemFile()
	pool, err := NewBufferPool(inner, 2)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]PageID, 3)
	for i := range ids {
		ids[i], _ = pool.Allocate()
	}
	buf := page(0)
	// First touch of each page is a miss; re-reading a cached page is a hit.
	if err := pool.ReadPage(ids[0], buf); err != nil {
		t.Fatal(err)
	}
	if err := pool.ReadPage(ids[0], buf); err != nil {
		t.Fatal(err)
	}
	if pool.Hits() != 1 || pool.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1,1", pool.Hits(), pool.Misses())
	}
	// Physical reads: only the miss.
	if inner.Stats().Reads() != 1 {
		t.Fatalf("physical reads = %d, want 1", inner.Stats().Reads())
	}
	// Fill past capacity to force eviction of ids[0], then re-read it: miss.
	pool.ReadPage(ids[1], buf)
	pool.ReadPage(ids[2], buf)
	pool.ReadPage(ids[0], buf)
	if pool.Misses() != 4 {
		t.Fatalf("misses = %d, want 4 after eviction", pool.Misses())
	}
}

func TestBufferPoolWriteBack(t *testing.T) {
	inner := NewMemFile()
	pool, err := NewBufferPool(inner, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := pool.Allocate()
	b, _ := pool.Allocate()
	if err := pool.WritePage(a, page(0x11)); err != nil {
		t.Fatal(err)
	}
	// Writing b evicts a, which must be written back to inner.
	if err := pool.WritePage(b, page(0x22)); err != nil {
		t.Fatal(err)
	}
	buf := page(0)
	if err := inner.ReadPage(a, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, page(0x11)) {
		t.Fatal("evicted dirty page not written back")
	}
	// b is still only in the cache.
	inner.ReadPage(b, buf)
	if bytes.Equal(buf, page(0x22)) {
		t.Fatal("dirty page reached inner before eviction or sync")
	}
	if err := pool.Sync(); err != nil {
		t.Fatal(err)
	}
	inner.ReadPage(b, buf)
	if !bytes.Equal(buf, page(0x22)) {
		t.Fatal("Sync did not flush dirty page")
	}
}

func TestBufferPoolInvalidCapacity(t *testing.T) {
	if _, err := NewBufferPool(NewMemFile(), 0); err == nil {
		t.Fatal("capacity 0 accepted")
	}
}

func TestMemStoreSharing(t *testing.T) {
	s := NewMemStore()
	a, err := s.Open("slices/0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Open("slices/0")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Open returned distinct files for the same name")
	}
	c, _ := s.Open("slices/1")
	if a == c {
		t.Fatal("distinct names share a file")
	}
	s.Close()
}

func TestDiskStore(t *testing.T) {
	s, err := NewDiskStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	f, err := s.Open("oid")
	if err != nil {
		t.Fatal(err)
	}
	id, _ := f.Allocate()
	if err := f.WritePage(id, page(9)); err != nil {
		t.Fatal(err)
	}
	again, _ := s.Open("oid")
	if again != f {
		t.Fatal("DiskStore.Open not idempotent")
	}
}

func TestFaultFile(t *testing.T) {
	inner := NewMemFile()
	ff := NewFaultFile(inner)
	id, _ := ff.Allocate()
	buf := page(0)

	ff.FailReadAfter(1)
	if err := ff.ReadPage(id, buf); err != nil {
		t.Fatalf("read 0 should pass: %v", err)
	}
	if err := ff.ReadPage(id, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("read 1 should fail: %v", err)
	}
	if err := ff.ReadPage(id, buf); err != nil {
		t.Fatalf("fault should disarm after firing: %v", err)
	}

	ff.FailWriteAfter(0)
	if err := ff.WritePage(id, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("write should fail: %v", err)
	}
	ff.FailAllocAfter(0)
	if _, err := ff.Allocate(); !errors.Is(err, ErrInjected) {
		t.Fatalf("alloc should fail: %v", err)
	}
}

func TestFaultStore(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	f, err := fs.Open("x")
	if err != nil {
		t.Fatal(err)
	}
	if fs.File("x") == nil {
		t.Fatal("File did not return opened wrapper")
	}
	if fs.File("missing") != nil {
		t.Fatal("File invented a wrapper")
	}
	again, _ := fs.Open("x")
	if f != again {
		t.Fatal("FaultStore.Open not idempotent")
	}
}

// Property: a random sequence of writes followed by reads behaves like a
// map from page id to last written content, on every implementation.
func TestPropertyFileActsLikeMap(t *testing.T) {
	for name, mk := range fileFactories(t) {
		t.Run(name, func(t *testing.T) {
			check := func(seed int64) bool {
				f := mk()
				defer f.Close()
				rng := rand.New(rand.NewSource(seed))
				model := make(map[PageID]byte)
				for i := 0; i < 50; i++ {
					switch rng.Intn(3) {
					case 0:
						id, err := f.Allocate()
						if err != nil {
							return false
						}
						model[id] = 0
					case 1:
						if len(model) == 0 {
							continue
						}
						id := PageID(rng.Intn(f.NumPages()))
						fill := byte(rng.Intn(256))
						if err := f.WritePage(id, page(fill)); err != nil {
							return false
						}
						model[id] = fill
					case 2:
						if len(model) == 0 {
							continue
						}
						id := PageID(rng.Intn(f.NumPages()))
						buf := page(0xee)
						if err := f.ReadPage(id, buf); err != nil {
							return false
						}
						if !bytes.Equal(buf, page(model[id])) {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func TestPrefixedStore(t *testing.T) {
	inner := NewMemStore()
	a := Prefixed(inner, "idx1")
	b := Prefixed(inner, "idx2")
	fa, err := a.Open("oid")
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.Open("oid")
	if err != nil {
		t.Fatal(err)
	}
	if fa == fb {
		t.Fatal("prefixed stores share a file for the same inner name")
	}
	// The view maps onto namespaced names in the inner store.
	direct, _ := inner.Open("idx1/oid")
	if direct != fa {
		t.Fatal("prefix mapping wrong")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Closing the view must not close the inner store's files.
	if _, err := fa.Allocate(); err != nil {
		t.Fatalf("inner file closed by view: %v", err)
	}
}

func TestDiskStoreNameValidation(t *testing.T) {
	s, err := NewDiskStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, bad := range []string{"", "../escape", "a/../../b", "/abs"} {
		if _, err := s.Open(bad); err == nil {
			t.Errorf("Open(%q) accepted", bad)
		}
	}
	// Nested names create subdirectories.
	f, err := s.Open("objects/Student")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Allocate(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(s.dir, "objects", "Student.pag")); err != nil {
		t.Fatalf("nested file not created: %v", err)
	}
}
