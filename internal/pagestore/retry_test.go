package pagestore

import (
	"context"
	"errors"
	"io"
	"syscall"
	"testing"
	"time"
)

// noSleep is the test policy: generous budget, no real waiting.
func noSleep(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, Sleep: func(time.Duration) {}}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want ErrorClass
	}{
		{nil, ClassNone},
		{context.Canceled, ClassNone},
		{context.DeadlineExceeded, ClassNone},
		{errors.New("opaque"), ClassNone},
		{ErrInjected, ClassNone},
		{syscall.EIO, ClassTransient},
		{syscall.EINTR, ClassTransient},
		{io.ErrShortWrite, ClassTransient},
		{MarkTransient(errors.New("opaque")), ClassTransient},
		{MarkTransient(syscall.ENOSPC), ClassTransient}, // explicit marker wins
		{syscall.ENOSPC, ClassTerminal},
		{syscall.EROFS, ClassTerminal},
		{ErrClosed, ClassTerminal},
		{ErrCrashed, ClassTerminal},
		{ErrChecksum, ClassCorrupt},
		{ErrQuarantined, ClassCorrupt},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	// The exhausted wrapper classifies terminal even around a transient
	// cause: the budget is gone.
	err := retryLoop(nil, nil, noSleep(2).withDefaults(), nil, func() error {
		return MarkTransient(syscall.EIO)
	})
	if !errors.Is(err, ErrRetryExhausted) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("exhausted error = %v, want ErrRetryExhausted wrapping EIO", err)
	}
	if Classify(err) != ClassTerminal {
		t.Fatalf("Classify(exhausted) = %v, want terminal", Classify(err))
	}
}

func TestRetryFileAbsorbsTransientFaults(t *testing.T) {
	mem := NewMemFile()
	fault := NewFaultFile(mem)
	f := NewRetryFile(fault, noSleep(4))
	id, err := f.Allocate()
	if err != nil {
		t.Fatalf("allocate: %v", err)
	}
	page := make([]byte, PageSize)
	page[0] = 0xAB
	if err := f.WritePage(id, page); err != nil {
		t.Fatalf("write: %v", err)
	}

	// A store-level transient schedule that fails every read would
	// exhaust the budget; fail just the next one via a wrapper instead.
	var calls int
	flaky := &opWrapper{File: mem, beforeRead: func() error {
		calls++
		if calls <= 2 {
			return MarkTransient(syscall.EIO)
		}
		return nil
	}}
	rf := NewRetryFile(flaky, noSleep(4))
	got := make([]byte, PageSize)
	if err := rf.ReadPage(id, got); err != nil {
		t.Fatalf("read through transient faults: %v", err)
	}
	if got[0] != 0xAB {
		t.Fatalf("read returned wrong data: %#x", got[0])
	}
	if calls != 3 {
		t.Fatalf("read attempted %d times, want 3", calls)
	}
}

func TestRetryFileDoesNotRetryTerminal(t *testing.T) {
	var calls int
	f := NewRetryFile(&opWrapper{File: NewMemFile(), beforeWrite: func() error {
		calls++
		return syscall.ENOSPC
	}}, noSleep(5))
	id, err := f.Allocate()
	if err != nil {
		t.Fatalf("allocate: %v", err)
	}
	err = f.WritePage(id, make([]byte, PageSize))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write = %v, want ENOSPC", err)
	}
	if calls != 1 {
		t.Fatalf("terminal write attempted %d times, want 1", calls)
	}
}

func TestRetryFileExhaustsBudget(t *testing.T) {
	var calls int
	f := NewRetryFile(&opWrapper{File: NewMemFile(), beforeRead: func() error {
		calls++
		return MarkTransient(syscall.EIO)
	}}, noSleep(3))
	if _, err := f.Allocate(); err != nil {
		t.Fatalf("allocate: %v", err)
	}
	err := f.ReadPage(0, make([]byte, PageSize))
	if !errors.Is(err, ErrRetryExhausted) {
		t.Fatalf("read = %v, want ErrRetryExhausted", err)
	}
	if calls != 3 {
		t.Fatalf("read attempted %d times, want 3", calls)
	}
}

func TestRetryDoHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls int
	err := Do(ctx, RetryPolicy{MaxAttempts: 100, BaseDelay: time.Hour, MaxDelay: time.Hour}, func() error {
		calls++
		cancel() // cancel while the loop would back off for an hour
		return MarkTransient(syscall.EIO)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("op ran %d times, want 1", calls)
	}
}

func TestRetryFileCloseAbortsBackoff(t *testing.T) {
	f := NewRetryFile(&opWrapper{File: NewMemFile(), beforeRead: func() error {
		return MarkTransient(syscall.EIO)
	}}, RetryPolicy{MaxAttempts: 100, BaseDelay: time.Hour, MaxDelay: time.Hour})
	if _, err := f.Allocate(); err != nil {
		t.Fatalf("allocate: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- f.ReadPage(0, make([]byte, PageSize)) }()
	time.Sleep(10 * time.Millisecond) // let the read enter backoff
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, syscall.EIO) {
			t.Fatalf("aborted read = %v, want wrapped EIO", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read did not abort after Close")
	}
}

func TestRetryStoreOverFaultStoreTransientSchedule(t *testing.T) {
	faults := NewFaultStore(NewMemStore())
	faults.SeedTransient(42, TransientFaults{PRead: 0.3, PWrite: 0.3, PAlloc: 0.3})
	store := NewRetryStore(faults, noSleep(25))
	f, err := store.Open("x")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	page := make([]byte, PageSize)
	for i := 0; i < 50; i++ {
		id, err := f.Allocate()
		if err != nil {
			t.Fatalf("allocate %d: %v", i, err)
		}
		page[0] = byte(i)
		if err := f.WritePage(id, page); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := 0; i < 50; i++ {
		if err := f.ReadPage(PageID(i), page); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if page[0] != byte(i) {
			t.Fatalf("page %d holds %#x, want %#x", i, page[0], byte(i))
		}
	}
}

func TestFaultStorePersistentWrites(t *testing.T) {
	faults := NewFaultStore(NewMemStore())
	f, err := faults.Open("x")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.Allocate(); err != nil {
		t.Fatalf("allocate: %v", err)
	}
	faults.FailWritesWith(syscall.ENOSPC)
	werr := f.WritePage(0, make([]byte, PageSize))
	if !errors.Is(werr, syscall.ENOSPC) || !errors.Is(werr, ErrInjected) {
		t.Fatalf("write = %v, want injected ENOSPC", werr)
	}
	if Classify(werr) != ClassTerminal {
		t.Fatalf("Classify = %v, want terminal", Classify(werr))
	}
	// Reads keep working: the model is a full disk, not a dead one.
	if err := f.ReadPage(0, make([]byte, PageSize)); err != nil {
		t.Fatalf("read under write fault: %v", err)
	}
	faults.Heal()
	if err := f.WritePage(0, make([]byte, PageSize)); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
}

// opWrapper decorates a File with per-op hooks, for retry tests needing
// exact failure counts.
type opWrapper struct {
	File
	beforeRead  func() error
	beforeWrite func() error
}

func (w *opWrapper) ReadPage(id PageID, buf []byte) error {
	if w.beforeRead != nil {
		if err := w.beforeRead(); err != nil {
			return err
		}
	}
	return w.File.ReadPage(id, buf)
}

func (w *opWrapper) WritePage(id PageID, buf []byte) error {
	if w.beforeWrite != nil {
		if err := w.beforeWrite(); err != nil {
			return err
		}
	}
	return w.File.WritePage(id, buf)
}
