package pagestore

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// corruptPage flips a data byte of page id inside the named page file.
func corruptPage(t *testing.T, fs *FaultFS, name string, id PageID) {
	t.Helper()
	off := int64(id)*diskFrameSize + 17 // somewhere inside the data bytes
	if err := fs.Corrupt(name+pageFileSuffix, off, 0x40); err != nil {
		t.Fatalf("corrupt page %d: %v", id, err)
	}
}

func TestReadRepairsCorruptPageFromWAL(t *testing.T) {
	fs := NewFaultFS()
	store, f := openStoreFile(t, fs, "data")
	if _, err := f.Allocate(); err != nil {
		t.Fatalf("allocate: %v", err)
	}
	want := fillPage(0x5A)
	if err := f.WritePage(0, want); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := store.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	// The commit applied the page in place and the WAL still holds its
	// image (no checkpoint). Rot a byte at rest.
	corruptPage(t, fs, "data", 0)
	got := make([]byte, PageSize)
	if err := f.ReadPage(0, got); err != nil {
		t.Fatalf("read of corrupt page did not self-repair: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("repaired read returned wrong data")
	}
	if q := store.Quarantined(); len(q) != 0 {
		t.Fatalf("quarantined = %v, want none after repair", q)
	}
	// The disk itself is fixed, not just the served copy.
	if err := VerifyChecksums(fs, "data"+pageFileSuffix); err != nil {
		t.Fatalf("disk still corrupt after repair: %v", err)
	}
}

func TestCorruptPageQuarantinedWhenLogEmpty(t *testing.T) {
	fs := NewFaultFS()
	store, f := openStoreFile(t, fs, "data")
	if _, err := f.Allocate(); err != nil {
		t.Fatalf("allocate: %v", err)
	}
	if err := f.WritePage(0, fillPage(0x5A)); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Checkpoint truncates the WAL: no committed image survives to
	// repair from.
	if err := store.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	corruptPage(t, fs, "data", 0)
	buf := make([]byte, PageSize)
	err := f.ReadPage(0, buf)
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("read = %v, want ErrQuarantined", err)
	}
	if Classify(err) != ClassCorrupt {
		t.Fatalf("Classify = %v, want corrupt", Classify(err))
	}
	// Repeated reads keep failing fast — corrupt bytes are never served.
	if err := f.ReadPage(0, buf); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("second read = %v, want ErrQuarantined", err)
	}
	if q := store.Quarantined(); len(q["data"]) != 1 || q["data"][0] != 0 {
		t.Fatalf("quarantined = %v, want data page 0", q)
	}

	// A committed write replaces the page and releases the quarantine.
	want := fillPage(0x77)
	if err := f.WritePage(0, want); err != nil {
		t.Fatalf("rewrite quarantined page: %v", err)
	}
	if err := store.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if err := f.ReadPage(0, buf); err != nil {
		t.Fatalf("read after rewrite: %v", err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("read after rewrite returned wrong data")
	}
	if q := store.Quarantined(); len(q) != 0 {
		t.Fatalf("quarantined = %v, want none after rewrite", q)
	}
}

func TestScrubRepairsAndQuarantines(t *testing.T) {
	fs := NewFaultFS()
	store, f := openStoreFile(t, fs, "data")
	for i := 0; i < 4; i++ {
		if _, err := f.Allocate(); err != nil {
			t.Fatalf("allocate: %v", err)
		}
		if err := f.WritePage(PageID(i), fillPage(byte(i+1))); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	if err := store.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	// Pages 1 and 3 rot while their WAL images survive: repairable.
	corruptPage(t, fs, "data", 1)
	corruptPage(t, fs, "data", 3)
	rep, err := store.Scrub(context.Background())
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if rep.Files != 1 || rep.Pages != 4 || rep.Corrupt != 2 || rep.Repaired != 2 || rep.Quarantined != 0 {
		t.Fatalf("report = %+v, want 4 pages / 2 corrupt / 2 repaired", rep)
	}

	// After a checkpoint the log is empty; rot is unrepairable and the
	// scrub fences it off.
	if err := store.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	corruptPage(t, fs, "data", 2)
	rep, err = store.Scrub(context.Background())
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if rep.Corrupt != 1 || rep.Repaired != 0 || rep.Quarantined != 1 {
		t.Fatalf("report = %+v, want 1 corrupt / 1 quarantined", rep)
	}
	buf := make([]byte, PageSize)
	if err := f.ReadPage(2, buf); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("read of quarantined page = %v, want ErrQuarantined", err)
	}

	// Undo the rot (XOR with the same mask restores the byte): the next
	// pass finds the page healthy and releases it.
	corruptPage(t, fs, "data", 2)
	rep, err = store.Scrub(context.Background())
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if rep.Corrupt != 0 || rep.Cleared != 1 {
		t.Fatalf("report = %+v, want 1 cleared", rep)
	}
	if err := f.ReadPage(2, buf); err != nil {
		t.Fatalf("read after clear: %v", err)
	}
}

func TestScrubHonorsContext(t *testing.T) {
	fs := NewFaultFS()
	store, f := openStoreFile(t, fs, "data")
	if _, err := f.Allocate(); err != nil {
		t.Fatalf("allocate: %v", err)
	}
	if err := store.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := store.Scrub(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("scrub = %v, want context.Canceled", err)
	}
}

func TestStartScrubberRepairsInBackground(t *testing.T) {
	fs := NewFaultFS()
	store, f := openStoreFile(t, fs, "data")
	if _, err := f.Allocate(); err != nil {
		t.Fatalf("allocate: %v", err)
	}
	want := fillPage(0x33)
	if err := f.WritePage(0, want); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := store.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	corruptPage(t, fs, "data", 0)

	reports := make(chan ScrubReport, 16)
	stop := store.StartScrubber(time.Millisecond, func(rep ScrubReport, err error) {
		if err == nil {
			reports <- rep
		}
	})
	defer stop()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case rep := <-reports:
			if rep.Repaired >= 1 {
				stop()
				if err := VerifyChecksums(fs, "data"+pageFileSuffix); err != nil {
					t.Fatalf("disk corrupt after background repair: %v", err)
				}
				return
			}
		case <-deadline:
			t.Fatal("scrubber never repaired the page")
		}
	}
}

// TestScrubSoak drives seeded random corruption against stores with and
// without checkpoints, asserting the core promise: a read never returns
// wrong bytes — every page is served correct or refused.
func TestScrubSoak(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 10
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		fs := NewFaultFS()
		store, f := openStoreFile(t, fs, "data")
		const npages = 8
		want := make(map[PageID][]byte)
		for i := 0; i < npages; i++ {
			if _, err := f.Allocate(); err != nil {
				t.Fatalf("seed %d: allocate: %v", seed, err)
			}
			img := fillPage(byte(rng.Intn(256)))
			want[PageID(i)] = img
			if err := f.WritePage(PageID(i), img); err != nil {
				t.Fatalf("seed %d: write: %v", seed, err)
			}
		}
		if err := store.Commit(); err != nil {
			t.Fatalf("seed %d: commit: %v", seed, err)
		}
		checkpointed := rng.Intn(2) == 0
		if checkpointed {
			if err := store.Checkpoint(); err != nil {
				t.Fatalf("seed %d: checkpoint: %v", seed, err)
			}
		}
		corrupted := make(map[PageID]bool)
		for i := 0; i < 3; i++ {
			id := PageID(rng.Intn(npages))
			corrupted[id] = true
			off := int64(id)*diskFrameSize + int64(rng.Intn(PageSize))
			if err := fs.Corrupt("data"+pageFileSuffix, off, byte(1+rng.Intn(255))); err != nil {
				t.Fatalf("seed %d: corrupt: %v", seed, err)
			}
		}
		if rng.Intn(2) == 0 {
			if _, err := store.Scrub(context.Background()); err != nil {
				t.Fatalf("seed %d: scrub: %v", seed, err)
			}
		}
		buf := make([]byte, PageSize)
		for i := 0; i < npages; i++ {
			id := PageID(i)
			err := f.ReadPage(id, buf)
			switch {
			case err == nil:
				if !bytes.Equal(buf, want[id]) {
					t.Fatalf("seed %d: page %d served wrong bytes", seed, id)
				}
			case errors.Is(err, ErrQuarantined):
				if !checkpointed || !corrupted[id] {
					t.Fatalf("seed %d: page %d quarantined unexpectedly (checkpointed=%v corrupted=%v)",
						seed, id, checkpointed, corrupted[id])
				}
			default:
				t.Fatalf("seed %d: page %d read = %v", seed, id, err)
			}
		}
		if err := store.Close(); err != nil {
			t.Fatalf("seed %d: close: %v", seed, err)
		}
	}
}
