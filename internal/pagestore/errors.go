// Error classification for the resilience layer.
//
// The paper's storage model is binary — a page access works or the run is
// over — but a long-running sigfiled server sees a third regime: faults
// that are worth retrying (a controller hiccup returning EIO, a short
// write under memory pressure), faults that will not go away on their own
// (the disk is full, the file system went read-only), and data that came
// back wrong (a CRC mismatch). Classify sorts an error into one of those
// three classes so every layer — RetryFile's backoff loop, DurableFile's
// quarantine, core's facility health machine — makes the same call.
package pagestore

import (
	"context"
	"errors"
	"fmt"
	"io"
	"syscall"
)

// ErrorClass partitions storage errors by the correct reaction to them.
type ErrorClass int

const (
	// ClassNone is the class of nil and of errors that are not storage
	// faults at all (context cancellation, invalid arguments). Retrying
	// is pointless and degrading a facility over one would be wrong.
	ClassNone ErrorClass = iota
	// ClassTransient faults may succeed if retried: EIO, EINTR, EAGAIN,
	// ETIMEDOUT, short writes, and anything marked with ErrTransient.
	ClassTransient
	// ClassTerminal faults will keep failing: ENOSPC, EROFS, closed or
	// crashed devices, exhausted retries. The caller should stop writing
	// and degrade.
	ClassTerminal
	// ClassCorrupt means bytes came back but failed verification:
	// checksum mismatches and quarantined pages. Repair, not retry.
	ClassCorrupt
)

// String returns the class name for logs and test failures.
func (c ErrorClass) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassTransient:
		return "transient"
	case ClassTerminal:
		return "terminal"
	case ClassCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("ErrorClass(%d)", int(c))
}

// ErrTransient marks an error as worth retrying. Fault injectors wrap
// their scheduled errors with MarkTransient; real device errors are
// classified by errno instead.
var ErrTransient = errors.New("pagestore: transient fault")

// ErrRetryExhausted wraps the final error after a RetryFile used up its
// attempt budget. It classifies as terminal: the fault outlived every
// retry the policy allowed, so callers must treat it as persistent.
var ErrRetryExhausted = errors.New("pagestore: retries exhausted")

// ErrQuarantined is returned when a page's on-disk image failed its
// checksum and no committed image survives in the WAL to repair it from.
// The page stays fenced off — served reads would be garbage — until a
// write replaces it or a scrub finds it healthy again.
var ErrQuarantined = errors.New("pagestore: page quarantined")

// MarkTransient wraps err so Classify reports it transient while
// errors.Is still matches the original. A nil err stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrTransient, err)
}

// transientErrnos are device errors that historically clear on retry.
var transientErrnos = []syscall.Errno{
	syscall.EIO, syscall.EINTR, syscall.EAGAIN, syscall.ETIMEDOUT, syscall.EBUSY,
}

// terminalErrnos are device errors no retry will fix.
var terminalErrnos = []syscall.Errno{
	syscall.ENOSPC, syscall.EROFS, syscall.EDQUOT, syscall.EBADF, syscall.ENODEV,
}

// Classify sorts err into an ErrorClass. Explicit markers win over errno
// inspection; context errors and unrecognized errors classify as
// ClassNone so callers neither retry nor degrade over them.
func Classify(err error) ErrorClass {
	if err == nil {
		return ClassNone
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return ClassNone
	}
	if errors.Is(err, ErrChecksum) || errors.Is(err, ErrQuarantined) {
		return ClassCorrupt
	}
	if errors.Is(err, ErrRetryExhausted) || errors.Is(err, ErrClosed) || errors.Is(err, ErrCrashed) ||
		errors.Is(err, ErrReadOnly) {
		return ClassTerminal
	}
	if errors.Is(err, ErrTransient) || errors.Is(err, io.ErrShortWrite) {
		return ClassTransient
	}
	for _, e := range terminalErrnos {
		if errors.Is(err, e) {
			return ClassTerminal
		}
	}
	for _, e := range transientErrnos {
		if errors.Is(err, e) {
			return ClassTransient
		}
	}
	// Deliberately ClassNone, spelled out so the table is total over the
	// package's sentinels:
	//   - ErrPageOutOfRange and ErrRemoveUnsupported are caller mistakes
	//     and capability signals, not device faults — retrying cannot
	//     help and degrading a facility over them would be wrong.
	//   - ErrInjected carries its verdict in what it wraps: transient
	//     schedules mark it (matched above via ErrTransient), persistent
	//     schedules wrap a real errno (matched by the errno loops). A
	//     bare ErrInjected — the one-shot trip counters tests arm — is
	//     an unclassified test fault on purpose.
	if errors.Is(err, ErrPageOutOfRange) || errors.Is(err, ErrRemoveUnsupported) ||
		errors.Is(err, ErrInjected) {
		return ClassNone
	}
	return ClassNone
}

// Retryable reports whether err is worth retrying.
func Retryable(err error) bool { return Classify(err) == ClassTransient }
