package pagestore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"sigfile/internal/obs"
)

// Corruption metrics: pages fenced off after an unrepairable checksum
// mismatch, and pages rewritten from the log's last committed image.
var (
	obsQuarantined = obs.Default().Counter("sigfile_pagestore_quarantined_total")
	obsRepaired    = obs.Default().Counter("sigfile_pagestore_repaired_total")
)

// Committer is implemented by the durable files and stores: their writes
// accumulate in a write-ahead log transaction until Commit makes them
// durable and atomic. Layers above (oodb.Database, cmd/sigdb) detect the
// interface to expose save points without depending on the concrete
// store.
type Committer interface {
	// Commit appends the pending page writes to the WAL, fsyncs it, and
	// applies them in place. After Commit returns, the batch survives a
	// crash; if the process dies before, recovery restores the previous
	// committed state — never a mix.
	Commit() error
	// Checkpoint commits pending writes, fsyncs the page files, and
	// truncates the WAL.
	Checkpoint() error
}

// DurableFile is a crash-safe page file: a DiskFile plus a sidecar
// write-ahead log (path + ".wal"). WritePage and Allocate buffer in
// memory; Commit writes the batch to the log, fsyncs, and applies it in
// place. Opening the file replays any committed log records a crash left
// behind (see OpenDiskFile), so a multi-page update is always observed
// fully applied or not at all.
type DurableFile struct {
	mu    sync.RWMutex
	inner *DiskFile
	tag   string
	// Exactly one of wal (standalone file) and store (member of a
	// DurableStore sharing its log) is non-nil.
	wal     *wal
	store   *DurableStore
	pending map[PageID][]byte
	// quarantined fences off pages whose on-disk image failed its
	// checksum and could not be repaired from the log. Reads return
	// ErrQuarantined instead of garbage; a committed write or a scrub
	// pass that finds the page healthy releases it.
	quarantined map[PageID]struct{}
	npages      int
	closed      bool
	stats       Stats
}

// OpenDurableFile opens (creating if necessary) a crash-safe page file
// at path with its WAL at path + ".wal", recovering any committed but
// unapplied writes first.
func OpenDurableFile(path string) (*DurableFile, error) {
	inner, err := OpenDiskFile(path) // replays the sidecar if present
	if err != nil {
		return nil, err
	}
	wf, err := os.OpenFile(path+walSuffix, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		inner.Close()
		return nil, fmt.Errorf("pagestore: open wal %s: %w", path+walSuffix, err)
	}
	w, err := openWAL(osBlockFile{wf}, path+walSuffix)
	if err != nil {
		inner.Close()
		wf.Close()
		return nil, err
	}
	return &DurableFile{inner: inner, wal: w, pending: make(map[PageID][]byte), npages: inner.NumPages()}, nil
}

// recoverSidecar replays the committed records of path's WAL sidecar
// into d and truncates the log.
func recoverSidecar(path string, d *DiskFile) error {
	wf, err := os.OpenFile(path+walSuffix, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("pagestore: open wal %s: %w", path+walSuffix, err)
	}
	defer wf.Close()
	w, err := openWAL(osBlockFile{wf}, path+walSuffix)
	if err != nil {
		return err
	}
	return w.replayInto(func(string) (*DiskFile, error) { return d, nil })
}

// newStoreFile wraps inner as a member of store.
func newStoreFile(inner *DiskFile, tag string, store *DurableStore) *DurableFile {
	return &DurableFile{inner: inner, tag: tag, store: store,
		pending: make(map[PageID][]byte), npages: inner.NumPages()}
}

// ReadPage implements File, serving pending writes from the overlay so a
// transaction reads its own uncommitted data. A checksum mismatch from
// the disk triggers a repair attempt from the log's last committed image
// of the page; if no image survives (the log was truncated at a
// checkpoint) the page is quarantined and the read fails with
// ErrQuarantined rather than ever returning corrupt bytes.
func (f *DurableFile) ReadPage(id PageID, buf []byte) error {
	if len(buf) < PageSize {
		return fmt.Errorf("pagestore: read buffer %d bytes, need %d", len(buf), PageSize)
	}
	err := f.readPageOnce(id, buf)
	if err == nil || !errors.Is(err, ErrChecksum) {
		return err
	}
	if rerr := f.repair(id); rerr != nil {
		return rerr
	}
	return f.readPageOnce(id, buf)
}

// readPageOnce is one read attempt through the overlay and the disk,
// without the repair path.
func (f *DurableFile) readPageOnce(id PageID, buf []byte) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return ErrClosed
	}
	if int(id) >= f.npages {
		return fmt.Errorf("%w: read page %d of %d", ErrPageOutOfRange, id, f.npages)
	}
	if img, ok := f.pending[id]; ok {
		// The overlay wins even over a quarantined page: the transaction
		// reads its own write, and its commit will repair the disk.
		copy(buf[:PageSize], img)
		f.stats.countRead()
		return nil
	}
	if _, bad := f.quarantined[id]; bad {
		return fmt.Errorf("pagestore: %s page %d: %w", f.label(), id, ErrQuarantined)
	}
	if int(id) >= f.inner.NumPages() {
		// Allocated in this transaction, never written: all zero.
		for i := range buf[:PageSize] {
			buf[i] = 0
		}
		f.stats.countRead()
		return nil
	}
	if err := f.inner.ReadPage(id, buf); err != nil {
		return fmt.Errorf("pagestore: %s page %d: %w", f.label(), id, err)
	}
	f.stats.countRead()
	return nil
}

// label names the file in errors: its store tag, or "durable file" for a
// standalone file (whose WAL tag is the empty string).
func (f *DurableFile) label() string {
	if f.tag != "" {
		return f.tag
	}
	return "durable file"
}

// repair rewrites page id from the log's last committed image,
// quarantining the page when none survives. Store members route through
// the store so the shared log is accessed under the commit path's
// store→file lock order.
func (f *DurableFile) repair(id PageID) error {
	if f.store != nil {
		return f.store.repairPage(f, id)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.repairLocked(f.wal, id)
}

// repairLocked is the repair step itself. Caller holds f.mu (and, for a
// store member, the store mutex owning w).
func (f *DurableFile) repairLocked(w *wal, id PageID) error {
	img, err := w.latestImage(f.tag, id)
	if err != nil {
		return fmt.Errorf("pagestore: repair %s page %d: %w", f.label(), id, err)
	}
	if img == nil {
		f.quarantineLocked(id)
		return fmt.Errorf("pagestore: %s page %d: no committed image in log: %w", f.label(), id, ErrQuarantined)
	}
	if werr := f.inner.WritePage(id, img); werr != nil {
		f.quarantineLocked(id)
		return fmt.Errorf("pagestore: repair %s page %d: %w: %w", f.label(), id, ErrQuarantined, werr)
	}
	if _, ok := f.quarantined[id]; ok {
		delete(f.quarantined, id)
	}
	obsRepaired.Inc()
	return nil
}

// quarantineLocked fences off page id. Caller holds f.mu.
func (f *DurableFile) quarantineLocked(id PageID) {
	if f.quarantined == nil {
		f.quarantined = make(map[PageID]struct{})
	}
	if _, ok := f.quarantined[id]; !ok {
		f.quarantined[id] = struct{}{}
		obsQuarantined.Inc()
	}
}

// QuarantinedPages returns the ids currently fenced off, sorted.
func (f *DurableFile) QuarantinedPages() []PageID {
	f.mu.RLock()
	defer f.mu.RUnlock()
	ids := make([]PageID, 0, len(f.quarantined))
	for id := range f.quarantined {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// WritePage implements File: the write lands in the pending overlay and
// reaches the page file at Commit, after the WAL holds its image.
func (f *DurableFile) WritePage(id PageID, buf []byte) error {
	if len(buf) < PageSize {
		return fmt.Errorf("pagestore: write buffer %d bytes, need %d", len(buf), PageSize)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if int(id) >= f.npages {
		return fmt.Errorf("%w: write page %d of %d", ErrPageOutOfRange, id, f.npages)
	}
	img, ok := f.pending[id]
	if !ok {
		img = make([]byte, PageSize)
		f.pending[id] = img
	}
	copy(img, buf[:PageSize])
	f.stats.countWrite()
	return nil
}

// Allocate implements File. The extension is logical until Commit, when
// an extend record persists it.
func (f *DurableFile) Allocate() (PageID, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	f.npages++
	f.stats.countAlloc()
	return PageID(f.npages - 1), nil
}

// NumPages implements File.
func (f *DurableFile) NumPages() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.npages
}

// Stats implements File, returning the file's logical access counters
// (overlay hits included); physical accesses are on the inner DiskFile.
func (f *DurableFile) Stats() *Stats { return &f.stats }

// dirtyLocked reports whether the file has uncommitted writes or
// allocations. Caller holds f.mu.
func (f *DurableFile) dirtyLocked() bool {
	return len(f.pending) > 0 || f.npages > f.inner.NumPages()
}

// logPendingLocked appends the file's extent and page images to w.
// Caller holds f.mu.
func (f *DurableFile) logPendingLocked(w *wal) error {
	if f.npages > f.inner.NumPages() {
		if err := w.appendExtend(f.tag, f.npages); err != nil {
			return err
		}
	}
	ids := make([]PageID, 0, len(f.pending))
	for id := range f.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if err := w.appendPage(f.tag, id, f.pending[id]); err != nil {
			return err
		}
	}
	return nil
}

// applyPendingLocked writes the committed batch through to the inner
// file and clears the overlay. Caller holds f.mu; the WAL already holds
// the commit record.
func (f *DurableFile) applyPendingLocked() error {
	if err := f.inner.extendTo(f.npages); err != nil {
		return fmt.Errorf("pagestore: extend %s to %d pages: %w", f.label(), f.npages, err)
	}
	ids := make([]PageID, 0, len(f.pending))
	for id := range f.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if err := f.inner.WritePage(id, f.pending[id]); err != nil {
			return fmt.Errorf("pagestore: apply %s page %d: %w", f.label(), id, err)
		}
		// The committed image just replaced whatever was on disk, so a
		// quarantined page is healthy again.
		delete(f.quarantined, id)
	}
	f.pending = make(map[PageID][]byte)
	return nil
}

// Commit implements Committer. For a store-owned file it commits the
// whole store (the WAL is shared, so transactions span files).
func (f *DurableFile) Commit() error {
	if f.store != nil {
		return f.store.Commit()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.commitLocked()
}

// commitLocked runs the log-sync-apply sequence for a standalone file.
func (f *DurableFile) commitLocked() error {
	if f.closed {
		return ErrClosed
	}
	if !f.dirtyLocked() {
		return nil
	}
	if err := f.logPendingLocked(f.wal); err != nil {
		return err
	}
	if err := f.wal.commit(); err != nil {
		return err
	}
	return f.applyPendingLocked()
}

// Checkpoint implements Committer: commit, fsync the page file, truncate
// the log.
func (f *DurableFile) Checkpoint() error {
	if f.store != nil {
		return f.store.Checkpoint()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.commitLocked(); err != nil {
		return err
	}
	if err := f.inner.Sync(); err != nil {
		return fmt.Errorf("pagestore: checkpoint sync %s: %w", f.label(), err)
	}
	return f.wal.reset()
}

// Sync implements File as Commit: after Sync returns the preceding
// writes are atomic and durable.
func (f *DurableFile) Sync() error { return f.Commit() }

// Close implements File. A standalone file checkpoints (clean shutdown
// leaves an empty log) and closes both devices. A store-owned file defers
// to the store's lifecycle: closing the store commits and closes every
// member.
func (f *DurableFile) Close() error {
	if f.store != nil {
		return nil
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	err := f.commitLocked()
	if err == nil {
		if serr := f.inner.Sync(); serr == nil {
			err = f.wal.reset()
		} else {
			err = serr
		}
	}
	f.closed = true
	f.mu.Unlock()
	if cerr := f.inner.Close(); err == nil {
		err = cerr
	}
	if cerr := f.wal.dev.Close(); err == nil {
		err = cerr
	}
	return err
}

// DurableStore is a crash-safe Store: a directory of checksummed page
// files sharing one write-ahead log ("store.wal"), so a Commit covers
// every file — a BSSF insert touching F slice files plus the OID file is
// one atomic transaction. Opening the store recovers committed state
// from the log.
//
// The store follows the paper's single-writer model: any number of
// concurrent readers, one writer driving WritePage/Allocate/Commit.
type DurableStore struct {
	mu    sync.Mutex
	fs    BlockFS
	wal   *wal
	files map[string]*DurableFile
}

// storeWALName is the shared log's name inside the store's BlockFS.
const storeWALName = "store" + walSuffix

// pageFileSuffix distinguishes page files from the log.
const pageFileSuffix = ".pag"

// OpenDurableStore opens (creating if necessary) a durable store rooted
// at dir and runs crash recovery.
func OpenDurableStore(dir string) (*DurableStore, error) {
	fs, err := NewOSBlockFS(dir)
	if err != nil {
		return nil, err
	}
	return OpenDurableStoreFS(fs)
}

// OpenDurableStoreFS is OpenDurableStore over an explicit filesystem;
// the crash-consistency harness passes a CrashFS.
func OpenDurableStoreFS(fs BlockFS) (*DurableStore, error) {
	dev, err := fs.Open(storeWALName)
	if err != nil {
		return nil, fmt.Errorf("pagestore: open %s: %w", storeWALName, err)
	}
	w, err := openWAL(dev, storeWALName)
	if err != nil {
		dev.Close()
		return nil, err
	}
	s := &DurableStore{fs: fs, wal: w, files: make(map[string]*DurableFile)}
	if err := s.recover(); err != nil {
		dev.Close()
		return nil, fmt.Errorf("pagestore: recover durable store: %w", err)
	}
	return s, nil
}

// recover replays committed WAL records into their page files. It runs
// before any Open call, so the files are opened directly and closed
// again after being repaired.
func (s *DurableStore) recover() error {
	opened := make(map[string]*DiskFile)
	err := s.wal.replayInto(func(tag string) (*DiskFile, error) {
		dev, err := s.fs.Open(tag + pageFileSuffix)
		if err != nil {
			return nil, err
		}
		f, err := newDiskFile(dev, tag)
		if err != nil {
			dev.Close()
			return nil, err
		}
		opened[tag] = f
		return f, nil
	})
	for _, f := range opened {
		f.Close()
	}
	return err
}

// Open implements Store. Slashes in the name map to subdirectories;
// names may not escape the store.
func (s *DurableStore) Open(name string) (File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.files[name]; ok {
		return f, nil
	}
	if name == "" || strings.Contains(name, "..") || filepath.IsAbs(name) {
		return nil, fmt.Errorf("pagestore: invalid file name %q", name)
	}
	dev, err := s.fs.Open(name + pageFileSuffix)
	if err != nil {
		return nil, fmt.Errorf("pagestore: open %s: %w", name+pageFileSuffix, err)
	}
	inner, err := newDiskFile(dev, name)
	if err != nil {
		dev.Close()
		return nil, err
	}
	f := newStoreFile(inner, name, s)
	s.files[name] = f
	return f, nil
}

// repairPage rewrites one member page from the shared log. It takes the
// store mutex then the file mutex — the same order as the commit path —
// so a read-triggered repair cannot deadlock against a commit.
func (s *DurableStore) repairPage(f *DurableFile, id PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.repairLocked(s.wal, id)
}

// Quarantined returns the currently fenced-off pages of every member
// file, keyed by tag; files with none are omitted.
func (s *DurableStore) Quarantined() map[string][]PageID {
	s.mu.Lock()
	files := make([]*DurableFile, 0, len(s.files))
	for _, f := range s.files {
		files = append(files, f)
	}
	s.mu.Unlock()
	sort.Slice(files, func(i, j int) bool { return files[i].tag < files[j].tag })
	out := make(map[string][]PageID)
	for _, f := range files {
		if ids := f.QuarantinedPages(); len(ids) > 0 {
			out[f.tag] = ids
		}
	}
	return out
}

// dirtyFilesLocked returns the members with uncommitted state, sorted by
// tag, with their mutexes held. The caller must call the returned unlock
// function. Caller holds s.mu.
func (s *DurableStore) dirtyFilesLocked() ([]*DurableFile, func()) {
	tags := make([]string, 0, len(s.files))
	for tag := range s.files {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	var dirty []*DurableFile
	for _, tag := range tags {
		f := s.files[tag]
		f.mu.Lock()
		if f.dirtyLocked() {
			dirty = append(dirty, f)
		} else {
			f.mu.Unlock()
		}
	}
	return dirty, func() {
		for _, f := range dirty {
			f.mu.Unlock()
		}
	}
}

// Commit implements Committer: one transaction covering every member
// file's pending writes.
func (s *DurableStore) Commit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commitLocked()
}

func (s *DurableStore) commitLocked() error {
	dirty, unlock := s.dirtyFilesLocked()
	defer unlock()
	if len(dirty) == 0 {
		return nil
	}
	for _, f := range dirty {
		if err := f.logPendingLocked(s.wal); err != nil {
			return err
		}
	}
	if err := s.wal.commit(); err != nil {
		return err
	}
	for _, f := range dirty {
		if err := f.applyPendingLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint implements Committer: commit, fsync every page file,
// truncate the shared log.
func (s *DurableStore) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.commitLocked(); err != nil {
		return err
	}
	for _, f := range s.files {
		if err := f.inner.Sync(); err != nil {
			return fmt.Errorf("pagestore: checkpoint sync %s: %w", f.label(), err)
		}
	}
	return s.wal.reset()
}

// Close implements Store: checkpoint (clean shutdown leaves an empty
// log) and close every member file and the log device.
func (s *DurableStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.commitLocked()
	if err == nil {
		for _, f := range s.files {
			if serr := f.inner.Sync(); serr != nil {
				err = serr
				break
			}
		}
	}
	if err == nil {
		err = s.wal.reset()
	}
	for _, f := range s.files {
		f.mu.Lock()
		f.closed = true
		f.mu.Unlock()
		if cerr := f.inner.Close(); err == nil {
			err = cerr
		}
	}
	if cerr := s.wal.dev.Close(); err == nil {
		err = cerr
	}
	return err
}

var (
	_ File      = (*DurableFile)(nil)
	_ Committer = (*DurableFile)(nil)
	_ Store     = (*DurableStore)(nil)
	_ Committer = (*DurableStore)(nil)
)
