package pagestore

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// BlockFile is the byte-oriented backend a DiskFile or WAL writes to: the
// subset of *os.File the durability layer needs. Factoring it out lets the
// crash-consistency harness substitute an in-memory device (CrashFile)
// that can tear writes and die mid-schedule, while production code runs
// over the operating system's files.
type BlockFile interface {
	io.ReaderAt
	io.WriterAt
	// Truncate resizes the file to size bytes.
	Truncate(size int64) error
	// Sync is the durability barrier: after it returns, preceding writes
	// must survive a crash.
	Sync() error
	// Size returns the current length in bytes.
	Size() (int64, error)
	Close() error
}

// BlockFS opens BlockFiles by name. It is the filesystem seam under
// DurableStore: OSBlockFS maps names to files in a directory, CrashFS to
// in-memory crash-injectable devices.
type BlockFS interface {
	Open(name string) (BlockFile, error)
}

// osBlockFile adapts *os.File to BlockFile.
type osBlockFile struct {
	*os.File
}

// Size implements BlockFile.
func (f osBlockFile) Size() (int64, error) {
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// OSBlockFS is the BlockFS over a directory of operating-system files.
type OSBlockFS struct {
	root string
}

// NewOSBlockFS returns a BlockFS rooted at dir, creating it if needed.
func NewOSBlockFS(dir string) (*OSBlockFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		// The *PathError already names the path and operation.
		return nil, fmt.Errorf("pagestore: %w", err)
	}
	return &OSBlockFS{root: dir}, nil
}

// Open implements BlockFS. Slashes map to subdirectories; names may not
// escape the root.
func (fs *OSBlockFS) Open(name string) (BlockFile, error) {
	if name == "" || strings.Contains(name, "..") || filepath.IsAbs(name) {
		return nil, fmt.Errorf("pagestore: invalid file name %q", name)
	}
	path := filepath.Join(fs.root, filepath.FromSlash(name))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("pagestore: mkdir for %s: %w", name, err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagestore: open %s: %w", path, err)
	}
	return osBlockFile{f}, nil
}

var _ BlockFS = (*OSBlockFS)(nil)
