package pagestore

import (
	"bytes"
	"errors"
	"testing"
)

// TestBufferPoolEvictionWriteBackErrorSurfaces is the regression test
// for lost write-back errors: when evicting a dirty page fails, the
// caller must see the error, the page must stay cached and dirty, and a
// later Sync must land it.
func TestBufferPoolEvictionWriteBackErrorSurfaces(t *testing.T) {
	inner := NewMemFile()
	ff := NewFaultFile(inner)
	pool, err := NewBufferPool(ff, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := pool.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.WritePage(0, page(0xaa)); err != nil {
		t.Fatal(err)
	}
	if err := pool.WritePage(1, page(0xbb)); err != nil {
		t.Fatal(err)
	}

	// Faulting in page 2 evicts dirty page 0; its write-back fails.
	ff.FailWriteAfter(0)
	buf := make([]byte, PageSize)
	err = pool.ReadPage(2, buf)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("eviction write-back failure did not surface: %v", err)
	}

	// The victim was retained dirty, so Sync (fault now clear) flushes it.
	if err := pool.Sync(); err != nil {
		t.Fatalf("retry Sync: %v", err)
	}
	if err := inner.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, page(0xaa)) {
		t.Fatal("dirty page lost after failed eviction + retry Sync")
	}
}

// TestBufferPoolSyncFlushesPastFailures: a Sync that hits a write-back
// error keeps flushing the remaining dirty pages, reports the error, and
// retries the failed page on the next Sync.
func TestBufferPoolSyncFlushesPastFailures(t *testing.T) {
	inner := NewMemFile()
	ff := NewFaultFile(inner)
	pool, err := NewBufferPool(ff, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := pool.Allocate(); err != nil {
			t.Fatal(err)
		}
		if err := pool.WritePage(PageID(i), page(byte(0x10+i))); err != nil {
			t.Fatal(err)
		}
	}

	ff.FailWriteAfter(0) // first flushed page fails, the others continue
	err = pool.Sync()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Sync swallowed the write-back failure: %v", err)
	}
	flushed := 0
	buf := make([]byte, PageSize)
	for i := 0; i < 3; i++ {
		if err := inner.ReadPage(PageID(i), buf); err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(buf, page(byte(0x10+i))) {
			flushed++
		}
	}
	if flushed != 2 {
		t.Fatalf("Sync flushed %d of 3 pages past the failure, want 2", flushed)
	}

	// The failed page stayed dirty: the retry completes the flush.
	if err := pool.Sync(); err != nil {
		t.Fatalf("retry Sync: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := inner.ReadPage(PageID(i), buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, page(byte(0x10+i))) {
			t.Fatalf("page %d not flushed after retry", i)
		}
	}
}

// TestBufferPoolCloseKeepsInnerOpenOnFlushFailure: Close must not close
// the inner file while dirty pages remain unflushed, or the retry the
// error invites would be impossible.
func TestBufferPoolCloseKeepsInnerOpenOnFlushFailure(t *testing.T) {
	inner := NewMemFile()
	ff := NewFaultFile(inner)
	pool, err := NewBufferPool(ff, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := pool.WritePage(0, page(0xcc)); err != nil {
		t.Fatal(err)
	}
	ff.FailWriteAfter(0)
	if err := pool.Close(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Close swallowed the flush failure: %v", err)
	}
	// The inner file must still be open and reachable for a retry.
	buf := make([]byte, PageSize)
	if err := inner.ReadPage(0, buf); err != nil {
		t.Fatalf("inner file unusable after failed Close: %v", err)
	}
	// Fault cleared: the retried Close flushes and closes.
	if err := pool.Close(); err != nil {
		t.Fatalf("retry Close: %v", err)
	}
	if err := inner.ReadPage(0, buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("inner file not closed after successful Close: %v", err)
	}
}
