// Write-ahead logging for the durable page stores.
//
// The paper's cost model counts page writes but assumes they land
// atomically; a real BSSF insert touches F+1 files and a crash midway
// leaves the facility silently inconsistent. The WAL restores atomicity
// with the classic physical-redo protocol:
//
//  1. full images of every page a transaction dirtied are appended to the
//     log, each tagged with its file name and page id;
//  2. a commit record is appended and the log is fsynced — the
//     transaction's durability point;
//  3. only then are the images applied in place to the page files.
//
// Recovery replays the log from the start: images are buffered per
// transaction and applied only when their commit record is seen, so an
// update interrupted anywhere is either fully redone (commit record made
// it to disk) or fully ignored (it did not). Every record carries a
// CRC32C; the scan stops at the first torn or malformed record, which by
// construction can only be the tail the crash cut off. Applying images
// is idempotent, so crashing during recovery itself is harmless.
//
// Log layout (little endian):
//
//	header:  "SIGWAL01" (8 bytes)
//	page:    'P' | tagLen u16 | pageID u32 | tag | data[PageSize] | crc u32
//	extend:  'X' | tagLen u16 | npages u32 | tag | crc u32
//	commit:  'C' | seq u64 | crc u32
//
// Extend records persist allocations whose pages were never written
// (e.g. the zeroed slice pages a BSSF boundary crossing creates); on
// replay the file is grown to npages before images are applied.
package pagestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// crc32Checksum is the CRC32C used by both page trailers and WAL records.
func crc32Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

const (
	walSuffix = ".wal"

	walMagic = "SIGWAL01"

	walRecPage   = byte('P')
	walRecExtend = byte('X')
	walRecCommit = byte('C')
)

// wal is an append-only physical redo log over a BlockFile. It is not
// itself goroutine-safe; DurableFile and DurableStore serialize access.
type wal struct {
	dev  BlockFile
	name string
	size int64 // append offset
	seq  uint64
	buf  []byte // record staging buffer
}

// openWAL attaches to dev, validating the header of a non-empty log.
// A log whose header is torn (shorter than the magic, or mismatched) is
// treated as empty: the crash happened before the first record could
// possibly have committed.
func openWAL(dev BlockFile, name string) (*wal, error) {
	size, err := dev.Size()
	if err != nil {
		return nil, fmt.Errorf("pagestore: wal %s: %w", name, err)
	}
	w := &wal{dev: dev, name: name, size: size}
	if size < int64(len(walMagic)) {
		w.size = 0
		return w, nil
	}
	hdr := make([]byte, len(walMagic))
	if _, err := dev.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("pagestore: wal %s header: %w", name, err)
	}
	if string(hdr) != walMagic {
		w.size = 0
	}
	return w, nil
}

// appendRaw writes rec at the log tail, emitting the header first on an
// empty log.
func (w *wal) appendRaw(rec []byte) error {
	if w.size == 0 {
		if _, err := w.dev.WriteAt([]byte(walMagic), 0); err != nil {
			return fmt.Errorf("pagestore: wal %s header: %w", w.name, err)
		}
		w.size = int64(len(walMagic))
	}
	if _, err := w.dev.WriteAt(rec, w.size); err != nil {
		return fmt.Errorf("pagestore: wal %s append: %w", w.name, err)
	}
	w.size += int64(len(rec))
	return nil
}

// sealRecord appends the CRC32C of rec to rec and returns it.
func sealRecord(rec []byte) []byte {
	return binary.LittleEndian.AppendUint32(rec, crc32Checksum(rec))
}

// appendPage logs a full page image for file tag.
func (w *wal) appendPage(tag string, id PageID, data []byte) error {
	if len(data) < PageSize {
		return fmt.Errorf("pagestore: wal page image %d bytes, need %d", len(data), PageSize)
	}
	w.buf = w.buf[:0]
	w.buf = append(w.buf, walRecPage)
	w.buf = binary.LittleEndian.AppendUint16(w.buf, uint16(len(tag)))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(id))
	w.buf = append(w.buf, tag...)
	w.buf = append(w.buf, data[:PageSize]...)
	return w.appendRaw(sealRecord(w.buf))
}

// appendExtend logs that file tag spans npages pages.
func (w *wal) appendExtend(tag string, npages int) error {
	w.buf = w.buf[:0]
	w.buf = append(w.buf, walRecExtend)
	w.buf = binary.LittleEndian.AppendUint16(w.buf, uint16(len(tag)))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(npages))
	w.buf = append(w.buf, tag...)
	return w.appendRaw(sealRecord(w.buf))
}

// commit appends the commit record and syncs the log — the transaction's
// durability point.
func (w *wal) commit() error {
	w.seq++
	w.buf = w.buf[:0]
	w.buf = append(w.buf, walRecCommit)
	w.buf = binary.LittleEndian.AppendUint64(w.buf, w.seq)
	if err := w.appendRaw(sealRecord(w.buf)); err != nil {
		return err
	}
	if err := w.dev.Sync(); err != nil {
		return fmt.Errorf("pagestore: wal %s sync: %w", w.name, err)
	}
	return nil
}

// reset truncates the log after a checkpoint. The caller must have
// synced the page files first.
func (w *wal) reset() error {
	if err := w.dev.Truncate(0); err != nil {
		return fmt.Errorf("pagestore: wal %s truncate: %w", w.name, err)
	}
	if err := w.dev.Sync(); err != nil {
		return fmt.Errorf("pagestore: wal %s sync: %w", w.name, err)
	}
	w.size = 0
	return nil
}

// walImage is one committed page image recovered from the log.
type walImage struct {
	tag  string
	id   PageID
	data []byte
}

// replay scans the log and returns the page images and file extents of
// every committed transaction, in log order. A torn tail — short read,
// bad CRC, unknown record kind — ends the scan silently: those records
// belong to the transaction the crash interrupted. Only genuine device
// errors are returned.
func (w *wal) replay() (images []walImage, extents map[string]int, err error) {
	extents = make(map[string]int)
	if w.size <= int64(len(walMagic)) {
		return nil, extents, nil
	}
	data := make([]byte, w.size-int64(len(walMagic)))
	if n, rerr := w.dev.ReadAt(data, int64(len(walMagic))); rerr != nil && rerr != io.EOF {
		return nil, nil, fmt.Errorf("pagestore: wal %s read: %w", w.name, rerr)
	} else {
		data = data[:n]
	}

	var pendImages []walImage
	pendExtents := make(map[string]int)
	off := 0
	// checked verifies the CRC that follows the n payload bytes at off.
	checked := func(n int) ([]byte, bool) {
		if off+n+4 > len(data) {
			return nil, false
		}
		payload := data[off : off+n]
		want := binary.LittleEndian.Uint32(data[off+n:])
		if crc32Checksum(payload) != want {
			return nil, false
		}
		off += n + 4
		return payload, true
	}
	for off < len(data) {
		switch data[off] {
		case walRecPage:
			if off+7 > len(data) {
				return images, extents, nil
			}
			tagLen := int(binary.LittleEndian.Uint16(data[off+1 : off+3]))
			payload, ok := checked(7 + tagLen + PageSize)
			if !ok {
				return images, extents, nil
			}
			id := PageID(binary.LittleEndian.Uint32(payload[3:7]))
			tag := string(payload[7 : 7+tagLen])
			img := make([]byte, PageSize)
			copy(img, payload[7+tagLen:])
			pendImages = append(pendImages, walImage{tag: tag, id: id, data: img})
		case walRecExtend:
			if off+7 > len(data) {
				return images, extents, nil
			}
			tagLen := int(binary.LittleEndian.Uint16(data[off+1 : off+3]))
			payload, ok := checked(7 + tagLen)
			if !ok {
				return images, extents, nil
			}
			npages := int(binary.LittleEndian.Uint32(payload[3:7]))
			tag := string(payload[7:])
			if npages > pendExtents[tag] {
				pendExtents[tag] = npages
			}
		case walRecCommit:
			payload, ok := checked(9)
			if !ok {
				return images, extents, nil
			}
			w.seq = binary.LittleEndian.Uint64(payload[1:])
			images = append(images, pendImages...)
			pendImages = nil
			for tag, n := range pendExtents {
				if n > extents[tag] {
					extents[tag] = n
				}
			}
			pendExtents = make(map[string]int)
		default:
			return images, extents, nil
		}
	}
	return images, extents, nil
}

// latestImage returns the most recent committed image of page id in
// file tag, or nil if the log holds none — after a checkpoint the log is
// empty and a corrupt page can only be repaired by a fresh write.
func (w *wal) latestImage(tag string, id PageID) ([]byte, error) {
	images, _, err := w.replay()
	if err != nil {
		return nil, err
	}
	var out []byte
	for _, img := range images {
		if img.tag == tag && img.id == id {
			out = img.data
		}
	}
	return out, nil
}

// replayInto applies the committed state of the log to page files opened
// through open, syncing each touched file, then truncates the log. open
// is called at most once per distinct tag.
func (w *wal) replayInto(open func(tag string) (*DiskFile, error)) error {
	images, extents, err := w.replay()
	if err != nil {
		return err
	}
	if len(images) == 0 && len(extents) == 0 {
		if w.size > 0 {
			return w.reset()
		}
		return nil
	}
	files := make(map[string]*DiskFile)
	get := func(tag string) (*DiskFile, error) {
		if f, ok := files[tag]; ok {
			return f, nil
		}
		f, err := open(tag)
		if err != nil {
			return nil, err
		}
		files[tag] = f
		return f, nil
	}
	// Extents first (they only grow), then images in log order; physical
	// redo is idempotent, so a crash in here just re-runs recovery.
	tags := make([]string, 0, len(extents))
	for tag := range extents {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	for _, tag := range tags {
		f, err := get(tag)
		if err != nil {
			return err
		}
		if err := f.extendTo(extents[tag]); err != nil {
			return err
		}
	}
	for _, img := range images {
		f, err := get(img.tag)
		if err != nil {
			return err
		}
		if err := f.extendTo(int(img.id) + 1); err != nil {
			return err
		}
		if err := f.WritePage(img.id, img.data); err != nil {
			return err
		}
	}
	var firstErr error
	for _, f := range files {
		if err := f.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	return w.reset()
}
