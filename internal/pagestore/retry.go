package pagestore

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sigfile/internal/obs"
)

// RetryPolicy bounds how hard the retry layer fights a transient fault:
// capped exponential backoff with jitter, classified by Classify so
// terminal faults (disk full, device gone) fail immediately instead of
// burning the budget.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first.
	// Zero means DefaultRetryPolicy.MaxAttempts.
	MaxAttempts int
	// BaseDelay is the wait before the first retry; each subsequent wait
	// doubles, capped at MaxDelay. Zero means the defaults (1ms / 50ms).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter scales each wait by a random factor in [1-Jitter, 1] to
	// decorrelate retries across files. 0 disables jitter.
	Jitter float64
	// Sleep overrides the wait for tests (nil = real time). It receives
	// the jittered delay and must honor it or return immediately.
	Sleep func(time.Duration)
}

// DefaultRetryPolicy is the policy NewRetryFile applies when fields are
// zero: 4 attempts, 1ms base, 50ms cap, 50% jitter — a worst case of
// ~87ms blocked in backoff before a read reports ErrRetryExhausted.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts: 4,
	BaseDelay:   time.Millisecond,
	MaxDelay:    50 * time.Millisecond,
	Jitter:      0.5,
}

// withDefaults fills zero fields from DefaultRetryPolicy.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultRetryPolicy.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultRetryPolicy.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultRetryPolicy.MaxDelay
	}
	return p
}

// delay returns the jittered backoff before retry attempt (1-based).
func (p RetryPolicy) delay(attempt int, rng *rand.Rand) time.Duration {
	d := p.BaseDelay << uint(attempt-1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	if p.Jitter > 0 && rng != nil {
		d = time.Duration(float64(d) * (1 - p.Jitter*rng.Float64()))
	}
	return d
}

// Retry metrics. Counters, not per-file gauges: the interesting signal is
// process-wide retry pressure, which feeds alerting for the sigfiled
// deployment the ROADMAP aims at.
var (
	obsRetries   = obs.Default().Counter("sigfile_pagestore_retries_total")
	obsExhausted = obs.Default().Counter("sigfile_pagestore_retry_exhausted_total")
)

// Do runs op under pol, retrying transient faults until the attempt
// budget or ctx expires. It is the context-aware entry point for callers
// that have one (the scrubber, maintenance jobs); RetryFile wires the
// same loop into the File interface, whose methods carry no context and
// instead abort backoff on Close.
func Do(ctx context.Context, pol RetryPolicy, op func() error) error {
	return retryLoop(ctx, nil, pol.withDefaults(), nil, op)
}

// retryLoop is the shared engine behind Do and RetryFile. Exactly one of
// ctx and stop may be non-nil; either aborts a backoff wait early. rng
// may be nil (no jitter source).
func retryLoop(ctx context.Context, stop <-chan struct{}, pol RetryPolicy, rng func() *rand.Rand, op func() error) error {
	var err error
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil || !Retryable(err) {
			return err
		}
		if attempt >= pol.MaxAttempts {
			obsExhausted.Inc()
			return fmt.Errorf("%w: %d attempts: %w", ErrRetryExhausted, attempt, err)
		}
		obsRetries.Inc()
		var r *rand.Rand
		if rng != nil {
			r = rng()
		}
		d := pol.delay(attempt, r)
		if pol.Sleep != nil {
			pol.Sleep(d)
			continue
		}
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-stop:
			t.Stop()
			return fmt.Errorf("pagestore: retry aborted by close: %w", err)
		case <-ctxDone(ctx):
			t.Stop()
			return fmt.Errorf("pagestore: retry aborted: %w", ctx.Err())
		}
	}
}

// ctxDone returns ctx.Done() or a nil channel for a nil context, keeping
// the select in retryLoop uniform.
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// RetryFile wraps a File so transient faults from the layers below
// (device hiccups, injected schedules) are absorbed by bounded backoff
// instead of surfacing to the facility. Terminal and corrupt errors pass
// straight through — retrying a full disk or a bad checksum only delays
// the right reaction (degrade, repair).
//
// File methods carry no context, so backoff waits are interruptible by
// Close instead: closing the file fails the in-flight retry promptly.
// Callers holding a context use Do.
type RetryFile struct {
	inner File
	pol   RetryPolicy

	mu   sync.Mutex
	rng  *rand.Rand
	stop chan struct{}
	done bool
}

// NewRetryFile wraps inner with pol (zero fields take defaults). The
// jitter source is seeded from the policy's base delay and the wall
// clock unless seeded tests override Sleep anyway.
func NewRetryFile(inner File, pol RetryPolicy) *RetryFile {
	return &RetryFile{
		inner: inner,
		pol:   pol.withDefaults(),
		rng:   rand.New(rand.NewSource(time.Now().UnixNano())),
		stop:  make(chan struct{}),
	}
}

// jitterRNG hands the shared jitter source to retryLoop under the lock.
func (f *RetryFile) jitterRNG() *rand.Rand {
	f.mu.Lock()
	defer f.mu.Unlock()
	// rand.Rand is not goroutine-safe; draw a child source per call so
	// concurrent backoffs do not race on one generator.
	return rand.New(rand.NewSource(f.rng.Int63()))
}

func (f *RetryFile) do(op func() error) error {
	return retryLoop(nil, f.stop, f.pol, f.jitterRNG, op)
}

// ReadPage implements File with retries.
func (f *RetryFile) ReadPage(id PageID, buf []byte) error {
	return f.do(func() error { return f.inner.ReadPage(id, buf) })
}

// WritePage implements File with retries. Page writes are idempotent
// full-page stores, so re-running a torn or failed write is safe.
func (f *RetryFile) WritePage(id PageID, buf []byte) error {
	return f.do(func() error { return f.inner.WritePage(id, buf) })
}

// Allocate implements File with retries. The fault injectors fail before
// the inner allocation happens, and real allocation (extending a file)
// is idempotent at this layer, so a retried Allocate cannot double-grow.
func (f *RetryFile) Allocate() (PageID, error) {
	var id PageID
	err := f.do(func() error {
		var err error
		id, err = f.inner.Allocate()
		return err
	})
	return id, err
}

// NumPages implements File.
func (f *RetryFile) NumPages() int { return f.inner.NumPages() }

// Stats implements File, delegating to the inner file: retries are
// physical re-accesses and should be visible in the paper's page counts.
func (f *RetryFile) Stats() *Stats { return f.inner.Stats() }

// Sync implements File with retries.
func (f *RetryFile) Sync() error {
	return f.do(func() error { return f.inner.Sync() })
}

// Close implements File. It aborts any in-flight backoff wait and closes
// the inner file; Close itself is not retried.
func (f *RetryFile) Close() error {
	f.mu.Lock()
	if !f.done {
		f.done = true
		close(f.stop)
	}
	f.mu.Unlock()
	return f.inner.Close()
}

var _ File = (*RetryFile)(nil)

// RetryStore wraps a Store so every file it opens retries transient
// faults under one policy. Layered between a facility and a FaultStore
// it turns an injected transient schedule into, at worst, latency.
type RetryStore struct {
	inner Store
	pol   RetryPolicy

	mu    sync.Mutex
	files map[string]*RetryFile
}

// NewRetryStore wraps inner with pol (zero fields take defaults).
func NewRetryStore(inner Store, pol RetryPolicy) *RetryStore {
	return &RetryStore{inner: inner, pol: pol.withDefaults(), files: make(map[string]*RetryFile)}
}

// Open implements Store.
func (s *RetryStore) Open(name string) (File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.files[name]; ok {
		return f, nil
	}
	inner, err := s.inner.Open(name)
	if err != nil {
		return nil, fmt.Errorf("pagestore: retry store open %s: %w", name, err)
	}
	f := NewRetryFile(inner, s.pol)
	s.files[name] = f
	return f, nil
}

// Close implements Store, aborting backoffs on every member first.
func (s *RetryStore) Close() error {
	s.mu.Lock()
	for _, f := range s.files {
		f.mu.Lock()
		if !f.done {
			f.done = true
			close(f.stop)
		}
		f.mu.Unlock()
	}
	s.mu.Unlock()
	return s.inner.Close()
}

var _ Store = (*RetryStore)(nil)
