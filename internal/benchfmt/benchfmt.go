// Package benchfmt defines the one JSON report schema every throughput
// benchmark in this repository emits — `sigbench -throughput -json`,
// `sigload -json`, and the scripts that pin BENCH_lsm.json and
// BENCH_server.json — so the recorded numbers stay comparable across
// benches: same field names, same units (QPS, fractional milliseconds),
// same environment stamp (cores, CPU model).
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"
)

// Report is one benchmark run: an environment stamp plus one Workload
// entry per measured point. Optional sections (Verify) record follow-up
// checks a harness ran against the same instance.
type Report struct {
	// Bench names the benchmark family, e.g. "search_throughput",
	// "lsm_mixed_write_throughput", "sigfiled_server".
	Bench string `json:"bench"`
	// CPU is the CPU model string when known, "" otherwise.
	CPU string `json:"cpu,omitempty"`
	// Cores is runtime.NumCPU() on the measuring machine — part of the
	// result, since parallel speedups only materialize on multi-core.
	Cores int `json:"cores"`
	// Seed is the workload generator seed, for reproduction.
	Seed int64 `json:"seed"`
	// Tenants is the number of server tenants driven (server benches).
	Tenants int `json:"tenants,omitempty"`
	// F and FPlus1Wall pin the signature design the write benches
	// measure against (the paper's UC_I = F+1 insertion wall).
	F          int `json:"f,omitempty"`
	FPlus1Wall int `json:"f_plus_1_wall,omitempty"`
	// IdenticalResults reports the differential gate of benches that run
	// the same stream down two paths (legacy vs LSM); nil when the bench
	// has no such gate.
	IdenticalResults *bool `json:"identical_results,omitempty"`
	// Workloads are the measured points.
	Workloads []Workload `json:"workloads"`
	// Verify records a reopen-and-check pass (server benches: every
	// acknowledged write found again after a graceful restart).
	Verify *Verify `json:"verify,omitempty"`
}

// Workload is one measured point: a named request mix driven for a
// while, with throughput and latency percentiles.
type Workload struct {
	Name     string `json:"name"`
	Facility string `json:"facility,omitempty"`
	Proto    string `json:"proto,omitempty"`
	Mix      string `json:"mix,omitempty"`
	Workers  int    `json:"workers,omitempty"`
	// Shards is the facility's hash-partition count K for sharded
	// benches; 0 or 1 means the unsharded facility.
	Shards int `json:"shards,omitempty"`

	Ops      int     `json:"ops"`
	Inserts  int     `json:"inserts,omitempty"`
	Searches int     `json:"searches,omitempty"`
	Errors   int     `json:"errors,omitempty"`
	Seconds  float64 `json:"seconds,omitempty"`

	QPS   float64 `json:"qps"`
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`

	// Write-path accounting (benches that meter page writes).
	InsertsPerSec         float64 `json:"inserts_per_sec,omitempty"`
	PagesWritten          int64   `json:"pages_written,omitempty"`
	PagesWrittenPerInsert float64 `json:"pages_written_per_insert,omitempty"`
	Segments              int     `json:"segments,omitempty"`
	Compactions           int     `json:"compactions,omitempty"`
	CompactionPauseP99Ms  float64 `json:"compaction_pause_p99_ms,omitempty"`
}

// Verify is the result of a reopen-and-check pass: Checked acknowledged
// writes re-queried after a restart, Missing of them not found. A
// nonzero Missing is a lost committed write — the failure the graceful
// shutdown path exists to prevent.
type Verify struct {
	Checked int `json:"checked"`
	Missing int `json:"missing"`
}

// New returns a Report stamped with this machine's environment.
func New(bench string, seed int64) *Report {
	return &Report{Bench: bench, Cores: runtime.NumCPU(), Seed: seed}
}

// WriteFile writes the report as indented JSON. With appendTo set, an
// existing well-formed report at path is loaded first and its workload
// list extended (environment fields keep the existing report's values),
// so a multi-phase harness can build one file across several runs.
func (r *Report) WriteFile(path string, appendTo bool) error {
	out := r
	if appendTo {
		if prev, err := ReadFile(path); err == nil {
			prev.Workloads = append(prev.Workloads, r.Workloads...)
			if r.Verify != nil {
				prev.Verify = r.Verify
			}
			if prev.Tenants == 0 {
				prev.Tenants = r.Tenants
			}
			out = prev
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a report written by WriteFile.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	return &r, nil
}

// Percentile picks the nearest-rank percentile (0 < p ≤ 1) from an
// unsorted latency sample; it sorts a copy and leaves lats untouched.
func Percentile(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Ms renders a duration in fractional milliseconds, the schema's
// latency unit.
func Ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
