package signature

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewFrameSchemeValidation(t *testing.T) {
	cases := []struct {
		k, s, m int
		ok      bool
	}{
		{10, 25, 2, true}, {1, 8, 8, true},
		{0, 8, 2, false}, {-1, 8, 2, false}, {4, 0, 1, false},
		{4, 8, 0, false}, {4, 8, 9, false},
	}
	for _, c := range cases {
		_, err := NewFrameScheme(c.k, c.s, c.m)
		if (err == nil) != c.ok {
			t.Errorf("NewFrameScheme(%d,%d,%d): err=%v, want ok=%v", c.k, c.s, c.m, err, c.ok)
		}
	}
	fs := MustFrameScheme(10, 25, 2)
	if fs.K() != 10 || fs.S() != 25 || fs.M() != 2 || fs.F() != 250 {
		t.Fatalf("accessors wrong: %d %d %d %d", fs.K(), fs.S(), fs.M(), fs.F())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustFrameScheme(0,0,0) did not panic")
		}
	}()
	MustFrameScheme(0, 0, 0)
}

func TestElementFrameDeterministicAndInRange(t *testing.T) {
	fs := MustFrameScheme(16, 32, 3)
	for i := 0; i < 200; i++ {
		elem := []byte(fmt.Sprintf("elem-%03d", i))
		f1, b1 := fs.ElementFrame(elem)
		f2, b2 := fs.ElementFrame(elem)
		if f1 != f2 {
			t.Fatal("frame not deterministic")
		}
		if f1 < 0 || f1 >= 16 {
			t.Fatalf("frame %d out of range", f1)
		}
		if len(b1) != 3 {
			t.Fatalf("%d bits, want 3", len(b1))
		}
		seen := map[int]bool{}
		for j, b := range b1 {
			if b < 0 || b >= 32 {
				t.Fatalf("bit %d out of frame", b)
			}
			if b != b2[j] {
				t.Fatal("bits not deterministic")
			}
			if seen[b] {
				t.Fatal("duplicate bit positions")
			}
			seen[b] = true
		}
	}
}

func TestFrameDistributionUniform(t *testing.T) {
	// Frames should be hit roughly uniformly over many elements.
	const k, n = 8, 8000
	fs := MustFrameScheme(k, 16, 2)
	counts := make([]int, k)
	for i := 0; i < n; i++ {
		f, _ := fs.ElementFrame([]byte(fmt.Sprintf("v%06d", i)))
		counts[f]++
	}
	want := float64(n) / k
	for j, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("frame %d hit %d times, expected ≈%.0f (counts %v)", j, c, want, counts)
		}
	}
}

func TestFrameSetSignature(t *testing.T) {
	fs := MustFrameScheme(8, 16, 2)
	elems := []string{"Baseball", "Fishing", "Golf", "Tennis"}
	sig := fs.SetSignature(elems)
	// Every element's bits must be present in its frame.
	for _, e := range elems {
		frame, bits := fs.ElementFrame([]byte(e))
		fr := sig.Frame(frame)
		if fr == nil {
			t.Fatalf("frame %d of %s empty", frame, e)
		}
		for _, b := range bits {
			if !fr.Test(b) {
				t.Fatalf("bit %d of %s missing", b, e)
			}
		}
	}
	touched := sig.TouchedFrames()
	if len(touched) == 0 || len(touched) > len(elems) {
		t.Fatalf("touched frames: %v", touched)
	}
	for i := 1; i < len(touched); i++ {
		if touched[i] <= touched[i-1] {
			t.Fatal("touched frames not ascending")
		}
	}
	// Empty set: no frames touched, flat signature zero.
	empty := fs.SetSignature(nil)
	if len(empty.TouchedFrames()) != 0 || empty.Flat().Any() {
		t.Fatal("empty set signature not empty")
	}
}

func TestFrameFlatMatchesPerFrame(t *testing.T) {
	fs := MustFrameScheme(10, 25, 2)
	sig := fs.SetSignature([]string{"a", "b", "c", "d", "e"})
	flat := sig.Flat()
	if flat.Len() != 250 {
		t.Fatalf("flat length %d", flat.Len())
	}
	count := 0
	for j := 0; j < fs.K(); j++ {
		if fr := sig.Frame(j); fr != nil {
			count += fr.Count()
			for b, ok := fr.NextSet(0); ok; b, ok = fr.NextSet(b + 1) {
				if !flat.Test(j*fs.S() + b) {
					t.Fatalf("flat missing frame %d bit %d", j, b)
				}
			}
		}
	}
	if flat.Count() != count {
		t.Fatalf("flat weight %d, frames sum %d", flat.Count(), count)
	}
}

// Property: frame signatures never false-dismiss supersets — if
// target ⊇ query then every query frame content is contained in the
// target's.
func TestPropertyFrameNoFalseDismissals(t *testing.T) {
	fs := MustFrameScheme(8, 32, 2)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		universe := make([]string, 30)
		for i := range universe {
			universe[i] = fmt.Sprintf("e%02d", i)
		}
		tcard := 1 + rng.Intn(10)
		target := make([]string, 0, tcard)
		for _, j := range rng.Perm(30)[:tcard] {
			target = append(target, universe[j])
		}
		query := target[:1+rng.Intn(len(target))]
		tsig := fs.SetSignature(target)
		qsig := fs.SetSignature(query)
		for j := 0; j < fs.K(); j++ {
			qf := qsig.Frame(j)
			if qf == nil {
				continue
			}
			tf := tsig.Frame(j)
			if tf == nil || !tf.ContainsAll(qf) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestFrameDensityMatchesFlatModel validates the claim that frame
// slicing leaves the expected overall bit density (and hence eq. 2)
// unchanged: the mean flat weight over random Dt-sets should match
// ExpectedWeight(F, m, Dt) within sampling error.
func TestFrameDensityMatchesFlatModel(t *testing.T) {
	const k, s, m, dt, trials = 10, 25, 2, 10, 2000
	fs := MustFrameScheme(k, s, m)
	rng := rand.New(rand.NewSource(9))
	total := 0
	for i := 0; i < trials; i++ {
		set := make([]string, dt)
		for j := range set {
			set[j] = fmt.Sprintf("v%06d", rng.Intn(100000))
		}
		total += fs.SetSignature(set).Flat().Count()
	}
	mean := float64(total) / trials
	// The flat model assumes each element draws m positions from all F
	// bits; frame slicing draws m from one S-bit frame, which collides
	// slightly more within an element's own frame when two elements
	// share a frame. Allow 5%.
	want := ExpectedWeight(float64(k*s), m, dt)
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("mean frame-sliced weight %.2f, flat model %.2f", mean, want)
	}
}
