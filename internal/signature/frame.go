package signature

import (
	"fmt"
	"hash/fnv"

	"sigfile/internal/bitset"
)

// FrameScheme is the frame-sliced variant of superimposed coding: the
// F = K·S signature bits are divided into K frames of S bits, each
// element hashes to exactly one frame and sets m bits inside it.
//
// The paper evaluates the two extremes of the physical design space —
// row-wise (SSF) and fully column-wise (BSSF); frame slicing (Lin &
// Faloutsos' generalization, contemporary with the paper) sits between
// them and is implemented here as an extension: a T ⊇ Q query reads only
// the frames its elements hash to, and an insertion writes only the
// frames its elements touch, trading BSSF's slice granularity for far
// cheaper updates.
//
// With the frame uniformly chosen, the expected bit density of a frame
// equals m·D_t/F — the same as the flat scheme — so the eq. 2 false-drop
// analysis carries over unchanged (validated in the tests).
type FrameScheme struct {
	k, s, m int
	hasher  Hasher
}

// NewFrameScheme returns a scheme with k frames of s bits and m bits per
// element signature (m ≤ s).
func NewFrameScheme(k, s, m int) (*FrameScheme, error) {
	return NewFrameSchemeWithHasher(k, s, m, DoubleHasher{})
}

// NewFrameSchemeWithHasher is NewFrameScheme with an explicit in-frame
// Hasher.
func NewFrameSchemeWithHasher(k, s, m int, h Hasher) (*FrameScheme, error) {
	if k <= 0 {
		return nil, fmt.Errorf("signature: frame count K = %d must be positive", k)
	}
	if s <= 0 {
		return nil, fmt.Errorf("signature: frame size S = %d must be positive", s)
	}
	if m <= 0 || m > s {
		return nil, fmt.Errorf("signature: weight m = %d must be in (0, S=%d]", m, s)
	}
	if h == nil {
		h = DoubleHasher{}
	}
	return &FrameScheme{k: k, s: s, m: m, hasher: h}, nil
}

// MustFrameScheme is NewFrameScheme but panics on invalid parameters.
func MustFrameScheme(k, s, m int) *FrameScheme {
	fs, err := NewFrameScheme(k, s, m)
	if err != nil {
		panic(err)
	}
	return fs
}

// K returns the number of frames.
func (fs *FrameScheme) K() int { return fs.k }

// S returns the frame size in bits.
func (fs *FrameScheme) S() int { return fs.s }

// M returns the element-signature weight.
func (fs *FrameScheme) M() int { return fs.m }

// F returns the total signature width K·S.
func (fs *FrameScheme) F() int { return fs.k * fs.s }

// ElementFrame returns the frame elem hashes to and its m distinct bit
// positions within that frame.
func (fs *FrameScheme) ElementFrame(elem []byte) (frame int, bits []int) {
	h := fnv.New64a()
	h.Write(elem)
	// An independent draw for the frame (decorrelated from the in-frame
	// positions, which re-hash elem from scratch).
	frame = int(mix64(h.Sum64()^0x7f4a7c159e3779b9) % uint64(fs.k))
	bits = fs.hasher.Positions(elem, fs.s, fs.m, make([]int, 0, fs.m))
	return frame, bits
}

// FrameSignature is the frame-partitioned set signature: one s-bit
// bitset per frame (lazily allocated; nil frames are all-zero).
type FrameSignature struct {
	scheme *FrameScheme
	frames []*bitset.BitSet
}

// SetSignature superimposes the element signatures of all elements into
// a frame signature.
func (fs *FrameScheme) SetSignature(elems []string) *FrameSignature {
	sig := &FrameSignature{scheme: fs, frames: make([]*bitset.BitSet, fs.k)}
	for _, e := range elems {
		sig.Add([]byte(e))
	}
	return sig
}

// Add superimposes one element.
func (sig *FrameSignature) Add(elem []byte) {
	frame, bits := sig.scheme.ElementFrame(elem)
	if sig.frames[frame] == nil {
		sig.frames[frame] = bitset.New(sig.scheme.s)
	}
	for _, b := range bits {
		sig.frames[frame].Set(b)
	}
}

// Frame returns the s-bit content of one frame (nil means all-zero).
func (sig *FrameSignature) Frame(i int) *bitset.BitSet { return sig.frames[i] }

// TouchedFrames returns the indexes of frames with at least one bit set,
// ascending.
func (sig *FrameSignature) TouchedFrames() []int {
	var out []int
	for i, f := range sig.frames {
		if f != nil && f.Any() {
			out = append(out, i)
		}
	}
	return out
}

// Flat renders the frame signature as a single F-bit bitset (frame i at
// bits [i·S, (i+1)·S)) so it can interoperate with the flat match
// conditions.
func (sig *FrameSignature) Flat() *bitset.BitSet {
	out := bitset.New(sig.scheme.F())
	for i, f := range sig.frames {
		if f == nil {
			continue
		}
		for b, ok := f.NextSet(0); ok; b, ok = f.NextSet(b + 1) {
			out.Set(i*sig.scheme.s + b)
		}
	}
	return out
}
