package signature

import (
	"bytes"
	"testing"

	"sigfile/internal/bitset"
)

// FuzzSchemeRoundTrip drives an arbitrary (F, m) scheme over an
// arbitrary element multiset and checks the properties every facility
// build relies on: superimposition (each element signature is contained
// in the set signature, so Superset matching can never falsely
// dismiss), per-element weight bounds, duplicate- and order-invariance
// of the set signature, and a lossless MarshalBinaryTo/UnmarshalBinary
// round trip at the scheme's exact width.
func FuzzSchemeRoundTrip(f *testing.F) {
	f.Add(uint16(250), uint8(10), []byte("Baseball\x00Golf\x00Fishing"))
	f.Add(uint16(8), uint8(2), []byte("Baseball\x00Baseball"))
	f.Add(uint16(1), uint8(1), []byte{})
	f.Add(uint16(4000), uint8(160), bytes.Repeat([]byte{0xff, 0x00}, 40))
	f.Fuzz(func(t *testing.T, fraw uint16, mraw uint8, data []byte) {
		width := int(fraw)%4096 + 1
		m := int(mraw)%width + 1
		s, err := New(width, m)
		if err != nil {
			t.Fatalf("New(%d, %d): %v", width, m, err)
		}

		elems := bytes.Split(data, []byte{0})
		set := s.SetSignature(elems)
		if set.Len() != width {
			t.Fatalf("set signature width %d, want %d", set.Len(), width)
		}

		for _, e := range elems {
			es := s.ElementSignature(e)
			if c := es.Count(); c < 1 || c > m {
				t.Fatalf("element %q signature weight %d outside [1, m=%d]", e, c, m)
			}
			if !set.ContainsAll(es) {
				t.Fatalf("element %q signature not superimposed into set signature", e)
			}
			if ok, err := Matches(Superset, set, es); err != nil || !ok {
				t.Fatalf("Superset(set, elem %q) = %v, %v; a member must never be dismissed", e, ok, err)
			}
		}

		// The set signature is a pure OR over element signatures:
		// duplicates and order must not matter.
		seen := make(map[string]bool, len(elems))
		var reversedUnique [][]byte
		for i := len(elems) - 1; i >= 0; i-- {
			if !seen[string(elems[i])] {
				seen[string(elems[i])] = true
				reversedUnique = append(reversedUnique, elems[i])
			}
		}
		if again := s.SetSignature(reversedUnique); !set.Equal(again) {
			t.Fatalf("set signature depends on element order or multiplicity")
		}

		buf := make([]byte, bitset.ByteLen(width))
		if n := set.MarshalBinaryTo(buf); n != len(buf) {
			t.Fatalf("MarshalBinaryTo wrote %d bytes, want %d", n, len(buf))
		}
		back, err := bitset.UnmarshalBinary(width, buf)
		if err != nil {
			t.Fatalf("UnmarshalBinary: %v", err)
		}
		if !set.Equal(back) {
			t.Fatalf("signature did not survive the marshal round trip")
		}
	})
}
