package signature

import (
	"fmt"
	"math"
)

// This file implements §3.2 of the paper: the false-drop probability
// estimators for the two query types and the optimal element-signature
// weight. Both the exact combinatorial forms and the exponential
// approximations used in the paper's analysis are provided; the cost model
// uses the approximations (as the paper does) and the tests check that
// exact, approximate and simulated values agree.

// ExpectedWeight returns m_t (or m_q): the expected number of 1 bits in a
// signature superimposed from d element signatures of weight m in width f,
//
//	m_t = F · (1 − (1 − m/F)^D).
//
// Parameters are float64 because the paper's analysis treats m = m_opt as
// a real number.
func ExpectedWeight(f, m, d float64) float64 {
	if f <= 0 {
		return 0
	}
	return f * (1 - math.Pow(1-m/f, d))
}

// ExpectedWeightApprox is the exponential approximation
// m_t ≈ F·(1 − e^{−mD/F}) valid for m/F ≪ 1.
func ExpectedWeightApprox(f, m, d float64) float64 {
	if f <= 0 {
		return 0
	}
	return f * (1 - math.Exp(-m*d/f))
}

// FalseDropSuperset returns the false-drop probability Fd for a query
// T ⊇ Q (paper eq. 2, exact base):
//
//	Fd = (1 − (1 − m/F)^{D_t})^{m·D_q}
//
// i.e. each of the ~m·D_q distinct 1 bits of the query signature must
// independently hit a 1 bit of the target signature.
func FalseDropSuperset(f, m, dt, dq float64) float64 {
	if dq == 0 {
		return 1 // the empty query matches everything
	}
	p := 1 - math.Pow(1-m/f, dt)
	return math.Pow(p, m*dq)
}

// FalseDropSupersetApprox is the paper's eq. 2 with the exponential
// approximation: Fd ≈ (1 − e^{−m·D_t/F})^{m·D_q}.
func FalseDropSupersetApprox(f, m, dt, dq float64) float64 {
	if dq == 0 {
		return 1
	}
	return math.Pow(1-math.Exp(-m*dt/f), m*dq)
}

// FalseDropSubset returns the false-drop probability for a query T ⊆ Q
// (paper eq. 6). By the duality derived in §3.2.2 (via Appendix A) it is
// eq. 2 with the roles of target and query exchanged:
//
//	Fd = (1 − (1 − m/F)^{D_q})^{m·D_t}
//
// i.e. every 1 bit of the target signature must land inside the 1 bits of
// the query signature.
func FalseDropSubset(f, m, dt, dq float64) float64 {
	if dt == 0 {
		return 1 // the empty target is a subset of everything
	}
	p := 1 - math.Pow(1-m/f, dq)
	return math.Pow(p, m*dt)
}

// FalseDropSubsetApprox is eq. 6 with the exponential approximation:
// Fd ≈ (1 − e^{−m·D_q/F})^{m·D_t}.
func FalseDropSubsetApprox(f, m, dt, dq float64) float64 {
	if dt == 0 {
		return 1
	}
	return math.Pow(1-math.Exp(-m*dq/f), m*dt)
}

// OptimalM returns m_opt = F·ln2 / D_t (paper eq. 3): the element weight
// minimizing the superset false-drop probability for targets of
// cardinality dt. The result is a real number; round and clamp with
// OptimalMInt when an implementable integer weight is needed.
func OptimalM(f, dt float64) float64 {
	if dt <= 0 {
		return f
	}
	return f * math.Ln2 / dt
}

// OptimalMInt returns OptimalM rounded to the nearest integer, clamped to
// [1, f].
func OptimalMInt(f int, dt float64) int {
	m := int(math.Round(OptimalM(float64(f), dt)))
	if m < 1 {
		m = 1
	}
	if m > f {
		m = f
	}
	return m
}

// FalseDropSupersetAtOptimalM returns the paper's eq. 4, the false-drop
// probability when m = m_opt: Fd = (1/2)^{m_opt·D_q}.
func FalseDropSupersetAtOptimalM(f, dt, dq float64) float64 {
	return math.Pow(0.5, OptimalM(f, dt)*dq)
}

// OptimalMSubset returns the weight F·ln2/D_q minimizing the subset
// false-drop probability; the paper notes (§3.2.2) this is impractical as
// a design rule because D_q varies per query.
func OptimalMSubset(f, dq float64) float64 {
	if dq <= 0 {
		return f
	}
	return f * math.Ln2 / dq
}

// Design captures the outcome of a parameter search: the smallest width F
// (as a multiple of step) whose optimal weight keeps the superset
// false-drop probability under the target, following the standard
// signature-file sizing rule Fd = (1/2)^{F·ln2/D_t · D_q}.
type Design struct {
	F  int
	M  int
	Fd float64
}

// Size finds the smallest F ≥ step (rounded up to a multiple of step) such
// that with m = m_opt the false-drop probability for targets of
// cardinality dt and queries of cardinality dq is at most maxFd.
func Size(dt, dq float64, maxFd float64, step int) (Design, error) {
	if maxFd <= 0 || maxFd >= 1 {
		return Design{}, fmt.Errorf("signature: maxFd %v must be in (0,1)", maxFd)
	}
	if step <= 0 {
		step = 8
	}
	// Closed form: Fd = 2^{−(F ln2/Dt)·Dq} ≤ maxFd
	//   ⇔ F ≥ Dt·log2(1/maxFd)/(Dq·ln2).
	need := dt * math.Log2(1/maxFd) / (dq * math.Ln2)
	fi := int(math.Ceil(need/float64(step))) * step
	if fi < step {
		fi = step
	}
	// The closed form assumes a real-valued m_opt; rounding m to an
	// implementable integer can push the exact Fd slightly above the
	// target, so grow F until the exact value complies.
	for {
		m := OptimalMInt(fi, dt)
		fd := FalseDropSuperset(float64(fi), float64(m), dt, dq)
		if fd <= maxFd {
			return Design{F: fi, M: m, Fd: fd}, nil
		}
		fi += step
	}
}
