// Package signature implements superimposed coding for set signatures, the
// technique at the heart of "Evaluation of Signature Files as Set Access
// Facilities in OODBs" (Ishikawa, Kitagawa, Ohbo; SIGMOD 1993).
//
// A signature scheme has two design parameters: the signature width F in
// bits and the weight m, the number of "1" bits in each element signature.
// An element signature is produced by hashing a set element to m distinct
// bit positions in [0, F). A set signature is the bitwise OR
// (superimposition) of the element signatures of the set's members. A query
// signature is formed the same way from the query set.
//
// The package provides the two match conditions of the paper — the
// superset condition for queries T ⊇ Q and the subset condition for
// T ⊆ Q — plus the overlap, equality and membership conditions listed as
// future work in the paper's §6, and the false-drop probability estimators
// of §3.2.
package signature

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"

	"sigfile/internal/bitset"
)

// Hasher maps an element to m distinct bit positions in [0, F). Two
// implementations are provided: DoubleHasher (the default, deterministic
// enhanced double hashing over FNV-64) and IndependentHasher (per-element
// pseudo-random draws, used by the hash ablation to validate the paper's
// ideal-hash assumption).
type Hasher interface {
	// Positions appends the m distinct positions for elem to dst and
	// returns the extended slice.
	Positions(elem []byte, f, m int, dst []int) []int
}

// DoubleHasher derives positions with enhanced double hashing:
// pos_k = h1 + k*h2 + (k³−k)/6 (mod F), skipping duplicates.
//
// Both hash values are passed through a splitmix64 finalizer: raw FNV-64
// leaves its low bits correlated across similar keys, which the hash
// ablation (cmd/sigbench -experiment ablation-hash) exposed as a 6×
// false-drop inflation whenever F is a power of two (pos % F then reads
// only those weak low bits). The finalizer restores the paper's
// ideal-hash assumption at every F.
type DoubleHasher struct{}

// mix64 is the splitmix64 finalizer, a full-avalanche bijection.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Positions implements Hasher.
func (DoubleHasher) Positions(elem []byte, f, m int, dst []int) []int {
	h := fnv.New64a()
	h.Write(elem)
	h1 := mix64(h.Sum64())
	h2 := mix64(h1^0x9e3779b97f4a7c15) | 1 // odd so it cycles all residues

	seen := make(map[int]struct{}, m)
	x := h1
	for k := uint64(0); len(seen) < m; k++ {
		pos := int(x % uint64(f))
		x += h2 + k // enhanced double hashing: the increment itself grows
		if _, dup := seen[pos]; dup {
			continue
		}
		seen[pos] = struct{}{}
		dst = append(dst, pos)
	}
	return dst
}

// IndependentHasher draws m distinct positions with a PRNG seeded from the
// element, approximating m independent uniform draws without replacement.
type IndependentHasher struct{}

// Positions implements Hasher.
func (IndependentHasher) Positions(elem []byte, f, m int, dst []int) []int {
	h := fnv.New64a()
	h.Write(elem)
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	// Partial Fisher-Yates over a sparse permutation of [0, f).
	swap := make(map[int]int, m)
	for k := 0; k < m; k++ {
		j := k + rng.Intn(f-k)
		vj, ok := swap[j]
		if !ok {
			vj = j
		}
		vk, ok := swap[k]
		if !ok {
			vk = k
		}
		swap[j] = vk
		dst = append(dst, vj)
	}
	return dst
}

// Scheme is a superimposed-coding configuration.
type Scheme struct {
	f, m   int
	hasher Hasher
}

// New returns a scheme of width f bits with m bits per element signature,
// using the default DoubleHasher. It fails unless 0 < m ≤ f.
func New(f, m int) (*Scheme, error) {
	return NewWithHasher(f, m, DoubleHasher{})
}

// NewWithHasher is New with an explicit Hasher.
func NewWithHasher(f, m int, h Hasher) (*Scheme, error) {
	if f <= 0 {
		return nil, fmt.Errorf("signature: width F = %d must be positive", f)
	}
	if m <= 0 || m > f {
		return nil, fmt.Errorf("signature: weight m = %d must be in (0, F=%d]", m, f)
	}
	if h == nil {
		h = DoubleHasher{}
	}
	return &Scheme{f: f, m: m, hasher: h}, nil
}

// MustNew is New but panics on invalid parameters; for tests and examples
// with constant arguments.
func MustNew(f, m int) *Scheme {
	s, err := New(f, m)
	if err != nil {
		panic(err)
	}
	return s
}

// F returns the signature width in bits.
func (s *Scheme) F() int { return s.f }

// M returns the element-signature weight.
func (s *Scheme) M() int { return s.m }

// ElementPositions returns the m distinct bit positions of elem's element
// signature in the order produced by the hasher.
func (s *Scheme) ElementPositions(elem []byte) []int {
	return s.hasher.Positions(elem, s.f, s.m, make([]int, 0, s.m))
}

// ElementSignature returns the element signature of elem: F bits with
// exactly m ones.
func (s *Scheme) ElementSignature(elem []byte) *bitset.BitSet {
	sig := bitset.New(s.f)
	s.addElement(sig, elem)
	return sig
}

func (s *Scheme) addElement(sig *bitset.BitSet, elem []byte) {
	var buf [64]int
	for _, pos := range s.hasher.Positions(elem, s.f, s.m, buf[:0]) {
		sig.Set(pos)
	}
}

// SetSignature superimposes the element signatures of all elements.
// An empty set yields the all-zero signature, which vacuously matches
// every superset query with an empty query set and is a subset of every
// query signature — consistent with set semantics (∅ ⊆ X for all X).
func (s *Scheme) SetSignature(elems [][]byte) *bitset.BitSet {
	sig := bitset.New(s.f)
	for _, e := range elems {
		s.addElement(sig, e)
	}
	return sig
}

// SetSignatureStrings is SetSignature for string elements.
func (s *Scheme) SetSignatureStrings(elems []string) *bitset.BitSet {
	sig := bitset.New(s.f)
	for _, e := range elems {
		s.addElement(sig, []byte(e))
	}
	return sig
}

// ErrWidthMismatch is returned when a signature of the wrong width is
// passed to a scheme operation; match it with errors.Is.
var ErrWidthMismatch = errors.New("signature: width mismatch")

// ErrInvalidPredicate is returned when a Predicate value outside the
// defined operators reaches a match or evaluation routine — typically an
// unvalidated value from a parser or the wire; match it with errors.Is.
var ErrInvalidPredicate = errors.New("signature: invalid predicate")

// AddTo superimposes elem's element signature onto sig, which must have
// width F. Used for incremental signature maintenance on updates. It
// returns an error wrapping ErrWidthMismatch if sig's width is not F
// (e.g. a page of signatures read back under a different scheme).
func (s *Scheme) AddTo(sig *bitset.BitSet, elem []byte) error {
	if sig.Len() != s.f {
		return fmt.Errorf("%w: AddTo width %d != F %d", ErrWidthMismatch, sig.Len(), s.f)
	}
	s.addElement(sig, elem)
	return nil
}

// Predicate identifies a set-comparison operator supported by the
// signature match conditions.
type Predicate int

// The supported set predicates. Superset and Subset are the paper's two
// query types; Overlap, Equals and Contains implement the additional
// operators of §2 listed as future work.
const (
	// Superset is T ⊇ Q: the target set contains every query element
	// (the paper's "has-subset").
	Superset Predicate = iota
	// Subset is T ⊆ Q: the target set is contained in the query set
	// (the paper's "in-subset").
	Subset
	// Overlap is T ∩ Q ≠ ∅.
	Overlap
	// Equals is T = Q.
	Equals
	// Contains is the membership operator q ∈ T, the special case of
	// Superset with a singleton query set.
	Contains
)

// String returns the operator's conventional notation.
func (p Predicate) String() string {
	switch p {
	case Superset:
		return "T ⊇ Q"
	case Subset:
		return "T ⊆ Q"
	case Overlap:
		return "T ∩ Q ≠ ∅"
	case Equals:
		return "T = Q"
	case Contains:
		return "q ∈ T"
	default:
		return fmt.Sprintf("Predicate(%d)", int(p))
	}
}

// Valid reports whether p is a defined predicate.
func (p Predicate) Valid() bool { return p >= Superset && p <= Contains }

// Matches evaluates the signature-level match condition of predicate p for
// a target signature against a query signature. A false return guarantees
// the underlying sets cannot satisfy p (no false dismissals); a true
// return makes the object a drop that must still be verified against the
// stored set (false drops are possible). An undefined predicate yields an
// error wrapping ErrInvalidPredicate.
func Matches(p Predicate, target, query *bitset.BitSet) (bool, error) {
	switch p {
	case Superset, Contains:
		// Every 1 in the query signature must be 1 in the target.
		return target.ContainsAll(query), nil
	case Subset:
		// Every 1 in the target signature must be 1 in the query.
		return target.SubsetOf(query), nil
	case Overlap:
		// A shared element forces at least one shared 1 bit. An empty
		// query (or target) cannot overlap anything.
		return target.Intersects(query), nil
	case Equals:
		// Equal sets have identical signatures; unequal weights can still
		// collide, hence verification.
		return target.Equal(query), nil
	default:
		return false, fmt.Errorf("%w: %d", ErrInvalidPredicate, int(p))
	}
}

// EvaluateSets decides predicate p exactly on the underlying sets; this is
// the false-drop resolution test. Elements are compared as raw strings.
// An undefined predicate yields an error wrapping ErrInvalidPredicate.
func EvaluateSets(p Predicate, target, query []string) (bool, error) {
	tset := make(map[string]struct{}, len(target))
	for _, e := range target {
		tset[e] = struct{}{}
	}
	qset := make(map[string]struct{}, len(query))
	for _, e := range query {
		qset[e] = struct{}{}
	}
	switch p {
	case Superset, Contains:
		for e := range qset {
			if _, ok := tset[e]; !ok {
				return false, nil
			}
		}
		return true, nil
	case Subset:
		for e := range tset {
			if _, ok := qset[e]; !ok {
				return false, nil
			}
		}
		return true, nil
	case Overlap:
		for e := range qset {
			if _, ok := tset[e]; ok {
				return true, nil
			}
		}
		return false, nil
	case Equals:
		if len(tset) != len(qset) {
			return false, nil
		}
		for e := range qset {
			if _, ok := tset[e]; !ok {
				return false, nil
			}
		}
		return true, nil
	default:
		return false, fmt.Errorf("%w: %d", ErrInvalidPredicate, int(p))
	}
}
