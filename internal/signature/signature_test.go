package signature

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sigfile/internal/bitset"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		f, m int
		ok   bool
	}{
		{250, 2, true}, {8, 8, true}, {1, 1, true},
		{0, 1, false}, {-5, 1, false}, {10, 0, false}, {10, 11, false}, {10, -1, false},
	}
	for _, c := range cases {
		_, err := New(c.f, c.m)
		if (err == nil) != c.ok {
			t.Errorf("New(%d,%d): err=%v, want ok=%v", c.f, c.m, err, c.ok)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0,0) did not panic")
		}
	}()
	MustNew(0, 0)
}

func TestElementSignatureWeight(t *testing.T) {
	for _, hasher := range []Hasher{DoubleHasher{}, IndependentHasher{}} {
		for _, cfg := range []struct{ f, m int }{{250, 2}, {500, 35}, {64, 64}, {8, 3}} {
			s, err := NewWithHasher(cfg.f, cfg.m, hasher)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 50; i++ {
				sig := s.ElementSignature([]byte(fmt.Sprintf("elem-%d", i)))
				if sig.Len() != cfg.f {
					t.Fatalf("%T F=%d m=%d: width %d", hasher, cfg.f, cfg.m, sig.Len())
				}
				if sig.Count() != cfg.m {
					t.Fatalf("%T F=%d m=%d: weight %d", hasher, cfg.f, cfg.m, sig.Count())
				}
			}
		}
	}
}

func TestElementSignatureDeterministic(t *testing.T) {
	s := MustNew(500, 4)
	a := s.ElementSignature([]byte("Baseball"))
	b := s.ElementSignature([]byte("Baseball"))
	if !a.Equal(b) {
		t.Fatal("element signature is not deterministic")
	}
	c := s.ElementSignature([]byte("Fishing"))
	if a.Equal(c) {
		t.Fatal("distinct elements produced identical signatures (suspicious for F=500)")
	}
}

func TestSetSignatureIsUnionOfElements(t *testing.T) {
	s := MustNew(250, 3)
	elems := []string{"Baseball", "Fishing", "Golf"}
	set := s.SetSignatureStrings(elems)
	union := s.SetSignatureStrings(nil)
	if union.Any() {
		t.Fatal("empty set signature is not all-zero")
	}
	for _, e := range elems {
		union.Or(s.ElementSignature([]byte(e)))
	}
	if !set.Equal(union) {
		t.Fatal("set signature != OR of element signatures")
	}
	for _, e := range elems {
		if !set.ContainsAll(s.ElementSignature([]byte(e))) {
			t.Fatalf("set signature does not contain element %s", e)
		}
	}
}

func TestAddToIncremental(t *testing.T) {
	s := MustNew(100, 5)
	sig := s.SetSignatureStrings([]string{"a", "b"})
	if err := s.AddTo(sig, []byte("c")); err != nil {
		t.Fatal(err)
	}
	if !sig.Equal(s.SetSignatureStrings([]string{"a", "b", "c"})) {
		t.Fatal("AddTo does not match batch construction")
	}
	err := s.AddTo(MustNew(99, 5).SetSignatureStrings(nil), []byte("x"))
	if !errors.Is(err, ErrWidthMismatch) {
		t.Fatalf("AddTo with wrong width: err = %v, want ErrWidthMismatch", err)
	}
}

// mustMatch and mustEval unwrap the error returns for the defined
// predicates, where an error would itself be a test failure.
func mustMatch(t *testing.T, p Predicate, target, query *bitset.BitSet) bool {
	t.Helper()
	ok, err := Matches(p, target, query)
	if err != nil {
		t.Fatalf("Matches(%v): %v", p, err)
	}
	return ok
}

func mustEval(t *testing.T, p Predicate, target, query []string) bool {
	t.Helper()
	ok, err := EvaluateSets(p, target, query)
	if err != nil {
		t.Fatalf("EvaluateSets(%v): %v", p, err)
	}
	return ok
}

// TestPaperFigure1 reproduces the paper's Figure 1 semantics: with any
// scheme, a target that truly contains the query must match (no false
// dismissals), and for the worked example sizes, unrelated targets can
// still match (false drops are possible but targets missing query bits are
// rejected).
func TestPaperFigure1Semantics(t *testing.T) {
	s := MustNew(8, 2)
	query := []string{"Baseball", "Fishing"}
	qsig := s.SetSignatureStrings(query)

	actual := []string{"Baseball", "Golf", "Fishing"} // ⊇ query
	asig := s.SetSignatureStrings(actual)
	if !mustMatch(t, Superset, asig, qsig) {
		t.Fatal("actual drop was dismissed — signature files must never false-dismiss")
	}
	if !mustEval(t, Superset, actual, query) {
		t.Fatal("EvaluateSets disagrees on a true superset")
	}
}

func TestMatchesAllPredicates(t *testing.T) {
	s := MustNew(512, 4) // wide enough that these tiny sets do not collide
	T := s.SetSignatureStrings([]string{"a", "b", "c"})
	sub := s.SetSignatureStrings([]string{"a", "b"})
	disjoint := s.SetSignatureStrings([]string{"x", "y"})
	same := s.SetSignatureStrings([]string{"c", "b", "a"})

	if !mustMatch(t, Superset, T, sub) {
		t.Error("T ⊇ {a,b} should match")
	}
	if mustMatch(t, Superset, sub, T) {
		t.Error("{a,b} ⊉ {a,b,c} at F=512")
	}
	if !mustMatch(t, Subset, sub, T) {
		t.Error("{a,b} ⊆ T should match")
	}
	if !mustMatch(t, Overlap, T, sub) {
		t.Error("overlap should match")
	}
	if mustMatch(t, Overlap, T, disjoint) {
		t.Error("disjoint small sets at F=512 should not overlap at signature level")
	}
	if !mustMatch(t, Equals, T, same) {
		t.Error("equal sets must have equal signatures")
	}
	if mustMatch(t, Equals, T, sub) {
		t.Error("different-weight signatures reported equal")
	}
	q := s.ElementSignature([]byte("b"))
	if !mustMatch(t, Contains, T, q) {
		t.Error("b ∈ T should match")
	}
}

func TestEvaluateSetsAllPredicates(t *testing.T) {
	T := []string{"a", "b", "c"}
	cases := []struct {
		p    Predicate
		q    []string
		want bool
	}{
		{Superset, []string{"a", "c"}, true},
		{Superset, []string{"a", "z"}, false},
		{Superset, nil, true},
		{Subset, []string{"a", "b", "c", "d"}, true},
		{Subset, []string{"a", "b"}, false},
		{Overlap, []string{"z", "c"}, true},
		{Overlap, []string{"z", "w"}, false},
		{Overlap, nil, false},
		{Equals, []string{"c", "a", "b"}, true},
		{Equals, []string{"a", "b"}, false},
		{Contains, []string{"b"}, true},
		{Contains, []string{"q"}, false},
	}
	for _, c := range cases {
		if got := mustEval(t, c.p, T, c.q); got != c.want {
			t.Errorf("EvaluateSets(%v, T, %v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestPredicateString(t *testing.T) {
	for p := Superset; p <= Contains; p++ {
		if !p.Valid() {
			t.Errorf("%d should be valid", p)
		}
		if p.String() == "" {
			t.Errorf("empty String for %d", p)
		}
	}
	if Predicate(99).Valid() {
		t.Error("Predicate(99) reported valid")
	}
	if Predicate(99).String() != "Predicate(99)" {
		t.Errorf("fallback String = %q", Predicate(99).String())
	}
}

func TestInvalidPredicateErrors(t *testing.T) {
	s := MustNew(8, 1)
	a := s.SetSignatureStrings([]string{"x"})
	if ok, err := Matches(Predicate(42), a, a); !errors.Is(err, ErrInvalidPredicate) || ok {
		t.Fatalf("Matches(Predicate(42)) = %v, %v; want false, ErrInvalidPredicate", ok, err)
	}
	if ok, err := EvaluateSets(Predicate(42), []string{"x"}, []string{"x"}); !errors.Is(err, ErrInvalidPredicate) || ok {
		t.Fatalf("EvaluateSets(Predicate(42)) = %v, %v; want false, ErrInvalidPredicate", ok, err)
	}
}

// Property: no false dismissals for any predicate — if the sets satisfy
// the predicate, the signatures must match.
func TestPropertyNoFalseDismissals(t *testing.T) {
	s := MustNew(250, 3)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		universe := make([]string, 40)
		for i := range universe {
			universe[i] = fmt.Sprintf("e%02d", i)
		}
		target := sample(rng, universe, 1+rng.Intn(10))
		var query []string
		switch rng.Intn(3) {
		case 0: // query ⊆ target (superset/overlap/contains hold)
			query = sample(rng, target, 1+rng.Intn(len(target)))
		case 1: // query ⊇ target (subset holds)
			query = append(append([]string{}, target...), sample(rng, universe, rng.Intn(5))...)
		case 2: // query = target
			query = append([]string{}, target...)
		}
		tsig := s.SetSignatureStrings(target)
		qsig := s.SetSignatureStrings(query)
		for _, p := range []Predicate{Superset, Subset, Overlap, Equals} {
			if mustEval(t, p, target, query) && !mustMatch(t, p, tsig, qsig) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func sample(rng *rand.Rand, pool []string, n int) []string {
	if n > len(pool) {
		n = len(pool)
	}
	idx := rng.Perm(len(pool))[:n]
	out := make([]string, n)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}

func TestExpectedWeightFormulas(t *testing.T) {
	// m_t(D=1) = m exactly.
	if got := ExpectedWeight(500, 4, 1); math.Abs(got-4) > 1e-9 {
		t.Fatalf("ExpectedWeight(D=1) = %v, want 4", got)
	}
	// Monotone in D and bounded by F.
	prev := 0.0
	for d := 1.0; d <= 1000; d *= 2 {
		w := ExpectedWeight(500, 4, d)
		if w <= prev || w > 500 {
			t.Fatalf("ExpectedWeight not monotone/bounded at D=%v: %v", d, w)
		}
		prev = w
	}
	// Approximation close to exact for m/F small.
	exact := ExpectedWeight(2500, 3, 100)
	approx := ExpectedWeightApprox(2500, 3, 100)
	if math.Abs(exact-approx)/exact > 0.01 {
		t.Fatalf("weight approximation off: exact %v approx %v", exact, approx)
	}
}

func TestOptimalM(t *testing.T) {
	// Paper's examples: F=250, Dt=10 → m_opt ≈ 17.3; F=500 → ≈ 34.7.
	if got := OptimalM(250, 10); math.Abs(got-17.328) > 0.01 {
		t.Fatalf("OptimalM(250,10) = %v", got)
	}
	if got := OptimalM(500, 10); math.Abs(got-34.657) > 0.01 {
		t.Fatalf("OptimalM(500,10) = %v", got)
	}
	if OptimalMInt(250, 10) != 17 {
		t.Fatalf("OptimalMInt(250,10) = %d", OptimalMInt(250, 10))
	}
	// Clamping.
	if OptimalMInt(4, 100) != 1 {
		t.Fatalf("OptimalMInt should clamp low: %d", OptimalMInt(4, 100))
	}
	if OptimalMInt(8, 0.001) != 8 {
		t.Fatalf("OptimalMInt should clamp high: %d", OptimalMInt(8, 0.001))
	}
}

func TestFalseDropMinimizedAtOptimalM(t *testing.T) {
	// Fd(m) should be minimized near m_opt = F ln2 / Dt.
	const f, dt, dq = 500.0, 10.0, 3.0
	mopt := OptimalM(f, dt)
	fdOpt := FalseDropSupersetApprox(f, mopt, dt, dq)
	for _, m := range []float64{mopt / 2, mopt * 2} {
		if FalseDropSupersetApprox(f, m, dt, dq) < fdOpt {
			t.Fatalf("Fd(m=%v) < Fd(m_opt=%v)", m, mopt)
		}
	}
	// eq. 4 agrees with eq. 2 at m = m_opt.
	eq4 := FalseDropSupersetAtOptimalM(f, dt, dq)
	eq2 := FalseDropSupersetApprox(f, mopt, dt, dq)
	if relErr(eq4, eq2) > 1e-6 {
		t.Fatalf("eq4 %v != eq2 %v at m_opt", eq4, eq2)
	}
}

func relErr(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func TestFalseDropDuality(t *testing.T) {
	// Fd_⊆(F,m,Dt,Dq) = Fd_⊇(F,m,Dq,Dt): the two estimators are duals.
	for _, c := range []struct{ f, m, dt, dq float64 }{
		{500, 2, 10, 100}, {250, 2, 10, 5}, {2500, 3, 100, 300},
	} {
		a := FalseDropSubset(c.f, c.m, c.dt, c.dq)
		b := FalseDropSuperset(c.f, c.m, c.dq, c.dt)
		if relErr(a, b) > 1e-12 {
			t.Fatalf("duality broken at %+v: %v vs %v", c, a, b)
		}
	}
}

func TestFalseDropEdgeCases(t *testing.T) {
	if FalseDropSuperset(500, 2, 10, 0) != 1 {
		t.Fatal("empty query should have Fd=1 for superset")
	}
	if FalseDropSubset(500, 2, 0, 10) != 1 {
		t.Fatal("empty target should have Fd=1 for subset")
	}
	// Fd in [0,1] over a parameter sweep.
	for m := 1.0; m <= 64; m++ {
		for _, dq := range []float64{1, 5, 10, 100} {
			fd := FalseDropSuperset(500, m, 10, dq)
			if fd < 0 || fd > 1 || math.IsNaN(fd) {
				t.Fatalf("Fd out of range: m=%v dq=%v fd=%v", m, dq, fd)
			}
		}
	}
}

// TestFalseDropMatchesSimulation validates eq. 2 and eq. 6 against a Monte
// Carlo run of the real hashing pipeline: the predicted and measured false
// drop rates must agree within sampling error. This is the core empirical
// check that the reproduction's hash function satisfies the paper's
// ideal-hash assumption.
func TestFalseDropMatchesSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo validation skipped in -short mode")
	}
	const (
		fBits  = 120
		m      = 2
		dt     = 10
		dq     = 4
		v      = 2000
		trials = 30000
	)
	rng := rand.New(rand.NewSource(42))
	s := MustNew(fBits, m)
	universe := make([]string, v)
	for i := range universe {
		universe[i] = fmt.Sprintf("val-%04d", i)
	}
	query := sample(rng, universe, dq)
	qsig := s.SetSignatureStrings(query)

	drops, eligible := 0, 0
	for i := 0; i < trials; i++ {
		target := sample(rng, universe, dt)
		if mustEval(t, Superset, target, query) {
			continue // exclude actual drops per the Fd definition
		}
		eligible++
		if mustMatch(t, Superset, s.SetSignatureStrings(target), qsig) {
			drops++
		}
	}
	measured := float64(drops) / float64(eligible)
	predicted := FalseDropSuperset(fBits, m, dt, dq)
	// 3-sigma binomial tolerance plus a small model-error allowance.
	sigma := math.Sqrt(predicted * (1 - predicted) / float64(eligible))
	tol := 3*sigma + 0.15*predicted
	if math.Abs(measured-predicted) > tol {
		t.Fatalf("superset Fd: measured %v predicted %v (tol %v, eligible %d)",
			measured, predicted, tol, eligible)
	}
}

func TestSize(t *testing.T) {
	d, err := Size(10, 1, 1e-4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d.Fd > 1e-4 {
		t.Fatalf("Size returned Fd %v > target", d.Fd)
	}
	if d.F%8 != 0 || d.F <= 0 {
		t.Fatalf("Size returned F=%d not a positive multiple of 8", d.F)
	}
	if _, err := Size(10, 1, 0, 8); err == nil {
		t.Fatal("Size accepted maxFd=0")
	}
	if _, err := Size(10, 1, 1.5, 8); err == nil {
		t.Fatal("Size accepted maxFd>1")
	}
}

func BenchmarkSetSignature(b *testing.B) {
	s := MustNew(500, 2)
	elems := make([][]byte, 10)
	for i := range elems {
		elems[i] = []byte(fmt.Sprintf("element-%d", i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.SetSignature(elems)
	}
}
