package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sigfile/internal/pagestore"
)

func newTree(t *testing.T) *Tree {
	t.Helper()
	tr, err := New(pagestore.NewMemFile())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewRequiresEmptyFile(t *testing.T) {
	f := pagestore.NewMemFile()
	if _, err := New(f); err != nil {
		t.Fatal(err)
	}
	if _, err := New(f); err == nil {
		t.Fatal("New accepted non-empty file")
	}
}

func TestEmptyTree(t *testing.T) {
	tr := newTree(t)
	if tr.Height() != 1 || tr.Keys() != 0 {
		t.Fatalf("empty tree: height=%d keys=%d", tr.Height(), tr.Keys())
	}
	oids, err := tr.Lookup([]byte("nothing"))
	if err != nil {
		t.Fatal(err)
	}
	if len(oids) != 0 {
		t.Fatalf("lookup in empty tree returned %v", oids)
	}
	if err := tr.Delete([]byte("nothing"), 1); err != nil {
		t.Fatalf("delete of missing key errored: %v", err)
	}
}

func TestKeyValidation(t *testing.T) {
	tr := newTree(t)
	if err := tr.Insert(nil, 1); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := tr.Insert(make([]byte, MaxKeyLen+1), 1); err == nil {
		t.Fatal("oversized key accepted")
	}
	if _, err := tr.Lookup([]byte{}); err == nil {
		t.Fatal("empty key lookup accepted")
	}
	if err := tr.Delete([]byte{}, 1); err == nil {
		t.Fatal("empty key delete accepted")
	}
}

func TestInsertLookupSingle(t *testing.T) {
	tr := newTree(t)
	key := []byte("Baseball")
	for _, oid := range []uint64{5, 3, 9, 3} { // 3 twice: idempotent
		if err := tr.Insert(key, oid); err != nil {
			t.Fatal(err)
		}
	}
	oids, err := tr.Lookup(key)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{3, 5, 9}
	if !equalU64(oids, want) {
		t.Fatalf("Lookup = %v, want %v", oids, want)
	}
	if tr.Keys() != 1 {
		t.Fatalf("Keys = %d, want 1", tr.Keys())
	}
	ok, err := tr.Contains(key, 5)
	if err != nil || !ok {
		t.Fatalf("Contains(5) = %v, %v", ok, err)
	}
	ok, _ = tr.Contains(key, 6)
	if ok {
		t.Fatal("Contains(6) true")
	}
}

func TestDeletePostingsAndKeys(t *testing.T) {
	tr := newTree(t)
	key := []byte("k")
	for oid := uint64(1); oid <= 5; oid++ {
		if err := tr.Insert(key, oid); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Delete(key, 3); err != nil {
		t.Fatal(err)
	}
	oids, _ := tr.Lookup(key)
	if !equalU64(oids, []uint64{1, 2, 4, 5}) {
		t.Fatalf("after delete: %v", oids)
	}
	// Deleting a missing OID is a no-op.
	if err := tr.Delete(key, 99); err != nil {
		t.Fatal(err)
	}
	for _, oid := range []uint64{1, 2, 4, 5} {
		if err := tr.Delete(key, oid); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Keys() != 0 {
		t.Fatalf("Keys = %d after removing all postings", tr.Keys())
	}
	if oids, _ := tr.Lookup(key); len(oids) != 0 {
		t.Fatalf("key survived: %v", oids)
	}
}

func TestManyKeysForcesSplits(t *testing.T) {
	tr := newTree(t)
	const n = 5000
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("element-%05d", i))
		if err := tr.Insert(key, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
		if err := tr.Insert(key, uint64(i+100000)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Keys() != n {
		t.Fatalf("Keys = %d, want %d", tr.Keys(), n)
	}
	if tr.Height() < 2 {
		t.Fatalf("height %d; %d keys should have split the root", tr.Height(), n)
	}
	for _, i := range []int{0, 1, 1234, n - 1} {
		key := []byte(fmt.Sprintf("element-%05d", i))
		oids, err := tr.Lookup(key)
		if err != nil {
			t.Fatal(err)
		}
		if !equalU64(oids, []uint64{uint64(i + 1), uint64(i + 100000)}) {
			t.Fatalf("key %s: %v", key, oids)
		}
	}
	pb, err := tr.Breakdown()
	if err != nil {
		t.Fatal(err)
	}
	if pb.Leaf == 0 || pb.Internal == 0 {
		t.Fatalf("breakdown %+v should have both node kinds", pb)
	}
	if pb.Leaf+pb.Internal+pb.Overflow+1 != tr.Pages() {
		t.Fatalf("breakdown %+v does not account for %d pages", pb, tr.Pages())
	}
}

func TestLookupCostMatchesHeight(t *testing.T) {
	tr := newTree(t)
	for i := 0; i < 5000; i++ {
		if err := tr.Insert([]byte(fmt.Sprintf("element-%05d", i)), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	tr.Stats().Reset()
	if _, err := tr.Lookup([]byte("element-02500")); err != nil {
		t.Fatal(err)
	}
	// Inline postings: a lookup reads exactly one page per level — the
	// paper's rc = height + 1 with their height convention (levels above
	// the leaves), i.e. our Height() levels in total.
	if got := tr.Stats().Reads(); got != int64(tr.Height()) {
		t.Fatalf("lookup cost %d reads, want height %d", got, tr.Height())
	}
}

func TestOverflowChains(t *testing.T) {
	tr := newTree(t)
	key := []byte("hot")
	const n = 3000 // ≫ inline capacity, forces overflow chain
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		if err := tr.Insert(key, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	oids, err := tr.Lookup(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(oids) != n {
		t.Fatalf("overflow postings: %d, want %d", len(oids), n)
	}
	for i, oid := range oids {
		if oid != uint64(i+1) {
			t.Fatalf("postings not sorted/complete at %d: %d", i, oid)
		}
	}
	pb, err := tr.Breakdown()
	if err != nil {
		t.Fatal(err)
	}
	if pb.Overflow == 0 {
		t.Fatal("no overflow pages for 3000 postings")
	}
	// Duplicate insert into overflow is still idempotent.
	if err := tr.Insert(key, 17); err != nil {
		t.Fatal(err)
	}
	oids, _ = tr.Lookup(key)
	if len(oids) != n {
		t.Fatalf("duplicate insert grew postings to %d", len(oids))
	}
	// Delete from overflow.
	if err := tr.Delete(key, 17); err != nil {
		t.Fatal(err)
	}
	oids, _ = tr.Lookup(key)
	if len(oids) != n-1 {
		t.Fatalf("delete from overflow: %d", len(oids))
	}
	for _, oid := range oids {
		if oid == 17 {
			t.Fatal("oid 17 survived delete")
		}
	}
}

func TestRange(t *testing.T) {
	tr := newTree(t)
	for i := 0; i < 100; i++ {
		if err := tr.Insert([]byte(fmt.Sprintf("k%03d", i)), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	err := tr.Range([]byte("k010"), []byte("k020"), func(key []byte, oids []uint64) bool {
		got = append(got, string(key))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != "k010" || got[9] != "k019" {
		t.Fatalf("Range = %v", got)
	}
	// Full scan.
	count := 0
	if err := tr.Range(nil, nil, func([]byte, []uint64) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("full Range saw %d keys", count)
	}
	// Early stop.
	count = 0
	tr.Range(nil, nil, func([]byte, []uint64) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early stop saw %d keys", count)
	}
}

func TestOpenPersistedTree(t *testing.T) {
	f := pagestore.NewMemFile()
	tr, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := tr.Insert([]byte(fmt.Sprintf("key-%04d", i)), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	tr2, err := Open(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Keys() != tr.Keys() || tr2.Height() != tr.Height() {
		t.Fatalf("reopened: keys=%d height=%d, want %d/%d", tr2.Keys(), tr2.Height(), tr.Keys(), tr.Height())
	}
	oids, err := tr2.Lookup([]byte("key-1500"))
	if err != nil {
		t.Fatal(err)
	}
	if !equalU64(oids, []uint64{1501}) {
		t.Fatalf("reopened lookup: %v", oids)
	}
	// Open on an empty file bootstraps a new tree.
	tr3, err := Open(pagestore.NewMemFile())
	if err != nil {
		t.Fatal(err)
	}
	if tr3.Keys() != 0 {
		t.Fatal("Open on empty file not fresh")
	}
	// Open on garbage fails.
	g := pagestore.NewMemFile()
	g.Allocate()
	buf := make([]byte, pagestore.PageSize)
	buf[0] = 0xff
	g.WritePage(0, buf)
	if _, err := Open(g); err == nil {
		t.Fatal("Open accepted garbage meta page")
	}
}

func TestIOErrorPropagation(t *testing.T) {
	ff := pagestore.NewFaultFile(pagestore.NewMemFile())
	tr, err := New(ff)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := tr.Insert([]byte(fmt.Sprintf("k%02d", i)), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	ff.FailReadAfter(0)
	if _, err := tr.Lookup([]byte("k50")); err == nil {
		t.Fatal("Lookup swallowed read fault")
	}
	ff.FailWriteAfter(0)
	if err := tr.Insert([]byte("k50"), 12345); err == nil {
		t.Fatal("Insert swallowed write fault")
	}
}

// Property: the tree behaves like map[string]set[uint64] under random
// insert/delete/lookup sequences, including keys large enough to force
// entry spills.
func TestPropertyTreeActsLikePostingsMap(t *testing.T) {
	f := func(seed int64) bool {
		tr, err := New(pagestore.NewMemFile())
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		model := map[string]map[uint64]bool{}
		keys := make([]string, 30)
		for i := range keys {
			keys[i] = fmt.Sprintf("key-%02d", i)
		}
		for step := 0; step < 400; step++ {
			key := keys[rng.Intn(len(keys))]
			oid := uint64(rng.Intn(200) + 1)
			switch rng.Intn(3) {
			case 0:
				if err := tr.Insert([]byte(key), oid); err != nil {
					return false
				}
				if model[key] == nil {
					model[key] = map[uint64]bool{}
				}
				model[key][oid] = true
			case 1:
				if err := tr.Delete([]byte(key), oid); err != nil {
					return false
				}
				if model[key] != nil {
					delete(model[key], oid)
					if len(model[key]) == 0 {
						delete(model, key)
					}
				}
			case 2:
				got, err := tr.Lookup([]byte(key))
				if err != nil {
					return false
				}
				var want []uint64
				for o := range model[key] {
					want = append(want, o)
				}
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				if !equalU64(got, want) {
					return false
				}
			}
		}
		if tr.Keys() != len(model) {
			return false
		}
		// Final verification of every key via Range.
		seen := map[string][]uint64{}
		if err := tr.Range(nil, nil, func(k []byte, oids []uint64) bool {
			seen[string(k)] = oids
			return true
		}); err != nil {
			return false
		}
		if len(seen) != len(model) {
			return false
		}
		for k, oset := range model {
			var want []uint64
			for o := range oset {
				want = append(want, o)
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if !equalU64(seen[k], want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: keys come back from Range in strictly ascending order no
// matter the insertion order.
func TestPropertyRangeOrdered(t *testing.T) {
	f := func(seed int64) bool {
		tr, err := New(pagestore.NewMemFile())
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(400)
		for i := 0; i < n; i++ {
			key := make([]byte, 1+rng.Intn(20))
			rng.Read(key)
			if err := tr.Insert(key, uint64(i+1)); err != nil {
				return false
			}
		}
		var prev []byte
		ok := true
		tr.Range(nil, nil, func(k []byte, _ []uint64) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				ok = false
				return false
			}
			prev = append(prev[:0], k...)
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkInsert(b *testing.B) {
	tr, err := New(pagestore.NewMemFile())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert([]byte(fmt.Sprintf("element-%07d", i%100000)), uint64(i+1))
	}
}

func BenchmarkLookup(b *testing.B) {
	tr, err := New(pagestore.NewMemFile())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 50000; i++ {
		tr.Insert([]byte(fmt.Sprintf("element-%07d", i)), uint64(i+1))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Lookup([]byte(fmt.Sprintf("element-%07d", i%50000)))
	}
}
