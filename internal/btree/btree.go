// Package btree implements a page-based B⁺-tree mapping variable-length
// byte-string keys to postings lists of OIDs. It is the storage substrate
// of the nested index (NIX) that the paper compares the signature files
// against: each leaf entry is "(key value, list of OIDs of objects whose
// indexed set attribute contains that value)", exactly the leaf format of
// §4.3.
//
// The tree lives in a pagestore.File, so every traversal is accounted in
// page accesses and can be compared against the paper's analytical lookup
// cost rc = (tree height) + 1. Small postings lists are stored inline in
// the leaf entry (matching the paper's leaf-entry size model
// Il = d·oid + kl + mid); a postings list whose entry would exceed half a
// page moves to a chain of overflow pages so that skewed workloads (the
// Zipf extension) remain correct.
//
// Structure-modifying operations split nodes on overflow; underfull nodes
// are not merged (deletes only shrink postings), a common simplification
// that does not affect the paper's read-path analysis.
package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"sigfile/internal/obs"
	"sigfile/internal/pagestore"
)

// Process-wide structural counters, exported through the obs registry so
// the observability surfaces (sigbench -metrics, Prometheus text) can
// relate lookup traffic to tree maintenance (splits) without touching the
// per-call page accounting that the paper's cost comparisons rely on.
var (
	obsLookups = obs.Default().Counter("sigfile_btree_lookups_total")
	obsInserts = obs.Default().Counter("sigfile_btree_inserts_total")
	obsDeletes = obs.Default().Counter("sigfile_btree_deletes_total")
	obsSplits  = obs.Default().Counter("sigfile_btree_splits_total")
)

// MaxKeyLen is the largest accepted key length in bytes. It is chosen so
// that any node entry fits in half a page, which guarantees node splits
// always succeed.
const MaxKeyLen = 1024

const (
	typeInternal = 1
	typeLeaf     = 2
	typeOverflow = 3

	metaMagic = 0x4249584e // "NIXB"

	// nodeCapacity is the serialized-size budget for a node's entries.
	nodeHeaderSize = 8 // type(1) + nkeys(2) + next/child0(4) + pad(1)
	nodeCapacity   = pagestore.PageSize - nodeHeaderSize
	// entryMax bounds one serialized entry so a split always yields two
	// fitting halves.
	entryMax = nodeCapacity / 2

	// overflowHeader = type(1) + count(2) + next(4).
	overflowHeader  = 7
	overflowPerPage = (pagestore.PageSize - overflowHeader) / 8
)

// Tree is a B⁺-tree over a page file. Create one with New (fresh file) or
// Open (existing file). A Tree is not safe for concurrent mutation; wrap
// it if shared.
type Tree struct {
	file   pagestore.File
	root   pagestore.PageID
	height int // number of levels, 1 = root is a leaf
	nkeys  int // number of distinct keys
}

// New initializes a B⁺-tree in an empty page file.
func New(file pagestore.File) (*Tree, error) {
	if file.NumPages() != 0 {
		return nil, fmt.Errorf("btree: New requires an empty file; use Open")
	}
	// Page 0 is the meta page; page 1 the initial empty leaf root.
	if _, err := file.Allocate(); err != nil {
		return nil, fmt.Errorf("btree: %w", err)
	}
	rootID, err := file.Allocate()
	if err != nil {
		return nil, fmt.Errorf("btree: %w", err)
	}
	t := &Tree{file: file, root: rootID, height: 1}
	if err := t.writeNode(&node{id: rootID, leaf: true}); err != nil {
		return nil, err
	}
	if err := t.writeMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

// Open loads a B⁺-tree previously created by New in the file.
func Open(file pagestore.File) (*Tree, error) {
	if file.NumPages() == 0 {
		return New(file)
	}
	buf := make([]byte, pagestore.PageSize)
	if err := file.ReadPage(0, buf); err != nil {
		return nil, fmt.Errorf("btree: read meta: %w", err)
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != metaMagic {
		return nil, fmt.Errorf("btree: bad magic in meta page")
	}
	t := &Tree{
		file:   file,
		root:   pagestore.PageID(binary.LittleEndian.Uint32(buf[4:8])),
		height: int(binary.LittleEndian.Uint32(buf[8:12])),
		nkeys:  int(binary.LittleEndian.Uint64(buf[12:20])),
	}
	return t, nil
}

func (t *Tree) writeMeta() error {
	buf := make([]byte, pagestore.PageSize)
	binary.LittleEndian.PutUint32(buf[0:4], metaMagic)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(t.root))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(t.height))
	binary.LittleEndian.PutUint64(buf[12:20], uint64(t.nkeys))
	if err := t.file.WritePage(0, buf); err != nil {
		return fmt.Errorf("btree: write meta: %w", err)
	}
	return nil
}

// Height returns the number of levels (1 = the root is a leaf). The
// paper's lookup cost is rc = Height() + overflow-chain length, typically
// Height() itself since postings are inline.
func (t *Tree) Height() int { return t.height }

// Keys returns the number of distinct keys in the tree.
func (t *Tree) Keys() int { return t.nkeys }

// Pages returns the total number of pages the tree occupies, including
// the meta page.
func (t *Tree) Pages() int { return t.file.NumPages() }

// Stats exposes the page-access counters of the underlying file.
func (t *Tree) Stats() *pagestore.Stats { return t.file.Stats() }

// ---------------------------------------------------------------------------
// Node representation and codec

type leafEntry struct {
	key      []byte
	oids     []uint64         // inline postings, sorted; nil if overflow
	overflow pagestore.PageID // head of overflow chain if nonzero
	count    uint32           // total postings when overflow is used
}

type node struct {
	id   pagestore.PageID
	leaf bool
	// Internal nodes: len(children) == len(keys)+1; subtree children[i]
	// holds keys k with keys[i-1] <= k < keys[i].
	keys     [][]byte
	children []pagestore.PageID
	// Leaf nodes.
	entries []leafEntry
	next    pagestore.PageID // right sibling, 0 = none
}

func (e *leafEntry) size() int {
	n := uvarintLen(uint64(len(e.key))) + len(e.key) + 1 // key + flag
	if e.overflow != 0 {
		return n + 8 // count(4) + page(4)
	}
	return n + uvarintLen(uint64(len(e.oids))) + 8*len(e.oids)
}

func internalEntrySize(key []byte) int {
	return uvarintLen(uint64(len(key))) + len(key) + 4
}

func (n *node) size() int {
	sz := 0
	if n.leaf {
		for i := range n.entries {
			sz += n.entries[i].size()
		}
		return sz
	}
	for _, k := range n.keys {
		sz += internalEntrySize(k)
	}
	return sz
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func (t *Tree) readNode(id pagestore.PageID) (*node, error) {
	buf := make([]byte, pagestore.PageSize)
	if err := t.file.ReadPage(id, buf); err != nil {
		return nil, fmt.Errorf("btree: read node %d: %w", id, err)
	}
	return decodeNode(id, buf)
}

func decodeNode(id pagestore.PageID, buf []byte) (*node, error) {
	n := &node{id: id}
	typ := buf[0]
	nkeys := int(binary.LittleEndian.Uint16(buf[1:3]))
	link := pagestore.PageID(binary.LittleEndian.Uint32(buf[3:7]))
	pos := nodeHeaderSize
	switch typ {
	case typeLeaf:
		n.leaf = true
		n.next = link
		n.entries = make([]leafEntry, 0, nkeys)
		for i := 0; i < nkeys; i++ {
			key, np, err := readBytes(buf, pos)
			if err != nil {
				return nil, fmt.Errorf("btree: node %d entry %d: %w", id, i, err)
			}
			pos = np
			if pos >= len(buf) {
				return nil, fmt.Errorf("btree: node %d entry %d truncated", id, i)
			}
			flag := buf[pos]
			pos++
			e := leafEntry{key: key}
			if flag == 1 {
				if pos+8 > len(buf) {
					return nil, fmt.Errorf("btree: node %d entry %d overflow ref truncated", id, i)
				}
				e.count = binary.LittleEndian.Uint32(buf[pos : pos+4])
				e.overflow = pagestore.PageID(binary.LittleEndian.Uint32(buf[pos+4 : pos+8]))
				pos += 8
			} else {
				cnt, np2, err := readUvarint(buf, pos)
				if err != nil {
					return nil, fmt.Errorf("btree: node %d entry %d count: %w", id, i, err)
				}
				pos = np2
				if pos+int(cnt)*8 > len(buf) {
					return nil, fmt.Errorf("btree: node %d entry %d postings truncated", id, i)
				}
				e.oids = make([]uint64, cnt)
				for j := range e.oids {
					e.oids[j] = binary.LittleEndian.Uint64(buf[pos : pos+8])
					pos += 8
				}
				e.count = uint32(cnt)
			}
			n.entries = append(n.entries, e)
		}
	case typeInternal:
		n.children = make([]pagestore.PageID, 1, nkeys+1)
		n.children[0] = link
		n.keys = make([][]byte, 0, nkeys)
		for i := 0; i < nkeys; i++ {
			key, np, err := readBytes(buf, pos)
			if err != nil {
				return nil, fmt.Errorf("btree: node %d key %d: %w", id, i, err)
			}
			pos = np
			if pos+4 > len(buf) {
				return nil, fmt.Errorf("btree: node %d child %d truncated", id, i)
			}
			n.keys = append(n.keys, key)
			n.children = append(n.children, pagestore.PageID(binary.LittleEndian.Uint32(buf[pos:pos+4])))
			pos += 4
		}
	default:
		return nil, fmt.Errorf("btree: node %d has unexpected type %d", id, typ)
	}
	return n, nil
}

func (t *Tree) writeNode(n *node) error {
	buf := make([]byte, pagestore.PageSize)
	if n.leaf {
		buf[0] = typeLeaf
		binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.entries)))
		binary.LittleEndian.PutUint32(buf[3:7], uint32(n.next))
		pos := nodeHeaderSize
		for i := range n.entries {
			e := &n.entries[i]
			pos = appendBytesAt(buf, pos, e.key)
			if e.overflow != 0 {
				buf[pos] = 1
				pos++
				binary.LittleEndian.PutUint32(buf[pos:pos+4], e.count)
				binary.LittleEndian.PutUint32(buf[pos+4:pos+8], uint32(e.overflow))
				pos += 8
			} else {
				buf[pos] = 0
				pos++
				pos += binary.PutUvarint(buf[pos:], uint64(len(e.oids)))
				for _, oid := range e.oids {
					binary.LittleEndian.PutUint64(buf[pos:pos+8], oid)
					pos += 8
				}
			}
		}
	} else {
		buf[0] = typeInternal
		binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.keys)))
		binary.LittleEndian.PutUint32(buf[3:7], uint32(n.children[0]))
		pos := nodeHeaderSize
		for i, k := range n.keys {
			pos = appendBytesAt(buf, pos, k)
			binary.LittleEndian.PutUint32(buf[pos:pos+4], uint32(n.children[i+1]))
			pos += 4
		}
	}
	if err := t.file.WritePage(n.id, buf); err != nil {
		return fmt.Errorf("btree: write node %d: %w", n.id, err)
	}
	return nil
}

func readBytes(buf []byte, pos int) ([]byte, int, error) {
	v, np, err := readUvarint(buf, pos)
	if err != nil {
		return nil, 0, err
	}
	if np+int(v) > len(buf) {
		return nil, 0, fmt.Errorf("byte string truncated")
	}
	out := make([]byte, v)
	copy(out, buf[np:np+int(v)])
	return out, np + int(v), nil
}

func readUvarint(buf []byte, pos int) (uint64, int, error) {
	if pos >= len(buf) {
		return 0, 0, fmt.Errorf("uvarint truncated")
	}
	v, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return 0, 0, fmt.Errorf("bad uvarint")
	}
	return v, pos + n, nil
}

func appendBytesAt(buf []byte, pos int, b []byte) int {
	pos += binary.PutUvarint(buf[pos:], uint64(len(b)))
	copy(buf[pos:], b)
	return pos + len(b)
}

// ---------------------------------------------------------------------------
// Lookup

// Lookup returns the postings list for key (sorted ascending) or an empty
// slice if absent. Page cost: Height() reads plus one read per overflow
// page.
func (t *Tree) Lookup(key []byte) ([]uint64, error) {
	oids, _, err := t.LookupPages(key)
	return oids, err
}

// LookupPages is Lookup plus the number of tree pages the lookup read
// (Height() node pages, plus one per overflow page of the postings).
// Counting per call keeps a caller's cost accounting exact even when many
// lookups run concurrently, where diffing the shared file Stats would
// attribute pages to the wrong caller. Lookups touch no tree state, so
// any number may run in parallel as long as no mutation is in flight.
func (t *Tree) LookupPages(key []byte) ([]uint64, int64, error) {
	if err := checkKey(key); err != nil {
		return nil, 0, err
	}
	obsLookups.Add(1)
	var pages int64
	n, err := t.descend(key, &pages)
	if err != nil {
		return nil, pages, err
	}
	i, found := n.find(key)
	if !found {
		return nil, pages, nil
	}
	oids, err := t.entryPostings(&n.entries[i], &pages)
	return oids, pages, err
}

// Contains reports whether (key, oid) is present.
func (t *Tree) Contains(key []byte, oid uint64) (bool, error) {
	oids, err := t.Lookup(key)
	if err != nil {
		return false, err
	}
	i := sort.Search(len(oids), func(i int) bool { return oids[i] >= oid })
	return i < len(oids) && oids[i] == oid, nil
}

// descend walks from the root to the leaf that owns key, adding one to
// *pages per node read (pages may be nil).
func (t *Tree) descend(key []byte, pages *int64) (*node, error) {
	id := t.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return nil, err
		}
		if pages != nil {
			*pages++
		}
		if n.leaf {
			return n, nil
		}
		id = n.childFor(key)
	}
}

func (n *node) childFor(key []byte) pagestore.PageID {
	i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(key, n.keys[i]) < 0 })
	return n.children[i]
}

// find locates key within a leaf, returning the index where it is or
// would be inserted.
func (n *node) find(key []byte) (int, bool) {
	i := sort.Search(len(n.entries), func(i int) bool {
		return bytes.Compare(n.entries[i].key, key) >= 0
	})
	return i, i < len(n.entries) && bytes.Equal(n.entries[i].key, key)
}

func (t *Tree) entryPostings(e *leafEntry, pages *int64) ([]uint64, error) {
	if e.overflow == 0 {
		out := make([]uint64, len(e.oids))
		copy(out, e.oids)
		return out, nil
	}
	out := make([]uint64, 0, e.count)
	buf := make([]byte, pagestore.PageSize)
	for pid := e.overflow; pid != 0; {
		if err := t.file.ReadPage(pid, buf); err != nil {
			return nil, fmt.Errorf("btree: read overflow %d: %w", pid, err)
		}
		if pages != nil {
			*pages++
		}
		if buf[0] != typeOverflow {
			return nil, fmt.Errorf("btree: page %d is not an overflow page", pid)
		}
		cnt := int(binary.LittleEndian.Uint16(buf[1:3]))
		next := pagestore.PageID(binary.LittleEndian.Uint32(buf[3:7]))
		for i := 0; i < cnt; i++ {
			out = append(out, binary.LittleEndian.Uint64(buf[overflowHeader+8*i:]))
		}
		pid = next
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func checkKey(key []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("btree: empty key")
	}
	if len(key) > MaxKeyLen {
		return fmt.Errorf("btree: key length %d exceeds %d", len(key), MaxKeyLen)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Insert

// Insert adds oid to the postings of key, creating the key if needed. It
// is idempotent: inserting an existing (key, oid) pair is a no-op.
func (t *Tree) Insert(key []byte, oid uint64) error {
	if err := checkKey(key); err != nil {
		return err
	}
	obsInserts.Add(1)
	sep, right, changed, err := t.insert(t.root, 1, key, oid)
	if err != nil {
		return err
	}
	if right != 0 {
		// Root split: grow the tree by one level.
		newRoot, err := t.file.Allocate()
		if err != nil {
			return fmt.Errorf("btree: %w", err)
		}
		root := &node{
			id:       newRoot,
			keys:     [][]byte{sep},
			children: []pagestore.PageID{t.root, right},
		}
		if err := t.writeNode(root); err != nil {
			return err
		}
		t.root = newRoot
		t.height++
		changed = true
	}
	if changed {
		return t.writeMeta()
	}
	return nil
}

// insert recursively adds (key, oid) below node id at the given level
// (1 = root level). It returns a separator and new right-sibling page if
// the node split, and whether tree metadata changed.
func (t *Tree) insert(id pagestore.PageID, level int, key []byte, oid uint64) (sep []byte, right pagestore.PageID, changed bool, err error) {
	n, err := t.readNode(id)
	if err != nil {
		return nil, 0, false, err
	}
	if !n.leaf {
		childSep, childRight, childChanged, err := t.insert(n.childFor(key), level+1, key, oid)
		if err != nil {
			return nil, 0, false, err
		}
		changed = childChanged
		if childRight == 0 {
			return nil, 0, changed, nil
		}
		// Insert the separator and new child into this node.
		i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(childSep, n.keys[i]) < 0 })
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = childSep
		n.children = append(n.children, 0)
		copy(n.children[i+2:], n.children[i+1:])
		n.children[i+1] = childRight
		if n.size() <= nodeCapacity {
			return nil, 0, changed, t.writeNode(n)
		}
		return t.splitInternal(n)
	}

	// Leaf: add oid to the key's entry.
	i, found := n.find(key)
	if found {
		e := &n.entries[i]
		grew, err := t.addToEntry(e, oid)
		if err != nil {
			return nil, 0, false, err
		}
		if !grew {
			return nil, 0, false, nil // duplicate (key, oid): nothing to do
		}
	} else {
		e := leafEntry{key: append([]byte(nil), key...), oids: []uint64{oid}, count: 1}
		n.entries = append(n.entries, leafEntry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = e
		t.nkeys++
		changed = true
	}
	// Keep entries within the size bound by spilling to overflow pages.
	if n.entries[i].overflow == 0 && n.entries[i].size() > entryMax {
		if err := t.spillEntry(&n.entries[i]); err != nil {
			return nil, 0, false, err
		}
	}
	if n.size() <= nodeCapacity {
		return nil, 0, changed, t.writeNode(n)
	}
	sep, right, err = t.splitLeaf(n)
	return sep, right, true, err
}

// addToEntry inserts oid into the entry's postings, reporting whether the
// postings actually grew.
func (t *Tree) addToEntry(e *leafEntry, oid uint64) (bool, error) {
	if e.overflow != 0 {
		// Check for duplicates, then push onto the head page.
		oids, err := t.entryPostings(e, nil)
		if err != nil {
			return false, err
		}
		i := sort.Search(len(oids), func(i int) bool { return oids[i] >= oid })
		if i < len(oids) && oids[i] == oid {
			return false, nil
		}
		if err := t.overflowPush(e, oid); err != nil {
			return false, err
		}
		e.count++
		return true, nil
	}
	i := sort.Search(len(e.oids), func(i int) bool { return e.oids[i] >= oid })
	if i < len(e.oids) && e.oids[i] == oid {
		return false, nil
	}
	e.oids = append(e.oids, 0)
	copy(e.oids[i+1:], e.oids[i:])
	e.oids[i] = oid
	e.count++
	return true, nil
}

// spillEntry moves an inline postings list onto overflow pages.
func (t *Tree) spillEntry(e *leafEntry) error {
	oids := e.oids
	e.oids = nil
	e.overflow = 0
	e.count = 0
	for _, oid := range oids {
		if err := t.overflowPush(e, oid); err != nil {
			return err
		}
		e.count++
	}
	return nil
}

// overflowPush appends one OID to the entry's overflow chain, allocating
// a new head page when the current head is full (O(1) page accesses).
func (t *Tree) overflowPush(e *leafEntry, oid uint64) error {
	buf := make([]byte, pagestore.PageSize)
	if e.overflow != 0 {
		if err := t.file.ReadPage(e.overflow, buf); err != nil {
			return fmt.Errorf("btree: read overflow head: %w", err)
		}
		cnt := int(binary.LittleEndian.Uint16(buf[1:3]))
		if cnt < overflowPerPage {
			binary.LittleEndian.PutUint64(buf[overflowHeader+8*cnt:], oid)
			binary.LittleEndian.PutUint16(buf[1:3], uint16(cnt+1))
			return t.file.WritePage(e.overflow, buf)
		}
	}
	id, err := t.file.Allocate()
	if err != nil {
		return fmt.Errorf("btree: %w", err)
	}
	for i := range buf {
		buf[i] = 0
	}
	buf[0] = typeOverflow
	binary.LittleEndian.PutUint16(buf[1:3], 1)
	binary.LittleEndian.PutUint32(buf[3:7], uint32(e.overflow))
	binary.LittleEndian.PutUint64(buf[overflowHeader:], oid)
	if err := t.file.WritePage(id, buf); err != nil {
		return err
	}
	e.overflow = id
	return nil
}

// splitLeaf splits n into two leaves and returns the separator (the first
// key of the right leaf) and the right leaf's page id.
func (t *Tree) splitLeaf(n *node) ([]byte, pagestore.PageID, error) {
	obsSplits.Add(1)
	split := splitPoint(len(n.entries), func(i int) int { return n.entries[i].size() })
	rightID, err := t.file.Allocate()
	if err != nil {
		return nil, 0, fmt.Errorf("btree: %w", err)
	}
	right := &node{
		id:      rightID,
		leaf:    true,
		entries: append([]leafEntry(nil), n.entries[split:]...),
		next:    n.next,
	}
	n.entries = n.entries[:split]
	n.next = rightID
	if err := t.writeNode(right); err != nil {
		return nil, 0, err
	}
	if err := t.writeNode(n); err != nil {
		return nil, 0, err
	}
	return right.entries[0].key, rightID, nil
}

// splitInternal splits internal node n; the middle key moves up as the
// separator (it does not stay in either half).
func (t *Tree) splitInternal(n *node) ([]byte, pagestore.PageID, bool, error) {
	obsSplits.Add(1)
	mid := splitPoint(len(n.keys), func(i int) int { return internalEntrySize(n.keys[i]) })
	if mid >= len(n.keys) {
		mid = len(n.keys) - 1
	}
	if mid < 1 {
		mid = 1
	}
	sep := n.keys[mid]
	rightID, err := t.file.Allocate()
	if err != nil {
		return nil, 0, false, fmt.Errorf("btree: %w", err)
	}
	right := &node{
		id:       rightID,
		keys:     append([][]byte(nil), n.keys[mid+1:]...),
		children: append([]pagestore.PageID(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	if err := t.writeNode(right); err != nil {
		return nil, 0, false, err
	}
	if err := t.writeNode(n); err != nil {
		return nil, 0, false, err
	}
	return sep, rightID, true, nil
}

// splitPoint picks the split index whose two halves are most balanced by
// cumulative size subject to both fitting a node. Because every entry is
// bounded by entryMax = nodeCapacity/2, at least one valid split always
// exists for an overflowing node.
func splitPoint(n int, sz func(int) int) int {
	sizes := make([]int, n)
	total := 0
	for i := range sizes {
		sizes[i] = sz(i)
		total += sizes[i]
	}
	best, bestDiff := -1, int(^uint(0)>>1)
	prefix := 0
	for i := 0; i < n-1; i++ {
		prefix += sizes[i]
		if prefix > nodeCapacity {
			break
		}
		suffix := total - prefix
		if suffix > nodeCapacity {
			continue
		}
		diff := prefix - suffix
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff {
			best, bestDiff = i+1, diff
		}
	}
	if best == -1 {
		return n / 2 // unreachable while entries respect entryMax
	}
	return best
}

// ---------------------------------------------------------------------------
// Delete

// Delete removes oid from key's postings. Removing the last OID removes
// the key. Deleting a missing pair is a no-op. Empty overflow chains are
// abandoned (space is not reclaimed), consistent with the paper's
// tombstone-style deletion model.
func (t *Tree) Delete(key []byte, oid uint64) error {
	if err := checkKey(key); err != nil {
		return err
	}
	obsDeletes.Add(1)
	n, err := t.descend(key, nil)
	if err != nil {
		return err
	}
	i, found := n.find(key)
	if !found {
		return nil
	}
	e := &n.entries[i]
	if e.overflow != 0 {
		oids, err := t.entryPostings(e, nil)
		if err != nil {
			return err
		}
		j := sort.Search(len(oids), func(i int) bool { return oids[i] >= oid })
		if j >= len(oids) || oids[j] != oid {
			return nil
		}
		oids = append(oids[:j], oids[j+1:]...)
		// Rewrite the chain compactly (or inline if it shrank enough).
		e.overflow = 0
		e.oids = oids
		e.count = uint32(len(oids))
		if e.size() > entryMax {
			if err := t.spillEntry(e); err != nil {
				return err
			}
		}
	} else {
		j := sort.Search(len(e.oids), func(i int) bool { return e.oids[i] >= oid })
		if j >= len(e.oids) || e.oids[j] != oid {
			return nil
		}
		e.oids = append(e.oids[:j], e.oids[j+1:]...)
		e.count--
	}
	if e.count == 0 && e.overflow == 0 {
		n.entries = append(n.entries[:i], n.entries[i+1:]...)
		t.nkeys--
		if err := t.writeNode(n); err != nil {
			return err
		}
		return t.writeMeta()
	}
	return t.writeNode(n)
}

// ---------------------------------------------------------------------------
// Iteration and statistics

// Range calls fn for every key in [lo, hi) in ascending order with its
// postings. A nil hi means "to the end". fn returning false stops the
// scan.
func (t *Tree) Range(lo, hi []byte, fn func(key []byte, oids []uint64) bool) error {
	if lo == nil {
		lo = []byte{0}
	}
	n, err := t.descend(lo, nil)
	if err != nil {
		return err
	}
	i, _ := n.find(lo)
	for {
		for ; i < len(n.entries); i++ {
			e := &n.entries[i]
			if hi != nil && bytes.Compare(e.key, hi) >= 0 {
				return nil
			}
			oids, err := t.entryPostings(e, nil)
			if err != nil {
				return err
			}
			if !fn(e.key, oids) {
				return nil
			}
		}
		if n.next == 0 {
			return nil
		}
		n, err = t.readNode(n.next)
		if err != nil {
			return err
		}
		i = 0
	}
}

// PageBreakdown reports how many pages of each kind the tree uses, for
// the storage-cost experiments: lp leaf pages, nlp internal pages, op
// overflow pages (plus one meta page not included).
type PageBreakdown struct {
	Leaf, Internal, Overflow int
}

// Breakdown scans the file and classifies every page.
func (t *Tree) Breakdown() (PageBreakdown, error) {
	var pb PageBreakdown
	buf := make([]byte, pagestore.PageSize)
	for p := 1; p < t.file.NumPages(); p++ {
		if err := t.file.ReadPage(pagestore.PageID(p), buf); err != nil {
			return pb, err
		}
		switch buf[0] {
		case typeLeaf:
			pb.Leaf++
		case typeInternal:
			pb.Internal++
		case typeOverflow:
			pb.Overflow++
		default:
			return pb, fmt.Errorf("btree: page %d has unknown type %d", p, buf[0])
		}
	}
	return pb, nil
}
