package planner

import (
	"math"
	"strings"
	"testing"

	"sigfile/internal/core"
	"sigfile/internal/signature"
)

// paperCatalog is the Table 2 design point the figures are drawn at.
func paperCatalog() Catalog { return Catalog{N: 32000, Dt: 10, V: 13000} }

// paperFacilities is a Describe() snapshot of the three main facilities
// built at the paper's parameters (F=252, m=2; a three-level B⁺-tree).
func paperFacilities() []core.FacilityStats {
	return []core.FacilityStats{
		{Facility: "SSF", Count: 32000, F: 252, M: 2},
		{Facility: "BSSF", Count: 32000, F: 252, M: 2},
		{Facility: "NIX", Count: 32000, DistinctElems: 13000, LookupPages: 3},
	}
}

func findCand(t *testing.T, pl *Plan, facility string, strategy Strategy) Candidate {
	t.Helper()
	for _, c := range pl.Candidates {
		if c.Facility == facility && c.Strategy == strategy {
			return c
		}
	}
	t.Fatalf("no %s %s candidate in %v", facility, strategy, pl.Candidates)
	return Candidate{}
}

// TestGoldenSupersetDq1 pins Fig. 7's left edge: for T ⊇ Q at D_q = 1
// the nested index wins — one root-to-leaf descent beats reading even a
// single bit slice plus drop resolution.
func TestGoldenSupersetDq1(t *testing.T) {
	pl := New().Plan(signature.Superset, 1, paperCatalog(), paperFacilities())
	c := pl.Chosen()
	if c == nil {
		t.Fatal("no candidate chosen")
	}
	if c.Facility != "NIX" {
		t.Fatalf("superset Dq=1: chose %s, want NIX (Fig. 7)", c.Facility)
	}
	if c.Strategy != Naive {
		t.Fatalf("superset Dq=1: strategy %s, want naive", c.Strategy)
	}
	// And NIX must genuinely undercut the signature files, not tie.
	bssf := findCand(t, pl, "BSSF", Naive)
	if !(c.EstimatedRC < bssf.EstimatedRC/5) {
		t.Fatalf("NIX %.1f should be far below BSSF %.1f at Dq=1", c.EstimatedRC, bssf.EstimatedRC)
	}
}

// TestGoldenSupersetSmart pins Fig. 7's right side: past the crossover
// the smart strategies (probe with k ≪ D_q elements) dominate every
// naive plan, and the sequential file is never competitive.
func TestGoldenSupersetSmart(t *testing.T) {
	pl := New().Plan(signature.Superset, 10, paperCatalog(), paperFacilities())
	c := pl.Chosen()
	if c == nil {
		t.Fatal("no candidate chosen")
	}
	if c.Facility == "SSF" {
		t.Fatal("superset Dq=10: SSF chosen; the full scan should never win here")
	}
	if c.Strategy != Smart {
		t.Fatalf("superset Dq=10: strategy %s, want smart", c.Strategy)
	}
	if c.MaxProbeElements < 1 || c.MaxProbeElements > 4 {
		t.Fatalf("superset Dq=10: probe cap k=%d, want a small cap (1..4)", c.MaxProbeElements)
	}
	for _, fac := range []string{"SSF", "BSSF"} {
		naive := findCand(t, pl, fac, Naive)
		if !(c.EstimatedRC < naive.EstimatedRC) {
			t.Fatalf("smart %.1f should beat %s naive %.1f", c.EstimatedRC, fac, naive.EstimatedRC)
		}
	}
}

// TestGoldenSubsetLargeDq pins Figs. 9–10: for T ⊆ Q at large D_q the
// smart bit-sliced strategy (read only ~F−m_q(D_q^opt) zero slices)
// holds a small, D_q-independent cost while NIX degrades linearly —
// every query element costs a tree descent.
func TestGoldenSubsetLargeDq(t *testing.T) {
	p := New()
	var bssfCosts, nixCosts []float64
	for _, dq := range []int{20, 50, 100} {
		pl := p.Plan(signature.Subset, dq, paperCatalog(), paperFacilities())
		c := pl.Chosen()
		if c == nil {
			t.Fatal("no candidate chosen")
		}
		if c.Facility != "BSSF" || c.Strategy != Smart {
			t.Fatalf("subset Dq=%d: chose %s %s, want BSSF smart (Figs. 9-10)", dq, c.Facility, c.Strategy)
		}
		if c.MaxZeroSlices < 1 {
			t.Fatalf("subset Dq=%d: smart plan has no zero-slice cap", dq)
		}
		bssfCosts = append(bssfCosts, c.EstimatedRC)
		nixCosts = append(nixCosts, findCand(t, pl, "NIX", Naive).EstimatedRC)
	}
	// The smart cost is flat in D_q (same zero-slice budget every time)…
	for _, c := range bssfCosts[1:] {
		if math.Abs(c-bssfCosts[0]) > 1e-9 {
			t.Fatalf("smart BSSF subset cost should be Dq-independent: %v", bssfCosts)
		}
	}
	// …while NIX strictly degrades.
	for i := 1; i < len(nixCosts); i++ {
		if !(nixCosts[i] > nixCosts[i-1]) {
			t.Fatalf("NIX subset cost should grow with Dq: %v", nixCosts)
		}
	}
	if !(nixCosts[1] > 5*bssfCosts[1]) {
		t.Fatalf("at Dq=50 NIX (%.1f) should be far above smart BSSF (%.1f)", nixCosts[1], bssfCosts[1])
	}
}

// TestFallbackStats exercises planning with an empty shared catalog: the
// per-facility Describe() numbers (and ultimately the Table 2 defaults)
// must carry the estimate, never an Inf/NaN.
func TestFallbackStats(t *testing.T) {
	p := New()
	facs := []core.FacilityStats{
		{Facility: "BSSF", Count: 500, AvgSetCard: 4, F: 64, M: 2},
		{Facility: "NIX", Count: 500, DistinctElems: 40, LookupPages: 2},
	}
	for _, pred := range []signature.Predicate{
		signature.Superset, signature.Subset, signature.Overlap,
		signature.Equals, signature.Contains,
	} {
		pl := p.Plan(pred, 3, Catalog{}, facs)
		for _, c := range pl.Candidates {
			if math.IsInf(c.EstimatedRC, 0) || math.IsNaN(c.EstimatedRC) {
				t.Fatalf("%s: non-finite estimate for %v", pred, c)
			}
		}
		if pl.Chosen() == nil {
			t.Fatalf("%s: nothing chosen", pred)
		}
	}
	// A wholly unknown facility still plans, on defaults alone.
	pl := p.Plan(signature.Superset, 2, Catalog{}, []core.FacilityStats{{Facility: "BSSF", F: 64, M: 2}})
	if c := pl.Chosen(); c == nil || math.IsInf(c.EstimatedRC, 0) {
		t.Fatalf("defaults-only plan failed: %v", pl.Candidates)
	}
}

// TestAdaptiveCorrection: measured feedback showing the model underprices
// BSSF subset retrieval 3× flips the choice away from BSSF — but only
// once adaptive mode is on, and never by more than the clamp.
func TestAdaptiveCorrection(t *testing.T) {
	p := New()
	cat, facs := paperCatalog(), paperFacilities()

	pl := p.Plan(signature.Subset, 10, cat, facs)
	base := pl.Chosen()
	if base.Facility != "BSSF" || base.Strategy != Smart {
		t.Fatalf("precondition: expected BSSF smart, got %v", base)
	}
	// Reality reports 3× the estimate for BSSF on this predicate.
	p.Feedback("BSSF", signature.Subset, base.EstimatedRC, 3*base.EstimatedRC)

	// Feedback accumulates, but with adaptive off it must not change ranks.
	pl = p.Plan(signature.Subset, 10, cat, facs)
	if c := pl.Chosen(); c.Facility != "BSSF" || c.CorrectedRC != c.EstimatedRC {
		t.Fatalf("adaptive off: feedback leaked into the plan: %v", c)
	}

	p.SetAdaptive(true)
	if !p.Adaptive() {
		t.Fatal("Adaptive() should report true")
	}
	pl = p.Plan(signature.Subset, 10, cat, facs)
	c := pl.Chosen()
	if c.Facility == "BSSF" {
		t.Fatalf("adaptive on: 3x-corrected BSSF (%.1f) should lose its lead; chose %v",
			3*base.EstimatedRC, c)
	}
	bssf := findCand(t, pl, "BSSF", Smart)
	if math.Abs(bssf.CorrectedRC-3*bssf.EstimatedRC) > 1e-6 {
		t.Fatalf("corrected %.2f, want 3x estimate %.2f", bssf.CorrectedRC, 3*bssf.EstimatedRC)
	}

	// An absurd measurement is clamped: corrections never exceed 4x.
	p.Feedback("NIX", signature.Superset, 1, 1000)
	pl = p.Plan(signature.Superset, 1, cat, facs)
	nix := findCand(t, pl, "NIX", Naive)
	if nix.CorrectedRC > 4*nix.EstimatedRC+1e-6 {
		t.Fatalf("correction escaped the clamp: est %.1f corrected %.1f", nix.EstimatedRC, nix.CorrectedRC)
	}
}

// TestUnmodeledRankedLast: a facility without a cost model never beats a
// modeled one, but is still chosen when it is all there is.
func TestUnmodeledRankedLast(t *testing.T) {
	p := New()
	facs := []core.FacilityStats{
		{Facility: "EXOTIC"},
		{Facility: "BSSF", Count: 1000, F: 64, M: 2},
	}
	pl := p.Plan(signature.Superset, 2, Catalog{Dt: 4, V: 100}, facs)
	if c := pl.Chosen(); c.Facility != "BSSF" {
		t.Fatalf("unmodeled facility won: %v", c)
	}
	last := pl.Candidates[len(pl.Candidates)-1]
	if !last.Unmodeled || last.Facility != "EXOTIC" {
		t.Fatalf("unmodeled candidate not ranked last: %v", pl.Candidates)
	}

	pl = p.Plan(signature.Superset, 2, Catalog{}, facs[:1])
	c := pl.Chosen()
	if c == nil || !c.Unmodeled {
		t.Fatalf("sole unmodeled facility should still be chosen: %v", c)
	}
	if !strings.Contains(pl.Reason, "without a cost model") {
		t.Fatalf("reason should flag the missing model: %q", pl.Reason)
	}
}

// TestFSSFCandidates: the frame-sliced file is modeled (including the
// smart superset probe) when K divides F, and degrades to unmodeled when
// the snapshot's frame split is inconsistent.
func TestFSSFCandidates(t *testing.T) {
	p := New()
	good := []core.FacilityStats{{Facility: "FSSF", Count: 32000, F: 256, M: 2, Frames: 16}}
	pl := p.Plan(signature.Superset, 10, Catalog{N: 32000, Dt: 10, V: 13000}, good)
	smart := findCand(t, pl, "FSSF", Smart)
	if smart.MaxProbeElements < 1 || math.IsInf(smart.EstimatedRC, 0) {
		t.Fatalf("FSSF smart superset not costed: %v", smart)
	}
	naive := findCand(t, pl, "FSSF", Naive)
	if !(smart.EstimatedRC < naive.EstimatedRC) {
		t.Fatalf("FSSF smart %.1f should beat naive %.1f at Dq=10", smart.EstimatedRC, naive.EstimatedRC)
	}
	for _, pred := range []signature.Predicate{signature.Subset, signature.Overlap, signature.Equals, signature.Contains} {
		pl := p.Plan(pred, 5, Catalog{N: 32000, Dt: 10, V: 13000}, good)
		if c := pl.Chosen(); c == nil || c.Unmodeled {
			t.Fatalf("FSSF %s should be modeled, got %v", pred, c)
		}
	}

	bad := []core.FacilityStats{{Facility: "FSSF", Count: 100, F: 252, M: 2, Frames: 16}}
	pl = p.Plan(signature.Superset, 3, Catalog{}, bad)
	if c := pl.Chosen(); !c.Unmodeled {
		t.Fatalf("FSSF with K∤F should be unmodeled, got %v", c)
	}
}

// TestPlanShape covers the small API contracts EXPLAIN leans on.
func TestPlanShape(t *testing.T) {
	p := New()
	pl := p.Plan(signature.Superset, 0, paperCatalog(), paperFacilities())
	if pl.Dq != 1 {
		t.Fatalf("Dq=0 should clamp to 1, got %d", pl.Dq)
	}
	for i := 1; i < len(pl.Candidates); i++ {
		a, b := pl.Candidates[i-1], pl.Candidates[i]
		if !a.Unmodeled && !b.Unmodeled && a.CorrectedRC > b.CorrectedRC {
			t.Fatalf("candidates not sorted cheapest-first: %v", pl.Candidates)
		}
	}
	if pl.Reason == "" {
		t.Fatal("plan has no reason")
	}
	c := pl.Chosen()
	if c.Index < 0 || c.Index >= len(paperFacilities()) {
		t.Fatalf("chosen Index %d out of range", c.Index)
	}
	if got := (Candidate{Facility: "BSSF", Strategy: Smart, MaxProbeElements: 2, EstimatedRC: 6, CorrectedRC: 6}).String(); !strings.Contains(got, "BSSF smart k=2") {
		t.Fatalf("Candidate.String: %q", got)
	}

	if (&Plan{}).Chosen() != nil || (*Plan)(nil).Chosen() != nil {
		t.Fatal("empty/nil plan should have no chosen candidate")
	}
	empty := p.Plan(signature.Superset, 1, Catalog{}, nil)
	if empty.Chosen() != nil || empty.Reason != "no facility available" {
		t.Fatalf("empty facility list: %v / %q", empty.Candidates, empty.Reason)
	}
}
