// Package planner implements cost-based access-path selection over the
// set access facilities, the decision procedure the paper runs by hand
// across Figures 5–10: given a query (predicate + cardinality D_q) and
// the facilities registered on an attribute, evaluate the analytical
// retrieval-cost formulas of internal/costmodel against live catalog
// statistics (N, D_t, F, m, rc) and pick the facility and retrieval
// strategy — naive, or smart with a probe cap k (T ⊇ Q, §5.1.3) or a
// zero-slice cap (T ⊆ Q, §5.2.2) — with the lowest estimated page count.
//
// The planner reproduces the paper's crossovers by construction: NIX
// wins T ⊇ Q only at D_q = 1 (Fig. 7), smart BSSF holds a small constant
// cost on T ⊆ Q where NIX degrades linearly in D_q (Figs. 9–10).
//
// In adaptive mode the analytical estimate is multiplied by a measured
// correction: an exponentially weighted average of measured/estimated
// page ratios fed back per (facility, predicate) through Feedback —
// closing the loop with the observability layer's page histograms.
package planner

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"sigfile/internal/core"
	"sigfile/internal/costmodel"
	"sigfile/internal/obs"
	"sigfile/internal/pagestore"
	"sigfile/internal/signature"
)

// Fallbacks for catalog statistics a facility cannot supply (for
// example after reopening from a persistent store, where the insert
// history — and with it the measured D_t — predates the process). The
// values are the paper's Table 2 design point.
const (
	DefaultDt = 10.0
	DefaultV  = 13000
)

// Catalog carries the attribute-level statistics shared by every
// facility on the indexed attribute.
type Catalog struct {
	// N is the number of indexed objects.
	N int
	// Dt is the mean target-set cardinality; 0 = unknown (DefaultDt).
	Dt float64
	// V is the domain cardinality (distinct element values); 0 = unknown
	// (DefaultV).
	V int
	// PageSize in bytes; 0 = pagestore.PageSize.
	PageSize int
}

// Strategy names a retrieval strategy.
type Strategy string

// The strategies the planner chooses between.
const (
	Naive Strategy = "naive"
	Smart Strategy = "smart"
)

// Candidate is one (facility, strategy) pair the planner costed.
type Candidate struct {
	// Index is the position of the facility in the slice given to Plan,
	// so callers can map the winner back to their own handle.
	Index int
	// Facility is the access-method name.
	Facility string
	// Strategy is Naive or Smart.
	Strategy Strategy
	// MaxProbeElements, when positive, is the smart probe cap k for
	// T ⊇ Q — the value to pass as core.WithMaxProbeElements.
	MaxProbeElements int
	// MaxZeroSlices, when positive, is the smart zero-slice cap for
	// BSSF's T ⊆ Q — the value to pass as core.WithMaxZeroSlices.
	MaxZeroSlices int
	// EstimatedRC is the analytical retrieval cost in pages.
	EstimatedRC float64
	// CorrectedRC is EstimatedRC scaled by the adaptive measured/model
	// correction; equal to EstimatedRC when adaptive mode is off or no
	// feedback exists yet. Candidates are ranked by it.
	CorrectedRC float64
	// Unmodeled marks a facility with no analytical formula for this
	// predicate; it is ranked last and never chosen over a modeled one.
	Unmodeled bool
}

// String renders the candidate for cost tables.
func (c Candidate) String() string {
	s := string(c.Strategy)
	if c.MaxProbeElements > 0 {
		s += fmt.Sprintf(" k=%d", c.MaxProbeElements)
	}
	if c.MaxZeroSlices > 0 {
		s += fmt.Sprintf(" z=%d", c.MaxZeroSlices)
	}
	return fmt.Sprintf("%s %s est=%.1f corrected=%.1f", c.Facility, s, c.EstimatedRC, c.CorrectedRC)
}

// Plan is the planner's decision: every costed candidate, cheapest
// first, plus the inputs that produced them.
type Plan struct {
	Predicate  signature.Predicate
	Dq         int
	Catalog    Catalog
	Candidates []Candidate
	// Reason states why the winner won, for EXPLAIN output.
	Reason string
}

// Chosen returns the winning candidate (the cheapest), or nil when no
// facility produced one.
func (pl *Plan) Chosen() *Candidate {
	if pl == nil || len(pl.Candidates) == 0 {
		return nil
	}
	return &pl.Candidates[0]
}

// Planner evaluates plans and accumulates adaptive feedback. The zero
// value is not usable; call New. A Planner is safe for concurrent use.
type Planner struct {
	mu       sync.Mutex
	adaptive bool
	// ratios holds the EWMA of measured/estimated page ratios per
	// "facility|predicate".
	ratios map[string]float64
}

// ewmaAlpha weighs new feedback against history; correctionClamp bounds
// how far feedback can push an estimate, so one outlier measurement
// cannot invert every future decision.
const (
	ewmaAlpha       = 0.3
	correctionClamp = 4.0
)

// New returns a Planner with adaptive correction off.
func New() *Planner {
	return &Planner{ratios: make(map[string]float64)}
}

// SetAdaptive turns measured-feedback correction on or off. Feedback is
// accumulated either way; the flag only gates whether it adjusts ranks.
func (p *Planner) SetAdaptive(on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.adaptive = on
}

// Adaptive reports whether correction is on.
func (p *Planner) Adaptive() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.adaptive
}

// Feedback records the measured page count of an executed plan against
// its estimate, updating the (facility, predicate) correction and the
// obs registry's planner histograms.
func (p *Planner) Feedback(facility string, pred signature.Predicate, estimated, measured float64) {
	if estimated <= 0 || measured < 0 || math.IsInf(estimated, 0) {
		return
	}
	ratio := measured / estimated
	p.mu.Lock()
	key := facility + "|" + pred.String()
	if old, ok := p.ratios[key]; ok {
		ratio = (1-ewmaAlpha)*old + ewmaAlpha*ratio
	}
	p.ratios[key] = ratio
	p.mu.Unlock()

	obs.Default().Histogram("sigfile_planner_estimated_pages", obs.PageBuckets, "facility", facility).Observe(estimated)
	obs.Default().Histogram("sigfile_planner_measured_pages", obs.PageBuckets, "facility", facility).Observe(measured)
	// The drift between model and reality, scaled ×1000 into an integer
	// gauge (1000 = perfect agreement).
	obs.Default().Gauge("sigfile_planner_cost_ratio_milli", "facility", facility, "predicate", pred.String()).Set(int64(ratio * 1000))
}

// correction returns the clamped multiplicative correction for a
// (facility, predicate), 1 when adaptive mode is off or nothing is
// known.
func (p *Planner) correction(facility string, pred signature.Predicate) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.adaptive {
		return 1
	}
	r, ok := p.ratios[facility+"|"+pred.String()]
	if !ok {
		return 1
	}
	if r < 1/correctionClamp {
		r = 1 / correctionClamp
	}
	if r > correctionClamp {
		r = correctionClamp
	}
	return r
}

// Plan costs every registered facility (and, where the paper defines
// one, its smart strategy) for a query with the given predicate and
// cardinality, and returns the candidates cheapest-first. facilities is
// the Describe() snapshot of each facility on the attribute.
func (p *Planner) Plan(pred signature.Predicate, dq int, cat Catalog, facilities []core.FacilityStats) *Plan {
	if dq < 1 {
		// A vacuous query set; the formulas are meaningless, so cost it
		// as the cheapest defined point.
		dq = 1
	}
	pl := &Plan{Predicate: pred, Dq: dq, Catalog: cat}
	for i, desc := range facilities {
		cands := p.candidates(pred, dq, cat, i, desc)
		// A facility that scatters every search across several file sets
		// re-pays the per-file page floor once per extra set. LSM
		// facilities scatter across their sealed segments; a sharded
		// facility scatters across its K shards (its SegmentCounts already
		// concatenate the per-shard segments when the shards are LSM, so
		// the segment count subsumes the shard count then). The memtable
		// adds nothing — it is searched in memory.
		fileSets := len(desc.SegmentCounts)
		if fileSets == 0 && desc.Shards > 1 {
			fileSets = desc.Shards
		}
		if extra := fileSets - 1; extra > 0 {
			cm := params(cat, desc)
			for j := range cands {
				if !cands[j].Unmodeled {
					cands[j].EstimatedRC += float64(extra) * perSegmentFloor(cm, pred, dq, desc, cands[j])
				}
			}
		}
		pl.Candidates = append(pl.Candidates, cands...)
	}
	for i := range pl.Candidates {
		c := &pl.Candidates[i]
		c.CorrectedRC = c.EstimatedRC * p.correction(c.Facility, pred)
	}
	sort.SliceStable(pl.Candidates, func(i, j int) bool {
		a, b := pl.Candidates[i], pl.Candidates[j]
		if a.Unmodeled != b.Unmodeled {
			return !a.Unmodeled
		}
		return a.CorrectedRC < b.CorrectedRC
	})
	pl.Reason = reason(pl)
	if c := pl.Chosen(); c != nil {
		obs.Default().Counter("sigfile_planner_plans_total", "facility", c.Facility, "strategy", string(c.Strategy)).Inc()
	}
	return pl
}

// reason renders a one-line justification of the winner.
func reason(pl *Plan) string {
	c := pl.Chosen()
	if c == nil {
		return "no facility available"
	}
	if c.Unmodeled {
		return fmt.Sprintf("%s chosen without a cost model (no modeled alternative)", c.Facility)
	}
	for _, other := range pl.Candidates[1:] {
		if other.Facility == c.Facility {
			continue
		}
		if other.Unmodeled {
			break
		}
		return fmt.Sprintf("%s %s estimated at %.1f pages vs %.1f for %s %s at Dq=%d",
			c.Facility, c.Strategy, c.CorrectedRC, other.CorrectedRC, other.Facility, other.Strategy, pl.Dq)
	}
	return fmt.Sprintf("%s %s is the only modeled candidate (%.1f pages)", c.Facility, c.Strategy, c.CorrectedRC)
}

// params assembles the cost-model parameters for one facility from the
// shared catalog plus the facility's own design constants.
func params(cat Catalog, desc core.FacilityStats) costmodel.Params {
	dt := cat.Dt
	if dt <= 0 {
		if desc.AvgSetCard > 0 {
			dt = desc.AvgSetCard
		} else {
			dt = DefaultDt
		}
	}
	v := cat.V
	if v <= 0 {
		v = desc.DistinctElems
	}
	if v <= 0 {
		v = DefaultV
	}
	if float64(v) < dt {
		v = int(math.Ceil(dt))
	}
	n := cat.N
	if n <= 0 {
		n = desc.Count
	}
	if n < 1 {
		n = 1
	}
	ps := cat.PageSize
	if ps <= 0 {
		ps = pagestore.PageSize
	}
	return costmodel.Params{
		N: n, P: ps, OIDSize: 8, V: v, Dt: dt,
		F: desc.F, M: float64(desc.M),
		KeyLen: 8, MIDLen: 2, Fanout: 218, Ps: 1, Pu: 1,
		// The catalog describes a real instance with integer element
		// weights, so the exact combinatorial false-drop forms apply.
		UseExact: true,
	}
}

// candidates enumerates the costed strategies of one facility.
func (p *Planner) candidates(pred signature.Predicate, dq int, cat Catalog, idx int, desc core.FacilityStats) []Candidate {
	cm := params(cat, desc)
	mk := func(strategy Strategy, rc float64) Candidate {
		return Candidate{Index: idx, Facility: desc.Facility, Strategy: strategy, EstimatedRC: rc}
	}
	d := float64(dq)
	switch desc.Facility {
	case "SSF":
		// SSF has no smart strategy: the full scan dominates regardless
		// of probe strength.
		var rc float64
		switch pred {
		case signature.Superset:
			rc = cm.SSFRetrievalSuperset(d)
		case signature.Subset:
			rc = cm.SSFRetrievalSubset(d)
		case signature.Overlap:
			rc = cm.SSFRetrievalOverlap(d)
		case signature.Equals:
			rc = cm.SSFRetrievalEquals(d)
		case signature.Contains:
			rc = cm.SSFRetrievalContains()
		}
		return []Candidate{mk(Naive, rc)}

	case "BSSF":
		switch pred {
		case signature.Superset:
			out := []Candidate{mk(Naive, cm.BSSFRetrievalSuperset(d))}
			if cost, k := cm.BSSFSmartSuperset(d); k < dq {
				c := mk(Smart, cost)
				c.MaxProbeElements = k
				out = append(out, c)
			}
			return out
		case signature.Subset:
			out := []Candidate{mk(Naive, cm.BSSFRetrievalSubset(d))}
			if dqOpt := cm.BSSFSubsetDqOpt(); d < dqOpt {
				// Scan only the zero slices a D_q^opt-element query
				// would have: F − m_q(D_q^opt) of them (§5.2.2).
				z := int(math.Round(float64(cm.F) - cm.Mq(dqOpt)))
				if z >= 1 {
					c := mk(Smart, cm.BSSFSmartSubset(d))
					c.MaxZeroSlices = z
					out = append(out, c)
				}
			}
			return out
		case signature.Overlap:
			return []Candidate{mk(Naive, cm.BSSFRetrievalOverlap(d))}
		case signature.Equals:
			return []Candidate{mk(Naive, cm.BSSFRetrievalEquals(d))}
		case signature.Contains:
			return []Candidate{mk(Naive, cm.BSSFRetrievalContains())}
		}

	case "FSSF":
		if desc.Frames <= 0 || desc.F <= 0 || desc.F%desc.Frames != 0 {
			return []Candidate{unmodeled(idx, desc)}
		}
		fp := cm.FSSF(desc.Frames)
		switch pred {
		case signature.Superset:
			out := []Candidate{mk(Naive, fp.FSSFRetrievalSuperset(d))}
			if cost, k := fp.FSSFSmartSuperset(d); k < dq {
				c := mk(Smart, cost)
				c.MaxProbeElements = k
				out = append(out, c)
			}
			return out
		case signature.Subset:
			return []Candidate{mk(Naive, fp.FSSFRetrievalSubset(d))}
		case signature.Overlap:
			return []Candidate{mk(Naive, fp.FSSFRetrievalOverlap(d))}
		case signature.Equals:
			return []Candidate{mk(Naive, fp.FSSFRetrievalEquals(d))}
		case signature.Contains:
			return []Candidate{mk(Naive, fp.FSSFRetrievalContains())}
		}

	case "NIX":
		// rc is the measured tree height when the snapshot has one,
		// otherwise the fanout model's estimate.
		rc := float64(desc.LookupPages)
		if rc <= 0 {
			rc = cm.NIXLookupCost()
		}
		switch pred {
		case signature.Superset, signature.Contains:
			if pred == signature.Contains {
				d = 1
			}
			out := []Candidate{mk(Naive, rc*d+cm.Ps*cm.ActualDropsSuperset(d))}
			if cost, k := nixSmartSuperset(cm, rc, d); k < int(d) {
				c := mk(Smart, cost)
				c.MaxProbeElements = k
				out = append(out, c)
			}
			return out
		case signature.Subset:
			// Appendix B with the measured rc substituted.
			overlap := cm.ProbOverlap(d)
			subset := cm.ActualDropsSubset(d) / float64(cm.N)
			nonQual := overlap - subset
			if nonQual < 0 {
				nonQual = 0
			}
			return []Candidate{mk(Naive, rc*d+cm.Pu*float64(cm.N)*nonQual+cm.Ps*float64(cm.N)*subset)}
		case signature.Overlap:
			return []Candidate{mk(Naive, rc*d+cm.Ps*cm.ActualDropsOverlap(d))}
		case signature.Equals:
			return []Candidate{mk(Naive, rc*d+cm.Pu*cm.ActualDropsSuperset(d))}
		}
	}
	return []Candidate{unmodeled(idx, desc)}
}

// nixSmartSuperset is costmodel.NIXSmartSuperset with the measured
// lookup cost substituted for the fanout model's.
func nixSmartSuperset(cm costmodel.Params, rc, dq float64) (cost float64, k int) {
	best := math.Inf(1)
	bestK := 1
	for kk := 1; float64(kk) <= dq; kk++ {
		c := rc*float64(kk) + cm.Ps*cm.ActualDropsSuperset(float64(kk))
		if c < best {
			best, bestK = c, kk
		}
	}
	return best, bestK
}

// perSegmentFloor estimates the pages one extra LSM segment adds to a
// search: every segment is a complete file set of the facility's kind,
// so the scatter re-pays at least one page per slice, frame or probe
// path the strategy touches, plus one OID-file page — regardless of how
// few entries the segment holds. The single-file formulas already cover
// the data-volume-proportional part (the total entry count is the same),
// so the floor is what honesty about the fan-out requires.
func perSegmentFloor(cm costmodel.Params, pred signature.Predicate, dq int, desc core.FacilityStats, c Candidate) float64 {
	d := float64(dq)
	switch desc.Facility {
	case "SSF":
		// One signature page plus one OID page per extra segment.
		return 2
	case "BSSF":
		// One page per slice the strategy reads, plus one OID page.
		var slices float64
		switch pred {
		case signature.Superset:
			if c.MaxProbeElements > 0 {
				slices = cm.Mq(float64(c.MaxProbeElements))
			} else {
				slices = cm.Mq(d)
			}
		case signature.Contains:
			slices = cm.Mq(1)
		case signature.Subset:
			if c.MaxZeroSlices > 0 {
				slices = float64(c.MaxZeroSlices)
			} else {
				slices = float64(cm.F) - cm.Mq(d)
			}
		case signature.Overlap:
			slices = cm.Mq(d)
		case signature.Equals:
			slices = float64(cm.F)
		}
		if slices < 1 {
			slices = 1
		}
		return slices + 1
	case "FSSF":
		// One page per frame file the strategy scans, plus one OID page.
		k := float64(desc.Frames)
		if k <= 0 {
			return 2
		}
		var frames float64
		switch pred {
		case signature.Superset, signature.Overlap:
			probe := d
			if pred == signature.Superset && c.MaxProbeElements > 0 {
				probe = float64(c.MaxProbeElements)
			}
			// Expected distinct frames hit by probe elements.
			frames = k * (1 - math.Pow(1-1/k, probe))
		case signature.Contains:
			frames = 1
		case signature.Subset, signature.Equals:
			frames = k
		}
		if frames < 1 {
			frames = 1
		}
		return frames + 1
	case "NIX":
		// Every probe repeats its rc-page descent in each segment's tree.
		rc := float64(desc.LookupPages)
		if rc <= 0 {
			rc = cm.NIXLookupCost()
		}
		probes := d
		switch {
		case pred == signature.Contains:
			probes = 1
		case pred == signature.Superset && c.MaxProbeElements > 0:
			probes = float64(c.MaxProbeElements)
		}
		if probes < 1 {
			probes = 1
		}
		return rc * probes
	}
	return 1
}

// unmodeled builds the ranked-last candidate for a facility the cost
// model does not cover.
func unmodeled(idx int, desc core.FacilityStats) Candidate {
	return Candidate{
		Index: idx, Facility: desc.Facility, Strategy: Naive,
		EstimatedRC: math.Inf(1), CorrectedRC: math.Inf(1), Unmodeled: true,
	}
}
