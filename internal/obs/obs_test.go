package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"sigfile/internal/costmodel"
	"sigfile/internal/signature"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("requests_total"); again != c {
		t.Fatal("same name returned a different counter")
	}
	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestLabeledNamesCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("searches_total", "facility", "SSF", "op", "superset")
	b := r.Counter("searches_total", "op", "superset", "facility", "SSF")
	if a != b {
		t.Fatal("label order changed instrument identity")
	}
	want := `searches_total{facility="SSF",op="superset"}`
	if a.Name() != want {
		t.Fatalf("name = %q, want %q", a.Name(), want)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("pages", []float64{10, 100})
	for _, v := range []float64{1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 1066 {
		t.Fatalf("sum = %g, want 1066", h.Sum())
	}
	cum := h.snapshot()
	// le_10: 1,5,10 → 3; le_100: +50 → 4; +Inf: 5.
	if cum[0] != 3 || cum[1] != 4 || cum[2] != 5 {
		t.Fatalf("cumulative buckets = %v, want [3 4 5]", cum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", DurationBucketsMs)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || h.Sum() != 8000 {
		t.Fatalf("count=%d sum=%g, want 8000/8000", h.Count(), h.Sum())
	}
}

func TestWriteJSONIsValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Gauge("b", "k", "v").Set(-2)
	r.Histogram("c_pages", []float64{1, 10}).Observe(4)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if decoded["a_total"] != float64(3) {
		t.Errorf("a_total = %v, want 3", decoded["a_total"])
	}
	if decoded[`b{k="v"}`] != float64(-2) {
		t.Errorf("labeled gauge = %v, want -2", decoded[`b{k="v"}`])
	}
	hist, ok := decoded["c_pages"].(map[string]any)
	if !ok || hist["count"] != float64(1) {
		t.Errorf("histogram export wrong: %v", decoded["c_pages"])
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("reads_total", "file", "ssf.sig").Add(7)
	h := r.Histogram("pages", []float64{10})
	h.Observe(3)
	h.Observe(30)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE reads_total counter",
		`reads_total{file="ssf.sig"} 7`,
		"# TYPE pages histogram",
		`pages_bucket{le="10"} 1`,
		`pages_bucket{le="+Inf"} 2`,
		"pages_sum 33",
		"pages_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestNilTraceNoops(t *testing.T) {
	var tr *Trace
	t0 := tr.Begin()
	if !t0.IsZero() {
		t.Error("nil trace Begin should return the zero time")
	}
	tr.End(PhaseIndexScan, t0, 10) // must not panic
	tr.Finish(nil)
	if tr.TotalPages() != 0 {
		t.Error("nil trace TotalPages != 0")
	}
	if _, ok := tr.SpanPages(PhaseResolve); ok {
		t.Error("nil trace reported a span")
	}
	if tr.String() != "<no trace>" {
		t.Errorf("nil trace String = %q", tr.String())
	}
	if StartTrace(nil, "SSF", "x") != nil {
		t.Error("nil sink must yield a nil (disabled) trace")
	}
}

func TestTraceLifecycle(t *testing.T) {
	var col Collector
	tr := StartTrace(&col, "BSSF", "T ⊇ Q")
	t0 := tr.Begin()
	tr.End(PhaseIndexScan, t0, 12)
	t0 = tr.Begin()
	tr.End(PhaseOIDMap, t0, 2)
	t0 = tr.Begin()
	tr.End(PhaseResolve, t0, 5)
	tr.Finish(errors.New("boom"))

	traces := col.Traces()
	if len(traces) != 1 {
		t.Fatalf("collector got %d traces, want 1", len(traces))
	}
	got := traces[0]
	if got.TotalPages() != 19 {
		t.Errorf("TotalPages = %d, want 19", got.TotalPages())
	}
	if n, ok := got.SpanPages(PhaseOIDMap); !ok || n != 2 {
		t.Errorf("oid-map span = %d,%v, want 2,true", n, ok)
	}
	if got.Err != "boom" {
		t.Errorf("Err = %q, want boom", got.Err)
	}
	if got.Duration <= 0 {
		t.Error("Duration not set")
	}
	s := got.String()
	for _, want := range []string{"BSSF", "index-scan=12pg", "resolve=5pg", "total=19pg", `err="boom"`} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

func TestContextSink(t *testing.T) {
	var col Collector
	ctx := ContextWithSink(t.Context(), &col)
	if SinkFrom(ctx) != &col {
		t.Fatal("sink did not round-trip through the context")
	}
	if SinkFrom(t.Context()) != nil {
		t.Fatal("empty context should carry no sink")
	}
}

func TestSinkFunc(t *testing.T) {
	var got *Trace
	sink := SinkFunc(func(t *Trace) { got = t })
	tr := StartTrace(sink, "NIX", "q ∈ T")
	tr.Finish(nil)
	if got == nil || got.Facility != "NIX" {
		t.Fatalf("SinkFunc not invoked: %v", got)
	}
	_ = time.Now // keep time imported via use above
}

func TestDriftChecker(t *testing.T) {
	p := costmodel.Paper(10, 250, 2)
	c := NewDriftChecker(p, 2.0)

	model, ok := ModelRC(p, "BSSF", signature.Superset, 3)
	if !ok || model <= 0 {
		t.Fatalf("ModelRC(BSSF, ⊇, 3) = %v, %v", model, ok)
	}

	// Within tolerance.
	d := c.Record("BSSF", signature.Superset, 3, model*1.3)
	if !d.Within || !d.HasModel {
		t.Errorf("ratio 1.3 flagged as drift: %+v", d)
	}
	// Outside tolerance, both directions.
	if d := c.Record("BSSF", signature.Superset, 3, model*2.5); d.Within {
		t.Errorf("ratio 2.5 not flagged: %+v", d)
	}
	if d := c.Record("BSSF", signature.Superset, 3, model/2.5); d.Within {
		t.Errorf("ratio 0.4 not flagged: %+v", d)
	}
	// Facility without a model: recorded, never a failure.
	if d := c.Record("FSSF", signature.Superset, 3, 123); d.HasModel || !d.Within {
		t.Errorf("FSSF should have no model and no failure: %+v", d)
	}

	if got := len(c.Checks()); got != 4 {
		t.Fatalf("checks = %d, want 4", got)
	}
	if got := len(c.Failures()); got != 2 {
		t.Fatalf("failures = %d, want 2", got)
	}
	var sb strings.Builder
	if n := c.Report(&sb); n != 2 {
		t.Fatalf("Report failures = %d, want 2", n)
	}
	if !strings.Contains(sb.String(), "DRIFT") || !strings.Contains(sb.String(), "no model") {
		t.Errorf("report missing statuses:\n%s", sb.String())
	}
}

func TestModelRCCoverage(t *testing.T) {
	p := costmodel.Paper(10, 250, 2)
	preds := []signature.Predicate{
		signature.Superset, signature.Subset, signature.Overlap,
		signature.Equals, signature.Contains,
	}
	for _, fac := range []string{"SSF", "BSSF", "NIX"} {
		for _, pred := range preds {
			dq := 3.0
			if pred == signature.Subset {
				dq = 20 // subset queries need Dq ≥ Dt to have answers
			}
			if rc, ok := ModelRC(p, fac, pred, dq); !ok || rc <= 0 {
				t.Errorf("ModelRC(%s, %v) = %v, %v; want positive model", fac, pred, rc, ok)
			}
		}
	}
	if _, ok := ModelRC(p, "FSSF", signature.Superset, 3); ok {
		t.Error("FSSF unexpectedly has a model")
	}
}
