// Package obs is the observability layer of the library: a lightweight
// metrics registry fed by the storage and facility packages, per-search
// trace spans that decompose a search into the paper's retrieval-cost
// phases, and a drift checker comparing measured page accesses against
// the analytical cost model.
//
// The paper's entire evaluation is a page-access cost model; this package
// makes the running system report itself in exactly those terms, so a
// deployment can watch where a live search spends its pages and detect
// when measured behaviour drifts from the model the golden tests pin.
//
// Design constraints:
//
//   - Zero allocation on the hot path. Instruments are resolved once
//     (package-level vars in the instrumented packages) and updated with
//     single atomic operations. A disabled trace is a nil pointer whose
//     methods no-op.
//   - No dependencies on the facility packages, so every layer — from
//     pagestore up to query — can feed the same registry without cycles.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	name string // full identity, labels included
	v    atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the counter's full name, labels included.
func (c *Counter) Name() string { return c.name }

// Gauge is a metric that can go up and down.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the gauge's full name, labels included.
func (g *Gauge) Name() string { return g.name }

// Histogram counts observations into fixed upper-bound buckets
// (cumulative on export, Prometheus style) plus a running sum and count.
// Observations are atomic; the bucket search is a short linear scan over
// a few bounds, with no allocation.
type Histogram struct {
	name    string
	bounds  []float64 // ascending upper bounds; an implicit +Inf follows
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Name returns the histogram's full name, labels included.
func (h *Histogram) Name() string { return h.name }

// snapshot returns cumulative bucket counts aligned with bounds plus the
// +Inf bucket.
func (h *Histogram) snapshot() []int64 {
	out := make([]int64, len(h.buckets))
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		out[i] = cum
	}
	return out
}

// PageBuckets is the default histogram layout for page-access counts:
// the paper's interesting range runs from a handful of pages (BSSF smart
// retrieval) to full scans in the thousands.
var PageBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}

// DurationBucketsMs is the default histogram layout for wall-clock
// milliseconds.
var DurationBucketsMs = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000}

// Registry holds named instruments. Lookups take the registry lock;
// instrument updates are lock-free — resolve instruments once and keep
// the pointers.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// defaultRegistry is the process-wide registry every instrumented package
// feeds. Exported through Default.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// fullName renders name plus label pairs ("k1", "v1", "k2", "v2", ...)
// into the canonical identity `name{k1="v1",k2="v2"}` with keys sorted.
func fullName(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list for %s", name))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns (creating if needed) the counter with the given name
// and optional label pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	id := fullName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[id]
	if !ok {
		c = &Counter{name: id}
		r.counters[id] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge with the given name and
// optional label pairs.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	id := fullName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[id]
	if !ok {
		g = &Gauge{name: id}
		r.gauges[id] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram with the given
// name, bucket upper bounds and optional label pairs. The bounds of an
// existing histogram are not changed.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	id := fullName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[id]
	if !ok {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		sort.Float64s(b)
		h = &Histogram{name: id, bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
		r.histograms[id] = h
	}
	return h
}

// instruments returns every instrument sorted by full name, for stable
// export output.
func (r *Registry) instruments() (cs []*Counter, gs []*Gauge, hs []*Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		cs = append(cs, c)
	}
	for _, g := range r.gauges {
		gs = append(gs, g)
	}
	for _, h := range r.histograms {
		hs = append(hs, h)
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].name < cs[j].name })
	sort.Slice(gs, func(i, j int) bool { return gs[i].name < gs[j].name })
	sort.Slice(hs, func(i, j int) bool { return hs[i].name < hs[j].name })
	return cs, gs, hs
}

// WriteJSON writes every instrument as one flat JSON object in expvar
// style: counters and gauges as numbers, histograms as
// {"count":…,"sum":…,"buckets":{"le_10":…,"le_+Inf":…}}. Keys are the
// full instrument names, sorted, so the output is diff-stable.
func (r *Registry) WriteJSON(w io.Writer) error {
	cs, gs, hs := r.instruments()
	var b strings.Builder
	b.WriteString("{")
	first := true
	field := func(format string, args ...any) {
		if !first {
			b.WriteString(",")
		}
		first = false
		b.WriteString("\n  ")
		fmt.Fprintf(&b, format, args...)
	}
	for _, c := range cs {
		field("%q: %d", c.name, c.Value())
	}
	for _, g := range gs {
		field("%q: %d", g.name, g.Value())
	}
	for _, h := range hs {
		cum := h.snapshot()
		var hb strings.Builder
		for i, bound := range h.bounds {
			fmt.Fprintf(&hb, "%q: %d, ", fmt.Sprintf("le_%g", bound), cum[i])
		}
		fmt.Fprintf(&hb, "%q: %d", "le_+Inf", cum[len(cum)-1])
		field("%q: {\"count\": %d, \"sum\": %g, \"buckets\": {%s}}",
			h.name, h.Count(), h.Sum(), hb.String())
	}
	b.WriteString("\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// promBase splits a full instrument name into its base name and label
// block ("" when unlabeled).
func promBase(id string) (base, labels string) {
	if i := strings.IndexByte(id, '{'); i >= 0 {
		return id[:i], id[i:]
	}
	return id, ""
}

// WritePrometheus writes every instrument in the Prometheus text
// exposition format (one # TYPE line per metric family, cumulative
// histogram buckets with an explicit +Inf).
func (r *Registry) WritePrometheus(w io.Writer) error {
	cs, gs, hs := r.instruments()
	var b strings.Builder
	lastType := map[string]string{}
	typeLine := func(base, typ string) {
		if lastType[base] != typ {
			fmt.Fprintf(&b, "# TYPE %s %s\n", base, typ)
			lastType[base] = typ
		}
	}
	for _, c := range cs {
		base, labels := promBase(c.name)
		typeLine(base, "counter")
		fmt.Fprintf(&b, "%s%s %d\n", base, labels, c.Value())
	}
	for _, g := range gs {
		base, labels := promBase(g.name)
		typeLine(base, "gauge")
		fmt.Fprintf(&b, "%s%s %d\n", base, labels, g.Value())
	}
	for _, h := range hs {
		base, labels := promBase(h.name)
		typeLine(base, "histogram")
		cum := h.snapshot()
		for i, bound := range h.bounds {
			fmt.Fprintf(&b, "%s_bucket%s %d\n", base, mergeLabel(labels, "le", fmt.Sprintf("%g", bound)), cum[i])
		}
		fmt.Fprintf(&b, "%s_bucket%s %d\n", base, mergeLabel(labels, "le", "+Inf"), cum[len(cum)-1])
		fmt.Fprintf(&b, "%s_sum%s %g\n", base, labels, h.Sum())
		fmt.Fprintf(&b, "%s_count%s %d\n", base, labels, h.Count())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// mergeLabel splices an extra label into an existing `{...}` block (or
// creates one).
func mergeLabel(labels, k, v string) string {
	extra := fmt.Sprintf("%s=%q", k, v)
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}
