package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Phase names one step of a search, mapped to the terms of the paper's
// retrieval-cost formulas (RC = index pages + OID-file pages + object
// fetches). Every facility decomposes the same way, so traces compare
// across facilities exactly as the paper's tables do.
type Phase string

const (
	// PhaseIndexScan is the index-structure step: the signature-file
	// scan (SSF), the bit-slice reads (BSSF), the frame scans (FSSF) or
	// the B⁺-tree probes (NIX). Its page count is SearchStats.IndexPages.
	PhaseIndexScan Phase = "index-scan"
	// PhaseOIDMap is the OID-file look-up mapping matching signature
	// positions to OIDs — the paper's LC_OID term. Its page count is
	// SearchStats.OIDPages (zero for NIX, which stores OIDs in its
	// postings).
	PhaseOIDMap Phase = "oid-map"
	// PhaseResolve is false-drop resolution plus result materialization:
	// one object fetch per candidate (P_s = P_u = 1). Its page count is
	// SearchStats.ObjectFetches.
	PhaseResolve Phase = "resolve"
)

// Span is one completed phase of a traced search.
type Span struct {
	Phase Phase
	// Pages is the number of page accesses the phase performed. The
	// spans of one trace sum exactly to the search's
	// SearchStats.TotalPages().
	Pages int64
	// Duration is the wall-clock time of the phase.
	Duration time.Duration
}

// Trace records one search's phase decomposition. A nil *Trace is the
// disabled state: every method no-ops, so the facilities call trace
// methods unconditionally with no branching or allocation when tracing
// is off.
type Trace struct {
	// Facility is the access method's Name() ("SSF", "BSSF", ...).
	Facility string
	// Predicate is the searched operator ("T ⊇ Q", ...).
	Predicate string
	// Start is when the search began.
	Start time.Time
	// Duration is the total wall-clock time, set by Finish.
	Duration time.Duration
	// Spans are the completed phases in execution order.
	Spans []Span
	// Err is the search's error, if any ("" on success), set by Finish.
	Err string

	sink TraceSink
}

// TraceSink receives completed traces. Implementations must be safe for
// concurrent use; searches on different goroutines may emit at once.
type TraceSink interface {
	EmitTrace(*Trace)
}

// StartTrace begins a trace that will be emitted to sink on Finish. A
// nil sink returns a nil trace (tracing disabled).
func StartTrace(sink TraceSink, facility, predicate string) *Trace {
	if sink == nil {
		return nil
	}
	return &Trace{Facility: facility, Predicate: predicate, Start: time.Now(), sink: sink}
}

// Begin marks the start of a phase. On a nil trace it returns the zero
// time without touching the clock.
func (t *Trace) Begin() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// End records a completed phase started at the Begin timestamp with the
// given page count. No-op on a nil trace.
func (t *Trace) End(ph Phase, started time.Time, pages int64) {
	if t == nil {
		return
	}
	t.Spans = append(t.Spans, Span{Phase: ph, Pages: pages, Duration: time.Since(started)})
}

// Finish completes the trace and emits it to the sink. No-op on a nil
// trace. err may be nil.
func (t *Trace) Finish(err error) {
	if t == nil {
		return
	}
	t.Duration = time.Since(t.Start)
	if err != nil {
		t.Err = err.Error()
	}
	if t.sink != nil {
		t.sink.EmitTrace(t)
	}
}

// TotalPages sums the page counts of all spans — by construction equal
// to the search's SearchStats.TotalPages().
func (t *Trace) TotalPages() int64 {
	if t == nil {
		return 0
	}
	var n int64
	for _, s := range t.Spans {
		n += s.Pages
	}
	return n
}

// SpanPages returns the page count of the named phase (summing repeats),
// and whether the phase appears at all.
func (t *Trace) SpanPages(ph Phase) (int64, bool) {
	if t == nil {
		return 0, false
	}
	var n int64
	found := false
	for _, s := range t.Spans {
		if s.Phase == ph {
			n += s.Pages
			found = true
		}
	}
	return n, found
}

// String renders the trace as a one-line EXPLAIN ANALYZE-style report:
//
//	SSF T ⊇ Q: index-scan=13pg/1.2ms oid-map=1pg/80µs resolve=4pg/0.4ms total=18pg/1.7ms
func (t *Trace) String() string {
	if t == nil {
		return "<no trace>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s:", t.Facility, t.Predicate)
	for _, s := range t.Spans {
		fmt.Fprintf(&b, " %s=%dpg/%s", s.Phase, s.Pages, s.Duration.Round(time.Microsecond))
	}
	fmt.Fprintf(&b, " total=%dpg/%s", t.TotalPages(), t.Duration.Round(time.Microsecond))
	if t.Err != "" {
		fmt.Fprintf(&b, " err=%q", t.Err)
	}
	return b.String()
}

// Collector is a TraceSink that retains every emitted trace; tests and
// per-query reporting use it.
type Collector struct {
	mu     sync.Mutex
	traces []*Trace
}

// EmitTrace implements TraceSink.
func (c *Collector) EmitTrace(t *Trace) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.traces = append(c.traces, t)
}

// Traces returns the collected traces in emission order.
func (c *Collector) Traces() []*Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Trace, len(c.traces))
	copy(out, c.traces)
	return out
}

// Reset drops all collected traces.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.traces = nil
}

// SinkFunc adapts a function to the TraceSink interface.
type SinkFunc func(*Trace)

// EmitTrace implements TraceSink.
func (f SinkFunc) EmitTrace(t *Trace) { f(t) }

// sinkKey keys the trace sink in a context.
type sinkKey struct{}

// ContextWithSink returns a context carrying a trace sink; every
// SearchContext under it is traced, and the spans ride the context
// through nested calls (e.g. the query engine driving a facility).
func ContextWithSink(ctx context.Context, sink TraceSink) context.Context {
	return context.WithValue(ctx, sinkKey{}, sink)
}

// SinkFrom returns the trace sink carried by ctx, or nil.
func SinkFrom(ctx context.Context) TraceSink {
	sink, _ := ctx.Value(sinkKey{}).(TraceSink)
	return sink
}
