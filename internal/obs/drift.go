package obs

import (
	"fmt"
	"io"
	"sync"

	"sigfile/internal/costmodel"
	"sigfile/internal/signature"
)

// This file is the cost-model drift checker: it compares measured page
// accesses against the analytical predictions of costmodel.Params and
// flags divergence beyond a tolerance. The golden tests pin the model to
// the paper; the drift checker pins the *running system* to the model,
// so a regression that changes real page traffic (a broken buffer
// strategy, an accidental extra scan) surfaces as drift even when the
// answer set stays correct.

// Drift is the outcome of one measured-vs-model comparison.
type Drift struct {
	Facility  string
	Predicate string
	Dq        int
	// Model is the analytical RC prediction; Measured the observed mean
	// page accesses. Ratio is Measured/Model.
	Model, Measured, Ratio float64
	// HasModel is false when the paper's model has no formula for this
	// facility/predicate pair (e.g. FSSF); such points are recorded but
	// never counted as failures.
	HasModel bool
	// Within reports |drift| inside tolerance: 1/factor ≤ Ratio ≤ factor.
	Within bool
}

func (d Drift) String() string {
	if !d.HasModel {
		return fmt.Sprintf("%s %s Dq=%d measured=%.1f (no model)", d.Facility, d.Predicate, d.Dq, d.Measured)
	}
	status := "ok"
	if !d.Within {
		status = "DRIFT"
	}
	return fmt.Sprintf("%s %s Dq=%d model=%.1f measured=%.1f ratio=%.2f %s",
		d.Facility, d.Predicate, d.Dq, d.Model, d.Measured, d.Ratio, status)
}

// DriftChecker accumulates measured-vs-model comparisons for one
// parameter set. Safe for concurrent Record calls.
type DriftChecker struct {
	params costmodel.Params
	factor float64

	mu     sync.Mutex
	checks []Drift

	recorded *Counter
	failed   *Counter
}

// DefaultDriftFactor is the default multiplicative tolerance: measured
// page accesses must stay within 2× of the model in either direction.
// Cross-validation (the xval experiment) holds the implementation within
// ~1.35× of the model across every facility and query type, so 2×
// leaves headroom for workload noise while still catching a facility
// whose page traffic regressed structurally.
const DefaultDriftFactor = 2.0

// NewDriftChecker returns a checker against params with the given
// multiplicative tolerance factor (≤ 0 selects DefaultDriftFactor).
func NewDriftChecker(params costmodel.Params, factor float64) *DriftChecker {
	if factor <= 0 {
		factor = DefaultDriftFactor
	}
	return &DriftChecker{
		params:   params,
		factor:   factor,
		recorded: Default().Counter("sigfile_drift_checks_total"),
		failed:   Default().Counter("sigfile_drift_failures_total"),
	}
}

// Params returns the model parameters the checker compares against.
func (c *DriftChecker) Params() costmodel.Params { return c.params }

// Factor returns the multiplicative tolerance.
func (c *DriftChecker) Factor() float64 { return c.factor }

// Record compares one measured retrieval cost (mean page accesses of a
// query of cardinality dq) against the model's prediction and stores the
// verdict.
func (c *DriftChecker) Record(facility string, pred signature.Predicate, dq int, measured float64) Drift {
	model, ok := ModelRC(c.params, facility, pred, float64(dq))
	d := Drift{
		Facility:  facility,
		Predicate: pred.String(),
		Dq:        dq,
		Measured:  measured,
		HasModel:  ok,
		Within:    true,
	}
	if ok {
		d.Model = model
		if model > 0 {
			d.Ratio = measured / model
			d.Within = d.Ratio >= 1/c.factor && d.Ratio <= c.factor
		} else {
			d.Within = measured == 0
		}
	}
	c.recorded.Inc()
	if !d.Within {
		c.failed.Inc()
	}
	c.mu.Lock()
	c.checks = append(c.checks, d)
	c.mu.Unlock()
	return d
}

// Checks returns every recorded comparison in order.
func (c *DriftChecker) Checks() []Drift {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Drift, len(c.checks))
	copy(out, c.checks)
	return out
}

// Failures returns the comparisons that exceeded tolerance.
func (c *DriftChecker) Failures() []Drift {
	var out []Drift
	for _, d := range c.Checks() {
		if !d.Within {
			out = append(out, d)
		}
	}
	return out
}

// Report writes a fixed-width table of every check to w and returns the
// number of failures.
func (c *DriftChecker) Report(w io.Writer) int {
	checks := c.Checks()
	fmt.Fprintf(w, "  %-8s %-8s %4s %10s %10s %6s  %s\n",
		"facility", "query", "Dq", "model RC", "measured", "ratio", "status")
	failures := 0
	for _, d := range checks {
		status := "ok"
		ratio := "-"
		model := "-"
		switch {
		case !d.HasModel:
			status = "no model"
		case !d.Within:
			status = "DRIFT"
			failures++
		}
		if d.HasModel {
			model = fmt.Sprintf("%.1f", d.Model)
			ratio = fmt.Sprintf("%.2f", d.Ratio)
		}
		fmt.Fprintf(w, "  %-8s %-8s %4d %10s %10.1f %6s  %s\n",
			d.Facility, d.Predicate, d.Dq, model, d.Measured, ratio, status)
	}
	fmt.Fprintf(w, "  %d checks, %d outside tolerance (factor %.2f)\n", len(checks), failures, c.factor)
	return failures
}

// ModelRC returns the analytical retrieval-cost prediction for one
// facility and predicate at query cardinality dq, and whether the model
// covers that pair at all. The facility name is the AccessMethod.Name()
// value; FSSF (and unknown facilities) have no Table 5/6 formula and
// report false.
func ModelRC(p costmodel.Params, facility string, pred signature.Predicate, dq float64) (float64, bool) {
	switch facility {
	case "SSF":
		switch pred {
		case signature.Superset:
			return p.SSFRetrievalSuperset(dq), true
		case signature.Subset:
			return p.SSFRetrievalSubset(dq), true
		case signature.Overlap:
			return p.SSFRetrievalOverlap(dq), true
		case signature.Equals:
			return p.SSFRetrievalEquals(dq), true
		case signature.Contains:
			return p.SSFRetrievalContains(), true
		}
	case "BSSF":
		switch pred {
		case signature.Superset:
			return p.BSSFRetrievalSuperset(dq), true
		case signature.Subset:
			return p.BSSFRetrievalSubset(dq), true
		case signature.Overlap:
			return p.BSSFRetrievalOverlap(dq), true
		case signature.Equals:
			return p.BSSFRetrievalEquals(dq), true
		case signature.Contains:
			return p.BSSFRetrievalContains(), true
		}
	case "NIX":
		switch pred {
		case signature.Superset:
			return p.NIXRetrievalSuperset(dq), true
		case signature.Subset:
			return p.NIXRetrievalSubset(dq), true
		case signature.Overlap:
			return p.NIXRetrievalOverlap(dq), true
		case signature.Equals:
			return p.NIXRetrievalEquals(dq), true
		case signature.Contains:
			return p.NIXRetrievalContains(), true
		}
	}
	return 0, false
}
