package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	b := New(0)
	if b.Len() != 0 || b.Count() != 0 || b.Any() {
		t.Fatalf("empty set: Len=%d Count=%d Any=%v", b.Len(), b.Count(), b.Any())
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetTestClear(t *testing.T) {
	b := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Test(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := b.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	b.Clear(64)
	if b.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := b.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	b := New(10)
	for name, f := range map[string]func(){
		"Set(10)":   func() { b.Set(10) },
		"Test(-1)":  func() { b.Test(-1) },
		"Clear(99)": func() { b.Clear(99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestFillResetNot(t *testing.T) {
	b := New(70)
	b.Fill()
	if b.Count() != 70 {
		t.Fatalf("Fill: Count = %d, want 70", b.Count())
	}
	b.Not()
	if b.Count() != 0 {
		t.Fatalf("Not after Fill: Count = %d, want 0", b.Count())
	}
	b.Not()
	if b.Count() != 70 {
		t.Fatalf("double Not: Count = %d, want 70", b.Count())
	}
	b.Reset()
	if b.Any() {
		t.Fatal("Reset left bits set")
	}
}

func TestTrimInvariant(t *testing.T) {
	// Operations on a 70-bit set must never set the 58 tail bits of the
	// second word; otherwise Count and Equal would be wrong.
	b := New(70)
	b.Fill()
	if w := b.Words()[1]; w != (1<<6)-1 {
		t.Fatalf("tail word = %#x, want %#x", w, uint64((1<<6)-1))
	}
	b.Not()
	if w := b.Words()[1]; w != 0 {
		t.Fatalf("tail word after Not = %#x, want 0", w)
	}
}

func TestBooleanOps(t *testing.T) {
	a := New(100)
	b := New(100)
	for i := 0; i < 100; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Set(i)
	}
	or := a.Clone()
	or.Or(b)
	and := a.Clone()
	and.And(b)
	xor := a.Clone()
	xor.Xor(b)
	diff := a.Clone()
	diff.AndNot(b)
	for i := 0; i < 100; i++ {
		ea, eb := i%2 == 0, i%3 == 0
		if or.Test(i) != (ea || eb) {
			t.Fatalf("Or bit %d wrong", i)
		}
		if and.Test(i) != (ea && eb) {
			t.Fatalf("And bit %d wrong", i)
		}
		if xor.Test(i) != (ea != eb) {
			t.Fatalf("Xor bit %d wrong", i)
		}
		if diff.Test(i) != (ea && !eb) {
			t.Fatalf("AndNot bit %d wrong", i)
		}
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	defer func() {
		if recover() == nil {
			t.Fatal("Or with mismatched lengths did not panic")
		}
	}()
	a.Or(b)
}

func TestContainsAllAndSubsetOf(t *testing.T) {
	// The paper's Figure 1 example: query 01010100, target 01101011 does
	// NOT match (bit 3 of query not in target); target 01011101 does.
	q, err := ParseString("01010100")
	if err != nil {
		t.Fatal(err)
	}
	match, _ := ParseString("01011101")
	nomatch, _ := ParseString("01101011")
	if !match.ContainsAll(q) {
		t.Error("expected 01011101 ⊇ 01010100")
	}
	if nomatch.ContainsAll(q) {
		t.Error("expected 01101011 ⊉ 01010100")
	}
	if !q.SubsetOf(match) {
		t.Error("expected 01010100 ⊆ 01011101")
	}
	if q.SubsetOf(nomatch) {
		t.Error("expected 01010100 ⊄ 01101011")
	}
}

func TestIntersects(t *testing.T) {
	a, b := New(128), New(128)
	if a.Intersects(b) {
		t.Fatal("two empty sets intersect")
	}
	a.Set(127)
	if a.Intersects(b) {
		t.Fatal("disjoint sets intersect")
	}
	b.Set(127)
	if !a.Intersects(b) {
		t.Fatal("sets sharing bit 127 do not intersect")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(65), New(65)
	if !a.Equal(b) {
		t.Fatal("fresh equal-length sets not Equal")
	}
	a.Set(64)
	if a.Equal(b) {
		t.Fatal("different sets Equal")
	}
	b.Set(64)
	if !a.Equal(b) {
		t.Fatal("same sets not Equal")
	}
	if a.Equal(New(64)) {
		t.Fatal("sets of different length Equal")
	}
}

func TestNextSetAndOnes(t *testing.T) {
	b := New(200)
	want := []int{0, 63, 64, 65, 128, 199}
	for _, i := range want {
		b.Set(i)
	}
	got := b.Ones()
	if len(got) != len(want) {
		t.Fatalf("Ones = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ones = %v, want %v", got, want)
		}
	}
	if _, ok := b.NextSet(200); ok {
		t.Fatal("NextSet past end returned ok")
	}
	if i, ok := b.NextSet(66); !ok || i != 128 {
		t.Fatalf("NextSet(66) = %d,%v want 128,true", i, ok)
	}
}

func TestNextClearAndZeros(t *testing.T) {
	b := New(130)
	b.Fill()
	if _, ok := b.NextClear(0); ok {
		t.Fatal("NextClear on full set returned ok")
	}
	b.Clear(0)
	b.Clear(64)
	b.Clear(129)
	zeros := b.Zeros()
	want := []int{0, 64, 129}
	if len(zeros) != 3 || zeros[0] != 0 || zeros[1] != 64 || zeros[2] != 129 {
		t.Fatalf("Zeros = %v, want %v", zeros, want)
	}
	if i, ok := b.NextClear(1); !ok || i != 64 {
		t.Fatalf("NextClear(1) = %d,%v want 64,true", i, ok)
	}
	if i, ok := b.NextClear(65); !ok || i != 129 {
		t.Fatalf("NextClear(65) = %d,%v want 129,true", i, ok)
	}
}

func TestStringRoundTrip(t *testing.T) {
	s := "0110010110001000000000000000000000000000000000000000000000000000011"
	b, err := ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != s {
		t.Fatalf("round trip: got %s", b.String())
	}
	if _, err := ParseString("01x"); err == nil {
		t.Fatal("ParseString accepted invalid rune")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, n := range []int{1, 7, 8, 9, 63, 64, 65, 250, 500, 2500} {
		rng := rand.New(rand.NewSource(int64(n)))
		b := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				b.Set(i)
			}
		}
		buf := make([]byte, ByteLen(n))
		if got := b.MarshalBinaryTo(buf); got != ByteLen(n) {
			t.Fatalf("n=%d: wrote %d bytes, want %d", n, got, ByteLen(n))
		}
		back, err := UnmarshalBinary(n, buf)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !b.Equal(back) {
			t.Fatalf("n=%d: round trip mismatch\n got %s\nwant %s", n, back, b)
		}
	}
}

func TestUnmarshalShortBuffer(t *testing.T) {
	if _, err := UnmarshalBinary(64, make([]byte, 7)); err == nil {
		t.Fatal("UnmarshalBinary accepted short buffer")
	}
}

func TestFromWords(t *testing.T) {
	b := FromWords(70, []uint64{^uint64(0), ^uint64(0)})
	if b.Count() != 70 {
		t.Fatalf("FromWords did not trim tail: Count = %d", b.Count())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FromWords with short slice did not panic")
		}
	}()
	FromWords(129, []uint64{0, 0})
}

// randomSet builds a bitset of n bits with each bit set with probability
// 1/2 using the given seed.
func randomSet(n int, seed int64) *BitSet {
	rng := rand.New(rand.NewSource(seed))
	b := New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			b.Set(i)
		}
	}
	return b
}

// Property: for random sets, a.Or(b) ⊇ a, ⊇ b and a.And(b) ⊆ a, ⊆ b.
func TestPropertyOrAndOrdering(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := randomSet(300, seedA)
		b := randomSet(300, seedB)
		or := a.Clone()
		or.Or(b)
		and := a.Clone()
		and.And(b)
		return or.ContainsAll(a) && or.ContainsAll(b) &&
			and.SubsetOf(a) && and.SubsetOf(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ContainsAll(q) is exactly the same as "q.AndNot(target) is
// empty", the definition of bit-level containment.
func TestPropertyContainsAllDefinition(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		target := randomSet(250, seedA)
		q := randomSet(250, seedB)
		q.And(target) // force a subset half the time
		if seedB%2 == 0 {
			q = randomSet(250, seedB)
		}
		diff := q.Clone()
		diff.AndNot(target)
		return target.ContainsAll(q) == diff.None()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Count(a) + Count(b) == Count(a|b) + Count(a&b).
func TestPropertyInclusionExclusion(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := randomSet(500, seedA)
		b := randomSet(500, seedB)
		or := a.Clone()
		or.Or(b)
		and := a.Clone()
		and.And(b)
		return a.Count()+b.Count() == or.Count()+and.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: marshal/unmarshal is the identity for arbitrary sizes.
func TestPropertyMarshalIdentity(t *testing.T) {
	f := func(seed int64, sz uint16) bool {
		n := int(sz%3000) + 1
		b := randomSet(n, seed)
		buf := make([]byte, ByteLen(n))
		b.MarshalBinaryTo(buf)
		back, err := UnmarshalBinary(n, buf)
		return err == nil && b.Equal(back)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Ones and Zeros partition [0, n).
func TestPropertyOnesZerosPartition(t *testing.T) {
	f := func(seed int64) bool {
		b := randomSet(333, seed)
		ones, zeros := b.Ones(), b.Zeros()
		if len(ones)+len(zeros) != 333 {
			return false
		}
		seen := make(map[int]bool, 333)
		for _, i := range ones {
			if !b.Test(i) || seen[i] {
				return false
			}
			seen[i] = true
		}
		for _, i := range zeros {
			if b.Test(i) || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkContainsAll(b *testing.B) {
	target := randomSet(2500, 1)
	q := randomSet(2500, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		target.ContainsAll(q)
	}
}

func BenchmarkOr(b *testing.B) {
	x := randomSet(2500, 1)
	y := randomSet(2500, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Or(y)
	}
}
