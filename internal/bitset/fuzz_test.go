package bitset

import "testing"

// FuzzUnmarshalBinary: arbitrary bytes with arbitrary claimed lengths
// must never panic, and successful unmarshals must round-trip.
func FuzzUnmarshalBinary(f *testing.F) {
	f.Add(uint16(64), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint16(0), []byte{})
	f.Add(uint16(250), make([]byte, 32))
	f.Fuzz(func(t *testing.T, nraw uint16, data []byte) {
		n := int(nraw)
		b, err := UnmarshalBinary(n, data)
		if err != nil {
			if len(data) >= ByteLen(n) {
				t.Fatalf("sufficient buffer rejected: n=%d len=%d", n, len(data))
			}
			return
		}
		if b.Len() != n {
			t.Fatalf("length %d, want %d", b.Len(), n)
		}
		out := make([]byte, ByteLen(n))
		b.MarshalBinaryTo(out)
		back, err := UnmarshalBinary(n, out)
		if err != nil || !b.Equal(back) {
			t.Fatal("round trip failed")
		}
	})
}
