// Package bitset provides dense, fixed-capacity bit sets used as the
// in-memory representation of signatures and bit slices throughout the
// sigfile library.
//
// A BitSet is a sequence of bits addressed from 0. Bits are packed into
// 64-bit words. The zero value of BitSet is an empty set of length 0; use
// New to create a set with a given number of bits.
//
// The operations mirror what the signature-file algorithms of Ishikawa,
// Kitagawa and Ohbo (SIGMOD 1993) need: superimposition (OR), the two
// signature match conditions (ContainsAll for T ⊇ Q, SubsetOf for T ⊆ Q),
// intersection tests for the overlap operator, and population counts for
// signature-weight statistics.
package bitset

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"strings"
	"sync"
)

const (
	wordBits  = 64
	wordShift = 6
	wordMask  = wordBits - 1
)

// BitSet is a fixed-length sequence of bits.
//
// All binary operations (Or, And, ContainsAll, ...) require both operands to
// have the same length; they panic otherwise, because mixing signature
// widths is always a programming error in this library.
type BitSet struct {
	nbits int
	words []uint64
}

// New returns a BitSet holding nbits bits, all zero. It panics if nbits is
// negative.
func New(nbits int) *BitSet {
	if nbits < 0 {
		panic("bitset: negative length")
	}
	return &BitSet{nbits: nbits, words: make([]uint64, wordsFor(nbits))}
}

// FromWords builds a BitSet of nbits bits backed by a copy of the given
// words. Trailing bits beyond nbits in the last word are cleared. It panics
// if the word slice is too short for nbits.
func FromWords(nbits int, words []uint64) *BitSet {
	need := wordsFor(nbits)
	if len(words) < need {
		panic(fmt.Sprintf("bitset: %d words cannot hold %d bits", len(words), nbits))
	}
	b := &BitSet{nbits: nbits, words: make([]uint64, need)}
	copy(b.words, words[:need])
	b.trim()
	return b
}

func wordsFor(nbits int) int { return (nbits + wordMask) >> wordShift }

// trim clears bits beyond nbits in the final word, keeping the invariant
// that unused tail bits are zero.
func (b *BitSet) trim() {
	if b.nbits&wordMask != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (uint64(1) << uint(b.nbits&wordMask)) - 1
	}
}

// Len returns the number of bits the set holds (not the population count).
func (b *BitSet) Len() int { return b.nbits }

// Words exposes the underlying words. The returned slice aliases the
// BitSet's storage; callers must not modify it unless they own the set.
func (b *BitSet) Words() []uint64 { return b.words }

// Set sets bit i to 1. It panics if i is out of range.
func (b *BitSet) Set(i int) {
	b.check(i)
	b.words[i>>wordShift] |= 1 << uint(i&wordMask)
}

// Clear sets bit i to 0. It panics if i is out of range.
func (b *BitSet) Clear(i int) {
	b.check(i)
	b.words[i>>wordShift] &^= 1 << uint(i&wordMask)
}

// Test reports whether bit i is 1. It panics if i is out of range.
func (b *BitSet) Test(i int) bool {
	b.check(i)
	return b.words[i>>wordShift]&(1<<uint(i&wordMask)) != 0
}

func (b *BitSet) check(i int) {
	if i < 0 || i >= b.nbits {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, b.nbits))
	}
}

// Reset clears every bit.
func (b *BitSet) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Fill sets every bit.
func (b *BitSet) Fill() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
}

// Clone returns a deep copy of b.
func (b *BitSet) Clone() *BitSet {
	c := &BitSet{nbits: b.nbits, words: make([]uint64, len(b.words))}
	copy(c.words, b.words)
	return c
}

// CopyFrom overwrites b with the contents of src. The lengths must match.
func (b *BitSet) CopyFrom(src *BitSet) {
	b.mustMatch(src)
	copy(b.words, src.words)
}

// Count returns the number of 1 bits (the signature weight).
func (b *BitSet) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether at least one bit is set.
func (b *BitSet) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// None reports whether no bit is set.
func (b *BitSet) None() bool { return !b.Any() }

func (b *BitSet) mustMatch(o *BitSet) {
	if b.nbits != o.nbits {
		panic(fmt.Sprintf("bitset: length mismatch %d != %d", b.nbits, o.nbits))
	}
}

// Or sets b to b ∪ o (bitwise OR). This is the superimposition step of
// superimposed coding.
func (b *BitSet) Or(o *BitSet) {
	b.mustMatch(o)
	for i, w := range o.words {
		b.words[i] |= w
	}
}

// And sets b to b ∩ o (bitwise AND). Used when intersecting bit slices for
// a T ⊇ Q search in the bit-sliced organization.
func (b *BitSet) And(o *BitSet) {
	b.mustMatch(o)
	for i, w := range o.words {
		b.words[i] &= w
	}
}

// AndNot sets b to b \ o.
func (b *BitSet) AndNot(o *BitSet) {
	b.mustMatch(o)
	for i, w := range o.words {
		b.words[i] &^= w
	}
}

// Xor sets b to the symmetric difference of b and o.
func (b *BitSet) Xor(o *BitSet) {
	b.mustMatch(o)
	for i, w := range o.words {
		b.words[i] ^= w
	}
}

// Not flips every bit of b in place.
func (b *BitSet) Not() {
	for i := range b.words {
		b.words[i] = ^b.words[i]
	}
	b.trim()
}

// Equal reports whether b and o hold exactly the same bits. Sets of
// different lengths are never equal.
func (b *BitSet) Equal(o *BitSet) bool {
	if b.nbits != o.nbits {
		return false
	}
	for i, w := range b.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// ContainsAll reports whether every 1 bit of q is also 1 in b, i.e.
// b ⊇ q as bit sets. This is the signature-file match condition for the
// query type T ⊇ Q: a target signature b qualifies for query signature q
// iff ContainsAll(q).
func (b *BitSet) ContainsAll(q *BitSet) bool {
	b.mustMatch(q)
	for i, w := range q.words {
		if b.words[i]&w != w {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every 1 bit of b is also 1 in q, i.e. b ⊆ q.
// This is the signature-file match condition for the query type T ⊆ Q.
func (b *BitSet) SubsetOf(q *BitSet) bool {
	return q.ContainsAll(b)
}

// Intersects reports whether b and o share at least one 1 bit. This is the
// signature-level test for the overlap operator (T ∩ Q ≠ ∅).
func (b *BitSet) Intersects(o *BitSet) bool {
	b.mustMatch(o)
	for i, w := range o.words {
		if b.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// NextSet returns the index of the first 1 bit at position >= i, and true,
// or (0, false) if there is none. Together with a for loop it iterates all
// set bits in increasing order:
//
//	for i, ok := b.NextSet(0); ok; i, ok = b.NextSet(i + 1) { ... }
func (b *BitSet) NextSet(i int) (int, bool) {
	if i < 0 {
		i = 0
	}
	if i >= b.nbits {
		return 0, false
	}
	wi := i >> wordShift
	w := b.words[wi] >> uint(i&wordMask)
	if w != 0 {
		return i + bits.TrailingZeros64(w), true
	}
	for wi++; wi < len(b.words); wi++ {
		if b.words[wi] != 0 {
			return wi<<wordShift + bits.TrailingZeros64(b.words[wi]), true
		}
	}
	return 0, false
}

// NextClear returns the index of the first 0 bit at position >= i, and
// true, or (0, false) if there is none.
func (b *BitSet) NextClear(i int) (int, bool) {
	if i < 0 {
		i = 0
	}
	for ; i < b.nbits; i++ {
		wi := i >> wordShift
		w := ^b.words[wi] >> uint(i&wordMask)
		if w == 0 {
			i = (wi+1)<<wordShift - 1
			continue
		}
		j := i + bits.TrailingZeros64(w)
		if j < b.nbits {
			return j, true
		}
		return 0, false
	}
	return 0, false
}

// Ones returns the indices of all 1 bits in increasing order.
func (b *BitSet) Ones() []int {
	out := make([]int, 0, b.Count())
	for i, ok := b.NextSet(0); ok; i, ok = b.NextSet(i + 1) {
		out = append(out, i)
	}
	return out
}

// Zeros returns the indices of all 0 bits in increasing order.
func (b *BitSet) Zeros() []int {
	out := make([]int, 0, b.nbits-b.Count())
	for i := 0; i < b.nbits; i++ {
		if !b.Test(i) {
			out = append(out, i)
		}
	}
	return out
}

// String renders the bits most-significant-last, e.g. "01010100" for a set
// with bits 1, 3 and 5 set in an 8-bit set, matching the figures in the
// paper where bit 0 is leftmost.
func (b *BitSet) String() string {
	var sb strings.Builder
	sb.Grow(b.nbits)
	for i := 0; i < b.nbits; i++ {
		if b.Test(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// ParseString parses a string of '0' and '1' runes (as produced by String)
// into a BitSet.
func ParseString(s string) (*BitSet, error) {
	b := New(len(s))
	for i, r := range s {
		switch r {
		case '0':
		case '1':
			b.Set(i)
		default:
			return nil, fmt.Errorf("bitset: invalid rune %q at position %d", r, i)
		}
	}
	return b, nil
}

// ByteLen returns the number of bytes MarshalBinaryTo writes for a set of
// nbits bits.
func ByteLen(nbits int) int { return (nbits + 7) / 8 }

// MarshalBinaryTo serializes the bit set into dst in little-endian bit
// order (bit i of the set is bit i%8 of byte i/8) and returns the number of
// bytes written. dst must have at least ByteLen(b.Len()) bytes.
func (b *BitSet) MarshalBinaryTo(dst []byte) int {
	n := ByteLen(b.nbits)
	if len(dst) < n {
		panic(fmt.Sprintf("bitset: destination %d bytes, need %d", len(dst), n))
	}
	var buf [8]byte
	off := 0
	for _, w := range b.words {
		binary.LittleEndian.PutUint64(buf[:], w)
		off += copy(dst[off:n], buf[:])
	}
	return n
}

// UnmarshalBinary deserializes nbits bits from src (as produced by
// MarshalBinaryTo) into a fresh BitSet.
func UnmarshalBinary(nbits int, src []byte) (*BitSet, error) {
	b := New(nbits)
	if err := b.LoadBinary(src); err != nil {
		return nil, err
	}
	return b, nil
}

// LoadBinary overwrites b in place from src (as produced by
// MarshalBinaryTo), keeping b's length. It is UnmarshalBinary without the
// allocation, for scan loops that decode one record per slot into a
// reusable scratch set.
func (b *BitSet) LoadBinary(src []byte) error {
	n := ByteLen(b.nbits)
	if len(src) < n {
		return fmt.Errorf("bitset: source %d bytes, need %d for %d bits", len(src), n, b.nbits)
	}
	var buf [8]byte
	for wi := range b.words {
		copy(buf[:], src[wi*8:min(n, (wi+1)*8)])
		b.words[wi] = binary.LittleEndian.Uint64(buf[:])
		buf = [8]byte{}
	}
	b.trim()
	return nil
}

// LoadWordsAt overwrites b's words starting at word index wordOff with the
// little-endian 64-bit words packed in src. It is the bulk page-to-bitset
// path of the bit-sliced organizations: one slice page holds a word-aligned
// run of positions, so a page read lands directly in the accumulator
// without per-bit addressing. Words beyond b's backing are ignored; the
// final word is re-trimmed so tail bits beyond Len() stay zero.
func (b *BitSet) LoadWordsAt(wordOff int, src []byte) {
	if wordOff < 0 || wordOff > len(b.words) {
		panic(fmt.Sprintf("bitset: word offset %d out of range [0,%d]", wordOff, len(b.words)))
	}
	n := len(src) / 8
	if rest := len(b.words) - wordOff; n > rest {
		n = rest
	}
	for i := 0; i < n; i++ {
		b.words[wordOff+i] = binary.LittleEndian.Uint64(src[i*8:])
	}
	b.trim()
}

// AndAll sets dst to the intersection of dst and every set in srcs,
// splitting the word range across up to workers goroutines. Bitwise AND
// is associative and commutative, so the result is identical to folding
// the sets in sequentially — parallelism changes wall-clock only. All
// sets must have dst's length.
func AndAll(dst *BitSet, srcs []*BitSet, workers int) {
	combineAll(dst, srcs, workers, func(d, s []uint64) {
		for i, w := range s {
			d[i] &= w
		}
	})
}

// OrAll sets dst to the union of dst and every set in srcs, splitting the
// word range across up to workers goroutines. See AndAll.
func OrAll(dst *BitSet, srcs []*BitSet, workers int) {
	combineAll(dst, srcs, workers, func(d, s []uint64) {
		for i, w := range s {
			d[i] |= w
		}
	})
}

// combineWorkerWords is the minimum number of words one combine worker
// should own; below this the goroutine overhead outweighs the scan.
const combineWorkerWords = 1024

func combineAll(dst *BitSet, srcs []*BitSet, workers int, op func(d, s []uint64)) {
	for _, s := range srcs {
		dst.mustMatch(s)
	}
	nw := len(dst.words)
	if workers > nw/combineWorkerWords {
		workers = nw / combineWorkerWords
	}
	if workers <= 1 || len(srcs) == 0 {
		for _, s := range srcs {
			op(dst.words, s.words)
		}
		return
	}
	var wg sync.WaitGroup
	for part := 0; part < workers; part++ {
		lo := part * nw / workers
		hi := (part + 1) * nw / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for _, s := range srcs {
				op(dst.words[lo:hi], s.words[lo:hi])
			}
		}(lo, hi)
	}
	wg.Wait()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
