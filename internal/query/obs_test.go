package query

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"sigfile/internal/obs"
	"sigfile/internal/signature"
)

// TestResultSetTrace: an index-driven query carries the driving search's
// phase trace, its page counts agree with IndexStats, and a sink riding
// the caller's context receives the same trace.
func TestResultSetTrace(t *testing.T) {
	e := newUniversity(t)
	if _, err := e.CreateIndex("Student", "hobbies", KindBSSF, signature.MustNew(128, 3), nil); err != nil {
		t.Fatal(err)
	}
	var collector obs.Collector
	ctx := obs.ContextWithSink(context.Background(), &collector)
	res, err := e.RunContext(ctx, `select Student where hobbies has-subset ("Baseball", "Fishing")`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("index-driven query has no trace")
	}
	if res.Trace.Facility != "BSSF" {
		t.Errorf("trace facility %q, want BSSF", res.Trace.Facility)
	}
	if res.Trace.TotalPages() != res.IndexStats.TotalPages() {
		t.Errorf("trace total %d != IndexStats total %d", res.Trace.TotalPages(), res.IndexStats.TotalPages())
	}
	traces := collector.Traces()
	if len(traces) != 1 || traces[0] != res.Trace {
		t.Errorf("context sink saw %d traces, want exactly the ResultSet's", len(traces))
	}

	// A heap scan has no index search, hence no trace.
	scan := newUniversity(t)
	sres, err := scan.Run(`select Student where hobbies has-element "Chess"`)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Trace != nil {
		t.Error("scan query produced a trace")
	}
}

// TestSlowSearchLog: queries over the threshold are reported with plan
// and trace; a zero threshold logs everything, disabling stops the log.
func TestSlowSearchLog(t *testing.T) {
	e := newUniversity(t)
	if _, err := e.CreateIndex("Student", "hobbies", KindBSSF, signature.MustNew(128, 3), nil); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	e.SetSlowSearchLog(&buf, time.Nanosecond) // everything is slow
	if _, err := e.Run(`select Student where hobbies has-element "Chess"`); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "slow query") || !strings.Contains(out, "plan: index(BSSF") {
		t.Errorf("slow log missing query/plan: %q", out)
	}
	if !strings.Contains(out, "index-scan=") {
		t.Errorf("slow log missing trace: %q", out)
	}

	e.SetSlowSearchLog(nil, 0)
	before := buf.String()
	if _, err := e.Run(`select Student where hobbies has-element "Chess"`); err != nil {
		t.Fatal(err)
	}
	if buf.String() != before {
		t.Error("disabled slow log still wrote")
	}
}

// TestEngineContextCancellation: a canceled context surfaces ctx.Err()
// from the driving index search, and the engine still answers afterwards.
func TestEngineContextCancellation(t *testing.T) {
	e := newUniversity(t)
	if _, err := e.CreateIndex("Student", "hobbies", KindSSF, signature.MustNew(128, 3), nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	const q = `select Student where hobbies has-subset ("Baseball")`
	if _, err := e.RunContext(ctx, q); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if _, err := e.RunContext(context.Background(), q); err != nil {
		t.Errorf("engine broken after cancellation: %v", err)
	}
}
