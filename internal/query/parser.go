package query

import (
	"fmt"
	"strconv"
	"strings"

	"sigfile/internal/signature"
)

// Parse parses one select statement.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("trailing input starting with %s", p.peek().kind)
	}
	return q, nil
}

// Statement is one top-level statement: a select, optionally prefixed
// with EXPLAIN to request the plan instead of the results.
type Statement struct {
	Explain bool
	Query   *Query
}

// ParseStatement parses `[EXPLAIN] SELECT ...`.
func ParseStatement(input string) (*Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st := &Statement{}
	if t := p.peek(); t.kind == tokIdent && strings.EqualFold(t.text, "explain") {
		p.next()
		st.Explain = true
	}
	st.Query, err = p.query()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("trailing input starting with %s", p.peek().kind)
	}
	return st, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("query: position %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) expectIdent(keyword string) error {
	t := p.next()
	if t.kind != tokIdent || !strings.EqualFold(t.text, keyword) {
		return fmt.Errorf("query: position %d: expected %q, got %q", t.pos, keyword, t.text)
	}
	return nil
}

// setOps maps the language's set operators to predicates.
var setOps = map[string]signature.Predicate{
	"has-subset":  signature.Superset,
	"in-subset":   signature.Subset,
	"overlaps":    signature.Overlap,
	"equals":      signature.Equals,
	"has-element": signature.Contains,
}

func (p *parser) query() (*Query, error) {
	if err := p.expectIdent("select"); err != nil {
		return nil, err
	}
	cls := p.next()
	if cls.kind != tokIdent {
		return nil, fmt.Errorf("query: position %d: expected class name, got %s", cls.pos, cls.kind)
	}
	if err := p.expectIdent("where"); err != nil {
		return nil, err
	}
	pred, err := p.predicate()
	if err != nil {
		return nil, err
	}
	return &Query{Class: cls.text, Where: pred}, nil
}

func (p *parser) predicate() (Predicate, error) {
	first, err := p.simplePredicate()
	if err != nil {
		return nil, err
	}
	parts := []Predicate{first}
	for p.peek().kind == tokIdent && strings.EqualFold(p.peek().text, "and") {
		p.next()
		next, err := p.simplePredicate()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	if len(parts) == 1 {
		return first, nil
	}
	return &AndPredicate{Parts: parts}, nil
}

func (p *parser) simplePredicate() (Predicate, error) {
	attr := p.next()
	if attr.kind != tokIdent {
		return nil, fmt.Errorf("query: position %d: expected attribute name, got %s", attr.pos, attr.kind)
	}
	op := p.next()
	switch op.kind {
	case tokEq, tokNeq:
		return p.compare(attr.text, op.kind == tokNeq)
	case tokIdent:
		sp, ok := setOps[strings.ToLower(op.text)]
		if !ok {
			return nil, fmt.Errorf("query: position %d: unknown operator %q", op.pos, op.text)
		}
		return p.setOperand(attr.text, sp)
	default:
		return nil, fmt.Errorf("query: position %d: expected an operator, got %s", op.pos, op.kind)
	}
}

func (p *parser) compare(attr string, neq bool) (Predicate, error) {
	t := p.next()
	pred := &ComparePredicate{Attr: attr, Neq: neq}
	switch t.kind {
	case tokString:
		s := t.text
		pred.Str = &s
	case tokNumber:
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("query: position %d: bad number %q: %w", t.pos, t.text, err)
			}
			pred.Float = &f
		} else {
			i, err := strconv.ParseInt(t.text, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("query: position %d: bad number %q: %w", t.pos, t.text, err)
			}
			pred.Int = &i
		}
	default:
		return nil, fmt.Errorf("query: position %d: expected a literal, got %s", t.pos, t.kind)
	}
	return pred, nil
}

// setOperand parses either a literal element list or a parenthesized
// subquery. has-element additionally accepts a bare literal:
// `hobbies has-element "Chess"`.
func (p *parser) setOperand(attr string, op signature.Predicate) (Predicate, error) {
	if op == signature.Contains && p.peek().kind == tokString {
		t := p.next()
		return &SetPredicate{Attr: attr, Op: op, Elems: []string{t.text}}, nil
	}
	if t := p.next(); t.kind != tokLParen {
		return nil, fmt.Errorf("query: position %d: expected '(', got %s", t.pos, t.kind)
	}
	// Subquery?
	if t := p.peek(); t.kind == tokIdent && strings.EqualFold(t.text, "select") {
		sub, err := p.query()
		if err != nil {
			return nil, err
		}
		if t := p.next(); t.kind != tokRParen {
			return nil, fmt.Errorf("query: position %d: expected ')' after subquery, got %s", t.pos, t.kind)
		}
		return &SetPredicate{Attr: attr, Op: op, Sub: sub}, nil
	}
	// Literal list (possibly empty: "()" is the empty set).
	var elems []string
	for p.peek().kind != tokRParen {
		t := p.next()
		switch t.kind {
		case tokString, tokNumber:
			elems = append(elems, t.text)
		default:
			return nil, fmt.Errorf("query: position %d: expected a literal, got %s", t.pos, t.kind)
		}
		switch p.peek().kind {
		case tokComma:
			p.next()
			if p.peek().kind == tokRParen {
				return nil, p.errorf("trailing comma in element list")
			}
		case tokRParen:
			// list ends
		default:
			return nil, p.errorf("expected ',' or ')' in element list, got %s", p.peek().kind)
		}
	}
	p.next() // consume ')'
	return &SetPredicate{Attr: attr, Op: op, Elems: elems}, nil
}
