package query

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sigfile/internal/oodb"
	"sigfile/internal/signature"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// multiIndexUniversity registers two facilities on Student.hobbies so
// the planner has a real choice to make.
func multiIndexUniversity(t *testing.T) *Engine {
	t.Helper()
	e := newUniversity(t)
	// The BSSF index runs on the LSM write path with a memtable small
	// enough that the 300-student bulk load seals two segments — so the
	// golden EXPLAIN table pins the segment-aware cost estimates.
	if _, err := e.CreateIndex("Student", "hobbies", KindBSSF, signature.MustNew(64, 2), nil, WithLSMMemtableSize(128), WithLSMCompactAfter(16)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateIndex("Student", "hobbies", KindNIX, nil, nil); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestEngineMultiIndexPlannerChoice: with several facilities on one
// attribute the engine costs them all, drives the winner, and reports
// the full decision — while answers stay identical to a plain scan.
func TestEngineMultiIndexPlannerChoice(t *testing.T) {
	e := multiIndexUniversity(t)
	plain := newUniversity(t) // no indexes: ground truth by scan

	queries := []string{
		`select Student where hobbies has-element "Chess"`,
		`select Student where hobbies has-subset ("Chess", "Baseball")`,
		`select Student where hobbies in-subset ("Chess", "Baseball", "Fishing", "Golf", "Tennis", "Reading", "Swimming", "Hiking")`,
		`select Student where hobbies overlaps ("Chess", "Golf")`,
	}
	for _, src := range queries {
		res, err := e.Run(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		want, err := plain.Run(src)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Objects) != len(want.Objects) {
			t.Fatalf("%s: %d objects, scan says %d", src, len(res.Objects), len(want.Objects))
		}
		for i := range res.Objects {
			if res.Objects[i].OID != want.Objects[i].OID {
				t.Fatalf("%s: OIDs diverge from scan", src)
			}
		}
		if !strings.HasPrefix(res.Plan, "index(") {
			t.Fatalf("%s: plan %q not index-driven", src, res.Plan)
		}
		// The planner's decision is exposed in full.
		if res.Planning == nil {
			t.Fatalf("%s: no Planning on an index-driven result", src)
		}
		seen := map[string]bool{}
		for _, c := range res.Planning.Candidates {
			seen[c.Facility] = true
		}
		if !seen["BSSF"] || !seen["NIX"] {
			t.Fatalf("%s: candidates missing a facility: %v", src, res.Planning.Candidates)
		}
		chosen := res.Planning.Chosen()
		if res.PlanNode == nil || res.PlanNode.Facility != chosen.Facility {
			t.Fatalf("%s: PlanNode facility %v != chosen %v", src, res.PlanNode, chosen)
		}
		if res.PlanNode.String() != res.Plan {
			t.Fatalf("%s: PlanNode.String() %q != Plan %q", src, res.PlanNode.String(), res.Plan)
		}
	}
}

// TestEngineSmartStrategyCaps: when the planner picks a smart strategy
// its caps reach the facility (visible in the plan annotation), and the
// answers remain exact.
func TestEngineSmartStrategyCaps(t *testing.T) {
	e := multiIndexUniversity(t)
	plain := newUniversity(t)
	// A wide superset query invites a probe cap; a wide subset query a
	// zero-slice cap. Either way correctness is non-negotiable.
	for _, src := range []string{
		`select Student where hobbies has-subset ("Chess", "Baseball", "Fishing", "Golf")`,
		`select Student where hobbies in-subset ("Chess", "Baseball", "Fishing", "Golf", "Tennis", "Reading", "Swimming", "Hiking", "Dancing", "Cooking")`,
	} {
		res, err := e.Run(src)
		if err != nil {
			t.Fatal(err)
		}
		want, err := plain.Run(src)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Objects) != len(want.Objects) {
			t.Fatalf("%s: smart strategy broke exactness (%d vs %d)", src, len(res.Objects), len(want.Objects))
		}
		c := res.Planning.Chosen()
		if string(c.Strategy) == "smart" {
			if c.MaxProbeElements == 0 && c.MaxZeroSlices == 0 {
				t.Fatalf("%s: smart choice without caps: %v", src, c)
			}
			if !strings.Contains(res.Plan, " smart[") {
				t.Fatalf("%s: smart choice not annotated in plan %q", src, res.Plan)
			}
		}
	}
}

// TestEngineAdaptivePlanning: adaptive mode closes the loop from
// measured page counts back into ranking without disturbing answers.
func TestEngineAdaptivePlanning(t *testing.T) {
	e := multiIndexUniversity(t)
	e.Planner().SetAdaptive(true)
	plain := newUniversity(t)
	src := `select Student where hobbies has-subset ("Chess", "Baseball")`
	want, err := plain.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ { // feedback accumulates across runs
		res, err := e.Run(src)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Objects) != len(want.Objects) {
			t.Fatalf("run %d: adaptive planning changed answers", i)
		}
		if c := res.Planning.Chosen(); c.CorrectedRC <= 0 {
			t.Fatalf("run %d: corrected cost %v", i, c.CorrectedRC)
		}
	}
}

// TestEngineCatalogMaintenance: Insert/Delete keep the attribute catalog
// (the planner's V) in step with the data.
func TestEngineCatalogMaintenance(t *testing.T) {
	e := multiIndexUniversity(t)
	cat := e.cats["Student.hobbies"]
	if cat == nil {
		t.Fatal("CreateIndex did not seed the catalog")
	}
	v0 := cat.distinct()
	if v0 <= 0 {
		t.Fatalf("catalog V = %d after bulk load", v0)
	}
	oid, err := e.Insert("Student", map[string]oodb.Value{
		"name":    oodb.String("Newcomer"),
		"courses": oodb.RefSet(),
		"hobbies": oodb.StringSet("Zymurgy", "Quilling"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := cat.distinct(); got != v0+2 {
		t.Fatalf("V = %d after inserting 2 new elements, want %d", got, v0+2)
	}
	if err := e.Delete(oid); err != nil {
		t.Fatal(err)
	}
	if got := cat.distinct(); got != v0 {
		t.Fatalf("V = %d after delete, want %d", got, v0)
	}
}

// TestParseStatement: the EXPLAIN prefix parses case-insensitively and
// plain selects still parse as statements.
func TestParseStatement(t *testing.T) {
	st, err := ParseStatement(`EXPLAIN select Student where hobbies has-element "Chess"`)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Explain || st.Query == nil || st.Query.Class != "Student" {
		t.Fatalf("statement parsed wrong: %+v", st)
	}
	st, err = ParseStatement(`select Student where hobbies has-element "Chess"`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Explain {
		t.Fatal("plain select flagged as explain")
	}
	for _, bad := range []string{``, `explain`, `explain garbage`, `explain select Student where hobbies has-element "x" trailing`} {
		if _, err := ParseStatement(bad); err == nil {
			t.Errorf("ParseStatement(%q) accepted", bad)
		}
	}
}

// TestExplainGolden pins the full EXPLAIN report — per-candidate cost
// table, chosen plan, reason — against a golden file. Regenerate with
// `go test ./internal/query -run TestExplainGolden -update`.
func TestExplainGolden(t *testing.T) {
	e := multiIndexUniversity(t)
	var b strings.Builder
	for _, src := range []string{
		`explain select Student where hobbies has-element "Chess"`,
		`explain select Student where hobbies in-subset ("Chess", "Baseball", "Fishing", "Golf", "Tennis", "Reading")`,
		`explain select Student where hobbies has-subset ("Chess", "Baseball") and name != "Nobody"`,
	} {
		out, err := e.Explain(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		b.WriteString(out)
		b.WriteString("\n---\n")
	}
	got := b.String()
	path := filepath.Join("testdata", "explain.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("EXPLAIN output drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
