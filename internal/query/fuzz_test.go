package query

import "testing"

// FuzzParse: the parser must never panic, and anything it accepts must
// render (String) and reparse to the same text — the grammar's printer
// and parser agree.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		`select Student where hobbies has-subset ("Baseball", "Fishing")`,
		`select Student where hobbies in-subset ("a")`,
		`select Student where courses in-subset (select Course where category = "DB")`,
		`select S where a has-element "x" and b = 3 and c != 1.5`,
		`select S where a equals ()`,
		`select`,
		`"unterminated`,
		`select S where a has-subset ("x",`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendered query does not reparse: %q: %v", rendered, err)
		}
		if q2.String() != rendered {
			t.Fatalf("printer/parser disagree: %q vs %q", q2.String(), rendered)
		}
	})
}
