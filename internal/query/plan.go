package query

import (
	"fmt"
	"strings"
)

// PlanNode is the structured form of a query plan. ResultSet.Plan is
// PlanNode.String() of the root node, so string-matching callers keep
// working; programmatic callers read the fields.
type PlanNode struct {
	// Kind is "index" for a facility-driven conjunction and "scan" for a
	// heap scan.
	Kind string
	// Facility is the access-method name driving an index node (e.g.
	// "BSSF").
	Facility string
	// Class is the queried class.
	Class string
	// Attr is the driven set attribute (index nodes only).
	Attr string
	// Predicate is the driven set operator, rendered (e.g. "T ⊇ Q").
	Predicate string
	// Strategy is "naive" or "smart" when the planner chose the access
	// path, empty otherwise.
	Strategy string
	// MaxProbeElements is the smart probe cap k (T ⊇ Q), 0 if unused.
	MaxProbeElements int
	// MaxZeroSlices is the smart zero-slice cap (BSSF T ⊆ Q), 0 if unused.
	MaxZeroSlices int
	// EstimatedPages is the planner's (corrected) page estimate for the
	// driving access, 0 when no estimate exists.
	EstimatedPages float64
	// Filters counts the residual predicate parts applied to the driver's
	// candidates (index nodes only).
	Filters int
	// FilterOps lists the set operators a scan node evaluates.
	FilterOps []string
	// Children are subquery plans feeding this node's operands.
	Children []*PlanNode
}

// smartSuffix renders the smart-strategy annotation appended to an index
// plan, empty for naive plans.
func smartSuffix(strategy string, k, z int) string {
	if strategy != "smart" {
		return ""
	}
	switch {
	case k > 0:
		return fmt.Sprintf(" smart[k=%d]", k)
	case z > 0:
		return fmt.Sprintf(" smart[z=%d]", z)
	default:
		return " smart"
	}
}

// String renders the node in the engine's classical plan syntax:
// "index(BSSF Student.hobbies T ⊇ Q) smart[k=2] + filter(1) <- scan(Course)".
func (n *PlanNode) String() string {
	if n == nil {
		return ""
	}
	var b strings.Builder
	if n.Kind == "index" {
		fmt.Fprintf(&b, "index(%s %s.%s %s)", n.Facility, n.Class, n.Attr, n.Predicate)
		b.WriteString(smartSuffix(n.Strategy, n.MaxProbeElements, n.MaxZeroSlices))
		if n.Filters > 0 {
			fmt.Fprintf(&b, " + filter(%d)", n.Filters)
		}
	} else if len(n.FilterOps) > 0 {
		fmt.Fprintf(&b, "scan(%s filter %s)", n.Class, strings.Join(n.FilterOps, ","))
	} else {
		fmt.Fprintf(&b, "scan(%s)", n.Class)
	}
	for _, c := range n.Children {
		b.WriteString(" <- ")
		b.WriteString(c.String())
	}
	return b.String()
}
