// Package query implements the SQL-like query language of the paper's §2
// over the mini OODB, with set predicates served by the set access
// facilities of internal/core.
//
// The grammar (queries Q1 and Q2 of the paper are its canonical
// sentences):
//
//	query     = "select" class "where" predicate .
//	predicate = simple { "and" simple } .
//	simple    = path setop operand
//	          | path ("=" | "!=") literal .
//	setop     = "has-subset"    // T ⊇ Q
//	          | "in-subset"     // T ⊆ Q
//	          | "overlaps"      // T ∩ Q ≠ ∅
//	          | "equals"        // T = Q
//	          | "has-element" . // q ∈ T
//	operand   = "(" literal { "," literal } ")"
//	          | "(" query ")" .  // subquery: its result OIDs become the query set
//	literal   = string | number .
//
// The paper's motivating query — find all students taking only "DB"
// lectures — is written exactly as §1 plans it:
//
//	select Student where courses in-subset (select Course where category = "DB")
package query

import (
	"fmt"
	"strings"

	"sigfile/internal/signature"
)

// Query is a parsed select statement.
type Query struct {
	Class string
	Where Predicate
}

// String renders the query in source form.
func (q *Query) String() string {
	return fmt.Sprintf("select %s where %s", q.Class, q.Where)
}

// Predicate is a where-clause condition.
type Predicate interface {
	fmt.Stringer
	pred()
}

// SetPredicate compares a set-valued attribute against a query set given
// either literally or by a subquery.
type SetPredicate struct {
	Attr string
	Op   signature.Predicate
	// Exactly one of Elems and Sub is set.
	Elems []string
	Sub   *Query
}

func (*SetPredicate) pred() {}

// String implements fmt.Stringer.
func (p *SetPredicate) String() string {
	op := map[signature.Predicate]string{
		signature.Superset: "has-subset",
		signature.Subset:   "in-subset",
		signature.Overlap:  "overlaps",
		signature.Equals:   "equals",
		signature.Contains: "has-element",
	}[p.Op]
	if p.Sub != nil {
		return fmt.Sprintf("%s %s (%s)", p.Attr, op, p.Sub)
	}
	quoted := make([]string, len(p.Elems))
	for i, e := range p.Elems {
		quoted[i] = quoteString(e)
	}
	return fmt.Sprintf("%s %s (%s)", p.Attr, op, strings.Join(quoted, ", "))
}

// quoteString renders s as a string literal using exactly the escape set
// the lexer understands (\" \\ \n \t); all other bytes pass through raw,
// so String output always reparses (fuzz-checked).
func quoteString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteByte(s[i])
		}
	}
	b.WriteByte('"')
	return b.String()
}

// AndPredicate is the conjunction of two or more simple predicates. The
// executor drives it from the first indexable set predicate and filters
// the rest per object.
type AndPredicate struct {
	Parts []Predicate // each a *SetPredicate or *ComparePredicate
}

func (*AndPredicate) pred() {}

// String implements fmt.Stringer.
func (p *AndPredicate) String() string {
	parts := make([]string, len(p.Parts))
	for i, part := range p.Parts {
		parts[i] = part.String()
	}
	return strings.Join(parts, " and ")
}

// ComparePredicate compares a primitive attribute against a literal.
type ComparePredicate struct {
	Attr  string
	Neq   bool // true for !=
	Str   *string
	Int   *int64
	Float *float64
}

func (*ComparePredicate) pred() {}

// String implements fmt.Stringer.
func (p *ComparePredicate) String() string {
	op := "="
	if p.Neq {
		op = "!="
	}
	switch {
	case p.Str != nil:
		return fmt.Sprintf("%s %s %s", p.Attr, op, quoteString(*p.Str))
	case p.Int != nil:
		return fmt.Sprintf("%s %s %d", p.Attr, op, *p.Int)
	case p.Float != nil:
		return fmt.Sprintf("%s %s %g", p.Attr, op, *p.Float)
	default:
		return fmt.Sprintf("%s %s <nil>", p.Attr, op)
	}
}
