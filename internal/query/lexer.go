package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokEq
	tokNeq
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokEq:
		return "'='"
	case tokNeq:
		return "'!='"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokenKind
	text string // identifier name, unquoted string value, or number text
	pos  int    // byte offset in the input
}

// lex tokenizes the input. Identifiers may contain hyphens so that the
// paper's operators (has-subset, in-subset, has-element) lex as single
// tokens; strings are double-quoted with backslash escapes.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '=':
			toks = append(toks, token{tokEq, "=", i})
			i++
		case c == '!':
			if i+1 >= len(input) || input[i+1] != '=' {
				return nil, fmt.Errorf("query: position %d: expected '=' after '!'", i)
			}
			toks = append(toks, token{tokNeq, "!=", i})
			i += 2
		case c == '"':
			val, next, err := lexString(input, i)
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{tokString, val, i})
			i = next
		case c >= '0' && c <= '9' || c == '-' && i+1 < len(input) && input[i+1] >= '0' && input[i+1] <= '9':
			start := i
			i++
			for i < len(input) && (input[i] >= '0' && input[i] <= '9' || input[i] == '.') {
				i++
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case isIdentStart(rune(c)):
			start := i
			for i < len(input) && isIdentPart(rune(input[i])) {
				i++
			}
			toks = append(toks, token{tokIdent, input[start:i], start})
		default:
			return nil, fmt.Errorf("query: position %d: unexpected character %q", i, c)
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}

func lexString(input string, start int) (string, int, error) {
	var sb strings.Builder
	i := start + 1
	for i < len(input) {
		switch input[i] {
		case '"':
			return sb.String(), i + 1, nil
		case '\\':
			if i+1 >= len(input) {
				return "", 0, fmt.Errorf("query: position %d: dangling escape", i)
			}
			switch input[i+1] {
			case '"', '\\':
				sb.WriteByte(input[i+1])
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			default:
				return "", 0, fmt.Errorf("query: position %d: unknown escape \\%c", i, input[i+1])
			}
			i += 2
		default:
			sb.WriteByte(input[i])
			i++
		}
	}
	return "", 0, fmt.Errorf("query: position %d: unterminated string", start)
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.'
}
