package query

import (
	"strings"
	"testing"

	"sigfile/internal/oodb"
	"sigfile/internal/signature"
)

func TestLexer(t *testing.T) {
	toks, err := lex(`select Student where hobbies has-subset ("Baseball", "Fi\"sh")`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{tokIdent, tokIdent, tokIdent, tokIdent, tokIdent, tokLParen, tokString, tokComma, tokString, tokRParen, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("%d tokens, want %d: %+v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Fatalf("token %d: %v, want %v", i, toks[i].kind, k)
		}
	}
	if toks[8].text != `Fi"sh` {
		t.Fatalf("escaped string: %q", toks[8].text)
	}
	// Numbers, operators.
	toks, err = lex(`x = -3.5 y != 7`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].kind != tokEq || toks[2].kind != tokNumber || toks[4].kind != tokNeq {
		t.Fatalf("operator lexing wrong: %+v", toks)
	}
	// Errors.
	for _, bad := range []string{`"unterminated`, `!x`, `"bad\q"`, "@", `"dangling\`} {
		if _, err := lex(bad); err == nil {
			t.Errorf("lex(%q) accepted", bad)
		}
	}
}

func TestParsePaperQueries(t *testing.T) {
	// Query Q1 (§2).
	q, err := Parse(`select Student where hobbies has-subset ("Baseball", "Fishing")`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Class != "Student" {
		t.Fatalf("class %q", q.Class)
	}
	sp, ok := q.Where.(*SetPredicate)
	if !ok || sp.Op != signature.Superset || len(sp.Elems) != 2 {
		t.Fatalf("Q1 parsed wrong: %+v", q.Where)
	}
	// Query Q2 (§2).
	q, err = Parse(`select Student where hobbies in-subset ("Baseball", "Fishing", "Tennis")`)
	if err != nil {
		t.Fatal(err)
	}
	sp = q.Where.(*SetPredicate)
	if sp.Op != signature.Subset || len(sp.Elems) != 3 {
		t.Fatalf("Q2 parsed wrong: %+v", sp)
	}
	// The §1 motivating query with a subquery.
	q, err = Parse(`select Student where courses in-subset (select Course where category = "DB")`)
	if err != nil {
		t.Fatal(err)
	}
	sp = q.Where.(*SetPredicate)
	if sp.Sub == nil || sp.Sub.Class != "Course" {
		t.Fatalf("subquery parsed wrong: %+v", sp)
	}
	cp, ok := sp.Sub.Where.(*ComparePredicate)
	if !ok || cp.Str == nil || *cp.Str != "DB" {
		t.Fatalf("subquery predicate wrong: %+v", sp.Sub.Where)
	}
	// Round trip through String/Parse.
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", q.String(), err)
	}
	if q2.String() != q.String() {
		t.Fatalf("round trip: %q vs %q", q2.String(), q.String())
	}
}

func TestParseOtherOperators(t *testing.T) {
	for src, want := range map[string]signature.Predicate{
		`select S where a overlaps ("x")`:    signature.Overlap,
		`select S where a equals ("x", "y")`: signature.Equals,
		`select S where a has-element "x"`:   signature.Contains,
		`select S where a has-element ("x")`: signature.Contains,
		`select S where a has-subset ()`:     signature.Superset,
	} {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if q.Where.(*SetPredicate).Op != want {
			t.Fatalf("%s: op %v", src, q.Where.(*SetPredicate).Op)
		}
	}
	// Comparisons.
	q, err := Parse(`select S where year != 3`)
	if err != nil {
		t.Fatal(err)
	}
	cp := q.Where.(*ComparePredicate)
	if !cp.Neq || cp.Int == nil || *cp.Int != 3 {
		t.Fatalf("int compare wrong: %+v", cp)
	}
	q, err = Parse(`select S where gpa = 3.5`)
	if err != nil {
		t.Fatal(err)
	}
	cp = q.Where.(*ComparePredicate)
	if cp.Float == nil || *cp.Float != 3.5 {
		t.Fatalf("float compare wrong: %+v", cp)
	}
	if !strings.Contains(cp.String(), "3.5") {
		t.Fatal("ComparePredicate.String misses value")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`select`,
		`select Student`,
		`select Student where`,
		`select Student where hobbies`,
		`select Student where hobbies frobnicates ("x")`,
		`select Student where hobbies has-subset "x", "y"`,
		`select Student where hobbies has-subset ("x" "y")`,
		`select Student where hobbies has-subset ("x",)`,
		`select Student where hobbies has-subset ("x") trailing`,
		`select Student where hobbies has-subset (select Course where category = "DB"`,
		`select Student where name = `,
		`select where x = 1`,
		`select Student where hobbies has-subset (where)`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

// newUniversity builds the engine over the paper's sample schema with a
// deterministic data set small enough to brute-force.
func newUniversity(t *testing.T) *Engine {
	t.Helper()
	db, err := oodb.NewSampleDatabase(oodb.SampleConfig{
		Students: 300, Courses: 40, Teachers: 8,
		CoursesPerStud: 5, HobbiesPerStud: 4, Seed: 11,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(db)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineScanFallback(t *testing.T) {
	e := newUniversity(t)
	res, err := e.Run(`select Student where hobbies has-subset ("Baseball", "Fishing")`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Plan, "scan(") {
		t.Fatalf("plan %q should be a scan without indexes", res.Plan)
	}
	// Verify against direct evaluation.
	count := 0
	e.DB().Scan("Student", func(o *oodb.Object) error {
		hobbies, _ := o.SetAttr("hobbies")
		if ok, _ := signature.EvaluateSets(signature.Superset, hobbies, []string{"Baseball", "Fishing"}); ok {
			count++
		}
		return nil
	})
	if len(res.Objects) != count {
		t.Fatalf("scan answer %d, brute force %d", len(res.Objects), count)
	}
}

func TestEngineIndexedQueriesAgreeWithScan(t *testing.T) {
	queries := []string{
		`select Student where hobbies has-subset ("Baseball", "Fishing")`,
		`select Student where hobbies in-subset ("Baseball", "Fishing", "Tennis", "Golf", "Chess", "Reading", "Cooking", "Hiking")`,
		`select Student where hobbies overlaps ("Baseball", "Yoga")`,
		`select Student where hobbies has-element "Chess"`,
	}
	// Baseline: no index.
	base := newUniversity(t)
	var want [][]oodb.OID
	for _, src := range queries {
		res, err := base.Run(src)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res.OIDs())
	}
	for _, kind := range []IndexKind{KindSSF, KindBSSF, KindNIX} {
		e := newUniversity(t)
		if _, err := e.CreateIndex("Student", "hobbies", kind, signature.MustNew(128, 3), nil); err != nil {
			t.Fatal(err)
		}
		for i, src := range queries {
			res, err := e.Run(src)
			if err != nil {
				t.Fatalf("%v %s: %v", kind, src, err)
			}
			if !strings.HasPrefix(res.Plan, "index("+kind.String()) {
				t.Fatalf("%v: plan %q", kind, res.Plan)
			}
			if res.IndexStats == nil {
				t.Fatalf("%v: missing index stats", kind)
			}
			got := res.OIDs()
			if len(got) != len(want[i]) {
				t.Fatalf("%v %s: %d results, scan gave %d", kind, src, len(got), len(want[i]))
			}
			for j := range got {
				if got[j] != want[i][j] {
					t.Fatalf("%v %s: result %d differs", kind, src, j)
				}
			}
		}
	}
}

func TestEngineSubquery(t *testing.T) {
	e := newUniversity(t)
	if _, err := e.CreateIndex("Student", "courses", KindBSSF, signature.MustNew(256, 2), nil); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(`select Student where courses in-subset (select Course where category = "DB")`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "index(BSSF Student.courses") || !strings.Contains(res.Plan, "scan(Course)") {
		t.Fatalf("plan %q", res.Plan)
	}
	// Brute-force the paper's motivating query.
	dbCourses := map[oodb.OID]bool{}
	e.DB().Scan("Course", func(o *oodb.Object) error {
		if o.Attrs["category"].Str == "DB" {
			dbCourses[o.OID] = true
		}
		return nil
	})
	wantCount := 0
	e.DB().Scan("Student", func(o *oodb.Object) error {
		all := true
		for _, c := range o.Attrs["courses"].RefSet {
			if !dbCourses[c] {
				all = false
				break
			}
		}
		if all {
			wantCount++
		}
		return nil
	})
	if len(res.Objects) != wantCount {
		t.Fatalf("subquery answer %d, brute force %d", len(res.Objects), wantCount)
	}
	// "Find all students who take all of the DB lectures" (T ⊇ Q).
	res2, err := e.Run(`select Student where courses has-subset (select Course where category = "DB")`)
	if err != nil {
		t.Fatal(err)
	}
	wantAll := 0
	e.DB().Scan("Student", func(o *oodb.Object) error {
		have := map[oodb.OID]bool{}
		for _, c := range o.Attrs["courses"].RefSet {
			have[c] = true
		}
		for c := range dbCourses {
			if !have[c] {
				return nil
			}
		}
		wantAll++
		return nil
	})
	if len(res2.Objects) != wantAll {
		t.Fatalf("has-subset subquery: %d, brute force %d", len(res2.Objects), wantAll)
	}
}

func TestEngineRefSetLiterals(t *testing.T) {
	e := newUniversity(t)
	// Find one student's course OIDs and query by literal OID.
	var sid oodb.OID
	var course oodb.OID
	e.DB().Scan("Student", func(o *oodb.Object) error {
		if sid == 0 {
			sid = o.OID
			course = o.Attrs["courses"].RefSet[0]
		}
		return nil
	})
	res, err := e.Run(`select Student where courses has-element "ignored"`)
	if err == nil {
		_ = res // has-element with a string against set<ref> must fail
		t.Fatal("string literal accepted against set<ref>")
	}
	res, err = e.Run(
		`select Student where courses has-subset (` + itoa(uint64(course)) + `)`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, o := range res.Objects {
		if o.OID == sid {
			found = true
		}
	}
	if !found {
		t.Fatal("literal-OID query missed the known student")
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestEngineMutationsMaintainIndexes(t *testing.T) {
	e := newUniversity(t)
	if _, err := e.CreateIndex("Student", "hobbies", KindBSSF, signature.MustNew(128, 3), nil); err != nil {
		t.Fatal(err)
	}
	oid, err := e.Insert("Student", map[string]oodb.Value{
		"name":    oodb.String("Newcomer"),
		"courses": oodb.RefSet(),
		"hobbies": oodb.StringSet("Origami", "Juggling"),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(`select Student where hobbies has-subset ("Origami", "Juggling")`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, o := range res.Objects {
		if o.OID == oid {
			found = true
		}
	}
	if !found {
		t.Fatal("inserted object not found via index")
	}
	if err := e.Delete(oid); err != nil {
		t.Fatal(err)
	}
	res, _ = e.Run(`select Student where hobbies has-subset ("Origami", "Juggling")`)
	for _, o := range res.Objects {
		if o.OID == oid {
			t.Fatal("deleted object still indexed")
		}
	}
	if err := e.Delete(oid); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestEngineCompareScans(t *testing.T) {
	e := newUniversity(t)
	res, err := e.Run(`select Course where category = "DB"`)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Objects {
		if o.Attrs["category"].Str != "DB" {
			t.Fatal("wrong category in result")
		}
	}
	neg, err := e.Run(`select Course where category != "DB"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects)+len(neg.Objects) != e.DB().Count("Course") {
		t.Fatal("= and != do not partition")
	}
}

func TestEngineErrors(t *testing.T) {
	e := newUniversity(t)
	bad := []string{
		`select Nope where x = 1`,
		`select Student where nope has-subset ("x")`,
		`select Student where name has-subset ("x")`,                                   // not a set
		`select Student where hobbies = "x"`,                                           // set compared as primitive... actually kind mismatch
		`select Student where name = 3`,                                                // type mismatch
		`select Student where courses in-subset ("x")`,                                 // non-OID literal on set<ref>
		`select Student where hobbies in-subset (select Course where category = "DB")`, // subquery on string set
	}
	for _, src := range bad {
		if _, err := e.Run(src); err == nil {
			t.Errorf("Run(%q) accepted", src)
		}
	}
	if _, err := NewEngine(nil); err == nil {
		t.Fatal("NewEngine(nil) accepted")
	}
	if _, err := e.CreateIndex("Student", "name", KindNIX, nil, nil); err == nil {
		t.Fatal("index on primitive attribute accepted")
	}
	if _, err := e.CreateIndex("Student", "hobbies", KindNIX, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateIndex("Student", "hobbies", KindNIX, nil, nil); err == nil {
		t.Fatal("duplicate same-kind index accepted")
	}
	// A second facility of a different kind on the same path is allowed:
	// the planner chooses between them.
	if _, err := e.CreateIndex("Student", "hobbies", KindSSF, signature.MustNew(64, 2), nil); err != nil {
		t.Fatalf("second kind on the same path rejected: %v", err)
	}
	if e.Index("Student", "hobbies") == nil {
		t.Fatal("Index lookup failed")
	}
	if got := len(e.Indexes("Student", "hobbies")); got != 2 {
		t.Fatalf("Indexes: %d facilities, want 2", got)
	}
	if e.Index("Student", "courses") != nil {
		t.Fatal("Index invented an access method")
	}
	if _, err := e.CreateIndex("Student", "courses", IndexKind(9), nil, nil); err == nil {
		t.Fatal("unknown index kind accepted")
	}
}

func TestExplain(t *testing.T) {
	e := newUniversity(t)
	plan, err := e.Explain(`select Student where hobbies has-subset ("Chess")`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "scan(Student") {
		t.Fatalf("explain: %s", plan)
	}
	e.CreateIndex("Student", "hobbies", KindBSSF, signature.MustNew(64, 2), nil)
	plan, _ = e.Explain(`select Student where hobbies has-subset ("Chess")`)
	if !strings.Contains(plan, "index(BSSF") {
		t.Fatalf("explain after index: %s", plan)
	}
	plan, _ = e.Explain(`select Course where category = "DB"`)
	if !strings.Contains(plan, "scan(Course)") {
		t.Fatalf("explain compare: %s", plan)
	}
	if _, err := e.Explain(`garbage`); err == nil {
		t.Fatal("Explain accepted garbage")
	}
}

func TestIndexKindString(t *testing.T) {
	if KindSSF.String() != "SSF" || KindBSSF.String() != "BSSF" || KindNIX.String() != "NIX" {
		t.Fatal("kind names wrong")
	}
	if !strings.HasPrefix(IndexKind(7).String(), "IndexKind(") {
		t.Fatal("unknown kind name wrong")
	}
}
