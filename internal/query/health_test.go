package query

import (
	"strings"
	"syscall"
	"testing"

	"sigfile/internal/core"
	"sigfile/internal/pagestore"
	"sigfile/internal/signature"
)

// degradeByRead pushes am one step down the health ladder through a
// terminal read fault — a search against a device returning EBADF. Read
// faults leave no partial index state behind, so the facility's answers
// stay exact for the rest of the test.
func degradeByRead(t *testing.T, am core.AccessMethod, fs *pagestore.FaultStore) {
	t.Helper()
	fs.FailReadsWith(syscall.EBADF)
	if _, err := am.Search(signature.Superset, []string{"Chess"}, nil); err == nil {
		t.Fatal("search on a broken device succeeded")
	}
	fs.Heal()
}

// TestPlannerRoutesAroundUnhealthyFacilities: with two facilities on one
// attribute, the planner skips a degraded one while a healthy sibling
// covers the path, still uses a degraded one when it is all that is
// left, drops failed ones entirely, and comes back after repair. The
// answer set never changes.
func TestPlannerRoutesAroundUnhealthyFacilities(t *testing.T) {
	e := newUniversity(t)
	bssfStore := pagestore.NewFaultStore(pagestore.NewMemStore())
	nixStore := pagestore.NewFaultStore(pagestore.NewMemStore())
	bssf, err := e.CreateIndex("Student", "hobbies", KindBSSF, signature.MustNew(64, 2), bssfStore)
	if err != nil {
		t.Fatal(err)
	}
	nix, err := e.CreateIndex("Student", "hobbies", KindNIX, nil, nixStore)
	if err != nil {
		t.Fatal(err)
	}

	const q = `select Student where hobbies has-element "Chess"`
	run := func(stage string) *ResultSet {
		t.Helper()
		res, err := e.Run(q)
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		return res
	}
	want := run("both healthy")
	sameAnswers := func(stage string, res *ResultSet) {
		t.Helper()
		if len(res.Objects) != len(want.Objects) {
			t.Fatalf("%s: %d objects, want %d", stage, len(res.Objects), len(want.Objects))
		}
		for i := range res.Objects {
			if res.Objects[i].OID != want.Objects[i].OID {
				t.Fatalf("%s: answers diverge from healthy run", stage)
			}
		}
	}
	wantPlan := func(stage string, res *ResultSet, prefix string) {
		t.Helper()
		if !strings.HasPrefix(res.Plan, prefix) {
			t.Fatalf("%s: plan = %q, want prefix %q", stage, res.Plan, prefix)
		}
		sameAnswers(stage, res)
	}

	// Degraded BSSF, healthy NIX: the planner must not touch the BSSF
	// even if it would be cheaper.
	degradeByRead(t, bssf, bssfStore)
	if core.HealthOf(bssf) != core.Degraded {
		t.Fatalf("bssf health = %v, want degraded", core.HealthOf(bssf))
	}
	wantPlan("bssf degraded", run("bssf degraded"), "index(NIX")

	// Both degraded: a read-only facility still beats a heap scan.
	degradeByRead(t, nix, nixStore)
	if core.HealthOf(nix) != core.Degraded {
		t.Fatalf("nix health = %v, want degraded", core.HealthOf(nix))
	}
	wantPlan("both degraded", run("both degraded"), "index(")

	// Failed BSSF: gone from planning; the degraded NIX carries on.
	degradeByRead(t, bssf, bssfStore)
	if core.HealthOf(bssf) != core.Failed {
		t.Fatalf("bssf health = %v, want failed", core.HealthOf(bssf))
	}
	wantPlan("bssf failed", run("bssf failed"), "index(NIX")

	// Both failed: nothing left to drive with — the engine answers by
	// scanning the heap instead of erroring out.
	degradeByRead(t, nix, nixStore)
	if core.HealthOf(nix) != core.Failed {
		t.Fatalf("nix health = %v, want failed", core.HealthOf(nix))
	}
	wantPlan("both failed", run("both failed"), "scan(")

	// Repair brings index plans back.
	bssf.(core.Repairer).MarkRepaired()
	nix.(core.Repairer).MarkRepaired()
	wantPlan("repaired", run("repaired"), "index(")
}
