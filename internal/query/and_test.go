package query

import (
	"strings"
	"testing"

	"sigfile/internal/oodb"
	"sigfile/internal/signature"
)

func TestParseConjunction(t *testing.T) {
	q, err := Parse(`select Student where hobbies has-subset ("Chess") and name = "Jeff" and hobbies overlaps ("Golf")`)
	if err != nil {
		t.Fatal(err)
	}
	and, ok := q.Where.(*AndPredicate)
	if !ok {
		t.Fatalf("expected AndPredicate, got %T", q.Where)
	}
	if len(and.Parts) != 3 {
		t.Fatalf("%d parts", len(and.Parts))
	}
	if _, ok := and.Parts[0].(*SetPredicate); !ok {
		t.Fatal("part 0 not a set predicate")
	}
	if _, ok := and.Parts[1].(*ComparePredicate); !ok {
		t.Fatal("part 1 not a compare predicate")
	}
	// Round trip.
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", q.String(), err)
	}
	if q2.String() != q.String() {
		t.Fatalf("round trip: %q", q2.String())
	}
	// A single predicate stays simple (no 1-element And).
	q3, _ := Parse(`select S where a has-subset ("x")`)
	if _, ok := q3.Where.(*AndPredicate); ok {
		t.Fatal("single predicate wrapped in AndPredicate")
	}
	// Errors.
	for _, bad := range []string{
		`select S where a = 1 and`,
		`select S where and a = 1`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// bruteConjunction evaluates a conjunction of checks directly.
func bruteConjunction(t *testing.T, e *Engine, checks func(o *oodb.Object) bool) map[oodb.OID]bool {
	t.Helper()
	want := map[oodb.OID]bool{}
	if err := e.DB().Scan("Student", func(o *oodb.Object) error {
		if checks(o) {
			want[o.OID] = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return want
}

func hasHobby(o *oodb.Object, hobby string) bool {
	hs, _ := o.SetAttr("hobbies")
	for _, h := range hs {
		if h == hobby {
			return true
		}
	}
	return false
}

func TestConjunctionScanAndIndexAgree(t *testing.T) {
	src := `select Student where hobbies has-subset ("Chess") and hobbies overlaps ("Golf", "Tennis")`
	want := func(e *Engine) map[oodb.OID]bool {
		return bruteConjunction(t, e, func(o *oodb.Object) bool {
			return hasHobby(o, "Chess") && (hasHobby(o, "Golf") || hasHobby(o, "Tennis"))
		})
	}
	// Scan plan.
	e := newUniversity(t)
	res, err := e.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Plan, "scan(") {
		t.Fatalf("plan %q", res.Plan)
	}
	w := want(e)
	if len(res.Objects) != len(w) {
		t.Fatalf("scan conjunction: %d results, want %d", len(res.Objects), len(w))
	}

	// Index-driven plan.
	e2 := newUniversity(t)
	if _, err := e2.CreateIndex("Student", "hobbies", KindBSSF, signature.MustNew(128, 3), nil); err != nil {
		t.Fatal(err)
	}
	res2, err := e2.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res2.Plan, "index(BSSF") || !strings.Contains(res2.Plan, "filter(1)") {
		t.Fatalf("plan %q", res2.Plan)
	}
	w2 := want(e2)
	if len(res2.Objects) != len(w2) {
		t.Fatalf("indexed conjunction: %d results, want %d", len(res2.Objects), len(w2))
	}
	for _, o := range res2.Objects {
		if !w2[o.OID] {
			t.Fatalf("unexpected OID %d", o.OID)
		}
	}
}

func TestConjunctionMixedSetAndCompare(t *testing.T) {
	e := newUniversity(t)
	if _, err := e.CreateIndex("Student", "hobbies", KindNIX, nil, nil); err != nil {
		t.Fatal(err)
	}
	// Pick a student with a known name and hobby.
	var name, hobby string
	e.DB().Scan("Student", func(o *oodb.Object) error {
		if name == "" {
			name = o.Attrs["name"].Str
			hs, _ := o.SetAttr("hobbies")
			hobby = hs[0]
		}
		return nil
	})
	res, err := e.Run(`select Student where hobbies has-element "` + hobby + `" and name = "` + name + `"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) != 1 || res.Objects[0].Attrs["name"].Str != name {
		t.Fatalf("mixed conjunction: %d results", len(res.Objects))
	}
	if !strings.Contains(res.Plan, "index(NIX") {
		t.Fatalf("plan %q", res.Plan)
	}
	// The compare part is validated at compile time even in conjunctions.
	if _, err := e.Run(`select Student where hobbies has-element "x" and name = 3`); err == nil {
		t.Fatal("type mismatch in conjunction accepted")
	}
	if _, err := e.Run(`select Student where hobbies has-element "x" and nope = "y"`); err == nil {
		t.Fatal("unknown attribute in conjunction accepted")
	}
}

func TestConjunctionCompareOnly(t *testing.T) {
	e := newUniversity(t)
	res, err := e.Run(`select Course where category = "DB" and name != "Course-000"`)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Objects {
		if o.Attrs["category"].Str != "DB" || o.Attrs["name"].Str == "Course-000" {
			t.Fatal("conjunction filter leaked")
		}
	}
	if !strings.HasPrefix(res.Plan, "scan(Course)") {
		t.Fatalf("plan %q", res.Plan)
	}
}

func TestExplainConjunction(t *testing.T) {
	e := newUniversity(t)
	e.CreateIndex("Student", "hobbies", KindBSSF, signature.MustNew(64, 2), nil)
	plan, err := e.Explain(`select Student where hobbies has-subset ("Chess") and name = "X"`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "index(BSSF") || !strings.Contains(plan, "filter compare") {
		t.Fatalf("explain: %s", plan)
	}
	plan, _ = e.Explain(`select Course where category = "DB" and name = "X"`)
	if !strings.Contains(plan, "via scan(Course)") {
		t.Fatalf("explain: %s", plan)
	}
}
