package query

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sigfile/internal/core"
	"sigfile/internal/obs"
	"sigfile/internal/oodb"
	"sigfile/internal/pagestore"
	"sigfile/internal/planner"
	"sigfile/internal/signature"
)

// Process-wide query metrics, exported through the obs registry. The
// "plan" label separates index-driven queries from heap scans, so the
// ratio is the observability view of how often the facilities actually
// serve the workload.
var (
	obsIndexQueries = obs.Default().Counter("sigfile_queries_total", "plan", "index")
	obsScanQueries  = obs.Default().Counter("sigfile_queries_total", "plan", "scan")
	obsQueryErrors  = obs.Default().Counter("sigfile_query_errors_total")
	obsQueryLatency = obs.Default().Histogram("sigfile_query_duration_ms", obs.DurationBucketsMs)
	obsSlowQueries  = obs.Default().Counter("sigfile_slow_queries_total")
)

// IndexKind selects a set access facility for CreateIndex.
type IndexKind int

// The available facilities.
const (
	KindSSF IndexKind = iota
	KindBSSF
	KindNIX
	KindFSSF
)

// String implements fmt.Stringer.
func (k IndexKind) String() string {
	switch k {
	case KindSSF:
		return "SSF"
	case KindBSSF:
		return "BSSF"
	case KindNIX:
		return "NIX"
	case KindFSSF:
		return "FSSF"
	default:
		return fmt.Sprintf("IndexKind(%d)", int(k))
	}
}

// coreKind maps the engine-level kind to the unified construction API's.
func (k IndexKind) coreKind() (core.Kind, error) {
	switch k {
	case KindSSF:
		return core.KindSSF, nil
	case KindBSSF:
		return core.KindBSSF, nil
	case KindNIX:
		return core.KindNIX, nil
	case KindFSSF:
		return core.KindFSSF, nil
	default:
		return 0, fmt.Errorf("query: unknown index kind %d", int(k))
	}
}

// Engine executes queries over an oodb.Database, routing set predicates
// through registered set access facilities and maintaining those
// facilities across inserts and deletes. Mutations must flow through the
// engine (Insert/Delete), not the raw database, or indexes go stale.
type Engine struct {
	db *oodb.Database
	// indexes maps "Class.attr" to every facility registered on that
	// path; the planner chooses among them per query.
	indexes map[string][]*indexEntry
	// cats holds per-attribute element statistics (the planner's V),
	// maintained on Insert/Delete and seeded at CreateIndex.
	cats map[string]*attrCatalog
	// pl is the cost-based planner driving access-path selection.
	pl *planner.Planner
	// parallelism is forwarded as SearchOptions.Parallelism to every
	// index search the engine drives; 0 keeps searches sequential.
	parallelism int

	// slowMu guards the slow-search log configuration; the log writer
	// itself is serialized under the same lock so interleaved queries
	// produce whole lines.
	slowMu        sync.Mutex
	slowLog       io.Writer
	slowThreshold time.Duration
}

type indexEntry struct {
	am    core.AccessMethod
	kind  IndexKind
	class string
	attr  string // direct attribute name, or dotted "setAttr.leafAttr" path
	// nested resolves the paper's §4.3 nested path (attr contains a
	// dot); nil for direct set attributes.
	nested *oodb.NestedSetSource
}

// elemsOf returns the indexed set value of one stored object under this
// entry's path.
func (ent *indexEntry) elemsOf(db *oodb.Database, oid oodb.OID) ([]string, error) {
	if ent.nested != nil {
		return ent.nested.Set(uint64(oid))
	}
	o, err := db.Get(oid)
	if err != nil {
		return nil, err
	}
	return o.SetAttr(ent.attr)
}

// NewEngine wraps a database.
func NewEngine(db *oodb.Database) (*Engine, error) {
	if db == nil {
		return nil, fmt.Errorf("query: nil database")
	}
	return &Engine{
		db:      db,
		indexes: make(map[string][]*indexEntry),
		cats:    make(map[string]*attrCatalog),
		pl:      planner.New(),
	}, nil
}

// DB returns the underlying database.
func (e *Engine) DB() *oodb.Database { return e.db }

// Planner returns the engine's cost-based planner, e.g. to switch
// adaptive correction on: e.Planner().SetAdaptive(true).
func (e *Engine) Planner() *planner.Planner { return e.pl }

// SetSearchParallelism makes every index search the engine drives fan
// across up to n goroutines (0 or 1 = sequential, negative = one per
// CPU). Query answers and reported IndexStats are identical at any
// setting — parallelism changes wall-clock only. Set it before sharing
// the engine across goroutines.
func (e *Engine) SetSearchParallelism(n int) { e.parallelism = n }

// SetSlowSearchLog makes the engine write a one-line report — query,
// plan, latency and, for index-driven queries, the per-phase trace — for
// every query slower than threshold. A nil writer (or threshold ≤ 0)
// turns the log off. Safe to call while queries run.
func (e *Engine) SetSlowSearchLog(w io.Writer, threshold time.Duration) {
	e.slowMu.Lock()
	defer e.slowMu.Unlock()
	if threshold <= 0 {
		w = nil
	}
	e.slowLog = w
	e.slowThreshold = threshold
}

// observeQuery records one finished query in the obs registry and the
// slow-search log.
func (e *Engine) observeQuery(q *Query, rs *ResultSet, err error, elapsed time.Duration) {
	obsQueryLatency.Observe(float64(elapsed) / float64(time.Millisecond))
	switch {
	case err != nil:
		obsQueryErrors.Inc()
	case rs.IndexStats != nil:
		obsIndexQueries.Inc()
	default:
		obsScanQueries.Inc()
	}
	e.slowMu.Lock()
	defer e.slowMu.Unlock()
	if e.slowLog == nil || elapsed < e.slowThreshold || err != nil {
		return
	}
	obsSlowQueries.Inc()
	line := fmt.Sprintf("slow query (%s): %s | plan: %s", elapsed.Round(time.Microsecond), q, rs.Plan)
	if rs.Trace != nil {
		line += " | " + rs.Trace.String()
	}
	fmt.Fprintln(e.slowLog, line)
}

// IndexOption tunes the facility CreateIndex builds, applied to the
// core.Config after the positional arguments are folded in.
type IndexOption func(*core.Config)

// WithLSMIndex builds the index on the log-structured write path
// (DESIGN.md §13): WAL-backed memtable, sealed segments, O(1) tombstone
// deletes. Search results are identical to the in-place path; the
// planner accounts for the per-segment read fan-out.
func WithLSMIndex() IndexOption {
	return func(c *core.Config) { c.LSM = true }
}

// WithLSMMemtableSize selects the LSM write path with the given flush
// trigger (memtable operations per segment).
func WithLSMMemtableSize(n int) IndexOption {
	return func(c *core.Config) { c.LSM = true; c.LSMMemtableOps = n }
}

// WithLSMCompactAfter selects the LSM write path with the given
// compaction trigger (segment count that forces a merge).
func WithLSMCompactAfter(n int) IndexOption {
	return func(c *core.Config) { c.LSM = true; c.LSMCompactAfter = n }
}

// WithShardedIndex hash-partitions the index across k shards with
// scatter-gather search (DESIGN.md §16). Results are identical to the
// unsharded facility; the planner prices the K-way scatter and routes
// around a facility whose worst shard is degraded.
func WithShardedIndex(k int) IndexOption {
	return func(c *core.Config) { c.Shards = k }
}

// CreateIndex builds a set access facility of the given kind on the path
// class.attr, bulk-loading it from the existing objects. attr may be a
// nested path "setAttr.leafAttr" through a set<ref> attribute — the
// paper's §4.3 example is the NIX on "Student.courses.category". scheme
// is required for SSF/BSSF/FSSF (the FSSF frame split is derived from
// it) and ignored for NIX. store receives the facility's files (nil =
// in-memory).
//
// Several facilities of different kinds may index the same path; the
// planner picks the cheapest per query. Only a second facility of the
// same kind is rejected.
//
// Nested indexes are maintained when objects of the indexed class are
// inserted or deleted through the engine; like the paper's model, they
// do NOT track updates to the *referenced* objects (changing a course's
// category does not re-key the students pointing at it) — the classical
// nested-index maintenance problem, out of scope here.
//
// opts tune the facility's construction — WithLSMIndex selects the
// log-structured write path (DESIGN.md §13).
func (e *Engine) CreateIndex(class, attr string, kind IndexKind, scheme *signature.Scheme, store pagestore.Store, opts ...IndexOption) (core.AccessMethod, error) {
	key := class + "." + attr
	for _, ent := range e.indexes[key] {
		if ent.kind == kind {
			return nil, fmt.Errorf("query: %s index on %s already exists", kind, key)
		}
	}
	ck, err := kind.coreKind()
	if err != nil {
		return nil, err
	}
	var src core.SetSource
	var nested *oodb.NestedSetSource
	if setAttr, leafAttr, isNested := strings.Cut(attr, "."); isNested {
		nested, err = e.db.NewNestedSetSource(class, setAttr, leafAttr)
		src = nested
	} else {
		src, err = e.db.NewSetSource(class, attr)
	}
	if err != nil {
		return nil, err
	}
	if store != nil {
		// Namespace the facility's files so several indexes can share
		// one store; the per-kind file names keep kinds apart within it.
		store = pagestore.Prefixed(store, key)
	}
	cfg := core.Config{Kind: ck, Scheme: scheme, Source: src, Store: store}
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	am, err := core.Open(cfg)
	if err != nil {
		return nil, err
	}
	// Seed the attribute catalog on the first facility for this path; a
	// second facility reuses it.
	cat := e.cats[key]
	fill := cat == nil
	if fill {
		cat = newAttrCatalog()
	}
	scanElems := func(fn func(oid uint64, elems []string) error) error {
		return e.db.Scan(class, func(o *oodb.Object) error {
			var elems []string
			var err error
			if nested != nil {
				elems, err = nested.Set(uint64(o.OID))
			} else {
				elems, err = o.SetAttr(attr)
			}
			if err != nil {
				return err
			}
			return fn(uint64(o.OID), elems)
		})
	}
	if am.Count() > 0 {
		// The store already holds this facility's files (a persistent
		// store reopened after a shutdown or crash): the constructor
		// recovered its state, so bulk loading would double-insert. The
		// catalog still needs seeding from the heap.
		if fill {
			if err := scanElems(func(_ uint64, elems []string) error {
				cat.add(elems)
				return nil
			}); err != nil {
				return nil, fmt.Errorf("query: seed catalog %s: %w", key, err)
			}
		}
	} else {
		// Bulk load from the heap, batching page writes where the
		// facility supports it.
		var entries []core.Entry
		err = scanElems(func(oid uint64, elems []string) error {
			entries = append(entries, core.Entry{OID: oid, Elems: elems})
			if fill {
				cat.add(elems)
			}
			return nil
		})
		if err == nil {
			err = core.InsertAll(am, entries)
		}
		if err != nil {
			return nil, fmt.Errorf("query: bulk load %s: %w", key, err)
		}
	}
	e.cats[key] = cat
	e.indexes[key] = append(e.indexes[key], &indexEntry{am: am, kind: kind, class: class, attr: attr, nested: nested})
	return am, nil
}

// Index returns the first access method registered on class.attr, or
// nil. With several facilities on the path, Indexes lists them all.
func (e *Engine) Index(class, attr string) core.AccessMethod {
	ents := e.indexes[class+"."+attr]
	if len(ents) == 0 {
		return nil
	}
	return ents[0].am
}

// Indexes returns every access method registered on class.attr in
// creation order.
func (e *Engine) Indexes(class, attr string) []core.AccessMethod {
	ents := e.indexes[class+"."+attr]
	out := make([]core.AccessMethod, len(ents))
	for i, ent := range ents {
		out[i] = ent.am
	}
	return out
}

// Insert stores a new object and maintains every index (and its
// attribute catalog) on its class.
func (e *Engine) Insert(class string, attrs map[string]oodb.Value) (oodb.OID, error) {
	oid, err := e.db.Insert(class, attrs)
	if err != nil {
		return oodb.NilOID, err
	}
	for key, ents := range e.indexes {
		if len(ents) == 0 || ents[0].class != class {
			continue
		}
		elems, err := ents[0].elemsOf(e.db, oid)
		if err != nil {
			return oodb.NilOID, fmt.Errorf("query: maintain index %s: %w", key, err)
		}
		for _, ent := range ents {
			if err := ent.am.Insert(uint64(oid), elems); err != nil {
				return oodb.NilOID, fmt.Errorf("query: maintain index %s: %w", key, err)
			}
		}
		if cat := e.cats[key]; cat != nil {
			cat.add(elems)
		}
	}
	return oid, nil
}

// Delete removes an object and maintains every index (and its attribute
// catalog) on its class.
func (e *Engine) Delete(oid oodb.OID) error {
	o, err := e.db.Get(oid)
	if err != nil {
		return err
	}
	for key, ents := range e.indexes {
		if len(ents) == 0 || ents[0].class != o.Class {
			continue
		}
		elems, err := ents[0].elemsOf(e.db, oid)
		if err != nil {
			return err
		}
		for _, ent := range ents {
			if err := ent.am.Delete(uint64(oid), elems); err != nil {
				return fmt.Errorf("query: maintain index %s: %w", key, err)
			}
		}
		if cat := e.cats[key]; cat != nil {
			cat.remove(elems)
		}
	}
	return e.db.Delete(oid)
}

// attrCatalog tracks element reference counts on one indexed path, so
// the planner's domain cardinality V stays fresh across mutations.
type attrCatalog struct {
	mu   sync.RWMutex
	refs map[string]int
}

func newAttrCatalog() *attrCatalog { return &attrCatalog{refs: make(map[string]int)} }

func (c *attrCatalog) add(elems []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, el := range dedupElems(elems) {
		c.refs[el]++
	}
}

func (c *attrCatalog) remove(elems []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, el := range dedupElems(elems) {
		if n := c.refs[el]; n <= 1 {
			delete(c.refs, el)
		} else {
			c.refs[el] = n - 1
		}
	}
}

// distinct returns V, the number of distinct element values live on the
// attribute.
func (c *attrCatalog) distinct() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.refs)
}

// dedupElems returns the distinct elements of a set value, preserving
// first-occurrence order.
func dedupElems(elems []string) []string {
	seen := make(map[string]struct{}, len(elems))
	out := make([]string, 0, len(elems))
	for _, el := range elems {
		if _, dup := seen[el]; dup {
			continue
		}
		seen[el] = struct{}{}
		out = append(out, el)
	}
	return out
}

// ResultSet is the outcome of a query.
type ResultSet struct {
	// Objects are the qualifying objects in ascending OID order.
	Objects []*oodb.Object
	// Plan describes how the query was executed, e.g.
	// "index(BSSF Student.hobbies T ⊇ Q)" or "scan(Student)". It is
	// PlanNode.String() of the structured plan.
	Plan string
	// PlanNode is the structured form of Plan.
	PlanNode *PlanNode
	// Planning is the cost-based planner's full decision — every costed
	// (facility, strategy) candidate and the reason the winner won; nil
	// for heap scans.
	Planning *planner.Plan
	// IndexStats holds the access-method cost decomposition when an
	// index served the query.
	IndexStats *core.SearchStats
	// Trace is the driving index search's phase decomposition (nil for
	// heap scans). Its span page counts sum exactly to
	// IndexStats.TotalPages().
	Trace *obs.Trace
}

// OIDs returns the result OIDs.
func (r *ResultSet) OIDs() []oodb.OID {
	out := make([]oodb.OID, len(r.Objects))
	for i, o := range r.Objects {
		out[i] = o.OID
	}
	return out
}

// Run parses and executes a query in one step.
func (e *Engine) Run(input string) (*ResultSet, error) {
	return e.RunContext(context.Background(), input)
}

// RunContext parses and executes a query in one step, honoring ctx
// cancellation inside the index searches it drives.
func (e *Engine) RunContext(ctx context.Context, input string) (*ResultSet, error) {
	q, err := Parse(input)
	if err != nil {
		return nil, err
	}
	return e.ExecuteContext(ctx, q)
}

// Execute runs a parsed query. Conjunctions are driven by the first set
// predicate with a registered access facility; the remaining parts
// filter its candidates per object. Without an indexable part the query
// falls back to a heap scan evaluating every part.
func (e *Engine) Execute(q *Query) (*ResultSet, error) {
	return e.ExecuteContext(context.Background(), q)
}

// ExecuteContext is Execute with cancellation: ctx is threaded into every
// index search (and subquery), which return ctx.Err() promptly when it
// fires. The driving search is always traced; the trace lands in
// ResultSet.Trace and additionally in any sink already riding ctx
// (obs.ContextWithSink).
func (e *Engine) ExecuteContext(ctx context.Context, q *Query) (*ResultSet, error) {
	return e.ExecuteOptions(ctx, q, nil)
}

// ExecOptions overrides the engine's defaults for one query — the
// per-request strategy surface the sigfiled server exposes on its wire
// API. The zero value (or nil) changes nothing: the planner still picks
// the facility and its smart caps, and searches run at the engine-wide
// parallelism.
type ExecOptions struct {
	// Parallelism overrides the engine's search parallelism when
	// nonzero (negative = one goroutine per CPU).
	Parallelism int
	// MaxProbeElements, when positive, overrides the planner's probe
	// cap for the driving superset/contains search (§5.1.3).
	MaxProbeElements int
	// MaxZeroSlices, when positive, overrides the planner's zero-slice
	// cap for the driving BSSF subset search (§5.2.2).
	MaxZeroSlices int
}

// ExecuteOptions is ExecuteContext with per-query option overrides.
func (e *Engine) ExecuteOptions(ctx context.Context, q *Query, eo *ExecOptions) (*ResultSet, error) {
	start := time.Now()
	rs, err := e.executeCtx(ctx, q, eo)
	e.observeQuery(q, rs, err, time.Since(start))
	return rs, err
}

func (e *Engine) executeCtx(ctx context.Context, q *Query, eo *ExecOptions) (*ResultSet, error) {
	cls, ok := e.db.Schema().Class(q.Class)
	if !ok {
		return nil, fmt.Errorf("query: unknown class %q", q.Class)
	}
	parts, err := e.compileParts(ctx, cls, q.Where)
	if err != nil {
		return nil, err
	}

	// Pick the driver: the cheapest (facility, strategy) pair across the
	// indexed set predicates, per the cost-based planner.
	dp := e.pickDriver(q.Class, parts)
	if dp == nil {
		return e.scanAll(q.Class, cls, parts)
	}

	d := parts[dp.part]
	ent := dp.ent
	// Trace the driving search into a local collector; a sink already on
	// ctx keeps receiving the trace too.
	collector := &obs.Collector{}
	sink := obs.TraceSink(collector)
	if parent := obs.SinkFrom(ctx); parent != nil {
		sink = obs.SinkFunc(func(t *obs.Trace) {
			collector.EmitTrace(t)
			parent.EmitTrace(t)
		})
	}
	parallelism := e.parallelism
	probeCap, zeroCap := dp.cand.MaxProbeElements, dp.cand.MaxZeroSlices
	if eo != nil {
		// Per-request overrides (the server's wire options) win over the
		// planner's choices; zero values defer to the planner.
		if eo.Parallelism != 0 {
			parallelism = eo.Parallelism
		}
		if eo.MaxProbeElements > 0 {
			probeCap = eo.MaxProbeElements
		}
		if eo.MaxZeroSlices > 0 {
			zeroCap = eo.MaxZeroSlices
		}
	}
	opts := []core.SearchOption{core.WithParallelism(parallelism), core.WithTrace(sink)}
	if probeCap > 0 {
		opts = append(opts, core.WithMaxProbeElements(probeCap))
	}
	if zeroCap > 0 {
		opts = append(opts, core.WithMaxZeroSlices(zeroCap))
	}
	res, err := ent.am.SearchContext(ctx, d.set.Op, d.elems, opts...)
	if err != nil {
		return nil, err
	}
	// Close the planning loop: the measured page count corrects future
	// estimates for this (facility, predicate) in adaptive mode.
	e.pl.Feedback(ent.am.Name(), d.set.Op, dp.cand.EstimatedRC, float64(res.Stats.TotalPages()))
	rest := append(append([]compiledPart{}, parts[:dp.part]...), parts[dp.part+1:]...)
	objs := make([]*oodb.Object, 0, len(res.OIDs))
	for _, oid := range res.OIDs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		o, err := e.db.Get(oodb.OID(oid))
		if err != nil {
			return nil, err
		}
		ok, err := evalParts(o, rest)
		if err != nil {
			return nil, err
		}
		if ok {
			objs = append(objs, o)
		}
	}
	node := &PlanNode{
		Kind:             "index",
		Facility:         ent.am.Name(),
		Class:            q.Class,
		Attr:             d.set.Attr,
		Predicate:        d.set.Op.String(),
		Strategy:         string(dp.cand.Strategy),
		MaxProbeElements: probeCap,
		MaxZeroSlices:    zeroCap,
		Filters:          len(rest),
		Children:         childPlans(parts),
	}
	if !math.IsInf(dp.cand.CorrectedRC, 0) {
		node.EstimatedPages = dp.cand.CorrectedRC
	}
	stats := res.Stats
	rs := &ResultSet{Objects: objs, Plan: node.String(), PlanNode: node, Planning: dp.plan, IndexStats: &stats}
	// The driver emitted exactly one trace; subquery traces (if any) were
	// recorded by the subquery's own ResultSet, so take the last.
	if traces := collector.Traces(); len(traces) > 0 {
		rs.Trace = traces[len(traces)-1]
	}
	return rs, nil
}

// compiledPart is a predicate with its operands resolved (subqueries
// executed, attribute kinds validated).
type compiledPart struct {
	set   *SetPredicate
	elems []string // resolved query set (set parts only)
	sub   *PlanNode
	// nested resolves a dotted-path set predicate per object.
	nested  *oodb.NestedSetSource
	cmp     *ComparePredicate
	cmpKind oodb.Kind
}

// driverPlan is the planner's winning access path for one conjunction:
// which part drives, through which facility, with what strategy.
type driverPlan struct {
	part int
	ent  *indexEntry
	cand planner.Candidate
	plan *planner.Plan
}

// pickDriver costs every indexed set predicate of the conjunction
// against every facility on its attribute and returns the cheapest
// (part, facility, strategy), or nil when nothing is indexed. Unhealthy
// facilities are routed around: failed ones are never considered, and
// degraded (read-only) ones only when no healthy facility covers the
// attribute — a degraded signature file still answers exactly, it just
// may be slower to come back, so it beats a heap scan but not a healthy
// sibling.
func (e *Engine) pickDriver(class string, parts []compiledPart) *driverPlan {
	var best *driverPlan
	for i, p := range parts {
		if p.set == nil {
			continue
		}
		key := class + "." + p.set.Attr
		ents := servableEntries(e.indexes[key])
		if len(ents) == 0 {
			continue
		}
		pl := e.planFor(key, ents, p.set.Op, len(dedupElems(p.elems)))
		c := pl.Chosen()
		if c == nil || c.Index >= len(ents) {
			continue
		}
		if best == nil || c.CorrectedRC < best.cand.CorrectedRC {
			best = &driverPlan{part: i, ent: ents[c.Index], cand: *c, plan: pl}
		}
	}
	return best
}

// servableEntries filters one path's facilities by health: failed ones
// are dropped, degraded ones kept only when nothing healthy remains.
// The returned slice is what planFor costs, so Candidate.Index stays
// aligned with it.
func servableEntries(ents []*indexEntry) []*indexEntry {
	var healthy, degraded []*indexEntry
	for _, ent := range ents {
		switch core.HealthOf(ent.am) {
		case core.Healthy:
			healthy = append(healthy, ent)
		case core.Degraded:
			degraded = append(degraded, ent)
		}
	}
	if len(healthy) > 0 {
		return healthy
	}
	return degraded
}

// planFor runs the cost-based planner over the facilities registered on
// one path, assembling the shared catalog from the attribute statistics
// and the facilities' own Describe() snapshots.
func (e *Engine) planFor(key string, ents []*indexEntry, op signature.Predicate, dq int) *planner.Plan {
	descs := make([]core.FacilityStats, len(ents))
	for i, ent := range ents {
		if d, ok := ent.am.(core.Describer); ok {
			descs[i] = d.Describe()
		} else {
			descs[i] = core.FacilityStats{Facility: ent.am.Name(), Count: ent.am.Count()}
		}
	}
	cat := planner.Catalog{}
	if c := e.cats[key]; c != nil {
		cat.V = c.distinct()
	}
	for _, d := range descs {
		if d.Count > cat.N {
			cat.N = d.Count
		}
		if cat.Dt == 0 && d.AvgSetCard > 0 {
			cat.Dt = d.AvgSetCard
		}
		if d.DistinctElems > cat.V {
			cat.V = d.DistinctElems
		}
	}
	return e.pl.Plan(op, dq, cat, descs)
}

// flattenPredicate lists the conjunction's parts (a simple predicate is
// its own 1-element conjunction).
func flattenPredicate(p Predicate) []Predicate {
	if and, ok := p.(*AndPredicate); ok {
		return and.Parts
	}
	return []Predicate{p}
}

// compileParts validates and resolves every part of the where clause.
func (e *Engine) compileParts(ctx context.Context, cls *oodb.Class, where Predicate) ([]compiledPart, error) {
	var out []compiledPart
	for _, p := range flattenPredicate(where) {
		switch pred := p.(type) {
		case *SetPredicate:
			elems, sub, err := e.resolveElems(ctx, cls, pred)
			if err != nil {
				return nil, err
			}
			part := compiledPart{set: pred, elems: elems, sub: sub}
			if setAttr, leafAttr, isNested := strings.Cut(pred.Attr, "."); isNested {
				part.nested, err = e.db.NewNestedSetSource(cls.Name, setAttr, leafAttr)
				if err != nil {
					return nil, err
				}
			}
			out = append(out, part)
		case *ComparePredicate:
			kind, ok := cls.AttrKind(pred.Attr)
			if !ok {
				return nil, fmt.Errorf("query: class %s has no attribute %q", cls.Name, pred.Attr)
			}
			if err := checkCompareKind(cls.Name, pred, kind); err != nil {
				return nil, err
			}
			out = append(out, compiledPart{cmp: pred, cmpKind: kind})
		default:
			return nil, fmt.Errorf("query: unsupported predicate %T", p)
		}
	}
	return out, nil
}

// checkCompareKind validates literal/attribute type compatibility at
// compile time.
func checkCompareKind(class string, pred *ComparePredicate, kind oodb.Kind) error {
	switch {
	case pred.Str != nil:
		if kind != oodb.KindString {
			return fmt.Errorf("query: %s.%s is %v, compared to a string", class, pred.Attr, kind)
		}
	case pred.Int != nil:
		if kind != oodb.KindInt && kind != oodb.KindRef {
			return fmt.Errorf("query: %s.%s is %v, compared to an integer", class, pred.Attr, kind)
		}
	case pred.Float != nil:
		if kind != oodb.KindFloat {
			return fmt.Errorf("query: %s.%s is %v, compared to a float", class, pred.Attr, kind)
		}
	default:
		return fmt.Errorf("query: comparison without a literal")
	}
	return nil
}

// evalParts evaluates every compiled part against one object.
func evalParts(o *oodb.Object, parts []compiledPart) (bool, error) {
	for _, p := range parts {
		ok, err := evalPart(o, p)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

func evalPart(o *oodb.Object, p compiledPart) (bool, error) {
	if p.set != nil {
		var target []string
		var err error
		if p.nested != nil {
			target, err = p.nested.Set(uint64(o.OID))
		} else {
			target, err = o.SetAttr(p.set.Attr)
		}
		if err != nil {
			return false, err
		}
		return signature.EvaluateSets(p.set.Op, target, p.elems)
	}
	v, ok := o.Attr(p.cmp.Attr)
	if !ok {
		return false, fmt.Errorf("query: object %d lacks attribute %q", o.OID, p.cmp.Attr)
	}
	var hit bool
	switch {
	case p.cmp.Str != nil:
		hit = v.Str == *p.cmp.Str
	case p.cmp.Int != nil:
		if p.cmpKind == oodb.KindRef {
			hit = v.Ref == oodb.OID(*p.cmp.Int)
		} else {
			hit = v.Int == *p.cmp.Int
		}
	case p.cmp.Float != nil:
		hit = v.Float == *p.cmp.Float
	}
	return hit != p.cmp.Neq, nil
}

// childPlans collects the subquery plans of all parts in order.
func childPlans(parts []compiledPart) []*PlanNode {
	var out []*PlanNode
	for _, p := range parts {
		if p.sub != nil {
			out = append(out, p.sub)
		}
	}
	return out
}

// scanAll answers a query by scanning the heap and evaluating every
// part.
func (e *Engine) scanAll(class string, cls *oodb.Class, parts []compiledPart) (*ResultSet, error) {
	var objs []*oodb.Object
	err := e.db.Scan(class, func(o *oodb.Object) error {
		ok, err := evalParts(o, parts)
		if err != nil {
			return err
		}
		if ok {
			objs = append(objs, o)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sortObjects(objs)
	var desc []string
	for _, p := range parts {
		if p.set != nil {
			desc = append(desc, p.set.Op.String())
		}
	}
	node := &PlanNode{Kind: "scan", Class: class, FilterOps: desc, Children: childPlans(parts)}
	return &ResultSet{Objects: objs, Plan: node.String(), PlanNode: node}, nil
}

// resolveElems materializes the query set of a set predicate, executing
// the subquery if present. Subquery results are encoded as OID elements,
// so they are only meaningful against set<ref> attributes.
func (e *Engine) resolveElems(ctx context.Context, cls *oodb.Class, pred *SetPredicate) ([]string, *PlanNode, error) {
	if strings.Contains(pred.Attr, ".") {
		// Nested path: the indexed elements are the (scalar) leaf values,
		// so literals pass through and subqueries are rejected.
		if pred.Sub != nil {
			return nil, nil, fmt.Errorf("query: nested path %s.%s does not take a subquery operand", cls.Name, pred.Attr)
		}
		return pred.Elems, nil, nil
	}
	kind, ok := cls.AttrKind(pred.Attr)
	if !ok {
		return nil, nil, fmt.Errorf("query: class %s has no attribute %q", cls.Name, pred.Attr)
	}
	if !kind.IsSet() {
		return nil, nil, fmt.Errorf("query: %s.%s is %v; set operators need a set attribute", cls.Name, pred.Attr, kind)
	}
	if pred.Sub == nil {
		if kind == oodb.KindRefSet {
			// Literal operands against a ref set are numeric OIDs.
			elems := make([]string, 0, len(pred.Elems))
			for _, lit := range pred.Elems {
				oid, err := strconv.ParseUint(lit, 10, 64)
				if err != nil {
					return nil, nil, fmt.Errorf("query: %s.%s is set<ref>; element %q is not an OID", cls.Name, pred.Attr, lit)
				}
				elems = append(elems, oodb.EncodeOID(oodb.OID(oid)))
			}
			return elems, nil, nil
		}
		return pred.Elems, nil, nil
	}
	if kind != oodb.KindRefSet {
		return nil, nil, fmt.Errorf("query: %s.%s is %v; a subquery operand needs a set<ref> attribute", cls.Name, pred.Attr, kind)
	}
	sub, err := e.executeCtx(ctx, pred.Sub, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("query: subquery: %w", err)
	}
	elems := make([]string, 0, len(sub.Objects))
	for _, o := range sub.Objects {
		elems = append(elems, oodb.EncodeOID(o.OID))
	}
	return elems, sub.PlanNode, nil
}

func sortObjects(objs []*oodb.Object) {
	sort.Slice(objs, func(i, j int) bool { return objs[i].OID < objs[j].OID })
}

// Explain returns the plan a query would use without running the data
// access (subqueries are still executed to resolve their plans). The
// input may carry a redundant leading EXPLAIN keyword. When the planner
// can cost the query, the report includes its full per-candidate cost
// table and the reason the winner won.
func (e *Engine) Explain(input string) (string, error) {
	stmt, err := ParseStatement(input)
	if err != nil {
		return "", err
	}
	return e.ExplainQuery(stmt.Query)
}

// ExplainQuery is Explain over an already-parsed query.
func (e *Engine) ExplainQuery(q *Query) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s\n", q)
	// Cost the query exactly like executeCtx would. Compilation can fail
	// where Explain should still answer (unknown class, bad subquery);
	// then fall back to inspection-only output.
	var dp *driverPlan
	driverIdx := -1
	if cls, ok := e.db.Schema().Class(q.Class); ok {
		if parts, err := e.compileParts(context.Background(), cls, q.Where); err == nil {
			if dp = e.pickDriver(q.Class, parts); dp != nil {
				driverIdx = dp.part
			}
		}
	}
	legacyIdx := -1
	if dp == nil {
		legacyIdx = firstIndexed(e, q)
	}
	for i, part := range flattenPredicate(q.Where) {
		prefix := "plan: "
		if i > 0 {
			prefix = "  and "
		}
		sp, ok := part.(*SetPredicate)
		switch {
		case ok && i == driverIdx:
			suffix := smartSuffix(string(dp.cand.Strategy), dp.cand.MaxProbeElements, dp.cand.MaxZeroSlices)
			fmt.Fprintf(&b, "%s index(%s %s.%s %s)%s\n", prefix, dp.ent.am.Name(), q.Class, sp.Attr, sp.Op, suffix)
		case ok && i == legacyIdx:
			ent := e.indexes[q.Class+"."+sp.Attr][0]
			fmt.Fprintf(&b, "%s index(%s %s.%s %s)\n", prefix, ent.am.Name(), q.Class, sp.Attr, sp.Op)
		case ok:
			fmt.Fprintf(&b, "%s filter %s on %s\n", prefix, sp.Op, q.Class)
		default:
			fmt.Fprintf(&b, "%s filter compare on %s\n", prefix, q.Class)
		}
	}
	if driverIdx < 0 && legacyIdx < 0 {
		fmt.Fprintf(&b, "  via scan(%s)\n", q.Class)
	}
	if dp != nil {
		writeCostTable(&b, dp.plan)
	}
	return strings.TrimRight(b.String(), "\n"), nil
}

// writeCostTable renders the planner's per-candidate cost table for
// EXPLAIN output.
func writeCostTable(b *strings.Builder, pl *planner.Plan) {
	fmt.Fprintf(b, "planner: Dq=%d N=%d Dt=%.1f V=%d\n", pl.Dq, pl.Catalog.N, pl.Catalog.Dt, pl.Catalog.V)
	for i, c := range pl.Candidates {
		marker := " "
		if i == 0 {
			marker = "*"
		}
		label := string(c.Strategy) + smartCaps(c)
		if c.Unmodeled {
			fmt.Fprintf(b, "  %s %-5s %-12s (no cost model)\n", marker, c.Facility, label)
			continue
		}
		fmt.Fprintf(b, "  %s %-5s %-12s est=%.1f corrected=%.1f\n", marker, c.Facility, label, c.EstimatedRC, c.CorrectedRC)
	}
	fmt.Fprintf(b, "reason: %s\n", pl.Reason)
}

// smartCaps renders a candidate's smart parameters ("" for naive).
func smartCaps(c planner.Candidate) string {
	switch {
	case c.MaxProbeElements > 0:
		return fmt.Sprintf(" k=%d", c.MaxProbeElements)
	case c.MaxZeroSlices > 0:
		return fmt.Sprintf(" z=%d", c.MaxZeroSlices)
	default:
		return ""
	}
}

// firstIndexed returns the index of the first part of q's conjunction
// that an access facility can drive, or -1. It is the inspection-only
// fallback for Explain when compilation fails.
func firstIndexed(e *Engine, q *Query) int {
	for i, part := range flattenPredicate(q.Where) {
		if sp, ok := part.(*SetPredicate); ok {
			if len(e.indexes[q.Class+"."+sp.Attr]) > 0 {
				return i
			}
		}
	}
	return -1
}
