package query

import (
	"strings"
	"testing"

	"sigfile/internal/oodb"
	"sigfile/internal/signature"
)

// dbCategories returns, per student OID, the set of categories of the
// student's courses — the ground truth for the nested path
// Student.courses.category.
func dbCategories(t *testing.T, e *Engine) map[oodb.OID]map[string]bool {
	t.Helper()
	course := map[oodb.OID]string{}
	if err := e.DB().Scan("Course", func(o *oodb.Object) error {
		course[o.OID] = o.Attrs["category"].Str
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	out := map[oodb.OID]map[string]bool{}
	if err := e.DB().Scan("Student", func(o *oodb.Object) error {
		cats := map[string]bool{}
		for _, c := range o.Attrs["courses"].RefSet {
			cats[course[c]] = true
		}
		out[o.OID] = cats
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestNestedPathIndex reproduces the paper's §4.3 example: an index on
// the path Student.courses.category answering category-level set
// predicates over students.
func TestNestedPathIndex(t *testing.T) {
	for _, kind := range []IndexKind{KindNIX, KindBSSF, KindSSF} {
		e := newUniversity(t)
		if _, err := e.CreateIndex("Student", "courses.category", kind, signature.MustNew(64, 2), nil); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		truth := dbCategories(t, e)

		// has-element: students taking at least one DB course (the leaf
		// entry "[DB, {s1, s2}]" of the paper's example).
		res, err := e.Run(`select Student where courses.category has-element "DB"`)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(res.Plan, "index("+kind.String()+" Student.courses.category") {
			t.Fatalf("%v plan: %q", kind, res.Plan)
		}
		want := 0
		for _, cats := range truth {
			if cats["DB"] {
				want++
			}
		}
		if len(res.Objects) != want {
			t.Fatalf("%v has-element: %d results, want %d", kind, len(res.Objects), want)
		}

		// has-subset: students with both a DB and an AI course.
		res, err = e.Run(`select Student where courses.category has-subset ("DB", "AI")`)
		if err != nil {
			t.Fatal(err)
		}
		want = 0
		for _, cats := range truth {
			if cats["DB"] && cats["AI"] {
				want++
			}
		}
		if len(res.Objects) != want {
			t.Fatalf("%v has-subset: %d results, want %d", kind, len(res.Objects), want)
		}

		// in-subset: the paper's "students who take only DB lectures",
		// now expressible WITHOUT a subquery.
		res, err = e.Run(`select Student where courses.category in-subset ("DB")`)
		if err != nil {
			t.Fatal(err)
		}
		want = 0
		for _, cats := range truth {
			only := len(cats) > 0
			for c := range cats {
				if c != "DB" {
					only = false
				}
			}
			if only || len(cats) == 0 {
				want++
			}
		}
		if len(res.Objects) != want {
			t.Fatalf("%v in-subset: %d results, want %d", kind, len(res.Objects), want)
		}
	}
}

// TestNestedPathScanFallback answers the same queries without an index.
func TestNestedPathScanFallback(t *testing.T) {
	e := newUniversity(t)
	truth := dbCategories(t, e)
	res, err := e.Run(`select Student where courses.category has-element "DB"`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Plan, "scan(") {
		t.Fatalf("plan %q", res.Plan)
	}
	want := 0
	for _, cats := range truth {
		if cats["DB"] {
			want++
		}
	}
	if len(res.Objects) != want {
		t.Fatalf("scan fallback: %d results, want %d", len(res.Objects), want)
	}
}

// TestNestedPathMaintenance checks insert/delete maintenance through the
// engine.
func TestNestedPathMaintenance(t *testing.T) {
	e := newUniversity(t)
	if _, err := e.CreateIndex("Student", "courses.category", KindNIX, nil, nil); err != nil {
		t.Fatal(err)
	}
	// Find one DB course to reference.
	var dbCourse oodb.OID
	e.DB().Scan("Course", func(o *oodb.Object) error {
		if dbCourse == 0 && o.Attrs["category"].Str == "DB" {
			dbCourse = o.OID
		}
		return nil
	})
	oid, err := e.Insert("Student", map[string]oodb.Value{
		"name":    oodb.String("OnlyDB"),
		"courses": oodb.RefSet(dbCourse),
		"hobbies": oodb.StringSet("Chess"),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(`select Student where courses.category in-subset ("DB")`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, o := range res.Objects {
		if o.OID == oid {
			found = true
		}
	}
	if !found {
		t.Fatal("inserted student not visible through nested index")
	}
	if err := e.Delete(oid); err != nil {
		t.Fatal(err)
	}
	res, _ = e.Run(`select Student where courses.category in-subset ("DB")`)
	for _, o := range res.Objects {
		if o.OID == oid {
			t.Fatal("deleted student still indexed")
		}
	}
}

// TestNestedPathValidation covers the error paths.
func TestNestedPathValidation(t *testing.T) {
	e := newUniversity(t)
	if _, err := e.CreateIndex("Student", "hobbies.x", KindNIX, nil, nil); err == nil {
		t.Fatal("nested path through set<string> accepted")
	}
	if _, err := e.CreateIndex("Student", "nope.x", KindNIX, nil, nil); err == nil {
		t.Fatal("nested path through missing attribute accepted")
	}
	if _, err := e.Run(`select Student where courses.category in-subset (select Course where category = "DB")`); err == nil {
		t.Fatal("subquery against nested path accepted")
	}
	// A leaf attribute missing on the referenced class surfaces at
	// evaluation time.
	if _, err := e.Run(`select Student where courses.bogus has-element "x"`); err == nil {
		t.Fatal("missing leaf attribute accepted")
	}
	// oodb-level validation.
	if _, err := e.DB().NewNestedSetSource("Student", "courses", ""); err == nil {
		t.Fatal("empty leaf attribute accepted")
	}
	if _, err := e.DB().NewNestedSetSource("Ghost", "courses", "x"); err == nil {
		t.Fatal("unknown class accepted")
	}
}
