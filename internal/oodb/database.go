package oodb

import (
	"fmt"
	"sort"
	"sync"

	"sigfile/internal/pagestore"
)

// Database binds a schema to object storage and allocates OIDs. Objects of
// all classes share one OID space; each class gets its own heap file in
// the backing Store (named "objects/<class>").
//
// A Database is safe for concurrent use: reads (Get, Scan, the
// SetSources) run from any number of goroutines while Insert, Delete and
// Update take the write lock; the per-class heaps add their own locking
// underneath.
type Database struct {
	schema *Schema
	store  pagestore.Store
	heaps  map[string]*ObjectStore
	// mu guards classOf and nextOID, the cross-heap mutable state.
	mu      sync.RWMutex
	classOf map[OID]string
	nextOID OID
}

// NewDatabase creates a database with the given schema over the given
// page store.
func NewDatabase(schema *Schema, store pagestore.Store) (*Database, error) {
	if schema == nil {
		return nil, fmt.Errorf("oodb: nil schema")
	}
	if store == nil {
		store = pagestore.NewMemStore()
	}
	db := &Database{
		schema:  schema,
		store:   store,
		heaps:   make(map[string]*ObjectStore),
		classOf: make(map[OID]string),
		nextOID: 1,
	}
	for _, name := range schema.Classes() {
		f, err := store.Open("objects/" + name)
		if err != nil {
			return nil, fmt.Errorf("oodb: open heap for %s: %w", name, err)
		}
		h, err := NewObjectStore(f)
		if err != nil {
			return nil, fmt.Errorf("oodb: heap for %s: %w", name, err)
		}
		db.heaps[name] = h
		for _, oid := range h.OIDs() {
			db.classOf[oid] = name
			if oid >= db.nextOID {
				db.nextOID = oid + 1
			}
		}
	}
	return db, nil
}

// OpenDatabase opens (creating if necessary) a crash-safe database
// rooted at dir: every heap lives in a pagestore.DurableStore, writes
// become durable at Commit/Checkpoint, and opening replays any committed
// write-ahead-log records a crash left behind.
func OpenDatabase(schema *Schema, dir string) (*Database, error) {
	store, err := pagestore.OpenDurableStore(dir)
	if err != nil {
		return nil, err
	}
	db, err := NewDatabase(schema, store)
	if err != nil {
		store.Close()
		return nil, err
	}
	return db, nil
}

// Schema returns the database schema.
func (db *Database) Schema() *Schema { return db.schema }

// Store returns the backing page store, so callers can house indexes in
// the same store (and the same commit scope) as the heaps.
func (db *Database) Store() pagestore.Store { return db.store }

// Commit makes all writes since the last Commit durable and atomic if
// the backing store is transactional (implements pagestore.Committer);
// over a plain store it is a no-op.
func (db *Database) Commit() error {
	if c, ok := db.store.(pagestore.Committer); ok {
		return c.Commit()
	}
	return nil
}

// Checkpoint commits and additionally truncates the store's write-ahead
// log after fsyncing the page files; a no-op over a plain store.
func (db *Database) Checkpoint() error {
	if c, ok := db.store.(pagestore.Committer); ok {
		return c.Checkpoint()
	}
	return nil
}

// Close commits pending writes and closes the backing store.
func (db *Database) Close() error { return db.store.Close() }

// Heap returns the object store for a class, or nil if the class is
// unknown.
func (db *Database) Heap(class string) *ObjectStore { return db.heaps[class] }

// Count returns the number of live objects of the class.
func (db *Database) Count(class string) int {
	h := db.heaps[class]
	if h == nil {
		return 0
	}
	return h.Count()
}

// Insert validates attrs against the class, assigns a fresh OID, stores
// the object, and returns its OID.
func (db *Database) Insert(class string, attrs map[string]Value) (OID, error) {
	c, ok := db.schema.Class(class)
	if !ok {
		return NilOID, fmt.Errorf("oodb: unknown class %q", class)
	}
	if err := c.Validate(attrs); err != nil {
		return NilOID, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	oid := db.nextOID
	o := &Object{OID: oid, Class: class, Attrs: attrs}
	if err := db.heaps[class].Put(o); err != nil {
		return NilOID, err
	}
	db.nextOID++
	db.classOf[oid] = class
	return oid, nil
}

// Get fetches an object by OID (one page read).
func (db *Database) Get(oid OID) (*Object, error) {
	db.mu.RLock()
	class, ok := db.classOf[oid]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("oodb: object %d not found", oid)
	}
	return db.heaps[class].Get(oid)
}

// Delete removes an object.
func (db *Database) Delete(oid OID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	class, ok := db.classOf[oid]
	if !ok {
		return fmt.Errorf("oodb: object %d not found", oid)
	}
	if err := db.heaps[class].Delete(oid); err != nil {
		return err
	}
	delete(db.classOf, oid)
	return nil
}

// Update replaces the attributes of an existing object. It validates like
// Insert and rewrites the record (delete + put under the same OID).
func (db *Database) Update(oid OID, attrs map[string]Value) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	class, ok := db.classOf[oid]
	if !ok {
		return fmt.Errorf("oodb: object %d not found", oid)
	}
	c, _ := db.schema.Class(class)
	if err := c.Validate(attrs); err != nil {
		return err
	}
	h := db.heaps[class]
	if err := h.Delete(oid); err != nil {
		return err
	}
	return h.Put(&Object{OID: oid, Class: class, Attrs: attrs})
}

// Scan invokes fn for every live object of the class in page order.
func (db *Database) Scan(class string, fn func(*Object) error) error {
	h := db.heaps[class]
	if h == nil {
		return fmt.Errorf("oodb: unknown class %q", class)
	}
	return h.Scan(fn)
}

// OIDsOf returns the sorted OIDs of all live objects of the class.
func (db *Database) OIDsOf(class string) []OID {
	h := db.heaps[class]
	if h == nil {
		return nil
	}
	oids := h.OIDs()
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	return oids
}

// SetSource adapts one (class, attribute) path of the database to the
// resolver interface the access methods use during false-drop resolution:
// fetching the target set of an OID costs one page read on the heap file.
type SetSource struct {
	db    *Database
	class string
	attr  string
}

// NewSetSource validates that class.attr is a set-valued path and returns
// a resolver for it.
func (db *Database) NewSetSource(class, attr string) (*SetSource, error) {
	c, ok := db.schema.Class(class)
	if !ok {
		return nil, fmt.Errorf("oodb: unknown class %q", class)
	}
	k, ok := c.AttrKind(attr)
	if !ok {
		return nil, fmt.Errorf("oodb: class %s has no attribute %q", class, attr)
	}
	if !k.IsSet() {
		return nil, fmt.Errorf("oodb: %s.%s is %v, not a set", class, attr, k)
	}
	return &SetSource{db: db, class: class, attr: attr}, nil
}

// Set returns the canonical element strings of the indexed attribute of
// the object identified by oid.
func (s *SetSource) Set(oid uint64) ([]string, error) {
	o, err := s.db.Get(OID(oid))
	if err != nil {
		return nil, err
	}
	return o.SetAttr(s.attr)
}

// Class returns the class this source reads.
func (s *SetSource) Class() string { return s.class }

// Attr returns the attribute this source reads.
func (s *SetSource) Attr() string { return s.attr }

// NestedSetSource resolves the paper's §4.3 nested path
// class.setAttr.leafAttr: the indexed set value of an object is the set
// of leafAttr values of the objects its setAttr references — e.g. on
// "Student.courses.category" the set of category strings of a student's
// courses. Fetching it costs 1 + |setAttr| page reads (the object plus
// each referenced object), which is exactly why the paper's nested index
// materializes the mapping.
type NestedSetSource struct {
	db       *Database
	class    string
	setAttr  string
	leafAttr string
}

// NewNestedSetSource validates the path: class.setAttr must be a
// set<ref>, and leafAttr must be a primitive attribute on every class
// the references can point to (checked lazily per object, since the
// model does not type refs).
func (db *Database) NewNestedSetSource(class, setAttr, leafAttr string) (*NestedSetSource, error) {
	c, ok := db.schema.Class(class)
	if !ok {
		return nil, fmt.Errorf("oodb: unknown class %q", class)
	}
	k, ok := c.AttrKind(setAttr)
	if !ok {
		return nil, fmt.Errorf("oodb: class %s has no attribute %q", class, setAttr)
	}
	if k != KindRefSet {
		return nil, fmt.Errorf("oodb: %s.%s is %v; a nested path needs set<ref>", class, setAttr, k)
	}
	if leafAttr == "" {
		return nil, fmt.Errorf("oodb: empty leaf attribute in nested path")
	}
	return &NestedSetSource{db: db, class: class, setAttr: setAttr, leafAttr: leafAttr}, nil
}

// Set implements the resolver: the deduplicated, sorted leaf values
// reached through the object's reference set.
func (s *NestedSetSource) Set(oid uint64) ([]string, error) {
	o, err := s.db.Get(OID(oid))
	if err != nil {
		return nil, err
	}
	v, ok := o.Attr(s.setAttr)
	if !ok || v.Kind != KindRefSet {
		return nil, fmt.Errorf("oodb: object %d lacks set<ref> attribute %q", oid, s.setAttr)
	}
	seen := make(map[string]struct{}, len(v.RefSet))
	out := make([]string, 0, len(v.RefSet))
	for _, ref := range v.RefSet {
		target, err := s.db.Get(ref)
		if err != nil {
			return nil, fmt.Errorf("oodb: nested path %s.%s.%s: %w", s.class, s.setAttr, s.leafAttr, err)
		}
		lv, ok := target.Attr(s.leafAttr)
		if !ok {
			return nil, fmt.Errorf("oodb: nested path: %s object %d has no attribute %q", target.Class, ref, s.leafAttr)
		}
		var elem string
		switch lv.Kind {
		case KindString:
			elem = lv.Str
		case KindInt:
			elem = fmt.Sprintf("%d", lv.Int)
		case KindRef:
			elem = EncodeOID(lv.Ref)
		default:
			return nil, fmt.Errorf("oodb: nested path leaf %s.%s is %v; need a scalar", target.Class, s.leafAttr, lv.Kind)
		}
		if _, dup := seen[elem]; dup {
			continue
		}
		seen[elem] = struct{}{}
		out = append(out, elem)
	}
	sort.Strings(out)
	return out, nil
}

// Path returns the dotted path this source resolves.
func (s *NestedSetSource) Path() string {
	return s.class + "." + s.setAttr + "." + s.leafAttr
}
