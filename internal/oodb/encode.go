package oodb

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Binary object encoding. Records are self-describing so a heap page can
// be decoded without consulting the schema:
//
//	record  := oid(8) class(str) nattrs(uvarint) attr*
//	attr    := name(str) kind(1) payload
//	str     := len(uvarint) bytes
//	payload := str                      (KindString)
//	         | fixed64                  (KindInt, KindFloat, KindRef)
//	         | n(uvarint) str*          (KindStringSet)
//	         | n(uvarint) fixed64*      (KindRefSet)
//
// Attributes are encoded in sorted name order so encoding is canonical:
// equal objects encode to equal bytes.

// EncodeObject serializes o. The object's OID must already be assigned.
func EncodeObject(o *Object) []byte {
	buf := make([]byte, 0, 64+16*len(o.Attrs))
	buf = binary.BigEndian.AppendUint64(buf, uint64(o.OID))
	buf = appendString(buf, o.Class)
	buf = binary.AppendUvarint(buf, uint64(len(o.Attrs)))
	names := make([]string, 0, len(o.Attrs))
	for name := range o.Attrs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := o.Attrs[name]
		buf = appendString(buf, name)
		buf = append(buf, byte(v.Kind))
		switch v.Kind {
		case KindString:
			buf = appendString(buf, v.Str)
		case KindInt:
			buf = binary.BigEndian.AppendUint64(buf, uint64(v.Int))
		case KindFloat:
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v.Float))
		case KindRef:
			buf = binary.BigEndian.AppendUint64(buf, uint64(v.Ref))
		case KindStringSet:
			buf = binary.AppendUvarint(buf, uint64(len(v.StrSet)))
			for _, e := range v.StrSet {
				buf = appendString(buf, e)
			}
		case KindRefSet:
			buf = binary.AppendUvarint(buf, uint64(len(v.RefSet)))
			for _, r := range v.RefSet {
				buf = binary.BigEndian.AppendUint64(buf, uint64(r))
			}
		default:
			panic(fmt.Sprintf("oodb: cannot encode kind %v", v.Kind))
		}
	}
	return buf
}

// DecodeObject inverts EncodeObject.
func DecodeObject(data []byte) (*Object, error) {
	d := decoder{buf: data}
	oid := d.fixed64()
	class := d.str()
	n := d.uvarint()
	if d.err != nil {
		return nil, fmt.Errorf("oodb: decode header: %w", d.err)
	}
	if n > uint64(len(data)) { // each attr needs at least a few bytes
		return nil, fmt.Errorf("oodb: implausible attribute count %d", n)
	}
	o := &Object{OID: OID(oid), Class: class, Attrs: make(map[string]Value, n)}
	for i := uint64(0); i < n; i++ {
		name := d.str()
		kind := Kind(d.byte())
		var v Value
		v.Kind = kind
		switch kind {
		case KindString:
			v.Str = d.str()
		case KindInt:
			v.Int = int64(d.fixed64())
		case KindFloat:
			v.Float = math.Float64frombits(d.fixed64())
		case KindRef:
			v.Ref = OID(d.fixed64())
		case KindStringSet:
			cnt := d.uvarint()
			if d.err == nil && cnt > uint64(len(data)) {
				return nil, fmt.Errorf("oodb: implausible set size %d", cnt)
			}
			v.StrSet = make([]string, 0, cnt)
			for j := uint64(0); j < cnt && d.err == nil; j++ {
				v.StrSet = append(v.StrSet, d.str())
			}
		case KindRefSet:
			cnt := d.uvarint()
			if d.err == nil && cnt > uint64(len(data)) {
				return nil, fmt.Errorf("oodb: implausible set size %d", cnt)
			}
			v.RefSet = make([]OID, 0, cnt)
			for j := uint64(0); j < cnt && d.err == nil; j++ {
				v.RefSet = append(v.RefSet, OID(d.fixed64()))
			}
		default:
			return nil, fmt.Errorf("oodb: decode attribute %q: invalid kind %d", name, kind)
		}
		if d.err != nil {
			return nil, fmt.Errorf("oodb: decode attribute %q: %w", name, d.err)
		}
		o.Attrs[name] = v
	}
	return o, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("truncated record")
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || len(d.buf) < 1 {
		d.fail()
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) fixed64() uint64 {
	if d.err != nil || len(d.buf) < 8 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil || uint64(len(d.buf)) < n {
		d.fail()
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}
