package oodb

import (
	"fmt"
	"sort"
)

// AttrDef declares one attribute of a class.
type AttrDef struct {
	Name string
	Kind Kind
}

// Class declares a class: a name plus its attribute definitions. The data
// model is flat (no inheritance) — the paper's analysis does not depend on
// class hierarchies.
type Class struct {
	Name  string
	Attrs []AttrDef

	byName map[string]Kind
}

// NewClass builds a class definition, validating that the class and its
// attributes are well formed and uniquely named.
func NewClass(name string, attrs ...AttrDef) (*Class, error) {
	if name == "" {
		return nil, fmt.Errorf("oodb: class name must not be empty")
	}
	c := &Class{Name: name, Attrs: attrs, byName: make(map[string]Kind, len(attrs))}
	for _, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("oodb: class %s: attribute name must not be empty", name)
		}
		if a.Kind == KindInvalid || a.Kind > KindRefSet {
			return nil, fmt.Errorf("oodb: class %s: attribute %s has invalid kind %d", name, a.Name, a.Kind)
		}
		if _, dup := c.byName[a.Name]; dup {
			return nil, fmt.Errorf("oodb: class %s: duplicate attribute %s", name, a.Name)
		}
		c.byName[a.Name] = a.Kind
	}
	return c, nil
}

// MustClass is NewClass but panics on error; for statically known schemas.
func MustClass(name string, attrs ...AttrDef) *Class {
	c, err := NewClass(name, attrs...)
	if err != nil {
		panic(err)
	}
	return c
}

// MustSchema is like NewSchema but panics on error, for statically
// known-good schemas such as the paper's running example.
func MustSchema(classes ...*Class) *Schema {
	s, err := NewSchema(classes...)
	if err != nil {
		panic(err)
	}
	return s
}

// AttrKind returns the kind of the named attribute and whether it exists.
func (c *Class) AttrKind(name string) (Kind, bool) {
	k, ok := c.byName[name]
	return k, ok
}

// Validate checks that attrs provides exactly the attributes the class
// declares, each with the declared kind.
func (c *Class) Validate(attrs map[string]Value) error {
	for name, v := range attrs {
		k, ok := c.byName[name]
		if !ok {
			return fmt.Errorf("oodb: class %s has no attribute %q", c.Name, name)
		}
		if v.Kind != k {
			return fmt.Errorf("oodb: class %s attribute %q: got %v, want %v", c.Name, name, v.Kind, k)
		}
	}
	for name := range c.byName {
		if _, ok := attrs[name]; !ok {
			return fmt.Errorf("oodb: class %s: attribute %q missing", c.Name, name)
		}
	}
	return nil
}

// Schema is a collection of class definitions.
type Schema struct {
	classes map[string]*Class
}

// NewSchema builds a schema from the given classes, rejecting duplicates.
func NewSchema(classes ...*Class) (*Schema, error) {
	s := &Schema{classes: make(map[string]*Class, len(classes))}
	for _, c := range classes {
		if _, dup := s.classes[c.Name]; dup {
			return nil, fmt.Errorf("oodb: duplicate class %s", c.Name)
		}
		s.classes[c.Name] = c
	}
	return s, nil
}

// Class returns the named class, or nil and false.
func (s *Schema) Class(name string) (*Class, bool) {
	c, ok := s.classes[name]
	return c, ok
}

// Classes returns the class names in lexical order, so every product
// built from them (listings, wire responses) is deterministic.
func (s *Schema) Classes() []string {
	out := make([]string, 0, len(s.classes))
	for name := range s.classes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
