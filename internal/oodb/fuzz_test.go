package oodb

import (
	"bytes"
	"testing"
)

// FuzzDecodeObject: arbitrary bytes must never panic the codec, and any
// record that decodes must re-encode to an equivalent object.
func FuzzDecodeObject(f *testing.F) {
	f.Add(EncodeObject(sampleObject()))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 42, 1, 'C', 0})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		o, err := DecodeObject(data)
		if err != nil {
			return
		}
		// A successfully decoded record must survive a round trip.
		back, err := DecodeObject(EncodeObject(o))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.OID != o.OID || back.Class != o.Class || len(back.Attrs) != len(o.Attrs) {
			t.Fatalf("round trip changed the object: %+v vs %+v", back, o)
		}
	})
}

// FuzzDecodeOID: only 8-byte strings decode, and every decode inverts
// EncodeOID.
func FuzzDecodeOID(f *testing.F) {
	f.Add("12345678")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		oid, err := DecodeOID(s)
		if err != nil {
			if len(s) == 8 {
				t.Fatalf("8-byte string rejected: %q", s)
			}
			return
		}
		if EncodeOID(oid) != s {
			t.Fatalf("EncodeOID(DecodeOID(%q)) != input", s)
		}
	})
}
