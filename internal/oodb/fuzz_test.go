package oodb

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"

	"sigfile/internal/pagestore"
)

// FuzzDecodeObject: arbitrary bytes must never panic the codec, and any
// record that decodes must re-encode to an equivalent object.
func FuzzDecodeObject(f *testing.F) {
	f.Add(EncodeObject(sampleObject()))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 42, 1, 'C', 0})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		o, err := DecodeObject(data)
		if err != nil {
			return
		}
		// A successfully decoded record must survive a round trip.
		back, err := DecodeObject(EncodeObject(o))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.OID != o.OID || back.Class != o.Class || len(back.Attrs) != len(o.Attrs) {
			t.Fatalf("round trip changed the object: %+v vs %+v", back, o)
		}
	})
}

// FuzzObjectStoreOps drives the slotted-page heap with a random
// insert/delete/fetch stream decoded from the fuzz input, checked against
// a map model, then reopens the store so RebuildIndex must reconstruct
// the exact OID map from the pages alone.
func FuzzObjectStoreOps(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 10, 0, 200, 1, 0, 2, 0})                                         // insert, insert, delete, fetch
	f.Add([]byte{0, 255, 0, 255, 0, 255, 1, 1, 0, 0})                                // large records spanning pages
	f.Add(bytes.Repeat([]byte{0, 64}, 40))                                           // many inserts, multiple pages
	f.Add(append(bytes.Repeat([]byte{0, 8}, 10), bytes.Repeat([]byte{1, 0}, 10)...)) // fill then drain
	f.Fuzz(func(t *testing.T, ops []byte) {
		file := pagestore.NewMemFile()
		s, err := NewObjectStore(file)
		if err != nil {
			t.Fatal(err)
		}
		model := make(map[OID]string) // OID -> name payload
		liveSorted := func() []OID {
			oids := make([]OID, 0, len(model))
			for oid := range model {
				oids = append(oids, oid)
			}
			sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
			return oids
		}
		next := OID(1)
		for i := 0; i+1 < len(ops); i += 2 {
			arg := ops[i+1]
			switch ops[i] % 3 {
			case 0: // insert; arg scales the record size to vary page fills
				oid := next
				next++
				name := fmt.Sprintf("obj-%d-%s", oid, strings.Repeat("x", int(arg)*8))
				err := s.Put(&Object{
					OID:   oid,
					Class: "Student",
					Attrs: map[string]Value{"name": String(name)},
				})
				if err != nil {
					t.Fatalf("Put(%d): %v", oid, err)
				}
				model[oid] = name
			case 1: // delete the arg-th live object, if any
				oids := liveSorted()
				if len(oids) == 0 {
					continue
				}
				oid := oids[int(arg)%len(oids)]
				if err := s.Delete(oid); err != nil {
					t.Fatalf("Delete(%d): %v", oid, err)
				}
				delete(model, oid)
			case 2: // fetch the arg-th live object and compare payloads
				oids := liveSorted()
				if len(oids) == 0 {
					if _, err := s.Get(next); err == nil {
						t.Fatalf("Get(%d) on empty store succeeded", next)
					}
					continue
				}
				oid := oids[int(arg)%len(oids)]
				o, err := s.Get(oid)
				if err != nil {
					t.Fatalf("Get(%d): %v", oid, err)
				}
				if v, _ := o.Attr("name"); v.Str != model[oid] {
					t.Fatalf("Get(%d) payload mismatch", oid)
				}
			}
		}

		// Reopen over the same pages: RebuildIndex must reconstruct the
		// exact OID map, and every object must read back intact.
		s2, err := NewObjectStore(file)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if s2.Count() != len(model) {
			t.Fatalf("reopen Count = %d, model has %d", s2.Count(), len(model))
		}
		got := s2.OIDs()
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		want := liveSorted()
		for i, oid := range want {
			if got[i] != oid {
				t.Fatalf("reopen OIDs = %v, want %v", got, want)
			}
			o, err := s2.Get(oid)
			if err != nil {
				t.Fatalf("reopen Get(%d): %v", oid, err)
			}
			if v, _ := o.Attr("name"); v.Str != model[oid] {
				t.Fatalf("reopen Get(%d) payload mismatch", oid)
			}
		}
	})
}

// FuzzDecodeOID: only 8-byte strings decode, and every decode inverts
// EncodeOID.
func FuzzDecodeOID(f *testing.F) {
	f.Add("12345678")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		oid, err := DecodeOID(s)
		if err != nil {
			if len(s) == 8 {
				t.Fatalf("8-byte string rejected: %q", s)
			}
			return
		}
		if EncodeOID(oid) != s {
			t.Fatalf("EncodeOID(DecodeOID(%q)) != input", s)
		}
	})
}
