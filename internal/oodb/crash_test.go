package oodb

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"sigfile/internal/pagestore"
	"sigfile/internal/pagestore/crashtest"
)

func crashObject(oid OID, hobby string) *Object {
	return &Object{
		OID:   oid,
		Class: "Student",
		Attrs: map[string]Value{
			"name":    String(fmt.Sprintf("student-%d", oid)),
			"hobbies": StringSet(hobby, "reading"),
		},
	}
}

// TestCrashConsistencyObjectStoreInsert kills the machine at every point
// of a slotted-page insert (and its commit) and asserts the recovered
// heap either fully contains object 5 or does not know it at all, with
// RebuildIndex reconstructing the exact OID map either way.
func TestCrashConsistencyObjectStoreInsert(t *testing.T) {
	openHeap := func(s *pagestore.DurableStore) (*ObjectStore, error) {
		f, err := s.Open("objects/Student")
		if err != nil {
			return nil, err
		}
		return NewObjectStore(f)
	}
	crashtest.Run(t, crashtest.Scenario{
		Setup: func(s *pagestore.DurableStore) error {
			heap, err := openHeap(s)
			if err != nil {
				return err
			}
			for oid := OID(1); oid <= 4; oid++ {
				if err := heap.Put(crashObject(oid, fmt.Sprintf("hobby-%d", oid))); err != nil {
					return err
				}
			}
			return nil
		},
		Update: func(s *pagestore.DurableStore) error {
			heap, err := openHeap(s)
			if err != nil {
				return err
			}
			if err := heap.Put(crashObject(5, "chess")); err != nil {
				return err
			}
			return s.Commit()
		},
		Fingerprint: func(s *pagestore.DurableStore) (string, error) {
			heap, err := openHeap(s) // runs RebuildIndex over the recovered pages
			if err != nil {
				return "", err
			}
			oids := heap.OIDs()
			sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
			var sb strings.Builder
			for _, oid := range oids {
				o, err := heap.Get(oid)
				if err != nil {
					return "", err
				}
				hobbies, err := o.SetAttr("hobbies")
				if err != nil {
					return "", err
				}
				fmt.Fprintf(&sb, "%d:%v ", oid, hobbies)
			}
			return sb.String(), nil
		},
	})
}

// TestOpenDatabasePersists is the plain (no-crash) durability round trip
// through the public API: insert, checkpoint, reopen from the same
// directory, read back.
func TestOpenDatabasePersists(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDatabase(SampleSchema(), dir)
	if err != nil {
		t.Fatal(err)
	}
	oid, err := db.Insert("Student", map[string]Value{
		"name":    String("Ishikawa"),
		"hobbies": StringSet("running", "go"),
		"courses": RefSet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDatabase(SampleSchema(), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Count("Student"); got != 1 {
		t.Fatalf("Count after reopen = %d, want 1", got)
	}
	o, err := db2.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := o.Attr("name"); v.Str != "Ishikawa" {
		t.Fatalf("name after reopen = %q", v.Str)
	}
	// OID allocation resumes past recovered objects.
	oid2, err := db2.Insert("Student", map[string]Value{
		"name":    String("Kitagawa"),
		"hobbies": StringSet("tennis"),
		"courses": RefSet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if oid2 <= oid {
		t.Fatalf("OID allocation did not resume: %d after %d", oid2, oid)
	}
}
