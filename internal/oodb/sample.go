package oodb

import (
	"fmt"
	"math/rand"

	"sigfile/internal/pagestore"
)

// This file builds the paper's running example: a university database with
// Teacher, Course and Student classes, where Student.courses is a set of
// Course references and Student.hobbies is a set of strings — the two
// indexed set attributes the sample queries Q1/Q2 target.

// SampleSchema returns the three-class schema of the paper's §1.
func SampleSchema() *Schema {
	teacher := MustClass("Teacher",
		AttrDef{Name: "name", Kind: KindString},
	)
	course := MustClass("Course",
		AttrDef{Name: "name", Kind: KindString},
		AttrDef{Name: "category", Kind: KindString},
		AttrDef{Name: "teacher", Kind: KindRef},
	)
	student := MustClass("Student",
		AttrDef{Name: "name", Kind: KindString},
		AttrDef{Name: "courses", Kind: KindRefSet},
		AttrDef{Name: "hobbies", Kind: KindStringSet},
	)
	return MustSchema(teacher, course, student)
}

// SampleConfig controls the size and shape of the generated university
// database.
type SampleConfig struct {
	Students       int // number of Student objects
	Courses        int // number of Course objects
	Teachers       int // number of Teacher objects
	CoursesPerStud int // cardinality of each Student.courses set
	HobbiesPerStud int // cardinality of each Student.hobbies set
	Seed           int64
}

// DefaultSampleConfig is a laptop-friendly instance of the sample
// database.
func DefaultSampleConfig() SampleConfig {
	return SampleConfig{
		Students:       2000,
		Courses:        200,
		Teachers:       40,
		CoursesPerStud: 5,
		HobbiesPerStud: 4,
		Seed:           1,
	}
}

// Hobbies is the hobby vocabulary used by the generator; the paper's
// examples ("Baseball", "Fishing", "Tennis", ...) come first.
var Hobbies = []string{
	"Baseball", "Fishing", "Tennis", "Golf", "Football", "Soccer",
	"Swimming", "Chess", "Reading", "Cooking", "Hiking", "Cycling",
	"Painting", "Photography", "Gardening", "Skiing", "Climbing",
	"Running", "Sailing", "Archery", "Bowling", "Dancing", "Drumming",
	"Juggling", "Karate", "Origami", "Pottery", "Rowing", "Surfing",
	"Yoga",
}

// CourseCategories is the category vocabulary; "DB" matches the paper's
// sample queries.
var CourseCategories = []string{"DB", "OS", "AI", "PL", "NW", "HW", "SE", "TH"}

// NewSampleDatabase creates and populates the university database.
func NewSampleDatabase(cfg SampleConfig, store pagestore.Store) (*Database, error) {
	if cfg.CoursesPerStud > cfg.Courses {
		return nil, fmt.Errorf("oodb: CoursesPerStud %d > Courses %d", cfg.CoursesPerStud, cfg.Courses)
	}
	if cfg.HobbiesPerStud > len(Hobbies) {
		return nil, fmt.Errorf("oodb: HobbiesPerStud %d > %d available hobbies", cfg.HobbiesPerStud, len(Hobbies))
	}
	db, err := NewDatabase(SampleSchema(), store)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	teachers := make([]OID, cfg.Teachers)
	for i := range teachers {
		teachers[i], err = db.Insert("Teacher", map[string]Value{
			"name": String(fmt.Sprintf("Teacher-%03d", i)),
		})
		if err != nil {
			return nil, err
		}
	}
	courses := make([]OID, cfg.Courses)
	for i := range courses {
		courses[i], err = db.Insert("Course", map[string]Value{
			"name":     String(fmt.Sprintf("Course-%03d", i)),
			"category": String(CourseCategories[rng.Intn(len(CourseCategories))]),
			"teacher":  Ref(teachers[rng.Intn(len(teachers))]),
		})
		if err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Students; i++ {
		cs := make([]OID, 0, cfg.CoursesPerStud)
		for _, j := range rng.Perm(cfg.Courses)[:cfg.CoursesPerStud] {
			cs = append(cs, courses[j])
		}
		hs := make([]string, 0, cfg.HobbiesPerStud)
		for _, j := range rng.Perm(len(Hobbies))[:cfg.HobbiesPerStud] {
			hs = append(hs, Hobbies[j])
		}
		if _, err := db.Insert("Student", map[string]Value{
			"name":    String(fmt.Sprintf("Student-%05d", i)),
			"courses": RefSet(cs...),
			"hobbies": StringSet(hs...),
		}); err != nil {
			return nil, err
		}
	}
	return db, nil
}
