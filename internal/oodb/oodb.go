// Package oodb implements the object-oriented database substrate the paper
// assumes around its set access facilities: classes with primitive,
// reference and set-valued attributes; objects identified by OIDs; and a
// paged object store in which fetching one object costs one page access
// (the paper's parameters P_s = P_u = 1).
//
// The substrate is deliberately small but real: objects are serialized
// into slotted 4 KiB pages, OIDs resolve to (page, slot) locations, and
// all I/O flows through pagestore so experiments can account page accesses
// exactly. The sample schema of the paper's introduction (Student, Course,
// Teacher) is provided by NewSampleDatabase.
package oodb

import (
	"fmt"
	"sort"
)

// OID identifies an object. OID 0 is the nil reference; real OIDs are
// allocated from 1 in insertion order.
type OID uint64

// NilOID is the zero, invalid object identifier.
const NilOID OID = 0

// Kind enumerates the attribute types of the data model: the primitive
// types, object references, and the two set constructors the paper's
// queries target.
type Kind uint8

// Attribute kinds.
const (
	KindInvalid Kind = iota
	// KindString is a primitive string attribute (e.g. Student.name).
	KindString
	// KindInt is a 64-bit integer attribute.
	KindInt
	// KindFloat is a float64 attribute.
	KindFloat
	// KindRef is a single object reference.
	KindRef
	// KindStringSet is a set of strings (e.g. Student.hobbies).
	KindStringSet
	// KindRefSet is a set of object references (e.g. Student.courses).
	KindRefSet
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindRef:
		return "ref"
	case KindStringSet:
		return "set<string>"
	case KindRefSet:
		return "set<ref>"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsSet reports whether the kind is one of the set constructors.
func (k Kind) IsSet() bool { return k == KindStringSet || k == KindRefSet }

// Value is a dynamically typed attribute value. Exactly one field is
// meaningful, selected by Kind.
type Value struct {
	Kind   Kind
	Str    string
	Int    int64
	Float  float64
	Ref    OID
	StrSet []string
	RefSet []OID
}

// String constructs a string Value.
func String(s string) Value { return Value{Kind: KindString, Str: s} }

// Int constructs an int Value.
func Int(i int64) Value { return Value{Kind: KindInt, Int: i} }

// Float constructs a float Value.
func Float(f float64) Value { return Value{Kind: KindFloat, Float: f} }

// Ref constructs a reference Value.
func Ref(oid OID) Value { return Value{Kind: KindRef, Ref: oid} }

// StringSet constructs a set-of-strings Value. The slice is not copied.
func StringSet(elems ...string) Value { return Value{Kind: KindStringSet, StrSet: elems} }

// RefSet constructs a set-of-references Value. The slice is not copied.
func RefSet(oids ...OID) Value { return Value{Kind: KindRefSet, RefSet: oids} }

// Equal reports deep equality of two values, with set-valued attributes
// compared as sets (order- and duplicate-insensitive).
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindString:
		return v.Str == o.Str
	case KindInt:
		return v.Int == o.Int
	case KindFloat:
		return v.Float == o.Float
	case KindRef:
		return v.Ref == o.Ref
	case KindStringSet:
		return stringSetEqual(v.StrSet, o.StrSet)
	case KindRefSet:
		return refSetEqual(v.RefSet, o.RefSet)
	default:
		return false
	}
}

func stringSetEqual(a, b []string) bool {
	as := map[string]struct{}{}
	for _, e := range a {
		as[e] = struct{}{}
	}
	bs := map[string]struct{}{}
	for _, e := range b {
		bs[e] = struct{}{}
	}
	if len(as) != len(bs) {
		return false
	}
	for e := range as {
		if _, ok := bs[e]; !ok {
			return false
		}
	}
	return true
}

func refSetEqual(a, b []OID) bool {
	as := map[OID]struct{}{}
	for _, e := range a {
		as[e] = struct{}{}
	}
	bs := map[OID]struct{}{}
	for _, e := range b {
		bs[e] = struct{}{}
	}
	if len(as) != len(bs) {
		return false
	}
	for e := range as {
		if _, ok := bs[e]; !ok {
			return false
		}
	}
	return true
}

// SetElements returns the value of a set-valued attribute as canonical
// element strings: the raw strings for a string set, EncodeOID strings for
// a ref set. It fails for non-set kinds. The result is sorted and
// de-duplicated so signatures and indexes see true set semantics.
func (v Value) SetElements() ([]string, error) {
	var elems []string
	switch v.Kind {
	case KindStringSet:
		elems = append(elems, v.StrSet...)
	case KindRefSet:
		elems = make([]string, 0, len(v.RefSet))
		for _, oid := range v.RefSet {
			elems = append(elems, EncodeOID(oid))
		}
	default:
		return nil, fmt.Errorf("oodb: attribute kind %v is not a set", v.Kind)
	}
	sort.Strings(elems)
	return dedupSorted(elems), nil
}

func dedupSorted(s []string) []string {
	out := s[:0]
	for i, e := range s {
		if i == 0 || e != s[i-1] {
			out = append(out, e)
		}
	}
	return out
}

// EncodeOID renders an OID as a fixed-width 8-byte big-endian string so
// that reference-set elements hash and compare like any other element.
func EncodeOID(oid OID) string {
	var b [8]byte
	for i := 7; i >= 0; i-- {
		b[i] = byte(oid)
		oid >>= 8
	}
	return string(b[:])
}

// DecodeOID inverts EncodeOID.
func DecodeOID(s string) (OID, error) {
	if len(s) != 8 {
		return NilOID, fmt.Errorf("oodb: encoded OID must be 8 bytes, got %d", len(s))
	}
	var oid OID
	for i := 0; i < 8; i++ {
		oid = oid<<8 | OID(s[i])
	}
	return oid, nil
}

// Object is an instance of a class: a bag of named attribute values. The
// OID is assigned by the database on insertion.
type Object struct {
	OID   OID
	Class string
	Attrs map[string]Value
}

// Attr returns the named attribute value, or a zero Value and false.
func (o *Object) Attr(name string) (Value, bool) {
	v, ok := o.Attrs[name]
	return v, ok
}

// SetAttr returns the named set attribute in canonical element-string
// form.
func (o *Object) SetAttr(name string) ([]string, error) {
	v, ok := o.Attrs[name]
	if !ok {
		return nil, fmt.Errorf("oodb: object %d has no attribute %q", o.OID, name)
	}
	return v.SetElements()
}
