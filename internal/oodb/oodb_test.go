package oodb

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"sigfile/internal/pagestore"
)

func TestKindString(t *testing.T) {
	for k := KindString; k <= KindRefSet; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d missing name", k)
		}
	}
	if Kind(200).String() != "Kind(200)" {
		t.Errorf("fallback name wrong: %s", Kind(200))
	}
	if !KindStringSet.IsSet() || !KindRefSet.IsSet() || KindString.IsSet() {
		t.Error("IsSet misclassifies")
	}
}

func TestValueConstructorsAndEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		eq   bool
	}{
		{String("x"), String("x"), true},
		{String("x"), String("y"), false},
		{Int(3), Int(3), true},
		{Int(3), Int(4), false},
		{Float(1.5), Float(1.5), true},
		{Float(1.5), Float(2.5), false},
		{Ref(7), Ref(7), true},
		{Ref(7), Ref(8), false},
		{StringSet("a", "b"), StringSet("b", "a"), true},
		{StringSet("a", "b", "b"), StringSet("b", "a"), true}, // duplicate-insensitive
		{StringSet("a"), StringSet("a", "b"), false},
		{RefSet(1, 2), RefSet(2, 1), true},
		{RefSet(1), RefSet(1, 2), false},
		{String("x"), Int(0), false},
	}
	for i, c := range cases {
		if got := c.a.Equal(c.b); got != c.eq {
			t.Errorf("case %d: Equal = %v, want %v", i, got, c.eq)
		}
	}
}

func TestOIDEncoding(t *testing.T) {
	for _, oid := range []OID{0, 1, 255, 256, 1 << 20, 1<<63 + 12345} {
		s := EncodeOID(oid)
		if len(s) != 8 {
			t.Fatalf("EncodeOID(%d) length %d", oid, len(s))
		}
		back, err := DecodeOID(s)
		if err != nil {
			t.Fatal(err)
		}
		if back != oid {
			t.Fatalf("round trip %d -> %d", oid, back)
		}
	}
	// Big-endian encoding preserves order, so sorted element strings sort
	// like OIDs — relied on by canonical set elements.
	if !(EncodeOID(5) < EncodeOID(300)) {
		t.Fatal("EncodeOID does not preserve order")
	}
	if _, err := DecodeOID("short"); err == nil {
		t.Fatal("DecodeOID accepted bad length")
	}
}

func TestSetElements(t *testing.T) {
	v := StringSet("b", "a", "b")
	elems, err := v.SetElements()
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) != 2 || elems[0] != "a" || elems[1] != "b" {
		t.Fatalf("SetElements = %v", elems)
	}
	rv := RefSet(300, 5, 300)
	relems, err := rv.SetElements()
	if err != nil {
		t.Fatal(err)
	}
	if len(relems) != 2 || relems[0] != EncodeOID(5) || relems[1] != EncodeOID(300) {
		t.Fatalf("ref SetElements wrong: %d elements", len(relems))
	}
	if _, err := String("x").SetElements(); err == nil {
		t.Fatal("SetElements on a string value should fail")
	}
}

func sampleObject() *Object {
	return &Object{
		OID:   42,
		Class: "Student",
		Attrs: map[string]Value{
			"name":    String("Jeff"),
			"gpa":     Float(3.5),
			"year":    Int(-2),
			"advisor": Ref(9),
			"hobbies": StringSet("Baseball", "Fishing"),
			"courses": RefSet(1, 3, 4),
		},
	}
}

func TestEncodeDecodeObject(t *testing.T) {
	o := sampleObject()
	data := EncodeObject(o)
	back, err := DecodeObject(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.OID != o.OID || back.Class != o.Class || len(back.Attrs) != len(o.Attrs) {
		t.Fatalf("header mismatch: %+v", back)
	}
	for name, v := range o.Attrs {
		bv, ok := back.Attrs[name]
		if !ok || !bv.Equal(v) {
			t.Fatalf("attribute %q mismatch: %+v vs %+v", name, bv, v)
		}
	}
}

func TestEncodeCanonical(t *testing.T) {
	a := sampleObject()
	b := sampleObject()
	if string(EncodeObject(a)) != string(EncodeObject(b)) {
		t.Fatal("encoding is not canonical for equal objects")
	}
}

func TestDecodeCorruptData(t *testing.T) {
	data := EncodeObject(sampleObject())
	// Every strict prefix must fail cleanly, never panic.
	for n := 0; n < len(data); n++ {
		if _, err := DecodeObject(data[:n]); err == nil {
			// Prefixes that happen to parse as a smaller valid record are
			// acceptable only if they decode entirely; attribute counts
			// make this impossible here.
			t.Fatalf("prefix of %d bytes decoded without error", n)
		}
	}
	// A bogus kind byte fails.
	bad := append([]byte{}, data...)
	bad[len(bad)-1] ^= 0xff
	if _, err := DecodeObject(bad[:0]); err == nil {
		t.Fatal("empty record decoded")
	}
}

func TestSchemaValidation(t *testing.T) {
	c := MustClass("C",
		AttrDef{Name: "s", Kind: KindString},
		AttrDef{Name: "set", Kind: KindStringSet},
	)
	ok := map[string]Value{"s": String("x"), "set": StringSet("a")}
	if err := c.Validate(ok); err != nil {
		t.Fatalf("valid attrs rejected: %v", err)
	}
	if err := c.Validate(map[string]Value{"s": String("x")}); err == nil {
		t.Fatal("missing attribute accepted")
	}
	if err := c.Validate(map[string]Value{"s": Int(1), "set": StringSet()}); err == nil {
		t.Fatal("wrong kind accepted")
	}
	if err := c.Validate(map[string]Value{"s": String("x"), "set": StringSet(), "extra": Int(1)}); err == nil {
		t.Fatal("extra attribute accepted")
	}

	if _, err := NewClass(""); err == nil {
		t.Fatal("empty class name accepted")
	}
	if _, err := NewClass("C", AttrDef{Name: "", Kind: KindInt}); err == nil {
		t.Fatal("empty attribute name accepted")
	}
	if _, err := NewClass("C", AttrDef{Name: "a", Kind: KindInvalid}); err == nil {
		t.Fatal("invalid kind accepted")
	}
	if _, err := NewClass("C", AttrDef{Name: "a", Kind: KindInt}, AttrDef{Name: "a", Kind: KindInt}); err == nil {
		t.Fatal("duplicate attribute accepted")
	}
	if _, err := NewSchema(c, c); err == nil {
		t.Fatal("duplicate class accepted")
	}
}

func newTestStore(t *testing.T) *ObjectStore {
	t.Helper()
	s, err := NewObjectStore(pagestore.NewMemFile())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestObjectStoreBasics(t *testing.T) {
	s := newTestStore(t)
	o := sampleObject()
	if err := s.Put(o); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 1 || !s.Contains(42) {
		t.Fatal("Put not reflected in Count/Contains")
	}
	back, err := s.Get(42)
	if err != nil {
		t.Fatal(err)
	}
	if back.Attrs["name"].Str != "Jeff" {
		t.Fatalf("Get returned wrong object: %+v", back)
	}
	if err := s.Put(o); err == nil {
		t.Fatal("duplicate OID accepted")
	}
	if err := s.Put(&Object{Class: "X"}); err == nil {
		t.Fatal("nil OID accepted")
	}
	if _, err := s.Get(999); err == nil {
		t.Fatal("Get of missing object succeeded")
	}
	if err := s.Delete(42); err != nil {
		t.Fatal(err)
	}
	if s.Contains(42) || s.Count() != 0 {
		t.Fatal("Delete not reflected")
	}
	if err := s.Delete(42); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestObjectStoreGetCostsOnePageRead(t *testing.T) {
	s := newTestStore(t)
	for i := 1; i <= 100; i++ {
		o := sampleObject()
		o.OID = OID(i)
		if err := s.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	s.Stats().Reset()
	if _, err := s.Get(57); err != nil {
		t.Fatal(err)
	}
	if r := s.Stats().Reads(); r != 1 {
		t.Fatalf("Get cost %d page reads, want exactly 1 (paper's P_s = 1)", r)
	}
}

func TestObjectStoreFillsPages(t *testing.T) {
	s := newTestStore(t)
	// ~130-byte records: a 4 KiB page should hold dozens, so 100 objects
	// must occupy only a few pages.
	for i := 1; i <= 100; i++ {
		o := sampleObject()
		o.OID = OID(i)
		if err := s.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	if s.Pages() > 10 {
		t.Fatalf("100 small objects used %d pages; slotted packing broken", s.Pages())
	}
}

func TestObjectStoreSlotReuse(t *testing.T) {
	s := newTestStore(t)
	o := sampleObject()
	if err := s.Put(o); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(o.OID); err != nil {
		t.Fatal(err)
	}
	o2 := sampleObject()
	o2.OID = 43
	if err := s.Put(o2); err != nil {
		t.Fatal(err)
	}
	if s.Pages() != 1 {
		t.Fatalf("slot reuse failed: %d pages", s.Pages())
	}
	if _, err := s.Get(43); err != nil {
		t.Fatal(err)
	}
}

func TestObjectStoreRejectsOversizedObject(t *testing.T) {
	s := newTestStore(t)
	big := &Object{OID: 1, Class: "C", Attrs: map[string]Value{
		"blob": String(strings.Repeat("x", pagestore.PageSize)),
	}}
	if err := s.Put(big); err == nil {
		t.Fatal("oversized object accepted")
	}
}

func TestObjectStoreRebuildIndex(t *testing.T) {
	file := pagestore.NewMemFile()
	s, err := NewObjectStore(file)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		o := sampleObject()
		o.OID = OID(i)
		if err := s.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	s.Delete(7)
	// A second store over the same file must see the same live set.
	s2, err := NewObjectStore(file)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Count() != 49 || s2.Contains(7) {
		t.Fatalf("rebuild: count=%d contains(7)=%v", s2.Count(), s2.Contains(7))
	}
	if _, err := s2.Get(33); err != nil {
		t.Fatal(err)
	}
}

func TestObjectStoreScan(t *testing.T) {
	s := newTestStore(t)
	want := map[OID]bool{}
	for i := 1; i <= 30; i++ {
		o := sampleObject()
		o.OID = OID(i)
		if err := s.Put(o); err != nil {
			t.Fatal(err)
		}
		want[OID(i)] = true
	}
	s.Delete(11)
	delete(want, 11)
	got := map[OID]bool{}
	if err := s.Scan(func(o *Object) error { got[o.OID] = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("Scan saw %d objects, want %d", len(got), len(want))
	}
	for oid := range want {
		if !got[oid] {
			t.Fatalf("Scan missed %d", oid)
		}
	}
	// Error propagation.
	sentinel := fmt.Errorf("stop")
	if err := s.Scan(func(*Object) error { return sentinel }); err != sentinel {
		t.Fatalf("Scan did not propagate error: %v", err)
	}
}

func TestObjectStorePropagatesIOErrors(t *testing.T) {
	ff := pagestore.NewFaultFile(pagestore.NewMemFile())
	s, err := NewObjectStore(ff)
	if err != nil {
		t.Fatal(err)
	}
	o := sampleObject()
	if err := s.Put(o); err != nil {
		t.Fatal(err)
	}
	ff.FailReadAfter(0)
	if _, err := s.Get(o.OID); err == nil {
		t.Fatal("Get swallowed injected read error")
	}
	ff.FailWriteAfter(0)
	o2 := sampleObject()
	o2.OID = 77
	if err := s.Put(o2); err == nil {
		t.Fatal("Put swallowed injected write error")
	}
}

func TestDatabaseCRUD(t *testing.T) {
	db, err := NewDatabase(SampleSchema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	tid, err := db.Insert("Teacher", map[string]Value{"name": String("Prof")})
	if err != nil {
		t.Fatal(err)
	}
	cid, err := db.Insert("Course", map[string]Value{
		"name": String("DB Theory"), "category": String("DB"), "teacher": Ref(tid),
	})
	if err != nil {
		t.Fatal(err)
	}
	sid, err := db.Insert("Student", map[string]Value{
		"name":    String("Jeff"),
		"courses": RefSet(cid),
		"hobbies": StringSet("Baseball", "Fishing"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if tid == cid || cid == sid {
		t.Fatal("OIDs not unique across classes")
	}

	o, err := db.Get(sid)
	if err != nil {
		t.Fatal(err)
	}
	hobbies, err := o.SetAttr("hobbies")
	if err != nil {
		t.Fatal(err)
	}
	if len(hobbies) != 2 {
		t.Fatalf("hobbies = %v", hobbies)
	}
	if _, err := o.SetAttr("name"); err == nil {
		t.Fatal("SetAttr on primitive succeeded")
	}
	if _, err := o.SetAttr("missing"); err == nil {
		t.Fatal("SetAttr on missing attribute succeeded")
	}

	// Update.
	if err := db.Update(sid, map[string]Value{
		"name":    String("Jeff"),
		"courses": RefSet(cid),
		"hobbies": StringSet("Tennis"),
	}); err != nil {
		t.Fatal(err)
	}
	o, _ = db.Get(sid)
	hobbies, _ = o.SetAttr("hobbies")
	if len(hobbies) != 1 || hobbies[0] != "Tennis" {
		t.Fatalf("update not applied: %v", hobbies)
	}

	// Validation failures.
	if _, err := db.Insert("Nope", nil); err == nil {
		t.Fatal("unknown class accepted")
	}
	if _, err := db.Insert("Teacher", map[string]Value{"name": Int(3)}); err == nil {
		t.Fatal("wrong kind accepted")
	}
	if err := db.Update(sid, map[string]Value{"name": String("x")}); err == nil {
		t.Fatal("incomplete update accepted")
	}
	if err := db.Update(99999, nil); err == nil {
		t.Fatal("update of missing object accepted")
	}

	// Delete.
	if err := db.Delete(sid); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get(sid); err == nil {
		t.Fatal("deleted object still readable")
	}
	if err := db.Delete(sid); err == nil {
		t.Fatal("double delete accepted")
	}
	if db.Count("Student") != 0 || db.Count("Course") != 1 {
		t.Fatalf("counts wrong: students=%d courses=%d", db.Count("Student"), db.Count("Course"))
	}
	if db.Count("Nope") != 0 {
		t.Fatal("unknown class count nonzero")
	}
}

func TestSetSource(t *testing.T) {
	db, err := NewDatabase(SampleSchema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	sid, err := db.Insert("Student", map[string]Value{
		"name":    String("A"),
		"courses": RefSet(),
		"hobbies": StringSet("Chess", "Baseball"),
	})
	if err != nil {
		t.Fatal(err)
	}
	src, err := db.NewSetSource("Student", "hobbies")
	if err != nil {
		t.Fatal(err)
	}
	if src.Class() != "Student" || src.Attr() != "hobbies" {
		t.Fatal("source metadata wrong")
	}
	set, err := src.Set(uint64(sid))
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 || set[0] != "Baseball" || set[1] != "Chess" {
		t.Fatalf("Set = %v", set)
	}
	if _, err := src.Set(424242); err == nil {
		t.Fatal("Set of missing OID succeeded")
	}
	if _, err := db.NewSetSource("Student", "name"); err == nil {
		t.Fatal("non-set attribute accepted")
	}
	if _, err := db.NewSetSource("Student", "zzz"); err == nil {
		t.Fatal("missing attribute accepted")
	}
	if _, err := db.NewSetSource("Nope", "hobbies"); err == nil {
		t.Fatal("missing class accepted")
	}
}

func TestSampleDatabase(t *testing.T) {
	cfg := SampleConfig{Students: 100, Courses: 30, Teachers: 5, CoursesPerStud: 4, HobbiesPerStud: 3, Seed: 7}
	db, err := NewSampleDatabase(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if db.Count("Student") != 100 || db.Count("Course") != 30 || db.Count("Teacher") != 5 {
		t.Fatalf("counts: %d/%d/%d", db.Count("Student"), db.Count("Course"), db.Count("Teacher"))
	}
	// Every student has exactly the configured cardinalities, referencing
	// live courses.
	err = db.Scan("Student", func(o *Object) error {
		courses, err := o.SetAttr("courses")
		if err != nil {
			return err
		}
		if len(courses) != cfg.CoursesPerStud {
			return fmt.Errorf("student %d has %d courses", o.OID, len(courses))
		}
		for _, c := range courses {
			oid, err := DecodeOID(c)
			if err != nil {
				return err
			}
			co, err := db.Get(oid)
			if err != nil {
				return err
			}
			if co.Class != "Course" {
				return fmt.Errorf("courses element references %s", co.Class)
			}
		}
		hobbies, err := o.SetAttr("hobbies")
		if err != nil {
			return err
		}
		if len(hobbies) != cfg.HobbiesPerStud {
			return fmt.Errorf("student %d has %d hobbies", o.OID, len(hobbies))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Config validation.
	if _, err := NewSampleDatabase(SampleConfig{Students: 1, Courses: 2, Teachers: 1, CoursesPerStud: 5, HobbiesPerStud: 1}, nil); err == nil {
		t.Fatal("invalid CoursesPerStud accepted")
	}
	if _, err := NewSampleDatabase(SampleConfig{Students: 1, Courses: 2, Teachers: 1, CoursesPerStud: 1, HobbiesPerStud: 999}, nil); err == nil {
		t.Fatal("invalid HobbiesPerStud accepted")
	}
}

// Property: encode/decode is the identity on randomly generated objects.
func TestPropertyEncodeDecodeIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := &Object{
			OID:   OID(rng.Uint64() | 1),
			Class: fmt.Sprintf("C%d", rng.Intn(10)),
			Attrs: map[string]Value{},
		}
		for i := 0; i < rng.Intn(8); i++ {
			name := fmt.Sprintf("a%d", i)
			switch rng.Intn(6) {
			case 0:
				o.Attrs[name] = String(randWord(rng))
			case 1:
				o.Attrs[name] = Int(rng.Int63() - rng.Int63())
			case 2:
				o.Attrs[name] = Float(rng.NormFloat64())
			case 3:
				o.Attrs[name] = Ref(OID(rng.Uint64()))
			case 4:
				n := rng.Intn(20)
				ss := make([]string, n)
				for j := range ss {
					ss[j] = randWord(rng)
				}
				o.Attrs[name] = StringSet(ss...)
			case 5:
				n := rng.Intn(20)
				rs := make([]OID, n)
				for j := range rs {
					rs[j] = OID(rng.Uint64())
				}
				o.Attrs[name] = RefSet(rs...)
			}
		}
		back, err := DecodeObject(EncodeObject(o))
		if err != nil {
			return false
		}
		if back.OID != o.OID || back.Class != o.Class || len(back.Attrs) != len(o.Attrs) {
			return false
		}
		for name, v := range o.Attrs {
			bv, ok := back.Attrs[name]
			if !ok || bv.Kind != v.Kind {
				return false
			}
			// Sets compare exactly (ordered) at the codec level.
			switch v.Kind {
			case KindStringSet:
				if len(bv.StrSet) != len(v.StrSet) {
					return false
				}
				for i := range v.StrSet {
					if bv.StrSet[i] != v.StrSet[i] {
						return false
					}
				}
			case KindRefSet:
				if len(bv.RefSet) != len(v.RefSet) {
					return false
				}
				for i := range v.RefSet {
					if bv.RefSet[i] != v.RefSet[i] {
						return false
					}
				}
			default:
				if !bv.Equal(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randWord(rng *rand.Rand) string {
	b := make([]byte, rng.Intn(12))
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return string(b)
}

// Property: the object store behaves like a map OID→Object under random
// put/get/delete sequences.
func TestPropertyStoreActsLikeMap(t *testing.T) {
	f := func(seed int64) bool {
		s, err := NewObjectStore(pagestore.NewMemFile())
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		model := map[OID]string{}
		next := OID(1)
		for step := 0; step < 120; step++ {
			switch rng.Intn(3) {
			case 0:
				name := randWord(rng)
				o := &Object{OID: next, Class: "C", Attrs: map[string]Value{"n": String(name)}}
				if err := s.Put(o); err != nil {
					return false
				}
				model[next] = name
				next++
			case 1:
				if len(model) == 0 {
					continue
				}
				oid := anyKey(rng, model)
				got, err := s.Get(oid)
				if err != nil || got.Attrs["n"].Str != model[oid] {
					return false
				}
			case 2:
				if len(model) == 0 {
					continue
				}
				oid := anyKey(rng, model)
				if err := s.Delete(oid); err != nil {
					return false
				}
				delete(model, oid)
			}
		}
		if s.Count() != len(model) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func anyKey(rng *rand.Rand, m map[OID]string) OID {
	keys := make([]OID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	return keys[rng.Intn(len(keys))]
}
