package oodb

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"sigfile/internal/obs"
	"sigfile/internal/pagestore"
)

// Process-wide object-store traffic, exported through the obs registry.
// Gets correspond to the paper's candidate fetches (P_s = 1 each), so
// relating sigfile_oodb_gets_total to the facilities' false-drop counters
// shows how much resolution work the heap absorbs.
var (
	obsPuts    = obs.Default().Counter("sigfile_oodb_puts_total")
	obsGets    = obs.Default().Counter("sigfile_oodb_gets_total")
	obsDeletes = obs.Default().Counter("sigfile_oodb_deletes_total")
)

// ObjectStore is a heap of objects in slotted pages over a pagestore.File.
//
// Page layout (little endian):
//
//	offset 0: nslots  uint16
//	offset 2: freeOff uint16  — first free byte; records grow upward from 4
//	...records...
//	...free space...
//	slot i at PageSize−4·(i+1): {recOff uint16, recLen uint16}
//
// recLen 0 marks a deleted slot (tombstone), matching the paper's
// delete-flag model of updates. Fetching an object costs exactly one page
// read, the paper's P_s = P_u = 1.
//
// An ObjectStore is safe for concurrent use: Get and Scan may run from
// any number of goroutines (each decodes out of its own page buffer),
// while Put, Delete and RebuildIndex take the write lock.
type ObjectStore struct {
	// mu guards loc, lastPage/hasPage and the shared scratch buffer buf;
	// readers decode from per-call buffers and hold it shared.
	mu   sync.RWMutex
	file pagestore.File
	// loc maps every live OID to its location. The paper assumes direct
	// access by OID; the map plays the role of the OID→address table and
	// can be rebuilt from the pages (RebuildIndex).
	loc map[OID]objLoc
	// lastPage is the current fill target for inserts.
	lastPage pagestore.PageID
	hasPage  bool
	buf      []byte // page-sized scratch buffer
}

type objLoc struct {
	page pagestore.PageID
	slot int
}

const (
	pageHeaderSize = 4
	slotSize       = 4
	maxRecordSize  = pagestore.PageSize - pageHeaderSize - slotSize
)

// NewObjectStore creates an object store over file. The file may be empty
// or contain pages previously written by an ObjectStore; existing objects
// are indexed by RebuildIndex.
func NewObjectStore(file pagestore.File) (*ObjectStore, error) {
	s := &ObjectStore{
		file: file,
		loc:  make(map[OID]objLoc),
		buf:  make([]byte, pagestore.PageSize),
	}
	if file.NumPages() > 0 {
		if err := s.RebuildIndex(); err != nil {
			return nil, err
		}
		s.lastPage = pagestore.PageID(file.NumPages() - 1)
		s.hasPage = true
	}
	return s, nil
}

// RebuildIndex scans every page and reconstructs the OID→location map.
func (s *ObjectStore) RebuildIndex() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rebuildIndex()
}

func (s *ObjectStore) rebuildIndex() error {
	s.loc = make(map[OID]objLoc)
	for p := 0; p < s.file.NumPages(); p++ {
		if err := s.file.ReadPage(pagestore.PageID(p), s.buf); err != nil {
			return fmt.Errorf("oodb: rebuild index: %w", err)
		}
		nslots := int(binary.LittleEndian.Uint16(s.buf[0:2]))
		for slot := 0; slot < nslots; slot++ {
			off, length := slotEntry(s.buf, slot)
			if length == 0 {
				continue
			}
			rec := s.buf[off : off+length]
			if len(rec) < 8 {
				return fmt.Errorf("oodb: page %d slot %d: record too short", p, slot)
			}
			oid := OID(binary.BigEndian.Uint64(rec[:8]))
			s.loc[oid] = objLoc{page: pagestore.PageID(p), slot: slot}
		}
	}
	return nil
}

func slotEntry(page []byte, slot int) (off, length int) {
	base := pagestore.PageSize - slotSize*(slot+1)
	return int(binary.LittleEndian.Uint16(page[base : base+2])),
		int(binary.LittleEndian.Uint16(page[base+2 : base+4]))
}

func setSlotEntry(page []byte, slot, off, length int) {
	base := pagestore.PageSize - slotSize*(slot+1)
	binary.LittleEndian.PutUint16(page[base:base+2], uint16(off))
	binary.LittleEndian.PutUint16(page[base+2:base+4], uint16(length))
}

// Count returns the number of live objects.
func (s *ObjectStore) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.loc)
}

// Pages returns the number of pages the store occupies.
func (s *ObjectStore) Pages() int { return s.file.NumPages() }

// Stats exposes the underlying file's page-access counters.
func (s *ObjectStore) Stats() *pagestore.Stats { return s.file.Stats() }

// Contains reports whether the store holds a live object with the OID.
func (s *ObjectStore) Contains(oid OID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.loc[oid]
	return ok
}

// OIDs returns the OIDs of all live objects in ascending order, so
// full scans visit the heap deterministically.
func (s *ObjectStore) OIDs() []OID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]OID, 0, len(s.loc))
	for oid := range s.loc {
		out = append(out, oid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Put stores the encoded object and records its location. The object's
// OID must be nonzero and not already present.
func (s *ObjectStore) Put(o *Object) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	obsPuts.Add(1)
	if o.OID == NilOID {
		return fmt.Errorf("oodb: Put: object has no OID")
	}
	if _, dup := s.loc[o.OID]; dup {
		return fmt.Errorf("oodb: Put: OID %d already stored", o.OID)
	}
	rec := EncodeObject(o)
	if len(rec) > maxRecordSize {
		return fmt.Errorf("oodb: object %d encodes to %d bytes, page capacity is %d",
			o.OID, len(rec), maxRecordSize)
	}

	// Fill the last page; allocate a fresh one when the record won't fit.
	if s.hasPage {
		if err := s.file.ReadPage(s.lastPage, s.buf); err != nil {
			return fmt.Errorf("oodb: Put: %w", err)
		}
		if slot, ok := s.placeRecord(rec); ok {
			if err := s.file.WritePage(s.lastPage, s.buf); err != nil {
				return fmt.Errorf("oodb: Put: %w", err)
			}
			s.loc[o.OID] = objLoc{page: s.lastPage, slot: slot}
			return nil
		}
	}
	id, err := s.file.Allocate()
	if err != nil {
		return fmt.Errorf("oodb: Put: %w", err)
	}
	for i := range s.buf {
		s.buf[i] = 0
	}
	binary.LittleEndian.PutUint16(s.buf[2:4], pageHeaderSize)
	slot, ok := s.placeRecord(rec)
	if !ok {
		return fmt.Errorf("oodb: Put: record does not fit an empty page")
	}
	if err := s.file.WritePage(id, s.buf); err != nil {
		return fmt.Errorf("oodb: Put: %w", err)
	}
	s.lastPage, s.hasPage = id, true
	s.loc[o.OID] = objLoc{page: id, slot: slot}
	return nil
}

// placeRecord tries to add rec to the page in s.buf, returning the slot
// used. It prefers reusing a dead slot's directory entry.
func (s *ObjectStore) placeRecord(rec []byte) (int, bool) {
	nslots := int(binary.LittleEndian.Uint16(s.buf[0:2]))
	freeOff := int(binary.LittleEndian.Uint16(s.buf[2:4]))
	if freeOff == 0 {
		freeOff = pageHeaderSize
	}
	// Reuse a dead slot if one exists (no new directory entry needed).
	slot := -1
	for i := 0; i < nslots; i++ {
		if _, length := slotEntry(s.buf, i); length == 0 {
			slot = i
			break
		}
	}
	needDir := 0
	if slot == -1 {
		needDir = slotSize
	}
	if freeOff+len(rec) > pagestore.PageSize-slotSize*nslots-needDir {
		return 0, false
	}
	if slot == -1 {
		slot = nslots
		nslots++
		binary.LittleEndian.PutUint16(s.buf[0:2], uint16(nslots))
	}
	copy(s.buf[freeOff:], rec)
	setSlotEntry(s.buf, slot, freeOff, len(rec))
	binary.LittleEndian.PutUint16(s.buf[2:4], uint16(freeOff+len(rec)))
	return slot, true
}

// Get fetches and decodes the object with the given OID, costing one page
// read. Safe to call from many goroutines at once: each call reads into
// its own buffer under the shared lock.
func (s *ObjectStore) Get(oid OID) (*Object, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	obsGets.Add(1)
	l, ok := s.loc[oid]
	if !ok {
		return nil, fmt.Errorf("oodb: object %d not found", oid)
	}
	buf := make([]byte, pagestore.PageSize)
	if err := s.file.ReadPage(l.page, buf); err != nil {
		return nil, fmt.Errorf("oodb: Get %d: %w", oid, err)
	}
	off, length := slotEntry(buf, l.slot)
	if length == 0 {
		return nil, fmt.Errorf("oodb: object %d location points at dead slot", oid)
	}
	o, err := DecodeObject(buf[off : off+length])
	if err != nil {
		return nil, fmt.Errorf("oodb: Get %d: %w", oid, err)
	}
	if o.OID != oid {
		return nil, fmt.Errorf("oodb: Get %d: record holds OID %d", oid, o.OID)
	}
	return o, nil
}

// Delete tombstones the object's slot. The space is reclaimed when the
// slot is reused by a later insert to the same page.
func (s *ObjectStore) Delete(oid OID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	obsDeletes.Add(1)
	l, ok := s.loc[oid]
	if !ok {
		return fmt.Errorf("oodb: Delete: object %d not found", oid)
	}
	if err := s.file.ReadPage(l.page, s.buf); err != nil {
		return fmt.Errorf("oodb: Delete %d: %w", oid, err)
	}
	off, _ := slotEntry(s.buf, l.slot)
	setSlotEntry(s.buf, l.slot, off, 0)
	if err := s.file.WritePage(l.page, s.buf); err != nil {
		return fmt.Errorf("oodb: Delete %d: %w", oid, err)
	}
	delete(s.loc, oid)
	return nil
}

// Scan invokes fn for every live object in page order. Scanning reads
// every page once (a full heap scan). The shared lock is held for the
// whole scan, so fn must not call Put, Delete or RebuildIndex.
func (s *ObjectStore) Scan(fn func(*Object) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	buf := make([]byte, pagestore.PageSize)
	for p := 0; p < s.file.NumPages(); p++ {
		if err := s.file.ReadPage(pagestore.PageID(p), buf); err != nil {
			return fmt.Errorf("oodb: Scan: %w", err)
		}
		nslots := int(binary.LittleEndian.Uint16(buf[0:2]))
		for slot := 0; slot < nslots; slot++ {
			off, length := slotEntry(buf, slot)
			if length == 0 {
				continue
			}
			o, err := DecodeObject(buf[off : off+length])
			if err != nil {
				return fmt.Errorf("oodb: Scan page %d slot %d: %w", p, slot, err)
			}
			if err := fn(o); err != nil {
				return err
			}
		}
	}
	return nil
}
