// Package segdata exercises the three segimmut rules against the mock
// pagestore.
package segdata

import "pagestore"

type segment struct {
	file  pagestore.File
	store pagestore.Store
}

// segmentCandidates is a reader entry point; reading is fine.
func (s *segment) segmentCandidates(buf []byte) error {
	return s.readPages(buf)
}

func (s *segment) readPages(buf []byte) error {
	return s.file.ReadPage(0, buf)
}

// liveOIDs reaches helpers that mutate: rule 1 fires in both.
func (s *segment) liveOIDs(buf []byte) error {
	if err := s.repair(buf); err != nil {
		return s.reclaimFromReader()
	}
	return nil
}

func (s *segment) repair(buf []byte) error {
	return s.file.WritePage(0, buf) // want `segment-reader path repair calls WritePage`
}

func (s *segment) reclaimFromReader() error {
	return pagestore.RemoveIfSupported(s.store, "seg-0001") // want `segment-reader path reclaimFromReader calls RemoveIfSupported`
}

// SearchBad reaches maintenance: rule 2.
func (s *segment) SearchBad(buf []byte) error {
	return s.flushNow(buf) // want `maintenance function flushNow is reachable from a search path`
}

// SearchGood only reads.
func (s *segment) SearchGood(buf []byte) error {
	return s.readPages(buf)
}

// Insert may flush; the update path keeps the carve-out.
func (s *segment) Insert(buf []byte) error {
	return s.flushNow(buf)
}

// flushNow writes by design, under the write lock.
func (s *segment) flushNow(buf []byte) error {
	return s.file.WritePage(0, buf)
}

// rebuildSeg writes through a ReadOnly view: rule 3.
func rebuildSeg(store pagestore.Store, buf []byte) error {
	ro := pagestore.ReadOnly(store)
	f, err := ro.Open("seg")
	if err != nil {
		return err
	}
	return f.WritePage(0, buf) // want `write through a ReadOnly store view`
}

// rebuildOK writes through the writable store; fine.
func rebuildOK(store pagestore.Store, buf []byte) error {
	f, err := store.Open("seg")
	if err != nil {
		return err
	}
	return f.WritePage(0, buf)
}

// reopenRO reads through a ReadOnly view; fine.
func reopenRO(store pagestore.Store, buf []byte) error {
	ro := pagestore.ReadOnly(store)
	f, err := ro.Open("seg")
	if err != nil {
		return err
	}
	return f.ReadPage(0, buf)
}
