// Package pagestore mocks the storage surface segimmut matches against:
// File/Store with mutating methods and the ReadOnly view constructor.
package pagestore

type PageID uint64

type File interface {
	ReadPage(id PageID, buf []byte) error
	WritePage(id PageID, buf []byte) error
	Allocate() (PageID, error)
}

type Store interface {
	Open(name string) (File, error)
	Close() error
}

type roStore struct{ inner Store }

// ReadOnly returns a view whose files reject writes.
func ReadOnly(store Store) Store { return roStore{inner: store} }

func (s roStore) Open(name string) (File, error) { return s.inner.Open(name) }
func (s roStore) Close() error                   { return nil }

// RemoveIfSupported is the best-effort removal helper.
func RemoveIfSupported(store Store, name string) error { return nil }
