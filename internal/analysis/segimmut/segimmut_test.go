package segimmut_test

import (
	"testing"

	"sigfile/internal/analysis/segimmut"
	"sigfile/internal/analysis/vettest"
)

func TestSegImmut(t *testing.T) {
	vettest.Run(t, vettest.TestData(), segimmut.Analyzer, "segdata")
}
