// Package segimmut enforces the LSM segment-immutability contract
// (DESIGN.md §13): a sealed segment never changes. Three rules make the
// prose mechanical:
//
//  1. Code reachable (package-locally) from a segment-reader entry
//     point — a method named segmentCandidates or liveOIDs — must not
//     call mutating pagestore methods (WritePage, Allocate, Remove,
//     RemoveIfSupported). Segment readers serve sealed bytes; a write
//     on that path would mutate a segment other readers are sharing.
//
//  2. Maintenance functions (the flush*/compact* carve-out pageacct
//     stops at) must not be reachable from Search*/search* entry
//     points: flushes and compactions belong to the update path, which
//     holds the facility write lock. A search that triggers one would
//     write under the shared read lock.
//
//  3. Within a function, a File opened from a pagestore.ReadOnly store
//     view must not receive WritePage or Allocate. The view already
//     fails those at run time with ErrReadOnly; the analyzer moves the
//     failure to vet time where the flow is locally evident.
package segimmut

import (
	"go/ast"
	"go/types"
	"strings"

	"sigfile/internal/analysis/sigvet"
)

// Analyzer is the segimmut analyzer.
var Analyzer = &sigvet.Analyzer{
	Name: "segimmut",
	Doc: "segment-reader paths must not mutate pagestore state, maintenance must " +
		"not be reachable from searches, and ReadOnly-view files must not be written",
	Run: run,
}

// mutators are the pagestore calls that change stored state.
var mutators = []string{"WritePage", "Allocate", "Remove", "RemoveIfSupported"}

func run(pass *sigvet.Pass) (any, error) {
	if sigvet.PkgPathEndsWith(pass.Pkg, "pagestore") {
		// The storage layer implements the mutators and the ReadOnly
		// view; the rules are for its users.
		return nil, nil
	}
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	checkReaderPaths(pass, decls)
	checkSearchMaintenance(pass, decls)
	for _, fd := range decls {
		checkReadOnlyFlow(pass, fd)
	}
	return nil, nil
}

// localEdges builds the package-local static call graph, including
// calls made inside function literals.
func localEdges(pass *sigvet.Pass, decls map[*types.Func]*ast.FuncDecl) map[*types.Func][]*types.Func {
	edges := make(map[*types.Func][]*types.Func)
	for fn, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := sigvet.CalleeFunc(pass.TypesInfo, call)
			if callee != nil {
				if _, local := decls[callee]; local {
					edges[fn] = append(edges[fn], callee)
				}
			}
			return true
		})
	}
	return edges
}

// checkReaderPaths enforces rule 1: no mutating pagestore calls
// reachable from segmentCandidates/liveOIDs.
func checkReaderPaths(pass *sigvet.Pass, decls map[*types.Func]*ast.FuncDecl) {
	edges := localEdges(pass, decls)
	reachable := make(map[*types.Func]bool)
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if reachable[fn] {
			return
		}
		reachable[fn] = true
		for _, callee := range edges[fn] {
			visit(callee)
		}
	}
	for fn := range decls {
		if fn.Name() == "segmentCandidates" || fn.Name() == "liveOIDs" {
			visit(fn)
		}
	}
	for fn := range reachable {
		fd := decls[fn]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !sigvet.IsMethodCallIn(pass.TypesInfo, call, "pagestore", mutators...) {
				return true
			}
			pass.Reportf(call.Pos(),
				"segment-reader path %s calls %s; sealed segments are immutable, reader entry points must stay read-only",
				fd.Name.Name, sigvet.CalleeFunc(pass.TypesInfo, call).Name())
			return true
		})
	}
}

// checkSearchMaintenance enforces rule 2: walking from search entry
// points (and stopping at maintenance functions, which stay legitimate
// on the update path), any call edge into a maintenance function is a
// report.
func checkSearchMaintenance(pass *sigvet.Pass, decls map[*types.Func]*ast.FuncDecl) {
	edges := localEdges(pass, decls)
	reachable := make(map[*types.Func]bool)
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if reachable[fn] || isMaintenance(fn.Name()) {
			return
		}
		reachable[fn] = true
		for _, callee := range edges[fn] {
			visit(callee)
		}
	}
	for fn := range decls {
		name := fn.Name()
		if strings.HasPrefix(name, "Search") || strings.HasPrefix(name, "search") {
			visit(fn)
		}
	}
	for fn := range reachable {
		fd := decls[fn]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := sigvet.CalleeFunc(pass.TypesInfo, call)
			if callee == nil || !isMaintenance(callee.Name()) {
				return true
			}
			if _, local := decls[callee]; !local {
				return true
			}
			pass.Reportf(call.Pos(),
				"maintenance function %s is reachable from a search path (via %s); "+
					"flush/compact run under the write lock and belong to the update path only",
				callee.Name(), fd.Name.Name)
			return true
		})
	}
}

// isMaintenance mirrors pageacct's carve-out: memtable flushes and
// segment compaction.
func isMaintenance(name string) bool {
	lower := strings.ToLower(name)
	return strings.HasPrefix(lower, "flush") || strings.HasPrefix(lower, "compact")
}

// checkReadOnlyFlow enforces rule 3 with a local, syntactic data-flow
// pass: variables assigned from pagestore.ReadOnly are read-only
// stores; files Opened from them are read-only files; writing one is a
// report.
func checkReadOnlyFlow(pass *sigvet.Pass, fd *ast.FuncDecl) {
	roStores := make(map[types.Object]bool)
	roFiles := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || i >= len(n.Lhs) {
					continue
				}
				lhs, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[lhs]
				if obj == nil {
					obj = pass.TypesInfo.Uses[lhs]
				}
				if obj == nil {
					continue
				}
				if sigvet.IsMethodCallIn(pass.TypesInfo, call, "pagestore", "ReadOnly") {
					roStores[obj] = true
				}
				if fn := sigvet.CalleeFunc(pass.TypesInfo, call); fn != nil && fn.Name() == "Open" {
					if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
						if recv := sigvet.RootIdentObject(pass.TypesInfo, sel.X); recv != nil && roStores[recv] {
							roFiles[obj] = true
						}
					}
				}
			}
		case *ast.CallExpr:
			if !sigvet.IsMethodCallIn(pass.TypesInfo, n, "pagestore", "WritePage", "Allocate") {
				return true
			}
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if recv := sigvet.RootIdentObject(pass.TypesInfo, sel.X); recv != nil && roFiles[recv] {
				pass.Reportf(n.Pos(),
					"write through a ReadOnly store view: %s on a file opened from pagestore.ReadOnly "+
						"always fails with ErrReadOnly", sel.Sel.Name)
			}
		}
		return true
	})
}
