// Package vettest runs sigvet analyzers over testdata packages and
// checks their findings against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the project's own
// dependency-free framework (see internal/analysis/sigvet).
//
// Layout follows analysistest: an analyzer's test calls
//
//	vettest.Run(t, vettest.TestData(), lockcheck.Analyzer, "lockdata")
//
// where testdata/src/lockdata/*.go is a self-contained package.
// Imports inside testdata packages resolve first against sibling
// directories under testdata/src (so tests can mock project packages
// like pagestore or obs by path suffix), then against the real build's
// export data via `go list -export`.
//
// Expectations are trailing comments of the form
//
//	x.count++ // want `missed lock`
//
// where the backquoted text is a regular expression matched against
// findings reported on that line. Multiple `want` patterns on one line
// must each match a distinct finding. Lines with findings but no
// matching want, and wants with no matching finding, fail the test.
package vettest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"sigfile/internal/analysis/sigvet"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		//sigvet:ignore test harness helper with no error path; fails fast before any test runs
		panic(err)
	}
	return dir
}

// Run loads testdata/src/<pkgpath> for each pkgpath, applies the
// analyzer, and checks findings against the // want comments.
func Run(t *testing.T, testdata string, a *sigvet.Analyzer, pkgpaths ...string) {
	t.Helper()
	RunAnalyzers(t, testdata, []*sigvet.Analyzer{a}, pkgpaths...)
}

// RunAnalyzers is the multi-analyzer form of Run: each testdata package
// is loaded once and checked by every analyzer together, so want
// comments see the combined findings — including the framework's own
// directive diagnostics, exactly as `cmd/sigvet` would produce them.
func RunAnalyzers(t *testing.T, testdata string, as []*sigvet.Analyzer, pkgpaths ...string) {
	t.Helper()
	l := newLoader(filepath.Join(testdata, "src"))
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	for _, pkgpath := range pkgpaths {
		pkg, err := l.load(pkgpath)
		if err != nil {
			t.Fatalf("load %s: %v", pkgpath, err)
		}
		findings, err := sigvet.Run([]*sigvet.Package{pkg}, as)
		if err != nil {
			t.Fatalf("run %s on %s: %v", strings.Join(names, ","), pkgpath, err)
		}
		checkWants(t, pkg, findings)
	}
}

// loader resolves testdata packages and their imports.
type loader struct {
	srcDir  string
	fset    *token.FileSet
	cache   map[string]*sigvet.Package
	imp     types.Importer
	exports map[string]string // real-build export data, lazily filled
}

func newLoader(srcDir string) *loader {
	l := &loader{
		srcDir:  srcDir,
		fset:    token.NewFileSet(),
		cache:   make(map[string]*sigvet.Package),
		exports: make(map[string]string),
	}
	l.imp = importer.ForCompiler(l.fset, "gc", l.lookup)
	return l
}

// load parses and type-checks the testdata package at srcDir/pkgpath.
func (l *loader) load(pkgpath string) (*sigvet.Package, error) {
	if pkg, ok := l.cache[pkgpath]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.srcDir, pkgpath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := sigvet.NewInfo()
	conf := types.Config{Importer: importerFunc(func(path string) (*types.Package, error) {
		// Sibling testdata package?
		if _, err := os.Stat(filepath.Join(l.srcDir, path)); err == nil {
			pkg, err := l.load(path)
			if err != nil {
				return nil, err
			}
			return pkg.Pkg, nil
		}
		return l.imp.Import(path)
	})}
	pkg, err := conf.Check(pkgpath, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	out := &sigvet.Package{
		ImportPath: pkgpath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}
	l.cache[pkgpath] = out
	return out, nil
}

// lookup feeds the gc importer with export data for real (non-testdata)
// imports, resolved through `go list -export` on first use.
func (l *loader) lookup(path string) (io.ReadCloser, error) {
	if exp, ok := l.exports[path]; ok {
		return os.Open(exp)
	}
	listed, err := sigvet.GoListExports(".", []string{path})
	if err != nil {
		return nil, err
	}
	for p, exp := range listed {
		l.exports[p] = exp
	}
	exp, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("vettest: no export data for %q", path)
	}
	return os.Open(exp)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// wantRe matches one expectation comment: // want `regexp` [`regexp` ...]
// (analysistest's double-quoted form is accepted too). A line with
// several findings lists one pattern per finding after a single want.
var wantRe = regexp.MustCompile("// want ((?:`[^`]*`|\"[^\"]*\")(?:\\s+(?:`[^`]*`|\"[^\"]*\"))*)")

// patRe splits the pattern list of one want comment.
var patRe = regexp.MustCompile("`[^`]*`|\"[^\"]*\"")

// checkWants verifies findings against the package's want comments.
func checkWants(t *testing.T, pkg *sigvet.Package, findings []sigvet.Finding) {
	t.Helper()
	type want struct {
		re      *regexp.Regexp
		line    int
		file    string
		matched bool
	}
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					for _, quoted := range patRe.FindAllString(m[1], -1) {
						pat := quoted[1 : len(quoted)-1]
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("bad want pattern %q: %v", pat, err)
						}
						pos := pkg.Fset.Position(c.Pos())
						wants = append(wants, &want{re: re, line: pos.Line, file: pos.Filename})
					}
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, fd := range findings {
		covered := false
		for _, w := range wants {
			if !w.matched && w.file == fd.Pos.Filename && w.line == fd.Pos.Line && w.re.MatchString(fd.Message) {
				w.matched = true
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("unexpected finding: %s", fd)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.re)
		}
	}
}
