package vettest_test

import (
	"testing"

	"sigfile/internal/analysis/atomiccheck"
	"sigfile/internal/analysis/detorder"
	"sigfile/internal/analysis/sigvet"
	"sigfile/internal/analysis/vettest"
)

// TestMultiAnalyzer pins the framework's multi-analyzer behavior: two
// analyzers run over one package load and their findings merge into one
// stream checked against the combined want comments.
func TestMultiAnalyzer(t *testing.T) {
	vettest.RunAnalyzers(t, vettest.TestData(),
		[]*sigvet.Analyzer{detorder.Analyzer, atomiccheck.Analyzer}, "multidata")
}
