// Package multidata carries violations of two different analyzers in
// one package, pinning that the framework runs analyzers together over
// a single load and merges their findings.
package multidata

import (
	"sort"
	"sync/atomic"
)

type gauge struct {
	v atomic.Int64
}

func (g *gauge) set(x int64) { g.v.Store(x) }

// clobber trips atomiccheck.
func (g *gauge) clobber() {
	g.v = atomic.Int64{} // want `atomic value reassigned non-atomically`
}

// keys trips detorder.
func keys(m map[string]*gauge) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `appended to in map-iteration order`
	}
	return out
}

// keysSorted trips neither.
func keysSorted(m map[string]*gauge) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// both trips the two analyzers in one function body.
func both(m map[string]*gauge, g *gauge) []string {
	var out []string
	for k := range m {
		g.v = atomic.Int64{} // want `atomic value reassigned non-atomically`
		out = append(out, k) // want `appended to in map-iteration order`
	}
	return out
}
