// Package atomicdata exercises both atomiccheck rules.
package atomicdata

import "sync/atomic"

// counterLegacy mixes legacy atomic calls with one plain access.
type counterLegacy struct {
	n    int64
	name string
}

func newLegacy() *counterLegacy {
	return &counterLegacy{n: 0, name: "x"} // composite-literal init is fine
}

func (c *counterLegacy) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counterLegacy) read() int64 {
	return atomic.LoadInt64(&c.n)
}

func (c *counterLegacy) reset() {
	c.n = 0 // want `accessed with sync/atomic elsewhere`
}

func (c *counterLegacy) label() string {
	return c.name // never touched atomically; fine
}

// counterNew uses the typed API; methods are fine, wholesale
// reassignment is not.
type counterNew struct {
	n atomic.Int64
}

func (c *counterNew) inc() { c.n.Add(1) }

func (c *counterNew) resetGood() { c.n.Store(0) }

func (c *counterNew) resetBad() {
	c.n = atomic.Int64{} // want `atomic value reassigned non-atomically`
}
