package atomiccheck_test

import (
	"testing"

	"sigfile/internal/analysis/atomiccheck"
	"sigfile/internal/analysis/vettest"
)

func TestAtomicCheck(t *testing.T) {
	vettest.Run(t, vettest.TestData(), atomiccheck.Analyzer, "atomicdata")
}
