// Package atomiccheck guards the obs registry and server queue-depth
// counters: a field accessed through sync/atomic anywhere must be
// accessed atomically everywhere. Mixing atomic and plain access on the
// same word is a data race the race detector only catches when the
// schedule cooperates; the analyzer makes it a vet-time fact.
//
// Two rules:
//
//  1. A struct field whose address is passed to a legacy sync/atomic
//     function (atomic.AddInt64(&x.n, 1), ...) must appear nowhere else
//     except in other atomic calls or composite-literal initialization.
//
//  2. A value of an atomic.* type (atomic.Int64, atomic.Bool, ...) must
//     not be reassigned wholesale (x.n = atomic.Int64{}): the store
//     bypasses the type's atomicity; use its Store method.
package atomiccheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"sigfile/internal/analysis/sigvet"
)

// Analyzer is the atomiccheck analyzer.
var Analyzer = &sigvet.Analyzer{
	Name: "atomiccheck",
	Doc: "a field accessed via sync/atomic anywhere must be accessed atomically " +
		"everywhere, and atomic.* values must not be reassigned wholesale",
	Run: run,
}

func run(pass *sigvet.Pass) (any, error) {
	atomicFields := make(map[types.Object]bool)
	sanctioned := make(map[ast.Node]bool)

	// Pass 1: find fields addressed into legacy sync/atomic calls and
	// sanction those references. (Composite-literal initialization is
	// implicitly allowed: field keys are bare identifiers, which the
	// reporting pass does not look at.)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := sigvet.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || unary.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
					atomicFields[v] = true
					sanctioned[sel] = true
				}
			}
			return true
		})
	}

	// Pass 2: report plain accesses to atomic fields and wholesale
	// reassignment of atomic.* values.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sanctioned[n] {
					return true
				}
				v, ok := pass.TypesInfo.Uses[n.Sel].(*types.Var)
				if !ok || !v.IsField() || !atomicFields[v] {
					return true
				}
				pass.Reportf(n.Pos(),
					"field %s is accessed with sync/atomic elsewhere; this plain access races with "+
						"the atomic ones — use the atomic API for every access", v.Name())
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
						continue
					}
					tv, ok := pass.TypesInfo.Types[lhs]
					if !ok || !isAtomicType(tv.Type) {
						continue
					}
					pass.Reportf(lhs.Pos(),
						"atomic value reassigned non-atomically; wholesale assignment bypasses the "+
							"type's atomicity — use its Store method")
				}
			}
			return true
		})
	}
	return nil, nil
}

// isAtomicType reports whether t is a named type of the sync/atomic
// package (atomic.Int32, atomic.Int64, atomic.Uint64, atomic.Bool,
// atomic.Value, ...).
func isAtomicType(t types.Type) bool {
	named := sigvet.NamedOf(t)
	return named != nil && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync/atomic"
}
