// Package obs mocks the real sigfile/internal/obs tracing surface for
// analyzer testdata (matched by path suffix and type/method name).
package obs

import "time"

// Phase names one step of a traced search.
type Phase string

// PhaseIndexScan mirrors the real phase constant.
const PhaseIndexScan Phase = "index-scan"

// Trace records one search's phase decomposition.
type Trace struct{}

// Begin marks the start of a phase.
func (t *Trace) Begin() time.Time { return time.Now() }

// End records a completed phase with its page count.
func (t *Trace) End(ph Phase, started time.Time, pages int64) {}
