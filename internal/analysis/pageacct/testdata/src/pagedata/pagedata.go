// Package pagedata exercises the pageacct analyzer: page accounting on
// search paths, the read-only rule, and trace-span sourcing.
package pagedata

import (
	"obs"
	"pagestore"
)

// SearchStats mirrors the real core.SearchStats shape (matched by type
// name).
type SearchStats struct {
	IndexPages int64
	OIDPages   int64
}

// Facility is a minimal SSF-shaped type.
type Facility struct {
	sig pagestore.File
	oid pagestore.File
}

// Search is a search entry point; everything it calls is on the search
// path.
func (f *Facility) Search(n int) (*SearchStats, error) {
	stats := &SearchStats{}
	tr := &obs.Trace{}
	phase := tr.Begin()
	if err := f.scanAccounted(n, stats); err != nil {
		return nil, err
	}
	tr.End(obs.PhaseIndexScan, phase, stats.IndexPages)
	if err := f.scanUnaccounted(n); err != nil {
		return nil, err
	}
	pages, err := f.countedHelper(n)
	if err != nil {
		return nil, err
	}
	stats.OIDPages = pages
	return stats, nil
}

// scanAccounted counts every page it reads — the scanRange contract.
func (f *Facility) scanAccounted(n int, stats *SearchStats) error {
	buf := make([]byte, pagestore.PageSize)
	for p := 0; p < n; p++ {
		if err := f.sig.ReadPage(pagestore.PageID(p), buf); err != nil {
			return err
		}
		stats.IndexPages++
	}
	return nil
}

// scanUnaccounted reads pages on the search path without counting them.
func (f *Facility) scanUnaccounted(n int) error { // want `search path scanUnaccounted reads pages but never counts them`
	buf := make([]byte, pagestore.PageSize)
	for p := 0; p < n; p++ {
		if err := f.sig.ReadPage(pagestore.PageID(p), buf); err != nil {
			return err
		}
	}
	return nil
}

// countedHelper follows the getMany protocol: count locally, return the
// count for the caller to fold into stats.
func (f *Facility) countedHelper(n int) (int64, error) {
	buf := make([]byte, pagestore.PageSize)
	var oidPages int64
	for p := 0; p < n; p++ {
		if err := f.oid.ReadPage(pagestore.PageID(p), buf); err != nil {
			return 0, err
		}
		oidPages++
	}
	return oidPages, nil
}

// searchMutating writes a page on the search path — a race under the
// shared search lock.
func (f *Facility) searchMutating(buf []byte) error {
	var stats SearchStats
	if err := f.sig.ReadPage(0, buf); err != nil {
		return err
	}
	stats.IndexPages++
	if err := f.sig.WritePage(0, buf); err != nil { // want `search path searchMutating writes or allocates pages`
		return err
	}
	_ = stats
	return nil
}

// searchBadSpan feeds a trace span from a local, not from SearchStats.
func (f *Facility) searchBadSpan(n int64) {
	tr := &obs.Trace{}
	phase := tr.Begin()
	tr.End(obs.PhaseIndexScan, phase, n) // want `trace span page count must be a SearchStats field`
}

// searchThenMaintain is a search entry point that triggers LSM
// maintenance: the reachability sweep must stop at flush*/compact*
// callees, whose page writes are update-path writes made under the
// facility's write lock — not search-path writes.
func (f *Facility) searchThenMaintain(n int) error {
	var stats SearchStats
	buf := make([]byte, pagestore.PageSize)
	if err := f.sig.ReadPage(0, buf); err != nil {
		return err
	}
	stats.IndexPages++
	if err := f.flushMemtable(n); err != nil {
		return err
	}
	return f.compactSegments(n)
}

// flushMemtable seals pages — carved out of the search sweep by name.
func (f *Facility) flushMemtable(n int) error {
	buf := make([]byte, pagestore.PageSize)
	for p := 0; p < n; p++ {
		if err := f.sig.WritePage(pagestore.PageID(p), buf); err != nil {
			return err
		}
	}
	return nil
}

// compactSegments merges pages — also carved out by name; its reads
// need no SearchStats accounting either.
func (f *Facility) compactSegments(n int) error {
	buf := make([]byte, pagestore.PageSize)
	for p := 0; p < n; p++ {
		if err := f.sig.ReadPage(pagestore.PageID(p), buf); err != nil {
			return err
		}
		if err := f.sig.WritePage(pagestore.PageID(p), buf); err != nil {
			return err
		}
	}
	return nil
}

// Rebuild reads and writes pages but is not reachable from any search
// entry point: update paths are exempt from all three rules.
func (f *Facility) Rebuild(n int) error {
	buf := make([]byte, pagestore.PageSize)
	for p := 0; p < n; p++ {
		if err := f.sig.ReadPage(pagestore.PageID(p), buf); err != nil {
			return err
		}
		if err := f.sig.WritePage(pagestore.PageID(p), buf); err != nil {
			return err
		}
	}
	return nil
}
