// Package pageacct enforces the page-accounting invariant of the
// observability layer (PR 3): every page a search touches is counted,
// so the trace spans of a search provably sum to its
// SearchStats.TotalPages() and measured costs stay comparable to the
// paper's analytical retrieval-cost formulas term by term.
//
// Within each analyzed package the analyzer builds the package-local
// call graph and marks every function reachable from a search entry
// point (a function or method whose name begins with Search or search).
// For reachable functions it checks three rules:
//
//  1. A function that reads pages (pagestore ReadPage) must account for
//     them in the same function: an increment of a SearchStats counter
//     field (stats.IndexPages++, stats.OIDPages = n, ...) or of a
//     page-counter variable (pages++, the oidFile.getMany protocol of
//     returning the count to a caller that assigns it into stats).
//
//  2. A search path must not write or allocate pages (pagestore
//     WritePage/Allocate): searches run under the facilities' shared
//     read lock, so a write on that path is both a cost-model violation
//     and a data race in waiting.
//
//  3. A trace span's page count (the third argument of obs.Trace.End)
//     must be a SearchStats field, keeping the spans-sum-to-stats
//     property syntactically evident.
package pageacct

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sigfile/internal/analysis/sigvet"
)

// Analyzer is the pageacct analyzer.
var Analyzer = &sigvet.Analyzer{
	Name: "pageacct",
	Doc: "search paths must count every page they read into SearchStats, " +
		"must not write pages, and must feed trace spans from SearchStats fields",
	Run: run,
}

func run(pass *sigvet.Pass) (any, error) {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}

	reachable := searchReachable(pass, decls)
	for fn := range reachable {
		fd := decls[fn]
		checkFunc(pass, fd)
	}
	return nil, nil
}

// searchReachable returns the functions of this package reachable (via
// static package-local calls, including calls made inside function
// literals) from a search entry point.
func searchReachable(pass *sigvet.Pass, decls map[*types.Func]*ast.FuncDecl) map[*types.Func]bool {
	edges := make(map[*types.Func][]*types.Func)
	for fn, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := sigvet.CalleeFunc(pass.TypesInfo, call)
			if callee != nil {
				if _, local := decls[callee]; local {
					edges[fn] = append(edges[fn], callee)
				}
			}
			return true
		})
	}
	reachable := make(map[*types.Func]bool)
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if reachable[fn] || isMaintenance(fn.Name()) {
			return
		}
		reachable[fn] = true
		for _, callee := range edges[fn] {
			visit(callee)
		}
	}
	for fn := range decls {
		name := fn.Name()
		if strings.HasPrefix(name, "Search") || strings.HasPrefix(name, "search") {
			visit(fn)
		}
	}
	return reachable
}

// isMaintenance reports whether name denotes LSM maintenance machinery —
// memtable flushes and segment compaction. Those functions write pages by
// design (sealing a segment, merging segments) under the facility's write
// lock, so their writes are update-path writes even when a search-named
// caller is what triggers them; the reachability sweep stops at them
// rather than misreading compaction writes as search-path writes.
func isMaintenance(name string) bool {
	lower := strings.ToLower(name)
	return strings.HasPrefix(lower, "flush") || strings.HasPrefix(lower, "compact")
}

// checkFunc applies the three rules to one reachable function.
func checkFunc(pass *sigvet.Pass, fd *ast.FuncDecl) {
	reads := 0
	accounts := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sigvet.IsMethodCallIn(pass.TypesInfo, n, "pagestore", "ReadPage") {
				reads++
			}
			if sigvet.IsMethodCallIn(pass.TypesInfo, n, "pagestore", "WritePage", "Allocate") {
				pass.Reportf(n.Pos(),
					"search path %s writes or allocates pages; searches hold the shared lock and must be read-only",
					fd.Name.Name)
			}
			checkSpanArg(pass, n)
		case *ast.IncDecStmt:
			if isAccounting(pass.TypesInfo, n.X, true) {
				accounts = true
			}
		case *ast.AssignStmt:
			compound := n.Tok == token.ADD_ASSIGN
			for _, lhs := range n.Lhs {
				if isAccounting(pass.TypesInfo, lhs, compound) {
					accounts = true
				}
			}
		}
		return true
	})
	if reads > 0 && !accounts {
		pass.Reportf(fd.Pos(),
			"search path %s reads pages but never counts them into SearchStats or a page counter; "+
				"trace spans would no longer sum to SearchStats", fd.Name.Name)
	}
}

// isAccounting reports whether target is a page-accounting sink: a
// field of a SearchStats struct (any assignment), or — for increments
// and += only — a variable whose name mentions pages (the counter
// returned by helpers like oidFile.getMany).
func isAccounting(info *types.Info, target ast.Expr, counting bool) bool {
	switch e := ast.Unparen(target).(type) {
	case *ast.SelectorExpr:
		obj := info.Uses[e.Sel]
		v, ok := obj.(*types.Var)
		if !ok || !v.IsField() {
			return false
		}
		return fieldOfSearchStats(info, e)
	case *ast.Ident:
		if !counting {
			return false
		}
		v, ok := info.Uses[e].(*types.Var)
		if !ok {
			return false
		}
		if basic, ok := v.Type().Underlying().(*types.Basic); !ok || basic.Info()&types.IsInteger == 0 {
			return false
		}
		return strings.Contains(strings.ToLower(e.Name), "page")
	}
	return false
}

// fieldOfSearchStats reports whether sel selects a field of a named
// struct type called SearchStats (matched by name so the rule works on
// both the real core package and testdata mocks).
func fieldOfSearchStats(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	named := sigvet.NamedOf(s.Recv())
	return named != nil && named.Obj().Name() == "SearchStats"
}

// checkSpanArg enforces rule 3 on obs.Trace.End calls: the page-count
// argument must be a SearchStats field so each span mirrors the stats
// term for its phase.
func checkSpanArg(pass *sigvet.Pass, call *ast.CallExpr) {
	if sigvet.PkgPathEndsWith(pass.Pkg, "obs") {
		return // the obs package implements Trace; the rule is for users.
	}
	fn := sigvet.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "End" || !sigvet.PkgPathEndsWith(fn.Pkg(), "obs") {
		return
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return
	}
	if named := sigvet.NamedOf(recv.Type()); named == nil || named.Obj().Name() != "Trace" {
		return
	}
	if len(call.Args) != 3 {
		return
	}
	pages := ast.Unparen(call.Args[2])
	if sel, ok := pages.(*ast.SelectorExpr); ok && fieldOfSearchStats(pass.TypesInfo, sel) {
		return
	}
	pass.Reportf(pages.Pos(),
		"trace span page count must be a SearchStats field (stats.IndexPages, stats.OIDPages, ...); "+
			"anything else breaks the spans-sum-to-stats invariant")
}
