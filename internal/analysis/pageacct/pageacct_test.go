package pageacct_test

import (
	"testing"

	"sigfile/internal/analysis/pageacct"
	"sigfile/internal/analysis/vettest"
)

func TestPageacct(t *testing.T) {
	vettest.Run(t, vettest.TestData(), pageacct.Analyzer, "pagedata")
}
