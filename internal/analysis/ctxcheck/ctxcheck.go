// Package ctxcheck enforces the context-cancellation invariants of the
// observability layer (PR 3): every search honors ctx at page
// granularity, and context errors stay matchable with
// errors.Is(err, ctx.Err()).
//
// Rule 1 (per-page polling): in a function that takes a
// context.Context, a loop that performs page I/O (a call into the
// pagestore package: ReadPage, WritePage, Allocate) must poll
// cancellation — ctx.Err(), ctx.Done(), or a call that forwards the
// context — inside the loop. This is the scanRange/readSlice/scanFrame
// contract: a scan over an unbounded page file must notice cancellation
// before the next read, not after the whole pass.
//
// Rule 2 (wrap transparency): a context error passed to fmt.Errorf must
// use the %w verb. Formatting ctx.Err() with %v or %s produces an error
// for which errors.Is(err, context.Canceled) is false, breaking every
// caller that distinguishes cancellation from failure (the query
// engine's slow-search log, the parallel layer's joined errors, the
// facilities' state-intact guarantee).
package ctxcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"sigfile/internal/analysis/sigvet"
)

// Analyzer is the ctxcheck analyzer.
var Analyzer = &sigvet.Analyzer{
	Name: "ctxcheck",
	Doc: "page-I/O loops in context-aware functions must poll ctx, and " +
		"context errors must be wrapped with %w so errors.Is(err, ctx.Err()) holds",
	Run: run,
}

// pageIONames are the pagestore entry points whose presence makes a loop
// a page-scan loop.
var pageIONames = []string{"ReadPage", "WritePage", "Allocate"}

func run(pass *sigvet.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkWrap(pass, fd)
			if sigvet.ContextParam(pass.TypesInfo, fd) == nil {
				continue
			}
			checkLoops(pass, fd)
		}
	}
	return nil, nil
}

// checkLoops walks fd's body attributing each page-I/O call to its
// innermost enclosing loop, then reports loops that never poll the
// context. Function literals are walked too: the facilities' shard
// callbacks run synchronously inside the search.
func checkLoops(pass *sigvet.Pass, fd *ast.FuncDecl) {
	type loopInfo struct {
		node   ast.Node // *ast.ForStmt or *ast.RangeStmt
		pos    token.Pos
		hasIO  bool
		polled bool
	}
	var stack []*loopInfo
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			li := &loopInfo{node: n, pos: n.Pos()}
			stack = append(stack, li)
			// Walk children manually so we can pop afterwards.
			body, post := loopParts(n)
			if post != nil {
				ast.Inspect(post, visit)
			}
			ast.Inspect(body, visit)
			stack = stack[:len(stack)-1]
			if li.hasIO && !li.polled {
				pass.Reportf(li.pos,
					"page-I/O loop in context-aware function %s does not poll ctx.Err(); "+
						"cancellation must be honored per page", fd.Name.Name)
			}
			return false
		case *ast.CallExpr:
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				if sigvet.IsMethodCallIn(pass.TypesInfo, n, "pagestore", pageIONames...) {
					top.hasIO = true
				}
				if pollsContext(pass.TypesInfo, n) {
					top.polled = true
				}
			}
			return true
		case *ast.UnaryExpr:
			// <-ctx.Done() outside a select.
			if n.Op == token.ARROW && len(stack) > 0 && isCtxDone(pass.TypesInfo, n.X) {
				stack[len(stack)-1].polled = true
			}
			return true
		}
		return true
	}
	ast.Inspect(fd.Body, visit)
}

// loopParts returns the body and (for a ForStmt) the condition
// expression of a loop, so `for ctx.Err() == nil { ... }` counts as
// polling.
func loopParts(n ast.Node) (body *ast.BlockStmt, cond ast.Node) {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body, n.Cond
	case *ast.RangeStmt:
		return n.Body, nil
	}
	return nil, nil
}

// pollsContext reports whether call observes or forwards a context:
// ctx.Err(), ctx.Done(), or any call taking a context-typed argument
// (delegating per-page polling to the callee).
func pollsContext(info *types.Info, call *ast.CallExpr) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if (sel.Sel.Name == "Err" || sel.Sel.Name == "Done") && isContextExpr(info, sel.X) {
			return true
		}
	}
	for _, arg := range call.Args {
		if isContextExpr(info, arg) {
			return true
		}
	}
	return false
}

func isCtxDone(info *types.Info, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Done" && isContextExpr(info, sel.X)
}

func isContextExpr(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	return ok && sigvet.IsContextType(tv.Type)
}

// checkWrap flags fmt.Errorf calls formatting a context error with a
// verb other than %w.
func checkWrap(pass *sigvet.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		format, ok := sigvet.ErrorfCall(pass.TypesInfo, call)
		if !ok {
			return true
		}
		verbs := sigvet.FormatVerbs(format)
		for i, arg := range call.Args[1:] {
			if !isCtxErrCall(pass.TypesInfo, arg) {
				continue
			}
			if i < len(verbs) && verbs[i] != 'w' {
				pass.Reportf(arg.Pos(),
					"context error formatted with %%%c; use %%w so errors.Is(err, ctx.Err()) holds", verbs[i])
			}
		}
		return true
	})
}

// isCtxErrCall reports whether expr is a direct X.Err() call on a
// context value.
func isCtxErrCall(info *types.Info, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Err" && isContextExpr(info, sel.X)
}
