// Package pagestore mocks the real sigfile/internal/pagestore surface
// for analyzer testdata: the analyzers match page-I/O calls by method
// name plus the package-path suffix "pagestore", so this stand-in
// triggers them exactly like the real package does.
package pagestore

// PageID identifies a page within a File.
type PageID uint32

// PageSize mirrors the real constant.
const PageSize = 4096

// File is the page-file interface the facilities scan.
type File interface {
	ReadPage(id PageID, buf []byte) error
	WritePage(id PageID, buf []byte) error
	Allocate() (PageID, error)
	NumPages() int
}
