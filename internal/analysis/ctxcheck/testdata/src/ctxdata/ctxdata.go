// Package ctxdata exercises the ctxcheck analyzer: per-page
// cancellation polling and %w wrapping of context errors.
package ctxdata

import (
	"context"
	"fmt"

	"pagestore"
)

// ScanPollOK polls ctx.Err() before every page read — the
// scanRange/readSlice/scanFrame contract.
func ScanPollOK(ctx context.Context, f pagestore.File, n int) error {
	buf := make([]byte, pagestore.PageSize)
	for p := 0; p < n; p++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := f.ReadPage(pagestore.PageID(p), buf); err != nil {
			return fmt.Errorf("ctxdata: read page %d: %w", p, err)
		}
	}
	return nil
}

// ScanNoPoll reads pages in a loop without ever observing ctx.
func ScanNoPoll(ctx context.Context, f pagestore.File, n int) error {
	buf := make([]byte, pagestore.PageSize)
	for p := 0; p < n; p++ { // want `page-I/O loop in context-aware function ScanNoPoll does not poll ctx`
		if err := f.ReadPage(pagestore.PageID(p), buf); err != nil {
			return err
		}
	}
	return ctx.Err() // polling after the loop is not per-page
}

// ScanDoneOK selects on ctx.Done() each iteration.
func ScanDoneOK(ctx context.Context, f pagestore.File, n int) error {
	buf := make([]byte, pagestore.PageSize)
	for p := 0; p < n; p++ {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		if err := f.WritePage(pagestore.PageID(p), buf); err != nil {
			return err
		}
	}
	return nil
}

// ScanCondOK polls through the loop condition, like forEachTask's
// worker loop.
func ScanCondOK(ctx context.Context, f pagestore.File, n int) error {
	buf := make([]byte, pagestore.PageSize)
	for p := 0; ctx.Err() == nil && p < n; p++ {
		if err := f.ReadPage(pagestore.PageID(p), buf); err != nil {
			return err
		}
	}
	return ctx.Err()
}

// ScanDelegatesOK forwards ctx into the per-page callee, which owns the
// polling.
func ScanDelegatesOK(ctx context.Context, f pagestore.File, n int) error {
	for p := 0; p < n; p++ {
		if err := readOne(ctx, f, pagestore.PageID(p)); err != nil {
			return err
		}
	}
	return nil
}

func readOne(ctx context.Context, f pagestore.File, id pagestore.PageID) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return f.ReadPage(id, make([]byte, pagestore.PageSize))
}

// RangeNoPoll: range loops are loops too.
func RangeNoPoll(ctx context.Context, f pagestore.File, ids []pagestore.PageID) error {
	buf := make([]byte, pagestore.PageSize)
	for _, id := range ids { // want `page-I/O loop in context-aware function RangeNoPoll does not poll ctx`
		if err := f.ReadPage(id, buf); err != nil {
			return err
		}
	}
	_ = ctx
	return nil
}

// NoCtxNoRule: without a context parameter the per-page rule does not
// apply (update paths are not cancellable by design).
func NoCtxNoRule(f pagestore.File, n int) error {
	buf := make([]byte, pagestore.PageSize)
	for p := 0; p < n; p++ {
		if err := f.ReadPage(pagestore.PageID(p), buf); err != nil {
			return err
		}
	}
	return nil
}

// WrapOK wraps the context error with %w.
func WrapOK(ctx context.Context, task int) error {
	if ctx.Err() != nil {
		return fmt.Errorf("ctxdata: task %d: %w", task, ctx.Err())
	}
	return nil
}

// WrapSevered formats ctx.Err() with %v — errors.Is no longer matches.
func WrapSevered(ctx context.Context, task int) error {
	if ctx.Err() != nil {
		return fmt.Errorf("ctxdata: task %d: %v", task, ctx.Err()) // want `context error formatted with %v`
	}
	return nil
}

// IgnoredScan carries a justified suppression on the loop line.
func IgnoredScan(ctx context.Context, f pagestore.File, n int) error {
	buf := make([]byte, pagestore.PageSize)
	//sigvet:ignore bounded two-page loop, cancellation checked by caller
	for p := 0; p < n; p++ {
		if err := f.ReadPage(pagestore.PageID(p), buf); err != nil {
			return err
		}
	}
	return ctx.Err()
}
