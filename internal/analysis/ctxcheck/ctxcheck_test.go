package ctxcheck_test

import (
	"testing"

	"sigfile/internal/analysis/ctxcheck"
	"sigfile/internal/analysis/vettest"
)

func TestCtxcheck(t *testing.T) {
	vettest.Run(t, vettest.TestData(), ctxcheck.Analyzer, "ctxdata")
}
