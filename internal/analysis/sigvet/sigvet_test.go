package sigvet

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// incdec reports every ++/-- statement — a trivial analyzer that makes
// the directive machinery observable.
var incdec = &Analyzer{
	Name: "incdec",
	Doc:  "reports every IncDecStmt",
	Run: func(pass *Pass) (any, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if s, ok := n.(*ast.IncDecStmt); ok {
					pass.Reportf(s.Pos(), "inc/dec statement")
				}
				return true
			})
		}
		return nil, nil
	},
}

const directiveSrc = `package p

func f() {
	x := 0
	x++ //sigvet:ignore same-line suppression under test
	//sigvet:ignore previous-line suppression under test
	x++
	x++
	x-- //sigvet:ignore
	_ = x
	//sigvet:ignore this directive suppresses nothing
	_ = x
}
`

func loadSrc(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{ImportPath: "p", Fset: fset, Files: []*ast.File{file}, Pkg: pkg, Info: info}
}

// deferstmt reports every defer statement — a second trivial analyzer,
// disjoint from incdec, for cross-analyzer directive tests.
var deferstmt = &Analyzer{
	Name: "deferstmt",
	Doc:  "reports every DeferStmt",
	Run: func(pass *Pass) (any, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if s, ok := n.(*ast.DeferStmt); ok {
					pass.Reportf(s.Pos(), "defer statement")
				}
				return true
			})
		}
		return nil, nil
	},
}

const crossAnalyzerSrc = `package p

func f() func() {
	x := 0
	x++ //sigvet:ignore suppresses incdec only

	defer func() {}()
	return func() { x-- }
}
`

// TestUnusedIgnoreAcrossAnalyzers pins that directives are not scoped
// to an analyzer: an ignore placed for analyzer A (incdec) is reported
// as unused when only analyzer B (deferstmt) runs, because nothing B
// reports lands on the directive's lines. Running A consumes it again.
func TestUnusedIgnoreAcrossAnalyzers(t *testing.T) {
	pkg := loadSrc(t, crossAnalyzerSrc)

	findings, err := Run([]*Package{pkg}, []*Analyzer{deferstmt})
	if err != nil {
		t.Fatal(err)
	}
	var unused, deferred int
	for _, f := range findings {
		switch {
		case strings.Contains(f.Message, "unused //sigvet:ignore"):
			unused++
			if f.Pos.Line != 5 {
				t.Errorf("unused directive reported at line %d, want 5", f.Pos.Line)
			}
		case strings.Contains(f.Message, "defer statement"):
			deferred++
		default:
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if unused != 1 || deferred != 1 {
		t.Errorf("deferstmt-only run: got %d unused-directive and %d defer findings, want 1 and 1: %v",
			unused, deferred, findings)
	}

	// With incdec in the run the directive suppresses x++ and is no
	// longer unused; x-- still reports.
	findings, err = Run([]*Package{pkg}, []*Analyzer{deferstmt, incdec})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if strings.Contains(f.Message, "unused //sigvet:ignore") {
			t.Errorf("directive reported unused even though incdec ran: %s", f)
		}
	}
}

func TestIgnoreDirectives(t *testing.T) {
	findings, err := Run([]*Package{loadSrc(t, directiveSrc)}, []*Analyzer{incdec})
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		line int
		frag string
	}{
		{8, "inc/dec statement"},                 // bare x++ two lines below a directive: not covered
		{9, "inc/dec statement"},                 // a reasonless directive suppresses nothing
		{9, "directive requires a reason"},       // ...and is itself a finding
		{11, "unused //sigvet:ignore directive"}, // directive with a reason but nothing to suppress
	}
	if len(findings) != len(want) {
		t.Fatalf("got %d findings, want %d: %v", len(findings), len(want), findings)
	}
	for i, w := range want {
		if findings[i].Pos.Line != w.line || !strings.Contains(findings[i].Message, w.frag) {
			t.Errorf("finding %d = %s; want line %d containing %q", i, findings[i], w.line, w.frag)
		}
	}
}
