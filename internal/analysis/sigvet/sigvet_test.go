package sigvet

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// incdec reports every ++/-- statement — a trivial analyzer that makes
// the directive machinery observable.
var incdec = &Analyzer{
	Name: "incdec",
	Doc:  "reports every IncDecStmt",
	Run: func(pass *Pass) (any, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if s, ok := n.(*ast.IncDecStmt); ok {
					pass.Reportf(s.Pos(), "inc/dec statement")
				}
				return true
			})
		}
		return nil, nil
	},
}

const directiveSrc = `package p

func f() {
	x := 0
	x++ //sigvet:ignore same-line suppression under test
	//sigvet:ignore previous-line suppression under test
	x++
	x++
	x-- //sigvet:ignore
	_ = x
	//sigvet:ignore this directive suppresses nothing
	_ = x
}
`

func loadSrc(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{ImportPath: "p", Fset: fset, Files: []*ast.File{file}, Pkg: pkg, Info: info}
}

func TestIgnoreDirectives(t *testing.T) {
	findings, err := Run([]*Package{loadSrc(t, directiveSrc)}, []*Analyzer{incdec})
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		line int
		frag string
	}{
		{8, "inc/dec statement"},                 // bare x++ two lines below a directive: not covered
		{9, "inc/dec statement"},                 // a reasonless directive suppresses nothing
		{9, "directive requires a reason"},       // ...and is itself a finding
		{11, "unused //sigvet:ignore directive"}, // directive with a reason but nothing to suppress
	}
	if len(findings) != len(want) {
		t.Fatalf("got %d findings, want %d: %v", len(findings), len(want), findings)
	}
	for i, w := range want {
		if findings[i].Pos.Line != w.line || !strings.Contains(findings[i].Message, w.frag) {
			t.Errorf("finding %d = %s; want line %d containing %q", i, findings[i], w.line, w.frag)
		}
	}
}
