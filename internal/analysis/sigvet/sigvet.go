// Package sigvet is the project's static-analysis framework: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// surface that the repository's custom analyzers (lockcheck, ctxcheck,
// pageacct, errwrap) are written against.
//
// The module deliberately has no third-party dependencies, so instead of
// x/tools' loader the framework type-checks packages with the standard
// library alone: source files are parsed with go/parser and checked with
// go/types against compiler export data obtained from `go list -export`
// (see load.go). The analyzer API mirrors x/tools closely enough that the
// analyzers would port to a *analysis.Analyzer with mechanical changes
// only.
//
// Every analyzer honors the uniform suppression directive
//
//	//sigvet:ignore <reason>
//
// placed on (or on the line directly above) the offending line. The
// reason is mandatory: a bare //sigvet:ignore is itself reported. The
// directive is handled here in Pass.Reportf, so no analyzer needs its
// own filtering.
package sigvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Analyzer describes one invariant checker: a name, what it enforces,
// and the function that checks a single package.
type Analyzer struct {
	// Name identifies the analyzer in findings and command-line flags.
	Name string
	// Doc is the invariant the analyzer encodes, shown by `sigvet -help`.
	Doc string
	// Run analyzes one package through pass and reports findings with
	// pass.Reportf. The returned value is unused (kept for parity with
	// go/analysis); errors abort the whole run.
	Run func(pass *Pass) (any, error)
}

// Pass carries one package's syntax and type information to an analyzer,
// mirroring analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	findings *[]Finding
	ignores  map[string]map[int]*ignoreDirective // file -> line -> directive
}

// Finding is one reported diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Reportf records a finding at pos unless a //sigvet:ignore directive
// covers that line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if dir := p.ignoreAt(position); dir != nil {
		dir.used = true
		return
	}
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreAt returns the directive covering position, if any. A directive
// covers its own line (trailing-comment form) and the line below it
// (standalone-comment form).
func (p *Pass) ignoreAt(pos token.Position) *ignoreDirective {
	lines := p.ignores[pos.Filename]
	if d := lines[pos.Line]; d != nil {
		return d
	}
	return lines[pos.Line-1]
}

// ignoreDirective is one parsed //sigvet:ignore comment.
type ignoreDirective struct {
	pos    token.Position
	reason string
	used   bool
}

const ignorePrefix = "//sigvet:ignore"

// buildIgnoreIndex scans the files' comments for //sigvet:ignore
// directives. Directives with an empty reason are reported immediately
// (into findings, under the analyzer name "sigvet") — suppressions must
// say why.
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File, findings *[]Finding) map[string]map[int]*ignoreDirective {
	idx := make(map[string]map[int]*ignoreDirective)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				pos := fset.Position(c.Pos())
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					// e.g. //sigvet:ignoreXYZ — not ours.
					continue
				}
				reason := strings.TrimSpace(rest)
				if reason == "" {
					*findings = append(*findings, Finding{
						Analyzer: "sigvet",
						Pos:      pos,
						Message:  "//sigvet:ignore directive requires a reason",
					})
					continue
				}
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]*ignoreDirective)
					idx[pos.Filename] = byLine
				}
				byLine[pos.Line] = &ignoreDirective{pos: pos, reason: reason}
			}
		}
	}
	return idx
}

// Run applies every analyzer to every package and returns the combined
// findings sorted by position. Unused //sigvet:ignore directives are
// themselves findings: a suppression that no longer suppresses anything
// is stale and must be deleted.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	findings, _, err := RunStats(pkgs, analyzers)
	return findings, err
}

// Stat summarizes one analyzer's work across a RunStats call: how many
// findings it reported and how long it ran, totalled over all packages.
// The directive machinery (reasonless and unused //sigvet:ignore) is
// accounted under the pseudo-analyzer name "sigvet".
type Stat struct {
	Name     string
	Findings int
	Duration time.Duration
}

// RunStats is Run plus a per-analyzer summary, in analyzer order with a
// trailing "sigvet" row for the directive checks. CI uses it for
// per-analyzer pass/fail and timing output.
func RunStats(pkgs []*Package, analyzers []*Analyzer) ([]Finding, []Stat, error) {
	var findings []Finding
	durations := make(map[string]time.Duration, len(analyzers)+1)
	for _, pkg := range pkgs {
		start := time.Now()
		ignores := buildIgnoreIndex(pkg.Fset, pkg.Files, &findings)
		durations["sigvet"] += time.Since(start)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.Info,
				findings:  &findings,
				ignores:   ignores,
			}
			start = time.Now()
			_, err := a.Run(pass)
			durations[a.Name] += time.Since(start)
			if err != nil {
				return nil, nil, fmt.Errorf("sigvet: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
		start = time.Now()
		for _, byLine := range ignores {
			for _, d := range byLine {
				if !d.used {
					findings = append(findings, Finding{
						Analyzer: "sigvet",
						Pos:      d.pos,
						Message:  fmt.Sprintf("unused //sigvet:ignore directive (reason: %s)", d.reason),
					})
				}
			}
		}
		durations["sigvet"] += time.Since(start)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	counts := make(map[string]int, len(analyzers)+1)
	for _, f := range findings {
		counts[f.Analyzer]++
	}
	stats := make([]Stat, 0, len(analyzers)+1)
	for _, a := range analyzers {
		stats = append(stats, Stat{Name: a.Name, Findings: counts[a.Name], Duration: durations[a.Name]})
	}
	stats = append(stats, Stat{Name: "sigvet", Findings: counts["sigvet"], Duration: durations["sigvet"]})
	return findings, stats, nil
}
