package sigvet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// goList runs `go list -export -deps -json` in dir for the given
// patterns and returns the decoded package stream. -export makes the go
// tool write compiler export data for every listed package into the
// build cache; the type-checker imports dependencies from those files,
// so the loader needs no network and no source for anything but the
// target packages themselves.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("sigvet: go list: %w\n%s", err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("sigvet: decode go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load lists the packages matching patterns (relative to dir), parses
// the target packages' sources and type-checks them against export data.
// Test files are not analyzed: the invariants sigvet enforces live in
// library code, and analyzing _test.go files would require per-package
// test binaries' export data.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("sigvet: no export data for %q", path)
		}
		return os.Open(exp)
	})

	var out []*Package
	for _, p := range listed {
		if p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("sigvet: parse %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("sigvet: type-check %s: %w", p.ImportPath, err)
		}
		out = append(out, &Package{
			ImportPath: p.ImportPath,
			Dir:        p.Dir,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			Info:       info,
		})
	}
	return out, nil
}

// GoListExports resolves patterns (and their transitive dependencies)
// to compiler export-data files, returning importpath -> file. The
// vettest loader uses it to type-check testdata imports of real
// packages without a source loader.
func GoListExports(dir string, patterns []string) (map[string]string, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			out[p.ImportPath] = p.Export
		}
	}
	return out, nil
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
