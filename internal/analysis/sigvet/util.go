package sigvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// This file holds the small type/AST queries shared by the analyzers.
// They are deliberately name-and-path based where the real types are
// involved (e.g. "a method named ReadPage declared in a package whose
// path ends in /pagestore"): the analyzers must work both on the real
// tree and on the self-contained mock packages under each analyzer's
// testdata directory, exactly like go/analysis testdata does.

// CalleeFunc resolves the statically-called function or method of call,
// or nil for dynamic calls (function values, type conversions).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fn].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fn.Sel].(*types.Func)
		return f
	}
	return nil
}

// PkgPathEndsWith reports whether pkg's import path is name or ends in
// "/name".
func PkgPathEndsWith(pkg *types.Package, name string) bool {
	if pkg == nil {
		return false
	}
	return pkg.Path() == name || strings.HasSuffix(pkg.Path(), "/"+name)
}

// IsMethodCallIn reports whether call statically invokes a function or
// method with one of the given names declared in a package whose path
// ends with pkgName.
func IsMethodCallIn(info *types.Info, call *ast.CallExpr, pkgName string, names ...string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || !PkgPathEndsWith(fn.Pkg(), pkgName) {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// ContextParam returns the object of the first context.Context parameter
// of the function declaration, or nil.
func ContextParam(info *types.Info, decl *ast.FuncDecl) types.Object {
	if decl.Type.Params == nil {
		return nil
	}
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil && IsContextType(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

// NamedReceiver returns the named type of decl's receiver (through one
// pointer), or nil if decl is not a method.
func NamedReceiver(info *types.Info, decl *ast.FuncDecl) *types.Named {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return nil
	}
	tv, ok := info.Types[decl.Recv.List[0].Type]
	if !ok {
		return nil
	}
	return NamedOf(tv.Type)
}

// NamedOf returns t as a named type, looking through one pointer.
func NamedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// ReceiverObject returns the receiver variable of decl, or nil if the
// receiver is unnamed.
func ReceiverObject(info *types.Info, decl *ast.FuncDecl) types.Object {
	if decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return nil
	}
	return info.Defs[decl.Recv.List[0].Names[0]]
}

// RootIdentObject resolves the object of the identifier at the root of a
// selector chain (`x` in x.a.b.c), or nil.
func RootIdentObject(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return info.Uses[e]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// FormatVerbs returns the verb letter consumed by each successive
// argument of a Printf-style format string: FormatVerbs("%d: %w") is
// ['d','w']. %% consumes nothing; width/precision stars consume an
// argument and are recorded as '*'. The errwrap and ctxcheck analyzers
// use it to pair fmt.Errorf arguments with their verbs.
func FormatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
	verb:
		for ; i < len(format); i++ {
			c := format[i]
			switch {
			case c == '%':
				break verb
			case c == '*':
				verbs = append(verbs, '*')
			case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
				verbs = append(verbs, c)
				break verb
			}
		}
	}
	return verbs
}

// ErrorfCall reports whether call is fmt.Errorf with a constant format
// string, returning the unquoted format and true.
func ErrorfCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Name() != "Errorf" || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return "", false
	}
	if len(call.Args) < 2 {
		return "", false
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return format, true
}

// IsMutexType reports whether t is sync.Mutex or sync.RWMutex.
func IsMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
