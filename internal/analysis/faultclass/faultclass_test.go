package faultclass_test

import (
	"testing"

	"sigfile/internal/analysis/faultclass"
	"sigfile/internal/analysis/vettest"
)

func TestFaultClass(t *testing.T) {
	vettest.Run(t, vettest.TestData(), faultclass.Analyzer,
		"faultdata", "pagestore", "bad/pagestore")
}
