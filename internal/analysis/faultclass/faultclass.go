// Package faultclass enforces the fault-classification discipline of
// the resilience layer (DESIGN.md §12): Classify is the single decision
// procedure that sorts a storage error into transient / terminal /
// corrupt, and every layer that reacts to an error — the retry loops,
// the per-facility health ladder — must consult it rather than invent
// its own verdict. Three rules make that mechanical:
//
//  1. A retry loop (a for statement that backs off — time.Sleep,
//     time.After, time.NewTimer, or a pluggable Sleep hook — and exits
//     or continues on an error condition) must call pagestore.Classify
//     or pagestore.Retryable inside the loop. A loop retrying on a bare
//     err != nil would retry terminal faults and, worse, context
//     cancellations.
//
//  2. Context errors must never be retried: passing ctx.Err(),
//     context.Canceled, or context.DeadlineExceeded into
//     pagestore.MarkTransient manufactures a transient verdict for an
//     error Classify deliberately maps to ClassNone.
//
//  3. In the pagestore package itself, every exported Err* sentinel
//     must appear in Classify's table. A sentinel absent from the table
//     silently classifies as ClassNone, so the retry layer would not
//     retry it and the health ladder would not degrade over it — almost
//     never what the author of a new sentinel intended, and if it is,
//     the table must say so explicitly.
//
//  4. A function that moves the health ladder (calls escalateTo) must
//     classify the error that triggered the transition.
package faultclass

import (
	"go/ast"
	"go/types"
	"strings"

	"sigfile/internal/analysis/sigvet"
)

// Analyzer is the faultclass analyzer.
var Analyzer = &sigvet.Analyzer{
	Name: "faultclass",
	Doc: "errors feeding retry decisions or health-ladder transitions must pass " +
		"through pagestore.Classify; context errors are never retried; every " +
		"pagestore Err* sentinel has a Classify table entry",
	Run: run,
}

func run(pass *sigvet.Pass) (any, error) {
	checkSentinelTable(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRetryLoops(pass, fd)
			checkContextMarks(pass, fd)
			checkEscalations(pass, fd)
		}
	}
	return nil, nil
}

// checkSentinelTable enforces rule 3: inside a pagestore package that
// defines Classify, every exported package-level Err* sentinel of error
// type must be referenced by Classify's body.
func checkSentinelTable(pass *sigvet.Pass) {
	if !sigvet.PkgPathEndsWith(pass.Pkg, "pagestore") {
		return
	}
	var classify *ast.FuncDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == "Classify" && fd.Body != nil {
				classify = fd
			}
		}
	}
	if classify == nil {
		return
	}
	referenced := make(map[types.Object]bool)
	ast.Inspect(classify.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				referenced[obj] = true
			}
		}
		return true
	})
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "Err") {
			continue
		}
		v, ok := scope.Lookup(name).(*types.Var)
		if !ok || !isErrorType(v.Type()) || referenced[v] {
			continue
		}
		pass.Reportf(v.Pos(),
			"sentinel %s has no Classify table entry; every pagestore Err* sentinel must be "+
				"classified (even as ClassNone, explicitly) so retry and health layers agree on its class",
			name)
	}
}

// isErrorType reports whether t implements the error interface.
func isErrorType(t types.Type) bool {
	return types.Implements(t, types.Universe.Lookup("error").Type().Underlying().(*types.Interface))
}

// checkRetryLoops enforces rule 1 on every for loop of fd.
func checkRetryLoops(pass *sigvet.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		if !hasBackoff(pass, loop.Body) || !hasErrorExit(pass, loop.Body) {
			return true
		}
		if classifiesError(pass, loop.Body) {
			return true
		}
		pass.Reportf(loop.Pos(),
			"retry loop decides on an error it never classifies; gate retries with "+
				"pagestore.Classify/Retryable so terminal and context errors are not retried")
		return true
	})
}

// inspectShallow walks body without descending into nested loops or
// function literals, so each candidate retry loop is judged on its own
// level.
func inspectShallow(body *ast.BlockStmt, f func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false
		}
		return f(n)
	})
}

// hasBackoff reports whether the loop body waits between iterations: a
// call to time.Sleep/After/NewTimer, or a dynamic call through a
// func-typed Sleep hook (the RetryPolicy.Sleep test seam).
func hasBackoff(pass *sigvet.Pass, body *ast.BlockStmt) bool {
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := sigvet.CalleeFunc(pass.TypesInfo, call); fn != nil {
			if fn.Pkg() != nil && fn.Pkg().Path() == "time" {
				switch fn.Name() {
				case "Sleep", "After", "NewTimer":
					found = true
				}
			}
			return true
		}
		switch f := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if f.Name == "Sleep" {
				found = true
			}
		case *ast.SelectorExpr:
			if f.Sel.Name == "Sleep" {
				found = true
			}
		}
		return true
	})
	return found
}

// hasErrorExit reports whether the loop body branches (return, break,
// continue) on a condition that mentions an error-typed value — the
// shape of a retry decision.
func hasErrorExit(pass *sigvet.Pass, body *ast.BlockStmt) bool {
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !mentionsError(pass, ifs.Cond) {
			return true
		}
		if branches(ifs.Body) {
			found = true
		}
		if block, ok := ifs.Else.(*ast.BlockStmt); ok && branches(block) {
			found = true
		}
		return true
	})
	return found
}

// mentionsError reports whether cond references a value of error type.
func mentionsError(pass *sigvet.Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			if _, isVar := obj.(*types.Var); isVar && isErrorType(obj.Type()) {
				found = true
			}
		}
		return true
	})
	return found
}

// branches reports whether body contains a return, break, or continue.
func branches(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			found = true
		}
		return true
	})
	return found
}

// classifiesError reports whether the loop body consults a sanctioned
// decision procedure: pagestore.Classify/Retryable, or the wire-layer
// classifier api.CodeOf (which handles context errors the same way).
func classifiesError(pass *sigvet.Pass, body *ast.BlockStmt) bool {
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sigvet.IsMethodCallIn(pass.TypesInfo, call, "pagestore", "Classify", "Retryable") ||
				sigvet.IsMethodCallIn(pass.TypesInfo, call, "v1", "CodeOf") ||
				sigvet.IsMethodCallIn(pass.TypesInfo, call, "api", "CodeOf") {
				found = true
			}
		}
		return true
	})
	return found
}

// checkContextMarks enforces rule 2: MarkTransient over a context error.
func checkContextMarks(pass *sigvet.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !sigvet.IsMethodCallIn(pass.TypesInfo, call, "pagestore", "MarkTransient") {
			return true
		}
		for _, arg := range call.Args {
			if mentionsContextError(pass, arg) {
				pass.Reportf(call.Pos(),
					"context errors must never be retried: MarkTransient on a context error "+
						"defeats Classify's ClassNone verdict for cancellation")
			}
		}
		return true
	})
}

// mentionsContextError reports whether expr references context.Canceled,
// context.DeadlineExceeded, or a ctx.Err() call.
func mentionsContextError(pass *sigvet.Pass, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[n]
			if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" &&
				(obj.Name() == "Canceled" || obj.Name() == "DeadlineExceeded") {
				found = true
			}
		case *ast.CallExpr:
			fn := sigvet.CalleeFunc(pass.TypesInfo, n)
			if fn != nil && fn.Name() == "Err" {
				if recv := fn.Type().(*types.Signature).Recv(); recv != nil && sigvet.IsContextType(recv.Type()) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// checkEscalations enforces rule 4: a function that calls escalateTo
// (other than escalateTo itself) must classify in the same body.
func checkEscalations(pass *sigvet.Pass, fd *ast.FuncDecl) {
	if fd.Name.Name == "escalateTo" {
		return
	}
	var escalations []ast.Node
	classifies := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := sigvet.CalleeFunc(pass.TypesInfo, call); fn != nil && fn.Name() == "escalateTo" {
			escalations = append(escalations, call)
		}
		if sigvet.IsMethodCallIn(pass.TypesInfo, call, "pagestore", "Classify", "Retryable") {
			classifies = true
		}
		return true
	})
	if classifies {
		return
	}
	for _, call := range escalations {
		pass.Reportf(call.Pos(),
			"health transition without classification: %s escalates the health ladder but "+
				"never calls pagestore.Classify on the triggering error", fd.Name.Name)
	}
}
