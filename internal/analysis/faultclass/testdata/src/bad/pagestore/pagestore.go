// Package pagestore (under bad/) has a Classify table that misses one
// sentinel — the positive case for the sentinel-coverage rule.
package pagestore

import "errors"

var ErrTransient = errors.New("transient")

var ErrStuck = errors.New("stuck") // want `sentinel ErrStuck has no Classify table entry`

// ErrCode is exported and Err-prefixed but not an error; no finding.
var ErrCode = 3

func Classify(err error) int {
	if errors.Is(err, ErrTransient) {
		return 1
	}
	return 0
}
