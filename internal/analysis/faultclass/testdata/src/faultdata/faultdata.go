// Package faultdata exercises the faultclass retry-loop, context, and
// escalation rules against the mock pagestore.
package faultdata

import (
	"context"
	"time"

	"api"
	"pagestore"
)

// retryGood classifies before deciding: no finding.
func retryGood(op func() error) error {
	var err error
	for attempt := 0; attempt < 4; attempt++ {
		err = op()
		if err == nil || !pagestore.Retryable(err) {
			return err
		}
		time.Sleep(time.Millisecond)
	}
	return err
}

// retryBad retries on a bare nil check: terminal and context errors
// would be retried too.
func retryBad(op func() error) error {
	var err error
	for attempt := 0; attempt < 4; attempt++ { // want `retry loop decides on an error it never classifies`
		err = op()
		if err == nil {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return err
}

// policy carries the pluggable backoff hook retry loops use in tests.
type policy struct {
	Sleep func(time.Duration)
}

// retryDynamic backs off through the hook; still a retry loop.
func retryDynamic(p policy, op func() error) error {
	for { // want `retry loop decides on an error it never classifies`
		err := op()
		if err == nil {
			return nil
		}
		p.Sleep(time.Millisecond)
	}
}

// retryWire classifies through the wire-layer classifier, the way a
// network client must (it never sees pagestore errors). No finding.
func retryWire(op func() error) error {
	for {
		err := op()
		if err == nil {
			return nil
		}
		if api.CodeOf(err) != api.CodeOverloaded {
			return err
		}
		time.Sleep(time.Millisecond)
	}
}

// pollLoop sleeps but makes no error decision: a periodic loop, not a
// retry loop. No finding.
func pollLoop(tick func()) {
	for {
		tick()
		time.Sleep(time.Second)
	}
}

// decideNoBackoff decides on errors but never waits: a plain error
// return, not a retry loop. No finding.
func decideNoBackoff(op func() error) error {
	for i := 0; i < 3; i++ {
		if err := op(); err != nil {
			return err
		}
	}
	return nil
}

// markCtx manufactures a transient verdict for a cancellation.
func markCtx(ctx context.Context) error {
	return pagestore.MarkTransient(ctx.Err()) // want `context errors must never be retried`
}

// markCanceled does the same with the sentinel itself.
func markCanceled() error {
	return pagestore.MarkTransient(context.Canceled) // want `context errors must never be retried`
}

// markReal wraps a storage error: the intended use. No finding.
func markReal(err error) error {
	return pagestore.MarkTransient(err)
}

// tracker mirrors the core health ladder.
type tracker struct {
	state int
}

func (t *tracker) escalateTo(s int) { t.state = s }

// noteGood classifies before escalating: no finding.
func (t *tracker) noteGood(err error) {
	if pagestore.Classify(err) == pagestore.ClassTerminal {
		t.escalateTo(2)
	}
}

// noteBad escalates on a bare nil check.
func (t *tracker) noteBad(err error) {
	if err != nil {
		t.escalateTo(2) // want `health transition without classification`
	}
}
