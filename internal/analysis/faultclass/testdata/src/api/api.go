// Package api mocks the wire-layer error classifier (api/v1.CodeOf)
// for faultclass tests: client-side retry loops classify through it
// rather than through pagestore.Classify.
package api

// Code is a wire error code.
type Code string

// CodeOverloaded marks a retryable server-side overload.
const CodeOverloaded Code = "overloaded"

// CodeOf maps an error to its wire code.
func CodeOf(err error) Code {
	if err == nil {
		return ""
	}
	return "internal"
}
