// Package pagestore mocks the project's pagestore error-classification
// surface for faultclass testdata. Its Classify table is complete, so
// analyzing this package directly yields no findings (the negative case
// for the sentinel-coverage rule).
package pagestore

import (
	"context"
	"errors"
	"fmt"
)

type ErrorClass int

const (
	ClassNone ErrorClass = iota
	ClassTransient
	ClassTerminal
	ClassCorrupt
)

var (
	ErrTransient = errors.New("transient")
	ErrClosed    = errors.New("closed")
)

// Classify references every exported sentinel above.
func Classify(err error) ErrorClass {
	if err == nil || errors.Is(err, context.Canceled) {
		return ClassNone
	}
	if errors.Is(err, ErrClosed) {
		return ClassTerminal
	}
	if errors.Is(err, ErrTransient) {
		return ClassTransient
	}
	return ClassNone
}

// Retryable reports whether err is worth retrying.
func Retryable(err error) bool { return Classify(err) == ClassTransient }

// MarkTransient wraps err so Classify reports it transient.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrTransient, err)
}
