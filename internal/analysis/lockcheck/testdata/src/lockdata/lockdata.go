// Package lockdata exercises the lockcheck analyzer: the
// public-locks/unexported-helper pattern, missed locks on exported
// methods, and self-deadlocks from re-acquiring below the boundary.
package lockdata

import "sync"

// Facility mirrors the SSF shape: a mutex, an immutable scheme set at
// construction, and mutable state guarded by the mutex.
type Facility struct {
	mu     sync.RWMutex
	scheme int
	count  int
	live   map[int]bool
}

// New writes fields outside any method; construction does not make a
// field guarded.
func New(scheme int) *Facility {
	return &Facility{scheme: scheme, live: make(map[int]bool)}
}

// Insert is the pattern done right: lock at the public boundary, then
// delegate to the unexported helper.
func (f *Facility) Insert(k int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.insert(k)
}

// insert runs with f.mu held by the caller.
func (f *Facility) insert(k int) {
	f.live[k] = true
	f.count++
}

// Count reads guarded state without the lock.
func (f *Facility) Count() int { // want `exported method Facility.Count touches guarded field\(s\) count without acquiring mu`
	return f.count
}

// CountLocked is the correct reader.
func (f *Facility) CountLocked() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.count
}

// Scheme reads an immutable field; no lock needed.
func (f *Facility) Scheme() int { return f.scheme }

// Reset inherits the helper's guarded accesses transitively.
func (f *Facility) Reset() { // want `exported method Facility.Reset touches guarded field\(s\) count, live without acquiring mu`
	f.insert(0)
	f.count = 0
}

// Size is a correct locked reader used as a deadlock witness below.
func (f *Facility) Size() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.count
}

// Clear re-acquires directly: Size locks again under f.mu.
func (f *Facility) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	_ = f.Size() // want `Facility.Clear holds mu and calls Size, which acquires it again: self-deadlock`
	f.count = 0
}

// Drain re-acquires transitively through the flush helper.
func (f *Facility) Drain() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.flush() // want `Facility.Drain holds mu and calls Size \(via flush\), which acquires it again: self-deadlock`
}

func (f *Facility) flush() {
	_ = f.Size()
}

// Peek documents a deliberate unlocked read via the directive.
func (f *Facility) Peek() int { //sigvet:ignore stats endpoint tolerates a stale word-sized read
	return f.count
}

// Plain has no mutex; lockcheck ignores it entirely.
type Plain struct{ n int }

// Bump mutates freely: Plain is single-goroutine by contract.
func (p *Plain) Bump() { p.n++ }
