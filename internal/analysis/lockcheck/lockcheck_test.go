package lockcheck_test

import (
	"testing"

	"sigfile/internal/analysis/lockcheck"
	"sigfile/internal/analysis/vettest"
)

func TestLockcheck(t *testing.T) {
	vettest.Run(t, vettest.TestData(), lockcheck.Analyzer, "lockdata")
}
