// Package lockcheck enforces the public-locks→unexported-helper
// concurrency pattern the parallel search layer (PR 2) established for
// every facility and store type:
//
//   - a "locked type" is a struct with a sync.Mutex/RWMutex field;
//   - its exported methods are the locking boundary: an exported method
//     that touches a guarded field (directly or through unexported
//     helpers) must acquire the mutex first;
//   - helpers below the boundary run with the lock already held and
//     must not re-acquire it — on a sync.RWMutex, Lock inside Lock
//     self-deadlocks immediately, and RLock inside Lock deadlocks as
//     soon as a writer is waiting.
//
// A field is guarded if any method of the type writes it (fields only
// ever assigned during construction — scheme, src, metrics — are
// immutable and may be read lock-free). Both failure modes are
// reported: the missed lock on the public boundary, and the re-acquire
// (potential self-deadlock) below it, including transitively through
// helper calls.
package lockcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"sigfile/internal/analysis/sigvet"
)

// Analyzer is the lockcheck analyzer.
var Analyzer = &sigvet.Analyzer{
	Name: "lockcheck",
	Doc: "exported methods of mutex-guarded types must acquire the mutex " +
		"before touching guarded fields; internal helpers must not re-acquire it",
	Run: run,
}

// addrArg records a `&recv.field` argument handed to a same-type
// method: the caller only computes the address; whether the access is
// lock-safe depends on whether the callee acquires before
// dereferencing (the FaultFile.trip(&f.failReadAfter) pattern).
type addrArg struct {
	field  string
	callee *types.Func
}

// method is the per-method analysis state.
type method struct {
	decl     *ast.FuncDecl
	fn       *types.Func
	acquires bool            // calls recv.mu.Lock or recv.mu.RLock
	accessed map[string]bool // first-level receiver fields read or written directly
	writes   map[string]bool // first-level receiver fields written
	calls    []*types.Func   // methods of the same type called on recv
	callSites []*ast.CallExpr // call sites of same-type methods (parallel to calls)
	addrArgs []addrArg
}

// lockedType is one struct type with a mutex field and its methods.
type lockedType struct {
	name     *types.TypeName
	muFields map[string]bool
	methods  map[*types.Func]*method
	// guarded is the set of fields the mutex protects: written by some
	// method AND accessed somewhere under the lock (in an acquiring
	// method, or in a helper such a method calls). A mutex only guards
	// the fields its critical sections actually touch — Engine.slowMu
	// guards the slow-log configuration, not the index catalog that the
	// documented setup-then-share contract covers.
	guarded map[string]bool
}

func run(pass *sigvet.Pass) (any, error) {
	locked := findLockedTypes(pass)
	if len(locked) == 0 {
		return nil, nil
	}
	byRecv := make(map[*types.TypeName]*lockedType, len(locked))
	for _, lt := range locked {
		byRecv[lt.name] = lt
	}

	// Attach methods to their locked types.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			named := sigvet.NamedReceiver(pass.TypesInfo, fd)
			if named == nil {
				continue
			}
			lt, ok := byRecv[named.Obj()]
			if !ok {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			lt.methods[fn] = analyzeMethod(pass, lt, fd, fn)
		}
	}

	for _, lt := range locked {
		computeGuarded(lt)
		reportMissedLocks(pass, lt)
		reportReacquires(pass, lt)
	}
	return nil, nil
}

// findLockedTypes collects the package's struct types that contain a
// mutex field.
func findLockedTypes(pass *sigvet.Pass) []*lockedType {
	var out []*lockedType
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		mus := make(map[string]bool)
		for i := 0; i < st.NumFields(); i++ {
			if sigvet.IsMutexType(st.Field(i).Type()) {
				mus[st.Field(i).Name()] = true
			}
		}
		if len(mus) > 0 {
			out = append(out, &lockedType{name: tn, muFields: mus, methods: make(map[*types.Func]*method)})
		}
	}
	return out
}

// analyzeMethod extracts a method's lock acquisitions, receiver-field
// accesses and same-type calls. Function literals are included: the
// facilities' worker callbacks run within the method's critical
// section.
func analyzeMethod(pass *sigvet.Pass, lt *lockedType, fd *ast.FuncDecl, fn *types.Func) *method {
	m := &method{
		decl:     fd,
		fn:       fn,
		accessed: make(map[string]bool),
		writes:   make(map[string]bool),
	}
	recv := sigvet.ReceiverObject(pass.TypesInfo, fd)
	if recv == nil {
		return m
	}
	// Selector nodes consumed as &recv.field arguments to same-type
	// calls; handled via addrArgs instead of the plain access rule.
	claimed := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if _, meth, ok := mutexCall(pass.TypesInfo, recv, lt, n); ok {
				if meth == "Lock" || meth == "RLock" {
					m.acquires = true
				}
				return true
			}
			if callee := sameTypeCallee(pass.TypesInfo, recv, lt, n); callee != nil {
				m.calls = append(m.calls, callee)
				m.callSites = append(m.callSites, n)
				for _, arg := range n.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if f, ok := firstRecvField(pass.TypesInfo, recv, sel); ok {
						m.addrArgs = append(m.addrArgs, addrArg{field: f, callee: callee})
						claimed[sel] = true
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if f, ok := firstRecvField(pass.TypesInfo, recv, lhs); ok {
					m.writes[f] = true
				}
			}
		case *ast.IncDecStmt:
			if f, ok := firstRecvField(pass.TypesInfo, recv, n.X); ok {
				m.writes[f] = true
			}
		case *ast.SelectorExpr:
			if claimed[n] {
				return true
			}
			if f, ok := firstRecvField(pass.TypesInfo, recv, n); ok {
				m.accessed[f] = true
			}
		}
		return true
	})
	return m
}

// mutexCall matches recv.<mu>.<Lock|RLock|Unlock|RUnlock|TryLock|...>().
func mutexCall(info *types.Info, recv types.Object, lt *lockedType, call *ast.CallExpr) (string, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	root, ok := ast.Unparen(inner.X).(*ast.Ident)
	if !ok || info.Uses[root] != recv {
		return "", "", false
	}
	if !lt.muFields[inner.Sel.Name] {
		return "", "", false
	}
	return inner.Sel.Name, sel.Sel.Name, true
}

// sameTypeCallee resolves recv.<method>(...) to a method of the same
// locked type.
func sameTypeCallee(info *types.Info, recv types.Object, lt *lockedType, call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	root, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || info.Uses[root] != recv {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	named := sigvet.NamedOf(sig.Recv().Type())
	if named == nil || named.Obj() != lt.name {
		return nil
	}
	return fn
}

// firstRecvField returns the first-level receiver field of a selector
// chain rooted at recv: s.count -> count, s.oid.n -> oid,
// s.tails[j][i] -> tails. Mutex fields and method selections return
// !ok.
func firstRecvField(info *types.Info, recv types.Object, expr ast.Expr) (string, bool) {
	sel, ok := peel(expr).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	// Walk to the innermost selector.
	for {
		inner, ok := peel(sel.X).(*ast.SelectorExpr)
		if !ok {
			break
		}
		sel = inner
	}
	root, ok := peel(sel.X).(*ast.Ident)
	if !ok || info.Uses[root] != recv {
		return "", false
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return "", false
	}
	return sel.Sel.Name, true
}

func peel(expr ast.Expr) ast.Expr {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return expr
		}
	}
}

// computeGuarded derives the type's guarded field set: fields written
// by at least one method (construction-only fields are immutable) that
// are also accessed inside some critical section — in a method that
// acquires the mutex, or in a helper reachable from one through
// same-type calls. Fields never touched under the lock are governed by
// a different contract (e.g. Engine's setup-then-share catalog) and are
// not the mutex's business.
func computeGuarded(lt *lockedType) {
	written := make(map[string]bool)
	for _, m := range lt.methods {
		for f := range m.writes {
			if !lt.muFields[f] {
				written[f] = true
			}
		}
	}
	underLock := make(map[string]bool)
	seen := make(map[*types.Func]bool)
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		m := lt.methods[fn]
		if m == nil {
			return
		}
		for f := range m.accessed {
			underLock[f] = true
		}
		for _, callee := range m.calls {
			if cm := lt.methods[callee]; cm != nil && !cm.acquires {
				visit(callee)
			}
		}
	}
	for fn, m := range lt.methods {
		if m.acquires {
			visit(fn)
		}
	}
	lt.guarded = make(map[string]bool)
	for f := range written {
		if underLock[f] {
			lt.guarded[f] = true
		}
	}
}

// reportMissedLocks flags exported methods that reach guarded fields
// without acquiring the mutex. needsLock is computed transitively: a
// method inherits the needs of every same-type callee that does not
// itself acquire.
func reportMissedLocks(pass *sigvet.Pass, lt *lockedType) {
	memo := make(map[*types.Func]map[string]bool)
	var needs func(fn *types.Func, seen map[*types.Func]bool) map[string]bool
	needs = func(fn *types.Func, seen map[*types.Func]bool) map[string]bool {
		if got, ok := memo[fn]; ok {
			return got
		}
		if seen[fn] {
			return nil
		}
		seen[fn] = true
		m := lt.methods[fn]
		if m == nil {
			return nil
		}
		out := make(map[string]bool, len(m.accessed))
		for f := range m.accessed {
			if lt.guarded[f] {
				out[f] = true
			}
		}
		for _, aa := range m.addrArgs {
			// &recv.field handed to a callee: safe only when the callee
			// locks before dereferencing.
			if cm := lt.methods[aa.callee]; (cm == nil || !cm.acquires) && lt.guarded[aa.field] {
				out[aa.field] = true
			}
		}
		for _, callee := range m.calls {
			cm := lt.methods[callee]
			if cm == nil || cm.acquires {
				continue // callee locks for itself; nothing inherited.
			}
			for f := range needs(callee, seen) {
				out[f] = true
			}
		}
		memo[fn] = out
		return out
	}
	for fn, m := range lt.methods {
		if !fn.Exported() || m.acquires {
			continue
		}
		needed := needs(fn, make(map[*types.Func]bool))
		if len(needed) == 0 {
			continue
		}
		fields := make([]string, 0, len(needed))
		for f := range needed {
			fields = append(fields, f)
		}
		sort.Strings(fields)
		mu := muFieldName(lt)
		pass.Reportf(m.decl.Name.Pos(),
			"exported method %s.%s touches guarded field(s) %s without acquiring %s "+
				"(public-locks/unexported-helper pattern)",
			lt.name.Name(), fn.Name(), strings.Join(fields, ", "), mu)
	}
}

// reportReacquires flags methods that acquire the mutex and then call —
// possibly through non-acquiring helpers — another method that acquires
// it again.
func reportReacquires(pass *sigvet.Pass, lt *lockedType) {
	type risk struct {
		witness *types.Func // the method that re-acquires
	}
	memo := make(map[*types.Func]*risk)
	var riskOf func(fn *types.Func, seen map[*types.Func]bool) *risk
	riskOf = func(fn *types.Func, seen map[*types.Func]bool) *risk {
		if r, ok := memo[fn]; ok {
			return r
		}
		if seen[fn] {
			return nil
		}
		seen[fn] = true
		m := lt.methods[fn]
		if m == nil {
			return nil
		}
		if m.acquires {
			r := &risk{witness: fn}
			memo[fn] = r
			return r
		}
		for _, callee := range m.calls {
			if r := riskOf(callee, seen); r != nil {
				memo[fn] = r
				return r
			}
		}
		memo[fn] = nil
		return nil
	}
	for fn, m := range lt.methods {
		if !m.acquires {
			continue
		}
		for i, callee := range m.calls {
			r := riskOf(callee, make(map[*types.Func]bool))
			if r == nil {
				continue
			}
			via := ""
			if r.witness != callee {
				via = fmt.Sprintf(" (via %s)", callee.Name())
			}
			pass.Reportf(m.callSites[i].Pos(),
				"%s.%s holds %s and calls %s%s, which acquires it again: self-deadlock",
				lt.name.Name(), fn.Name(), muFieldName(lt), r.witness.Name(), via)
		}
	}
}

func muFieldName(lt *lockedType) string {
	names := make([]string, 0, len(lt.muFields))
	for f := range lt.muFields {
		names = append(names, f)
	}
	sort.Strings(names)
	return strings.Join(names, "/")
}
