package detorder_test

import (
	"testing"

	"sigfile/internal/analysis/detorder"
	"sigfile/internal/analysis/vettest"
)

func TestDetOrder(t *testing.T) {
	vettest.Run(t, vettest.TestData(), detorder.Analyzer, "detdata")
}
