// Package detdata exercises the detorder map-iteration rule.
package detdata

import "sort"

// keysSorted accumulates then sorts: the canonical fix. No finding.
func keysSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// keysBad returns the slice in map order.
func keysBad(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `appended to in map-iteration order`
	}
	return keys
}

// sortedLater hands the slice to a sort-named helper: the sortedU64
// idiom. No finding.
func sortedLater(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return sortedCopy(keys)
}

func sortedCopy(s []string) []string {
	sort.Strings(s)
	return s
}

// sliceSort uses the comparator form. No finding.
func sliceSort(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// perIter appends to a slice declared inside the loop body:
// per-iteration scratch cannot leak iteration order. No finding.
func perIter(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

// sliceRange ranges a slice, not a map: order is already deterministic.
// No finding.
func sliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// slotFold appends into a map slot keyed by the range variable: each
// slot's content is independent of the order keys were visited in.
// No finding.
func slotFold(pairs map[string]string) map[string][]string {
	index := make(map[string][]string)
	for k, v := range pairs {
		index[v] = append(index[v], k)
	}
	return index
}

// nestedBad hides the unsorted append in a condition inside the range.
func nestedBad(m map[string]int) []string {
	var hot []string
	for k, v := range m {
		if v > 10 {
			hot = append(hot, k) // want `appended to in map-iteration order`
		}
	}
	return hot
}
