// Package detorder guards the determinism contract behind the
// byte-identical-at-any-K/any-P guarantee (DESIGN.md §16): Go map
// iteration order is deliberately random, so a slice built by appending
// inside a map range carries a different order on every run. If that
// slice becomes an ordered product — a result list, a wire-encoded
// sequence, a joined error, a planner candidate table — determinism is
// gone in a way differential tests only catch by luck.
//
// The rule: a function that appends to a pre-existing slice while
// ranging over a map must, somewhere in the same function, sort that
// slice — a sort./slices. call, or any callee whose name mentions sort
// taking the slice as an argument (the sortedU64 helper idiom). Slices
// declared inside the loop body (per-iteration scratch) are exempt, as
// are folds into index-addressed slots, which cannot depend on
// iteration order.
package detorder

import (
	"go/ast"
	"go/types"
	"strings"

	"sigfile/internal/analysis/sigvet"
)

// Analyzer is the detorder analyzer.
var Analyzer = &sigvet.Analyzer{
	Name: "detorder",
	Doc: "a slice appended to while ranging over a map must be sorted before it " +
		"becomes an ordered product; map order is random",
	Run: run,
}

func run(pass *sigvet.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *sigvet.Pass, fd *ast.FuncDecl) {
	sorted := sortedVars(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, rng, sorted)
		return true
	})
}

// sortedVars collects the objects of every variable that is, anywhere
// in fd, passed to a sorting call: any function of the sort or slices
// packages, or any callee whose name mentions "sort" (sort.Slice,
// slices.SortFunc, the local sortedU64 helper, ...).
func sortedVars(pass *sigvet.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	sorted := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if obj := sigvet.RootIdentObject(pass.TypesInfo, arg); obj != nil {
				sorted[obj] = true
			}
		}
		return true
	})
	return sorted
}

// isSortCall reports whether call plausibly orders its arguments.
func isSortCall(pass *sigvet.Pass, call *ast.CallExpr) bool {
	if fn := sigvet.CalleeFunc(pass.TypesInfo, call); fn != nil {
		if fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "sort", "slices":
				return true
			}
		}
		return strings.Contains(strings.ToLower(fn.Name()), "sort")
	}
	// Dynamic call: judge by the spelled name.
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(f.Name), "sort")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(f.Sel.Name), "sort")
	}
	return false
}

// checkMapRange reports appends inside rng that grow a slice declared
// outside the loop and never sorted in the enclosing function.
func checkMapRange(pass *sigvet.Pass, rng *ast.RangeStmt, sorted map[types.Object]bool) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || i >= len(assign.Lhs) {
				continue
			}
			fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || fun.Name != "append" || len(call.Args) == 0 {
				continue
			}
			if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); !isBuiltin {
				continue
			}
			// Slot-indexed fold: edges[k] = append(edges[k], ...) grows a
			// per-key slot, whose content cannot depend on which order the
			// keys were visited in.
			if _, isIndex := ast.Unparen(call.Args[0]).(*ast.IndexExpr); isIndex {
				continue
			}
			// The accumulator pattern: s = append(s, ...). Appends whose
			// source and destination differ are not order-dependent
			// growth of one product; leave them alone.
			target := sigvet.RootIdentObject(pass.TypesInfo, call.Args[0])
			if target == nil || target != sigvet.RootIdentObject(pass.TypesInfo, assign.Lhs[i]) {
				continue
			}
			// Per-iteration scratch: declared inside the loop body.
			if target.Pos() > rng.Pos() && target.Pos() < rng.End() {
				continue
			}
			if sorted[target] {
				continue
			}
			pass.Reportf(assign.Pos(),
				"slice %s is appended to in map-iteration order and never sorted here; map order is "+
					"random, so any ordered product built from it (results, wire lists, joined errors) "+
					"breaks determinism — sort it or fold by index",
				target.Name())
		}
		return true
	})
}
