package errwrap_test

import (
	"testing"

	"sigfile/internal/analysis/errwrap"
	"sigfile/internal/analysis/vettest"
)

func TestErrwrap(t *testing.T) {
	vettest.Run(t, vettest.TestData(), errwrap.Analyzer, "errdata")
}
