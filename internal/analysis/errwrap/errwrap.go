// Package errwrap enforces the repository's error-handling invariants,
// introduced with the crash-safe persistence layer (PR 1), which
// replaced library panics with sentinel errors (signature.ErrWidthMismatch,
// signature.ErrInvalidPredicate, core.ErrClosed, ...) that callers match
// with errors.Is:
//
//  1. Library packages (anything that is not package main) must not
//     panic on runtime conditions. A panic is allowed only as a
//     programmer-error guard: inside an init function, inside a
//     Must*/must* helper (the documented panicking twin of a
//     constructor), or with a constant message built from a string
//     literal or fmt.Sprintf — the idiom of the bitset bounds guards.
//     `panic(err)` swallows a recoverable error and is always flagged.
//
//  2. fmt.Errorf calls that pass a sentinel error variable (a
//     package-level `var Err...` of type error) must format it with %w,
//     so errors.Is keeps matching through the wrap. A sentinel under %v
//     or %s silently severs the chain — the exact bug class PR 1's
//     migration fixed.
package errwrap

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sigfile/internal/analysis/sigvet"
)

// Analyzer is the errwrap analyzer.
var Analyzer = &sigvet.Analyzer{
	Name: "errwrap",
	Doc: "library code must return wrapped sentinel errors, not panic: " +
		"panics only in init/Must* helpers or as constant-message guards; " +
		"fmt.Errorf must use %w for Err* sentinels",
	Run: run,
}

func run(pass *sigvet.Pass) (any, error) {
	isMain := pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body == nil {
				continue
			}
			var exemptPanics bool
			if ok {
				exemptPanics = isPanicExemptFunc(fd.Name.Name)
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !isMain && !exemptPanics && isPanicCall(pass.TypesInfo, call) {
					checkPanic(pass, call)
				}
				checkErrorf(pass, call)
				return true
			})
		}
	}
	return nil, nil
}

// isPanicExemptFunc reports whether panics in the named function are
// programmer-error guards by convention.
func isPanicExemptFunc(name string) bool {
	return name == "init" || strings.HasPrefix(name, "must") || strings.HasPrefix(name, "Must")
}

func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// checkPanic flags panic calls whose argument is not a constant-style
// message (string literal or fmt.Sprintf).
func checkPanic(pass *sigvet.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	arg := ast.Unparen(call.Args[0])
	switch a := arg.(type) {
	case *ast.BasicLit:
		if a.Kind == token.STRING {
			return // panic("message"): assertion-style guard.
		}
	case *ast.CallExpr:
		if fn := sigvet.CalleeFunc(pass.TypesInfo, a); fn != nil &&
			fn.Name() == "Sprintf" && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			return // panic(fmt.Sprintf(...)): formatted guard message.
		}
	}
	pass.Reportf(call.Pos(),
		"panic in library code: return a (wrapped) error instead, or move the panic into an init/Must* guard")
}

// checkErrorf flags fmt.Errorf calls where a sentinel error argument is
// not formatted with %w.
func checkErrorf(pass *sigvet.Pass, call *ast.CallExpr) {
	format, ok := sigvet.ErrorfCall(pass.TypesInfo, call)
	if !ok {
		return
	}
	verbs := sigvet.FormatVerbs(format)
	for i, arg := range call.Args[1:] {
		if !isSentinelRef(pass.TypesInfo, arg) {
			continue
		}
		if i >= len(verbs) {
			continue // malformed format; vet's printf check owns that.
		}
		if verbs[i] != 'w' {
			pass.Reportf(arg.Pos(),
				"sentinel error %s formatted with %%%c; use %%w so errors.Is matches through the wrap",
				exprString(arg), verbs[i])
		}
	}
}

// isSentinelRef reports whether expr references a package-level error
// variable named Err* (an exported or unexported sentinel).
func isSentinelRef(info *types.Info, expr ast.Expr) bool {
	var obj types.Object
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	default:
		return false
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	if !strings.HasPrefix(v.Name(), "Err") && !strings.HasPrefix(v.Name(), "err") {
		return false
	}
	if v.Parent() != v.Pkg().Scope() {
		return false // not package-level: a local err, not a sentinel.
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(v.Type(), errIface)
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if x, ok := e.X.(*ast.Ident); ok {
			return x.Name + "." + e.Sel.Name
		}
		return e.Sel.Name
	}
	return "argument"
}
