// Package errdata exercises the errwrap analyzer: sentinel wrapping and
// the library-panic ban.
package errdata

import (
	"errors"
	"fmt"
)

// ErrNotFound is a sentinel in the style of signature.ErrWidthMismatch.
var ErrNotFound = errors.New("errdata: not found")

// errInternal is an unexported sentinel.
var errInternal = errors.New("errdata: internal")

// WrapOK wraps the sentinel with %w — errors.Is keeps matching.
func WrapOK(key string) error {
	return fmt.Errorf("errdata: lookup %q: %w", key, ErrNotFound)
}

// WrapBoth wraps two errors correctly.
func WrapBoth(err error) error {
	return fmt.Errorf("errdata: %w then %w", err, errInternal)
}

// SeverChain formats the sentinel with %v, severing the errors.Is chain.
func SeverChain(key string) error {
	return fmt.Errorf("errdata: lookup %q: %v", key, ErrNotFound) // want `sentinel error ErrNotFound formatted with %v`
}

// SeverUnexported severs an unexported sentinel with %s.
func SeverUnexported() error {
	return fmt.Errorf("errdata: %s", errInternal) // want `sentinel error errInternal formatted with %s`
}

// LocalErrOK: a local variable named err is not a sentinel; %v is a
// deliberate choice the analyzer must not second-guess.
func LocalErrOK(err error) error {
	return fmt.Errorf("errdata: op failed: %v", err)
}

// PanicErr panics with an error value — always a finding in library code.
func PanicErr(err error) {
	if err != nil {
		panic(err) // want `panic in library code`
	}
}

// PanicValue panics with a computed value — a finding too.
func PanicValue(n int) {
	panic(n) // want `panic in library code`
}

// GuardOK is an assertion-style guard: constant message, allowed.
func GuardOK(n int) {
	if n < 0 {
		panic("errdata: negative length")
	}
}

// GuardSprintfOK formats its guard message, like the bitset bounds
// checks; allowed.
func GuardSprintfOK(n int) {
	if n < 0 {
		panic(fmt.Sprintf("errdata: bad length %d", n))
	}
}

// MustParse is a documented panicking twin — allowed.
func MustParse(s string) int {
	n, err := parse(s)
	if err != nil {
		panic(err)
	}
	return n
}

func parse(s string) (int, error) {
	if s == "" {
		return 0, ErrNotFound
	}
	return len(s), nil
}

// Ignored panics with an error but carries a justified suppression.
func Ignored(err error) {
	//sigvet:ignore test of the suppression directive
	panic(err)
}

func init() {
	if len("x") != 1 {
		panic(errInternal) // init-time guards are allowed
	}
}
