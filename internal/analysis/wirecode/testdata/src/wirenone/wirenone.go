// Package wirenone declares a wire-code table but neither inverse
// method, and covers only one of the three facade sentinels.
package wirenone

import "sigfile"

type Code string

const CodeClosed Code = "CLOSED"

var sentinelCodes = []struct { // want `facade sentinel sigfile.ErrDegraded has no wire code` `facade sentinel sigfile.ErrOrphan has no wire code` `no Sentinel method on Code` `no HTTPStatus method on Code`
	Name string
	Err  error
	Code Code
}{
	{"ErrClosed", sigfile.ErrClosed, CodeClosed},
}
