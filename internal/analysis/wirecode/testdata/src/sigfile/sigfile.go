// Package sigfile mocks the library facade for wirecode testdata: three
// exported sentinels a wire-code table must cover.
package sigfile

import "errors"

var (
	ErrClosed   = errors.New("closed")
	ErrDegraded = errors.New("degraded")
	ErrOrphan   = errors.New("orphan")
)

// MaxWidth is exported but not a sentinel; never part of coverage.
const MaxWidth = 4096
