// Package wirebad carries one of each wirecode violation: an unmapped
// facade sentinel, a stale Name column, a duplicate code assignment,
// and a code constant the HTTPStatus switch never names.
package wirebad

import "sigfile"

type Code string

const (
	CodeClosed   Code = "CLOSED"
	CodeDegraded Code = "DEGRADED"
	CodeStray    Code = "STRAY" // want `wire code CodeStray has no explicit HTTPStatus case`
)

var sentinelCodes = []struct { // want `facade sentinel sigfile.ErrOrphan has no wire code`
	Name string
	Err  error
	Code Code
}{
	{"ErrClosed", sigfile.ErrClosed, CodeClosed},
	{"ErrShutdown", sigfile.ErrDegraded, CodeDegraded}, // want `row Name "ErrShutdown" does not match its sentinel ErrDegraded`
	{"ErrDegraded", sigfile.ErrDegraded, CodeClosed},   // want `wire code CodeClosed is assigned to more than one sentinel`
}

// Sentinel maps a code back to its sentinel.
func (c Code) Sentinel() error {
	for _, sc := range sentinelCodes {
		if sc.Code == c {
			return sc.Err
		}
	}
	return nil
}

// HTTPStatus forgets CodeStray.
func (c Code) HTTPStatus() int {
	switch c {
	case CodeClosed, CodeDegraded:
		return 503
	}
	return 500
}
