// Package wiregood is a complete wire-code table: every facade sentinel
// has a row, names match, codes are unique, and both methods cover
// every code. No findings.
package wiregood

import (
	"net/http"

	"sigfile"
)

type Code string

const (
	CodeOK       Code = "OK"
	CodeClosed   Code = "CLOSED"
	CodeDegraded Code = "DEGRADED"
	CodeOrphan   Code = "ORPHAN"
	CodeInternal Code = "INTERNAL"
)

var sentinelCodes = []struct {
	Name string
	Err  error
	Code Code
}{
	{"ErrClosed", sigfile.ErrClosed, CodeClosed},
	{"ErrDegraded", sigfile.ErrDegraded, CodeDegraded},
	{Name: "ErrOrphan", Err: sigfile.ErrOrphan, Code: CodeOrphan},
}

// Sentinel maps a code back to its sentinel.
func (c Code) Sentinel() error {
	for _, sc := range sentinelCodes {
		if sc.Code == c {
			return sc.Err
		}
	}
	return nil
}

// HTTPStatus maps every code explicitly.
func (c Code) HTTPStatus() int {
	switch c {
	case CodeOK:
		return http.StatusOK
	case CodeClosed, CodeDegraded, CodeOrphan:
		return http.StatusServiceUnavailable
	case CodeInternal:
		return http.StatusInternalServerError
	default:
		return http.StatusInternalServerError
	}
}
