// Package wirecode mechanizes the wire-schema coverage contract of the
// versioned API (DESIGN.md §15): every exported Err* sentinel of the
// library facade must map to exactly one stable wire Code, every code
// must have an explicit HTTPStatus case, and the package must provide
// the Sentinel inverse so errors.Is keeps working across the wire.
//
// The analyzer anchors on a package-level `var sentinelCodes` table
// whose rows are {Name string, Err error, Code Code} (the api/v1
// layout). It then checks, in order:
//
//   - every exported Err* error variable of each facade package the
//     table's Err column references has a row (a sentinel added to the
//     facade without a code would silently cross the wire as INTERNAL);
//   - each row's Name string matches its sentinel's identifier, so the
//     human-readable column cannot drift from the error it describes;
//   - no wire code is assigned to two sentinels;
//   - the package declares Sentinel and HTTPStatus methods on the Code
//     type, and every Code constant appears explicitly in the
//     HTTPStatus switch (relying on the default arm hides new codes).
//
// This analyzer supersedes the api/v1 TestSentinelCoverage AST test:
// the same guarantee now holds at vet time for any package shaped like
// a wire-code table, not just the shipped one.
package wirecode

import (
	"go/ast"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"sigfile/internal/analysis/sigvet"
)

// Analyzer is the wirecode analyzer.
var Analyzer = &sigvet.Analyzer{
	Name: "wirecode",
	Doc: "every exported facade Err* sentinel maps to a stable wire Code with an " +
		"explicit HTTPStatus case and a Sentinel inverse",
	Run: run,
}

// row is one parsed sentinelCodes entry.
type row struct {
	nameLit  *ast.BasicLit // the Name column string literal
	name     string
	errObj   types.Object // the sentinel variable
	codeObj  types.Object // the Code constant
	codePos  ast.Expr
	errIdent string
}

func run(pass *sigvet.Pass) (any, error) {
	tableIdent, tableLit := findTable(pass)
	if tableLit == nil {
		return nil, nil
	}
	rows := parseRows(pass, tableLit)
	checkNamesAndDuplicates(pass, rows)
	checkFacadeCoverage(pass, tableIdent, rows)
	checkCodeMethods(pass, tableIdent, rows)
	return nil, nil
}

// findTable locates the package-level `var sentinelCodes = []struct{...}{...}`
// declaration, returning its name ident and composite literal.
func findTable(pass *sigvet.Pass) (*ast.Ident, *ast.CompositeLit) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if id.Name != "sentinelCodes" || i >= len(vs.Values) {
						continue
					}
					if lit, ok := ast.Unparen(vs.Values[i]).(*ast.CompositeLit); ok {
						return id, lit
					}
				}
			}
		}
	}
	return nil, nil
}

// parseRows extracts the (Name, Err, Code) triple of each table row,
// resolving the Err and Code columns to their objects. Rows that do not
// type-check into the expected shape are skipped; go/types already
// rejected anything malformed.
func parseRows(pass *sigvet.Pass, table *ast.CompositeLit) []row {
	var rows []row
	for _, elt := range table.Elts {
		lit, ok := elt.(*ast.CompositeLit)
		if !ok {
			continue
		}
		st, ok := pass.TypesInfo.Types[lit].Type.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		fields := make(map[string]ast.Expr, st.NumFields())
		for i, fe := range lit.Elts {
			if kv, ok := fe.(*ast.KeyValueExpr); ok {
				if key, ok := kv.Key.(*ast.Ident); ok {
					fields[key.Name] = kv.Value
				}
				continue
			}
			if i < st.NumFields() {
				fields[st.Field(i).Name()] = fe
			}
		}
		var r row
		if nameLit, ok := ast.Unparen(fields["Name"]).(*ast.BasicLit); ok {
			if s, err := strconv.Unquote(nameLit.Value); err == nil {
				r.nameLit, r.name = nameLit, s
			}
		}
		if errExpr := fields["Err"]; errExpr != nil {
			r.errObj, r.errIdent = rightmostObject(pass, errExpr)
		}
		if codeExpr := fields["Code"]; codeExpr != nil {
			r.codeObj, _ = rightmostObject(pass, codeExpr)
			r.codePos = codeExpr
		}
		if r.nameLit != nil && r.errObj != nil && r.codeObj != nil {
			rows = append(rows, r)
		}
	}
	return rows
}

// rightmostObject resolves `pkg.Ident` or `Ident` to its object and
// identifier name.
func rightmostObject(pass *sigvet.Pass, expr ast.Expr) (types.Object, string) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e], e.Name
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel], e.Sel.Name
	}
	return nil, ""
}

// checkNamesAndDuplicates enforces the Name column and code-uniqueness
// rules.
func checkNamesAndDuplicates(pass *sigvet.Pass, rows []row) {
	seen := make(map[types.Object]string)
	for _, r := range rows {
		if r.name != r.errIdent {
			pass.Reportf(r.nameLit.Pos(),
				"sentinelCodes row Name %q does not match its sentinel %s; the name column must track the identifier",
				r.name, r.errIdent)
		}
		if prev, dup := seen[r.codeObj]; dup {
			pass.Reportf(r.codePos.Pos(),
				"wire code %s is assigned to more than one sentinel (%s and %s); codes must map back uniquely",
				r.codeObj.Name(), prev, r.errIdent)
			continue
		}
		seen[r.codeObj] = r.errIdent
	}
}

// checkFacadeCoverage enforces the forward direction: every exported
// Err* error variable of each referenced facade package has a row.
func checkFacadeCoverage(pass *sigvet.Pass, tableIdent *ast.Ident, rows []row) {
	mapped := make(map[types.Object]bool, len(rows))
	pkgs := make(map[*types.Package]bool)
	for _, r := range rows {
		mapped[r.errObj] = true
		if p := r.errObj.Pkg(); p != nil {
			pkgs[p] = true
		}
	}
	ordered := make([]*types.Package, 0, len(pkgs))
	for p := range pkgs {
		ordered = append(ordered, p)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Path() < ordered[j].Path() })
	for _, p := range ordered {
		scope := p.Scope()
		for _, name := range scope.Names() {
			if !strings.HasPrefix(name, "Err") || !ast.IsExported(name) {
				continue
			}
			v, ok := scope.Lookup(name).(*types.Var)
			if !ok || !isErrorType(v.Type()) || mapped[v] {
				continue
			}
			pass.Reportf(tableIdent.Pos(),
				"facade sentinel %s.%s has no wire code: add a sentinelCodes row and a Code constant, "+
					"or it crosses the wire as INTERNAL", p.Name(), name)
		}
	}
}

// checkCodeMethods enforces the inverse direction: Sentinel and
// HTTPStatus methods exist on the Code type and every Code constant has
// an explicit HTTPStatus case.
func checkCodeMethods(pass *sigvet.Pass, tableIdent *ast.Ident, rows []row) {
	if len(rows) == 0 {
		return
	}
	codeNamed := sigvet.NamedOf(rows[0].codeObj.Type())
	if codeNamed == nil {
		return
	}
	var httpStatus, sentinel *ast.FuncDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil {
				continue
			}
			recv := sigvet.NamedReceiver(pass.TypesInfo, fd)
			if recv == nil || recv.Obj() != codeNamed.Obj() {
				continue
			}
			switch fd.Name.Name {
			case "HTTPStatus":
				httpStatus = fd
			case "Sentinel":
				sentinel = fd
			}
		}
	}
	if sentinel == nil {
		pass.Reportf(tableIdent.Pos(),
			"no Sentinel method on %s: wire codes must map back to their sentinels so errors.Is survives the wire",
			codeNamed.Obj().Name())
	}
	if httpStatus == nil {
		pass.Reportf(tableIdent.Pos(),
			"no HTTPStatus method on %s: every wire code needs an HTTP mapping", codeNamed.Obj().Name())
		return
	}
	covered := make(map[types.Object]bool)
	ast.Inspect(httpStatus.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, expr := range cc.List {
			if obj, _ := rightmostObject(pass, expr); obj != nil {
				covered[obj] = true
			}
		}
		return true
	})
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		named := sigvet.NamedOf(c.Type())
		if named == nil || named.Obj() != codeNamed.Obj() || covered[c] {
			continue
		}
		pass.Reportf(c.Pos(),
			"wire code %s has no explicit HTTPStatus case; relying on the default arm hides new codes from review",
			name)
	}
}

// isErrorType reports whether t implements the error interface.
func isErrorType(t types.Type) bool {
	return types.Implements(t, types.Universe.Lookup("error").Type().Underlying().(*types.Interface))
}
