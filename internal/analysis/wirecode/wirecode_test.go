package wirecode_test

import (
	"testing"

	"sigfile/internal/analysis/vettest"
	"sigfile/internal/analysis/wirecode"
)

func TestWireCode(t *testing.T) {
	vettest.Run(t, vettest.TestData(), wirecode.Analyzer,
		"wiregood", "wirebad", "wirenone")
}
