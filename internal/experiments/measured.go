package experiments

import (
	"fmt"

	"sigfile/internal/core"
	"sigfile/internal/costmodel"
	"sigfile/internal/pagestore"
	"sigfile/internal/signature"
	"sigfile/internal/workload"
)

// measuredSetup bundles the three access facilities built over one
// synthetic instance, for experiments that print measured page counts
// next to the model's predictions.
type measuredSetup struct {
	cfg  workload.Config
	inst *workload.Instance
	ssf  *core.SSF
	bssf *core.BSSF
	nix  *core.NIX
	// per-facility stores, for aggregating physical page-access stats.
	ssfStore, bssfStore, nixStore *pagestore.MemStore
}

// buildMeasured generates the instance and bulk-loads all three
// facilities with a signature scheme of width f and weight m.
func buildMeasured(cfg workload.Config, f, m int) (*measuredSetup, error) {
	inst, err := workload.Generate(cfg)
	if err != nil {
		return nil, err
	}
	scheme, err := signature.New(f, m)
	if err != nil {
		return nil, err
	}
	s := &measuredSetup{
		cfg: cfg, inst: inst,
		ssfStore:  pagestore.NewMemStore(),
		bssfStore: pagestore.NewMemStore(),
		nixStore:  pagestore.NewMemStore(),
	}
	if s.ssf, err = core.NewSSF(scheme, inst, s.ssfStore); err != nil {
		return nil, err
	}
	if s.bssf, err = core.NewBSSF(scheme, inst, s.bssfStore); err != nil {
		return nil, err
	}
	if s.nix, err = core.NewNIX(inst, s.nixStore); err != nil {
		return nil, err
	}
	entries := make([]core.Entry, 0, cfg.N)
	for oid := uint64(1); oid <= uint64(cfg.N); oid++ {
		entries = append(entries, core.Entry{OID: oid, Elems: s.inst.Sets[oid]})
	}
	if err := s.ssf.InsertBatch(entries); err != nil {
		return nil, err
	}
	if err := s.bssf.InsertBatch(entries); err != nil {
		return nil, err
	}
	if err := s.nix.InsertBatch(entries); err != nil {
		return nil, err
	}
	return s, nil
}

// params returns the cost-model parameters matching this instance (same
// scaled N and V, same design).
func (s *measuredSetup) params(f int, m float64) costmodel.Params {
	p := costmodel.Paper(float64(s.cfg.Dt), f, m)
	p.N = s.cfg.N
	p.V = s.cfg.V
	return p
}

// avgCost averages the measured total page accesses of `trials` random
// queries of cardinality dq against the access method.
func (s *measuredSetup) avgCost(am core.AccessMethod, pred signature.Predicate, dq, trials int, seed int64, opts ...core.SearchOption) (float64, error) {
	queries, err := s.inst.Queries(workload.RandomQuery, dq, trials, seed)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, q := range queries {
		res, err := am.Search(pred, q, opts...)
		if err != nil {
			return 0, fmt.Errorf("measured %s: %w", am.Name(), err)
		}
		total += res.Stats.TotalPages()
	}
	return float64(total) / float64(trials), nil
}
