package experiments

import (
	"fmt"
	"io"
	"strings"
)

// table accumulates aligned rows for plain-text output in the shape of
// the paper's tables and figure series.
type table struct {
	columns []string
	rows    [][]string
}

func newTable(columns ...string) *table {
	return &table{columns: columns}
}

func (t *table) add(cells ...string) {
	row := make([]string, len(t.columns))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// addf formats each cell: strings pass through, float64 print with one
// decimal (or scientific when tiny), ints as integers.
func (t *table) addf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		row = append(row, formatCell(c))
	}
	t.add(row...)
}

func formatCell(c any) string {
	switch v := c.(type) {
	case string:
		return v
	case int:
		return fmt.Sprintf("%d", v)
	case int64:
		return fmt.Sprintf("%d", v)
	case float64:
		switch {
		case v == 0:
			return "0"
		case v < 0.005 && v > -0.005:
			return fmt.Sprintf("%.2e", v)
		case v >= 1000:
			return fmt.Sprintf("%.0f", v)
		default:
			return fmt.Sprintf("%.1f", v)
		}
	default:
		return fmt.Sprintf("%v", v)
	}
}

func (t *table) fprint(w io.Writer) {
	widths := make([]int, len(t.columns))
	for i, c := range t.columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.columns)
	sep := make([]string, len(t.columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}
