package experiments

import (
	"fmt"
	"io"

	"sigfile/internal/bitset"
	"sigfile/internal/core"
	"sigfile/internal/costmodel"
	"sigfile/internal/pagestore"
	"sigfile/internal/signature"
	"sigfile/internal/workload"
)

// This file implements the ablation studies DESIGN.md commits to: the
// design choices of the reproduction, each isolated and measured.

func init() {
	register(Experiment{
		ID:       "ablation-smartk",
		Artifact: "Ablation (ours)",
		Title:    "Smart T ⊇ Q probe size: paper's fixed k=2 vs exact argmin",
		Run:      runAblationSmartK,
	})
	register(Experiment{
		ID:       "ablation-buffer",
		Artifact: "Ablation (ours)",
		Title:    "LRU buffer pool: physical pages with and without caching",
		Run:      runAblationBuffer,
	})
	register(Experiment{
		ID:       "ablation-hash",
		Artifact: "Ablation (ours)",
		Title:    "Hash family: double hashing vs independent draws vs eq. 2",
		Run:      runAblationHash,
	})
	register(Experiment{
		ID:       "ablation-varcard",
		Artifact: "Ablation (ours, paper §6 future work)",
		Title:    "Variable target cardinality: fixed-Dt model vs mixed-cardinality data",
		Run:      runAblationVarCard,
	})
}

// runAblationSmartK compares the paper's fixed k=2 heuristic against the
// exact argmin probe size across designs, in the model.
func runAblationSmartK(w io.Writer, _ Options) error {
	t := newTable("Dt", "F", "m", "Dq", "RC k=2", "RC argmin", "k*", "saving")
	for _, c := range []struct {
		dt float64
		f  int
		m  float64
	}{{10, 250, 2}, {10, 500, 2}, {100, 1000, 3}, {100, 2500, 3}} {
		p := costmodel.Paper(c.dt, c.f, c.m)
		for _, dq := range []float64{3, 5, 10} {
			fixed := p.BSSFSmartSupersetFixed(dq, 2)
			best, k := p.BSSFSmartSuperset(dq)
			t.addf(int(c.dt), c.f, c.m, int(dq), fixed, best, k,
				fmt.Sprintf("%.0f%%", 100*(fixed-best)/fixed))
		}
	}
	t.fprint(w)
	fmt.Fprintln(w, "  (the paper's k=2 is near-optimal at F=500 but leaves pages on the table at F=250)")
	return nil
}

// runAblationBuffer measures how much of each facility's physical read
// traffic an LRU buffer pool absorbs across a query batch — the paper
// assumes cold reads; this quantifies what that assumption hides.
func runAblationBuffer(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	cfg := workload.Scaled(10, opt.Scale)
	inst, err := workload.Generate(cfg)
	if err != nil {
		return err
	}
	scheme := signature.MustNew(250, 2)
	queries, err := inst.Queries(workload.RandomQuery, 3, 20, opt.Seed)
	if err != nil {
		return err
	}

	t := newTable("facility", "physical reads cold", "physical reads pooled", "hit ratio")
	// SSF under a pool: the sequential scan re-touches the same pages
	// every query, so a pool sized to the signature file absorbs nearly
	// everything after the first query.
	run := func(name string, pooled bool) (int64, float64, error) {
		inner := pagestore.NewMemStore()
		var store pagestore.Store = inner
		var pools []*pagestore.BufferPool
		if pooled {
			// 8 pages per file: big enough to hold a B⁺-tree's upper
			// levels or a slice page, far too small for the SSF scan —
			// which makes the locality difference between the facilities
			// visible instead of caching everything.
			store = poolingStore{inner: inner, capacity: 8, pools: &pools}
		}
		var am core.AccessMethod
		switch name {
		case "SSF":
			am, err = core.NewSSF(scheme, inst, store)
		case "BSSF":
			am, err = core.NewBSSF(scheme, inst, store)
		case "NIX":
			am, err = core.NewNIX(inst, store)
		}
		if err != nil {
			return 0, 0, err
		}
		for oid := uint64(1); oid <= uint64(cfg.N); oid++ {
			if err := am.Insert(oid, inst.Sets[oid]); err != nil {
				return 0, 0, err
			}
		}
		r0, _ := inner.TotalStats()
		for _, q := range queries {
			if _, err := am.Search(signature.Superset, q, nil); err != nil {
				return 0, 0, err
			}
		}
		r1, _ := inner.TotalStats()
		hit := 0.0
		var hits, misses int64
		for _, p := range pools {
			hits += p.Hits()
			misses += p.Misses()
		}
		if hits+misses > 0 {
			hit = float64(hits) / float64(hits+misses)
		}
		return r1 - r0, hit, nil
	}
	for _, name := range []string{"SSF", "BSSF", "NIX"} {
		cold, _, err := run(name, false)
		if err != nil {
			return err
		}
		pooled, hit, err := run(name, true)
		if err != nil {
			return err
		}
		t.addf(name, cold, pooled, fmt.Sprintf("%.0f%%", 100*hit))
	}
	t.fprint(w)
	fmt.Fprintf(w, "  (20 T ⊇ Q queries, Dq=3, N=%d, 8-page LRU per file; physical = reads reaching\n", cfg.N)
	fmt.Fprintln(w, "   the store. Sequential SSF scans defeat a small LRU; BSSF slice pages and NIX")
	fmt.Fprintln(w, "   upper levels cache well — the paper's cold-read assumption penalizes them most)")
	return nil
}

// poolingStore wraps every opened file in a BufferPool and records the
// pools for hit accounting.
type poolingStore struct {
	inner    *pagestore.MemStore
	capacity int
	pools    *[]*pagestore.BufferPool
}

// Open implements pagestore.Store.
func (s poolingStore) Open(name string) (pagestore.File, error) {
	f, err := s.inner.Open(name)
	if err != nil {
		return nil, err
	}
	p, err := pagestore.NewBufferPool(f, s.capacity)
	if err != nil {
		return nil, err
	}
	*s.pools = append(*s.pools, p)
	return p, nil
}

// Close implements pagestore.Store.
func (s poolingStore) Close() error { return s.inner.Close() }

// runAblationHash measures the false-drop rate of the two hash families
// against eq. 2, validating the ideal-hash assumption.
func runAblationHash(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	const (
		m      = 2
		dt, dq = 10, 2
		v      = 2000
		n      = 6000
	)
	inst, err := workload.Generate(workload.Config{N: n, V: v, Dt: dt, Seed: opt.Seed})
	if err != nil {
		return err
	}
	queries, err := inst.Queries(workload.RandomQuery, dq, 10, opt.Seed+1)
	if err != nil {
		return err
	}
	t := newTable("F", "hasher", "measured Fd", "eq. 2 predicts")
	// F=64 stresses the model (the m·Dq query bits collide noticeably);
	// F=256 is a comfortable design like the paper's.
	for _, f := range []int{64, 256} {
		predicted := signature.FalseDropSuperset(float64(f), m, dt, dq)
		for _, h := range []struct {
			name   string
			hasher signature.Hasher
		}{
			{"double hashing (default)", signature.DoubleHasher{}},
			{"independent draws", signature.IndependentHasher{}},
		} {
			scheme, err := signature.NewWithHasher(f, m, h.hasher)
			if err != nil {
				return err
			}
			// Precompute every target signature once; the queries reuse
			// them.
			tsigs := make([]*bitset.BitSet, n+1)
			for oid := uint64(1); oid <= n; oid++ {
				tsigs[oid] = scheme.SetSignatureStrings(inst.Sets[oid])
			}
			drops, eligible := 0, 0
			for _, q := range queries {
				qsig := scheme.SetSignatureStrings(q)
				for oid := uint64(1); oid <= n; oid++ {
					if ok, _ := signature.EvaluateSets(signature.Superset, inst.Sets[oid], q); ok {
						continue
					}
					eligible++
					if ok, _ := signature.Matches(signature.Superset, tsigs[oid], qsig); ok {
						drops++
					}
				}
			}
			t.addf(f, h.name, fmt.Sprintf("%.5f", float64(drops)/float64(eligible)), fmt.Sprintf("%.5f", predicted))
		}
	}
	t.fprint(w)
	fmt.Fprintln(w, "  (eq. 2 assumes the m·Dq query bits are distinct; at F=64 that assumption itself")
	fmt.Fprintln(w, "   bends, inflating both hashers above the prediction. At realistic F the measured")
	fmt.Fprintln(w, "   rates match eq. 2 — the ideal-hash assumption is harmless. An earlier version of")
	fmt.Fprintln(w, "   this library skipped the splitmix64 finalizer on FNV-64; this ablation caught the")
	fmt.Fprintln(w, "   resulting 6x false-drop inflation at power-of-two F.)")
	return nil
}

// runAblationVarCard measures BSSF subset cost on variable-cardinality
// data (Dt drawn from [5, 15]) against the fixed-Dt=10 model — the cost
// analysis the paper defers to future work.
func runAblationVarCard(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	const f, m = 500, 2
	base := workload.Scaled(10, opt.Scale)
	fixed := base
	varied := base
	varied.Dt, varied.DtMax = 5, 15 // mean 10, like the fixed instance

	t := newTable("Dq", "fixed Dt=10 meas", "var Dt∈[5,15] meas", "model Dt=10")
	var setups []*measuredSetup
	for _, cfg := range []workload.Config{fixed, varied} {
		s, err := buildMeasured(cfg, f, m)
		if err != nil {
			return err
		}
		setups = append(setups, s)
	}
	p := setups[0].params(f, m)
	for _, dq := range []int{20, 50, 100} {
		if dq > base.V {
			continue
		}
		mf, err := setups[0].avgCost(setups[0].bssf, signature.Subset, dq, opt.Trials, opt.Seed)
		if err != nil {
			return err
		}
		mv, err := setups[1].avgCost(setups[1].bssf, signature.Subset, dq, opt.Trials, opt.Seed)
		if err != nil {
			return err
		}
		t.addf(dq, mf, mv, p.BSSFRetrievalSubset(float64(dq)))
	}
	t.fprint(w)
	fmt.Fprintln(w, "  (variable cardinality raises the subset false-drop tail: long sets set more bits,")
	fmt.Fprintln(w, "   short sets drop more easily — the fixed-Dt model brackets the mixture)")
	return nil
}
