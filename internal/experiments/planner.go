package experiments

import (
	"fmt"
	"io"

	"sigfile/internal/core"
	"sigfile/internal/planner"
	"sigfile/internal/signature"
	"sigfile/internal/workload"
)

// This file adds the planner experiment: the cost-based planner
// (internal/planner) run against a live build at the paper's Table 2
// design point (scaled). For each query shape the planner picks a
// facility and strategy from the facilities' own Describe() snapshots;
// the chosen plan is then executed for real, with its caps, and the
// measured mean page count is gated against the estimate that won the
// plan. A chosen plan costing more than plannerCheckFactor × its own
// estimate means the planner is being misled by its inputs — a verdict
// `sigbench -metrics` exits nonzero on, next to the drift check.

// plannerCheckFactor is the gate: the chosen plan's measured RC must
// not exceed this multiple of the best (winning) estimate. Looser than
// obs.DefaultDriftFactor because the planner's estimate is evaluated
// from catalog snapshots, not the exact instance parameters.
const plannerCheckFactor = 2.0

func init() {
	register(Experiment{
		ID:       "planner",
		Artifact: "Planner check (ours)",
		Title:    "Cost-based planner: measured RC of each chosen plan vs its winning estimate, gated",
		Run: func(w io.Writer, opt Options) error {
			_, err := RunPlannerCheck(w, opt)
			return err
		},
	})
}

// RunPlannerCheck builds the three modeled facilities at the paper's
// Table 2 configuration (F=250, m=2, N and V scaled by opt.Scale),
// plans a spread of query shapes through the cost-based planner, runs
// each winning plan (facility, strategy and caps) for real, and writes
// a plan-vs-measured table to w. It returns the number of plans whose
// measured cost exceeded plannerCheckFactor × the winning estimate.
// Like RunDrift, the experiment itself never fails on the gate; callers
// that want a verdict (sigbench -metrics) use the returned count.
func RunPlannerCheck(w io.Writer, opt Options) (int, error) {
	opt = opt.withDefaults()
	const f, m = 250, 2
	cfg := workload.Scaled(10, opt.Scale)
	setup, err := buildMeasured(cfg, f, m)
	if err != nil {
		return 0, err
	}

	// The planner sees exactly what the query engine would hand it: each
	// facility's self-description plus the attribute catalog.
	ams := []core.AccessMethod{setup.ssf, setup.bssf, setup.nix}
	descs := make([]core.FacilityStats, len(ams))
	for i, am := range ams {
		descs[i] = am.(core.Describer).Describe()
	}
	cat := planner.Catalog{N: cfg.N, Dt: float64(cfg.Dt), V: cfg.V}
	pl := planner.New()

	type point struct {
		pred signature.Predicate
		dq   int
	}
	points := []point{
		{signature.Contains, 1},
		{signature.Superset, 2},
		{signature.Superset, 5},
		{signature.Overlap, 2},
		{signature.Subset, 10},
		{signature.Subset, 20},
	}

	fmt.Fprintf(w, "  %-9s %3s | %-18s | %9s %9s %7s\n",
		"predicate", "Dq", "chosen plan", "est", "measured", "")
	failures := 0
	for _, pt := range points {
		if pt.dq > cfg.V {
			continue
		}
		plan := pl.Plan(pt.pred, pt.dq, cat, descs)
		c := plan.Chosen()
		if c == nil || c.Unmodeled {
			return failures, fmt.Errorf("planner check: no modeled plan for %s Dq=%d", pt.pred, pt.dq)
		}
		meas, err := setup.avgCost(ams[c.Index], pt.pred, pt.dq, opt.Trials, opt.Seed,
			core.WithMaxProbeElements(c.MaxProbeElements),
			core.WithMaxZeroSlices(c.MaxZeroSlices))
		if err != nil {
			return failures, err
		}
		verdict := ""
		if meas > plannerCheckFactor*c.EstimatedRC {
			verdict = "FAIL"
			failures++
		}
		chosen := c.Facility + " " + string(c.Strategy)
		if c.MaxProbeElements > 0 {
			chosen += fmt.Sprintf(" k=%d", c.MaxProbeElements)
		}
		if c.MaxZeroSlices > 0 {
			chosen += fmt.Sprintf(" z=%d", c.MaxZeroSlices)
		}
		fmt.Fprintf(w, "  %-9s %3d | %-18s | %9.1f %9.1f %7s\n",
			pt.pred, pt.dq, chosen, c.EstimatedRC, meas, verdict)
	}
	fmt.Fprintf(w, "  (scale 1/%d: N=%d, V=%d, F=%d, m=%d, gate: measured ≤ %.0f× winning estimate)\n",
		opt.Scale, cfg.N, cfg.V, f, m, plannerCheckFactor)
	return failures, nil
}
