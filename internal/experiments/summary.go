package experiments

import (
	"fmt"
	"io"

	"sigfile/internal/costmodel"
	"sigfile/internal/signature"
	"sigfile/internal/workload"
)

func init() {
	register(Experiment{
		ID:       "summary",
		Artifact: "§6 conclusions",
		Title:    "The paper's summary claims, each re-derived from the model",
		Run:      runSummary,
	})
	register(Experiment{
		ID:       "fullscale",
		Artifact: "Full-scale run (ours)",
		Title:    "Measured page accesses at the paper's N=32000, V=13000",
		Run:      runFullScale,
	})
}

// runSummary re-derives every numeric claim of the paper's §6 from the
// model and prints a pass/fail checklist.
func runSummary(w io.Writer, _ Options) error {
	t := newTable("claim (§6)", "computed", "verdict")
	check := func(claim, computed string, ok bool) {
		verdict := "reproduced"
		if !ok {
			verdict = "NOT reproduced"
		}
		t.add(claim, computed, verdict)
	}

	p10a := costmodel.Paper(10, 250, 2)
	p10b := costmodel.Paper(10, 500, 2)
	p100a := costmodel.Paper(100, 1000, 3)
	p100b := costmodel.Paper(100, 2500, 3)

	// "Storage costs of SSF, BSSF, NIX become higher in this order."
	ok := p10a.SSFStorage() <= p10a.BSSFStorage() && p10a.BSSFStorage() < p10a.NIXStorage()
	check("storage SSF ≤ BSSF < NIX",
		fmt.Sprintf("%.0f / %.0f / %.0f", p10a.SSFStorage(), p10a.BSSFStorage(), p10a.NIXStorage()), ok)

	// "SSF storage ≈ 45% and 80% of NIX for Dt=10."
	r1 := p10a.SSFStorage() / p10a.NIXStorage()
	r2 := p10b.SSFStorage() / p10b.NIXStorage()
	check("SSF/NIX ≈ 45% (F=250) and 80% (F=500), Dt=10",
		fmt.Sprintf("%.0f%% / %.0f%%", 100*r1, 100*r2),
		r1 > 0.43 && r1 < 0.47 && r2 > 0.78 && r2 < 0.83)

	// "≈16% and 38% for Dt=100."
	r3 := p100a.SSFStorage() / p100a.NIXStorage()
	r4 := p100b.SSFStorage() / p100b.NIXStorage()
	check("SSF/NIX ≈ 16% (F=1000) and 38% (F=2500), Dt=100",
		fmt.Sprintf("%.0f%% / %.0f%%", 100*r3, 100*r4),
		r3 > 0.14 && r3 < 0.18 && r4 > 0.36 && r4 < 0.41)

	// "SSF update cost relatively low; BSSF insertion ≈ F."
	check("SSF UC_I = 2; BSSF UC_I = F+1; deletes SC_OID/2",
		fmt.Sprintf("%.0f / %.0f / %.1f", p10a.SSFInsertCost(), p10a.BSSFInsertCost(), p10a.SSFDeleteCost()),
		p10a.SSFInsertCost() == 2 && p10a.BSSFInsertCost() == 251 && p10a.SSFDeleteCost() == 31.5)

	// "SSF inferior to BSSF for both query types."
	ssfWorse := true
	for dq := 1.0; dq <= 10; dq++ {
		if p10a.SSFRetrievalSuperset(dq) <= p10a.BSSFRetrievalSuperset(dq) {
			ssfWorse = false
		}
	}
	for _, dq := range []float64{10, 100, 300} {
		if p10b.SSFRetrievalSubset(dq) <= p10b.BSSFRetrievalSubset(dq) {
			ssfWorse = false
		}
	}
	check("SSF inferior to BSSF on T⊇Q (small m) and T⊆Q", "swept Dq ranges", ssfWorse)

	// "For T ⊇ Q, BSSF small-m ≈ NIX except Dq=1."
	bssfSmart, _ := p10b.BSSFSmartSuperset(5)
	nixSmart, _ := p10b.NIXSmartSuperset(5)
	nixWinsAt1 := p10b.NIXRetrievalSuperset(1) < p10b.BSSFRetrievalSuperset(1)
	check("T⊇Q: smart BSSF ≈ smart NIX for Dq ≥ 2; NIX wins at Dq=1",
		fmt.Sprintf("smart(5): %.1f vs %.1f; Dq=1: %.1f vs %.1f",
			bssfSmart, nixSmart, p10b.BSSFRetrievalSuperset(1), p10b.NIXRetrievalSuperset(1)),
		nixWinsAt1 && bssfSmart < nixSmart*1.2)

	// "For T ⊆ Q, BSSF costs a small constant and overwhelms NIX."
	smart := p10b.BSSFSmartSubset(100)
	nix := p10b.NIXRetrievalSubset(100)
	check("T⊆Q: smart BSSF small constant ≪ NIX",
		fmt.Sprintf("%.0f vs %.0f pages at Dq=100 (%.0fx)", smart, nix, nix/smart),
		smart < nix/5)

	// "Set m far smaller than m_opt for set value access."
	mopt := signature.OptimalM(500, 10)
	atOpt := costmodel.Paper(10, 500, mopt).BSSFRetrievalSuperset(5)
	atTwo := p10b.BSSFRetrievalSuperset(5)
	check("small m beats m_opt for BSSF retrieval",
		fmt.Sprintf("RC(m=2)=%.1f vs RC(m_opt=%.1f)=%.1f", atTwo, mopt, atOpt),
		atTwo < atOpt)

	t.fprint(w)
	fmt.Fprintln(w, "  (each row recomputed from the cost model; see EXPERIMENTS.md for details)")
	return nil
}

// runFullScale builds all three facilities at the paper's full scale
// (N=32000, V=13000) and measures the headline points — the closest this
// reproduction gets to "running the paper".
func runFullScale(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	const f, m = 250, 2
	cfg := workload.Paper(10)
	fmt.Fprintf(w, "  building SSF/BSSF/NIX over N=%d objects, V=%d, Dt=%d (F=%d, m=%d)...\n",
		cfg.N, cfg.V, cfg.Dt, f, m)
	setup, err := buildMeasured(cfg, f, m)
	if err != nil {
		return err
	}
	p := costmodel.Paper(10, f, m)

	t := newTable("facility", "query", "Dq", "paper model RC", "measured RC")
	points := []struct {
		name  string
		pred  signature.Predicate
		dq    int
		model float64
	}{
		{"SSF", signature.Superset, 3, p.SSFRetrievalSuperset(3)},
		{"BSSF", signature.Superset, 1, p.BSSFRetrievalSuperset(1)},
		{"BSSF", signature.Superset, 3, p.BSSFRetrievalSuperset(3)},
		{"BSSF", signature.Superset, 10, p.BSSFRetrievalSuperset(10)},
		{"NIX", signature.Superset, 3, p.NIXRetrievalSuperset(3)},
		{"BSSF", signature.Subset, 100, p.BSSFRetrievalSubset(100)},
		{"BSSF", signature.Subset, 300, p.BSSFRetrievalSubset(300)},
		{"NIX", signature.Subset, 100, p.NIXRetrievalSubset(100)},
	}
	for _, pt := range points {
		var meas float64
		var err error
		switch pt.name {
		case "SSF":
			meas, err = setup.avgCost(setup.ssf, pt.pred, pt.dq, opt.Trials, opt.Seed)
		case "BSSF":
			meas, err = setup.avgCost(setup.bssf, pt.pred, pt.dq, opt.Trials, opt.Seed)
		case "NIX":
			meas, err = setup.avgCost(setup.nix, pt.pred, pt.dq, opt.Trials, opt.Seed)
		}
		if err != nil {
			return err
		}
		t.addf(pt.name, pt.pred.String(), pt.dq, pt.model, meas)
	}
	t.fprint(w)
	fmt.Fprintln(w, "  (model and measurement at identical, full paper scale — no rescaling)")
	return nil
}
