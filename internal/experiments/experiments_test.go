package experiments

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"sigfile/internal/signature"
	"sigfile/internal/workload"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"tab5", "tab6", "tab7", "xval", "drift", "planner", "ext-fssf", "ext-operators", "summary", "fullscale",
		"ablation-smartk", "ablation-buffer", "ablation-hash", "ablation-varcard",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	// Ordering: figures first, tables next.
	all := All()
	if all[0].ID != "fig1" || all[8].ID != "fig10" || all[9].ID != "tab5" {
		ids := make([]string, len(all))
		for i, e := range all {
			ids[i] = e.ID
		}
		t.Errorf("ordering wrong: %v", ids)
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID invented an experiment")
	}
}

// TestAnalyticExperimentsRun executes every experiment without measured
// runs and sanity-checks the output.
func TestAnalyticExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		if e.ID == "fullscale" {
			continue // always measured, paper scale; covered by its own test
		}
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			// Ablations always measure; keep their instances small here.
			if err := e.Run(&buf, Options{Scale: 32, Trials: 2}); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if len(out) < 50 {
				t.Fatalf("suspiciously short output:\n%s", out)
			}
			if strings.Contains(out, "FALSE DISMISSAL") {
				t.Fatalf("figure demo reported a false dismissal:\n%s", out)
			}
		})
	}
}

// TestFig1Classifications pins the worked example: an actual drop, a
// false drop (or no drop — hash dependent), and the classification
// column present.
func TestFig1Classifications(t *testing.T) {
	var buf bytes.Buffer
	if err := mustByID(t, "fig1").Run(&buf, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "actual drop") {
		t.Fatalf("fig1 lost its actual drop:\n%s", out)
	}
}

func mustByID(t *testing.T, id string) Experiment {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s missing", id)
	}
	return e
}

// TestMeasuredSmoke runs the full pipeline (model + measurement) on a
// heavily scaled instance for the most load-bearing experiments.
func TestMeasuredSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("measured experiments skipped in -short mode")
	}
	opt := Options{Measured: true, Scale: 32, Trials: 2, Seed: 1}
	for _, id := range []string{"fig4", "fig8", "tab5", "tab6", "tab7", "xval", "ext-fssf", "ext-operators"} {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := mustByID(t, id).Run(&buf, opt); err != nil {
				t.Fatalf("%s: %v\n%s", id, err, buf.String())
			}
		})
	}
}

// TestXvalModelAgreesWithMeasurement is the headline validation: across
// facilities and query types the measured cost must track the model
// within a factor of two on the geometric mean.
func TestXvalModelAgreesWithMeasurement(t *testing.T) {
	if testing.Short() {
		t.Skip("xval skipped in -short mode")
	}
	var buf bytes.Buffer
	if err := mustByID(t, "xval").Run(&buf, Options{Measured: true, Scale: 16, Trials: 3}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	i := strings.Index(out, "geometric mean measured/model = ")
	if i < 0 {
		t.Fatalf("no geometric mean in output:\n%s", out)
	}
	rest := out[i+len("geometric mean measured/model = "):]
	gm, err := strconv.ParseFloat(strings.Fields(rest)[0], 64)
	if err != nil {
		t.Fatalf("parse geometric mean: %v", err)
	}
	if math.Abs(math.Log(gm)) > math.Log(2) {
		t.Fatalf("geometric mean measured/model = %v, outside [0.5, 2]:\n%s", gm, out)
	}
}

// TestSummaryAllReproduced pins the §6 checklist: every claim must come
// out "reproduced".
func TestSummaryAllReproduced(t *testing.T) {
	var buf bytes.Buffer
	if err := mustByID(t, "summary").Run(&buf, Options{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NOT reproduced") {
		t.Fatalf("summary has failing claims:\n%s", buf.String())
	}
	if strings.Count(buf.String(), "reproduced") < 8 {
		t.Fatalf("summary lost claims:\n%s", buf.String())
	}
}

// TestFullScaleSmoke runs the full-paper-scale measurement once with a
// single trial per point (~seconds at N=32000).
func TestFullScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale run skipped in -short mode")
	}
	var buf bytes.Buffer
	if err := mustByID(t, "fullscale").Run(&buf, Options{Trials: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "N=32000") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}

func TestBuildMeasuredRejectsBadConfig(t *testing.T) {
	if _, err := buildMeasured(workload.Config{}, 100, 2); err == nil {
		t.Fatal("bad workload config accepted")
	}
	if _, err := buildMeasured(workload.Config{N: 10, V: 10, Dt: 2, Seed: 1}, 0, 0); err == nil {
		t.Fatal("bad scheme accepted")
	}
}

func TestAvgCostPropagatesQueryErrors(t *testing.T) {
	setup, err := buildMeasured(workload.Config{N: 20, V: 10, Dt: 2, Seed: 1}, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := setup.avgCost(setup.ssf, signature.Superset, 0, 1, 1); err == nil {
		t.Fatal("Dq=0 accepted")
	}
}

func TestScaleDq(t *testing.T) {
	if scaleDq(1000, 1625, 13000) != 125 {
		t.Fatalf("scaleDq(1000) = %d", scaleDq(1000, 1625, 13000))
	}
	if scaleDq(1, 100, 13000) != 1 {
		t.Fatal("scaleDq should clamp to 1")
	}
	if scaleDq(26000, 1625, 13000) != 1625 {
		t.Fatal("scaleDq should clamp to V")
	}
}

func TestFormatCell(t *testing.T) {
	cases := map[any]string{
		"x":      "x",
		42:       "42",
		int64(7): "7",
		0.0:      "0",
		1234.6:   "1235",
		3.25:     "3.2",
		0.00001:  "1.00e-05",
		true:     "true",
	}
	for in, want := range cases {
		if got := formatCell(in); got != want {
			t.Errorf("formatCell(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll skipped in -short mode")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig4", "tab7", "xval"} {
		if !strings.Contains(buf.String(), "==== "+id) {
			t.Errorf("RunAll output missing %s", id)
		}
	}
}
