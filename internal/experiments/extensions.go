package experiments

import (
	"fmt"
	"io"

	"sigfile/internal/core"
	"sigfile/internal/costmodel"
	"sigfile/internal/signature"
	"sigfile/internal/workload"
)

// This file hosts the extension experiments: studies of designs beyond
// the paper's SSF/BSSF/NIX triple.

func init() {
	register(Experiment{
		ID:       "ext-fssf",
		Artifact: "Extension (ours)",
		Title:    "Frame-sliced signature file vs the paper's three facilities",
		Run:      runExtFSSF,
	})
	register(Experiment{
		ID:       "ext-operators",
		Artifact: "Extension (ours, paper §6 future work)",
		Title:    "Overlap, equality and membership operators: model vs measured",
		Run:      runExtOperators,
	})
}

// runExtOperators evaluates the extended cost formulas for the §2
// operators the paper defers, and validates them against measured runs.
func runExtOperators(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	const f, m = 250, 2
	p := costmodel.Paper(10, f, m)

	t := newTable("operator", "Dq", "SSF", "BSSF", "NIX")
	for _, dq := range []float64{1, 3, 10} {
		t.addf("T ∩ Q ≠ ∅", int(dq),
			p.SSFRetrievalOverlap(dq), p.BSSFRetrievalOverlap(dq), p.NIXRetrievalOverlap(dq))
	}
	t.addf("T = Q", 10,
		p.SSFRetrievalEquals(10), p.BSSFRetrievalEquals(10), p.NIXRetrievalEquals(10))
	t.addf("q ∈ T", 1,
		p.SSFRetrievalContains(), p.BSSFRetrievalContains(), p.NIXRetrievalContains())
	t.fprint(w)
	fmt.Fprintln(w, "  (model at paper constants; overlap & membership favor NIX — exact unions —")
	fmt.Fprintln(w, "   while equality makes BSSF read all F slices)")

	if !opt.Measured {
		return nil
	}
	setup, err := buildMeasured(workload.Scaled(10, opt.Scale), f, m)
	if err != nil {
		return err
	}
	ps := setup.params(f, m)
	mt := newTable("operator", "facility", "Dq", "model RC", "measured RC")
	for _, dq := range []int{1, 3} {
		for _, x := range []struct {
			am    core.AccessMethod
			model float64
		}{
			{setup.ssf, ps.SSFRetrievalOverlap(float64(dq))},
			{setup.bssf, ps.BSSFRetrievalOverlap(float64(dq))},
			{setup.nix, ps.NIXRetrievalOverlap(float64(dq))},
		} {
			meas, err := setup.avgCost(x.am, signature.Overlap, dq, opt.Trials, opt.Seed)
			if err != nil {
				return err
			}
			mt.addf("T ∩ Q ≠ ∅", x.am.Name(), dq, x.model, meas)
		}
	}
	for _, x := range []struct {
		am    core.AccessMethod
		model float64
	}{
		{setup.ssf, ps.SSFRetrievalEquals(float64(setup.cfg.Dt))},
		{setup.bssf, ps.BSSFRetrievalEquals(float64(setup.cfg.Dt))},
		{setup.nix, ps.NIXRetrievalEquals(float64(setup.cfg.Dt))},
	} {
		meas, err := setup.avgCost(x.am, signature.Equals, setup.cfg.Dt, opt.Trials, opt.Seed)
		if err != nil {
			return err
		}
		mt.addf("T = Q", x.am.Name(), setup.cfg.Dt, x.model, meas)
	}
	fmt.Fprintln(w)
	mt.fprint(w)
	fmt.Fprintf(w, "  (measured at scale 1/%d)\n", opt.Scale)
	return nil
}

// runExtFSSF places FSSF in the paper's comparison: storage, update and
// retrieval costs from the extended model, plus measured runs of the
// real implementation at scale.
func runExtFSSF(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	const f, m, k = 250, 2, 10
	p := costmodel.Paper(10, f, m)
	pf := p.FSSF(k)

	fmt.Fprintf(w, "  design: F=%d bits as K=%d frames of S=%d, m=%d, Dt=10 (paper constants)\n\n", f, k, int(pf.S()), m)

	t := newTable("metric", "SSF", "FSSF", "BSSF", "NIX")
	t.addf("storage SC", p.SSFStorage(), pf.FSSFStorage(), p.BSSFStorage(), p.NIXStorage())
	t.addf("insert UC_I", p.SSFInsertCost(), pf.FSSFInsertCost(), p.BSSFImprovedInsertCost(), p.NIXInsertCost())
	t.addf("delete UC_D", p.SSFDeleteCost(), pf.FSSFDeleteCost(), p.BSSFDeleteCost(), p.NIXDeleteCost())
	for _, dq := range []float64{1, 2, 5, 10} {
		t.addf(fmt.Sprintf("RC T⊇Q Dq=%d", int(dq)),
			p.SSFRetrievalSuperset(dq), pf.FSSFRetrievalSuperset(dq),
			p.BSSFRetrievalSuperset(dq), p.NIXRetrievalSuperset(dq))
	}
	for _, dq := range []float64{20, 100} {
		t.addf(fmt.Sprintf("RC T⊆Q Dq=%d", int(dq)),
			p.SSFRetrievalSubset(dq), pf.FSSFRetrievalSubset(dq),
			p.BSSFRetrievalSubset(dq), p.NIXRetrievalSubset(dq))
	}
	t.fprint(w)
	fmt.Fprintln(w, "  (model, pages. FSSF buys BSSF-free insertion — ~7.5 pages vs 251 worst-case —")
	fmt.Fprintln(w, "   while keeping T ⊇ Q far below SSF; its T ⊆ Q degenerates to a full scan,")
	fmt.Fprintln(w, "   so the paper's verdict for the subset query — use BSSF — stands)")

	if !opt.Measured {
		return nil
	}

	// Measured: FSSF over the scaled instance vs the model at scale.
	cfg := workload.Scaled(10, opt.Scale)
	inst, err := workload.Generate(cfg)
	if err != nil {
		return err
	}
	fssf, err := core.NewFSSF(signature.MustFrameScheme(k, f/k, m), inst, nil)
	if err != nil {
		return err
	}
	for oid := uint64(1); oid <= uint64(cfg.N); oid++ {
		if err := fssf.Insert(oid, inst.Sets[oid]); err != nil {
			return err
		}
	}
	ps := costmodel.Paper(10, f, m)
	ps.N, ps.V = cfg.N, cfg.V
	psf := ps.FSSF(k)

	mt := newTable("query", "Dq", "model RC", "measured RC")
	for _, dq := range []int{1, 2, 5, 10} {
		queries, err := inst.Queries(workload.RandomQuery, dq, opt.Trials, opt.Seed)
		if err != nil {
			return err
		}
		var total int64
		for _, q := range queries {
			res, err := fssf.Search(signature.Superset, q, nil)
			if err != nil {
				return err
			}
			total += res.Stats.TotalPages()
		}
		mt.addf("T ⊇ Q", dq, psf.FSSFRetrievalSuperset(float64(dq)), float64(total)/float64(opt.Trials))
	}
	fmt.Fprintln(w)
	mt.fprint(w)
	fmt.Fprintf(w, "  (measured at scale 1/%d: N=%d)\n", opt.Scale, cfg.N)
	return nil
}
