package experiments

import (
	"fmt"
	"io"

	"sigfile/internal/core"
	"sigfile/internal/obs"
	"sigfile/internal/signature"
	"sigfile/internal/workload"
)

// This file adds the drift experiment: the cost-model drift checker
// (internal/obs) run against a live build at the paper's Table 2 design
// point (scaled). Where xval prints measured-vs-model ratios for a human
// to eyeball, drift applies the tolerance and yields a pass/fail verdict
// a CI job can gate on — `sigbench -metrics` exits nonzero when any
// point drifts outside obs.DefaultDriftFactor.

func init() {
	register(Experiment{
		ID:       "drift",
		Artifact: "Drift check (ours)",
		Title:    "Cost-model drift: measured RC vs Table 5/6 predictions, tolerance-gated",
		Run: func(w io.Writer, opt Options) error {
			_, err := RunDrift(w, opt)
			return err
		},
	})
}

// RunDrift builds the three modeled facilities at the paper's Table 2
// configuration (F=250, m=2, N and V scaled by opt.Scale), measures the
// mean retrieval cost of random T ⊇ Q and T ⊆ Q queries across a range
// of query cardinalities, and checks every point against the analytical
// model with the default tolerance. It writes the drift table to w and
// returns the number of points outside tolerance. The experiment itself
// never fails on drift — callers that want a verdict (sigbench -metrics)
// use the returned count.
func RunDrift(w io.Writer, opt Options) (int, error) {
	opt = opt.withDefaults()
	const f, m = 250, 2
	cfg := workload.Scaled(10, opt.Scale)
	setup, err := buildMeasured(cfg, f, m)
	if err != nil {
		return 0, err
	}
	p := setup.params(f, m)
	// Measured runs resolve exact integer signature weights; compare
	// against the exact combinatorial false-drop forms, as xval does.
	p.UseExact = true
	checker := obs.NewDriftChecker(p, 0)

	type point struct {
		am   core.AccessMethod
		pred signature.Predicate
		dq   int
	}
	var points []point
	for _, dq := range []int{1, 2, 5, 10} {
		for _, am := range []core.AccessMethod{setup.ssf, setup.bssf, setup.nix} {
			points = append(points, point{am, signature.Superset, dq})
		}
	}
	for _, dq := range []int{10, 20, 50} {
		if dq > cfg.V {
			continue
		}
		for _, am := range []core.AccessMethod{setup.ssf, setup.bssf, setup.nix} {
			points = append(points, point{am, signature.Subset, dq})
		}
	}
	for _, pt := range points {
		meas, err := setup.avgCost(pt.am, pt.pred, pt.dq, opt.Trials, opt.Seed)
		if err != nil {
			return 0, err
		}
		checker.Record(pt.am.Name(), pt.pred, pt.dq, meas)
	}
	failures := checker.Report(w)
	fmt.Fprintf(w, "  (scale 1/%d: N=%d, V=%d, F=%d, m=%d, tolerance factor %.1f)\n",
		opt.Scale, cfg.N, cfg.V, f, m, checker.Factor())
	return failures, nil
}
