package experiments

import (
	"fmt"
	"io"
	"math"

	"sigfile/internal/core"
	"sigfile/internal/costmodel"
	"sigfile/internal/signature"
	"sigfile/internal/workload"
)

// This file reproduces the T ⊆ Q retrieval-cost figures (Figures 8–10).

func init() {
	register(Experiment{
		ID:       "fig8",
		Artifact: "Figure 8",
		Title:    "Retrieval cost RC, T ⊆ Q, Dt=10, F=500",
		Run:      runFig8,
	})
	register(Experiment{
		ID:       "fig9",
		Artifact: "Figure 9",
		Title:    "Smart retrieval cost, T ⊆ Q, Dt=10",
		Run:      runFig9,
	})
	register(Experiment{
		ID:       "fig10",
		Artifact: "Figure 10",
		Title:    "Smart retrieval cost, T ⊆ Q, Dt=100",
		Run:      runFig10,
	})
}

// fig8Sweep is the Dq axis of Figure 8 (log-spaced from Dt to 1000).
var fig8Sweep = []int{10, 20, 30, 50, 70, 100, 150, 200, 300, 500, 700, 1000}

// runFig8 prints RC(Dq) for T ⊆ Q at Dt=10, F=500: SSF and BSSF with
// m = 2 and m = m_opt, and NIX.
func runFig8(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	p2 := costmodel.Paper(10, 500, 2)
	pOpt := costmodel.Paper(10, 500, 0).WithOptimalM()

	cols := []string{"Dq", "SSF m=2", "BSSF m=2", "BSSF m=mopt", "NIX"}
	var setup *measuredSetup
	if opt.Measured {
		cols = append(cols, "BSSF m=2 meas", "NIX meas", "model@scale")
		var err error
		setup, err = buildMeasured(workload.Scaled(10, opt.Scale), 500, 2)
		if err != nil {
			return err
		}
	}
	t := newTable(cols...)
	for _, dq := range fig8Sweep {
		fdq := float64(dq)
		row := []any{dq,
			p2.SSFRetrievalSubset(fdq), p2.BSSFRetrievalSubset(fdq),
			pOpt.BSSFRetrievalSubset(fdq), p2.NIXRetrievalSubset(fdq),
		}
		if opt.Measured {
			dqScaled := scaleDq(dq, setup.cfg.V, 13000)
			mb, err := setup.avgCost(setup.bssf, signature.Subset, dqScaled, opt.Trials, opt.Seed)
			if err != nil {
				return err
			}
			mn, err := setup.avgCost(setup.nix, signature.Subset, dqScaled, opt.Trials, opt.Seed)
			if err != nil {
				return err
			}
			ps := setup.params(500, 2)
			row = append(row, mb, mn,
				fmt.Sprintf("%.1f/%.1f", ps.BSSFRetrievalSubset(float64(dqScaled)), ps.NIXRetrievalSubset(float64(dqScaled))))
		}
		t.addf(row...)
	}
	t.fprint(w)
	fmt.Fprintln(w, "  (pages; paper: BSSF beats SSF throughout; BSSF m=2 has a minimum near Dq=300; NIX grows)")
	return nil
}

// scaleDq maps a paper-scale query cardinality onto a scaled instance,
// clamping to the target cardinality so subset queries stay meaningful.
func scaleDq(dq, vScaled, vPaper int) int {
	scaled := int(math.Round(float64(dq) * float64(vScaled) / float64(vPaper)))
	if scaled < 1 {
		scaled = 1
	}
	if scaled > vScaled {
		scaled = vScaled
	}
	return scaled
}

// runSmartSubset is the common engine for Figures 9 and 10.
func runSmartSubset(w io.Writer, opt Options, dt float64, m, f int, sweep []int) error {
	opt = opt.withDefaults()
	p := costmodel.Paper(dt, f, float64(m))
	dqOpt := p.BSSFSubsetDqOpt()

	cols := []string{"Dq", fmt.Sprintf("BSSF smart m=%d F=%d", m, f), "BSSF plain", "NIX"}
	var setup *measuredSetup
	var ps costmodel.Params
	if opt.Measured {
		cols = append(cols, "BSSF smart meas", "NIX meas")
		var err error
		setup, err = buildMeasured(workload.Scaled(int(dt), opt.Scale), f, m)
		if err != nil {
			return err
		}
		ps = setup.params(f, float64(m))
	}
	t := newTable(cols...)
	for _, dq := range sweep {
		fdq := float64(dq)
		row := []any{dq, p.BSSFSmartSubset(fdq), p.BSSFRetrievalSubset(fdq), p.NIXRetrievalSubset(fdq)}
		if opt.Measured {
			dqScaled := scaleDq(dq, setup.cfg.V, 13000)
			if dqScaled < setup.cfg.Dt {
				dqScaled = setup.cfg.Dt
			}
			// The smart strategy at scale: cap the zero slices at
			// F − m_q(D_q^opt) of the scaled model.
			scaledOpt := ps.BSSFSubsetDqOpt()
			maxZero := 0
			if float64(dqScaled) < scaledOpt {
				maxZero = int(math.Round(float64(f) - ps.Mq(scaledOpt)))
			}
			mb, err := setup.avgCost(setup.bssf, signature.Subset, dqScaled, opt.Trials, opt.Seed,
				core.WithMaxZeroSlices(maxZero))
			if err != nil {
				return err
			}
			mn, err := setup.avgCost(setup.nix, signature.Subset, dqScaled, opt.Trials, opt.Seed)
			if err != nil {
				return err
			}
			row = append(row, mb, mn)
		}
		t.addf(row...)
	}
	t.fprint(w)
	fmt.Fprintf(w, "  (pages; D_q^opt = %.0f; paper: smart BSSF constant below D_q^opt and far below NIX)\n", dqOpt)
	return nil
}

func runFig9(w io.Writer, opt Options) error {
	return runSmartSubset(w, opt, 10, 2, 500, fig8Sweep)
}

func runFig10(w io.Writer, opt Options) error {
	return runSmartSubset(w, opt, 100, 3, 2500,
		[]int{100, 150, 200, 300, 500, 700, 1000, 1500, 2000, 3000})
}
