package experiments

import (
	"math"
	"testing"

	"sigfile/internal/costmodel"
)

// These golden tests pin the analytical model to the worked numbers
// recorded in EXPERIMENTS.md (themselves the paper's narration and
// Table 6), so a refactor of the cost formulas cannot silently drift
// the reproduction. Tolerances are half a unit in the last printed
// digit.

func near(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.3f, want %.1f (±%.2f)", name, got, want, tol)
	}
}

// TestGoldenFig4 pins the m = m_opt retrieval costs of Figure 4:
// NIX 27.6 → 6.0 → … → 30.0 over Dq=1..10, SSF F=250 at 294.6 (Dq=1)
// on its flat 245-page scan, BSSF F=250 from 66.4 to 125.0.
func TestGoldenFig4(t *testing.T) {
	p250 := costmodel.Paper(10, 250, 0).WithOptimalM()

	near(t, "NIX RC(1)", p250.NIXRetrievalSuperset(1), 27.6, 0.05)
	near(t, "NIX RC(2)", p250.NIXRetrievalSuperset(2), 6.0, 0.05)
	near(t, "NIX RC(10)", p250.NIXRetrievalSuperset(10), 30.0, 0.05)

	near(t, "SSF F=250 RC(1)", p250.SSFRetrievalSuperset(1), 294.6, 0.05)

	near(t, "BSSF F=250 RC(1)", p250.BSSFRetrievalSuperset(1), 66.4, 0.05)
	near(t, "BSSF F=250 RC(10)", p250.BSSFRetrievalSuperset(10), 125.0, 0.05)
}

// TestGoldenFig5 pins the small-m worked values of Figure 5 (F=500):
// the paper's own narration RC(Dq=3, m=2) = 6.0 and the model's
// RC(2, m=2) = 4.2; at Dq=1 BSSF m=2 costs 138.8 vs NIX 27.6.
func TestGoldenFig5(t *testing.T) {
	m2 := costmodel.Paper(10, 500, 2)

	near(t, "BSSF m=2 RC(3)", m2.BSSFRetrievalSuperset(3), 6.0, 0.05)
	near(t, "BSSF m=2 RC(2)", m2.BSSFRetrievalSuperset(2), 4.2, 0.05)
	near(t, "BSSF m=2 RC(1)", m2.BSSFRetrievalSuperset(1), 138.8, 0.05)
	near(t, "NIX RC(1)", m2.NIXRetrievalSuperset(1), 27.6, 0.05)
}

// TestGoldenTable6 pins the storage costs of the paper's four design
// points (Table 6) and the §6 SSF/NIX ratios.
func TestGoldenTable6(t *testing.T) {
	cases := []struct {
		dt             float64
		f, m           int
		ssf, bssf, nix float64
		ratioPct       float64
	}{
		{10, 250, 2, 308, 313, 690, 45},
		{10, 500, 2, 556, 563, 690, 81},
		{100, 1000, 3, 1063, 1063, 6531, 16},
		{100, 2500, 3, 2525, 2563, 6531, 39},
	}
	for _, c := range cases {
		p := costmodel.Paper(c.dt, c.f, float64(c.m))
		near(t, "SSF SC", p.SSFStorage(), c.ssf, 0.5)
		near(t, "BSSF SC", p.BSSFStorage(), c.bssf, 0.5)
		near(t, "NIX SC", p.NIXStorage(), c.nix, 0.5)
		near(t, "SSF/NIX %", 100*p.SSFStorage()/p.NIXStorage(), c.ratioPct, 0.5)
	}
}

// TestGoldenTable5 pins the NIX storage decomposition (Table 5):
// lp=685, nlp=5, SC=690 at Dt=10 and lp=6500, nlp=31, SC=6531 at
// Dt=100.
func TestGoldenTable5(t *testing.T) {
	p10 := costmodel.Paper(10, 250, 2)
	near(t, "Dt=10 leaf", p10.NIXLeafPages(), 685, 0.5)
	near(t, "Dt=10 nonleaf", p10.NIXNonLeafPages(), 5, 0.5)
	near(t, "Dt=10 SC", p10.NIXStorage(), 690, 0.5)

	p100 := costmodel.Paper(100, 1000, 3)
	near(t, "Dt=100 leaf", p100.NIXLeafPages(), 6500, 0.5)
	near(t, "Dt=100 nonleaf", p100.NIXNonLeafPages(), 31, 0.5)
	near(t, "Dt=100 SC", p100.NIXStorage(), 6531, 0.5)
}
