package experiments

import (
	"fmt"
	"io"
	"math"

	"sigfile/internal/core"
	"sigfile/internal/signature"
	"sigfile/internal/workload"
)

// This file adds the reproduction's own experiment: a term-by-term
// cross-validation of the analytical model against the running system.
// The paper is purely analytical; this experiment is the evidence that
// the formulas describe a real implementation.

func init() {
	register(Experiment{
		ID:       "xval",
		Artifact: "Cross-validation (ours)",
		Title:    "Model vs measured page accesses, all facilities, both query types",
		Run:      runXval,
	})
}

func runXval(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	const f, m = 250, 2
	cfg := workload.Scaled(10, opt.Scale)
	setup, err := buildMeasured(cfg, f, m)
	if err != nil {
		return err
	}
	p := setup.params(f, m)
	// The measured runs resolve exact integer signature weights while the
	// model uses expectations; use the exact combinatorial false-drop
	// forms for the fairest comparison.
	p.UseExact = true

	t := newTable("facility", "query", "Dq", "model RC", "measured RC", "ratio")
	type point struct {
		am    core.AccessMethod
		pred  signature.Predicate
		dq    int
		model float64
	}
	var points []point
	for _, dq := range []int{1, 2, 3, 5, 10} {
		fdq := float64(dq)
		points = append(points,
			point{setup.ssf, signature.Superset, dq, p.SSFRetrievalSuperset(fdq)},
			point{setup.bssf, signature.Superset, dq, p.BSSFRetrievalSuperset(fdq)},
			point{setup.nix, signature.Superset, dq, p.NIXRetrievalSuperset(fdq)},
		)
	}
	for _, dq := range []int{10, 20, 50, 100} {
		if dq > cfg.V {
			continue
		}
		fdq := float64(dq)
		points = append(points,
			point{setup.ssf, signature.Subset, dq, p.SSFRetrievalSubset(fdq)},
			point{setup.bssf, signature.Subset, dq, p.BSSFRetrievalSubset(fdq)},
			point{setup.nix, signature.Subset, dq, p.NIXRetrievalSubset(fdq)},
		)
	}
	var logRatios []float64
	for _, pt := range points {
		meas, err := setup.avgCost(pt.am, pt.pred, pt.dq, opt.Trials, opt.Seed)
		if err != nil {
			return err
		}
		ratio := meas / pt.model
		logRatios = append(logRatios, math.Log(ratio))
		t.addf(pt.am.Name(), pt.pred.String(), pt.dq, pt.model, meas, fmt.Sprintf("%.2f", ratio))
	}
	t.fprint(w)

	// Geometric mean of measured/model across all points.
	sum := 0.0
	for _, lr := range logRatios {
		sum += lr
	}
	gm := math.Exp(sum / float64(len(logRatios)))
	fmt.Fprintf(w, "  geometric mean measured/model = %.3f over %d points (scale 1/%d: N=%d, V=%d, F=%d, m=%d)\n",
		gm, len(logRatios), opt.Scale, cfg.N, cfg.V, f, m)
	fmt.Fprintln(w, "  (ratios near 1.0 validate the cost model against the running system)")
	return nil
}
