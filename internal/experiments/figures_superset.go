package experiments

import (
	"fmt"
	"io"

	"sigfile/internal/core"
	"sigfile/internal/costmodel"
	"sigfile/internal/signature"
	"sigfile/internal/workload"
)

// This file reproduces the paper's worked drop examples (Figures 1–2) and
// the T ⊇ Q retrieval-cost figures (Figures 4–7).

func init() {
	register(Experiment{
		ID:       "fig1",
		Artifact: "Figure 1",
		Title:    "Actual drop and false drop (T ⊇ Q)",
		Run:      runFig1,
	})
	register(Experiment{
		ID:       "fig2",
		Artifact: "Figure 2",
		Title:    "Actual drop and false drop (T ⊆ Q)",
		Run:      runFig2,
	})
	register(Experiment{
		ID:       "fig4",
		Artifact: "Figure 4",
		Title:    "Retrieval cost RC, T ⊇ Q, Dt=10, m=m_opt",
		Run:      runFig4,
	})
	register(Experiment{
		ID:       "fig5",
		Artifact: "Figure 5",
		Title:    "Retrieval cost RC, T ⊇ Q, Dt=10, F=500, small m",
		Run:      runFig5,
	})
	register(Experiment{
		ID:       "fig6",
		Artifact: "Figure 6",
		Title:    "Smart retrieval cost, T ⊇ Q, Dt=10",
		Run:      runFig6,
	})
	register(Experiment{
		ID:       "fig7",
		Artifact: "Figure 7",
		Title:    "Smart retrieval cost, T ⊇ Q, Dt=100",
		Run:      runFig7,
	})
}

// runFig1 walks the paper's 8-bit example end to end through the real
// signature pipeline: the match condition admits the genuine superset
// (actual drop) and a colliding non-superset (false drop) while rejecting
// an unrelated target.
func runFig1(w io.Writer, _ Options) error {
	s := signature.MustNew(8, 2)
	query := []string{"Baseball", "Fishing"}
	qsig := s.SetSignatureStrings(query)
	fmt.Fprintf(w, "  query set %v -> query signature %s\n\n", query, qsig)

	t := newTable("target set", "signature", "matches", "truth", "classification")
	for _, target := range [][]string{
		{"Baseball", "Golf", "Fishing"},
		{"Baseball", "Football", "Tennis"},
		{"Chess", "Origami", "Karate"},
	} {
		tsig := s.SetSignatureStrings(target)
		match, err := signature.Matches(signature.Superset, tsig, qsig)
		if err != nil {
			return fmt.Errorf("fig1: match %v: %w", target, err)
		}
		truth, err := signature.EvaluateSets(signature.Superset, target, query)
		if err != nil {
			return fmt.Errorf("fig1: evaluate %v: %w", target, err)
		}
		t.addf(fmt.Sprintf("%v", target), tsig.String(), match, truth, classify(match, truth))
	}
	t.fprint(w)
	return nil
}

// runFig2 is the dual walk-through for T ⊆ Q.
func runFig2(w io.Writer, _ Options) error {
	s := signature.MustNew(8, 2)
	query := []string{"Baseball", "Football", "Tennis"}
	qsig := s.SetSignatureStrings(query)
	fmt.Fprintf(w, "  query set %v -> query signature %s\n\n", query, qsig)

	t := newTable("target set", "signature", "matches", "truth", "classification")
	for _, target := range [][]string{
		{"Baseball", "Football"},
		{"Baseball", "Fishing"},
		{"Chess", "Origami", "Karate", "Yoga"},
	} {
		tsig := s.SetSignatureStrings(target)
		match, err := signature.Matches(signature.Subset, tsig, qsig)
		if err != nil {
			return fmt.Errorf("fig2: match %v: %w", target, err)
		}
		truth, err := signature.EvaluateSets(signature.Subset, target, query)
		if err != nil {
			return fmt.Errorf("fig2: evaluate %v: %w", target, err)
		}
		t.addf(fmt.Sprintf("%v", target), tsig.String(), match, truth, classify(match, truth))
	}
	t.fprint(w)
	return nil
}

func classify(match, truth bool) string {
	switch {
	case match && truth:
		return "actual drop"
	case match && !truth:
		return "false drop"
	case !match && truth:
		return "FALSE DISMISSAL (bug!)"
	default:
		return "no drop"
	}
}

// runFig4 prints RC(Dq) for Dq = 1..10 with m = m_opt: the regime where
// NIX beats both signature files.
func runFig4(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	p250 := costmodel.Paper(10, 250, 0).WithOptimalM()
	p500 := costmodel.Paper(10, 500, 0).WithOptimalM()

	cols := []string{"Dq", "SSF F=250", "BSSF F=250", "SSF F=500", "BSSF F=500", "NIX"}
	var setup *measuredSetup
	var ps costmodel.Params
	if opt.Measured {
		cols = append(cols, "SSF500 meas", "BSSF500 meas", "NIX meas", "(model@scale)")
		cfg := workload.Scaled(10, opt.Scale)
		m := signature.OptimalMInt(500, 10)
		var err error
		setup, err = buildMeasured(cfg, 500, m)
		if err != nil {
			return err
		}
		ps = setup.params(500, float64(m))
	}
	t := newTable(cols...)
	for dq := 1.0; dq <= 10; dq++ {
		row := []any{
			int(dq),
			p250.SSFRetrievalSuperset(dq), p250.BSSFRetrievalSuperset(dq),
			p500.SSFRetrievalSuperset(dq), p500.BSSFRetrievalSuperset(dq),
			p250.NIXRetrievalSuperset(dq),
		}
		if opt.Measured {
			mssf, err := setup.avgCost(setup.ssf, signature.Superset, int(dq), opt.Trials, opt.Seed)
			if err != nil {
				return err
			}
			mbssf, err := setup.avgCost(setup.bssf, signature.Superset, int(dq), opt.Trials, opt.Seed)
			if err != nil {
				return err
			}
			mnix, err := setup.avgCost(setup.nix, signature.Superset, int(dq), opt.Trials, opt.Seed)
			if err != nil {
				return err
			}
			row = append(row, mssf, mbssf, mnix,
				fmt.Sprintf("%.1f/%.1f/%.1f",
					ps.SSFRetrievalSuperset(dq), ps.BSSFRetrievalSuperset(dq), ps.NIXRetrievalSuperset(dq)))
		}
		t.addf(row...)
	}
	t.fprint(w)
	fmt.Fprintln(w, "  (pages; paper: NIX lowest, SSF dominated by its scan, BSSF grows with m_q)")
	return nil
}

// runFig5 prints RC(Dq) for BSSF with m = 1..4 at F = 500 against NIX:
// the small-m regime where BSSF becomes competitive.
func runFig5(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	cols := []string{"Dq", "BSSF m=1", "BSSF m=2", "BSSF m=3", "BSSF m=4", "NIX"}
	var setup *measuredSetup
	if opt.Measured {
		cols = append(cols, "BSSF m=2 meas", "model@scale")
		var err error
		setup, err = buildMeasured(workload.Scaled(10, opt.Scale), 500, 2)
		if err != nil {
			return err
		}
	}
	t := newTable(cols...)
	ms := []costmodel.Params{
		costmodel.Paper(10, 500, 1), costmodel.Paper(10, 500, 2),
		costmodel.Paper(10, 500, 3), costmodel.Paper(10, 500, 4),
	}
	for dq := 1.0; dq <= 10; dq++ {
		row := []any{int(dq)}
		for _, p := range ms {
			row = append(row, p.BSSFRetrievalSuperset(dq))
		}
		row = append(row, ms[0].NIXRetrievalSuperset(dq))
		if opt.Measured {
			meas, err := setup.avgCost(setup.bssf, signature.Superset, int(dq), opt.Trials, opt.Seed)
			if err != nil {
				return err
			}
			row = append(row, meas, setup.params(500, 2).BSSFRetrievalSuperset(dq))
		}
		t.addf(row...)
	}
	t.fprint(w)
	fmt.Fprintln(w, "  (pages; paper: small-m BSSF comparable to NIX except Dq=1)")
	return nil
}

// runSmartSuperset is the common engine for Figures 6 and 7: smart
// retrieval for T ⊇ Q at the figure's Dt and the paper's two F values.
func runSmartSuperset(w io.Writer, opt Options, dt float64, m int, fs [2]int) error {
	opt = opt.withDefaults()
	pA := costmodel.Paper(dt, fs[0], float64(m))
	pB := costmodel.Paper(dt, fs[1], float64(m))
	cols := []string{"Dq",
		fmt.Sprintf("BSSF F=%d", fs[0]), fmt.Sprintf("BSSF F=%d", fs[1]),
		"NIX smart", "k*(BSSF)", "k*(NIX)"}
	var setup *measuredSetup
	var ps costmodel.Params
	if opt.Measured {
		cols = append(cols, fmt.Sprintf("BSSF F=%d meas", fs[0]), "NIX meas")
		cfg := workload.Scaled(int(dt), opt.Scale)
		var err error
		setup, err = buildMeasured(cfg, fs[0], m)
		if err != nil {
			return err
		}
		ps = setup.params(fs[0], float64(m))
	}
	t := newTable(cols...)
	maxDq := 10.0
	for dq := 1.0; dq <= maxDq; dq++ {
		cA, kA := pA.BSSFSmartSuperset(dq)
		cB, _ := pB.BSSFSmartSuperset(dq)
		cN, kN := pA.NIXSmartSuperset(dq)
		row := []any{int(dq), cA, cB, cN, kA, kN}
		if opt.Measured {
			_, kScaled := ps.BSSFSmartSuperset(dq)
			mb, err := setup.avgCost(setup.bssf, signature.Superset, int(dq), opt.Trials, opt.Seed,
				core.WithMaxProbeElements(kScaled))
			if err != nil {
				return err
			}
			_, kNScaled := ps.NIXSmartSuperset(dq)
			mn, err := setup.avgCost(setup.nix, signature.Superset, int(dq), opt.Trials, opt.Seed,
				core.WithMaxProbeElements(kNScaled))
			if err != nil {
				return err
			}
			row = append(row, mb, mn)
		}
		t.addf(row...)
	}
	t.fprint(w)
	fmt.Fprintln(w, "  (pages; paper: NIX wins only at Dq=1, costs flatten beyond the optimal probe size)")
	return nil
}

func runFig6(w io.Writer, opt Options) error {
	return runSmartSuperset(w, opt, 10, 2, [2]int{250, 500})
}

func runFig7(w io.Writer, opt Options) error {
	return runSmartSuperset(w, opt, 100, 3, [2]int{1000, 2500})
}
