// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) plus the cross-validation and ablation studies this
// reproduction adds.
//
// Each experiment prints the same rows or series the paper's artifact
// shows, computed from the analytical cost model (internal/costmodel).
// Experiments marked measurable additionally run the real access methods
// (internal/core) on a scaled-down instance and print measured page
// counts next to the model's prediction at the same scale, so the
// implementation and the analysis validate each other.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Options tunes how experiments run.
type Options struct {
	// Measured also runs the real implementations where supported.
	Measured bool
	// Scale divides the paper's N and V for measured runs (the model is
	// evaluated at the same scaled parameters, so the comparison stays
	// apples-to-apples). 1 = full paper scale. Default 8.
	Scale int
	// Trials is the number of random queries averaged per measured data
	// point. Default 5.
	Trials int
	// Seed makes measured runs reproducible. Default 1.
	Seed int64
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 8
	}
	if o.Trials <= 0 {
		o.Trials = 5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Experiment reproduces one artifact of the paper.
type Experiment struct {
	// ID is the short name used by cmd/sigbench (-experiment fig4).
	ID string
	// Title is the paper's caption.
	Title string
	// Artifact says what the paper shows ("Figure 4", "Table 6", ...).
	Artifact string
	// Run writes the reproduced rows/series to w.
	Run func(w io.Writer, opt Options) error
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %s", e.ID))
	}
	registry[e.ID] = e
}

// All returns every experiment ordered by ID group (figures, tables,
// cross-validation, ablations).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return orderKey(out[i].ID) < orderKey(out[j].ID) })
	return out
}

// orderKey sorts fig1 < fig2 < ... < fig10 < tab5 ... < xval < ablations.
func orderKey(id string) string {
	var prefix string
	var num int
	if n, _ := fmt.Sscanf(id, "fig%d", &num); n == 1 {
		prefix = "0fig"
	} else if n, _ := fmt.Sscanf(id, "tab%d", &num); n == 1 {
		prefix = "1tab"
	} else {
		return "2" + id
	}
	return fmt.Sprintf("%s%04d", prefix, num)
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// RunAll executes every experiment in order. The full-scale measurement
// (which always builds N=32000 facilities) only runs when opt.Measured
// is set; everything else runs regardless.
func RunAll(w io.Writer, opt Options) error {
	for _, e := range All() {
		if e.ID == "fullscale" && !opt.Measured {
			fmt.Fprintf(w, "\n==== %s — skipped (pass -measured to run the N=32000 build) ====\n", e.ID)
			continue
		}
		fmt.Fprintf(w, "\n==== %s — %s (%s) ====\n", e.ID, e.Artifact, e.Title)
		if err := e.Run(w, opt); err != nil {
			return fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
	}
	return nil
}
