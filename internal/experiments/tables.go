package experiments

import (
	"fmt"
	"io"

	"sigfile/internal/costmodel"
	"sigfile/internal/pagestore"
	"sigfile/internal/workload"
)

// This file reproduces the paper's Tables 5–7.

func init() {
	register(Experiment{
		ID:       "tab5",
		Artifact: "Table 5",
		Title:    "Storage cost of NIX",
		Run:      runTab5,
	})
	register(Experiment{
		ID:       "tab6",
		Artifact: "Table 6",
		Title:    "Storage cost of SSF, BSSF and NIX",
		Run:      runTab6,
	})
	register(Experiment{
		ID:       "tab7",
		Artifact: "Table 7",
		Title:    "Update costs UC_I and UC_D",
		Run:      runTab7,
	})
}

func runTab5(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	cols := []string{"Dt", "lp", "nlp", "SC"}
	if opt.Measured {
		cols = append(cols, "lp meas@scale", "nlp meas", "SC meas", "model@scale")
	}
	t := newTable(cols...)
	for _, dt := range []float64{10, 100} {
		p := costmodel.Paper(dt, 500, 2)
		row := []any{int(dt), p.NIXLeafPages(), p.NIXNonLeafPages(), p.NIXStorage()}
		if opt.Measured {
			setup, err := buildMeasured(workload.Scaled(int(dt), opt.Scale), 500, 2)
			if err != nil {
				return err
			}
			pb, err := setup.nix.Tree().Breakdown()
			if err != nil {
				return err
			}
			ps := setup.params(500, 2)
			row = append(row, pb.Leaf, pb.Internal, setup.nix.StoragePages(),
				fmt.Sprintf("%.0f/%.0f/%.0f", ps.NIXLeafPages(), ps.NIXNonLeafPages(), ps.NIXStorage()))
		}
		t.addf(row...)
	}
	t.fprint(w)
	fmt.Fprintln(w, "  (paper: lp=685 nlp=5 SC=690 for Dt=10; lp=6500 nlp=31 SC=6531 for Dt=100.")
	fmt.Fprintln(w, "   Measured leaf counts run ~40-70% above the model: the model assumes fully")
	fmt.Fprintln(w, "   packed leaves and a uniform postings length d, while a real B⁺-tree sits")
	fmt.Fprintln(w, "   near ln2 ≈ 69% occupancy after splits and spills oversized postings to")
	fmt.Fprintln(w, "   overflow pages — the paper's NIX storage numbers are a best case)")
	return nil
}

// tab6Configs are the paper's four design points.
var tab6Configs = []struct {
	dt float64
	f  int
	m  int // the small m §5 recommends
}{
	{10, 250, 2}, {10, 500, 2}, {100, 1000, 3}, {100, 2500, 3},
}

func runTab6(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	cols := []string{"Dt", "F", "SSF SC", "BSSF SC", "NIX SC", "SSF/NIX"}
	if opt.Measured {
		cols = append(cols, "SSF meas@scale", "BSSF meas", "NIX meas", "model@scale")
	}
	t := newTable(cols...)
	for _, c := range tab6Configs {
		p := costmodel.Paper(c.dt, c.f, float64(c.m))
		row := []any{int(c.dt), c.f, p.SSFStorage(), p.BSSFStorage(), p.NIXStorage(),
			fmt.Sprintf("%.0f%%", 100*p.SSFStorage()/p.NIXStorage())}
		if opt.Measured {
			setup, err := buildMeasured(workload.Scaled(int(c.dt), opt.Scale), c.f, c.m)
			if err != nil {
				return err
			}
			ps := setup.params(c.f, float64(c.m))
			row = append(row, setup.ssf.StoragePages(), setup.bssf.StoragePages(), setup.nix.StoragePages(),
				fmt.Sprintf("%.0f/%.0f/%.0f", ps.SSFStorage(), ps.BSSFStorage(), ps.NIXStorage()))
		}
		t.addf(row...)
	}
	t.fprint(w)
	fmt.Fprintln(w, "  (pages; paper Table 6: 308/313/690, 556/563/690, 1063/1063/6531, 2525/2563/6531)")
	return nil
}

func runTab7(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	cols := []string{"Dt", "F",
		"SSF UC_I", "SSF UC_D", "BSSF UC_I", "BSSF UC_I improved", "BSSF UC_D", "NIX UC_I", "NIX UC_D"}
	t := newTable(cols...)
	for _, c := range tab6Configs {
		p := costmodel.Paper(c.dt, c.f, float64(c.m))
		t.addf(int(c.dt), c.f,
			p.SSFInsertCost(), p.SSFDeleteCost(),
			p.BSSFInsertCost(), p.BSSFImprovedInsertCost(), p.BSSFDeleteCost(),
			p.NIXInsertCost(), p.NIXDeleteCost())
	}
	t.fprint(w)
	fmt.Fprintln(w, "  (pages; paper Table 7: SSF 2/31.5, BSSF F+1/31.5, NIX 3Dt/3Dt;")
	fmt.Fprintln(w, "   the improved column is the optimization §6 anticipates: write only the set bits' slices)")
	if opt.Measured {
		return runTab7Measured(w, opt)
	}
	return nil
}

// runTab7Measured measures steady-state update costs on a scaled
// instance: writes per insert and page accesses per delete.
func runTab7Measured(w io.Writer, opt Options) error {
	cfg := workload.Scaled(10, opt.Scale)
	setup, err := buildMeasured(cfg, 250, 2)
	if err != nil {
		return err
	}
	inst := setup.inst
	// Grow the instance by a few objects and meter the facilities.
	qs, err := inst.Queries(workload.RandomQuery, cfg.Dt, 3, opt.Seed+99)
	if err != nil {
		return err
	}
	t := newTable("facility", "insert pages (meas)", "delete pages (meas)", "model (UC_I / UC_D)")
	type metered interface {
		Insert(uint64, []string) error
		Delete(uint64, []string) error
	}
	ps := setup.params(250, 2)
	for _, x := range []struct {
		name  string
		am    metered
		store *pagestore.MemStore
		model string
	}{
		{"SSF", setup.ssf, setup.ssfStore, fmt.Sprintf("%.1f / %.1f", ps.SSFInsertCost(), ps.SSFDeleteCost())},
		{"BSSF", setup.bssf, setup.bssfStore, fmt.Sprintf("%.1f / %.1f (improved %.1f)", ps.BSSFInsertCost(), ps.BSSFDeleteCost(), ps.BSSFImprovedInsertCost())},
		{"NIX", setup.nix, setup.nixStore, fmt.Sprintf("%.1f / %.1f", ps.NIXInsertCost(), ps.NIXDeleteCost())},
	} {
		oid := uint64(cfg.N + 1)
		inst.Sets[oid] = qs[0]
		r0, w0 := x.store.TotalStats()
		if err := x.am.Insert(oid, qs[0]); err != nil {
			return err
		}
		r1, w1 := x.store.TotalStats()
		insertCost := (r1 - r0) + (w1 - w0)
		if err := x.am.Delete(oid, qs[0]); err != nil {
			return err
		}
		r2, w2 := x.store.TotalStats()
		deleteCost := (r2 - r1) + (w2 - w1)
		delete(inst.Sets, oid)
		t.addf(x.name, float64(insertCost), float64(deleteCost), x.model)
	}
	fmt.Fprintln(w)
	t.fprint(w)
	fmt.Fprintf(w, "  (measured at scale 1/%d: N=%d; the measured BSSF insert uses the improved\n", opt.Scale, cfg.N)
	fmt.Fprintln(w, "   write-only-set-slices path; deletes scan the OID file from the front, and the")
	fmt.Fprintln(w, "   victim sits at the end here, so the measured delete reads the whole OID file")
	fmt.Fprintln(w, "   where the model quotes the SC_OID/2 average)")
	return nil
}
