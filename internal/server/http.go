package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	api "sigfile/api/v1"
	"sigfile/internal/obs"
)

// maxHTTPBody bounds request bodies; matches the binary protocol's
// frame cap so neither transport accepts more than the other.
const maxHTTPBody = api.MaxFrame

// httpHandler builds the versioned route table. Tenant-scoped data
// operations are POSTs under /v1/t/{tenant}/; management and
// introspection endpoints sit beside them.
func (s *Server) httpHandler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST "+api.PathPrefix+"/tenants", s.handleCreateTenant)
	mux.HandleFunc("GET "+api.PathPrefix+"/tenants", s.handleListTenants)
	mux.HandleFunc("GET "+api.PathPrefix+"/health", s.handleHealth)

	mux.HandleFunc("POST "+api.PathPrefix+"/t/{tenant}/insert", s.tenantOp("insert", s.handleInsert))
	mux.HandleFunc("POST "+api.PathPrefix+"/t/{tenant}/delete", s.tenantOp("delete", s.handleDelete))
	mux.HandleFunc("POST "+api.PathPrefix+"/t/{tenant}/search", s.tenantOp("search", s.handleSearch))
	mux.HandleFunc("POST "+api.PathPrefix+"/t/{tenant}/search_many", s.tenantOp("search_many", s.handleSearchMany))
	mux.HandleFunc("POST "+api.PathPrefix+"/t/{tenant}/explain", s.tenantOp("explain", s.handleExplain))

	mux.HandleFunc("GET "+api.PathPrefix+"/tenants/{tenant}/stats", s.tenantOp("stats", s.handleStats))

	// Unversioned conveniences: liveness probe and metrics scrape.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		obs.Default().WritePrometheus(w)
	})
	return mux
}

// writeJSON writes a success body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// writeErr writes the JSON error envelope with the code's HTTP status.
func writeErr(w http.ResponseWriter, err error) {
	werr := api.WrapErr(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(werr.Code.HTTPStatus())
	json.NewEncoder(w).Encode(api.ErrorBody{Error: werr})
}

// readJSON decodes a bounded request body into v.
func readJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxHTTPBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return api.Errorf(api.CodeBadRequest, "decode request: %v", err)
	}
	return nil
}

// tenantOp wraps a tenant-scoped handler with tenant resolution,
// metrics, and error envelope handling.
func (s *Server) tenantOp(op string, h func(t *tenant, w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		t, err := s.Tenant(r.PathValue("tenant"))
		if err == nil {
			err = h(t, w, r)
		}
		s.observe(op, "http", start, err)
		if err != nil {
			// A canceled request usually has no reader left; write the
			// envelope anyway for the deadline (non-disconnect) case.
			writeErr(w, err)
		}
	}
}

func (s *Server) handleCreateTenant(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req api.CreateTenantRequest
	if err := readJSON(w, r, &req); err != nil {
		s.observe("create_tenant", "http", start, err)
		writeErr(w, err)
		return
	}
	info, err := s.CreateTenant(req.Name, req.Config)
	s.observe("create_tenant", "http", start, err)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, info)
}

func (s *Server) handleListTenants(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, api.TenantsResponse{Tenants: s.TenantInfos()})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Health())
}

func (s *Server) handleInsert(t *tenant, w http.ResponseWriter, r *http.Request) error {
	var req api.InsertRequest
	if err := readJSON(w, r, &req); err != nil {
		return err
	}
	ctx, cancel := s.requestCtx(r.Context(), req.DeadlineMS)
	defer cancel()
	oid, err := t.insert(ctx, req.Elems)
	if err != nil {
		return err
	}
	writeJSON(w, api.InsertResponse{OID: oid})
	return nil
}

func (s *Server) handleDelete(t *tenant, w http.ResponseWriter, r *http.Request) error {
	var req api.DeleteRequest
	if err := readJSON(w, r, &req); err != nil {
		return err
	}
	ctx, cancel := s.requestCtx(r.Context(), req.DeadlineMS)
	defer cancel()
	if err := t.delete(ctx, req.OID); err != nil {
		return err
	}
	writeJSON(w, api.DeleteResponse{})
	return nil
}

func (s *Server) handleSearch(t *tenant, w http.ResponseWriter, r *http.Request) error {
	var req api.SearchRequest
	if err := readJSON(w, r, &req); err != nil {
		return err
	}
	ctx, cancel := s.requestCtx(r.Context(), req.DeadlineMS)
	defer cancel()
	resp, err := t.search(ctx, &req)
	if err != nil {
		// Distinguish a client disconnect (conn ctx canceled) from the
		// deadline for metrics; both surface through the same ctx plumbing.
		if errors.Is(err, context.Canceled) && r.Context().Err() != nil {
			err = api.Errorf(api.CodeCanceled, "client disconnected")
		}
		return err
	}
	writeJSON(w, resp)
	return nil
}

func (s *Server) handleSearchMany(t *tenant, w http.ResponseWriter, r *http.Request) error {
	var req api.SearchManyRequest
	if err := readJSON(w, r, &req); err != nil {
		return err
	}
	ctx, cancel := s.requestCtx(r.Context(), req.DeadlineMS)
	defer cancel()
	resp, err := t.searchMany(ctx, &req)
	if err != nil {
		return err
	}
	writeJSON(w, resp)
	return nil
}

func (s *Server) handleStats(t *tenant, w http.ResponseWriter, r *http.Request) error {
	writeJSON(w, t.stats())
	return nil
}

func (s *Server) handleExplain(t *tenant, w http.ResponseWriter, r *http.Request) error {
	var req api.ExplainRequest
	if err := readJSON(w, r, &req); err != nil {
		return err
	}
	resp, err := t.explain(&req)
	if err != nil {
		return err
	}
	writeJSON(w, resp)
	return nil
}
