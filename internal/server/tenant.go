package server

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	api "sigfile/api/v1"
	"sigfile/internal/core"
	"sigfile/internal/obs"
	"sigfile/internal/oodb"
	"sigfile/internal/pagestore"
	"sigfile/internal/query"
	"sigfile/internal/signature"
)

// A tenant is one isolated database behind the server: its own
// directory, its own write-ahead log and checkpoint schedule, its own
// facilities built from its own core.Open config. Nothing is shared
// between tenants except the process — a tenant whose disk fills or
// whose facility degrades affects only its own requests, and the health
// endpoint reports exactly which one.
//
// Writes are serialized through a bounded queue drained by one worker
// goroutine per tenant. The queue is the backpressure boundary: when it
// is full the server answers ErrOverloaded (HTTP 429) immediately
// instead of letting slow storage grow an unbounded backlog. The worker
// group-commits — it drains a small batch, applies every operation,
// then makes the whole batch durable with one WAL commit — so the
// per-insert commit cost amortizes under concurrent writers while every
// acknowledged write is on disk before its response leaves the server.
// Searches do not queue: facilities serve concurrent readers internally.

// itemClass and setAttr name the single class/attribute of a tenant's
// schema: a tenant database indexes one set-valued attribute, exactly
// the paper's "set access facility over one indexed attribute" shape.
const (
	itemClass = "Item"
	setAttr   = "elems"
)

// tenantFileName persists the tenant's configuration inside its
// directory, so a restart reopens every tenant with the facilities it
// was created with.
const tenantFileName = "tenant.json"

// maxTenantName bounds tenant name length on the wire.
const maxTenantName = 64

// validTenantName gates names used as directory components: lowercase
// letters, digits, '-', '_', '.' (not leading), ≤ maxTenantName bytes.
func validTenantName(name string) bool {
	if name == "" || len(name) > maxTenantName || name[0] == '.' {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return true
}

// writeOp is one queued mutation: run applies it (under the worker
// goroutine, so tenant writes never race each other), done receives the
// verdict exactly once after the batch it rode in committed.
type writeOp struct {
	run  func() error
	done chan error
}

// tenant is the runtime state of one tenant database.
type tenant struct {
	name string
	dir  string
	cfg  api.TenantConfig

	ds  *pagestore.DurableStore // commit/checkpoint scope
	db  *oodb.Database
	eng *query.Engine

	// mu guards closed and the enqueue/close handoff; ops are enqueued
	// under RLock so Close's close(queue) under Lock cannot race a send.
	mu     sync.RWMutex
	closed bool
	queue  chan writeOp

	workerDone  chan struct{}
	tickerStop  chan struct{}
	checkpoints *obs.Counter
	queueDepth  *obs.Gauge
}

// tenantSchema is the fixed single-class schema every tenant database
// uses: one object = one OID plus one set-valued attribute.
func tenantSchema() *oodb.Schema {
	return oodb.MustSchema(oodb.MustClass(itemClass, oodb.AttrDef{Name: setAttr, Kind: oodb.KindStringSet}))
}

// parseKind maps a wire facility kind onto query.IndexKind.
func parseKind(s string) (query.IndexKind, error) {
	switch strings.ToLower(s) {
	case "ssf":
		return query.KindSSF, nil
	case "bssf":
		return query.KindBSSF, nil
	case "fssf":
		return query.KindFSSF, nil
	case "nix":
		return query.KindNIX, nil
	default:
		return 0, api.Errorf(api.CodeBadRequest, "unknown facility kind %q", s)
	}
}

// normalizeConfig applies the tenant-config defaults and validates the
// facility list.
func normalizeConfig(cfg api.TenantConfig) (api.TenantConfig, error) {
	if len(cfg.Kinds) == 0 {
		cfg.Kinds = []string{"bssf"}
	}
	seen := map[string]bool{}
	for i, k := range cfg.Kinds {
		k = strings.ToLower(k)
		cfg.Kinds[i] = k
		if _, err := parseKind(k); err != nil {
			return cfg, err
		}
		if seen[k] {
			return cfg, api.Errorf(api.CodeBadRequest, "duplicate facility kind %q", k)
		}
		seen[k] = true
	}
	if cfg.F == 0 {
		cfg.F = 256
	}
	if cfg.M == 0 {
		cfg.M = 2
	}
	if cfg.F < 8 || cfg.F > 1<<16 || cfg.M < 1 || cfg.M > cfg.F {
		return cfg, api.Errorf(api.CodeBadRequest, "signature design F=%d m=%d out of range", cfg.F, cfg.M)
	}
	if cfg.Shards == 1 {
		cfg.Shards = 0 // one shard is the unsharded facility
	}
	if cfg.Shards < 0 || cfg.Shards > 64 {
		return cfg, api.Errorf(api.CodeBadRequest, "shard count %d out of range [2,64]", cfg.Shards)
	}
	return cfg, nil
}

// openTenant opens (or initializes) the tenant rooted at dir. create
// distinguishes "must not exist yet" (create-tenant request) from
// "reopen whatever is there" (startup discovery).
func (s *Server) openTenant(name, dir string, cfg api.TenantConfig, create bool) (*tenant, error) {
	cfgPath := filepath.Join(dir, tenantFileName)
	if create {
		if _, err := os.Stat(cfgPath); err == nil {
			return nil, api.Errorf(api.CodeAlreadyExists, "tenant %q already exists", name)
		}
		var err error
		if cfg, err = normalizeConfig(cfg); err != nil {
			return nil, err
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("server: create tenant dir: %w", err)
		}
		data, err := json.MarshalIndent(cfg, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(cfgPath, append(data, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("server: persist tenant config: %w", err)
		}
	} else {
		data, err := os.ReadFile(cfgPath)
		if err != nil {
			return nil, fmt.Errorf("server: read tenant config: %w", err)
		}
		if err := json.Unmarshal(data, &cfg); err != nil {
			return nil, fmt.Errorf("server: tenant config %s: %w", cfgPath, err)
		}
		if cfg, err = normalizeConfig(cfg); err != nil {
			return nil, err
		}
	}

	ds, err := pagestore.OpenDurableStore(filepath.Join(dir, "data"))
	if err != nil {
		return nil, fmt.Errorf("server: open tenant store: %w", err)
	}
	var store pagestore.Store = ds
	if s.cfg.WrapStore != nil {
		store = s.cfg.WrapStore(name, store)
	}
	db, err := oodb.NewDatabase(tenantSchema(), store)
	if err != nil {
		ds.Close()
		return nil, fmt.Errorf("server: open tenant db: %w", err)
	}
	eng, err := query.NewEngine(db)
	if err != nil {
		ds.Close()
		return nil, err
	}
	scheme, err := signature.New(cfg.F, cfg.M)
	if err != nil {
		ds.Close()
		return nil, api.Errorf(api.CodeBadRequest, "signature design: %v", err)
	}
	var iopts []query.IndexOption
	if cfg.LSM {
		iopts = append(iopts, query.WithLSMIndex())
		if cfg.LSMMemtableOps > 0 {
			iopts = append(iopts, query.WithLSMMemtableSize(cfg.LSMMemtableOps))
		}
		if cfg.LSMCompactAfter > 0 {
			iopts = append(iopts, query.WithLSMCompactAfter(cfg.LSMCompactAfter))
		}
	}
	if cfg.Shards > 1 {
		iopts = append(iopts, query.WithShardedIndex(cfg.Shards))
	}
	for _, ks := range cfg.Kinds {
		kind, err := parseKind(ks)
		if err != nil {
			ds.Close()
			return nil, err
		}
		if _, err := eng.CreateIndex(itemClass, setAttr, kind, scheme, store, iopts...); err != nil {
			ds.Close()
			return nil, fmt.Errorf("server: tenant %s: index %s: %w", name, ks, err)
		}
	}
	// Make the fresh (or just-recovered) state durable before serving.
	if err := ds.Checkpoint(); err != nil {
		ds.Close()
		return nil, fmt.Errorf("server: tenant %s: initial checkpoint: %w", name, err)
	}

	t := &tenant{
		name:        name,
		dir:         dir,
		cfg:         cfg,
		ds:          ds,
		db:          db,
		eng:         eng,
		queue:       make(chan writeOp, s.cfg.WriteQueue),
		workerDone:  make(chan struct{}),
		tickerStop:  make(chan struct{}),
		checkpoints: obs.Default().Counter("sigfile_server_checkpoints_total", "tenant", name),
		queueDepth:  obs.Default().Gauge("sigfile_server_write_queue_depth", "tenant", name),
	}
	go t.writeWorker()
	interval := s.cfg.CheckpointEvery
	if cfg.CheckpointSec > 0 {
		interval = time.Duration(cfg.CheckpointSec) * time.Second
	}
	if interval > 0 {
		go t.checkpointLoop(interval)
	}
	return t, nil
}

// enqueue submits a mutation to the tenant's write queue and waits for
// its durable acknowledgment. A full queue is the backpressure verdict:
// the caller gets ErrOverloaded without blocking. ctx firing while the
// op waits returns the ctx error to the caller; the op itself still
// applies (and commits) when its turn comes — the ambiguity every
// networked store has once a request is accepted, documented on the
// wire as the DEADLINE_EXCEEDED/CANCELED codes being non-verdicts.
func (t *tenant) enqueue(ctx context.Context, run func() error) error {
	op := writeOp{run: run, done: make(chan error, 1)}
	t.mu.RLock()
	if t.closed {
		t.mu.RUnlock()
		return api.Errorf(api.CodeShuttingDown, "tenant %s is shutting down", t.name)
	}
	select {
	case t.queue <- op:
		t.mu.RUnlock()
		t.queueDepth.Set(int64(len(t.queue)))
	default:
		t.mu.RUnlock()
		srvOverloaded.Inc()
		return ErrOverloaded
	}
	select {
	case err := <-op.done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// writeWorker is the tenant's single writer: it drains operations in
// small batches, applies them, and commits each batch with one WAL
// write before acknowledging any of its operations.
func (t *tenant) writeWorker() {
	defer close(t.workerDone)
	const maxBatch = 64
	batch := make([]writeOp, 0, maxBatch)
	for op := range t.queue {
		batch = append(batch[:0], op)
	drain:
		for len(batch) < maxBatch {
			select {
			case more, ok := <-t.queue:
				if !ok {
					break drain
				}
				batch = append(batch, more)
			default:
				break drain
			}
		}
		t.queueDepth.Set(int64(len(t.queue)))
		errs := make([]error, len(batch))
		for i, b := range batch {
			errs[i] = b.run()
		}
		// One commit covers the batch: every op acknowledged below is
		// durable, and ops that failed above report their own error
		// (their partial effects are bounded by the facility health
		// machine, which degrades the tenant on terminal write faults).
		cerr := t.ds.Commit()
		for i, b := range batch {
			if errs[i] == nil {
				errs[i] = cerr
			}
			b.done <- errs[i]
		}
	}
}

// checkpointLoop checkpoints the tenant on its schedule. The checkpoint
// rides the write queue so it serializes with mutations; a full queue
// skips the tick (the next one retries) rather than blocking.
func (t *tenant) checkpointLoop(interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			t.mu.RLock()
			if t.closed {
				t.mu.RUnlock()
				return
			}
			op := writeOp{run: t.checkpointNow, done: make(chan error, 1)}
			select {
			case t.queue <- op:
				t.mu.RUnlock()
				<-op.done
			default:
				t.mu.RUnlock()
			}
		case <-t.tickerStop:
			return
		}
	}
}

// checkpointNow commits and truncates the WAL, counting the checkpoint.
func (t *tenant) checkpointNow() error {
	if err := t.ds.Checkpoint(); err != nil {
		return err
	}
	t.checkpoints.Inc()
	return nil
}

// close drains the tenant: no new writes, worker finished, one final
// checkpoint, store closed. Callers must have stopped producing first
// (the server shuts its listeners down before closing tenants).
func (t *tenant) close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.queue)
	t.mu.Unlock()
	close(t.tickerStop)
	<-t.workerDone
	err := t.checkpointNow()
	if cerr := t.ds.Close(); err == nil {
		err = cerr
	}
	return err
}

// insert applies one insert through the write queue and returns the
// assigned OID.
func (t *tenant) insert(ctx context.Context, elems []string) (uint64, error) {
	if len(elems) == 0 {
		return 0, api.Errorf(api.CodeBadRequest, "insert needs at least one element")
	}
	var oid oodb.OID
	err := t.enqueue(ctx, func() error {
		var err error
		oid, err = t.eng.Insert(itemClass, map[string]oodb.Value{setAttr: oodb.StringSet(elems...)})
		return err
	})
	return uint64(oid), err
}

// delete removes one object through the write queue.
func (t *tenant) delete(ctx context.Context, oid uint64) error {
	return t.enqueue(ctx, func() error {
		return t.eng.Delete(oodb.OID(oid))
	})
}

// queryFor builds the single-predicate query the wire search/explain
// requests describe.
func queryFor(pred string, elems []string) (*query.Query, error) {
	op, err := wirePredicate(pred)
	if err != nil {
		return nil, err
	}
	return &query.Query{
		Class: itemClass,
		Where: &query.SetPredicate{Attr: setAttr, Op: op, Elems: elems},
	}, nil
}

// wirePredicate maps a wire predicate string onto the signature
// package's operator.
func wirePredicate(p string) (signature.Predicate, error) {
	switch p {
	case api.PredSuperset:
		return signature.Superset, nil
	case api.PredSubset:
		return signature.Subset, nil
	case api.PredOverlap:
		return signature.Overlap, nil
	case api.PredEquals:
		return signature.Equals, nil
	case api.PredContains:
		return signature.Contains, nil
	default:
		return 0, api.Errorf(api.CodeInvalidPredicate, "unknown predicate %q (want one of %s)",
			p, strings.Join(api.Predicates, ", "))
	}
}

// execOptions maps wire search options onto the engine's per-request
// overrides.
func execOptions(o *api.SearchOptions) *query.ExecOptions {
	if o == nil {
		return nil
	}
	return &query.ExecOptions{
		Parallelism:      o.Parallelism,
		MaxProbeElements: o.MaxProbeElements,
		MaxZeroSlices:    o.MaxZeroSlices,
	}
}

// search answers one wire search request against the tenant.
func (t *tenant) search(ctx context.Context, req *api.SearchRequest) (*api.SearchResponse, error) {
	q, err := queryFor(req.Pred, req.Query)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	rs, err := t.eng.ExecuteOptions(ctx, q, execOptions(req.Options))
	if err != nil {
		return nil, err
	}
	resp := &api.SearchResponse{
		OIDs:      make([]uint64, 0, len(rs.Objects)),
		Plan:      rs.Plan,
		ElapsedUS: time.Since(start).Microseconds(),
	}
	for _, o := range rs.Objects {
		resp.OIDs = append(resp.OIDs, uint64(o.OID))
	}
	if rs.IndexStats != nil {
		resp.Stats = wireStats(rs.IndexStats)
	}
	return resp, nil
}

// wireStats copies the library's cost decomposition into the frozen
// wire type.
func wireStats(s *core.SearchStats) *api.SearchStats {
	return &api.SearchStats{
		QueryCardinality: s.QueryCardinality,
		ProbedElements:   s.ProbedElements,
		SlicesRead:       s.SlicesRead,
		IndexPages:       s.IndexPages,
		OIDPages:         s.OIDPages,
		ObjectFetches:    s.ObjectFetches,
		Candidates:       s.Candidates,
		Results:          s.Results,
		FalseDrops:       s.FalseDrops,
		TotalPages:       s.TotalPages(),
	}
}

// searchMany answers a batch sequentially on the request goroutine;
// intra-search parallelism comes from the per-search options, and
// cross-request concurrency from the server's connection handling.
func (t *tenant) searchMany(ctx context.Context, req *api.SearchManyRequest) (*api.SearchManyResponse, error) {
	resp := &api.SearchManyResponse{Results: make([]api.SearchResponse, 0, len(req.Searches))}
	for i := range req.Searches {
		one := &api.SearchRequest{
			Pred:    req.Searches[i].Pred,
			Query:   req.Searches[i].Query,
			Options: req.Options,
		}
		r, err := t.search(ctx, one)
		if err != nil {
			return nil, fmt.Errorf("search %d: %w", i, err)
		}
		resp.Results = append(resp.Results, *r)
	}
	return resp, nil
}

// explain plans one wire search without executing it, returning the
// planner's full cost table.
func (t *tenant) explain(req *api.ExplainRequest) (*api.ExplainResponse, error) {
	q, err := queryFor(req.Pred, req.Query)
	if err != nil {
		return nil, err
	}
	text, err := t.eng.ExplainQuery(q)
	if err != nil {
		return nil, err
	}
	return &api.ExplainResponse{Text: text}, nil
}

// health snapshots the tenant for the health endpoint.
func (t *tenant) health() api.TenantHealth {
	th := api.TenantHealth{
		Name:       t.name,
		Objects:    t.db.Count(itemClass),
		QueueDepth: len(t.queue),
		QueueCap:   cap(t.queue),
	}
	for _, am := range t.eng.Indexes(itemClass, setAttr) {
		th.Facilities = append(th.Facilities, api.FacilityHealth{
			Kind:    am.Name(),
			Health:  core.HealthOf(am).String(),
			Pages:   am.StoragePages(),
			Entries: am.Count(),
		})
	}
	return th
}

// stats snapshots every facility's catalog statistics for the stats
// endpoint — the numbers the tenant's own cost-based planner reads,
// exported on the wire.
func (t *tenant) stats() *api.StatsResponse {
	resp := &api.StatsResponse{
		Tenant:  t.name,
		Objects: t.db.Count(itemClass),
	}
	for _, am := range t.eng.Indexes(itemClass, setAttr) {
		d, ok := am.(core.Describer)
		if !ok {
			continue
		}
		fs := d.Describe()
		wf := api.FacilityStats{
			Kind:          fs.Facility,
			Count:         fs.Count,
			AvgSetCard:    fs.AvgSetCard,
			F:             fs.F,
			M:             fs.M,
			Frames:        fs.Frames,
			DistinctElems: fs.DistinctElems,
			LookupPages:   fs.LookupPages,
			StoragePages:  fs.StoragePages,
			Health:        fs.Health.String(),
			Shards:        fs.Shards,
			SegmentCounts: fs.SegmentCounts,
			MemtableCount: fs.MemtableCount,
		}
		for _, h := range fs.ShardHealth {
			wf.ShardHealth = append(wf.ShardHealth, h.String())
		}
		resp.Facilities = append(resp.Facilities, wf)
	}
	return resp
}

// info describes the tenant for the list endpoint.
func (t *tenant) info() api.TenantInfo {
	return api.TenantInfo{Name: t.name, Objects: t.db.Count(itemClass), Config: t.cfg}
}
