package server

import (
	"context"
	"errors"
	"net"
	"time"

	api "sigfile/api/v1"
)

// serveBinary accepts binary-protocol connections until the listener
// closes (Shutdown).
func (s *Server) serveBinary(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.binClosed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		s.binConns.Add(1)
		go func() {
			defer s.binConns.Done()
			s.serveBinaryConn(conn)
		}()
	}
}

// serveBinaryConn speaks the protocol on one connection: handshake,
// then a sequential request/response loop.
//
// Frames are read by a dedicated goroutine feeding a channel, so the
// handler loop can select on {next frame, connection gone, server
// shutting down}. When the read side fails — the client disconnected —
// the per-connection context is canceled, which cancels whatever search
// is in flight through the same SearchContext plumbing a deadline uses.
// That is the disconnect-cancellation contract the e2e test exercises.
func (s *Server) serveBinaryConn(conn net.Conn) {
	defer conn.Close()

	ver, err := api.ReadHandshake(conn)
	if err != nil {
		return
	}
	if ver != api.BinaryVersion {
		body := api.EncodeError(api.Errorf(api.CodeBadRequest,
			"unsupported binary protocol version %d (server speaks %d)", ver, api.BinaryVersion))
		api.WriteFrame(conn, append([]byte{api.MsgError}, body...))
		return
	}
	if err := api.WriteHandshake(conn); err != nil {
		return
	}

	connCtx, cancel := context.WithCancel(context.Background())
	defer cancel()

	frames := make(chan []byte)
	go func() {
		defer close(frames)
		for {
			payload, err := api.ReadFrame(conn)
			if err != nil {
				cancel() // client gone: cancel any in-flight request
				return
			}
			select {
			case frames <- payload:
			case <-connCtx.Done():
				return
			}
		}
	}()

	for {
		var payload []byte
		var ok bool
		select {
		case payload, ok = <-frames:
			if !ok {
				return
			}
		case <-s.binClosed:
			body := api.EncodeError(api.Errorf(api.CodeShuttingDown, "server is shutting down"))
			api.WriteFrame(conn, append([]byte{api.MsgError}, body...))
			return
		}
		if len(payload) == 0 {
			return
		}
		msg, body := payload[0], payload[1:]
		respType, respBody := s.handleBinary(connCtx, msg, body)
		if err := api.WriteFrame(conn, append([]byte{respType}, respBody...)); err != nil {
			return
		}
	}
}

// handleBinary dispatches one decoded request and encodes its outcome.
func (s *Server) handleBinary(connCtx context.Context, msg byte, body []byte) (byte, []byte) {
	start := time.Now()
	op := "unknown"
	var resp []byte
	err := func() error {
		switch msg {
		case api.MsgInsert:
			op = "insert"
			tn, req, derr := api.DecodeInsertRequest(body)
			if derr != nil {
				return api.WrapErr(api.Errorf(api.CodeBadRequest, "%v", derr))
			}
			t, terr := s.Tenant(tn)
			if terr != nil {
				return terr
			}
			ctx, cancel := s.requestCtx(connCtx, req.DeadlineMS)
			defer cancel()
			oid, ierr := t.insert(ctx, req.Elems)
			if ierr != nil {
				return ierr
			}
			resp = api.EncodeInsertResponse(&api.InsertResponse{OID: oid})
			return nil

		case api.MsgDelete:
			op = "delete"
			tn, req, derr := api.DecodeDeleteRequest(body)
			if derr != nil {
				return api.Errorf(api.CodeBadRequest, "%v", derr)
			}
			t, terr := s.Tenant(tn)
			if terr != nil {
				return terr
			}
			ctx, cancel := s.requestCtx(connCtx, req.DeadlineMS)
			defer cancel()
			if derr := t.delete(ctx, req.OID); derr != nil {
				return derr
			}
			resp = nil
			return nil

		case api.MsgSearch:
			op = "search"
			tn, req, derr := api.DecodeSearchRequest(body)
			if derr != nil {
				return api.Errorf(api.CodeBadRequest, "%v", derr)
			}
			t, terr := s.Tenant(tn)
			if terr != nil {
				return terr
			}
			ctx, cancel := s.requestCtx(connCtx, req.DeadlineMS)
			defer cancel()
			r, serr := t.search(ctx, req)
			if serr != nil {
				return serr
			}
			resp = api.EncodeSearchResponse(r)
			return nil

		case api.MsgSearchMany:
			op = "search_many"
			tn, req, derr := api.DecodeSearchManyRequest(body)
			if derr != nil {
				return api.Errorf(api.CodeBadRequest, "%v", derr)
			}
			t, terr := s.Tenant(tn)
			if terr != nil {
				return terr
			}
			ctx, cancel := s.requestCtx(connCtx, req.DeadlineMS)
			defer cancel()
			r, serr := t.searchMany(ctx, req)
			if serr != nil {
				return serr
			}
			resp = api.EncodeSearchManyResponse(r)
			return nil

		case api.MsgExplain:
			op = "explain"
			tn, req, derr := api.DecodeExplainRequest(body)
			if derr != nil {
				return api.Errorf(api.CodeBadRequest, "%v", derr)
			}
			t, terr := s.Tenant(tn)
			if terr != nil {
				return terr
			}
			r, eerr := t.explain(req)
			if eerr != nil {
				return eerr
			}
			resp = api.EncodeExplainResponse(r)
			return nil

		case api.MsgStats:
			op = "stats"
			tn, derr := api.DecodeStatsRequest(body)
			if derr != nil {
				return api.Errorf(api.CodeBadRequest, "%v", derr)
			}
			t, terr := s.Tenant(tn)
			if terr != nil {
				return terr
			}
			resp = api.EncodeStatsResponse(t.stats())
			return nil

		case api.MsgHealth:
			op = "health"
			h := s.Health()
			resp = api.EncodeHealthResponse(&h)
			return nil

		default:
			return api.Errorf(api.CodeBadRequest, "unknown message type %d", msg)
		}
	}()
	s.observe(op, "binary", start, err)
	if err != nil {
		return api.MsgError, api.EncodeError(api.WrapErr(err))
	}
	return msg | api.MsgResponseFlag, resp
}
