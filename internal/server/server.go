package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	api "sigfile/api/v1"
	"sigfile/internal/obs"
	"sigfile/internal/pagestore"
)

// Server is the sigfiled daemon: per-tenant signature-file databases
// behind a versioned HTTP/JSON API and a compact binary protocol.
//
// The server owns process-wide concerns — listener lifecycle,
// connection limits, deadline defaults, graceful shutdown — while every
// data-path concern (WAL, checkpoints, backpressure, facility health)
// lives with the tenant that owns it (tenant.go).
type Server struct {
	cfg Config

	mu      sync.RWMutex
	tenants map[string]*tenant
	closing bool

	httpSrv   *http.Server
	httpLn    net.Listener
	binLn     net.Listener
	binConns  sync.WaitGroup
	binClosed chan struct{}

	reqMS *obs.Histogram
}

// Config configures a Server. The zero value is usable for tests: no
// listeners are opened until ListenHTTP/ListenBinary, and DataDir
// defaults to a required field checked by New.
type Config struct {
	// DataDir is the root directory; each tenant is a subdirectory.
	DataDir string
	// DefaultDeadline bounds requests that do not carry their own
	// DeadlineMS; zero means 30s.
	DefaultDeadline time.Duration
	// CheckpointEvery is the default per-tenant checkpoint interval;
	// zero means 10s. A tenant's CheckpointSec overrides it.
	CheckpointEvery time.Duration
	// WriteQueue caps each tenant's pending-write queue (the
	// backpressure boundary); zero means 256.
	WriteQueue int
	// MaxConns caps concurrently served connections per listener;
	// zero means 1024.
	MaxConns int
	// WrapStore, when non-nil, wraps each tenant's page store before the
	// database and facilities see it. Tests use it to inject fault or
	// delay stores; production leaves it nil.
	WrapStore func(tenant string, s pagestore.Store) pagestore.Store
}

// ErrOverloaded is the backpressure verdict: the tenant's bounded write
// queue is full. It maps to CodeOverloaded / HTTP 429 on the wire.
var ErrOverloaded = api.Errorf(api.CodeOverloaded, "write queue full, retry with backoff")

// Process-wide serving metrics, registered on the default registry so
// /metrics serves them next to the library's facility metrics.
var (
	srvRequests = func(op, proto string) *obs.Counter {
		return obs.Default().Counter("sigfile_server_requests_total", "op", op, "proto", proto)
	}
	srvErrors = func(code api.Code) *obs.Counter {
		return obs.Default().Counter("sigfile_server_errors_total", "code", string(code))
	}
	srvOverloaded  = obs.Default().Counter("sigfile_server_overloaded_total")
	srvCanceled    = obs.Default().Counter("sigfile_server_canceled_total")
	srvActiveConns = obs.Default().Gauge("sigfile_server_active_conns")
)

// New opens a server over cfg.DataDir, reopening every tenant directory
// found there (a tenant is any subdirectory holding a tenant.json).
func New(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("server: DataDir is required")
	}
	if cfg.DefaultDeadline <= 0 {
		cfg.DefaultDeadline = 30 * time.Second
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 10 * time.Second
	}
	if cfg.WriteQueue <= 0 {
		cfg.WriteQueue = 256
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 1024
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: data dir: %w", err)
	}
	s := &Server{
		cfg:       cfg,
		tenants:   map[string]*tenant{},
		binClosed: make(chan struct{}),
		reqMS: obs.Default().Histogram("sigfile_server_request_ms",
			[]float64{0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000, 5000}),
	}
	entries, err := os.ReadDir(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		if _, err := os.Stat(filepath.Join(cfg.DataDir, name, tenantFileName)); err != nil {
			continue
		}
		t, err := s.openTenant(name, filepath.Join(cfg.DataDir, name), api.TenantConfig{}, false)
		if err != nil {
			closeTenants(s.tenants)
			return nil, fmt.Errorf("server: reopen tenant %s: %w", name, err)
		}
		s.tenants[name] = t
	}
	return s, nil
}

// CreateTenant creates and opens a new tenant database.
func (s *Server) CreateTenant(name string, cfg api.TenantConfig) (api.TenantInfo, error) {
	if !validTenantName(name) {
		return api.TenantInfo{}, api.Errorf(api.CodeBadRequest,
			"invalid tenant name %q (want [a-z0-9._-]{1,%d}, no leading dot)", name, maxTenantName)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return api.TenantInfo{}, api.Errorf(api.CodeShuttingDown, "server is shutting down")
	}
	if _, ok := s.tenants[name]; ok {
		return api.TenantInfo{}, api.Errorf(api.CodeAlreadyExists, "tenant %q already exists", name)
	}
	t, err := s.openTenant(name, filepath.Join(s.cfg.DataDir, name), cfg, true)
	if err != nil {
		return api.TenantInfo{}, err
	}
	s.tenants[name] = t
	return t.info(), nil
}

// Tenant resolves a tenant by name.
func (s *Server) Tenant(name string) (*tenant, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closing {
		return nil, api.Errorf(api.CodeShuttingDown, "server is shutting down")
	}
	t, ok := s.tenants[name]
	if !ok {
		return nil, api.Errorf(api.CodeNotFound, "no tenant %q", name)
	}
	return t, nil
}

// TenantInfos lists every tenant, sorted by name.
func (s *Server) TenantInfos() []api.TenantInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	infos := make([]api.TenantInfo, 0, len(s.tenants))
	for _, t := range s.tenants {
		infos = append(infos, t.info())
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// Health snapshots every tenant and facility for the health endpoint.
func (s *Server) Health() api.HealthResponse {
	s.mu.RLock()
	defer s.mu.RUnlock()
	resp := api.HealthResponse{Status: "ok", Version: api.Version}
	for _, t := range s.tenants {
		th := t.health()
		for _, f := range th.Facilities {
			if f.Health != "healthy" {
				resp.Status = "degraded"
			}
		}
		resp.Tenants = append(resp.Tenants, th)
	}
	sort.Slice(resp.Tenants, func(i, j int) bool { return resp.Tenants[i].Name < resp.Tenants[j].Name })
	return resp
}

// requestCtx derives the per-request context: the client's DeadlineMS
// when given, the server default otherwise, both layered over the
// connection context so a client disconnect cancels the work mid-flight.
func (s *Server) requestCtx(parent context.Context, deadlineMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultDeadline
	if deadlineMS > 0 {
		d = time.Duration(deadlineMS) * time.Millisecond
	}
	return context.WithTimeout(parent, d)
}

// observe records one request's outcome in the serving metrics.
func (s *Server) observe(op, proto string, start time.Time, err error) {
	srvRequests(op, proto).Inc()
	s.reqMS.Observe(float64(time.Since(start).Microseconds()) / 1000)
	if err == nil {
		return
	}
	code := api.CodeOf(err)
	srvErrors(code).Inc()
	if code == api.CodeCanceled {
		srvCanceled.Inc()
	}
}

// ListenHTTP starts serving the HTTP/JSON API on addr and returns the
// bound address (useful with ":0").
func (s *Server) ListenHTTP(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: s.httpHandler()}
	lln := limitListener(ln, s.cfg.MaxConns)
	s.setHTTP(srv, lln)
	go func() {
		if err := srv.Serve(lln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "sigfiled: http serve: %v\n", err)
		}
	}()
	return ln.Addr().String(), nil
}

// ListenBinary starts serving the binary protocol on addr and returns
// the bound address.
func (s *Server) ListenBinary(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	bln := limitListener(ln, s.cfg.MaxConns)
	s.setBinary(bln)
	go s.serveBinary(bln)
	return ln.Addr().String(), nil
}

// setHTTP / setBinary publish the listener fields under the lock so
// Shutdown (possibly concurrent) sees them.
func (s *Server) setHTTP(srv *http.Server, ln net.Listener) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.httpSrv = srv
	s.httpLn = ln
}

func (s *Server) setBinary(ln net.Listener) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.binLn = ln
}

// Shutdown stops the server gracefully: listeners close, in-flight
// requests get ctx to finish, then every tenant drains its write queue,
// takes a final checkpoint, and closes. Committed writes survive — the
// shutdown test reopens the data dir and checks every acknowledged OID.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil
	}
	s.closing = true
	httpSrv := s.httpSrv
	binLn := s.binLn
	tenants := s.tenants
	s.tenants = map[string]*tenant{}
	s.mu.Unlock()

	var errs []error
	if httpSrv != nil {
		if err := httpSrv.Shutdown(ctx); err != nil {
			errs = append(errs, fmt.Errorf("http shutdown: %w", err))
		}
	}
	if binLn != nil {
		close(s.binClosed)
		binLn.Close()
		done := make(chan struct{})
		go func() { s.binConns.Wait(); close(done) }()
		select {
		case <-done:
		case <-ctx.Done():
			errs = append(errs, fmt.Errorf("binary shutdown: %w", ctx.Err()))
		}
	}
	if err := closeTenants(tenants); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// closeTenants closes every tenant (final checkpoint included). The
// caller has already taken sole ownership of the map — Shutdown swaps
// it out under the lock, New's error path never published the server —
// so no lock is held here.
func closeTenants(tenants map[string]*tenant) error {
	names := make([]string, 0, len(tenants))
	for name := range tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	var errs []error
	for _, name := range names {
		if err := tenants[name].close(); err != nil {
			errs = append(errs, fmt.Errorf("tenant %s: %w", name, err))
		}
	}
	return errors.Join(errs...)
}

// limitListener caps concurrently accepted connections with a
// semaphore; Accept blocks while the cap is reached. (The x/net
// LimitListener shape, restated locally — the module is stdlib-only.)
func limitListener(ln net.Listener, n int) net.Listener {
	return &limitedListener{Listener: ln, sem: make(chan struct{}, n)}
}

type limitedListener struct {
	net.Listener
	sem chan struct{}
}

func (l *limitedListener) Accept() (net.Conn, error) {
	l.sem <- struct{}{}
	c, err := l.Listener.Accept()
	if err != nil {
		<-l.sem
		return nil, err
	}
	srvActiveConns.Add(1)
	return &limitedConn{Conn: c, release: func() {
		<-l.sem
		srvActiveConns.Add(-1)
	}}, nil
}

type limitedConn struct {
	net.Conn
	once    sync.Once
	release func()
}

func (c *limitedConn) Close() error {
	err := c.Conn.Close()
	c.once.Do(c.release)
	return err
}
