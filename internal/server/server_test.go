package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sigfile"
	api "sigfile/api/v1"
	"sigfile/client"
	"sigfile/internal/pagestore"
)

// startServer opens a server over a fresh temp dir with both listeners
// bound to ephemeral ports, returning it plus the two addresses.
// Cleanup shuts it down unless the test already did.
func startServer(t *testing.T, mod func(*Config)) (srv *Server, httpURL, binAddr string) {
	t.Helper()
	cfg := Config{
		DataDir:         t.TempDir(),
		DefaultDeadline: 30 * time.Second,
		CheckpointEvery: 200 * time.Millisecond,
	}
	if mod != nil {
		mod(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ha, err := srv.ListenHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ba, err := srv.ListenBinary("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx) // idempotent; no-op if the test shut down already
	})
	return srv, "http://" + ha, ba
}

func elem(i int) string { return fmt.Sprintf("e%03d", i) }

func randSet(rng *rand.Rand, card int) []string {
	seen := map[int]bool{}
	out := make([]string, 0, card)
	for len(out) < card {
		v := rng.Intn(60)
		if !seen[v] {
			seen[v] = true
			out = append(out, elem(v))
		}
	}
	return out
}

// hasSuperset reports whether target ⊇ query.
func hasSuperset(target, query []string) bool {
	set := map[string]bool{}
	for _, e := range target {
		set[e] = true
	}
	for _, q := range query {
		if !set[q] {
			return false
		}
	}
	return true
}

// TestEndToEndTwoTenantsBothProtocols is the main e2e test: two tenants
// with different configurations, driven concurrently over HTTP and the
// binary protocol with inserts, searches, SearchMany and EXPLAIN, with
// every search answer checked against an exact in-test model.
func TestEndToEndTwoTenantsBothProtocols(t *testing.T) {
	_, httpURL, binAddr := startServer(t, nil)

	hc := client.New(httpURL)
	defer hc.Close()
	bc := client.Dial(binAddr)
	defer bc.Close()

	ctx := context.Background()
	if _, err := hc.CreateTenant(ctx, "alpha", api.TenantConfig{Kinds: []string{"bssf", "nix"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := hc.CreateTenant(ctx, "beta", api.TenantConfig{Kinds: []string{"ssf"}, LSM: true, F: 128, M: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := hc.CreateTenant(ctx, "alpha", api.TenantConfig{}); api.CodeOf(err) != api.CodeAlreadyExists {
		t.Fatalf("duplicate create: err = %v, want ALREADY_EXISTS", err)
	}
	if _, err := hc.CreateTenant(ctx, "Bad Name!", api.TenantConfig{}); api.CodeOf(err) != api.CodeBadRequest {
		t.Fatalf("bad name: err = %v, want BAD_REQUEST", err)
	}

	// Tenant isolation at the wire level: unknown tenant is NOT_FOUND
	// and maps to the sentinel-free 404 class.
	if _, err := hc.Search(ctx, "nope", api.PredOverlap, []string{"x"}, nil); api.CodeOf(err) != api.CodeNotFound {
		t.Fatalf("unknown tenant: err = %v, want NOT_FOUND", err)
	}

	// Concurrent writers and readers on both tenants over both protocols.
	type acked struct {
		tenant string
		oid    uint64
		elems  []string
	}
	var (
		mu    sync.Mutex
		model []acked
	)
	tenants := []string{"alpha", "beta"}
	clients := []*client.Client{hc, bc}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			c := clients[w%len(clients)]
			tn := tenants[w%len(tenants)]
			for i := 0; i < 30; i++ {
				elems := randSet(rng, 6)
				oid, err := c.Insert(ctx, tn, elems)
				if err != nil {
					errCh <- fmt.Errorf("worker %d insert: %w", w, err)
					return
				}
				mu.Lock()
				model = append(model, acked{tn, oid, elems})
				mu.Unlock()
				if i%5 == 0 {
					q := elems[:2]
					resp, err := c.Search(ctx, tn, api.PredSuperset, q, nil)
					if err != nil {
						errCh <- fmt.Errorf("worker %d search: %w", w, err)
						return
					}
					found := false
					for _, o := range resp.OIDs {
						if o == oid {
							found = true
							break
						}
					}
					if !found {
						errCh <- fmt.Errorf("worker %d: just-inserted oid %d not in superset result", w, oid)
						return
					}
				}
				if i%7 == 0 {
					if _, err := c.Explain(ctx, tn, api.PredSuperset, elems[:2]); err != nil {
						errCh <- fmt.Errorf("worker %d explain: %w", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Full-model check on both protocols: every acknowledged write is
	// found by an equals search, and the answer matches the exact model.
	for _, c := range clients {
		for _, a := range model {
			resp, err := c.Search(ctx, a.tenant, api.PredEquals, a.elems, nil)
			if err != nil {
				t.Fatalf("verify search: %v", err)
			}
			found := false
			for _, o := range resp.OIDs {
				if o == a.oid {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("acked oid %d (tenant %s) missing from equals search", a.oid, a.tenant)
			}
		}
	}

	// Cross-predicate spot check against the model on one tenant.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		q := randSet(rng, 2)
		resp, err := bc.Search(ctx, "alpha", api.PredSuperset, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := map[uint64]bool{}
		for _, a := range model {
			if a.tenant == "alpha" && hasSuperset(a.elems, q) {
				want[a.oid] = true
			}
		}
		if len(want) != len(resp.OIDs) {
			t.Fatalf("superset(%v): got %d oids, want %d", q, len(resp.OIDs), len(want))
		}
		for _, o := range resp.OIDs {
			if !want[o] {
				t.Fatalf("superset(%v): unexpected oid %d", q, o)
			}
		}
	}

	// SearchMany: batch of three, answers in order, over both protocols.
	items := []api.SearchItem{
		{Pred: api.PredOverlap, Query: []string{elem(1), elem(2)}},
		{Pred: api.PredSuperset, Query: []string{elem(3)}},
		{Pred: api.PredEquals, Query: model[0].elems},
	}
	for _, c := range clients {
		many, err := c.SearchMany(ctx, model[0].tenant, items, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(many.Results) != 3 {
			t.Fatalf("search_many returned %d results", len(many.Results))
		}
		found := false
		for _, o := range many.Results[2].OIDs {
			if o == model[0].oid {
				found = true
			}
		}
		if !found {
			t.Fatalf("search_many equals item missed oid %d", model[0].oid)
		}
	}

	// EXPLAIN over both protocols mentions the facility candidates.
	for _, c := range clients {
		ex, err := c.Explain(ctx, "alpha", api.PredSuperset, []string{elem(1), elem(2)})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(ex.Text, "BSSF") {
			t.Fatalf("explain output does not mention BSSF:\n%s", ex.Text)
		}
	}

	// Health reflects both tenants with their facilities.
	h, err := bc.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || len(h.Tenants) != 2 {
		t.Fatalf("health = %+v", h)
	}
	for _, th := range h.Tenants {
		if len(th.Facilities) == 0 || th.Objects == 0 {
			t.Fatalf("tenant health %+v missing facilities or objects", th)
		}
	}

	// Wire errors keep errors.Is across the boundary (satellite 2's
	// client-side half): an invalid predicate surfaces as the sentinel.
	_, err = hc.Search(ctx, "alpha", "frobnicate", []string{"x"}, nil)
	if !errors.Is(err, sigfile.ErrInvalidPredicate) {
		t.Fatalf("bad predicate error = %v, want errors.Is ErrInvalidPredicate", err)
	}
}

// slowStore wraps a Store so page reads stall while armed; it is the
// test's stand-in for a large instance whose searches take real time.
type slowStore struct {
	pagestore.Store
	delay time.Duration
	armed atomic.Bool
	reads atomic.Int64
}

func (s *slowStore) Open(name string) (pagestore.File, error) {
	f, err := s.Store.Open(name)
	if err != nil {
		return nil, err
	}
	return &slowFile{File: f, s: s}, nil
}

type slowFile struct {
	pagestore.File
	s *slowStore
}

func (f *slowFile) ReadPage(id pagestore.PageID, buf []byte) error {
	if f.s.armed.Load() {
		f.s.reads.Add(1)
		time.Sleep(f.s.delay)
	}
	return f.File.ReadPage(id, buf)
}

// TestDeadlineCancelsSearch maps a short request deadline onto the
// search's context: against a store whose every page read stalls, the
// request returns DEADLINE_EXCEEDED in about the deadline, not after
// the full scan.
func TestDeadlineCancelsSearch(t *testing.T) {
	slow := &slowStore{delay: 50 * time.Millisecond}
	_, httpURL, _ := startServer(t, func(c *Config) {
		c.WrapStore = func(tenant string, s pagestore.Store) pagestore.Store {
			slow.Store = s
			return slow
		}
	})
	hc := client.New(httpURL)
	defer hc.Close()

	ctx := context.Background()
	if _, err := hc.CreateTenant(ctx, "slow", api.TenantConfig{Kinds: []string{"ssf"}}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		if _, err := hc.Insert(ctx, "slow", randSet(rng, 6)); err != nil {
			t.Fatal(err)
		}
	}

	slow.armed.Store(true)
	defer slow.armed.Store(false)
	dctx, cancel := context.WithTimeout(ctx, 250*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := hc.Search(dctx, "slow", api.PredOverlap, []string{elem(1)}, nil)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("search on stalled store returned without error before the deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) && api.CodeOf(err) != api.CodeDeadlineExceeded {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to fire — cancellation not plumbed through", elapsed)
	}
}

// TestDisconnectCancelsSearch proves per-request cancellation on client
// disconnect: a binary-protocol client starts a search that would take
// many seconds against a stalled store, then drops the connection. The
// server must cancel the in-flight search — observed two ways: the
// canceled-requests counter moves, and shutdown completes immediately
// instead of waiting out the scan.
func TestDisconnectCancelsSearch(t *testing.T) {
	slow := &slowStore{delay: 100 * time.Millisecond}
	srv, httpURL, binAddr := startServer(t, func(c *Config) {
		c.WrapStore = func(tenant string, s pagestore.Store) pagestore.Store {
			slow.Store = s
			return slow
		}
	})
	hc := client.New(httpURL)
	defer hc.Close()

	ctx := context.Background()
	if _, err := hc.CreateTenant(ctx, "slow", api.TenantConfig{Kinds: []string{"ssf"}}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		if _, err := hc.Insert(ctx, "slow", randSet(rng, 6)); err != nil {
			t.Fatal(err)
		}
	}

	canceledBefore := srvCanceled.Value()
	slow.armed.Store(true)
	defer slow.armed.Store(false)

	// Dedicated binary client; its Close drops the connection while the
	// search is mid-scan on the server.
	bc := client.Dial(binAddr)
	done := make(chan error, 1)
	go func() {
		_, err := bc.Search(ctx, "slow", api.PredOverlap, []string{elem(1)}, nil)
		done <- err
	}()
	// Let the search reach the stalled store, then disconnect.
	deadline := time.Now().Add(5 * time.Second)
	for slow.reads.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if slow.reads.Load() == 0 {
		t.Fatal("search never reached the store")
	}
	bc.Close()
	if err := <-done; err == nil {
		t.Fatal("client search returned success after disconnect")
	}

	// The server-side search must observe the cancellation promptly.
	deadline = time.Now().Add(10 * time.Second)
	for srvCanceled.Value() == canceledBefore && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if srvCanceled.Value() == canceledBefore {
		t.Fatal("canceled-request counter never moved: in-flight search not canceled on disconnect")
	}

	// And with nothing left in flight, graceful shutdown is immediate.
	slow.armed.Store(false)
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown after disconnect: %v", err)
	}
}

// TestBackpressure fills a 1-slot write queue against a server whose
// store stalls on writes and asserts surplus inserts get the OVERLOADED
// verdict instead of queueing unboundedly.
func TestBackpressure(t *testing.T) {
	slow := &stallWriteStore{delay: 200 * time.Millisecond}
	_, httpURL, _ := startServer(t, func(c *Config) {
		c.WriteQueue = 1
		c.WrapStore = func(tenant string, s pagestore.Store) pagestore.Store {
			slow.Store = s
			return slow
		}
	})
	hc := client.New(httpURL)
	defer hc.Close()

	ctx := context.Background()
	if _, err := hc.CreateTenant(ctx, "busy", api.TenantConfig{}); err != nil {
		t.Fatal(err)
	}
	slow.armed.Store(true)
	defer slow.armed.Store(false)

	var overloaded atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 4; i++ {
				_, err := hc.Insert(ctx, "busy", randSet(rng, 4))
				if api.CodeOf(err) == api.CodeOverloaded {
					overloaded.Add(1)
					if !errors.Is(err, ErrOverloaded) {
						// Wire error carries the stable code; the server-side
						// sentinel equivalence is code-based, not identity.
						_ = err
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if overloaded.Load() == 0 {
		t.Fatal("no insert was rejected OVERLOADED despite a 1-slot queue and stalled writes")
	}
}

// stallWriteStore stalls page writes while armed.
type stallWriteStore struct {
	pagestore.Store
	delay time.Duration
	armed atomic.Bool
}

func (s *stallWriteStore) Open(name string) (pagestore.File, error) {
	f, err := s.Store.Open(name)
	if err != nil {
		return nil, err
	}
	return &stallWriteFile{File: f, s: s}, nil
}

type stallWriteFile struct {
	pagestore.File
	s *stallWriteStore
}

func (f *stallWriteFile) WritePage(id pagestore.PageID, buf []byte) error {
	if f.s.armed.Load() {
		time.Sleep(f.s.delay)
	}
	return f.File.WritePage(id, buf)
}

// TestGracefulShutdownUnderLoadLosesNothing drives concurrent inserts,
// shuts the server down mid-stream, reopens the same data directory,
// and asserts every acknowledged write is present — the no-lost-
// committed-writes contract of the graceful shutdown path. It also
// asserts every tenant checkpointed (reopen replays no WAL work and
// reports identical object counts).
func TestGracefulShutdownUnderLoadLosesNothing(t *testing.T) {
	dataDir := ""
	srv, httpURL, _ := startServer(t, func(c *Config) {
		dataDir = c.DataDir
	})
	hc := client.New(httpURL)
	defer hc.Close()

	ctx := context.Background()
	for _, tn := range []string{"t0", "t1"} {
		if _, err := hc.CreateTenant(ctx, tn, api.TenantConfig{Kinds: []string{"bssf"}}); err != nil {
			t.Fatal(err)
		}
	}

	type acked struct {
		tenant string
		oid    uint64
		elems  []string
	}
	var (
		mu    sync.Mutex
		model []acked
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 31))
			tn := []string{"t0", "t1"}[w%2]
			for {
				select {
				case <-stop:
					return
				default:
				}
				elems := randSet(rng, 5)
				oid, err := hc.Insert(ctx, tn, elems)
				if err != nil {
					// Shutdown racing the insert: unacknowledged, so it is
					// allowed to be absent after reopen. Stop writing.
					return
				}
				mu.Lock()
				model = append(model, acked{tn, oid, elems})
				mu.Unlock()
			}
		}(w)
	}

	// Let load build, then shut down underneath it.
	time.Sleep(300 * time.Millisecond)
	sctx, cancel := context.WithTimeout(ctx, 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown under load: %v", err)
	}
	close(stop)
	wg.Wait()

	mu.Lock()
	acks := append([]acked(nil), model...)
	mu.Unlock()
	if len(acks) == 0 {
		t.Fatal("no write was acknowledged before shutdown — test proves nothing")
	}

	// Reopen the same directory: every tenant must come back clean with
	// every acknowledged write present.
	srv2, err := New(Config{DataDir: dataDir})
	if err != nil {
		t.Fatalf("reopen after shutdown: %v", err)
	}
	defer func() {
		sctx2, cancel2 := context.WithTimeout(ctx, 10*time.Second)
		defer cancel2()
		srv2.Shutdown(sctx2)
	}()
	ha2, err := srv2.ListenHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hc2 := client.New("http://" + ha2)
	defer hc2.Close()

	infos := srv2.TenantInfos()
	if len(infos) != 2 {
		t.Fatalf("reopened server has %d tenants, want 2", len(infos))
	}
	counts := map[string]int{}
	for _, a := range acks {
		counts[a.tenant]++
	}
	for _, in := range infos {
		if in.Objects < counts[in.Name] {
			t.Errorf("tenant %s reopened with %d objects, acknowledged %d", in.Name, in.Objects, counts[in.Name])
		}
	}
	for _, a := range acks {
		resp, err := hc2.Search(ctx, a.tenant, api.PredEquals, a.elems, nil)
		if err != nil {
			t.Fatalf("reopen verify: %v", err)
		}
		found := false
		for _, o := range resp.OIDs {
			if o == a.oid {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("committed write lost: tenant %s oid %d absent after graceful shutdown + reopen", a.tenant, a.oid)
		}
	}
}

// TestCheckpointTicker asserts the per-tenant checkpoint schedule runs:
// with a fast interval, the checkpoint counter moves without any
// explicit flush.
func TestCheckpointTicker(t *testing.T) {
	srv, httpURL, _ := startServer(t, func(c *Config) {
		c.CheckpointEvery = 50 * time.Millisecond
	})
	hc := client.New(httpURL)
	defer hc.Close()
	ctx := context.Background()
	if _, err := hc.CreateTenant(ctx, "tick", api.TenantConfig{}); err != nil {
		t.Fatal(err)
	}
	tn, err := srv.Tenant("tick")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hc.Insert(ctx, "tick", []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tn.checkpoints.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if tn.checkpoints.Value() == 0 {
		t.Fatal("checkpoint ticker never fired")
	}
}

// TestStatsEndpoint drives GET /v1/tenants/{tenant}/stats and MsgStats
// against a sharded tenant: both protocols return the identical catalog
// snapshot, the shard layout is reported per facility, and the error
// surface matches the route's declared codes.
func TestStatsEndpoint(t *testing.T) {
	_, httpURL, binAddr := startServer(t, nil)
	hc := client.New(httpURL)
	defer hc.Close()
	bc := client.Dial(binAddr)
	defer bc.Close()
	ctx := context.Background()

	if _, err := hc.CreateTenant(ctx, "sh", api.TenantConfig{
		Kinds: []string{"bssf", "nix"}, Shards: 4,
	}); err != nil {
		t.Fatal(err)
	}
	// Out-of-range shard counts are rejected at create time.
	if _, err := hc.CreateTenant(ctx, "toomany", api.TenantConfig{Shards: 100}); api.CodeOf(err) != api.CodeBadRequest {
		t.Fatalf("shards=100: err = %v, want BAD_REQUEST", err)
	}

	const n = 40
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		if _, err := hc.Insert(ctx, "sh", randSet(rng, 5)); err != nil {
			t.Fatal(err)
		}
	}

	hs, err := hc.Stats(ctx, "sh")
	if err != nil {
		t.Fatal(err)
	}
	bs, err := bc.Stats(ctx, "sh")
	if err != nil {
		t.Fatal(err)
	}
	// Protocol parity: the JSON and binary forms carry the same snapshot.
	if fmt.Sprintf("%+v", hs) != fmt.Sprintf("%+v", bs) {
		t.Fatalf("stats diverge across protocols:\nhttp:   %+v\nbinary: %+v", hs, bs)
	}

	if hs.Tenant != "sh" || hs.Objects != n {
		t.Fatalf("tenant=%q objects=%d, want sh/%d", hs.Tenant, hs.Objects, n)
	}
	if len(hs.Facilities) != 2 {
		t.Fatalf("facilities = %+v, want BSSF and NIX", hs.Facilities)
	}
	for _, f := range hs.Facilities {
		if f.Count != n {
			t.Errorf("%s count = %d, want %d", f.Kind, f.Count, n)
		}
		if f.Shards != 4 || len(f.ShardHealth) != 4 {
			t.Errorf("%s shards = %d shard_health = %v, want K=4", f.Kind, f.Shards, f.ShardHealth)
		}
		for _, h := range f.ShardHealth {
			if h != "healthy" {
				t.Errorf("%s shard health %q, want healthy", f.Kind, h)
			}
		}
		if f.Health != "healthy" || f.StoragePages <= 0 {
			t.Errorf("%s health=%q pages=%d", f.Kind, f.Health, f.StoragePages)
		}
		if f.Kind == "BSSF" && (f.F != 256 || f.M != 2) {
			t.Errorf("BSSF design F=%d m=%d, want 256/2", f.F, f.M)
		}
		if f.Kind == "NIX" && f.DistinctElems <= 0 {
			t.Errorf("NIX distinct_elems = %d, want > 0", f.DistinctElems)
		}
	}

	// Unknown tenant is NOT_FOUND on both protocols.
	if _, err := hc.Stats(ctx, "nope"); api.CodeOf(err) != api.CodeNotFound {
		t.Fatalf("http stats unknown tenant: err = %v, want NOT_FOUND", err)
	}
	if _, err := bc.Stats(ctx, "nope"); api.CodeOf(err) != api.CodeNotFound {
		t.Fatalf("binary stats unknown tenant: err = %v, want NOT_FOUND", err)
	}
}
