package core

import (
	"context"
	"sync"

	"sigfile/internal/signature"
)

// Synchronized wraps an AccessMethod with a readers-writer lock so it can
// be shared across goroutines: searches run concurrently, updates
// exclusively.
//
// The package's own facilities (SSF, BSSF, NIX, FSSF) now carry this
// exact reader/writer contract internally and do not need the wrapper;
// it remains for third-party AccessMethod implementations that are not
// concurrency-safe on their own, and for callers that want one lock
// around a facility plus surrounding state.
type Synchronized struct {
	mu sync.RWMutex
	am AccessMethod
}

// Synchronize wraps am. Wrapping an already-synchronized method returns
// it unchanged.
func Synchronize(am AccessMethod) *Synchronized {
	if s, ok := am.(*Synchronized); ok {
		return s
	}
	return &Synchronized{am: am}
}

// Unwrap returns the underlying access method. Use only when no other
// goroutine can touch the wrapper.
func (s *Synchronized) Unwrap() AccessMethod { return s.am }

// Name implements AccessMethod.
func (s *Synchronized) Name() string { return s.am.Name() }

// Insert implements AccessMethod (exclusive).
func (s *Synchronized) Insert(oid uint64, elems []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.am.Insert(oid, elems)
}

// Delete implements AccessMethod (exclusive).
func (s *Synchronized) Delete(oid uint64, elems []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.am.Delete(oid, elems)
}

// Search implements AccessMethod (shared).
func (s *Synchronized) Search(pred signature.Predicate, query []string, opts ...SearchOption) (*Result, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.am.Search(pred, query, opts...)
}

// SearchContext implements AccessMethod (shared).
func (s *Synchronized) SearchContext(ctx context.Context, pred signature.Predicate, query []string, opts ...SearchOption) (*Result, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.am.SearchContext(ctx, pred, query, opts...)
}

// StoragePages implements AccessMethod (shared).
func (s *Synchronized) StoragePages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.am.StoragePages()
}

// Count implements AccessMethod (shared).
func (s *Synchronized) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.am.Count()
}

// Health implements HealthReporter by delegating to the wrapped method
// (healthy when it does not report).
func (s *Synchronized) Health() HealthState {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return HealthOf(s.am)
}

// MarkRepaired implements Repairer by delegating to the wrapped method
// when it supports repair; a no-op otherwise.
func (s *Synchronized) MarkRepaired() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.am.(Repairer); ok {
		r.MarkRepaired()
	}
}

var _ AccessMethod = (*Synchronized)(nil)
