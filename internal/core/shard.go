package core

import (
	"context"
	"fmt"
	"sort"

	"sigfile/internal/obs"
	"sigfile/internal/pagestore"
	"sigfile/internal/signature"
)

// ShardedFacility hash-partitions the OID space across K inner
// facilities (DESIGN.md §16). Each shard is a full facility of the
// configured kind — its own files under a `shard.%02d` store prefix, its
// own WAL when the store is durable, its own lock and health ladder —
// so writes to different shards never contend and a scatter-gather
// search drives K independent I/O streams.
//
// Insert and Delete route to the owning shard (shardOf, a fixed integer
// hash of the OID — stable across restarts, so a reopened store routes
// identically). A search scatters across every shard with the per-task
// slot-folding merge of forEachTask: per-shard results land in
// preallocated slots and fold in shard order, and because the partitions
// are disjoint and every shard returns ascending OIDs, the gathered
// result is byte-identical to an unsharded facility at any K and any
// parallelism.
//
// Composes with the LSM write path: Config{LSM: true, Shards: k} gives
// every shard its own memtable, segments and compaction schedule.
type ShardedFacility struct {
	cfg    Config
	kind   Kind
	src    SetSource
	shards []AccessMethod

	// smartM is the element weight the smart probe cap derives from
	// (0 for NIX, which probes a single element).
	smartM int
}

// maxShards bounds Config.Shards: beyond this the per-shard fixed costs
// (files, WALs, scatter overhead) dwarf any parallelism win.
const maxShards = 64

// shardOf is the partitioning function: a splitmix64-style finalizer
// over the OID, reduced mod k. A fixed integer hash (not map order, not
// insertion order) keeps the partition stable across processes and
// restarts, which reopening a persistent sharded store depends on.
func shardOf(oid uint64, k int) int {
	z := oid + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(k))
}

// newSharded builds (or reopens) the K-shard form of cfg. store is the
// (already prefix-wrapped) store; nil gets a fresh MemStore shared by
// the shards through their per-shard prefixes.
func newSharded(cfg Config, store pagestore.Store) (*ShardedFacility, error) {
	k := cfg.Shards
	if k < 2 || k > maxShards {
		return nil, fmt.Errorf("core: open %s: Shards must be in [2,%d], got %d", cfg.Kind, maxShards, k)
	}
	if store == nil {
		store = pagestore.NewMemStore()
	}
	s := &ShardedFacility{cfg: cfg, kind: cfg.Kind, src: cfg.Source}
	switch {
	case cfg.Kind == KindNIX:
		s.smartM = 0
	case cfg.FrameScheme != nil:
		s.smartM = cfg.FrameScheme.M()
	case cfg.Scheme != nil:
		s.smartM = cfg.Scheme.M()
	}
	s.shards = make([]AccessMethod, k)
	for i := range s.shards {
		inner := cfg
		inner.Shards = 0
		inner.Prefix = "" // already applied to store by Open
		inner.Store = pagestore.Prefixed(store, fmt.Sprintf("shard.%02d", i))
		am, err := Open(inner)
		if err != nil {
			return nil, fmt.Errorf("core: open shard %02d: %w", i, err)
		}
		s.shards[i] = am
	}
	return s, nil
}

// Name implements AccessMethod: the inner kind's name, so planner cost
// formulas select by facility exactly as for the unsharded form.
func (s *ShardedFacility) Name() string { return s.kind.String() }

// Shards returns K, the number of partitions.
func (s *ShardedFacility) Shards() int { return len(s.shards) }

// Shard exposes shard i for tests and repair tooling.
func (s *ShardedFacility) Shard(i int) AccessMethod { return s.shards[i] }

// Insert implements AccessMethod, routing to the owning shard.
func (s *ShardedFacility) Insert(oid uint64, elems []string) error {
	i := shardOf(oid, len(s.shards))
	if err := s.shards[i].Insert(oid, elems); err != nil {
		return fmt.Errorf("core: shard %02d insert: %w", i, err)
	}
	return nil
}

// Delete implements AccessMethod, routing to the owning shard.
func (s *ShardedFacility) Delete(oid uint64, elems []string) error {
	i := shardOf(oid, len(s.shards))
	if err := s.shards[i].Delete(oid, elems); err != nil {
		return fmt.Errorf("core: shard %02d delete: %w", i, err)
	}
	return nil
}

// InsertBatch implements BatchInserter: entries partition into per-shard
// batches that load through each shard's own batch path.
func (s *ShardedFacility) InsertBatch(entries []Entry) error {
	buckets := make([][]Entry, len(s.shards))
	for _, e := range entries {
		i := shardOf(e.OID, len(s.shards))
		buckets[i] = append(buckets[i], e)
	}
	for i, b := range buckets {
		if len(b) == 0 {
			continue
		}
		if err := InsertAll(s.shards[i], b); err != nil {
			return fmt.Errorf("core: shard %02d batch insert: %w", i, err)
		}
	}
	return nil
}

// Count implements AccessMethod: the sum over shards.
func (s *ShardedFacility) Count() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Count()
	}
	return n
}

// StoragePages implements AccessMethod: the sum over shards.
func (s *ShardedFacility) StoragePages() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.StoragePages()
	}
	return n
}

// Health implements HealthReporter: the worst state across shards. The
// ladder is per-shard — one shard degrading rejects only the writes
// routed to it — but the aggregate drives planner routing, which treats
// the whole facility as degraded and prefers a healthy sibling.
func (s *ShardedFacility) Health() HealthState {
	worst := Healthy
	for _, sh := range s.shards {
		if h := HealthOf(sh); h > worst {
			worst = h
		}
	}
	return worst
}

// ShardHealth returns every shard's own health state, in shard order.
func (s *ShardedFacility) ShardHealth() []HealthState {
	out := make([]HealthState, len(s.shards))
	for i, sh := range s.shards {
		out[i] = HealthOf(sh)
	}
	return out
}

// MarkRepaired implements Repairer, resetting every shard's ladder.
func (s *ShardedFacility) MarkRepaired() {
	for _, sh := range s.shards {
		if r, ok := sh.(Repairer); ok {
			r.MarkRepaired()
		}
	}
}

// Search implements AccessMethod.
func (s *ShardedFacility) Search(pred signature.Predicate, query []string, opts ...SearchOption) (*Result, error) {
	return s.searchCtx(context.Background(), pred, query, newSearchOptions(opts))
}

// SearchContext implements AccessMethod: the search scatters across
// every shard — each an independent facility with its own files and
// lock, so the per-shard searches do genuinely independent I/O — and
// gathers the per-shard results in shard order. Cancellation propagates
// into every in-flight shard search and stops unstarted ones.
// WithSmartRetrieval caps derive from the total live count so every
// shard applies the same filter strength.
func (s *ShardedFacility) SearchContext(ctx context.Context, pred signature.Predicate, query []string, opts ...SearchOption) (*Result, error) {
	return s.searchCtx(ctx, pred, query, newSearchOptions(opts))
}

func (s *ShardedFacility) searchCtx(ctx context.Context, pred signature.Predicate, query []string, opts *SearchOptions) (res *Result, err error) {
	if !pred.Valid() {
		return nil, errInvalidPredicate(pred)
	}
	tr := obs.StartTrace(traceSink(ctx, opts), s.Name(), pred.String())
	defer func() { tr.Finish(err) }()

	// Pin the smart caps from the total live count so every shard applies
	// the same filter strength regardless of its own size — the same
	// pinning the LSM does per segment, and what keeps results identical
	// to the unsharded facility.
	if opts != nil && opts.Smart {
		o := *opts
		total := s.Count()
		if o.MaxProbeElements == 0 {
			if s.kind == KindNIX {
				o.MaxProbeElements = 1
			} else if s.smartM > 0 {
				o.MaxProbeElements = smartProbeCap(total, s.smartM)
			}
		}
		if o.MaxZeroSlices == 0 && s.kind == KindBSSF {
			o.MaxZeroSlices = smartZeroSliceCap(total)
		}
		o.Smart = false
		opts = &o
	}
	query = dedup(query)
	probe := probeElements(query, opts, pred)
	workers := searchWorkers(opts)
	stats := SearchStats{QueryCardinality: len(query), ProbedElements: len(probe)}

	// The per-shard searches must not re-trace or re-massage: divert
	// their traces to a discard sink (an explicit opts.Trace wins over
	// any sink riding ctx) and keep the pinned caps.
	shardOpts := &SearchOptions{}
	if opts != nil {
		*shardOpts = *opts
	}
	shardOpts.Smart = false
	shardOpts.Trace = discardTraces{}

	// Scatter: every shard's full search (candidates and verification
	// against the disjoint partition it owns), fanned across the worker
	// pool with per-shard result slots folded in shard order —
	// deterministic at any parallelism.
	phase := tr.Begin()
	parts := make([]*Result, len(s.shards))
	err = forEachTask(ctx, workers, len(s.shards), func(i int) error {
		r, serr := s.shards[i].SearchContext(ctx, pred, query, withResolved(shardOpts))
		if serr != nil {
			return fmt.Errorf("core: shard %02d search: %w", i, serr)
		}
		parts[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		stats.SlicesRead += p.Stats.SlicesRead
		stats.IndexPages += p.Stats.IndexPages
		stats.OIDPages += p.Stats.OIDPages
		stats.ObjectFetches += p.Stats.ObjectFetches
		stats.Candidates += p.Stats.Candidates
		stats.Results += p.Stats.Results
		stats.FalseDrops += p.Stats.FalseDrops
		total += len(p.OIDs)
	}
	tr.End(obs.PhaseIndexScan, phase, stats.IndexPages)

	// The per-shard OID-file reads and object fetches happened inside the
	// scatter (counted into OIDPages/ObjectFetches above); the remaining
	// spans keep the spans-sum-to-stats property.
	phase = tr.Begin()
	tr.End(obs.PhaseOIDMap, phase, stats.OIDPages)

	// Gather: the partitions are disjoint and each list ascends, so
	// sorting the concatenation yields exactly the unsharded result.
	phase = tr.Begin()
	oids := make([]uint64, 0, total)
	for _, p := range parts {
		oids = append(oids, p.OIDs...)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	tr.End(obs.PhaseResolve, phase, stats.ObjectFetches)
	return &Result{OIDs: oids, Stats: stats}, nil
}

// discardTraces suppresses the inner shards' traces: the scatter emits
// one aggregate trace for the whole search, not K+1.
type discardTraces struct{}

// EmitTrace implements obs.TraceSink.
func (discardTraces) EmitTrace(*obs.Trace) {}

// Describe implements Describer, aggregating the per-shard catalogs:
// counts and storage sum, the signature design is common to all shards,
// and Shards/ShardHealth expose the partition layout so the planner can
// price the K-way scatter and route around degraded shards.
func (s *ShardedFacility) Describe() FacilityStats {
	st := FacilityStats{
		Facility: s.Name(),
		Shards:   len(s.shards),
		Health:   Healthy,
	}
	var cardSum float64
	var cardN int
	for _, sh := range s.shards {
		d, ok := sh.(Describer)
		if !ok {
			continue
		}
		inner := d.Describe()
		st.Count += inner.Count
		st.StoragePages += inner.StoragePages
		st.MemtableCount += inner.MemtableCount
		st.SegmentCounts = append(st.SegmentCounts, inner.SegmentCounts...)
		if inner.F > 0 {
			st.F, st.M, st.Frames = inner.F, inner.M, inner.Frames
		}
		if inner.AvgSetCard > 0 {
			cardSum += inner.AvgSetCard * float64(inner.Count)
			cardN += inner.Count
		}
		// Shards hold disjoint OIDs but overlapping element domains, so
		// summing DistinctElems would overcount V; the max stays a lower
		// bound, which is the planner contract.
		if inner.DistinctElems > st.DistinctElems {
			st.DistinctElems = inner.DistinctElems
		}
		if inner.LookupPages > st.LookupPages {
			st.LookupPages = inner.LookupPages
		}
		st.ShardHealth = append(st.ShardHealth, inner.Health)
		if inner.Health > st.Health {
			st.Health = inner.Health
		}
	}
	if cardN > 0 {
		st.AvgSetCard = cardSum / float64(cardN)
	}
	return st
}

var (
	_ AccessMethod   = (*ShardedFacility)(nil)
	_ Describer      = (*ShardedFacility)(nil)
	_ BatchInserter  = (*ShardedFacility)(nil)
	_ HealthReporter = (*ShardedFacility)(nil)
	_ Repairer       = (*ShardedFacility)(nil)
)
