package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"sigfile/internal/signature"
)

// This file is the concurrency substrate of the parallel search layer:
// a small work-pool primitive the facilities shard their page scans,
// slice reads and drop resolution over, plus the batched SearchMany
// entry point for serving-style workloads.
//
// The design constraint throughout is determinism: a parallel search
// must return byte-identical Results (OIDs and Stats) to the sequential
// one. Every parallel site therefore writes into a per-task slot and the
// caller folds the slots together in task order; nothing is accumulated
// in shared state during the fan-out.

// searchWorkers resolves the effective worker count of a search: the
// Parallelism option, 0 or 1 meaning sequential, and a negative value
// meaning "one worker per CPU".
func searchWorkers(opts *SearchOptions) int {
	if opts == nil {
		return 1
	}
	p := opts.Parallelism
	if p < 0 {
		p = runtime.NumCPU()
	}
	if p < 1 {
		return 1
	}
	return p
}

// forEachTask runs fn(task) for every task in [0, ntasks) on up to
// workers goroutines. With workers <= 1 (or a single task) it degrades
// to a plain loop on the calling goroutine, so the sequential and
// parallel paths execute the same code. Tasks are claimed from a shared
// counter, so uneven task costs balance across the pool. All tasks run
// even if one fails; the joined errors are returned so a fault is never
// masked by a faster worker's success.
//
// Cancellation is checked before each task claim: once ctx is done no
// new task starts, in-flight tasks finish (per-task slots stay
// consistent), and the returned error includes ctx.Err() — so
// errors.Is(err, ctx.Err()) holds for the caller.
func forEachTask(ctx context.Context, workers, ntasks int, fn func(task int) error) error {
	if ntasks <= 0 {
		return nil
	}
	if workers > ntasks {
		workers = ntasks
	}
	if workers <= 1 {
		var errs []error
		for i := 0; i < ntasks; i++ {
			if err := ctx.Err(); err != nil {
				errs = append(errs, err)
				break
			}
			if err := fn(i); err != nil {
				errs = append(errs, err)
			}
		}
		return errors.Join(errs...)
	}
	var (
		next  atomic.Int64
		wg    sync.WaitGroup
		errMu sync.Mutex
		errs  []error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				task := int(next.Add(1)) - 1
				if task >= ntasks {
					return
				}
				if err := fn(task); err != nil {
					errMu.Lock()
					errs = append(errs, err)
					errMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// shardRange splits [0, n) into nshards near-equal contiguous ranges and
// returns the bounds of shard i.
func shardRange(n, nshards, i int) (lo, hi int) {
	return i * n / nshards, (i + 1) * n / nshards
}

// addStats folds per-task stats into dst in task order. All fields are
// sums of non-negative per-task counts, so the fold is deterministic
// regardless of the order tasks *completed* in.
func addStats(dst *SearchStats, parts []SearchStats) {
	for i := range parts {
		dst.SlicesRead += parts[i].SlicesRead
		dst.IndexPages += parts[i].IndexPages
		dst.OIDPages += parts[i].OIDPages
		dst.ObjectFetches += parts[i].ObjectFetches
	}
}

// SearchRequest is one search of a batch submitted to SearchMany.
type SearchRequest struct {
	Pred  signature.Predicate
	Query []string
	// Opts selects the retrieval strategy of this request; empty means
	// default. Per-request WithParallelism multiplies with the
	// batch-level fan-out, so serving workloads usually omit it and let
	// the batch spread across the pool.
	Opts []SearchOption
}

// SearchMany answers a batch of searches against one facility, fanning
// the requests across up to parallelism goroutines (0 or 1 = one at a
// time; negative = one per CPU). Result i corresponds to request i. If
// any request fails, the failed slots are nil and the joined errors are
// returned; the remaining results are still valid.
//
// The facilities in this package are safe for any number of concurrent
// Search calls (updates are excluded by their internal reader/writer
// lock), so SearchMany needs no coordination beyond the pool — it is the
// serving-style entry point: throughput scales with the pool while every
// individual Result stays identical to a sequential call.
func SearchMany(am AccessMethod, reqs []SearchRequest, parallelism int) ([]*Result, error) {
	return SearchManyContext(context.Background(), am, reqs, parallelism)
}

// SearchManyContext is SearchMany with a context: cancellation stops
// unstarted requests (their slots stay nil and the joined error includes
// ctx.Err()) and propagates into each in-flight search, which observes
// it at its own page-scan and worker-task boundaries. A trace sink on
// ctx receives one trace per request.
func SearchManyContext(ctx context.Context, am AccessMethod, reqs []SearchRequest, parallelism int) ([]*Result, error) {
	out := make([]*Result, len(reqs))
	workers := searchWorkers(&SearchOptions{Parallelism: parallelism})
	err := forEachTask(ctx, workers, len(reqs), func(i int) error {
		res, err := am.SearchContext(ctx, reqs[i].Pred, reqs[i].Query, reqs[i].Opts...)
		if err != nil {
			return fmt.Errorf("core: SearchMany request %d: %w", i, err)
		}
		out[i] = res
		return nil
	})
	return out, err
}
