package core

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"

	"sigfile/internal/pagestore"
	"sigfile/internal/signature"
)

// This file is the immutable-segment side of the LSM write path: the
// per-segment metadata (tombstones and empty-set OIDs that the inner
// facility cannot carry), the manifest that makes the segment list and
// generation crash-recoverable, and the helpers that build a segment
// from a memtable and reopen it read-only.

// segmentSearcher is the contract a facility must satisfy to serve as an
// LSM segment: the full AccessMethod surface plus the candidate phases
// of a search (so one resolution pass can cover every segment) and the
// live-OID enumeration the reopen path rebuilds liveness from. All four
// shipped facilities implement it.
type segmentSearcher interface {
	AccessMethod
	Describer
	// segmentCandidates runs the index-scan and OID-map phases under the
	// facility's own lock, untraced, returning candidate OIDs. Smart
	// caps left at zero are filled from the segment's own count, so the
	// LSM layer pins explicit caps derived from the total count first.
	segmentCandidates(ctx context.Context, pred signature.Predicate, query []string, opts *SearchOptions, stats *SearchStats) ([]uint64, error)
	// liveOIDs enumerates every OID the facility's files record. For a
	// sealed segment (built append-only, never deleted from) this is
	// exactly the segment's content.
	liveOIDs() ([]uint64, error)
}

// lsmSegMeta is the durable metadata of one sealed segment.
type lsmSegMeta struct {
	// ID names the segment's file prefix (segPrefix).
	ID uint64 `json:"id"`
	// Count is the number of set values stored in the inner facility.
	Count int `json:"count"`
	// Tombs are the OIDs the segment's memtable deleted: at reopen they
	// kill occurrences of those OIDs in older segments.
	Tombs []uint64 `json:"tombs,omitempty"`
	// Empties are the live OIDs whose set value is empty. They are not
	// inserted into the inner facility (NIX could not recover them — an
	// empty set leaves no postings), so the metadata carries them.
	Empties []uint64 `json:"empties,omitempty"`
}

// lsmSegment is one sealed segment: an inner facility served through a
// read-only store view, plus its metadata.
type lsmSegment struct {
	id    uint64
	inner segmentSearcher
	meta  lsmSegMeta
}

// lsmManifest is the durable root of the LSM state: the current log
// generation, the next segment ID, and the sealed segments oldest
// first. It is rewritten atomically-per-page on every flush/compaction;
// the log of generation Gen plus the listed segments reconstruct the
// facility exactly.
type lsmManifest struct {
	Gen      uint64       `json:"gen"`
	NextSeg  uint64       `json:"next_seg"`
	Segments []lsmSegMeta `json:"segments"`
}

const (
	lsmManifestName    = "lsm.manifest"
	lsmManifestMagic   = 0x4c534d31 // "LSM1"
	lsmManifestVersion = 1
	lsmManifestHeader  = 12 // magic + version + payload length
)

// writeManifest serializes m into file: a 12-byte header (magic,
// version, payload length) followed by JSON, spilling across pages.
func writeManifest(file pagestore.File, m *lsmManifest) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("core: lsm manifest encode: %w", err)
	}
	buf := make([]byte, lsmManifestHeader+len(payload))
	binary.LittleEndian.PutUint32(buf, lsmManifestMagic)
	binary.LittleEndian.PutUint32(buf[4:], lsmManifestVersion)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(payload)))
	copy(buf[lsmManifestHeader:], payload)
	page := make([]byte, pagestore.PageSize)
	for p := 0; len(buf) > 0; p++ {
		for p >= file.NumPages() {
			if _, err := file.Allocate(); err != nil {
				return fmt.Errorf("core: lsm manifest extend: %w", err)
			}
		}
		for i := range page {
			page[i] = 0
		}
		n := copy(page, buf)
		buf = buf[n:]
		if err := file.WritePage(pagestore.PageID(p), page); err != nil {
			return fmt.Errorf("core: lsm manifest write page %d: %w", p, err)
		}
	}
	return nil
}

// readManifest parses the manifest from file; a zero-page file means a
// fresh facility and yields nil.
func readManifest(file pagestore.File) (*lsmManifest, error) {
	if file.NumPages() == 0 {
		return nil, nil
	}
	page := make([]byte, pagestore.PageSize)
	if err := file.ReadPage(0, page); err != nil {
		return nil, fmt.Errorf("core: lsm manifest read: %w", err)
	}
	if magic := binary.LittleEndian.Uint32(page); magic != lsmManifestMagic {
		return nil, fmt.Errorf("core: lsm manifest bad magic %#x", magic)
	}
	if v := binary.LittleEndian.Uint32(page[4:]); v != lsmManifestVersion {
		return nil, fmt.Errorf("core: lsm manifest unsupported version %d", v)
	}
	plen := int(binary.LittleEndian.Uint32(page[8:]))
	payload := make([]byte, 0, plen)
	payload = append(payload, page[lsmManifestHeader:min(pagestore.PageSize, lsmManifestHeader+plen)]...)
	for p := 1; len(payload) < plen; p++ {
		if err := file.ReadPage(pagestore.PageID(p), page); err != nil {
			return nil, fmt.Errorf("core: lsm manifest read page %d: %w", p, err)
		}
		payload = append(payload, page[:min(pagestore.PageSize, plen-len(payload))]...)
	}
	var m lsmManifest
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("core: lsm manifest decode: %w", err)
	}
	return &m, nil
}

// segPrefix is the store namespace of segment id.
func segPrefix(id uint64) string { return fmt.Sprintf("seg.%06d", id) }

// segmentFileNames lists the files a segment of the given configuration
// occupies (relative to its prefix), for best-effort removal after the
// segment is superseded.
func segmentFileNames(cfg *Config) []string {
	switch cfg.Kind {
	case KindSSF:
		return []string{"ssf.sig", "ssf.oid"}
	case KindBSSF:
		names := make([]string, 0, cfg.Scheme.F()+1)
		for j := 0; j < cfg.Scheme.F(); j++ {
			names = append(names, fmt.Sprintf("bssf.slice.%04d", j))
		}
		return append(names, "bssf.oid")
	case KindFSSF:
		k := 0
		if cfg.FrameScheme != nil {
			k = cfg.FrameScheme.K()
		} else if fs, err := deriveFrameScheme(cfg.Scheme, cfg.Frames); err == nil {
			k = fs.K()
		}
		names := make([]string, 0, k+1)
		for j := 0; j < k; j++ {
			names = append(names, fmt.Sprintf("fssf.frame.%04d", j))
		}
		return append(names, "fssf.oid")
	case KindNIX:
		return []string{"nix.btree"}
	default:
		return nil
	}
}

// buildSegment materializes a sealed segment: the non-empty entries are
// bulk-loaded into a fresh inner facility under the segment's prefix,
// then the facility is reopened through a read-only store view so no
// later code path can mutate it. entries must be sorted by OID;
// tombs/empties land in the metadata.
func buildSegment(cfg *Config, store pagestore.Store, id uint64, entries []Entry, tombs, empties []uint64) (*lsmSegment, error) {
	prefix := segPrefix(id)
	// Clear any residue of an interrupted earlier build under this ID
	// (possible only on stores without atomic commit).
	seg := pagestore.Prefixed(store, prefix)
	for _, name := range segmentFileNames(cfg) {
		_ = pagestore.RemoveIfSupported(seg, name)
	}
	inner := *cfg
	inner.LSM = false
	inner.Store = store
	inner.Prefix = prefix
	am, err := Open(inner)
	if err != nil {
		return nil, fmt.Errorf("core: lsm build segment %d: %w", id, err)
	}
	if err := InsertAll(am, entries); err != nil {
		return nil, fmt.Errorf("core: lsm build segment %d: %w", id, err)
	}
	return reopenSegment(cfg, store, lsmSegMeta{ID: id, Count: len(entries), Tombs: tombs, Empties: empties})
}

// reopenSegment opens the sealed segment meta describes through a
// read-only store view and asserts the segment-serving contract.
func reopenSegment(cfg *Config, store pagestore.Store, meta lsmSegMeta) (*lsmSegment, error) {
	inner := *cfg
	inner.LSM = false
	inner.Store = pagestore.ReadOnly(store)
	inner.Prefix = segPrefix(meta.ID)
	am, err := Open(inner)
	if err != nil {
		return nil, fmt.Errorf("core: lsm reopen segment %d: %w", meta.ID, err)
	}
	ss, ok := am.(segmentSearcher)
	if !ok {
		return nil, fmt.Errorf("core: lsm segment %d: %s cannot serve as a segment", meta.ID, am.Name())
	}
	return &lsmSegment{id: meta.ID, inner: ss, meta: meta}, nil
}

// sortedU64 sorts a []uint64 ascending in place and returns it.
func sortedU64(s []uint64) []uint64 {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}
