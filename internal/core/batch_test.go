package core

import (
	"fmt"
	"math/rand"
	"testing"

	"sigfile/internal/pagestore"
	"sigfile/internal/signature"
)

// randomEntries builds n entries with dt-element sets over a v-element
// universe, plus the matching MapSource.
func randomEntries(n, dt, v int, seed int64) ([]Entry, MapSource) {
	rng := rand.New(rand.NewSource(seed))
	src := make(MapSource, n)
	entries := make([]Entry, 0, n)
	for oid := uint64(1); oid <= uint64(n); oid++ {
		set := make([]string, 0, dt)
		for _, j := range rng.Perm(v)[:dt] {
			set = append(set, fmt.Sprintf("elem-%05d", j))
		}
		src[oid] = set
		entries = append(entries, Entry{OID: oid, Elems: set})
	}
	return entries, src
}

// TestBatchEquivalence: for every facility, a batch load must answer
// queries identically to one-at-a-time loading.
func TestBatchEquivalence(t *testing.T) {
	entries, src := randomEntries(400, 5, 60, 31)
	scheme := signature.MustNew(120, 3)
	frame := signature.MustFrameScheme(8, 16, 3)

	builds := []struct {
		name string
		mk   func() (AccessMethod, error)
	}{
		{"SSF", func() (AccessMethod, error) { return NewSSF(scheme, src, nil) }},
		{"BSSF", func() (AccessMethod, error) { return NewBSSF(scheme, src, nil) }},
		{"FSSF", func() (AccessMethod, error) { return NewFSSF(frame, src, nil) }},
		{"NIX", func() (AccessMethod, error) { return NewNIX(src, nil) }},
	}
	queries := [][]string{
		{"elem-00003"},
		{"elem-00003", "elem-00017"},
		{"elem-00001", "elem-00002", "elem-00003", "elem-00004", "elem-00005",
			"elem-00006", "elem-00007", "elem-00008", "elem-00009", "elem-00010"},
	}
	for _, b := range builds {
		single, err := b.mk()
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if err := single.Insert(e.OID, e.Elems); err != nil {
				t.Fatal(err)
			}
		}
		batched, err := b.mk()
		if err != nil {
			t.Fatal(err)
		}
		if err := batched.(BatchInserter).InsertBatch(entries); err != nil {
			t.Fatal(err)
		}
		if single.Count() != batched.Count() {
			t.Fatalf("%s: counts differ %d vs %d", b.name, single.Count(), batched.Count())
		}
		for _, pred := range allPredicates {
			for _, q := range queries {
				qq := q
				if pred == signature.Contains {
					qq = q[:1]
				}
				r1, err := single.Search(pred, qq, nil)
				if err != nil {
					t.Fatal(err)
				}
				r2, err := batched.Search(pred, qq, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !sameOIDs(r1.OIDs, r2.OIDs) {
					t.Fatalf("%s %v: batch answers differ", b.name, pred)
				}
			}
		}
	}
}

// TestBatchAmortizesBSSFWrites is the quantitative claim: a one-page
// batch of B objects costs at most F slice writes total, versus ~B·m_t
// for the loop.
func TestBatchAmortizesBSSFWrites(t *testing.T) {
	entries, src := randomEntries(500, 5, 60, 32)
	scheme := signature.MustNew(120, 3)

	loopStore := pagestore.NewMemStore()
	loop, err := NewBSSF(scheme, src, loopStore)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := loop.Insert(e.OID, e.Elems); err != nil {
			t.Fatal(err)
		}
	}
	_, loopWrites := loopStore.TotalStats()

	batchStore := pagestore.NewMemStore()
	batch, err := NewBSSF(scheme, src, batchStore)
	if err != nil {
		t.Fatal(err)
	}
	if err := batch.InsertBatch(entries); err != nil {
		t.Fatal(err)
	}
	_, batchWrites := batchStore.TotalStats()

	// Both include 500 OID writes; the slice traffic must collapse from
	// ~500·m_t ≈ 7000 to ≤ F = 120.
	if batchWrites >= loopWrites/5 {
		t.Fatalf("batch writes %d not far below loop writes %d", batchWrites, loopWrites)
	}
	sliceWrites := batchWrites - 500 // minus the per-insert OID writes
	if sliceWrites > int64(scheme.F()) {
		t.Fatalf("batch slice writes %d exceed F=%d for a single-page batch", sliceWrites, scheme.F())
	}
}

func TestBatchSpansPageBoundaries(t *testing.T) {
	// More entries than one slice page holds (would need > 32768 — too
	// slow); instead exercise the boundary logic with the FSSF whose
	// frame pages hold few records: S=2048 bits → 16 records per page.
	entries, src := randomEntries(100, 3, 30, 33)
	frame := signature.MustFrameScheme(2, 2048, 2)
	fssf, err := NewFSSF(frame, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := fssf.InsertBatch(entries); err != nil {
		t.Fatal(err)
	}
	if fssf.Count() != 100 {
		t.Fatalf("Count = %d", fssf.Count())
	}
	if fssf.FramePages() < 2 {
		t.Fatalf("expected multiple frame pages, got %d", fssf.FramePages())
	}
	// Spot-check answers.
	want := bruteForce(map[uint64][]string(src), signature.Superset, src[50][:1])
	res, err := fssf.Search(signature.Superset, src[50][:1], nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sameOIDs(res.OIDs, want) {
		t.Fatal("batch across page boundaries corrupted answers")
	}
}

func TestBatchValidation(t *testing.T) {
	scheme := signature.MustNew(64, 2)
	bssf, _ := NewBSSF(scheme, MapSource{}, nil)
	if err := bssf.InsertBatch([]Entry{{OID: 0}}); err == nil {
		t.Fatal("BSSF batch accepted OID 0")
	}
	if err := bssf.InsertBatch(nil); err != nil {
		t.Fatalf("empty batch errored: %v", err)
	}
	fssf, _ := NewFSSF(signature.MustFrameScheme(2, 16, 2), MapSource{}, nil)
	if err := fssf.InsertBatch([]Entry{{OID: 0}}); err == nil {
		t.Fatal("FSSF batch accepted OID 0")
	}
	ssf, _ := NewSSF(scheme, MapSource{}, nil)
	if err := ssf.InsertBatch([]Entry{{OID: 0, Elems: []string{"x"}}}); err == nil {
		t.Fatal("SSF batch accepted OID 0")
	}
	nix, _ := NewNIX(MapSource{}, nil)
	if err := nix.InsertBatch([]Entry{{OID: 0, Elems: []string{"x"}}}); err == nil {
		t.Fatal("NIX batch accepted OID 0")
	}
}

// TestBSSFMultiPageSlices exercises slice files that span multiple pages
// (N > P·b = 32768 objects), a path the paper's parameters never reach.
func TestBSSFMultiPageSlices(t *testing.T) {
	if testing.Short() {
		t.Skip("large-N test skipped in -short mode")
	}
	const n = 40000 // > 32768, so every slice has 2 pages
	scheme := signature.MustNew(32, 2)
	src := make(MapSource, n)
	entries := make([]Entry, 0, n)
	for oid := uint64(1); oid <= n; oid++ {
		set := []string{fmt.Sprintf("e%d", oid%50), fmt.Sprintf("e%d", (oid+7)%50)}
		src[oid] = set
		entries = append(entries, Entry{OID: oid, Elems: set})
	}
	bssf, err := NewBSSF(scheme, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := bssf.InsertBatch(entries); err != nil {
		t.Fatal(err)
	}
	if got := bssf.SlicePages(); got != 2 {
		t.Fatalf("slice pages = %d, want 2", got)
	}
	// Elements land on both sides of the page boundary; answers must be
	// exact across it.
	res, err := bssf.Search(signature.Superset, []string{"e3", "e46"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	var firstHit, lastHit uint64
	for oid, set := range src {
		if ok, _ := signature.EvaluateSets(signature.Superset, set, []string{"e3", "e46"}); ok {
			want++
			if firstHit == 0 || oid < firstHit {
				firstHit = oid
			}
			if oid > lastHit {
				lastHit = oid
			}
		}
	}
	if len(res.OIDs) != want {
		t.Fatalf("multi-page search: %d results, want %d", len(res.OIDs), want)
	}
	if firstHit >= 32768 || lastHit <= 32768 {
		t.Fatalf("test data does not straddle the page boundary: hits [%d, %d]", firstHit, lastHit)
	}
	// A per-slice read now costs 2 pages; m_q one-slices => 2·SlicesRead.
	if res.Stats.IndexPages != int64(2*res.Stats.SlicesRead) {
		t.Fatalf("IndexPages %d != 2 slices-read %d", res.Stats.IndexPages, res.Stats.SlicesRead)
	}
	// Single inserts keep working past the boundary.
	src[100001] = []string{"e3", "e46"}
	if err := bssf.Insert(100001, src[100001]); err != nil {
		t.Fatal(err)
	}
	res, _ = bssf.Search(signature.Superset, []string{"e3", "e46"}, nil)
	if len(res.OIDs) != want+1 {
		t.Fatalf("post-boundary insert invisible: %d vs %d", len(res.OIDs), want+1)
	}
}

// TestBatchAmortizesSSFWrites: the loop path writes the signature tail
// page and the OID tail page once per insert (~2·N writes); the batch
// path writes each tail page once per fill.
func TestBatchAmortizesSSFWrites(t *testing.T) {
	entries, src := randomEntries(500, 5, 60, 34)
	scheme := signature.MustNew(120, 3)

	loopStore := pagestore.NewMemStore()
	loop, err := NewSSF(scheme, src, loopStore)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := loop.Insert(e.OID, e.Elems); err != nil {
			t.Fatal(err)
		}
	}
	_, loopWrites := loopStore.TotalStats()

	batchStore := pagestore.NewMemStore()
	batch, err := NewSSF(scheme, src, batchStore)
	if err != nil {
		t.Fatal(err)
	}
	if err := batch.InsertBatch(entries); err != nil {
		t.Fatal(err)
	}
	_, batchWrites := batchStore.TotalStats()

	if batchWrites >= loopWrites/5 {
		t.Fatalf("SSF batch writes %d not far below loop writes %d", batchWrites, loopWrites)
	}
	// And the loaded state is byte-for-byte the loop's: same page counts,
	// so a reopen sees an identical file.
	if loop.StoragePages() != batch.StoragePages() {
		t.Fatalf("storage differs: loop %d pages, batch %d", loop.StoragePages(), batch.StoragePages())
	}
}

// TestSSFBatchThenReopen: a batch-loaded SSF must recover from its store
// exactly like a loop-loaded one.
func TestSSFBatchThenReopen(t *testing.T) {
	entries, src := randomEntries(300, 4, 40, 35)
	scheme := signature.MustNew(96, 2)
	store := pagestore.NewMemStore()
	ssf, err := NewSSF(scheme, src, store)
	if err != nil {
		t.Fatal(err)
	}
	if err := ssf.InsertBatch(entries); err != nil {
		t.Fatal(err)
	}
	re, err := NewSSF(scheme, src, store)
	if err != nil {
		t.Fatal(err)
	}
	if re.Count() != 300 {
		t.Fatalf("reopened Count = %d, want 300", re.Count())
	}
	q := src[7][:2]
	want := bruteForce(map[uint64][]string(src), signature.Superset, q)
	res, err := re.Search(signature.Superset, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sameOIDs(res.OIDs, want) {
		t.Fatal("reopened batch-loaded SSF answers wrong")
	}
}

// TestNIXBatchValidation: the NIX batch path validates before touching
// the tree, so a rejected batch leaves no partial postings.
func TestNIXBatchValidation(t *testing.T) {
	src := MapSource{1: {"a"}, 2: {"b"}}
	nix, err := NewNIX(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := nix.Insert(1, src[1]); err != nil {
		t.Fatal(err)
	}
	// Duplicate against a live OID.
	if err := nix.InsertBatch([]Entry{{OID: 2, Elems: []string{"b"}}, {OID: 1, Elems: []string{"a"}}}); err == nil {
		t.Fatal("NIX batch accepted an already-indexed OID")
	}
	// Duplicate within the batch.
	if err := nix.InsertBatch([]Entry{{OID: 3, Elems: []string{"c"}}, {OID: 3, Elems: []string{"d"}}}); err == nil {
		t.Fatal("NIX batch accepted a repeated OID")
	}
	// Both rejections must have left the index untouched.
	if nix.Count() != 1 {
		t.Fatalf("failed batches mutated the index: Count = %d, want 1", nix.Count())
	}
	res, err := nix.Search(signature.Contains, []string{"b"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OIDs) != 0 {
		t.Fatalf("rejected batch left postings behind: %v", res.OIDs)
	}
}
