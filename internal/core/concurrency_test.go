package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"sigfile/internal/signature"
)

// The stress tests below are written for the race detector: N reader
// goroutines search (sequentially and in parallel) while one writer
// inserts and deletes. They assert only invariants that hold at any
// interleaving — every returned OID was inserted at some point, stats
// are internally consistent — because the answer set legitimately
// depends on when a search runs relative to the writer.

// stressSource is a SetSource covering both the initially-loaded OIDs
// and every OID the writer will insert, so resolution never fails no
// matter when a search observes a freshly inserted signature. It is
// immutable after construction and therefore trivially concurrent-safe.
func stressData(nInitial, nExtra, dt, v int, seed int64) (MapSource, [][]string) {
	rng := rand.New(rand.NewSource(seed))
	universe := make([]string, v)
	for i := range universe {
		universe[i] = fmt.Sprintf("elem-%05d", i)
	}
	sets := make(MapSource, nInitial+nExtra)
	for oid := uint64(1); oid <= uint64(nInitial+nExtra); oid++ {
		perm := rng.Perm(v)[:dt]
		set := make([]string, dt)
		for i, j := range perm {
			set[i] = universe[j]
		}
		sets[oid] = set
	}
	queries := make([][]string, 8)
	for i := range queries {
		dq := 1 + rng.Intn(4)
		perm := rng.Perm(v)[:dq]
		q := make([]string, dq)
		for j, k := range perm {
			q[j] = universe[k]
		}
		queries[i] = q
	}
	return sets, queries
}

// stressFacility runs nReaders search goroutines against am while one
// writer inserts OIDs (nInitial, nInitial+nExtra] and deletes a prefix
// of the initial load.
func stressFacility(t *testing.T, am AccessMethod, sets MapSource, queries [][]string, nInitial, nExtra int) {
	t.Helper()
	const nReaders = 4
	const searchesPerReader = 25
	var wg sync.WaitGroup

	// Writer: interleave inserts of new OIDs with deletes of old ones.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < nExtra; i++ {
			oid := uint64(nInitial + i + 1)
			if err := am.Insert(oid, sets[oid]); err != nil {
				t.Errorf("%s insert %d: %v", am.Name(), oid, err)
				return
			}
			if i%2 == 0 {
				victim := uint64(i/2 + 1)
				if err := am.Delete(victim, sets[victim]); err != nil {
					t.Errorf("%s delete %d: %v", am.Name(), victim, err)
					return
				}
			}
		}
	}()

	for r := 0; r < nReaders; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			preds := allPredicates
			for i := 0; i < searchesPerReader; i++ {
				pred := preds[(r+i)%len(preds)]
				q := queries[(r*searchesPerReader+i)%len(queries)]
				// Alternate sequential and parallel searches so both
				// paths run against the writer.
				res, err := am.Search(pred, q, WithParallelism(1+3*(i%2)))
				if err != nil {
					t.Errorf("%s reader %d search: %v", am.Name(), r, err)
					return
				}
				for _, oid := range res.OIDs {
					if _, ok := sets[oid]; !ok {
						t.Errorf("%s returned OID %d that never existed", am.Name(), oid)
					}
				}
				st := res.Stats
				if st.FalseDrops != st.Candidates-st.Results || st.Results != len(res.OIDs) {
					t.Errorf("%s inconsistent stats: %+v with %d OIDs", am.Name(), st, len(res.OIDs))
				}
				// Concurrent metadata reads ride along with the searches.
				_ = am.Count()
				_ = am.StoragePages()
			}
		}(r)
	}
	wg.Wait()
}

// TestConcurrentSearchWhileWriting is the -race stress: run it for each
// facility with readers searching while one writer mutates.
func TestConcurrentSearchWhileWriting(t *testing.T) {
	const nInitial, nExtra, dt, v = 300, 60, 5, 50
	sets, queries := stressData(nInitial, nExtra, dt, v, 71)
	scheme := signature.MustNew(120, 3)

	build := map[string]func() (AccessMethod, error){
		"SSF":  func() (AccessMethod, error) { return NewSSF(scheme, sets, nil) },
		"BSSF": func() (AccessMethod, error) { return NewBSSF(scheme, sets, nil) },
		"NIX":  func() (AccessMethod, error) { return NewNIX(sets, nil) },
		"FSSF": func() (AccessMethod, error) {
			return NewFSSF(signature.MustFrameScheme(8, 16, 3), sets, nil)
		},
	}
	for name, mk := range build {
		t.Run(name, func(t *testing.T) {
			am, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			for oid := uint64(1); oid <= uint64(nInitial); oid++ {
				if err := am.Insert(oid, sets[oid]); err != nil {
					t.Fatal(err)
				}
			}
			stressFacility(t, am, sets, queries, nInitial, nExtra)
		})
	}
}

// TestConcurrentSearchMany exercises the batch path under the race
// detector: many SearchMany batches run concurrently against one
// facility while a writer inserts.
func TestConcurrentSearchMany(t *testing.T) {
	const nInitial, nExtra, dt, v = 200, 40, 5, 40
	sets, queries := stressData(nInitial, nExtra, dt, v, 81)
	scheme := signature.MustNew(120, 3)
	am, err := NewBSSF(scheme, sets, nil)
	if err != nil {
		t.Fatal(err)
	}
	for oid := uint64(1); oid <= uint64(nInitial); oid++ {
		if err := am.Insert(oid, sets[oid]); err != nil {
			t.Fatal(err)
		}
	}
	var reqs []SearchRequest
	for _, pred := range allPredicates {
		for _, q := range queries {
			reqs = append(reqs, SearchRequest{Pred: pred, Query: q, Opts: []SearchOption{WithParallelism(2)}})
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < nExtra; i++ {
			oid := uint64(nInitial + i + 1)
			if err := am.Insert(oid, sets[oid]); err != nil {
				t.Errorf("insert %d: %v", oid, err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := SearchMany(am, reqs, 4); err != nil {
				t.Errorf("SearchMany: %v", err)
			}
		}()
	}
	wg.Wait()
}
