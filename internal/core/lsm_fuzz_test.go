package core

import (
	"sort"
	"testing"

	"sigfile/internal/pagestore"
	"sigfile/internal/signature"
)

// FuzzMemtableSegmentEquivalence decodes an arbitrary byte stream into
// an insert/delete/flush/compact/search program, runs it against the
// LSM form of one facility kind, and checks every search against a
// brute-force model over the live sets. The fuzzer chooses where
// flushes land, so any op stream exercises arbitrary splits of the same
// logical state across memtable and sealed segments — the answers must
// never depend on that split.
//
// CI runs this target in the fuzz-seeds job; reproduce a failure with
//
//	go test -fuzz FuzzMemtableSegmentEquivalence -run '^$' ./internal/core/
func FuzzMemtableSegmentEquivalence(f *testing.F) {
	f.Add([]byte{0, 1, 0, 0, 1, 0x03, 0, 2, 0x05, 7, 0, 0, 5, 0, 0, 6, 0, 0, 7, 1, 0x07})
	f.Add([]byte{1, 2, 1, 0, 1, 0xff, 4, 1, 0, 0, 1, 0x0f, 7, 2, 0x03})
	f.Add([]byte{2, 0, 2, 0, 3, 0x11, 0, 4, 0x22, 5, 0, 0, 0, 5, 0x33, 7, 3, 0x11})
	f.Add([]byte{3, 7, 3, 0, 6, 0x81, 0, 7, 0x42, 6, 0, 0, 7, 4, 0x81})

	elems := []string{"e0", "e1", "e2", "e3", "e4", "e5", "e6", "e7"}
	decodeSet := func(bits byte) []string {
		var out []string
		for i := 0; i < 8; i++ {
			if bits&(1<<i) != 0 {
				out = append(out, elems[i])
			}
		}
		return out
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		kind := Kind(data[0] % 4)
		cfg := Config{
			Kind:   kind,
			Scheme: signature.MustNew(32, 3),
			Store:  pagestore.NewMemStore(),
		}
		if kind == KindFSSF {
			cfg.FrameScheme = signature.MustFrameScheme(4, 8, 3)
		}
		src := MapSource{}
		cfg.Source = src
		am, err := Open(cfg,
			WithLSMMemtableSize(1+int(data[1]%8)), WithLSMCompactAfter(2+int(data[2]%4)))
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		l := am.(*LSM)
		model := map[uint64][]string{}

		check := func(pred signature.Predicate, query []string) {
			var want []uint64
			for oid, set := range model {
				ok, err := signature.EvaluateSets(pred, set, query)
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					want = append(want, oid)
				}
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			res, err := l.Search(pred, query, nil)
			if err != nil {
				t.Fatalf("search %v %v: %v", pred, query, err)
			}
			if !equalOIDs(res.OIDs, want) {
				t.Fatalf("%v %v: lsm %v, model %v (segments=%d memops=%d)",
					pred, query, res.OIDs, want, l.Segments(), l.MemtableOps())
			}
			checkStats(t, "fuzz", res)
		}

		for i := 3; i+2 < len(data); i += 3 {
			op, arg, bits := data[i]%8, data[i+1], data[i+2]
			oid := 1 + uint64(arg%16)
			switch {
			case op < 4: // insert
				if _, live := model[oid]; live {
					continue // the LSM rejects double inserts by design
				}
				set := decodeSet(bits)
				src[oid] = set
				if err := l.Insert(oid, set); err != nil {
					t.Fatalf("insert %d %v: %v", oid, set, err)
				}
				model[oid] = dedup(set)
			case op == 4: // delete
				if _, live := model[oid]; !live {
					continue
				}
				if err := l.Delete(oid, src[oid]); err != nil {
					t.Fatalf("delete %d: %v", oid, err)
				}
				delete(model, oid)
				delete(src, oid)
			case op == 5: // flush at an arbitrary point
				if err := l.Flush(); err != nil {
					t.Fatalf("flush: %v", err)
				}
			case op == 6: // compact at an arbitrary point
				if err := l.Compact(); err != nil {
					t.Fatalf("compact: %v", err)
				}
			default: // search
				pred := diffPreds[arg%5]
				query := decodeSet(bits)
				if pred == signature.Contains {
					query = []string{elems[bits%8]}
				}
				check(pred, query)
			}
		}
		// Closing sweep: every predicate over a fixed query, so even a
		// stream with no search ops verifies its final state.
		for _, pred := range diffPreds {
			q := []string{"e0", "e1"}
			if pred == signature.Contains {
				q = []string{"e0"}
			}
			check(pred, q)
		}
	})
}
