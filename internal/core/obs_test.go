package core

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"sigfile/internal/obs"
	"sigfile/internal/signature"
)

// allFixtures builds the four facilities (SSF, BSSF, NIX, FSSF) over the
// same synthetic data.
func allFixtures(t testing.TB, n, dt, v int, seed int64) []*fixture {
	t.Helper()
	fixtures := newFixtures(t, n, dt, v, seed)
	fssf, fsets := newFSSFFixture(t, n, dt, v, seed)
	return append(fixtures, &fixture{fssf, fsets})
}

// TestTraceSpansSumToStats is the tentpole invariant of the tracing
// layer: for every facility, predicate and query, the traced spans
// decompose the search into exactly the paper's three phases, and their
// page counts equal the SearchStats term by term — index-scan =
// IndexPages, oid-map = OIDPages, resolve = ObjectFetches — so the trace
// total is provably the search's RC.
func TestTraceSpansSumToStats(t *testing.T) {
	const n, dt, v = 300, 5, 50
	fixtures := allFixtures(t, n, dt, v, 71)
	queries := randomQueries(fixtures[0].sets, v, 10, 8, 72)
	for _, f := range fixtures {
		for _, pred := range allPredicates {
			for qi, q := range queries {
				var collector obs.Collector
				res, err := f.am.SearchContext(context.Background(), pred, q, WithTrace(&collector))
				if err != nil {
					t.Fatalf("%s %v q%d: %v", f.am.Name(), pred, qi, err)
				}
				traces := collector.Traces()
				if len(traces) != 1 {
					t.Fatalf("%s %v q%d: %d traces emitted, want 1", f.am.Name(), pred, qi, len(traces))
				}
				tr := traces[0]
				if tr.Facility != f.am.Name() || tr.Predicate != pred.String() {
					t.Errorf("%s %v q%d: trace labeled %s %s", f.am.Name(), pred, qi, tr.Facility, tr.Predicate)
				}
				checkSpan := func(ph obs.Phase, want int64) {
					got, ok := tr.SpanPages(ph)
					if !ok {
						t.Errorf("%s %v q%d: phase %s missing", f.am.Name(), pred, qi, ph)
						return
					}
					if got != want {
						t.Errorf("%s %v q%d: phase %s = %d pages, stats say %d",
							f.am.Name(), pred, qi, ph, got, want)
					}
				}
				checkSpan(obs.PhaseIndexScan, res.Stats.IndexPages)
				checkSpan(obs.PhaseOIDMap, res.Stats.OIDPages)
				checkSpan(obs.PhaseResolve, res.Stats.ObjectFetches)
				if tr.TotalPages() != res.Stats.TotalPages() {
					t.Errorf("%s %v q%d: trace total %d != stats total %d",
						f.am.Name(), pred, qi, tr.TotalPages(), res.Stats.TotalPages())
				}
			}
		}
	}
}

// TestTraceContextSink checks the other delivery route: a sink riding the
// context reaches the facility with no explicit WithTrace option, and an
// untraced SearchContext emits nothing.
func TestTraceContextSink(t *testing.T) {
	fixtures := newFixtures(t, 60, 4, 30, 73)
	am := fixtures[0].am
	var collector obs.Collector
	ctx := obs.ContextWithSink(context.Background(), &collector)
	if _, err := am.SearchContext(ctx, signature.Superset, []string{"elem-00001"}); err != nil {
		t.Fatal(err)
	}
	if len(collector.Traces()) != 1 {
		t.Fatalf("context sink got %d traces, want 1", len(collector.Traces()))
	}
	if _, err := am.SearchContext(context.Background(), signature.Superset, []string{"elem-00001"}); err != nil {
		t.Fatal(err)
	}
	if len(collector.Traces()) != 1 {
		t.Error("untraced search leaked a trace into an unrelated collector")
	}
}

// TestSearchContextPreCanceled: a canceled context fails fast at the
// first page-scan or worker-task boundary with ctx.Err(), for every
// facility at P=1 and P=8, and the facility answers the identical search
// correctly immediately afterwards (no corrupted state).
func TestSearchContextPreCanceled(t *testing.T) {
	const n, dt, v = 200, 5, 40
	fixtures := allFixtures(t, n, dt, v, 81)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	query := []string{"elem-00001", "elem-00002"}
	for _, f := range fixtures {
		for _, pred := range allPredicates {
			for _, par := range []int{1, 8} {
				_, err := f.am.SearchContext(ctx, pred, query, WithParallelism(par))
				if !errors.Is(err, context.Canceled) {
					t.Errorf("%s %v P=%d: err = %v, want context.Canceled", f.am.Name(), pred, par, err)
				}
				// The same search on a live context must still be exact.
				res, err := f.am.SearchContext(context.Background(), pred, query, WithParallelism(par))
				if err != nil {
					t.Fatalf("%s %v P=%d after cancel: %v", f.am.Name(), pred, par, err)
				}
				if want := bruteForce(f.sets, pred, query); !sameOIDs(want, res.OIDs) {
					t.Errorf("%s %v P=%d after cancel: got %v want %v", f.am.Name(), pred, par, res.OIDs, want)
				}
			}
		}
	}
}

// cancelSource is a SetSource that fires a context cancellation after a
// fixed number of resolutions — cancellation arrives mid-search, during
// the false-drop-resolution phase.
type cancelSource struct {
	src    SetSource
	cancel context.CancelFunc
	left   atomic.Int32
}

func (c *cancelSource) Set(oid uint64) ([]string, error) {
	if c.left.Add(-1) == 0 {
		c.cancel()
	}
	return c.src.Set(oid)
}

// TestSearchContextCancelMidSearch: cancellation during resolution stops
// the search with ctx.Err() and leaves the facility consistent.
func TestSearchContextCancelMidSearch(t *testing.T) {
	const n, dt, v = 200, 5, 30
	base := newFixtures(t, n, dt, v, 91)
	sets := base[0].sets
	src := &cancelSource{src: MapSource(sets)}
	scheme := signature.MustNew(120, 3)

	builders := []struct {
		name string
		make func() (AccessMethod, error)
	}{
		{"SSF", func() (AccessMethod, error) { return NewSSF(scheme, src, nil) }},
		{"BSSF", func() (AccessMethod, error) { return NewBSSF(scheme, src, nil) }},
		{"NIX", func() (AccessMethod, error) { return NewNIX(src, nil) }},
		{"FSSF", func() (AccessMethod, error) {
			fs, err := signature.NewFrameScheme(16, 8, 3)
			if err != nil {
				return nil, err
			}
			return NewFSSF(fs, src, nil)
		}},
	}
	// Overlap on a 2-element query drops many candidates, so resolution
	// has plenty of Set calls for the trigger to land inside.
	query := []string{"elem-00001", "elem-00002"}
	for _, b := range builders {
		for _, par := range []int{1, 8} {
			am, err := b.make()
			if err != nil {
				t.Fatal(err)
			}
			for oid := uint64(1); oid <= uint64(n); oid++ {
				if err := am.Insert(oid, sets[oid]); err != nil {
					t.Fatalf("%s insert %d: %v", b.name, oid, err)
				}
			}
			ctx, cancel := context.WithCancel(context.Background())
			src.cancel = cancel
			src.left.Store(3)
			_, err = am.SearchContext(ctx, signature.Overlap, query, WithParallelism(par))
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%s P=%d mid-search cancel: err = %v, want context.Canceled", b.name, par, err)
			}
			// Disarm the trigger and re-run: exact answer, clean state.
			src.left.Store(-1 << 20)
			res, err := am.SearchContext(context.Background(), signature.Overlap, query, WithParallelism(par))
			if err != nil {
				t.Fatalf("%s P=%d after mid-search cancel: %v", b.name, par, err)
			}
			if want := bruteForce(sets, signature.Overlap, query); !sameOIDs(want, res.OIDs) {
				t.Errorf("%s P=%d after mid-search cancel: got %v want %v", b.name, par, res.OIDs, want)
			}
		}
	}
}

// TestSearchContextEquivalence: Search is SearchContext with a
// background context — identical OIDs and identical Stats for the same
// option list, for every facility and predicate, and the smart strategy
// never costs correctness.
func TestSearchContextEquivalence(t *testing.T) {
	const n, dt, v = 250, 5, 40
	fixtures := allFixtures(t, n, dt, v, 101)
	queries := randomQueries(fixtures[0].sets, v, 6, 6, 102)
	ctx := context.Background()
	for _, f := range fixtures {
		for _, pred := range allPredicates {
			for qi, q := range queries {
				want, err := f.am.Search(pred, q,
					WithParallelism(4), WithMaxProbeElements(2), WithMaxZeroSlices(3))
				if err != nil {
					t.Fatalf("%s %v q%d search: %v", f.am.Name(), pred, qi, err)
				}
				got, err := f.am.SearchContext(ctx, pred, q,
					WithParallelism(4), WithMaxProbeElements(2), WithMaxZeroSlices(3))
				if err != nil {
					t.Fatalf("%s %v q%d context: %v", f.am.Name(), pred, qi, err)
				}
				if !sameOIDs(want.OIDs, got.OIDs) || got.Stats != want.Stats {
					t.Errorf("%s %v q%d: SearchContext diverges from Search", f.am.Name(), pred, qi)
				}
				smartOpt, err := f.am.SearchContext(ctx, pred, q, WithSmartRetrieval())
				if err != nil {
					t.Fatalf("%s %v q%d smart option: %v", f.am.Name(), pred, qi, err)
				}
				// Smart retrieval must never cost correctness.
				if want := bruteForce(f.sets, pred, q); !sameOIDs(want, smartOpt.OIDs) {
					t.Errorf("%s %v q%d: smart retrieval wrong answer", f.am.Name(), pred, qi)
				}
			}
		}
	}
}

// TestInvalidPredicateSentinel: every facility reports an out-of-range
// predicate through the exported sentinel, matchable with errors.Is.
func TestInvalidPredicateSentinel(t *testing.T) {
	fixtures := allFixtures(t, 30, 4, 20, 111)
	for _, f := range fixtures {
		_, err := f.am.SearchContext(context.Background(), signature.Predicate(99), []string{"x"})
		if !errors.Is(err, signature.ErrInvalidPredicate) {
			t.Errorf("%s: err = %v, want ErrInvalidPredicate", f.am.Name(), err)
		}
	}
}

// TestTraceString pins the one-line EXPLAIN ANALYZE-style rendering shape
// the sigdb REPL prints.
func TestTraceString(t *testing.T) {
	fixtures := newFixtures(t, 60, 4, 30, 121)
	var collector obs.Collector
	_, err := fixtures[1].am.SearchContext(context.Background(), signature.Superset,
		[]string{"elem-00001"}, WithTrace(&collector))
	if err != nil {
		t.Fatal(err)
	}
	s := collector.Traces()[0].String()
	for _, want := range []string{"BSSF", "index-scan=", "oid-map=", "resolve=", "total="} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Errorf("trace string %q missing %q", s, want)
		}
	}
}
