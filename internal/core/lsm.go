package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"sigfile/internal/obs"
	"sigfile/internal/pagestore"
	"sigfile/internal/signature"
)

// LSM is the log-structured write path over any of the four facilities
// (DESIGN.md §13): a WAL-backed in-memory memtable absorbs inserts and
// deletes, flushing every memtableOps operations into a sealed on-disk
// segment (a full facility of the configured kind, served through a
// read-only store view); compaction merges the segments back into one.
// Deletes become O(1) tombstones instead of the legacy SC_OID/2 OID-file
// scan, and an insert costs one log-page write amortized against the
// batched segment build — the paper's Table 7 F+1 wall for BSSF falls.
//
// A search scatter-gathers across the memtable and every segment and
// resolves candidates in one verification pass. The authoritative
// liveness map (where) assigns each live OID to exactly one location, so
// the per-segment candidate lists are disjoint and results are
// byte-identical to the legacy path at any parallelism.
//
// An LSM is safe for concurrent use under the same discipline as the
// facilities it wraps: searches share the lock, updates exclude them.
type LSM struct {
	// mu: searches hold it shared, updates (and flush/compaction, which
	// run on the updating goroutine) exclusive.
	mu   sync.RWMutex
	cfg  Config
	kind Kind
	src  SetSource

	store pagestore.Store
	mem   *lsmMemtable
	log   *lsmLog
	// gen is the current log generation; nextSeg the next segment ID.
	gen     uint64
	nextSeg uint64
	// segs holds the sealed segments, oldest first.
	segs []*lsmSegment
	// where maps every live OID to its single authoritative location.
	where map[uint64]lsmLoc

	// memtableOps triggers a flush once the memtable holds that many
	// operations (entries + tombstones); compactAfter triggers a
	// compaction once that many segments exist.
	memtableOps  int
	compactAfter int

	// smartM is the element weight the smart probe cap derives from
	// (0 for NIX, which probes a single element).
	smartM int

	// pauses records the wall-clock duration of every compaction, the
	// stall a writer experienced (compaction runs on the writer's
	// goroutine under the exclusive lock).
	pauses []time.Duration

	// card accumulates inserted set cardinalities for Describe.
	card cardStats

	manifest pagestore.File
	metrics  *facilityMetrics
	health   *healthTracker
}

// lsmLoc locates one live OID: the segment holding it (or lsmMemtableSeg
// for memtable residents) and whether its set value is empty — empty
// sets live only in segment metadata, never in the inner facility.
type lsmLoc struct {
	seg   uint64
	empty bool
}

// lsmMemtableSeg is the pseudo-segment ID of memtable residents.
const lsmMemtableSeg = ^uint64(0)

// Default flush/compaction triggers; see WithLSMMemtableSize and
// WithLSMCompactAfter.
const (
	defaultLSMMemtableOps  = 256
	defaultLSMCompactAfter = 4
)

// newLSM opens (or recovers) the log-structured form of cfg. store is
// the (already prefix-wrapped) store; nil gets a fresh MemStore.
func newLSM(cfg Config, store pagestore.Store) (*LSM, error) {
	if store == nil {
		store = pagestore.NewMemStore()
	}
	l := &LSM{
		cfg:          cfg,
		kind:         cfg.Kind,
		src:          cfg.Source,
		store:        store,
		mem:          newLSMMemtable(),
		where:        make(map[uint64]lsmLoc),
		memtableOps:  cfg.LSMMemtableOps,
		compactAfter: cfg.LSMCompactAfter,
		metrics:      newFacilityMetrics(cfg.Kind.String()),
		health:       newHealthTracker(cfg.Kind.String()),
	}
	if l.memtableOps <= 0 {
		l.memtableOps = defaultLSMMemtableOps
	}
	if l.compactAfter <= 1 {
		l.compactAfter = defaultLSMCompactAfter
	}
	switch {
	case cfg.Kind == KindNIX:
		l.smartM = 0
	case cfg.FrameScheme != nil:
		l.smartM = cfg.FrameScheme.M()
	case cfg.Scheme != nil:
		l.smartM = cfg.Scheme.M()
	}
	mf, err := store.Open(lsmManifestName)
	if err != nil {
		return nil, fmt.Errorf("core: lsm open manifest: %w", err)
	}
	l.manifest = mf
	man, err := readManifest(mf)
	if err != nil {
		return nil, err
	}
	if man != nil {
		l.gen = man.Gen
		l.nextSeg = man.NextSeg
		for _, meta := range man.Segments {
			seg, err := reopenSegment(&l.cfg, store, meta)
			if err != nil {
				return nil, err
			}
			l.segs = append(l.segs, seg)
			// Rebuild liveness oldest→newest: a segment's tombstones kill
			// older occurrences first, then its own content goes live (an
			// OID tombstoned and re-inserted in the same memtable has both
			// a tombstone and an entry; this order lets the entry win).
			for _, oid := range meta.Tombs {
				delete(l.where, oid)
			}
			live, err := seg.inner.liveOIDs()
			if err != nil {
				return nil, fmt.Errorf("core: lsm segment %d liveness: %w", meta.ID, err)
			}
			for _, oid := range live {
				l.where[oid] = lsmLoc{seg: meta.ID}
			}
			for _, oid := range meta.Empties {
				l.where[oid] = lsmLoc{seg: meta.ID, empty: true}
			}
		}
	}
	logF, err := store.Open(lsmLogName(l.gen))
	if err != nil {
		return nil, fmt.Errorf("core: lsm open log: %w", err)
	}
	if l.log, err = openLSMLog(logF); err != nil {
		return nil, err
	}
	if err := l.log.replay(func(op byte, oid uint64, elems []string) error {
		switch op {
		case lsmOpInsert:
			l.mem.insert(oid, elems)
			l.where[oid] = lsmLoc{seg: lsmMemtableSeg, empty: len(elems) == 0}
			l.card.add(len(elems))
		case lsmOpDelete:
			l.mem.delete(oid)
			delete(l.where, oid)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return l, nil
}

// Name implements AccessMethod: the wrapped facility kind's name, so the
// planner's per-facility cost formulas apply unchanged.
func (l *LSM) Name() string { return l.kind.String() }

// Health implements HealthReporter.
func (l *LSM) Health() HealthState { return l.health.get() }

// MarkRepaired implements Repairer.
func (l *LSM) MarkRepaired() { l.health.reset() }

// Count implements AccessMethod.
func (l *LSM) Count() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.where)
}

// Segments returns the number of sealed segments (diagnostics/tests).
func (l *LSM) Segments() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.segs)
}

// MemtableOps returns the current memtable operation count
// (diagnostics/tests).
func (l *LSM) MemtableOps() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.mem.ops()
}

// Pauses returns the wall-clock duration of every compaction so far —
// the write-stall record the throughput benchmark summarizes as p99.
func (l *LSM) Pauses() []time.Duration {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]time.Duration, len(l.pauses))
	copy(out, l.pauses)
	return out
}

// Generation returns the current log generation (diagnostics/tests).
func (l *LSM) Generation() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.gen
}

// StoragePages implements AccessMethod: the segments' pages plus the
// log and manifest.
func (l *LSM) StoragePages() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	n := l.manifest.NumPages() + l.log.npages
	for _, seg := range l.segs {
		n += seg.inner.StoragePages()
	}
	return n
}

// Insert implements AccessMethod: one log append (typically a single
// page write) plus the in-memory memtable update; the segment build
// amortizes the signature-file writes over the whole memtable. May
// trigger a flush and then a compaction before returning.
func (l *LSM) Insert(oid uint64, elems []string) error {
	if err := l.health.gateWrite(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.insert(oid, elems); err != nil {
		l.health.noteWrite(err)
		return err
	}
	return nil
}

func (l *LSM) insert(oid uint64, elems []string) error {
	if oid == 0 {
		return fmt.Errorf("core: OID 0 is reserved")
	}
	if _, dup := l.where[oid]; dup {
		return fmt.Errorf("core: %s insert: OID %d already indexed", l.Name(), oid)
	}
	deduped := dedup(elems)
	if err := l.log.appendInsert(oid, deduped); err != nil {
		return err
	}
	l.mem.insert(oid, deduped)
	l.where[oid] = lsmLoc{seg: lsmMemtableSeg, empty: len(deduped) == 0}
	l.card.add(len(deduped))
	return l.maybeRoll()
}

// Delete implements AccessMethod: one log append plus two map updates —
// O(1), against the legacy paths' SC_OID/2 OID-file scan (signature
// files) or rc·D_t tree deletions (NIX).
func (l *LSM) Delete(oid uint64, _ []string) error {
	if err := l.health.gateWrite(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.deleteLocked(oid); err != nil {
		l.health.noteWrite(err)
		return err
	}
	return nil
}

func (l *LSM) deleteLocked(oid uint64) error {
	if _, ok := l.where[oid]; !ok {
		return fmt.Errorf("core: %s delete: OID %d not present", l.Name(), oid)
	}
	if err := l.log.appendDelete(oid); err != nil {
		return err
	}
	l.mem.delete(oid)
	delete(l.where, oid)
	return l.maybeRoll()
}

// maybeRoll applies the flush and compaction triggers after a mutation.
// Caller holds l.mu exclusively.
func (l *LSM) maybeRoll() error {
	if l.mem.ops() < l.memtableOps {
		return nil
	}
	if err := l.flushLocked(); err != nil {
		return err
	}
	if len(l.segs) >= l.compactAfter {
		return l.compactLocked()
	}
	return nil
}

// Flush seals the current memtable into a segment (no-op when empty).
func (l *LSM) Flush() error {
	if err := l.health.gateWrite(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.flushLocked(); err != nil {
		l.health.noteWrite(err)
		return err
	}
	return nil
}

func (l *LSM) flushLocked() error {
	if l.mem.ops() == 0 {
		return nil
	}
	var entries []Entry
	var empties []uint64
	for _, oid := range l.mem.sortedOIDs() {
		elems := l.mem.entries[oid]
		if len(elems) == 0 {
			empties = append(empties, oid)
			continue
		}
		entries = append(entries, Entry{OID: oid, Elems: elems})
	}
	id := l.nextSeg
	seg, err := buildSegment(&l.cfg, l.store, id, entries, l.mem.sortedTombs(), empties)
	if err != nil {
		return err
	}
	l.nextSeg++
	l.segs = append(l.segs, seg)
	for _, e := range entries {
		l.where[e.OID] = lsmLoc{seg: id}
	}
	for _, oid := range empties {
		l.where[oid] = lsmLoc{seg: id, empty: true}
	}
	oldGen := l.gen
	l.gen++
	logF, err := l.store.Open(lsmLogName(l.gen))
	if err != nil {
		return fmt.Errorf("core: lsm open log gen %d: %w", l.gen, err)
	}
	if l.log, err = openLSMLog(logF); err != nil {
		return err
	}
	l.mem.reset()
	if err := l.writeManifestLocked(); err != nil {
		return err
	}
	// The old generation's log is dead weight now; reclaim best-effort.
	_ = pagestore.RemoveIfSupported(l.store, lsmLogName(oldGen))
	return nil
}

// writeManifestLocked persists the segment list and generation.
func (l *LSM) writeManifestLocked() error {
	man := &lsmManifest{Gen: l.gen, NextSeg: l.nextSeg, Segments: make([]lsmSegMeta, len(l.segs))}
	for i, seg := range l.segs {
		man.Segments[i] = seg.meta
	}
	return writeManifest(l.manifest, man)
}

// Search implements AccessMethod.
func (l *LSM) Search(pred signature.Predicate, query []string, opts ...SearchOption) (*Result, error) {
	return l.searchCtx(context.Background(), pred, query, newSearchOptions(opts))
}

// SearchContext implements AccessMethod: the search scatter-gathers
// across the memtable and every sealed segment, then resolves all
// candidates in one verification pass. Cancellation is honored at every
// segment-page read and worker-task boundary; WithSmartRetrieval caps
// derive from the total live count so every segment applies the same
// filter strength.
func (l *LSM) SearchContext(ctx context.Context, pred signature.Predicate, query []string, opts ...SearchOption) (*Result, error) {
	return l.searchCtx(ctx, pred, query, newSearchOptions(opts))
}

func (l *LSM) searchCtx(ctx context.Context, pred signature.Predicate, query []string, opts *SearchOptions) (res *Result, err error) {
	if !pred.Valid() {
		return nil, errInvalidPredicate(pred)
	}
	if err := l.health.gateRead(); err != nil {
		return nil, err
	}
	start := time.Now()
	defer func() { l.metrics.observe(start, res, err) }()
	defer func() { l.health.noteRead(err) }()
	tr := obs.StartTrace(traceSink(ctx, opts), l.Name(), pred.String())
	defer func() { tr.Finish(err) }()
	l.mu.RLock()
	defer l.mu.RUnlock()

	// Pin the smart caps from the total live count so every segment
	// applies the same filter strength regardless of its own size. The
	// per-segment massage only fills zero-valued caps, so explicit values
	// here win.
	if opts != nil && opts.Smart {
		o := *opts
		if o.MaxProbeElements == 0 {
			if l.kind == KindNIX {
				o.MaxProbeElements = 1
			} else if l.smartM > 0 {
				o.MaxProbeElements = smartProbeCap(len(l.where), l.smartM)
			}
		}
		if o.MaxZeroSlices == 0 && l.kind == KindBSSF {
			o.MaxZeroSlices = smartZeroSliceCap(len(l.where))
		}
		opts = &o
	}
	query = dedup(query)
	probe := probeElements(query, opts, pred)
	workers := searchWorkers(opts)
	stats := SearchStats{QueryCardinality: len(query), ProbedElements: len(probe)}

	// The per-segment searches must not re-trace or re-massage: strip
	// the trace sink and the smart flag, keeping the pinned caps.
	var segOpts *SearchOptions
	if opts != nil {
		o := *opts
		o.Smart = false
		o.Trace = nil
		segOpts = &o
	}

	// Index phase: every segment's candidate scan, fanned across the
	// worker pool with per-segment result and stats slots folded in
	// segment order — deterministic at any parallelism.
	phase := tr.Begin()
	segCands := make([][]uint64, len(l.segs))
	parts := make([]SearchStats, len(l.segs))
	err = forEachTask(ctx, workers, len(l.segs), func(i int) error {
		seg := l.segs[i]
		cands, err := seg.inner.segmentCandidates(ctx, pred, query, segOpts, &parts[i])
		if err != nil {
			return fmt.Errorf("core: lsm segment %d search: %w", seg.id, err)
		}
		// Keep only candidates this segment still owns: an OID deleted or
		// re-inserted later resolves elsewhere (or nowhere), and the
		// disjointness of the kept lists is what makes the final gather a
		// plain concatenation.
		kept := cands[:0]
		for _, oid := range cands {
			if loc, ok := l.where[oid]; ok && loc.seg == seg.id && !loc.empty {
				kept = append(kept, oid)
			}
		}
		// Empty sets live only in segment metadata. They are candidates
		// whenever an empty set could satisfy the predicate (∅ ⊆ Q always;
		// a vacuous query makes ⊇/= possible too); verification is exact,
		// so over-inclusion only costs a fetch.
		if pred == signature.Subset || len(query) == 0 {
			for _, oid := range seg.meta.Empties {
				if loc, ok := l.where[oid]; ok && loc.seg == seg.id && loc.empty {
					kept = append(kept, oid)
				}
			}
		}
		segCands[i] = kept
		return nil
	})
	if err != nil {
		return nil, err
	}
	addStats(&stats, parts)
	tr.End(obs.PhaseIndexScan, phase, stats.IndexPages)

	// OID-map phase: the per-segment OID reads already happened inside
	// segmentCandidates (counted into OIDPages above); the memtable holds
	// actual set values, so its candidates cost no pages.
	phase = tr.Begin()
	memCands, err := l.mem.candidates(pred, query)
	if err != nil {
		return nil, err
	}
	candidates := make([]uint64, 0, len(memCands))
	for _, c := range segCands {
		candidates = append(candidates, c...)
	}
	candidates = append(candidates, memCands...)
	tr.End(obs.PhaseOIDMap, phase, stats.OIDPages)

	phase = tr.Begin()
	results, err := verifyCandidates(ctx, l.src, pred, query, candidates, &stats, workers)
	if err != nil {
		return nil, err
	}
	tr.End(obs.PhaseResolve, phase, stats.ObjectFetches)
	return &Result{OIDs: results, Stats: stats}, nil
}

// Describe implements Describer. SegmentCounts and MemtableCount let the
// planner add the per-segment scatter overhead to its RC estimates.
func (l *LSM) Describe() FacilityStats {
	l.mu.RLock()
	defer l.mu.RUnlock()
	st := FacilityStats{
		Facility:      l.Name(),
		Count:         len(l.where),
		AvgSetCard:    l.card.avg(),
		MemtableCount: len(l.mem.entries),
		Health:        l.health.get(),
	}
	if l.kind != KindNIX {
		if l.cfg.FrameScheme != nil {
			st.F = l.cfg.FrameScheme.K() * l.cfg.FrameScheme.S()
			st.M = l.cfg.FrameScheme.M()
			st.Frames = l.cfg.FrameScheme.K()
		} else if l.cfg.Scheme != nil {
			st.F = l.cfg.Scheme.F()
			st.M = l.cfg.Scheme.M()
		}
		if l.kind == KindFSSF && st.Frames == 0 {
			if fs, err := deriveFrameScheme(l.cfg.Scheme, l.cfg.Frames); err == nil {
				st.Frames = fs.K()
			}
		}
	}
	n := l.manifest.NumPages() + l.log.npages
	for _, seg := range l.segs {
		inner := seg.inner.Describe()
		n += inner.StoragePages
		st.SegmentCounts = append(st.SegmentCounts, seg.meta.Count+len(seg.meta.Empties))
		if l.kind == KindNIX {
			st.DistinctElems += inner.DistinctElems
			if inner.LookupPages > st.LookupPages {
				st.LookupPages = inner.LookupPages
			}
		}
	}
	if l.kind == KindNIX && st.LookupPages == 0 {
		st.LookupPages = 1
	}
	st.StoragePages = n
	return st
}

var (
	_ AccessMethod = (*LSM)(nil)
	_ Describer    = (*LSM)(nil)
)
