package core

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"syscall"
	"testing"
	"time"

	"sigfile/internal/pagestore"
	"sigfile/internal/signature"
)

// TestFaultSoak is the Jepsen-lite acceptance test for the resilience
// stack: hundreds of seeded randomized fault schedules driven against
// every facility kind through the full MemStore → FaultStore →
// RetryStore sandwich, checking the three invariants end to end:
//
//  1. no lost committed writes — every successfully inserted object is
//     found by every search whose predicate it satisfies;
//  2. no fabricated answers — every search result satisfies its
//     predicate against the heap, or belongs to an operation whose
//     outcome is indeterminate (the op itself reported failure);
//  3. health moves monotonically down the ladder until an explicit
//     repair, and a degraded facility answers searches byte-identically
//     while rejecting writes fast with ErrDegraded.
func TestFaultSoak(t *testing.T) {
	seeds := 500
	if testing.Short() {
		seeds = 100
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			soakOne(t, int64(seed))
		})
	}
}

// soakUniverse is the element vocabulary sets are drawn from.
var soakUniverse = []string{"e0", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9"}

var soakPreds = []signature.Predicate{signature.Superset, signature.Subset, signature.Overlap}

func soakOne(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))

	// src is the heap: every attempted insert lands here first (the
	// object exists even when indexing it failed), and deletes never
	// remove it so candidate verification of half-dead OIDs still works.
	src := MapSource{}
	// model holds the committed index contents; indeterminate the OIDs of
	// operations that reported failure (their index state is unknown).
	model := map[uint64][]string{}
	indeterminate := map[uint64]bool{}

	// Every fifth schedule runs hot enough to exhaust the retry budget
	// now and then, exercising the degradation ladder organically.
	p := 0.05
	if seed%5 == 4 {
		p = 0.35
	}
	faults := pagestore.NewFaultStore(pagestore.NewMemStore())
	faults.SeedTransient(seed, pagestore.TransientFaults{PRead: p, PWrite: p, PAlloc: p})
	store := pagestore.NewRetryStore(faults, pagestore.RetryPolicy{
		MaxAttempts: 6,
		Sleep:       func(time.Duration) {},
	})

	openFacility := func(s pagestore.Store) (AccessMethod, error) {
		switch seed % 4 {
		case 0:
			return NewSSF(signature.MustNew(64, 8), src, s)
		case 1:
			return NewBSSF(signature.MustNew(32, 4), src, s)
		case 2:
			return NewFSSF(signature.MustFrameScheme(2, 32, 4), src, s)
		default:
			return NewNIX(src, s)
		}
	}
	am, err := openFacility(store)
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	lastHealth := HealthOf(am)
	noteHealth := func(ctx string) {
		h := HealthOf(am)
		if h < lastHealth {
			t.Fatalf("%s: health went up the ladder without repair: %v -> %v", ctx, lastHealth, h)
		}
		lastHealth = h
	}

	randSet := func() []string {
		n := 1 + rng.Intn(4)
		set := make([]string, 0, n)
		for _, i := range rng.Perm(len(soakUniverse))[:n] {
			set = append(set, soakUniverse[i])
		}
		return set
	}
	randQuery := func() []string {
		n := 1 + rng.Intn(3)
		q := make([]string, 0, n)
		for _, i := range rng.Perm(len(soakUniverse))[:n] {
			q = append(q, soakUniverse[i])
		}
		return q
	}

	checkOracle := func(ctx string) {
		pred := soakPreds[rng.Intn(len(soakPreds))]
		query := randQuery()
		res, err := am.Search(pred, query, nil)
		noteHealth(ctx + " search")
		if err != nil {
			// A failed search surfaces a classified storage error (retry
			// exhaustion, failed facility) — never a wrong answer.
			if pagestore.Classify(err) == pagestore.ClassNone && !errors.Is(err, ErrFailed) {
				t.Fatalf("%s: search %v %v failed unclassified: %v", ctx, pred, query, err)
			}
			return
		}
		got := map[uint64]bool{}
		for _, oid := range res.OIDs {
			got[oid] = true
		}
		for oid, set := range model {
			if predHolds(pred, set, query) && !got[oid] && !indeterminate[oid] {
				t.Fatalf("%s: lost committed write: OID %d (set %v) missing from %v %v -> %v",
					ctx, oid, set, pred, query, res.OIDs)
			}
		}
		for oid := range got {
			if set, ok := model[oid]; ok && predHolds(pred, set, query) {
				continue
			}
			if indeterminate[oid] {
				continue
			}
			t.Fatalf("%s: fabricated answer: OID %d in %v %v (model %v)",
				ctx, oid, pred, query, model[oid])
		}
	}

	// Phase 1: randomized ops under the transient schedule.
	nextOID := uint64(1)
	for op := 0; op < 40; op++ {
		switch {
		case rng.Float64() < 0.65 || len(model) == 0:
			oid := nextOID
			nextOID++
			set := randSet()
			src[oid] = set
			err := am.Insert(oid, set)
			noteHealth("insert")
			switch {
			case err == nil:
				model[oid] = set
			case errors.Is(err, ErrDegraded) || errors.Is(err, ErrFailed):
				// Rejected before any page was touched: cleanly absent.
			default:
				indeterminate[oid] = true
			}
		case rng.Float64() < 0.5:
			// Delete a random committed OID.
			var oid uint64
			for o := range model {
				oid = o
				break
			}
			err := am.Delete(oid, model[oid])
			noteHealth("delete")
			switch {
			case err == nil:
				delete(model, oid)
			case errors.Is(err, ErrDegraded) || errors.Is(err, ErrFailed):
			default:
				indeterminate[oid] = true
				delete(model, oid)
			}
		default:
			checkOracle("op phase")
		}
	}
	checkOracle("after ops")

	// Phase 2 (half the schedules): a persistent disk-full fault. The
	// facility must flip to read-only, keep answering byte-identically,
	// and fail writes fast.
	if seed%2 == 0 && HealthOf(am) == Healthy {
		faults.Heal() // quiet reads so the before/after capture is stable
		pred := soakPreds[rng.Intn(len(soakPreds))]
		query := randQuery()
		before, err := am.Search(pred, query, nil)
		if err != nil {
			t.Fatalf("degraded phase: search before fault: %v", err)
		}
		faults.FailWritesWith(syscall.ENOSPC)
		oid, set := nextOID, randSet()
		nextOID++
		src[oid] = set
		if err := am.Insert(oid, set); !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("degraded phase: insert on full disk = %v, want ENOSPC", err)
		}
		indeterminate[oid] = true // pages were touched; index state unknown
		noteHealth("degrading write")
		if HealthOf(am) != Degraded {
			t.Fatalf("degraded phase: health = %v, want degraded", HealthOf(am))
		}
		// Fail fast — rejected by the gate, not by the (still broken) disk.
		if err := am.Insert(nextOID, randSet()); !errors.Is(err, ErrDegraded) {
			t.Fatalf("degraded phase: second insert = %v, want ErrDegraded", err)
		}
		nextOID++
		after, err := am.Search(pred, query, nil)
		if err != nil {
			t.Fatalf("degraded phase: search while degraded: %v", err)
		}
		if !reflect.DeepEqual(before, after) {
			t.Fatalf("degraded phase: search not byte-identical:\nbefore %+v\nafter  %+v", before, after)
		}
		noteHealth("degraded searches")
	}

	// Phase 3: repair. Heal the device; if any operation left residue in
	// the index (a failed op may have written some pages), the honest
	// repair is a rebuild from the committed state — stray signature bits
	// in a reused slot would otherwise shadow the next insert (the hazard
	// the write gate fences). A clean facility just resets its ladder.
	faults.Heal()
	if len(indeterminate) > 0 {
		am, err = openFacility(nil) // fresh fault-free MemStore
		if err != nil {
			t.Fatalf("rebuild: %v", err)
		}
		var oids []uint64
		for oid := range model {
			oids = append(oids, oid)
		}
		sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
		for _, oid := range oids {
			if err := am.Insert(oid, model[oid]); err != nil {
				t.Fatalf("rebuild: insert %d: %v", oid, err)
			}
		}
		indeterminate = map[uint64]bool{}
	} else if r, ok := am.(Repairer); ok {
		r.MarkRepaired()
	}
	lastHealth = HealthOf(am)
	if lastHealth != Healthy {
		t.Fatalf("after repair: health = %v, want healthy", lastHealth)
	}
	oid := nextOID
	set := randSet()
	src[oid] = set
	if err := am.Insert(oid, set); err != nil {
		t.Fatalf("after repair: insert: %v", err)
	}
	model[oid] = set
	for _, pred := range soakPreds {
		query := randQuery()
		res, err := am.Search(pred, query, nil)
		if err != nil {
			t.Fatalf("after repair: search %v %v: %v", pred, query, err)
		}
		var want []uint64
		for oid, set := range model {
			if predHolds(pred, set, query) {
				want = append(want, oid)
			}
		}
		got := append([]uint64(nil), res.OIDs...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if !equalOIDs(want, got) {
			t.Fatalf("after repair: %v %v = %v, want %v", pred, query, got, want)
		}
	}
}

// equalOIDs compares sorted OID lists, treating nil and empty alike.
func equalOIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// predHolds brute-force evaluates pred for target set T against query Q.
func predHolds(pred signature.Predicate, set, query []string) bool {
	in := func(list []string, e string) bool {
		for _, v := range list {
			if v == e {
				return true
			}
		}
		return false
	}
	switch pred {
	case signature.Superset, signature.Contains:
		for _, q := range query {
			if !in(set, q) {
				return false
			}
		}
		return true
	case signature.Subset:
		for _, e := range set {
			if !in(query, e) {
				return false
			}
		}
		return true
	case signature.Overlap:
		for _, e := range set {
			if in(query, e) {
				return true
			}
		}
		return false
	}
	return false
}
