// Package core implements the paper's contribution: three set access
// facilities for OODB queries with set predicates, behind one interface.
//
//   - SSF, the sequential signature file (§4.1): set signatures stored
//     row-wise plus an OID file; retrieval scans the whole signature file.
//   - BSSF, the bit-sliced signature file (§4.2): one bit-slice file per
//     signature bit position; retrieval reads only the needed slices.
//   - NIX, the nested index (§4.3): a B⁺-tree from set element to the OIDs
//     of objects containing it.
//
// All three support the paper's two query types T ⊇ Q and T ⊆ Q as well as
// the overlap, equality and membership operators listed in §2, and the
// "smart object retrieval" strategies of §5.1.3 and §5.2.2. Every search
// reports its cost decomposed exactly as the paper's retrieval-cost
// formulas do: index pages + OID-file pages + object fetches.
package core

import (
	"context"
	"fmt"
	"sort"

	"sigfile/internal/signature"
)

// SetSource resolves an OID to the indexed set attribute of its object.
// Each call is assumed to cost one page access (the paper's P_s = P_u = 1);
// implementations over a real object store (oodb.SetSource) read exactly
// one page per call.
type SetSource interface {
	Set(oid uint64) ([]string, error)
}

// MapSource is an in-memory SetSource for tests and synthetic workloads.
type MapSource map[uint64][]string

// Set implements SetSource.
func (m MapSource) Set(oid uint64) ([]string, error) {
	s, ok := m[oid]
	if !ok {
		return nil, fmt.Errorf("core: OID %d not in source", oid)
	}
	return s, nil
}

// SearchStats decomposes the measured cost of one search the same way the
// paper's retrieval-cost formulas do, so measured and analytical values
// compare term by term.
type SearchStats struct {
	// QueryCardinality is D_q, the number of (distinct) query elements.
	QueryCardinality int
	// ProbedElements is how many query elements actually formed the probe
	// (smaller than QueryCardinality under the smart ⊇ strategy).
	ProbedElements int
	// SlicesRead is the number of bit-slice files read (BSSF only).
	SlicesRead int
	// IndexPages counts page reads in the index structure itself: the
	// signature file scan for SSF, the slice pages for BSSF, the B⁺-tree
	// probes for NIX.
	IndexPages int64
	// OIDPages counts OID-file pages read to map matching signature
	// positions to OIDs (the paper's LC_OID; zero for NIX).
	OIDPages int64
	// ObjectFetches counts object retrievals for drop resolution and
	// result materialization — one page each (P_s = P_u = 1).
	ObjectFetches int64
	// Candidates is the number of drops: objects whose signature or index
	// entry matched and so had to be fetched.
	Candidates int
	// Results is the number of actual drops (objects satisfying the
	// predicate).
	Results int
	// FalseDrops = Candidates − Results.
	FalseDrops int
}

// TotalPages is the paper's RC: all page accesses of the search.
func (s SearchStats) TotalPages() int64 {
	return s.IndexPages + s.OIDPages + s.ObjectFetches
}

// String renders the stats in the shape of the paper's cost formula.
func (s SearchStats) String() string {
	return fmt.Sprintf("RC=%d (index=%d oid=%d objects=%d) drops=%d actual=%d false=%d",
		s.TotalPages(), s.IndexPages, s.OIDPages, s.ObjectFetches,
		s.Candidates, s.Results, s.FalseDrops)
}

// Result is the outcome of a search: the qualifying OIDs in ascending
// order plus the measured cost.
type Result struct {
	OIDs  []uint64
	Stats SearchStats
}

// SearchOptions is the resolved form of a SearchOption list: the struct
// the facilities consume internally after Search/SearchContext fold their
// functional options (WithParallelism, WithSmartRetrieval, WithTrace, ...)
// into one value. Callers configure searches exclusively through the
// option functions; this struct is exported so they can inspect the
// resolved strategy, not to be passed positionally.
type SearchOptions struct {
	// MaxProbeElements, when positive, limits how many query elements are
	// used to form the probe (the query signature for SSF/BSSF, the index
	// lookups for NIX) on Superset/Overlap/Contains searches. This is the
	// paper's smart object retrieval for T ⊇ Q (§5.1.3): with k elements
	// probed the filter is weaker but cheaper, and false-drop resolution
	// restores exactness. Zero means "use every element".
	MaxProbeElements int
	// MaxZeroSlices, when positive, limits how many zero-position bit
	// slices a BSSF Subset search reads — the paper's smart strategy for
	// T ⊆ Q (§5.2.2). Zero means "read all F − m_q zero slices". Other
	// access methods ignore it.
	MaxZeroSlices int
	// Parallelism fans the search across up to this many goroutines: the
	// SSF scan is sharded into page segments, BSSF slice reads and the
	// AND/OR combine run on a worker pool, NIX posting lookups proceed
	// concurrently, and false-drop resolution fetches objects in
	// parallel. 0 or 1 means sequential (the default); negative means one
	// worker per CPU. The result — OIDs and every Stats field — is
	// identical at any setting.
	Parallelism int
	// Smart asks the facility to derive its own probe caps — the paper's
	// smart object retrieval without hand-tuned constants. Explicit
	// MaxProbeElements/MaxZeroSlices values take precedence; SSF ignores
	// it. Set through WithSmartRetrieval.
	Smart bool
	// Trace, when non-nil, receives a per-phase trace of the search. Set
	// through WithTrace; a sink riding the context (obs.ContextWithSink)
	// is used when this is nil.
	Trace TraceSink
}

var defaultOptions = SearchOptions{}

// AccessMethod is a set access facility over one indexed set-valued
// attribute. Implementations are SSF, BSSF and NIX.
type AccessMethod interface {
	// Name identifies the facility ("SSF", "BSSF", "NIX").
	Name() string
	// Insert registers an object's indexed set value. OIDs must be
	// nonzero and unique.
	Insert(oid uint64, elems []string) error
	// Delete removes an object. elems must be the object's indexed set
	// value (needed by NIX to locate postings; the signature files ignore
	// it and tombstone the OID file entry).
	Delete(oid uint64, elems []string) error
	// Search returns the OIDs of objects satisfying pred against query,
	// resolving false drops through the SetSource supplied at
	// construction. opts selects a retrieval strategy; none means the
	// default. It is equivalent to SearchContext with
	// context.Background().
	Search(pred signature.Predicate, query []string, opts ...SearchOption) (*Result, error)
	// SearchContext is Search with a context and functional options: the
	// search honors ctx cancellation/deadline at page-scan and
	// worker-task boundaries (returning an error satisfying
	// errors.Is(err, ctx.Err()) without corrupting facility state), and a
	// trace sink — from WithTrace or obs.ContextWithSink — receives the
	// search's phase decomposition.
	SearchContext(ctx context.Context, pred signature.Predicate, query []string, opts ...SearchOption) (*Result, error)
	// StoragePages returns the number of pages the facility occupies
	// (the paper's SC).
	StoragePages() int
	// Count returns the number of live indexed objects.
	Count() int
}

// errInvalidPredicate builds the error every facility returns for an
// out-of-range Predicate, wrapping signature.ErrInvalidPredicate so
// callers can match it with errors.Is.
func errInvalidPredicate(pred signature.Predicate) error {
	return fmt.Errorf("core: %w: %d", signature.ErrInvalidPredicate, int(pred))
}

// dedup returns query with duplicates removed, preserving order; the
// paper's D_q is a set cardinality.
func dedup(elems []string) []string {
	seen := make(map[string]struct{}, len(elems))
	out := make([]string, 0, len(elems))
	for _, e := range elems {
		if _, dup := seen[e]; dup {
			continue
		}
		seen[e] = struct{}{}
		out = append(out, e)
	}
	return out
}

// probeElements applies the smart-⊇ element cap to a deduplicated query.
func probeElements(query []string, opts *SearchOptions, pred signature.Predicate) []string {
	if opts == nil {
		opts = &defaultOptions
	}
	k := opts.MaxProbeElements
	if k <= 0 || k >= len(query) {
		return query
	}
	switch pred {
	case signature.Superset, signature.Contains:
		// "form a query signature from only k arbitrary elements" — the
		// first k are as arbitrary as any.
		return query[:k]
	default:
		// For Subset/Overlap/Equals dropping elements would lose answers
		// (the probe must stay sound), so the cap is ignored.
		return query
	}
}

// verifyCandidates resolves each candidate OID against the exact
// predicate on up to workers goroutines, updating stats, and returns the
// qualifying OIDs. Each candidate's verdict lands in its own slot, so the
// result set and every stats field are independent of worker count. On
// error the stats are unreliable and the caller must discard them, which
// also means a partial fetch count need not be reported.
func verifyCandidates(ctx context.Context, src SetSource, pred signature.Predicate, query []string, candidates []uint64, stats *SearchStats, workers int) ([]uint64, error) {
	keep := make([]bool, len(candidates))
	err := forEachTask(ctx, workers, len(candidates), func(i int) error {
		oid := candidates[i]
		target, err := src.Set(oid)
		if err != nil {
			return fmt.Errorf("core: resolve OID %d: %w", oid, err)
		}
		ok, err := signature.EvaluateSets(pred, target, query)
		if err != nil {
			return fmt.Errorf("core: verify OID %d: %w", oid, err)
		}
		keep[i] = ok
		return nil
	})
	if err != nil {
		return nil, err
	}
	stats.ObjectFetches += int64(len(candidates))
	results := make([]uint64, 0, len(candidates))
	for i, ok := range keep {
		if ok {
			results = append(results, candidates[i])
		}
	}
	stats.Candidates = len(candidates)
	stats.Results = len(results)
	stats.FalseDrops = stats.Candidates - stats.Results
	// Candidates arrive in storage order (signature-file position or
	// postings order); the API contract is ascending OIDs.
	sort.Slice(results, func(i, j int) bool { return results[i] < results[j] })
	return results, nil
}
