package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"sigfile/internal/pagestore"
)

// oidFile is the OID file shared by the two signature-file organizations
// (Figure 3 of the paper): entry i holds the OID of the object whose
// signature sits at position i of the signature file. Entries are 8 bytes,
// so a page holds O_P = PageSize/8 = 512 of them — the paper's parameter.
//
// Deletion follows the paper's model: the entry is overwritten with the
// zero OID as a delete flag; finding the entry scans the file from the
// start, costing SC_OID/2 page reads on average (the paper's UC_D).
type oidFile struct {
	file pagestore.File
	// n is the number of entries ever appended (live + tombstoned); it
	// equals the number of signatures in the paired signature file.
	n int
	// live is the number of non-tombstoned entries.
	live int
	// tail caches the page being filled so appends cost one page write
	// (the paper's single page access per file on insertion).
	tail     []byte
	tailPage pagestore.PageID
}

// oidsPerPage is O_P in the paper's cost model.
const oidsPerPage = pagestore.PageSize / 8

func newOIDFile(file pagestore.File) (*oidFile, error) {
	f := &oidFile{file: file, tail: make([]byte, pagestore.PageSize)}
	// Recover entry counts from an existing file: the last page may be
	// partially filled; trailing zero entries on it are free slots.
	np := file.NumPages()
	if np == 0 {
		return f, nil
	}
	buf := make([]byte, pagestore.PageSize)
	for p := 0; p < np; p++ {
		if err := file.ReadPage(pagestore.PageID(p), buf); err != nil {
			return nil, fmt.Errorf("core: oid file recovery: %w", err)
		}
		limit := oidsPerPage
		if p == np-1 {
			// Find the last nonzero entry on the final page.
			limit = 0
			for i := oidsPerPage - 1; i >= 0; i-- {
				if binary.LittleEndian.Uint64(buf[i*8:]) != 0 {
					limit = i + 1
					break
				}
			}
			copy(f.tail, buf)
			f.tailPage = pagestore.PageID(p)
			f.n = p*oidsPerPage + limit
		}
		for i := 0; i < limit; i++ {
			if binary.LittleEndian.Uint64(buf[i*8:]) != 0 {
				f.live++
			}
		}
	}
	return f, nil
}

// append adds an OID (nonzero) and returns its entry index. Cost: one
// page write (plus an allocation when a page boundary is crossed).
func (f *oidFile) append(oid uint64) (int, error) {
	if oid == 0 {
		return 0, fmt.Errorf("core: OID 0 is reserved as the delete flag")
	}
	idx := f.n
	slot := idx % oidsPerPage
	if slot == 0 {
		id, err := f.file.Allocate()
		if err != nil {
			return 0, fmt.Errorf("core: oid file: %w", err)
		}
		f.tailPage = id
		for i := range f.tail {
			f.tail[i] = 0
		}
	}
	binary.LittleEndian.PutUint64(f.tail[slot*8:], oid)
	if err := f.file.WritePage(f.tailPage, f.tail); err != nil {
		return 0, fmt.Errorf("core: oid file: %w", err)
	}
	f.n++
	f.live++
	return idx, nil
}

// appendBatch adds a run of OIDs (all nonzero), writing each touched tail
// page once instead of once per entry — the OID-file half of a batch
// load's page-write amortization.
func (f *oidFile) appendBatch(oids []uint64) error {
	dirty := false
	flush := func() error {
		if !dirty {
			return nil
		}
		if err := f.file.WritePage(f.tailPage, f.tail); err != nil {
			return fmt.Errorf("core: oid file: %w", err)
		}
		dirty = false
		return nil
	}
	for _, oid := range oids {
		if oid == 0 {
			return fmt.Errorf("core: OID 0 is reserved as the delete flag")
		}
		slot := f.n % oidsPerPage
		if slot == 0 {
			if err := flush(); err != nil {
				return err
			}
			id, err := f.file.Allocate()
			if err != nil {
				return fmt.Errorf("core: oid file: %w", err)
			}
			f.tailPage = id
			for i := range f.tail {
				f.tail[i] = 0
			}
		}
		binary.LittleEndian.PutUint64(f.tail[slot*8:], oid)
		dirty = true
		f.n++
		f.live++
	}
	return flush()
}

// get reads the OID at entry idx (0 = tombstoned/absent) straight from
// the file, costing one page read.
func (f *oidFile) get(idx int) (uint64, error) {
	if idx < 0 || idx >= f.n {
		return 0, fmt.Errorf("core: oid entry %d out of range [0,%d)", idx, f.n)
	}
	buf := make([]byte, pagestore.PageSize)
	if err := f.file.ReadPage(pagestore.PageID(idx/oidsPerPage), buf); err != nil {
		return 0, fmt.Errorf("core: oid file: %w", err)
	}
	return binary.LittleEndian.Uint64(buf[(idx%oidsPerPage)*8:]), nil
}

// getMany maps sorted candidate entry indexes to their OIDs, skipping
// tombstones. It reads each distinct page once — the measured counterpart
// of the paper's LC_OID term — and reports how many pages it touched.
func (f *oidFile) getMany(indexes []int) ([]uint64, int64, error) {
	if !sort.IntsAreSorted(indexes) {
		indexes = append([]int(nil), indexes...)
		sort.Ints(indexes)
	}
	oids := make([]uint64, 0, len(indexes))
	buf := make([]byte, pagestore.PageSize)
	curPage := -1
	var pages int64
	for _, idx := range indexes {
		if idx < 0 || idx >= f.n {
			return nil, pages, fmt.Errorf("core: oid entry %d out of range [0,%d)", idx, f.n)
		}
		p := idx / oidsPerPage
		if p != curPage {
			if err := f.file.ReadPage(pagestore.PageID(p), buf); err != nil {
				return nil, pages, fmt.Errorf("core: oid file: %w", err)
			}
			curPage = p
			pages++
		}
		oid := binary.LittleEndian.Uint64(buf[(idx%oidsPerPage)*8:])
		if oid != 0 {
			oids = append(oids, oid)
		}
	}
	return oids, pages, nil
}

// delete tombstones the entry holding oid. Per the paper's update model it
// scans the file from the beginning (SC_OID/2 page reads on average) and
// sets the delete flag with one page write. It reports whether the OID was
// found.
func (f *oidFile) delete(oid uint64) (bool, error) {
	if oid == 0 {
		return false, fmt.Errorf("core: OID 0 is reserved")
	}
	buf := make([]byte, pagestore.PageSize)
	for p := 0; p*oidsPerPage < f.n; p++ {
		if err := f.file.ReadPage(pagestore.PageID(p), buf); err != nil {
			return false, fmt.Errorf("core: oid file: %w", err)
		}
		limit := f.n - p*oidsPerPage
		if limit > oidsPerPage {
			limit = oidsPerPage
		}
		for i := 0; i < limit; i++ {
			if binary.LittleEndian.Uint64(buf[i*8:]) == oid {
				binary.LittleEndian.PutUint64(buf[i*8:], 0)
				if err := f.file.WritePage(pagestore.PageID(p), buf); err != nil {
					return false, fmt.Errorf("core: oid file: %w", err)
				}
				if pagestore.PageID(p) == f.tailPage {
					copy(f.tail, buf)
				}
				f.live--
				return true, nil
			}
		}
	}
	return false, nil
}

// scan calls fn(index, oid) for every live entry in index order, reading
// each page once.
func (f *oidFile) scan(fn func(idx int, oid uint64) error) error {
	buf := make([]byte, pagestore.PageSize)
	for p := 0; p*oidsPerPage < f.n; p++ {
		if err := f.file.ReadPage(pagestore.PageID(p), buf); err != nil {
			return fmt.Errorf("core: oid file: %w", err)
		}
		limit := f.n - p*oidsPerPage
		if limit > oidsPerPage {
			limit = oidsPerPage
		}
		for i := 0; i < limit; i++ {
			oid := binary.LittleEndian.Uint64(buf[i*8:])
			if oid == 0 {
				continue
			}
			if err := fn(p*oidsPerPage+i, oid); err != nil {
				return err
			}
		}
	}
	return nil
}

// pages returns SC_OID, the storage cost of the OID file in pages.
func (f *oidFile) pages() int { return f.file.NumPages() }

// ensureCount raises the entry count to n. Recovery infers the count from
// the last nonzero entry, which undercounts when the most recent appends
// were all tombstoned; the paired signature file knows the true count and
// corrects it here. n must not exceed the allocated capacity.
func (f *oidFile) ensureCount(n int) error {
	if n <= f.n {
		return nil
	}
	if n > f.file.NumPages()*oidsPerPage {
		return fmt.Errorf("core: oid file count %d exceeds capacity %d", n, f.file.NumPages()*oidsPerPage)
	}
	f.n = n
	return nil
}
