package core

// This file is the catalog-statistics surface of the facilities: a
// point-in-time snapshot of the numbers a cost-based planner needs to
// evaluate the paper's retrieval-cost formulas (N, D_t, F, m, rc) against
// a live facility instead of the Table 2 constants.

// FacilityStats is a snapshot of one facility's catalog statistics. All
// fields describe the facility at the moment Describe was called; a
// planner holding one across later Inserts sees slightly stale numbers,
// which is the usual catalog trade-off.
type FacilityStats struct {
	// Facility is the access-method name: "SSF", "BSSF", "FSSF" or "NIX".
	Facility string
	// Count is the number of live (non-tombstoned) objects indexed — the
	// cost model's N.
	Count int
	// AvgSetCard is the mean cardinality of the indexed sets over every
	// insert this instance performed — the cost model's D_t. It is 0
	// (unknown) for a facility reopened from a persistent store, whose
	// insert history predates the process; callers fall back to a default.
	AvgSetCard float64
	// F and M are the signature design (signature width in bits and
	// element weight); both 0 for NIX.
	F, M int
	// Frames is the frame count K of an FSSF; 0 otherwise.
	Frames int
	// DistinctElems is the number of distinct indexed element values —
	// an exact lower bound on the domain cardinality V. Only NIX knows it
	// (its B⁺-tree keys are the elements); 0 elsewhere.
	DistinctElems int
	// LookupPages is the page cost of one element lookup (the paper's
	// rc = h + 1) for NIX; 0 for the signature files.
	LookupPages int
	// StoragePages is the facility's total storage cost SC in pages.
	StoragePages int
	// Health is the facility's degradation state (healthy, degraded
	// read-only, or failed) at snapshot time.
	Health HealthState
	// SegmentCounts, for an LSM-backed facility, holds the live-entry
	// count of each sealed segment (oldest first); nil for the legacy
	// in-place path. A search fans out across len(SegmentCounts) files,
	// which the planner folds into its RC estimates.
	SegmentCounts []int
	// MemtableCount is the number of live entries in the LSM memtable
	// (searched for free — it is in memory); 0 for the legacy path.
	MemtableCount int
	// Shards is the partition count K of a sharded facility — a search
	// scatters across that many independent file sets, which the planner
	// folds into its RC estimates the same way it folds SegmentCounts.
	// 0 for an unsharded facility.
	Shards int
	// ShardHealth is every shard's own health state, in shard order, for
	// a sharded facility; nil otherwise. Health above aggregates it
	// (worst shard wins).
	ShardHealth []HealthState
}

// Describer is implemented by facilities that can report catalog
// statistics. All four shipped facilities implement it.
type Describer interface {
	Describe() FacilityStats
}

// cardStats accumulates the cardinalities of inserted sets so Describe
// can report the measured D_t. Guarded by the owning facility's mutex.
type cardStats struct {
	sum int64
	n   int64
}

func (c *cardStats) add(card int) {
	c.sum += int64(card)
	c.n++
}

func (c *cardStats) avg() float64 {
	if c.n == 0 {
		return 0
	}
	return float64(c.sum) / float64(c.n)
}

// Describe implements Describer.
func (s *SSF) Describe() FacilityStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return FacilityStats{
		Facility:     s.Name(),
		Count:        s.oid.live,
		AvgSetCard:   s.card.avg(),
		F:            s.scheme.F(),
		M:            s.scheme.M(),
		StoragePages: s.sig.NumPages() + s.oid.pages(),
		Health:       s.health.get(),
	}
}

// Describe implements Describer.
func (b *BSSF) Describe() FacilityStats {
	b.mu.RLock()
	defer b.mu.RUnlock()
	n := b.oid.pages()
	for _, f := range b.slices {
		n += f.NumPages()
	}
	return FacilityStats{
		Facility:     b.Name(),
		Count:        b.oid.live,
		AvgSetCard:   b.card.avg(),
		F:            b.scheme.F(),
		M:            b.scheme.M(),
		StoragePages: n,
		Health:       b.health.get(),
	}
}

// Describe implements Describer.
func (f *FSSF) Describe() FacilityStats {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n := f.oid.pages()
	for _, file := range f.frames {
		n += file.NumPages()
	}
	return FacilityStats{
		Facility:     f.Name(),
		Count:        f.oid.live,
		AvgSetCard:   f.card.avg(),
		F:            f.scheme.F(),
		M:            f.scheme.M(),
		Frames:       f.scheme.K(),
		StoragePages: n,
		Health:       f.health.get(),
	}
}

// Describe implements Describer.
func (n *NIX) Describe() FacilityStats {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return FacilityStats{
		Facility:      n.Name(),
		Count:         len(n.live),
		AvgSetCard:    n.card.avg(),
		DistinctElems: n.tree.Keys(),
		LookupPages:   n.tree.Height(),
		StoragePages:  n.tree.Pages(),
		Health:        n.health.get(),
	}
}

var (
	_ Describer = (*SSF)(nil)
	_ Describer = (*BSSF)(nil)
	_ Describer = (*FSSF)(nil)
	_ Describer = (*NIX)(nil)
)
