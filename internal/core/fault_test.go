package core

import (
	"errors"
	"testing"

	"sigfile/internal/pagestore"
	"sigfile/internal/signature"
)

// TestFaultPropagation drives every facility × operation × fault-kind
// combination through an armed FaultStore and asserts that the injected
// storage error surfaces to the caller wrapped (matchable with
// errors.Is(err, pagestore.ErrInjected)) — never a panic, never a partial
// result presented as success.
func TestFaultPropagation(t *testing.T) {
	facilities := []struct {
		name string
		open func(store pagestore.Store) (AccessMethod, error)
	}{
		{"SSF", func(store pagestore.Store) (AccessMethod, error) {
			return NewSSF(signature.MustNew(64, 8), crashSource, store)
		}},
		{"BSSF", func(store pagestore.Store) (AccessMethod, error) {
			return NewBSSF(signature.MustNew(32, 4), crashSource, store)
		}},
		{"NIX", func(store pagestore.Store) (AccessMethod, error) {
			return NewNIX(crashSource, store)
		}},
	}

	// Fault kinds arm every file of the facility; counters fire once and
	// auto-disarm, so whichever file the operation touches first trips.
	armRead := func(fs *pagestore.FaultStore) {
		for _, f := range fs.Files() {
			f.FailReadAfter(0)
		}
	}
	armWrite := func(fs *pagestore.FaultStore) {
		for _, f := range fs.Files() {
			f.FailWriteAfter(0)
		}
	}

	ops := []struct {
		name string
		arm  func(fs *pagestore.FaultStore)
		run  func(am AccessMethod) (*Result, error)
	}{
		{"search-superset", armRead, func(am AccessMethod) (*Result, error) {
			return am.Search(signature.Superset, []string{"common"}, nil)
		}},
		{"search-subset", armRead, func(am AccessMethod) (*Result, error) {
			return am.Search(signature.Subset, []string{"alpha", "beta", "common"}, nil)
		}},
		{"search-overlap", armRead, func(am AccessMethod) (*Result, error) {
			return am.Search(signature.Overlap, []string{"gamma"}, nil)
		}},
		{"insert", armWrite, func(am AccessMethod) (*Result, error) {
			return nil, am.Insert(9, []string{"iota", "common"})
		}},
		{"delete", armWrite, func(am AccessMethod) (*Result, error) {
			return nil, am.Delete(2, crashSource[2])
		}},
	}

	for _, fac := range facilities {
		for _, op := range ops {
			t.Run(fac.name+"/"+op.name, func(t *testing.T) {
				fs := pagestore.NewFaultStore(pagestore.NewMemStore())
				am, err := fac.open(fs)
				if err != nil {
					t.Fatal(err)
				}
				for oid := uint64(1); oid <= 4; oid++ {
					if err := am.Insert(oid, crashSource[oid]); err != nil {
						t.Fatal(err)
					}
				}
				op.arm(fs)
				res, err := op.run(am)
				if !errors.Is(err, pagestore.ErrInjected) {
					t.Fatalf("%s on %s with fault armed: err = %v, want ErrInjected", op.name, fac.name, err)
				}
				if res != nil {
					t.Fatalf("%s on %s returned a result alongside the error", op.name, fac.name)
				}
			})
		}
	}
}

// TestFaultRecoveryAfterInjection: once the armed fault has fired (they
// auto-disarm), the same facility instance must serve the operation
// correctly — the error path may not corrupt in-memory state.
func TestFaultRecoveryAfterInjection(t *testing.T) {
	for _, fac := range []struct {
		name string
		open func(store pagestore.Store) (AccessMethod, error)
	}{
		{"SSF", func(store pagestore.Store) (AccessMethod, error) {
			return NewSSF(signature.MustNew(64, 8), crashSource, store)
		}},
		{"BSSF", func(store pagestore.Store) (AccessMethod, error) {
			return NewBSSF(signature.MustNew(32, 4), crashSource, store)
		}},
		{"NIX", func(store pagestore.Store) (AccessMethod, error) {
			return NewNIX(crashSource, store)
		}},
	} {
		t.Run(fac.name, func(t *testing.T) {
			fs := pagestore.NewFaultStore(pagestore.NewMemStore())
			am, err := fac.open(fs)
			if err != nil {
				t.Fatal(err)
			}
			for oid := uint64(1); oid <= 4; oid++ {
				if err := am.Insert(oid, crashSource[oid]); err != nil {
					t.Fatal(err)
				}
			}
			for _, f := range fs.Files() {
				f.FailReadAfter(0)
			}
			if _, err := am.Search(signature.Overlap, []string{"common"}, nil); !errors.Is(err, pagestore.ErrInjected) {
				t.Fatalf("armed search: err = %v, want ErrInjected", err)
			}
			// Only the first file read tripped; disarm the rest for the retry.
			for _, f := range fs.Files() {
				f.FailReadAfter(-1)
			}
			res, err := am.Search(signature.Overlap, []string{"common"}, nil)
			if err != nil {
				t.Fatalf("search after fault cleared: %v", err)
			}
			if len(res.OIDs) != 4 {
				t.Fatalf("search after fault found %v, want OIDs 1-4", res.OIDs)
			}
		})
	}
}
