package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"sigfile/internal/pagestore"
	"sigfile/internal/signature"
)

// cancelStore wraps a pagestore.Store so that the n-th page read after
// arming fires a context cancellation — cancellation arrives inside the
// frame scan itself (FSSF.scanFrame), not during drop resolution, which
// TestSearchContextCancelMidSearch already covers.
type cancelStore struct {
	inner  pagestore.Store
	cancel atomic.Value // context.CancelFunc
	left   atomic.Int32
}

func (s *cancelStore) Open(name string) (pagestore.File, error) {
	f, err := s.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &cancelFile{File: f, s: s}, nil
}

func (s *cancelStore) Close() error { return s.inner.Close() }

// arm schedules cancel to fire on the n-th subsequent page read.
func (s *cancelStore) arm(cancel context.CancelFunc, n int32) {
	s.cancel.Store(cancel)
	s.left.Store(n)
}

func (s *cancelStore) disarm() {
	s.left.Store(-1 << 30)
}

type cancelFile struct {
	pagestore.File
	s *cancelStore
}

func (f *cancelFile) ReadPage(id pagestore.PageID, buf []byte) error {
	if f.s.left.Add(-1) == 0 {
		f.s.cancel.Load().(context.CancelFunc)()
	}
	return f.File.ReadPage(id, buf)
}

// TestFSSFScanFrameCancel: a cancellation that lands mid-frame-scan
// stops the search with an error matching ctx.Err(), sequentially and
// with the frame scans fanned across 8 workers, and the facility stays
// fully usable afterward.
func TestFSSFScanFrameCancel(t *testing.T) {
	const n, dt, v = 300, 5, 40
	rng := rand.New(rand.NewSource(77))
	universe := make([]string, v)
	for i := range universe {
		universe[i] = fmt.Sprintf("elem-%05d", i)
	}
	sets := make(map[uint64][]string, n)
	for oid := uint64(1); oid <= uint64(n); oid++ {
		perm := rng.Perm(v)[:dt]
		set := make([]string, dt)
		for i, j := range perm {
			set[i] = universe[j]
		}
		sets[oid] = set
	}
	query := []string{universe[1], universe[2]}
	want := bruteForce(sets, signature.Overlap, query)

	for _, par := range []int{1, 8} {
		store := &cancelStore{inner: pagestore.NewMemStore()}
		// S=1024 bits = 128 bytes per record = 32 records per page, so
		// each frame file spans ~10 pages and the cancellation lands
		// inside scanFrame's page loop, not between frames.
		fssf, err := NewFSSF(signature.MustFrameScheme(8, 1024, 3), MapSource(sets), store)
		if err != nil {
			t.Fatal(err)
		}
		store.disarm() // inserts read pages too; only the search may trip
		for oid := uint64(1); oid <= uint64(n); oid++ {
			if err := fssf.Insert(oid, sets[oid]); err != nil {
				t.Fatalf("insert %d: %v", oid, err)
			}
		}

		ctx, cancel := context.WithCancel(context.Background())
		store.arm(cancel, 2)
		_, err = fssf.SearchContext(ctx, signature.Overlap, query, WithParallelism(par))
		cancel()
		if !errors.Is(err, ctx.Err()) {
			t.Errorf("P=%d scan-frame cancel: err = %v, want errors.Is(err, %v)", par, err, ctx.Err())
		}

		// Disarm and search again: the aborted scan must not have left
		// partial state behind.
		store.disarm()
		res, err := fssf.SearchContext(context.Background(), signature.Overlap, query, WithParallelism(par))
		if err != nil {
			t.Fatalf("P=%d after cancel: %v", par, err)
		}
		if !sameOIDs(want, res.OIDs) {
			t.Errorf("P=%d after cancel: got %v want %v", par, res.OIDs, want)
		}
	}
}
