package core

import (
	"sort"

	"sigfile/internal/signature"
)

// lsmMemtable is the mutable in-memory head of the LSM write path: the
// set values inserted since the last flush plus the tombstones of
// deletes. Every mutation is logged to the generation's lsmLog before it
// lands here, so the memtable is always reconstructible by replay.
// Guarded by the owning LSM's mutex.
type lsmMemtable struct {
	// entries maps each memtable-resident live OID to its deduplicated
	// set value. An empty (but non-nil) slice is a live empty set.
	entries map[uint64][]string
	// tombs records every OID deleted since the last flush. A tombstone
	// coexisting with an entry means delete-then-reinsert: the tombstone
	// still kills the OID's occurrence in older segments, while the entry
	// is its new value.
	tombs map[uint64]struct{}
}

func newLSMMemtable() *lsmMemtable {
	return &lsmMemtable{entries: make(map[uint64][]string), tombs: make(map[uint64]struct{})}
}

// insert records a (deduplicated) set value. An existing tombstone for
// the OID is kept: it refers to an older, flushed occurrence.
func (m *lsmMemtable) insert(oid uint64, elems []string) {
	if elems == nil {
		elems = []string{}
	}
	m.entries[oid] = elems
}

// delete drops the OID's entry (if resident) and records a tombstone.
// The tombstone is recorded even for memtable-resident OIDs — it is
// harmless at rebuild time and keeps replay order-free.
func (m *lsmMemtable) delete(oid uint64) {
	delete(m.entries, oid)
	m.tombs[oid] = struct{}{}
}

// ops is the flush-trigger size: live entries plus tombstones.
func (m *lsmMemtable) ops() int { return len(m.entries) + len(m.tombs) }

// reset empties the memtable after a flush.
func (m *lsmMemtable) reset() {
	m.entries = make(map[uint64][]string)
	m.tombs = make(map[uint64]struct{})
}

// sortedOIDs returns the resident live OIDs in ascending order.
func (m *lsmMemtable) sortedOIDs() []uint64 {
	out := make([]uint64, 0, len(m.entries))
	for oid := range m.entries {
		out = append(out, oid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sortedTombs returns the tombstoned OIDs in ascending order.
func (m *lsmMemtable) sortedTombs() []uint64 {
	out := make([]uint64, 0, len(m.tombs))
	for oid := range m.tombs {
		out = append(out, oid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// candidates evaluates pred exactly against every resident entry and
// returns the qualifying OIDs in ascending order. The memtable holds
// the actual set values, so this is not a signature filter — no false
// drops are produced — but the OIDs still flow through the common
// verification pass, which re-derives the same answer from the
// SetSource.
func (m *lsmMemtable) candidates(pred signature.Predicate, query []string) ([]uint64, error) {
	var out []uint64
	for _, oid := range m.sortedOIDs() {
		ok, err := signature.EvaluateSets(pred, m.entries[oid], query)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, oid)
		}
	}
	return out, nil
}
