package core

import (
	"fmt"
	"testing"

	"sigfile/internal/pagestore"
	"sigfile/internal/signature"
)

// TestBSSFInsertAmortizationGolden pins the headline economics of the
// LSM write path (ISSUE 7): the paper's Table 7 charges a worst-case
// BSSF insert UC_I = F+1 page writes — the "F+1 wall" that makes
// bit-sliced signatures expensive to load. On the LSM path inserts land
// in a WAL-backed memtable and are sealed in batches, so the amortized
// page writes per insert fall to o(F), while searches stay byte-
// identical to the in-place facility.
func TestBSSFInsertAmortizationGolden(t *testing.T) {
	const n = 128
	scheme := signature.MustNew(64, 2)
	src := MapSource{}
	sets := make([][]string, n+1)
	for i := 1; i <= n; i++ {
		sets[i] = []string{
			fmt.Sprintf("e%d", i%8),
			fmt.Sprintf("f%d", i%5),
		}
		src[uint64(i)] = sets[i]
	}

	// Legacy worst-case path: exactly F+1 page writes per insert, the
	// golden Table 7 value.
	legacyStore := pagestore.NewMemStore()
	legacy, err := Open(Config{
		Kind: KindBSSF, Scheme: scheme, Source: src,
		Store: legacyStore, WorstCaseInsert: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if err := legacy.Insert(uint64(i), sets[i]); err != nil {
			t.Fatal(err)
		}
	}
	_, legacyWrites := legacyStore.TotalStats()
	wall := int64(scheme.F() + 1)
	if legacyWrites != int64(n)*wall {
		t.Fatalf("legacy worst-case load wrote %d pages for %d inserts, want exactly N·(F+1) = %d",
			legacyWrites, n, int64(n)*wall)
	}

	// LSM path: same objects, same scheme. The memtable batches 16
	// inserts per sealed segment and compaction folds segments together,
	// so total writes per insert must come in far under the wall even
	// though compaction re-writes live data.
	lsmStore := pagestore.NewMemStore()
	am, err := Open(Config{Kind: KindBSSF, Scheme: scheme, Source: src, Store: lsmStore},
		WithLSMMemtableSize(16), WithLSMCompactAfter(4))
	if err != nil {
		t.Fatal(err)
	}
	l := am.(*LSM)
	for i := 1; i <= n; i++ {
		if err := l.Insert(uint64(i), sets[i]); err != nil {
			t.Fatal(err)
		}
	}
	_, lsmWrites := lsmStore.TotalStats()
	perInsert := float64(lsmWrites) / n
	t.Logf("pages written per insert: legacy worst-case = %d (F+1), lsm amortized = %.2f (%d writes / %d inserts, %d segments)",
		wall, perInsert, lsmWrites, n, l.Segments())
	if perInsert >= float64(wall)/2 {
		t.Fatalf("lsm amortized insert cost %.2f pages has not broken the F+1 wall (F+1 = %d)", perInsert, wall)
	}

	// The cheaper write path must not cost anything on reads: every
	// predicate answers byte-identically to the legacy facility.
	for _, pred := range diffPreds {
		q := []string{"e1", "f2"}
		if pred == signature.Contains {
			q = []string{"e1"}
		}
		lr, err := legacy.Search(pred, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := l.Search(pred, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !equalOIDs(lr.OIDs, sr.OIDs) {
			t.Fatalf("%v %v: legacy %v != lsm %v", pred, q, lr.OIDs, sr.OIDs)
		}
	}
}
