package core

import (
	"fmt"
	"strings"
	"testing"

	"sigfile/internal/pagestore"
	"sigfile/internal/pagestore/crashtest"
	"sigfile/internal/signature"
)

// LSM crash-consistency scenarios: the crashtest harness kills the
// store after every prefix of the mutating I/O schedule of a flush, a
// compaction, and a tombstone commit, then reopens and asserts the
// recovered facility is exactly pre- or exactly post-update — no lost
// committed insert, no resurrected tombstone, no half-sealed segment.
//
// The fingerprint deliberately includes the LSM's physical shape
// (generation, segment count) on top of the logical search results:
// compaction does not change answers, so without the physical part the
// harness would reject the scenario as vacuous.

// lsmCrashOpen opens the LSM form of kind over the durable store.
func lsmCrashOpen(kind Kind, memOps, compactAfter int) func(store pagestore.Store) (AccessMethod, error) {
	return func(store pagestore.Store) (AccessMethod, error) {
		cfg := Config{Kind: kind, Scheme: signature.MustNew(64, 8), Source: crashSource, Store: store}
		if kind == KindFSSF {
			cfg.FrameScheme = signature.MustFrameScheme(8, 8, 4)
		}
		return Open(cfg, WithLSMMemtableSize(memOps), WithLSMCompactAfter(compactAfter))
	}
}

// lsmCrashFingerprint is crashFingerprint plus the LSM physical shape.
func lsmCrashFingerprint(am AccessMethod) (string, error) {
	logical, err := crashFingerprint(am)
	if err != nil {
		return "", err
	}
	l, ok := am.(*LSM)
	if !ok {
		return "", fmt.Errorf("facility %T is not LSM-backed", am)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "gen=%d segs=%d memops=%d ", l.Generation(), l.Segments(), l.MemtableOps())
	sb.WriteString(logical)
	return sb.String(), nil
}

// lsmFlushScenario: setup leaves one op in the memtable; the crashed
// update's insert fills the memtable and triggers a flush, so the crash
// schedule covers every write of log append + segment build + manifest
// rewrite + log rotation.
func lsmFlushScenario(kind Kind) crashtest.Scenario {
	open := lsmCrashOpen(kind, 2, 100)
	return crashtest.Scenario{
		Setup: func(s *pagestore.DurableStore) error {
			am, err := open(s)
			if err != nil {
				return err
			}
			for oid := uint64(1); oid <= 3; oid++ { // 1,2 flush; 3 stays in the memtable
				if err := am.Insert(oid, crashSource[oid]); err != nil {
					return err
				}
			}
			return nil
		},
		Update: func(s *pagestore.DurableStore) error {
			am, err := open(s)
			if err != nil {
				return err
			}
			if err := am.Insert(5, crashSource[5]); err != nil {
				return err
			}
			return s.Commit()
		},
		Fingerprint: func(s *pagestore.DurableStore) (string, error) {
			am, err := open(s)
			if err != nil {
				return "", err
			}
			return lsmCrashFingerprint(am)
		},
	}
}

// lsmCompactScenario: setup seals two segments; the crashed update
// inserts, flushes, and compacts everything into one merged segment.
// Pre and post differ physically (3 segments vs 1) while remaining
// logically consistent at every crash point.
func lsmCompactScenario(kind Kind) crashtest.Scenario {
	open := lsmCrashOpen(kind, 2, 100)
	return crashtest.Scenario{
		Setup: func(s *pagestore.DurableStore) error {
			am, err := open(s)
			if err != nil {
				return err
			}
			for oid := uint64(1); oid <= 4; oid++ { // two sealed segments
				if err := am.Insert(oid, crashSource[oid]); err != nil {
					return err
				}
			}
			return nil
		},
		Update: func(s *pagestore.DurableStore) error {
			am, err := open(s)
			if err != nil {
				return err
			}
			l := am.(*LSM)
			if err := l.Insert(5, crashSource[5]); err != nil {
				return err
			}
			if err := l.Flush(); err != nil {
				return err
			}
			if err := l.Compact(); err != nil {
				return err
			}
			return s.Commit()
		},
		Fingerprint: func(s *pagestore.DurableStore) (string, error) {
			am, err := open(s)
			if err != nil {
				return "", err
			}
			return lsmCrashFingerprint(am)
		},
	}
}

// lsmTombstoneScenario: the crashed update deletes an object living in
// a sealed segment and flushes the tombstone into a new segment. A
// recovered store must never resurrect the deleted object.
func lsmTombstoneScenario(kind Kind) crashtest.Scenario {
	open := lsmCrashOpen(kind, 2, 100)
	return crashtest.Scenario{
		Setup: func(s *pagestore.DurableStore) error {
			am, err := open(s)
			if err != nil {
				return err
			}
			for oid := uint64(1); oid <= 5; oid++ {
				if err := am.Insert(oid, crashSource[oid]); err != nil {
					return err
				}
			}
			return nil
		},
		Update: func(s *pagestore.DurableStore) error {
			am, err := open(s)
			if err != nil {
				return err
			}
			l := am.(*LSM)
			if err := l.Delete(2, crashSource[2]); err != nil {
				return err
			}
			if err := l.Flush(); err != nil { // seal the tombstone
				return err
			}
			return s.Commit()
		},
		Fingerprint: func(s *pagestore.DurableStore) (string, error) {
			am, err := open(s)
			if err != nil {
				return "", err
			}
			return lsmCrashFingerprint(am)
		},
	}
}

func TestCrashConsistencyLSMFlush(t *testing.T) {
	for _, kind := range []Kind{KindSSF, KindBSSF, KindFSSF, KindNIX} {
		t.Run(kind.String(), func(t *testing.T) {
			crashtest.Run(t, lsmFlushScenario(kind))
		})
	}
}

func TestCrashConsistencyLSMCompact(t *testing.T) {
	for _, kind := range []Kind{KindSSF, KindBSSF, KindFSSF, KindNIX} {
		t.Run(kind.String(), func(t *testing.T) {
			crashtest.Run(t, lsmCompactScenario(kind))
		})
	}
}

func TestCrashConsistencyLSMTombstone(t *testing.T) {
	for _, kind := range []Kind{KindSSF, KindBSSF, KindFSSF, KindNIX} {
		t.Run(kind.String(), func(t *testing.T) {
			crashtest.Run(t, lsmTombstoneScenario(kind))
		})
	}
}
