package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"sigfile/internal/pagestore"
	"sigfile/internal/signature"
)

// This file is the differential proof of the LSM write path (ISSUE 7's
// tentpole contract): every randomized insert/delete/search schedule is
// executed against the legacy in-place facility, the LSM form of the
// same kind, and a brute-force model, asserting byte-identical OID sets
// everywhere and internally consistent SearchStats. 500+ seeded
// schedules × 4 facility kinds run under -race in CI (the race job runs
// the whole package).

// diffSchedulesPerKind × 4 kinds = 500 schedules total.
const diffSchedulesPerKind = 125

// diffElems is the element universe of the differential schedules —
// small enough that predicates hit often, large enough that signatures
// collide and false drops occur.
var diffElems = []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"}

// diffPreds covers every predicate.
var diffPreds = []signature.Predicate{
	signature.Superset, signature.Subset, signature.Overlap,
	signature.Equals, signature.Contains,
}

// diffHarness holds one schedule's three executions plus the shared
// SetSource both facilities verify against.
type diffHarness struct {
	src    MapSource
	legacy AccessMethod
	lsm    *LSM
	// model is the ground truth: the live set values.
	model map[uint64][]string
	// freed holds deleted OIDs eligible for re-insertion (the
	// tombstone-then-reinsert path).
	freed []uint64
	next  uint64
}

func newDiffHarness(t *testing.T, kind Kind, rng *rand.Rand) *diffHarness {
	t.Helper()
	src := MapSource{}
	cfg := Config{Kind: kind, Scheme: signature.MustNew(32, 3), Source: src}
	if kind == KindFSSF {
		// F=32 split into 4 frames of S=8 bits keeps m=3 valid per frame.
		cfg.FrameScheme = signature.MustFrameScheme(4, 8, 3)
	}
	legacyCfg := cfg
	legacyCfg.Store = pagestore.NewMemStore()
	legacy, err := Open(legacyCfg)
	if err != nil {
		t.Fatalf("open legacy %v: %v", kind, err)
	}
	lsmCfg := cfg
	lsmCfg.Store = pagestore.NewMemStore()
	lsm, err := Open(lsmCfg,
		WithLSMMemtableSize(2+rng.Intn(7)), WithLSMCompactAfter(2+rng.Intn(3)))
	if err != nil {
		t.Fatalf("open lsm %v: %v", kind, err)
	}
	return &diffHarness{
		src: src, legacy: legacy, lsm: lsm.(*LSM),
		model: make(map[uint64][]string), next: 1,
	}
}

// randSet draws a set value: usually 1–6 elements, sometimes empty.
func randSet(rng *rand.Rand) []string {
	if rng.Intn(10) == 0 {
		return nil
	}
	n := 1 + rng.Intn(6)
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, diffElems[rng.Intn(len(diffElems))])
	}
	return out
}

// liveOID picks a random live OID, 0 when none exist.
func (h *diffHarness) liveOID(rng *rand.Rand) uint64 {
	if len(h.model) == 0 {
		return 0
	}
	oids := make([]uint64, 0, len(h.model))
	for oid := range h.model {
		oids = append(oids, oid)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	return oids[rng.Intn(len(oids))]
}

func (h *diffHarness) doInsert(t *testing.T, rng *rand.Rand) {
	t.Helper()
	var oid uint64
	// Half the time reuse a freed OID — the delete-then-reinsert path
	// the tombstone discipline must get right.
	if len(h.freed) > 0 && rng.Intn(2) == 0 {
		i := rng.Intn(len(h.freed))
		oid = h.freed[i]
		h.freed = append(h.freed[:i], h.freed[i+1:]...)
	} else {
		oid = h.next
		h.next++
	}
	elems := randSet(rng)
	h.src[oid] = elems
	if err := h.legacy.Insert(oid, elems); err != nil {
		t.Fatalf("legacy insert %d: %v", oid, err)
	}
	if err := h.lsm.Insert(oid, elems); err != nil {
		t.Fatalf("lsm insert %d: %v", oid, err)
	}
	h.model[oid] = dedup(elems)
}

func (h *diffHarness) doDelete(t *testing.T, rng *rand.Rand) {
	t.Helper()
	oid := h.liveOID(rng)
	if oid == 0 {
		return
	}
	elems := h.src[oid]
	if err := h.legacy.Delete(oid, elems); err != nil {
		t.Fatalf("legacy delete %d: %v", oid, err)
	}
	if err := h.lsm.Delete(oid, elems); err != nil {
		t.Fatalf("lsm delete %d: %v", oid, err)
	}
	delete(h.model, oid)
	delete(h.src, oid)
	h.freed = append(h.freed, oid)
}

// modelSearch answers pred/query by brute force over the live sets.
func (h *diffHarness) modelSearch(t *testing.T, pred signature.Predicate, query []string) []uint64 {
	t.Helper()
	var out []uint64
	for oid, elems := range h.model {
		ok, err := signature.EvaluateSets(pred, elems, dedup(query))
		if err != nil {
			t.Fatalf("model search: %v", err)
		}
		if ok {
			out = append(out, oid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// checkStats asserts the internal-consistency (monotonicity) invariants
// every SearchStats must satisfy.
func checkStats(t *testing.T, label string, res *Result) {
	t.Helper()
	s := res.Stats
	if s.IndexPages < 0 || s.OIDPages < 0 || s.ObjectFetches < 0 || s.SlicesRead < 0 {
		t.Fatalf("%s: negative stats: %+v", label, s)
	}
	if s.Candidates < s.Results {
		t.Fatalf("%s: candidates %d < results %d", label, s.Candidates, s.Results)
	}
	if s.FalseDrops != s.Candidates-s.Results {
		t.Fatalf("%s: false drops %d != candidates %d - results %d", label, s.FalseDrops, s.Candidates, s.Results)
	}
	if int(s.ObjectFetches) != s.Candidates {
		t.Fatalf("%s: object fetches %d != candidates %d", label, s.ObjectFetches, s.Candidates)
	}
	if s.Results != len(res.OIDs) {
		t.Fatalf("%s: stats results %d != %d returned OIDs", label, s.Results, len(res.OIDs))
	}
}

func (h *diffHarness) doSearch(t *testing.T, rng *rand.Rand) {
	t.Helper()
	pred := diffPreds[rng.Intn(len(diffPreds))]
	query := make([]string, rng.Intn(5))
	for i := range query {
		query[i] = diffElems[rng.Intn(len(diffElems))]
	}
	if pred == signature.Contains {
		// q ∈ T needs exactly one element; an empty query is invalid.
		query = []string{diffElems[rng.Intn(len(diffElems))]}
	}
	var opts []SearchOption
	switch rng.Intn(3) {
	case 1:
		opts = append(opts, WithSmartRetrieval())
	case 2:
		opts = append(opts, WithMaxProbeElements(1+rng.Intn(2)))
	}
	want := h.modelSearch(t, pred, query)
	legacyRes, err := h.legacy.Search(pred, query, opts...)
	if err != nil {
		t.Fatalf("legacy search %v %v: %v", pred, query, err)
	}
	lsmRes, err := h.lsm.Search(pred, query, opts...)
	if err != nil {
		t.Fatalf("lsm search %v %v: %v", pred, query, err)
	}
	if !equalOIDs(legacyRes.OIDs, want) {
		t.Fatalf("legacy %v %v: got %v, model says %v", pred, query, legacyRes.OIDs, want)
	}
	if !equalOIDs(lsmRes.OIDs, want) {
		t.Fatalf("lsm %v %v: got %v, model says %v (segments=%d memops=%d)",
			pred, query, lsmRes.OIDs, want, h.lsm.Segments(), h.lsm.MemtableOps())
	}
	checkStats(t, "legacy", legacyRes)
	checkStats(t, "lsm", lsmRes)
	// A parallel LSM search must be byte-identical — OIDs and Stats — to
	// the sequential one.
	if rng.Intn(4) == 0 {
		po := append(append([]SearchOption{}, opts...), WithParallelism(4))
		par, err := h.lsm.Search(pred, query, po...)
		if err != nil {
			t.Fatalf("lsm parallel search: %v", err)
		}
		if !equalOIDs(par.OIDs, lsmRes.OIDs) {
			t.Fatalf("lsm parallel OIDs diverge: %v vs %v", par.OIDs, lsmRes.OIDs)
		}
		if par.Stats != lsmRes.Stats {
			t.Fatalf("lsm parallel stats diverge: %+v vs %+v", par.Stats, lsmRes.Stats)
		}
	}
}

// TestDifferentialLSM runs diffSchedulesPerKind seeded schedules against
// each facility kind: every schedule executes ~40 randomized operations
// on the legacy and LSM paths in lockstep, and every search must agree
// with both the other path and the brute-force model.
func TestDifferentialLSM(t *testing.T) {
	for _, kind := range []Kind{KindSSF, KindBSSF, KindFSSF, KindNIX} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			for seed := 0; seed < diffSchedulesPerKind; seed++ {
				seed := seed
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(seed)*4 + int64(kind)))
					h := newDiffHarness(t, kind, rng)
					nops := 30 + rng.Intn(20)
					for op := 0; op < nops; op++ {
						switch r := rng.Intn(20); {
						case r < 12:
							h.doInsert(t, rng)
						case r < 15:
							h.doDelete(t, rng)
						default:
							h.doSearch(t, rng)
						}
					}
					// Final sweep: every predicate against a fixed query,
					// plus an explicit flush+compact and a re-check — the
					// sealed state must answer identically.
					for _, pred := range diffPreds {
						q := []string{"a", "b"}
						if pred == signature.Contains {
							q = []string{"a"}
						}
						h.doSearchFixed(t, pred, q)
					}
					if err := h.lsm.Flush(); err != nil {
						t.Fatalf("flush: %v", err)
					}
					if err := h.lsm.Compact(); err != nil {
						t.Fatalf("compact: %v", err)
					}
					for _, pred := range diffPreds {
						q := []string{"a", "b"}
						if pred == signature.Contains {
							q = []string{"a"}
						}
						h.doSearchFixed(t, pred, q)
					}
				})
			}
		})
	}
}

// doSearchFixed is doSearch with a fixed predicate and query.
func (h *diffHarness) doSearchFixed(t *testing.T, pred signature.Predicate, query []string) {
	t.Helper()
	want := h.modelSearch(t, pred, query)
	legacyRes, err := h.legacy.Search(pred, query, nil)
	if err != nil {
		t.Fatalf("legacy search %v %v: %v", pred, query, err)
	}
	lsmRes, err := h.lsm.Search(pred, query, nil)
	if err != nil {
		t.Fatalf("lsm search %v %v: %v", pred, query, err)
	}
	if !equalOIDs(legacyRes.OIDs, want) {
		t.Fatalf("legacy %v %v: got %v, model says %v", pred, query, legacyRes.OIDs, want)
	}
	if !equalOIDs(lsmRes.OIDs, want) {
		t.Fatalf("lsm %v %v: got %v, model says %v", pred, query, lsmRes.OIDs, want)
	}
	checkStats(t, "legacy", legacyRes)
	checkStats(t, "lsm", lsmRes)
}

// TestDifferentialLSMReopen proves recovery: a schedule executed, the
// store reopened cold, and every predicate re-answered identically —
// committed inserts survive, tombstoned OIDs stay dead.
func TestDifferentialLSMReopen(t *testing.T) {
	for _, kind := range []Kind{KindSSF, KindBSSF, KindFSSF, KindNIX} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			for seed := 0; seed < 10; seed++ {
				rng := rand.New(rand.NewSource(int64(1000 + seed)))
				src := MapSource{}
				store := pagestore.NewMemStore()
				cfg := Config{Kind: kind, Scheme: signature.MustNew(32, 3), Source: src, Store: store}
				if kind == KindFSSF {
					cfg.FrameScheme = signature.MustFrameScheme(4, 8, 3)
				}
				open := func() *LSM {
					am, err := Open(cfg,
						WithLSMMemtableSize(3), WithLSMCompactAfter(3))
					if err != nil {
						t.Fatalf("open: %v", err)
					}
					return am.(*LSM)
				}
				l := open()
				model := make(map[uint64][]string)
				for oid := uint64(1); oid <= 25; oid++ {
					elems := randSet(rng)
					src[oid] = elems
					if err := l.Insert(oid, elems); err != nil {
						t.Fatalf("insert: %v", err)
					}
					model[oid] = dedup(elems)
					if oid%5 == 0 {
						victim := oid - uint64(rng.Intn(3))
						if _, live := model[victim]; live {
							if err := l.Delete(victim, src[victim]); err != nil {
								t.Fatalf("delete: %v", err)
							}
							delete(model, victim)
							delete(src, victim)
						}
					}
				}
				reopened := open()
				if got, want := reopened.Count(), len(model); got != want {
					t.Fatalf("reopened count %d, want %d", got, want)
				}
				for _, pred := range diffPreds {
					q := []string{"a", "c"}
					if pred == signature.Contains {
						q = []string{"a"}
					}
					var want []uint64
					for oid, elems := range model {
						ok, err := signature.EvaluateSets(pred, elems, q)
						if err != nil {
							t.Fatal(err)
						}
						if ok {
							want = append(want, oid)
						}
					}
					sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
					before, err := l.Search(pred, q, nil)
					if err != nil {
						t.Fatalf("search before reopen: %v", err)
					}
					after, err := reopened.Search(pred, q, nil)
					if err != nil {
						t.Fatalf("search after reopen: %v", err)
					}
					if !equalOIDs(before.OIDs, want) || !equalOIDs(after.OIDs, want) {
						t.Fatalf("%v %v: before=%v after=%v model=%v", pred, q, before.OIDs, after.OIDs, want)
					}
				}
			}
		})
	}
}
